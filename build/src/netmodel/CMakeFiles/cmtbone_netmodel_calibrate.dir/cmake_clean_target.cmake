file(REMOVE_RECURSE
  "libcmtbone_netmodel_calibrate.a"
)
