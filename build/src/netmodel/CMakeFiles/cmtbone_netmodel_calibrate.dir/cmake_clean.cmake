file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_netmodel_calibrate.dir/calibrate.cpp.o"
  "CMakeFiles/cmtbone_netmodel_calibrate.dir/calibrate.cpp.o.d"
  "libcmtbone_netmodel_calibrate.a"
  "libcmtbone_netmodel_calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_netmodel_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
