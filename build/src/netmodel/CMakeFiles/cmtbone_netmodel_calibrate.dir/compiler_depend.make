# Empty compiler generated dependencies file for cmtbone_netmodel_calibrate.
# This may be replaced when dependencies are built.
