file(REMOVE_RECURSE
  "libcmtbone_netmodel.a"
)
