file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_netmodel.dir/loggp.cpp.o"
  "CMakeFiles/cmtbone_netmodel.dir/loggp.cpp.o.d"
  "libcmtbone_netmodel.a"
  "libcmtbone_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
