# Empty compiler generated dependencies file for cmtbone_netmodel.
# This may be replaced when dependencies are built.
