file(REMOVE_RECURSE
  "libcmtbone_gs.a"
)
