file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_gs.dir/crystal.cpp.o"
  "CMakeFiles/cmtbone_gs.dir/crystal.cpp.o.d"
  "CMakeFiles/cmtbone_gs.dir/gather_scatter.cpp.o"
  "CMakeFiles/cmtbone_gs.dir/gather_scatter.cpp.o.d"
  "CMakeFiles/cmtbone_gs.dir/topology.cpp.o"
  "CMakeFiles/cmtbone_gs.dir/topology.cpp.o.d"
  "libcmtbone_gs.a"
  "libcmtbone_gs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_gs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
