# Empty compiler generated dependencies file for cmtbone_gs.
# This may be replaced when dependencies are built.
