file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_util.dir/cli.cpp.o"
  "CMakeFiles/cmtbone_util.dir/cli.cpp.o.d"
  "CMakeFiles/cmtbone_util.dir/log.cpp.o"
  "CMakeFiles/cmtbone_util.dir/log.cpp.o.d"
  "CMakeFiles/cmtbone_util.dir/table.cpp.o"
  "CMakeFiles/cmtbone_util.dir/table.cpp.o.d"
  "libcmtbone_util.a"
  "libcmtbone_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
