# Empty compiler generated dependencies file for cmtbone_util.
# This may be replaced when dependencies are built.
