file(REMOVE_RECURSE
  "libcmtbone_util.a"
)
