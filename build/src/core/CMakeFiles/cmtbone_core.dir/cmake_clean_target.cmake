file(REMOVE_RECURSE
  "libcmtbone_core.a"
)
