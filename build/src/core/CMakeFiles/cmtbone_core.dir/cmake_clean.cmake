file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_core.dir/driver.cpp.o"
  "CMakeFiles/cmtbone_core.dir/driver.cpp.o.d"
  "libcmtbone_core.a"
  "libcmtbone_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
