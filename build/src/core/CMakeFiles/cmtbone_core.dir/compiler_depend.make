# Empty compiler generated dependencies file for cmtbone_core.
# This may be replaced when dependencies are built.
