file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_io.dir/checkpoint.cpp.o"
  "CMakeFiles/cmtbone_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/cmtbone_io.dir/vtk.cpp.o"
  "CMakeFiles/cmtbone_io.dir/vtk.cpp.o.d"
  "libcmtbone_io.a"
  "libcmtbone_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
