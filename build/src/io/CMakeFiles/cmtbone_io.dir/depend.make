# Empty dependencies file for cmtbone_io.
# This may be replaced when dependencies are built.
