file(REMOVE_RECURSE
  "libcmtbone_io.a"
)
