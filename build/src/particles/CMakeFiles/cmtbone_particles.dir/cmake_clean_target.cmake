file(REMOVE_RECURSE
  "libcmtbone_particles.a"
)
