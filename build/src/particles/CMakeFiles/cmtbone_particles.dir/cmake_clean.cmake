file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_particles.dir/tracker.cpp.o"
  "CMakeFiles/cmtbone_particles.dir/tracker.cpp.o.d"
  "libcmtbone_particles.a"
  "libcmtbone_particles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
