# Empty dependencies file for cmtbone_particles.
# This may be replaced when dependencies are built.
