# Empty dependencies file for cmtbone_sem.
# This may be replaced when dependencies are built.
