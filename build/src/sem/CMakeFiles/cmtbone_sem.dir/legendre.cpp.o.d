src/sem/CMakeFiles/cmtbone_sem.dir/legendre.cpp.o: \
 /root/repo/src/sem/legendre.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sem/legendre.hpp
