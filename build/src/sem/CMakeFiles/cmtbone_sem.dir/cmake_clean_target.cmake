file(REMOVE_RECURSE
  "libcmtbone_sem.a"
)
