# Empty compiler generated dependencies file for cmtbone_sem.
# This may be replaced when dependencies are built.
