file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_sem.dir/legendre.cpp.o"
  "CMakeFiles/cmtbone_sem.dir/legendre.cpp.o.d"
  "CMakeFiles/cmtbone_sem.dir/lgl.cpp.o"
  "CMakeFiles/cmtbone_sem.dir/lgl.cpp.o.d"
  "CMakeFiles/cmtbone_sem.dir/operators.cpp.o"
  "CMakeFiles/cmtbone_sem.dir/operators.cpp.o.d"
  "libcmtbone_sem.a"
  "libcmtbone_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
