
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sem/legendre.cpp" "src/sem/CMakeFiles/cmtbone_sem.dir/legendre.cpp.o" "gcc" "src/sem/CMakeFiles/cmtbone_sem.dir/legendre.cpp.o.d"
  "/root/repo/src/sem/lgl.cpp" "src/sem/CMakeFiles/cmtbone_sem.dir/lgl.cpp.o" "gcc" "src/sem/CMakeFiles/cmtbone_sem.dir/lgl.cpp.o.d"
  "/root/repo/src/sem/operators.cpp" "src/sem/CMakeFiles/cmtbone_sem.dir/operators.cpp.o" "gcc" "src/sem/CMakeFiles/cmtbone_sem.dir/operators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cmtbone_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
