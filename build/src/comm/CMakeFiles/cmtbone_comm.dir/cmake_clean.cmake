file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_comm.dir/comm.cpp.o"
  "CMakeFiles/cmtbone_comm.dir/comm.cpp.o.d"
  "CMakeFiles/cmtbone_comm.dir/mailbox.cpp.o"
  "CMakeFiles/cmtbone_comm.dir/mailbox.cpp.o.d"
  "CMakeFiles/cmtbone_comm.dir/runtime.cpp.o"
  "CMakeFiles/cmtbone_comm.dir/runtime.cpp.o.d"
  "libcmtbone_comm.a"
  "libcmtbone_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
