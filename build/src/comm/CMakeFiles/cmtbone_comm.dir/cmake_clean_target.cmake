file(REMOVE_RECURSE
  "libcmtbone_comm.a"
)
