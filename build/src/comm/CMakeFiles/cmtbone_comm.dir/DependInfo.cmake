
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/comm.cpp" "src/comm/CMakeFiles/cmtbone_comm.dir/comm.cpp.o" "gcc" "src/comm/CMakeFiles/cmtbone_comm.dir/comm.cpp.o.d"
  "/root/repo/src/comm/mailbox.cpp" "src/comm/CMakeFiles/cmtbone_comm.dir/mailbox.cpp.o" "gcc" "src/comm/CMakeFiles/cmtbone_comm.dir/mailbox.cpp.o.d"
  "/root/repo/src/comm/runtime.cpp" "src/comm/CMakeFiles/cmtbone_comm.dir/runtime.cpp.o" "gcc" "src/comm/CMakeFiles/cmtbone_comm.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prof/CMakeFiles/cmtbone_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cmtbone_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmtbone_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/cmtbone_netmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
