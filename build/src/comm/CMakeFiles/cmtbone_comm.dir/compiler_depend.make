# Empty compiler generated dependencies file for cmtbone_comm.
# This may be replaced when dependencies are built.
