file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_trace.dir/replay.cpp.o"
  "CMakeFiles/cmtbone_trace.dir/replay.cpp.o.d"
  "CMakeFiles/cmtbone_trace.dir/trace.cpp.o"
  "CMakeFiles/cmtbone_trace.dir/trace.cpp.o.d"
  "libcmtbone_trace.a"
  "libcmtbone_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
