file(REMOVE_RECURSE
  "libcmtbone_trace.a"
)
