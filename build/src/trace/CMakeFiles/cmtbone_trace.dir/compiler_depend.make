# Empty compiler generated dependencies file for cmtbone_trace.
# This may be replaced when dependencies are built.
