# Empty compiler generated dependencies file for cmtbone_nekbone.
# This may be replaced when dependencies are built.
