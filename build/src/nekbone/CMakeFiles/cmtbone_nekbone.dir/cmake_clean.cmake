file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_nekbone.dir/nekbone.cpp.o"
  "CMakeFiles/cmtbone_nekbone.dir/nekbone.cpp.o.d"
  "libcmtbone_nekbone.a"
  "libcmtbone_nekbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_nekbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
