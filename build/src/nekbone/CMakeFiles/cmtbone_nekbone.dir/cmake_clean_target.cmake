file(REMOVE_RECURSE
  "libcmtbone_nekbone.a"
)
