file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_prof.dir/callprof.cpp.o"
  "CMakeFiles/cmtbone_prof.dir/callprof.cpp.o.d"
  "CMakeFiles/cmtbone_prof.dir/commprof.cpp.o"
  "CMakeFiles/cmtbone_prof.dir/commprof.cpp.o.d"
  "CMakeFiles/cmtbone_prof.dir/perf_counters.cpp.o"
  "CMakeFiles/cmtbone_prof.dir/perf_counters.cpp.o.d"
  "libcmtbone_prof.a"
  "libcmtbone_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
