# Empty dependencies file for cmtbone_prof.
# This may be replaced when dependencies are built.
