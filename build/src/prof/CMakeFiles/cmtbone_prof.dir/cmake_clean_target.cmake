file(REMOVE_RECURSE
  "libcmtbone_prof.a"
)
