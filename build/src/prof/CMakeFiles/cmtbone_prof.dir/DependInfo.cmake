
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prof/callprof.cpp" "src/prof/CMakeFiles/cmtbone_prof.dir/callprof.cpp.o" "gcc" "src/prof/CMakeFiles/cmtbone_prof.dir/callprof.cpp.o.d"
  "/root/repo/src/prof/commprof.cpp" "src/prof/CMakeFiles/cmtbone_prof.dir/commprof.cpp.o" "gcc" "src/prof/CMakeFiles/cmtbone_prof.dir/commprof.cpp.o.d"
  "/root/repo/src/prof/perf_counters.cpp" "src/prof/CMakeFiles/cmtbone_prof.dir/perf_counters.cpp.o" "gcc" "src/prof/CMakeFiles/cmtbone_prof.dir/perf_counters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cmtbone_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
