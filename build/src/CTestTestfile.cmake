# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("prof")
subdirs("netmodel")
subdirs("trace")
subdirs("comm")
subdirs("sem")
subdirs("mesh")
subdirs("kernels")
subdirs("gs")
subdirs("io")
subdirs("particles")
subdirs("core")
subdirs("nekbone")
