file(REMOVE_RECURSE
  "libcmtbone_mesh.a"
)
