
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/face_exchange.cpp" "src/mesh/CMakeFiles/cmtbone_mesh.dir/face_exchange.cpp.o" "gcc" "src/mesh/CMakeFiles/cmtbone_mesh.dir/face_exchange.cpp.o.d"
  "/root/repo/src/mesh/face_numbering.cpp" "src/mesh/CMakeFiles/cmtbone_mesh.dir/face_numbering.cpp.o" "gcc" "src/mesh/CMakeFiles/cmtbone_mesh.dir/face_numbering.cpp.o.d"
  "/root/repo/src/mesh/faces.cpp" "src/mesh/CMakeFiles/cmtbone_mesh.dir/faces.cpp.o" "gcc" "src/mesh/CMakeFiles/cmtbone_mesh.dir/faces.cpp.o.d"
  "/root/repo/src/mesh/numbering.cpp" "src/mesh/CMakeFiles/cmtbone_mesh.dir/numbering.cpp.o" "gcc" "src/mesh/CMakeFiles/cmtbone_mesh.dir/numbering.cpp.o.d"
  "/root/repo/src/mesh/partition.cpp" "src/mesh/CMakeFiles/cmtbone_mesh.dir/partition.cpp.o" "gcc" "src/mesh/CMakeFiles/cmtbone_mesh.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/cmtbone_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmtbone_util.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/cmtbone_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cmtbone_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/cmtbone_netmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
