file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_mesh.dir/face_exchange.cpp.o"
  "CMakeFiles/cmtbone_mesh.dir/face_exchange.cpp.o.d"
  "CMakeFiles/cmtbone_mesh.dir/face_numbering.cpp.o"
  "CMakeFiles/cmtbone_mesh.dir/face_numbering.cpp.o.d"
  "CMakeFiles/cmtbone_mesh.dir/faces.cpp.o"
  "CMakeFiles/cmtbone_mesh.dir/faces.cpp.o.d"
  "CMakeFiles/cmtbone_mesh.dir/numbering.cpp.o"
  "CMakeFiles/cmtbone_mesh.dir/numbering.cpp.o.d"
  "CMakeFiles/cmtbone_mesh.dir/partition.cpp.o"
  "CMakeFiles/cmtbone_mesh.dir/partition.cpp.o.d"
  "libcmtbone_mesh.a"
  "libcmtbone_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
