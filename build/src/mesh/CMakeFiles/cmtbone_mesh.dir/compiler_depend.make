# Empty compiler generated dependencies file for cmtbone_mesh.
# This may be replaced when dependencies are built.
