file(REMOVE_RECURSE
  "libcmtbone_kernels.a"
)
