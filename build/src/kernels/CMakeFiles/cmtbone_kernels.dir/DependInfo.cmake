
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/div.cpp" "src/kernels/CMakeFiles/cmtbone_kernels.dir/div.cpp.o" "gcc" "src/kernels/CMakeFiles/cmtbone_kernels.dir/div.cpp.o.d"
  "/root/repo/src/kernels/gradient.cpp" "src/kernels/CMakeFiles/cmtbone_kernels.dir/gradient.cpp.o" "gcc" "src/kernels/CMakeFiles/cmtbone_kernels.dir/gradient.cpp.o.d"
  "/root/repo/src/kernels/mxm.cpp" "src/kernels/CMakeFiles/cmtbone_kernels.dir/mxm.cpp.o" "gcc" "src/kernels/CMakeFiles/cmtbone_kernels.dir/mxm.cpp.o.d"
  "/root/repo/src/kernels/tensor.cpp" "src/kernels/CMakeFiles/cmtbone_kernels.dir/tensor.cpp.o" "gcc" "src/kernels/CMakeFiles/cmtbone_kernels.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cmtbone_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
