# Empty dependencies file for cmtbone_kernels.
# This may be replaced when dependencies are built.
