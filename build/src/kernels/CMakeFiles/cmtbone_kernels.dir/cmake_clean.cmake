file(REMOVE_RECURSE
  "CMakeFiles/cmtbone_kernels.dir/div.cpp.o"
  "CMakeFiles/cmtbone_kernels.dir/div.cpp.o.d"
  "CMakeFiles/cmtbone_kernels.dir/gradient.cpp.o"
  "CMakeFiles/cmtbone_kernels.dir/gradient.cpp.o.d"
  "CMakeFiles/cmtbone_kernels.dir/mxm.cpp.o"
  "CMakeFiles/cmtbone_kernels.dir/mxm.cpp.o.d"
  "CMakeFiles/cmtbone_kernels.dir/tensor.cpp.o"
  "CMakeFiles/cmtbone_kernels.dir/tensor.cpp.o.d"
  "libcmtbone_kernels.a"
  "libcmtbone_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtbone_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
