file(REMOVE_RECURSE
  "CMakeFiles/advection_pulse.dir/advection_pulse.cpp.o"
  "CMakeFiles/advection_pulse.dir/advection_pulse.cpp.o.d"
  "advection_pulse"
  "advection_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advection_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
