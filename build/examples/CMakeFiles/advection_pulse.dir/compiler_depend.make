# Empty compiler generated dependencies file for advection_pulse.
# This may be replaced when dependencies are built.
