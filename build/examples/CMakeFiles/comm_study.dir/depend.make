# Empty dependencies file for comm_study.
# This may be replaced when dependencies are built.
