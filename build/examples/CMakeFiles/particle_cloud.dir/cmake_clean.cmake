file(REMOVE_RECURSE
  "CMakeFiles/particle_cloud.dir/particle_cloud.cpp.o"
  "CMakeFiles/particle_cloud.dir/particle_cloud.cpp.o.d"
  "particle_cloud"
  "particle_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
