# Empty compiler generated dependencies file for particle_cloud.
# This may be replaced when dependencies are built.
