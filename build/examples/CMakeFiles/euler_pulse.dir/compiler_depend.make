# Empty compiler generated dependencies file for euler_pulse.
# This may be replaced when dependencies are built.
