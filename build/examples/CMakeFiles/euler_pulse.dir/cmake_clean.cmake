file(REMOVE_RECURSE
  "CMakeFiles/euler_pulse.dir/euler_pulse.cpp.o"
  "CMakeFiles/euler_pulse.dir/euler_pulse.cpp.o.d"
  "euler_pulse"
  "euler_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euler_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
