# Empty compiler generated dependencies file for fig5_fig6_derivative_opt.
# This may be replaced when dependencies are built.
