file(REMOVE_RECURSE
  "../bench/fig5_fig6_derivative_opt"
  "../bench/fig5_fig6_derivative_opt.pdb"
  "CMakeFiles/fig5_fig6_derivative_opt.dir/fig5_fig6_derivative_opt.cpp.o"
  "CMakeFiles/fig5_fig6_derivative_opt.dir/fig5_fig6_derivative_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fig6_derivative_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
