# Empty compiler generated dependencies file for fig9_top_mpi_calls.
# This may be replaced when dependencies are built.
