file(REMOVE_RECURSE
  "../bench/fig9_top_mpi_calls"
  "../bench/fig9_top_mpi_calls.pdb"
  "CMakeFiles/fig9_top_mpi_calls.dir/fig9_top_mpi_calls.cpp.o"
  "CMakeFiles/fig9_top_mpi_calls.dir/fig9_top_mpi_calls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_top_mpi_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
