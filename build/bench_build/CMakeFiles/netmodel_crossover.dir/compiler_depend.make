# Empty compiler generated dependencies file for netmodel_crossover.
# This may be replaced when dependencies are built.
