file(REMOVE_RECURSE
  "../bench/netmodel_crossover"
  "../bench/netmodel_crossover.pdb"
  "CMakeFiles/netmodel_crossover.dir/netmodel_crossover.cpp.o"
  "CMakeFiles/netmodel_crossover.dir/netmodel_crossover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmodel_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
