# Empty compiler generated dependencies file for besim_replay.
# This may be replaced when dependencies are built.
