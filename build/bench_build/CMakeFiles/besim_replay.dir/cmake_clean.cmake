file(REMOVE_RECURSE
  "../bench/besim_replay"
  "../bench/besim_replay.pdb"
  "CMakeFiles/besim_replay.dir/besim_replay.cpp.o"
  "CMakeFiles/besim_replay.dir/besim_replay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/besim_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
