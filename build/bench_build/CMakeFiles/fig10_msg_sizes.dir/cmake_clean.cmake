file(REMOVE_RECURSE
  "../bench/fig10_msg_sizes"
  "../bench/fig10_msg_sizes.pdb"
  "CMakeFiles/fig10_msg_sizes.dir/fig10_msg_sizes.cpp.o"
  "CMakeFiles/fig10_msg_sizes.dir/fig10_msg_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_msg_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
