
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_msg_sizes.cpp" "bench_build/CMakeFiles/fig10_msg_sizes.dir/fig10_msg_sizes.cpp.o" "gcc" "bench_build/CMakeFiles/fig10_msg_sizes.dir/fig10_msg_sizes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cmtbone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nekbone/CMakeFiles/cmtbone_nekbone.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/cmtbone_netmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/netmodel/CMakeFiles/cmtbone_netmodel_calibrate.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cmtbone_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cmtbone_io.dir/DependInfo.cmake"
  "/root/repo/build/src/particles/CMakeFiles/cmtbone_particles.dir/DependInfo.cmake"
  "/root/repo/build/src/gs/CMakeFiles/cmtbone_gs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cmtbone_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/cmtbone_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/cmtbone_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/cmtbone_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/cmtbone_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmtbone_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
