# Empty compiler generated dependencies file for fig10_msg_sizes.
# This may be replaced when dependencies are built.
