# Empty dependencies file for gs_autotune_sweep.
# This may be replaced when dependencies are built.
