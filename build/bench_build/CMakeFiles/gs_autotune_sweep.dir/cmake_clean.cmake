file(REMOVE_RECURSE
  "../bench/gs_autotune_sweep"
  "../bench/gs_autotune_sweep.pdb"
  "CMakeFiles/gs_autotune_sweep.dir/gs_autotune_sweep.cpp.o"
  "CMakeFiles/gs_autotune_sweep.dir/gs_autotune_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_autotune_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
