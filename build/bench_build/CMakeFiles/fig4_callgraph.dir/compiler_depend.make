# Empty compiler generated dependencies file for fig4_callgraph.
# This may be replaced when dependencies are built.
