file(REMOVE_RECURSE
  "../bench/fig4_callgraph"
  "../bench/fig4_callgraph.pdb"
  "CMakeFiles/fig4_callgraph.dir/fig4_callgraph.cpp.o"
  "CMakeFiles/fig4_callgraph.dir/fig4_callgraph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
