file(REMOVE_RECURSE
  "../bench/kernel_nsweep"
  "../bench/kernel_nsweep.pdb"
  "CMakeFiles/kernel_nsweep.dir/kernel_nsweep.cpp.o"
  "CMakeFiles/kernel_nsweep.dir/kernel_nsweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_nsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
