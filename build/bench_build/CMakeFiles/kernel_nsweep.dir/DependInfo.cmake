
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/kernel_nsweep.cpp" "bench_build/CMakeFiles/kernel_nsweep.dir/kernel_nsweep.cpp.o" "gcc" "bench_build/CMakeFiles/kernel_nsweep.dir/kernel_nsweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/cmtbone_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/cmtbone_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmtbone_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
