# Empty dependencies file for kernel_nsweep.
# This may be replaced when dependencies are built.
