# Empty compiler generated dependencies file for netmodel_validation.
# This may be replaced when dependencies are built.
