file(REMOVE_RECURSE
  "../bench/netmodel_validation"
  "../bench/netmodel_validation.pdb"
  "CMakeFiles/netmodel_validation.dir/netmodel_validation.cpp.o"
  "CMakeFiles/netmodel_validation.dir/netmodel_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmodel_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
