file(REMOVE_RECURSE
  "../bench/ablation_features"
  "../bench/ablation_features.pdb"
  "CMakeFiles/ablation_features.dir/ablation_features.cpp.o"
  "CMakeFiles/ablation_features.dir/ablation_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
