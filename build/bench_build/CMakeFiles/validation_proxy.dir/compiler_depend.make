# Empty compiler generated dependencies file for validation_proxy.
# This may be replaced when dependencies are built.
