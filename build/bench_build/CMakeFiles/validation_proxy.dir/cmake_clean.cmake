file(REMOVE_RECURSE
  "../bench/validation_proxy"
  "../bench/validation_proxy.pdb"
  "CMakeFiles/validation_proxy.dir/validation_proxy.cpp.o"
  "CMakeFiles/validation_proxy.dir/validation_proxy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
