# Empty compiler generated dependencies file for fig8_mpi_fraction.
# This may be replaced when dependencies are built.
