file(REMOVE_RECURSE
  "../bench/fig8_mpi_fraction"
  "../bench/fig8_mpi_fraction.pdb"
  "CMakeFiles/fig8_mpi_fraction.dir/fig8_mpi_fraction.cpp.o"
  "CMakeFiles/fig8_mpi_fraction.dir/fig8_mpi_fraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mpi_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
