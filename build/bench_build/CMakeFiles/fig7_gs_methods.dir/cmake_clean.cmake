file(REMOVE_RECURSE
  "../bench/fig7_gs_methods"
  "../bench/fig7_gs_methods.pdb"
  "CMakeFiles/fig7_gs_methods.dir/fig7_gs_methods.cpp.o"
  "CMakeFiles/fig7_gs_methods.dir/fig7_gs_methods.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_gs_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
