# Empty compiler generated dependencies file for fig7_gs_methods.
# This may be replaced when dependencies are built.
