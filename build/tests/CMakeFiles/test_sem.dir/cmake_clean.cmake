file(REMOVE_RECURSE
  "CMakeFiles/test_sem.dir/test_sem.cpp.o"
  "CMakeFiles/test_sem.dir/test_sem.cpp.o.d"
  "test_sem"
  "test_sem.pdb"
  "test_sem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
