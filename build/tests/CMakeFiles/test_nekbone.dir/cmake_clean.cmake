file(REMOVE_RECURSE
  "CMakeFiles/test_nekbone.dir/test_nekbone.cpp.o"
  "CMakeFiles/test_nekbone.dir/test_nekbone.cpp.o.d"
  "test_nekbone"
  "test_nekbone.pdb"
  "test_nekbone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nekbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
