# Empty dependencies file for test_nekbone.
# This may be replaced when dependencies are built.
