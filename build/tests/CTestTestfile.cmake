# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_sem[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_gs[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_nekbone[1]_include.cmake")
include("/root/repo/build/tests/test_netmodel[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_particles[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
