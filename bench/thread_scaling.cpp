// Intra-rank thread scaling of the element loops (volume flux divergence,
// surface flux, face pack/unpack) through the shared parallel::Pool.
//
// Sweeps N x ranks x threads_per_rank over the proxy mini-app and writes
// BENCH_threads.json: wall time per step, the profiled volume-kernel
// ("ax_ (flux divergence)") seconds, and the speedup of each thread count
// against threads_per_rank=1 at the same (N, ranks). The host's
// hardware_concurrency and the pool's actual worker count are recorded so a
// flat curve on an oversubscribed box reads as what it is — every value of
// threads_per_rank is bit-identical by construction, so the sweep measures
// time only.
//
// --smoke gates what is enforceable on any host, including single-core CI:
//   1. threads_per_rank=1 must cost < 3% over the raw serial loop (the
//      pool's serial path is an inline call; this catches dispatch bloat),
//   2. a threaded run must be bit-identical to the serial run.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "parallel/parallel.hpp"
#include "prof/callprof.hpp"
#include "prof/timer.hpp"
#include "util/cli.hpp"

namespace {

using namespace cmtbone;

struct Sample {
  double wall_seconds = 0;   // whole run, max over ranks is what run() takes
  double volume_seconds = 0; // rank 0 profiled "ax_ (flux divergence)"
};

core::Config sweep_config(int n, int threads) {
  core::Config cfg;
  cfg.n = n;
  cfg.ex = cfg.ey = cfg.ez = 4;
  cfg.physics = core::Physics::kProxyAdvection;
  cfg.fixed_dt = 1e-3;
  cfg.threads_per_rank = threads;
  return cfg;
}

Sample run_case(int ranks, const core::Config& cfg, int steps) {
  std::vector<prof::CallProfile> profiles;
  comm::RunOptions opts;
  opts.call_profiles = &profiles;
  prof::WallTimer t;
  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(steps);
  }, opts);
  Sample s;
  s.wall_seconds = t.seconds();
  for (const auto& entry : profiles.at(0).flat()) {
    if (entry.name == "ax_ (flux divergence)") s.volume_seconds = entry.inclusive;
  }
  return s;
}

std::vector<std::vector<double>> run_fields(int ranks, const core::Config& cfg,
                                            int steps) {
  std::vector<std::vector<double>> fields;
  std::mutex mu;
  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(steps);
    std::lock_guard<std::mutex> lock(mu);
    if (fields.size() < std::size_t(ranks) * driver.nfields()) {
      fields.resize(std::size_t(ranks) * driver.nfields());
    }
    for (int f = 0; f < driver.nfields(); ++f) {
      auto span = driver.field(f);
      fields[std::size_t(world.rank()) * driver.nfields() + f]
          .assign(span.begin(), span.end());
    }
  });
  return fields;
}

// --- smoke gates -------------------------------------------------------------

int run_smoke() {
  int failures = 0;

  // Gate 1: the serial path of for_elements is an inline call; its overhead
  // over a raw loop must stay < 3%. Median of many reps on an element-sized
  // workload keeps the measurement stable on a noisy box.
  {
    const std::size_t nel = 256, epts = 4096;
    std::vector<double> a(nel * epts, 1.0), b(nel * epts, 0.5);
    auto body = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t e = lo; e < hi; ++e) {
        double* ap = a.data() + e * epts;
        const double* bp = b.data() + e * epts;
        for (std::size_t p = 0; p < epts; ++p) ap[p] += 1.0000001 * bp[p];
      }
    };
    auto median_of = [&](const auto& run) {
      std::vector<double> xs;
      for (int r = 0; r < 21; ++r) {
        prof::WallTimer t;
        run();
        xs.push_back(t.seconds());
      }
      std::sort(xs.begin(), xs.end());
      return xs[xs.size() / 2];
    };
    body(0, nel);  // warm up
    const double raw = median_of([&] { body(0, nel); });
    const double pooled = median_of([&] {
      parallel::for_elements(nel, parallel::default_grain(nel, 1), 1, body);
    });
    const double ratio = pooled / raw;
    std::printf("smoke: threads_per_rank=1 overhead: raw %.3f ms, "
                "for_elements %.3f ms, ratio %.4f (gate < 1.03)\n",
                raw * 1e3, pooled * 1e3, ratio);
    if (ratio >= 1.03) {
      std::fprintf(stderr, "FAIL: serial for_elements overhead %.1f%% >= 3%%\n",
                   (ratio - 1.0) * 100.0);
      ++failures;
    }
  }

  // Gate 2: threaded runs must be bit-identical to serial. 2 ranks keeps a
  // real face exchange in the loop.
  {
    core::Config serial = sweep_config(5, 1);
    core::Config threaded = sweep_config(5, 4);
    const int steps = 3, ranks = 2;
    auto want = run_fields(ranks, serial, steps);
    auto got = run_fields(ranks, threaded, steps);
    bool same = want.size() == got.size();
    for (std::size_t i = 0; same && i < want.size(); ++i) {
      same = want[i].size() == got[i].size() &&
             std::memcmp(want[i].data(), got[i].data(),
                         want[i].size() * sizeof(double)) == 0;
    }
    std::printf("smoke: threads_per_rank=4 vs 1 bit-identity: %s\n",
                same ? "identical" : "DIFFERENT");
    if (!same) {
      std::fprintf(stderr, "FAIL: threaded run is not bit-identical\n");
      ++failures;
    }
  }

  std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("steps", "time steps per case (default 5)")
      .describe("json", "output path (default BENCH_threads.json)")
      .describe("smoke", "run the fast gates instead of the sweep");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();
  if (cli.has("smoke")) return run_smoke();

  const int steps = cli.get_int("steps", 5);
  const std::string path = cli.get("json", "BENCH_threads.json");
  const unsigned hw = std::thread::hardware_concurrency();
  const int workers = parallel::Pool::global().worker_count();

  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"thread_scaling\",\n"
               "  \"volume_kernel\": \"ax_ (flux divergence), rank 0 "
               "inclusive seconds\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"pool_workers\": %d,\n"
               "  \"cycle_unit\": \"%s\",\n"
               "  \"note\": \"speedup_vs_serial compares against "
               "threads_per_rank=1 at the same (n, ranks); on a host with "
               "hardware_concurrency <= ranks the pool is oversubscribed and "
               "flat curves are expected\",\n"
               "  \"results\": [\n",
               hw, workers, prof::cycle_unit_name());

  std::printf("=== intra-rank thread scaling (hardware_concurrency=%u, "
              "pool workers=%d) ===\n", hw, workers);
  bool first = true;
  for (int n : {8, 16}) {
    for (int ranks : {1, 2, 4}) {
      double serial_volume = 0, serial_wall = 0;
      for (int threads : {1, 2, 4}) {
        Sample s = run_case(ranks, sweep_config(n, threads), steps);
        if (threads == 1) {
          serial_volume = s.volume_seconds;
          serial_wall = s.wall_seconds;
        }
        const double vol_speedup =
            s.volume_seconds > 0 ? serial_volume / s.volume_seconds : 0.0;
        std::printf("  n=%2d ranks=%d threads=%d  wall %7.3f s  volume %7.3f s"
                    "  volume speedup %.2fx\n",
                    n, ranks, threads, s.wall_seconds, s.volume_seconds,
                    vol_speedup);
        std::fprintf(out,
                     "%s    {\"n\": %d, \"ranks\": %d, "
                     "\"threads_per_rank\": %d, \"steps\": %d, "
                     "\"wall_seconds\": %.6f, \"volume_seconds\": %.6f, "
                     "\"volume_speedup_vs_serial\": %.3f, "
                     "\"wall_speedup_vs_serial\": %.3f}",
                     first ? "" : ",\n", n, ranks, threads, steps,
                     s.wall_seconds, s.volume_seconds, vol_speedup,
                     s.wall_seconds > 0 ? serial_wall / s.wall_seconds : 0.0);
        first = false;
      }
    }
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("(json written to %s)\n", path.c_str());
  return 0;
}
