// §VI sweep: which gather-scatter algorithm wins as the job scales?
//
// The paper notes the method choice is problem- and machine-dependent:
// CMT-bone picked pairwise exchange on Compton, Nekbone picked the crystal
// router, all_reduce lost for both, and the choice may flip "as new kernels
// get added ... and the problem setup changes". This bench re-runs the
// startup tuning across rank counts and prints the winner at each scale.
//
// Usage: gs_autotune_sweep [--max-ranks 32] [--n 5]

#include <cstdio>

#include "comm/runtime.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/numbering.hpp"
#include "mesh/partition.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("max-ranks", "largest rank count (default 32)")
      .describe("n", "GLL points per direction (default 5)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int max_ranks = cli.get_int("max-ranks", 32);
  const int n = cli.get_int("n", 5);

  std::printf("=== gs method auto-selection across scales (§VI) ===\n\n");
  util::Table table({"ranks", "proc grid", "pairwise avg (s)",
                     "crystal avg (s)", "all_reduce avg (s)", "winner"});

  for (int p = 2; p <= max_ranks; p *= 2) {
    auto grid = mesh::BoxSpec::default_proc_grid(p);
    mesh::BoxSpec spec;
    spec.n = n;
    spec.px = grid[0];
    spec.py = grid[1];
    spec.pz = grid[2];
    spec.ex = 2 * grid[0];
    spec.ey = 2 * grid[1];
    spec.ez = 2 * grid[2];

    std::vector<gs::GatherScatter::TuneRow> rows;
    gs::Method winner = gs::Method::kPairwise;
    comm::run(p, [&](comm::Comm& world) {
      mesh::Partition part(spec, world.rank());
      auto ids = mesh::global_gll_ids(part);
      gs::GatherScatter handle(world, ids, gs::Method::kAuto);
      if (world.rank() == 0) {
        rows = handle.tuning();
        winner = handle.method();
      }
    });

    char grid_str[32];
    std::snprintf(grid_str, sizeof grid_str, "%dx%dx%d", grid[0], grid[1],
                  grid[2]);
    table.add_row({std::to_string(p), grid_str,
                   util::Table::sci(rows[0].avg, 3),
                   util::Table::sci(rows[1].avg, 3),
                   util::Table::sci(rows[2].avg, 3),
                   gs::method_name(winner)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("(expected shape: all_reduce trails at every scale;\n"
              " pairwise and crystal router trade places with topology)\n");
  return 0;
}
