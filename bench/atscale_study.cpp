// At-scale behavioral emulation study (§III-C at synthetic scale).
//
// Records the mini-app once at a small rank count, distils the steady-state
// step template (trace::extract_step_model), and then explores rank counts
// nobody can run in-process:
//
//  - discrete-event replay of *synthesized* traces (trace::extrapolate) up
//    to --max-replay-ranks, per machine preset — the full causal makespan
//    with blocking and collective rendezvous;
//  - analytic gather-scatter predictions (netmodel::predict_all over
//    trace::shape_at) from 2 ranks up to --max-ranks (default one million),
//    locating every pairwise/crystal-router/allreduce winner flip — the
//    crossover surface the paper's Fig. 7 measures one machine at a time.
//
// Emits BENCH_atscale.json. --smoke runs a tiny 8->64 extrapolation and
// exits nonzero unless the pipeline holds together (CI hook).
//
// Usage: atscale_study [--n 6] [--steps 3] [--max-replay-ranks 1024]
//                      [--max-ranks 1048576] [--out BENCH_atscale.json]
//                      [--smoke]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "netmodel/loggp.hpp"
#include "trace/extrapolate.hpp"
#include "trace/replay.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

core::Config config_for(const mesh::BoxSpec& spec) {
  core::Config cfg;
  cfg.n = spec.n;
  cfg.ex = spec.ex;
  cfg.ey = spec.ey;
  cfg.ez = spec.ez;
  cfg.px = spec.px;
  cfg.py = spec.py;
  cfg.pz = spec.pz;
  cfg.periodic = spec.periodic;
  cfg.gs_method = gs::Method::kPairwise;  // keep the trace one-message-per-partner
  return cfg;
}

struct ReplayRow {
  int ranks = 0;
  double makespan = 0, comm = 0, blocked = 0;
};

struct AnalyticRow {
  int ranks = 0;
  double pairwise = 0, crystal = 0, allreduce = 0;
  const char* best = "";
};

struct Crossover {
  int degree = 0;  // pairwise partners per rank (26 = structured torus)
  int ranks = 0;
  std::string from, to;
};

struct MachineReport {
  netmodel::LogGPParams machine;
  std::vector<ReplayRow> replay;
  std::vector<AnalyticRow> analytic;
  std::vector<Crossover> crossovers;
};

double mean_gs_intensity(const trace::StepModel& model) {
  double sum = 0;
  int count = 0;
  for (const trace::Phase& ph : model.phases) {
    if (ph.kind == trace::Phase::Kind::kGsRound &&
        ph.bytes_per_contact > 0) {
      sum += ph.bytes_per_contact;
      ++count;
    }
  }
  return count > 0 ? sum / count : double(sizeof(double));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "GLL points per direction (default 6)")
      .describe("steps", "steps to synthesize per replay (default 3)")
      .describe("max-replay-ranks",
                "largest rank count replayed as an explicit trace "
                "(default 1024; memory grows linearly)")
      .describe("max-ranks",
                "largest rank count in the analytic sweep (default 1048576)")
      .describe("out", "JSON report path (default BENCH_atscale.json)")
      .describe("smoke", "tiny 8->64 run; nonzero exit on any failure");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const bool smoke = cli.has("smoke");
  const int n = cli.get_int("n", 6);
  const int steps = cli.get_int("steps", smoke ? 2 : 3);
  const int max_replay = cli.get_int("max-replay-ranks", smoke ? 64 : 1024);
  const int max_ranks = cli.get_int("max-ranks", smoke ? 1024 : 1 << 20);
  const std::string out = cli.get("out", "BENCH_atscale.json");
  cli.reject_unknown();

  // --- base recording -------------------------------------------------------
  const int base_ranks = 8;
  mesh::BoxSpec base;
  base.n = n;
  base.px = base.py = base.pz = 2;
  base.ex = base.ey = base.ez = 4;  // 2x2x2 elements per rank

  trace::Recorder recorder(base_ranks);
  comm::RunOptions ropts;
  ropts.tracer = &recorder;
  comm::run(base_ranks, [&](comm::Comm& world) {
    core::Driver driver(world, config_for(base));
    driver.initialize(driver.default_ic());
    driver.run(steps + 2);
  }, ropts);
  const trace::Trace recorded = recorder.take();
  const trace::StepModel model = trace::extract_step_model(recorded, base);
  const double gs_intensity = mean_gs_intensity(model);

  // Recorded compute gaps carry this host's oversubscription; the modeled
  // machines give every rank a dedicated node.
  const unsigned hw = std::thread::hardware_concurrency();
  const double cores = hw == 0 ? 1.0 : double(hw);
  const double dedicate =
      base_ranks > cores ? cores / double(base_ranks) : 1.0;

  std::printf(
      "=== At-scale emulation study ===\n"
      "base: %d ranks, N=%d, %zu recorded events -> %zu phases/step "
      "(%.3g s/step), gs intensity %.1f B/id\n\n",
      base_ranks, n, recorded.total_events(), model.phases.size(),
      model.step_seconds, gs_intensity);

  // --- per-machine sweeps ---------------------------------------------------
  std::vector<MachineReport> reports;
  for (const auto& machine :
       {netmodel::qdr_infiniband(), netmodel::ethernet_10g(),
        netmodel::notional_exascale()}) {
    MachineReport rep;
    rep.machine = machine;

    for (int p = base_ranks; p <= max_replay; p *= 2) {
      const mesh::BoxSpec target = trace::scale_spec(base, p);
      trace::Trace synthetic = trace::extrapolate(model, target, steps);
      trace::ReplayConfig rc;
      rc.machine = machine;
      rc.compute_scale = dedicate;
      trace::ReplayResult rr = trace::replay(synthetic, rc);
      rep.replay.push_back(
          {target.nranks(), rr.makespan, rr.total_comm, rr.total_blocked});
    }

    const char* prev_best = nullptr;
    for (int p = 2; p <= max_ranks; p *= 2) {
      const mesh::BoxSpec target = trace::scale_spec(base, p);
      const netmodel::ExchangeShape shape =
          trace::shape_at(target, 0, gs_intensity);
      const netmodel::Prediction pred = netmodel::predict_all(machine, shape);
      AnalyticRow row;
      row.ranks = target.nranks();
      row.pairwise = pred.pairwise;
      row.crystal = pred.crystal;
      row.allreduce = pred.allreduce;
      row.best = pred.best();
      rep.analytic.push_back(row);
      if (prev_best != nullptr && std::string(prev_best) != row.best) {
        rep.crossovers.push_back({26, row.ranks, prev_best, row.best});
      }
      prev_best = row.best;
    }

    // Crossover surface along the neighbor-degree axis. On the structured
    // torus a rank never exceeds 26 partners and pairwise wins outright (the
    // paper measured exactly that at 256 ranks); CMT-nek's production
    // meshes are unstructured, fragmenting the same per-rank surface across
    // many more partners. Sweep that degree: same surface bytes, more
    // messages — the regime where the crystal router's log2(P) stages beat
    // the per-partner overheads, until P grows the stage count back past
    // them.
    for (int degree : {52, 104, 208}) {
      prev_best = nullptr;
      for (int p = 2; p <= max_ranks; p *= 2) {
        const mesh::BoxSpec target = trace::scale_spec(base, p);
        netmodel::ExchangeShape shape = trace::shape_at(target, 0, gs_intensity);
        shape.neighbors = std::min(degree, p - 1);
        const netmodel::Prediction pred = netmodel::predict_all(machine, shape);
        const char* best = pred.best();
        if (prev_best != nullptr && std::string(prev_best) != best) {
          rep.crossovers.push_back({degree, target.nranks(), prev_best, best});
        }
        prev_best = best;
      }
    }
    reports.push_back(std::move(rep));
  }

  // --- report ---------------------------------------------------------------
  for (const MachineReport& rep : reports) {
    std::printf("--- %s ---\n", rep.machine.name.c_str());
    util::Table rt({"ranks", "replayed makespan (s)", "comm (s)",
                    "blocked (s)"});
    for (const ReplayRow& r : rep.replay) {
      rt.add_row({util::Table::num(r.ranks, 0), util::Table::sci(r.makespan, 3),
                  util::Table::sci(r.comm, 3), util::Table::sci(r.blocked, 3)});
    }
    std::printf("%s", rt.str().c_str());
    if (rep.crossovers.empty()) {
      std::printf("analytic winner never changes up to %d ranks (%s)\n\n",
                  max_ranks, rep.analytic.back().best);
    } else {
      for (const Crossover& c : rep.crossovers) {
        std::printf("analytic crossover (degree %d) at %d ranks: %s -> %s\n",
                    c.degree, c.ranks, c.from.c_str(), c.to.c_str());
      }
      std::printf("\n");
    }
  }

  // --- JSON -----------------------------------------------------------------
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "atscale_study: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"atscale_study\",\n");
  std::fprintf(f,
               "  \"base\": {\"ranks\": %d, \"n\": %d, \"steps\": %d, "
               "\"phases_per_step\": %zu, \"step_seconds\": %.6e, "
               "\"gs_bytes_per_id\": %.3f},\n",
               base_ranks, n, steps, model.phases.size(), model.step_seconds,
               gs_intensity);
  std::fprintf(f, "  \"machines\": [\n");
  for (std::size_t m = 0; m < reports.size(); ++m) {
    const MachineReport& rep = reports[m];
    std::fprintf(f, "    {\"name\": \"%s\",\n      \"replay\": [",
                 rep.machine.name.c_str());
    for (std::size_t i = 0; i < rep.replay.size(); ++i) {
      const ReplayRow& r = rep.replay[i];
      std::fprintf(f,
                   "%s\n        {\"ranks\": %d, \"makespan\": %.6e, "
                   "\"comm\": %.6e, \"blocked\": %.6e}",
                   i == 0 ? "" : ",", r.ranks, r.makespan, r.comm, r.blocked);
    }
    std::fprintf(f, "\n      ],\n      \"analytic\": [");
    for (std::size_t i = 0; i < rep.analytic.size(); ++i) {
      const AnalyticRow& r = rep.analytic[i];
      std::fprintf(f,
                   "%s\n        {\"ranks\": %d, \"pairwise\": %.6e, "
                   "\"crystal\": %.6e, \"allreduce\": %.6e, \"best\": \"%s\"}",
                   i == 0 ? "" : ",", r.ranks, r.pairwise, r.crystal,
                   r.allreduce, r.best);
    }
    std::fprintf(f, "\n      ],\n      \"crossovers\": [");
    for (std::size_t i = 0; i < rep.crossovers.size(); ++i) {
      const Crossover& c = rep.crossovers[i];
      std::fprintf(f,
                   "%s\n        {\"degree\": %d, \"ranks\": %d, "
                   "\"from\": \"%s\", \"to\": \"%s\"}",
                   i == 0 ? "" : ",", c.degree, c.ranks, c.from.c_str(),
                   c.to.c_str());
    }
    std::fprintf(f, "\n      ]}%s\n", m + 1 == reports.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // --- smoke gate -----------------------------------------------------------
  if (smoke) {
    int failures = 0;
    auto check = [&](bool ok, const char* what) {
      if (!ok) {
        std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
        ++failures;
      }
    };
    check(!model.phases.empty(), "step model has phases");
    check(model.step_seconds > 0, "steady step has positive duration");
    for (const MachineReport& rep : reports) {
      check(!rep.replay.empty(), "replay sweep produced rows");
      for (const ReplayRow& r : rep.replay) {
        check(std::isfinite(r.makespan) && r.makespan > 0,
              "replayed makespan finite and positive");
      }
      check(rep.analytic.size() >=
                std::size_t(std::log2(double(max_ranks))),
            "analytic sweep covered the rank range");
      check(!rep.crossovers.empty(),
            "crossover surface has at least one winner flip");
    }
    if (failures > 0) return 1;
    std::printf("SMOKE PASSED\n");
  }
  return 0;
}
