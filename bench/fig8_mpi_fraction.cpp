// Fig. 8 reproduction: "% time spent in MPI calls across all MPI processes".
//
// mpiP's headline plot: for each rank, the fraction of total execution time
// spent inside communication routines. This bench runs the profiled proxy
// mini-app and prints the same per-rank breakdown plus summary statistics.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  bench::ProfiledRun run = bench::parse_run(argc, argv);
  prof::CommProfiler profiler(run.ranks);
  bench::execute(run, &profiler);

  std::printf(
      "=== Fig. 8: %% of execution time in comm routines, per rank ===\n"
      "%d ranks, N=%d, %dx%dx%d elements, %d steps\n\n",
      run.ranks, run.config.n, run.config.ex, run.config.ey, run.config.ez,
      run.steps);
  auto table = profiler.table_fraction_per_rank();
  std::printf("%s\n", table.str().c_str());
  bench::write_csv(run.csv_dir, "fig8_mpi_fraction", table);

  auto frac = profiler.comm_fraction_per_rank();
  double mean = std::accumulate(frac.begin(), frac.end(), 0.0) / frac.size();
  double lo = *std::min_element(frac.begin(), frac.end());
  double hi = *std::max_element(frac.begin(), frac.end());
  std::printf("summary: mean %.1f%%, min %.1f%%, max %.1f%% "
              "(spread indicates load imbalance, as the paper notes)\n",
              100 * mean, 100 * lo, 100 * hi);
  return 0;
}
