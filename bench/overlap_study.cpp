// Overlap study: blocking vs split-phase (overlapped) surface exchange.
//
// Sweeps polynomial orders N in {5, 9, 13, 17, 21, 25} (element grid scaled
// down as N grows so every point does comparable work) across rank counts,
// timing the same simulation with config.overlap off and on. A final
// chaos-straggler scenario slows one rank's message path by a large factor
// — the regime where hiding communication behind interior compute pays —
// and checks the overlapped path keeps its throughput advantage there.
// Results land in BENCH_overlap.json.
//
// Usage: overlap_study [--steps 5] [--json BENCH_overlap.json]
//        overlap_study --smoke   CI gate: single-rank median-of-reps; exits
//                                nonzero if the overlapped path is more than
//                                5% slower than blocking (the overlap
//                                machinery must be ~free when there is
//                                nothing to hide).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "prof/timer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;

struct RunResult {
  double seconds = 0.0;         // timed steps, rank-0 wall clock
  double hidden_fraction = 0.0; // overlap runs only
  double imbalance = 1.0;       // max/mean busy thread-CPU time across ranks
};

// Which physics system the study runs (--physics). The proxy default is
// the mini-app; burgers/euler exercise the nonlinear flux paths under the
// same exchange machinery.
cmtbone::core::Physics g_physics = cmtbone::core::Physics::kProxyAdvection;

Config study_config(int n, int e) {
  Config cfg;
  cfg.physics = g_physics;
  cfg.n = n;
  cfg.ex = cfg.ey = cfg.ez = e;
  cfg.fixed_dt = 1e-4;
  return cfg;
}

int elems_for(int n) {
  if (n <= 5) return 6;
  if (n <= 13) return 4;
  return 2;
}

RunResult best_run(int nranks, const Config& cfg, int steps,
                   const ChaosPolicy* policy, int reps);

RunResult time_run(int nranks, const Config& cfg, int steps,
                   const ChaosPolicy* policy) {
  RunResult result;
  cmtbone::comm::RunOptions options;
  ChaosEngine engine(policy ? *policy : ChaosPolicy{}, nranks);
  if (policy) options.chaos = &engine;
  cmtbone::comm::run(
      nranks,
      [&](Comm& world) {
        Driver driver(world, cfg);
        driver.initialize(driver.default_ic());
        driver.run(1);  // warm up allocations and message buffers
        driver.reset_overlap_stats();
        driver.reset_balance_stats();
        world.barrier();
        cmtbone::prof::WallTimer t;
        driver.run(steps);
        world.barrier();
        const double wall = t.seconds();
        const cmtbone::balance::Imbalance imb =
            cmtbone::balance::measure_imbalance(
                world, driver.balance_stats().busy_seconds());
        if (world.rank() == 0) {
          result.seconds = wall;
          result.hidden_fraction = driver.overlap_stats().hidden_fraction();
          result.imbalance = imb.factor();
        }
      },
      options);
  return result;
}

// Best-of-reps to shed scheduler noise; chaos delays are seeded, so every
// rep of a chaos run injects the identical delay schedule.
RunResult best_run(int nranks, const Config& cfg, int steps,
                   const ChaosPolicy* policy, int reps) {
  RunResult best;
  for (int r = 0; r < reps; ++r) {
    RunResult got = time_run(nranks, cfg, steps, policy);
    if (r == 0 || got.seconds < best.seconds) best = got;
  }
  return best;
}

struct Row {
  std::string scenario;
  int n = 0, e = 0, ranks = 0, steps = 0;
  double blocking_s = 0, overlap_s = 0, hidden = 0;
  double blocking_imb = 1, overlap_imb = 1;  // max/mean busy CPU time
  double speedup() const { return blocking_s / overlap_s; }
};

int run_smoke(int steps, int reps) {
  // Single rank: every face pairs locally, so the overlapped path does all
  // the same work plus the split-phase bookkeeping. Gate: that bookkeeping
  // must cost under 5%.
  const Config blocking_cfg = study_config(9, 4);
  Config overlap_cfg = blocking_cfg;
  overlap_cfg.overlap = true;

  std::vector<double> blocking_t, overlap_t;
  for (int r = 0; r < reps; ++r) {
    blocking_t.push_back(time_run(1, blocking_cfg, steps, nullptr).seconds);
    overlap_t.push_back(time_run(1, overlap_cfg, steps, nullptr).seconds);
  }
  std::sort(blocking_t.begin(), blocking_t.end());
  std::sort(overlap_t.begin(), overlap_t.end());
  const double blocking_med = blocking_t[blocking_t.size() / 2];
  const double overlap_med = overlap_t[overlap_t.size() / 2];
  const double ratio = overlap_med / blocking_med;
  std::printf(
      "overlap smoke (1 rank, N=9, 4^3 elements, %d steps, %d reps):\n"
      "  blocking median %.4fs, overlapped median %.4fs, ratio %.3f\n",
      steps, reps, blocking_med, overlap_med, ratio);
  if (ratio > 1.05) {
    std::printf("FAIL: overlapped path is more than 5%% slower than "
                "blocking on one rank\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("steps", "timed steps per run (default 5)")
      .describe("reps", "repetitions: best-of for the study (default 3), "
                        "median for --smoke (default 5)")
      .describe("json", "output file (default BENCH_overlap.json)")
      .describe("physics",
                "physics system: proxy|advection|burgers|euler "
                "(default proxy)")
      .describe("smoke",
                "CI gate: single-rank check that overlap costs < 5%");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  if (!core::physics_from_name(cli.get("physics", "proxy"), &g_physics)) {
    std::fprintf(stderr, "unknown --physics name\n");
    return 1;
  }

  const int steps = cli.get_int("steps", 5);
  if (cli.has("smoke")) return run_smoke(steps, cli.get_int("reps", 5));
  const int reps = cli.get_int("reps", 3);
  const std::string json_path = cli.get("json", "BENCH_overlap.json");

  std::vector<Row> rows;

  // --- N sweep across rank counts, quiet network -------------------------
  for (int n : {5, 9, 13, 17, 21, 25}) {
    for (int ranks : {1, 4}) {
      Config cfg = study_config(n, elems_for(n));
      Row row;
      row.scenario = "sweep";
      row.n = n;
      row.e = cfg.ex;
      row.ranks = ranks;
      row.steps = steps;
      RunResult blocking = best_run(ranks, cfg, steps, nullptr, reps);
      row.blocking_s = blocking.seconds;
      row.blocking_imb = blocking.imbalance;
      cfg.overlap = true;
      RunResult overlap = best_run(ranks, cfg, steps, nullptr, reps);
      row.overlap_s = overlap.seconds;
      row.hidden = overlap.hidden_fraction;
      row.overlap_imb = overlap.imbalance;
      rows.push_back(row);
      std::printf("sweep  N=%2d %d^3 elems %d ranks: blocking %.4fs "
                  "overlapped %.4fs (%.2fx, %.0f%% hidden)\n",
                  n, row.e, ranks, row.blocking_s, row.overlap_s,
                  row.speedup(), 100.0 * row.hidden);
    }
  }

  // --- chaos stragglers: random per-op delays, a different rank lags each
  // window ------------------------------------------------------------------
  // Per-op delay jitter is the system-noise model: whichever rank draws the
  // largest delays is that exchange window's straggler. The blocking path
  // re-synchronizes every window and so pays the per-window MAX of the
  // jitter; the overlapped path hides neighbor lateness behind interior
  // compute and pays only each rank's own share. (A rank slowed by a
  // CONSTANT factor gates both paths equally — its delays sit on its own
  // critical path and nothing can hide them — so the jitter regime is where
  // split-phase exchange earns its keep.)
  {
    const int ranks = 4;
    ChaosPolicy policy;
    policy.seed = 2015;
    policy.delay_probability = 0.08;  // sparse but heavy: one rank usually
    policy.max_delay_us = 10000;      // draws the big delay per window
    policy.hold_probability = 0.0;    // holds are tick-driven, not wall clock

    Config cfg = study_config(13, 4);
    Row row;
    row.scenario = "chaos_straggler";
    row.n = 13;
    row.e = cfg.ex;
    row.ranks = ranks;
    row.steps = 2 * steps;
    RunResult blocking = best_run(ranks, cfg, row.steps, &policy, reps);
    row.blocking_s = blocking.seconds;
    row.blocking_imb = blocking.imbalance;
    cfg.overlap = true;
    RunResult overlap = best_run(ranks, cfg, row.steps, &policy, reps);
    row.overlap_s = overlap.seconds;
    row.hidden = overlap.hidden_fraction;
    row.overlap_imb = overlap.imbalance;
    rows.push_back(row);
    std::printf("chaos  N=%2d %d^3 elems %d ranks (jitter stragglers): "
                "blocking %.4fs overlapped %.4fs (%.2fx, %.0f%% hidden)\n",
                row.n, row.e, ranks, row.blocking_s, row.overlap_s,
                row.speedup(), 100.0 * row.hidden);
  }

  util::Table table({"scenario", "N", "elems/dir", "ranks",
                     "blocking (s)", "overlapped (s)", "speedup",
                     "hidden frac", "imbalance"});
  table.set_title("Split-phase exchange overlap study");
  for (const Row& r : rows) {
    table.add_row({r.scenario, std::to_string(r.n), std::to_string(r.e),
                   std::to_string(r.ranks), util::Table::num(r.blocking_s, 4),
                   util::Table::num(r.overlap_s, 4),
                   util::Table::num(r.speedup(), 2),
                   util::Table::num(r.hidden, 2),
                   util::Table::num(r.blocking_imb, 2)});
  }
  std::printf("\n%s\n", table.str().c_str());

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"overlap_study\",\n"
               "  \"physics\": \"%s\",\n"
               "  \"timing\": \"rank-0 wall clock, best of %d runs of %d "
               "steps after one warm-up step\",\n"
               "  \"chaos_straggler\": \"sparse heavy delay jitter "
               "(delay_probability 0.08, max 10ms): a different rank "
               "straggles each exchange window\",\n"
               "  \"imbalance\": \"max/mean busy thread-CPU seconds across "
               "ranks (1.0 = perfectly balanced); see bench/balance_study "
               "for the dynamic balancer that drives it down\",\n"
               "  \"results\": [\n",
               core::physics_name(g_physics), reps, steps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"n\": %d, \"elems_per_dir\": "
                 "%d, \"ranks\": %d, \"steps\": %d, "
                 "\"blocking_seconds\": %.6f, \"overlap_seconds\": %.6f, "
                 "\"speedup\": %.3f, \"hidden_fraction\": %.3f, "
                 "\"blocking_imbalance\": %.4f, \"overlap_imbalance\": "
                 "%.4f}%s\n",
                 r.scenario.c_str(), r.n, r.e, r.ranks, r.steps,
                 r.blocking_s, r.overlap_s, r.speedup(), r.hidden,
                 r.blocking_imb, r.overlap_imb,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("(json written to %s)\n", json_path.c_str());
  return 0;
}
