// Fig. 10 reproduction: "Total and average size of messages sent in the
// most frequently called MPI calls".
//
// The data-transfer characterization the paper feeds into its network
// models: per call site, how many bytes move in total and per message.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  bench::ProfiledRun run = bench::parse_run(argc, argv);
  prof::CommProfiler profiler(run.ranks);
  bench::execute(run, &profiler);

  std::printf(
      "=== Fig. 10: message sizes of the most frequent comm calls ===\n"
      "%d ranks, N=%d, %dx%dx%d elements, %d steps\n\n",
      run.ranks, run.config.n, run.config.ex, run.config.ey, run.config.ez,
      run.steps);
  auto table = profiler.table_message_sizes(20);
  std::printf("%s\n", table.str().c_str());
  bench::write_csv(run.csv_dir, "fig10_msg_sizes", table);

  // The structural expectation: the nearest-neighbor face exchange moves
  // n^2-points-per-face messages; report the dominant data mover.
  long long total_bytes = 0;
  for (const auto& s : profiler.site_totals()) total_bytes += s.total_bytes;
  std::printf("total payload moved: %lld bytes across all sites\n",
              total_bytes);
  return 0;
}
