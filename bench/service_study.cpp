// Service study: what multi-tenant fault isolation costs and proves.
//
// The scenario is the service layer's reason to exist: several tenants
// submit simulation jobs into one worker pool while one tenant's jobs die
// over and over from injected faults (a repeating step-boundary kill).
// Part 1 measures goodput isolation: the healthy tenants' completed
// steps/second with the faulty tenant present must stay within 10% of the
// same workload on a fault-free service — per-tenant worker quotas plus
// per-job fault domains keep a crash-looping neighbor from eating the
// pool. Part 2 checks attribution: every faulted job ends kFailed with the
// chaos fault named in its own JobReport, and every healthy job still
// completes — a fault is never service-wide. Part 3 exercises
// checkpoint-backed preemption: a high-priority job evicts a running
// low-priority job, which later resumes from its suspend checkpoint and
// finishes bit-identical to an undisturbed run. Results land in
// BENCH_service.json.
//
// Usage: service_study [--jobs 8] [--steps 120] [--json BENCH_service.json]
//        service_study --smoke   CI gate: goodput ratio >= 0.9, faults
//                                attributed per job, preempt/resume
//                                bit-identity; also writes the JSON.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "core/driver.hpp"
#include "prof/timer.hpp"
#include "service/scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

namespace fs = std::filesystem;

using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::service::JobHandle;
using cmtbone::service::JobReport;
using cmtbone::service::JobSpec;
using cmtbone::service::JobState;
using cmtbone::service::Scheduler;
using cmtbone::service::ServiceOptions;

Config study_config() {
  Config cfg;
  cfg.n = 6;
  cfg.ex = cfg.ey = cfg.ez = 2;
  cfg.fixed_dt = 1e-4;
  return cfg;
}

// Scratch root for one scheduler's per-job checkpoint directories; prefers
// tmpfs so the study measures the service machinery, not the scratch disk.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag) {
    fs::path base = fs::temp_directory_path();
    std::error_code ec;
    if (fs::is_directory("/dev/shm", ec)) base = "/dev/shm";
    path =
        base / ("cmtbone_service_" + std::to_string(::getpid()) + "_" + tag);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// --- goodput isolation ------------------------------------------------------

struct GoodputParams {
  int jobs_per_tenant = 5;   // per healthy tenant
  int faulted_jobs = 4;
  int nsteps = 60;
  int checkpoint_interval = 20;
};

struct PhaseResult {
  double goodput = 0.0;  // healthy steps completed per second of makespan
  long long healthy_steps = 0;
  double makespan_s = 0.0;
  int faulted_attributed = 0;  // kFailed with the chaos fault in the error
  int faulted_other = 0;       // faulted jobs that ended any other way
  int healthy_completed = 0;
  int healthy_total = 0;
  cmtbone::prof::ServiceStats stats;
};

// One open-arrival phase: two healthy tenants submit jobs_per_tenant jobs
// each; with_chaos adds a third tenant whose every job dies from a
// repeating kill until its retry budget drains. The healthy arrival
// pattern is identical in both phases so their goodputs compare.
PhaseResult run_phase(const GoodputParams& p, bool with_chaos,
                      const std::string& tag) {
  ScratchDir scratch("goodput_" + tag);
  ServiceOptions opts;
  // Geometry of the isolation claim: two healthy tenants at quota 2 fit in
  // the 6-slot pool even when the faulty tenant holds its full quota, so
  // any goodput loss is service overhead, not capacity theft.
  opts.total_workers = 6;
  opts.tenant_max_workers = 2;
  opts.checkpoint_root = (scratch.path / "jobs").string();

  Config cfg = study_config();
  std::vector<std::unique_ptr<ChaosEngine>> engines;

  PhaseResult result;
  cmtbone::prof::WallTimer clock;
  std::vector<JobHandle> healthy;
  std::vector<JobHandle> faulted;
  {
    Scheduler sched(opts);
    const char* tenants[] = {"acme", "globex"};
    const int rounds = std::max(p.jobs_per_tenant, p.faulted_jobs);
    for (int i = 0; i < rounds; ++i) {
      for (const char* tenant : tenants) {
        if (i >= p.jobs_per_tenant) continue;
        JobSpec spec;
        spec.tenant = tenant;
        spec.config = cfg;
        spec.nsteps = p.nsteps;
        spec.ranks = 1;
        spec.checkpoint_interval = p.checkpoint_interval;
        spec.retry.backoff_initial_ms = 0.1;
        healthy.push_back(sched.submit(std::move(spec)));
      }
      if (with_chaos && i < p.faulted_jobs) {
        // A node that keeps dying: the kill fires at step 1 and re-arms
        // one step later, so every retry is killed again almost at once
        // and the per-job budget drains to a terminal, attributed
        // failure. Crash-looping this early also bounds how much CPU the
        // faulty tenant can steal on a fully loaded host — the isolation
        // the goodput gate measures is quota + fast fault containment,
        // not idle headroom.
        ChaosPolicy policy;
        policy.seed = 90 + std::uint64_t(i);
        policy.kill_rank = 0;
        policy.kill_step = 1;
        policy.kill_period = 1;
        policy.kill_max_count = 100;
        engines.push_back(std::make_unique<ChaosEngine>(policy, 1));
        JobSpec spec;
        spec.tenant = "chaosco";
        spec.config = cfg;
        spec.nsteps = p.nsteps;
        spec.ranks = 1;
        spec.checkpoint_interval = p.checkpoint_interval;
        spec.retry.max_retries = 1;
        spec.retry.backoff_initial_ms = 0.1;
        spec.chaos = engines.back().get();
        faulted.push_back(sched.submit(std::move(spec)));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (const JobHandle& h : healthy) {
      const JobReport r = h.wait();
      if (r.state == JobState::kCompleted) result.healthy_completed += 1;
      result.healthy_steps += r.steps_done;
    }
    result.makespan_s = clock.seconds();
    for (const JobHandle& h : faulted) {
      const JobReport r = h.wait();
      if (r.state == JobState::kFailed &&
          r.error.find("chaos") != std::string::npos) {
        result.faulted_attributed += 1;
      } else {
        result.faulted_other += 1;
      }
    }
    result.stats = sched.stats();
  }  // ~Scheduler drains
  result.healthy_total = int(healthy.size());
  result.goodput =
      result.makespan_s > 0 ? result.healthy_steps / result.makespan_s : 0.0;
  return result;
}

// --- preempt / resume bit-identity -----------------------------------------

using FieldDump = std::map<int, std::vector<std::vector<double>>>;

std::function<void(Driver&, Comm&)> capture_into(FieldDump* dump,
                                                 std::mutex* mu) {
  return [dump, mu](Driver& d, Comm& world) {
    std::vector<std::vector<double>> mine(std::size_t(d.nfields()));
    for (int f = 0; f < d.nfields(); ++f) {
      auto span = d.field(f);
      mine[std::size_t(f)].assign(span.begin(), span.end());
    }
    std::lock_guard<std::mutex> lock(*mu);
    (*dump)[world.rank()] = std::move(mine);
  };
}

bool bit_identical(const FieldDump& a, const FieldDump& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [rank, fields] : a) {
    const auto it = b.find(rank);
    if (it == b.end() || fields.size() != it->second.size()) return false;
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (fields[f] != it->second[f]) return false;
    }
  }
  return true;
}

struct PreemptResult {
  bool happened = false;    // the low job was actually suspended + resumed
  bool identical = false;   // resumed fields == undisturbed fields
  bool completed = false;   // both jobs reached their step counts
  int preemptions = 0;
  int dispatches = 0;
  int tries = 0;
};

// Run a long low-priority job, shove a high-priority job in behind it, and
// compare the evicted-then-resumed job's final fields against an
// undisturbed run of the same spec. Preemption is timing-dependent (the
// low job could finish before the eviction lands), so the scenario retries
// a few times before reporting failure.
PreemptResult run_preempt_scenario(int nsteps) {
  PreemptResult result;
  Config cfg = study_config();

  std::mutex mu;
  FieldDump baseline;
  {
    ScratchDir scratch("preempt_base");
    ServiceOptions opts;
    opts.total_workers = 2;
    opts.checkpoint_root = (scratch.path / "jobs").string();
    Scheduler sched(opts);
    JobSpec spec;
    spec.tenant = "solo";
    spec.config = cfg;
    spec.nsteps = nsteps;
    spec.ranks = 2;
    spec.checkpoint_interval = 10;
    spec.on_final = capture_into(&baseline, &mu);
    const JobReport r = sched.submit(std::move(spec)).wait();
    if (r.state != JobState::kCompleted) return result;
  }

  for (int attempt = 0; attempt < 3 && !result.happened; ++attempt) {
    result.tries = attempt + 1;
    ScratchDir scratch("preempt_" + std::to_string(attempt));
    ServiceOptions opts;
    opts.total_workers = 2;
    opts.checkpoint_root = (scratch.path / "jobs").string();
    Scheduler sched(opts);

    FieldDump resumed;
    JobSpec low;
    low.tenant = "batch";
    low.priority = 0;
    low.config = cfg;
    low.nsteps = nsteps;
    low.ranks = 2;
    low.checkpoint_interval = 10;
    low.on_final = capture_into(&resumed, &mu);
    JobHandle low_h = sched.submit(std::move(low));

    // Let the low job actually occupy the pool before the eviction.
    while (low_h.state() == JobState::kQueued) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    JobSpec high;
    high.tenant = "urgent";
    high.priority = 5;
    high.config = cfg;
    high.nsteps = 10;
    high.ranks = 2;
    high.checkpoint_interval = 10;
    JobHandle high_h = sched.submit(std::move(high));

    const JobReport high_r = high_h.wait();
    const JobReport low_r = low_h.wait();
    result.preemptions = low_r.preemptions;
    result.dispatches = low_r.dispatches;
    result.completed = high_r.state == JobState::kCompleted &&
                       low_r.state == JobState::kCompleted;
    result.happened = result.completed && low_r.preemptions >= 1 &&
                      low_r.dispatches >= 2;
    if (result.happened) result.identical = bit_identical(baseline, resumed);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("jobs", "jobs per healthy tenant (default 8; smoke 5)")
      .describe("steps", "steps per job (default 120; smoke 60)")
      .describe("reps", "goodput repetitions, median taken (default 3)")
      .describe("json", "output file (default BENCH_service.json)")
      .describe("smoke",
                "CI gate: goodput ratio >= 0.9, per-job fault attribution, "
                "preempt/resume bit-identity");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const bool smoke = cli.has("smoke");
  GoodputParams params;
  params.jobs_per_tenant = cli.get_int("jobs", smoke ? 5 : 8);
  params.faulted_jobs = smoke ? 4 : 6;
  params.nsteps = cli.get_int("steps", smoke ? 100 : 120);
  const int reps = cli.get_int("reps", smoke ? 5 : 3);
  const std::string json_path = cli.get("json", "BENCH_service.json");

  // --- part 1+2: goodput isolation and fault attribution -------------------
  {
    // Untimed warm-up: first-touch allocations, thread stacks, and the
    // tmpfs scratch dir all land outside the timed reps.
    GoodputParams warm;
    warm.jobs_per_tenant = 1;
    warm.faulted_jobs = 0;
    warm.nsteps = 5;
    run_phase(warm, false, "warmup");
  }
  std::vector<double> ratios;
  PhaseResult clean, chaos;  // last rep's phases, for reporting
  bool attribution_ok = true;  // must hold on every rep
  double median_ratio = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    PhaseResult c = run_phase(params, false, "clean" + std::to_string(rep));
    PhaseResult x = run_phase(params, true, "chaos" + std::to_string(rep));
    const double ratio = c.goodput > 0 ? x.goodput / c.goodput : 0.0;
    std::printf(
        "goodput rep %d: clean %.0f steps/s (%.3fs), faulted-tenant phase "
        "%.0f steps/s (%.3fs), ratio %.3f\n",
        rep, c.goodput, c.makespan_s, x.goodput, x.makespan_s, ratio);
    ratios.push_back(ratio);
    attribution_ok = attribution_ok &&
                     x.faulted_attributed == params.faulted_jobs &&
                     x.faulted_other == 0 &&
                     x.healthy_completed == x.healthy_total;
    clean = std::move(c);
    chaos = std::move(x);
  }
  {
    std::vector<double> sorted = ratios;
    std::sort(sorted.begin(), sorted.end());
    median_ratio = sorted[sorted.size() / 2];
  }
  std::printf(
      "isolation: median goodput ratio %.3f; faulted jobs attributed %d/%d, "
      "healthy completed %d/%d, job-level failures absorbed %lld\n",
      median_ratio, chaos.faulted_attributed, params.faulted_jobs,
      chaos.healthy_completed, chaos.healthy_total, chaos.stats.job_failures);

  // --- part 3: checkpoint-backed preemption --------------------------------
  const PreemptResult pre = run_preempt_scenario(smoke ? 300 : 600);
  std::printf(
      "preemption: %s after %d tr%s (%d preemption(s), %d dispatches), "
      "resumed fields %s baseline\n",
      pre.happened ? "suspended+resumed" : "DID NOT TRIGGER", pre.tries,
      pre.tries == 1 ? "y" : "ies", pre.preemptions, pre.dispatches,
      pre.identical ? "bit-identical to" : "DIFFER from");

  util::Table table({"tenant", "completed", "worker-seconds"});
  table.set_title("Faulted-phase fair-share ledger");
  for (const auto& [tenant, secs] : chaos.stats.tenant_worker_seconds) {
    const auto it = chaos.stats.tenant_completed.find(tenant);
    const long long done =
        it == chaos.stats.tenant_completed.end() ? 0 : it->second;
    table.add_row({tenant, std::to_string(done), util::Table::num(secs, 3)});
  }
  std::printf("\n%s\n", table.str().c_str());

  // --- gates ---------------------------------------------------------------
  int rc = 0;
  if (smoke) {
    if (median_ratio < 0.9) {
      std::printf(
          "FAIL: healthy-tenant goodput dropped more than 10%% with a "
          "faulted tenant present (ratio %.3f)\n",
          median_ratio);
      rc = 1;
    }
    if (!attribution_ok) {
      std::printf(
          "FAIL: fault attribution (%d/%d attributed, %d other, healthy "
          "%d/%d)\n",
          chaos.faulted_attributed, params.faulted_jobs, chaos.faulted_other,
          chaos.healthy_completed, chaos.healthy_total);
      rc = 1;
    }
    if (!pre.happened || !pre.identical) {
      std::printf("FAIL: preempt/resume (triggered=%d, bit-identical=%d)\n",
                  int(pre.happened), int(pre.identical));
      rc = 1;
    }
    if (rc == 0) std::printf("PASS\n");
  }

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"service_study\",\n"
      "  \"mode\": \"%s\",\n"
      "  \"config\": {\"workers\": 6, \"tenant_quota\": 2, "
      "\"healthy_tenants\": 2, \"jobs_per_tenant\": %d, \"faulted_jobs\": "
      "%d, \"steps_per_job\": %d, \"reps\": %d},\n"
      "  \"protocol\": \"per-job fault domains over run_with_recovery, "
      "fair-share dispatch with tenant quotas, checkpoint-backed "
      "preemption\",\n",
      smoke ? "smoke" : "full", params.jobs_per_tenant, params.faulted_jobs,
      params.nsteps, reps);
  std::fprintf(out,
               "  \"goodput\": {\"clean_steps_per_s\": %.1f, "
               "\"faulted_phase_steps_per_s\": %.1f, \"median_ratio\": %.4f, "
               "\"gate\": 0.9},\n",
               clean.goodput, chaos.goodput, median_ratio);
  std::fprintf(out,
               "  \"attribution\": {\"faulted_jobs\": %d, \"attributed\": "
               "%d, \"unattributed\": %d, \"healthy_completed\": %d, "
               "\"healthy_total\": %d, \"job_failures_absorbed\": %lld, "
               "\"job_restores\": %lld, \"mttr_seconds\": %.6f},\n",
               params.faulted_jobs, chaos.faulted_attributed,
               chaos.faulted_other, chaos.healthy_completed,
               chaos.healthy_total, chaos.stats.job_failures,
               chaos.stats.job_restores, chaos.stats.mttr_seconds());
  std::fprintf(out,
               "  \"preemption\": {\"triggered\": %s, \"bit_identical\": %s, "
               "\"preemptions\": %d, \"dispatches\": %d, \"tries\": %d},\n",
               pre.happened ? "true" : "false",
               pre.identical ? "true" : "false", pre.preemptions,
               pre.dispatches, pre.tries);
  std::fprintf(out, "  \"faulted_phase_tenants\": [\n");
  {
    std::size_t i = 0;
    for (const auto& [tenant, secs] : chaos.stats.tenant_worker_seconds) {
      const auto it = chaos.stats.tenant_completed.find(tenant);
      const long long done =
          it == chaos.stats.tenant_completed.end() ? 0 : it->second;
      std::fprintf(out,
                   "    {\"tenant\": \"%s\", \"completed\": %lld, "
                   "\"worker_seconds\": %.6f}%s\n",
                   tenant.c_str(), done, secs,
                   ++i < chaos.stats.tenant_worker_seconds.size() ? "," : "");
    }
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("(json written to %s)\n", json_path.c_str());
  return rc;
}
