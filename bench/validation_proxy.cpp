// Mini-app validation: does the proxy track the "full" application?
//
// The paper stresses (§II) that a mini-app must be validated against its
// parent: "A verification and validation methodology for identifying and
// understanding this relationship". Here the stand-in for the parent is
// this library's full Euler solve (nonlinear fluxes, wavespeed-dependent
// numerical flux), and the proxy is CMT-bone's abstraction (linear fluxes,
// same kernel and exchange structure). The bench profiles both and compares
// where the time goes — the proxy is faithful if the *distribution* across
// kernels matches even when absolute times differ.
//
// Usage: validation_proxy [--ranks 4] [--n 10] [--elems 4] [--steps 5]

#include <cstdio>
#include <map>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

std::map<std::string, double> kernel_shares(int ranks,
                                            const core::Config& cfg,
                                            int steps) {
  std::vector<prof::CallProfile> profiles;
  comm::RunOptions opts;
  opts.call_profiles = &profiles;
  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(steps);
  }, opts);

  prof::CallProfile merged;
  for (const auto& p : profiles) merged.merge(p);
  double total = merged.total_seconds();
  std::map<std::string, double> shares;
  for (const auto& entry : merged.flat()) {
    shares[entry.name] = total > 0 ? entry.exclusive / total : 0.0;
  }
  return shares;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 4)")
      .describe("n", "GLL points per direction (default 10)")
      .describe("elems", "global elements per direction (default 4)")
      .describe("steps", "time steps (default 5)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 4);
  const int steps = cli.get_int("steps", 5);

  core::Config proxy;
  proxy.physics = core::Physics::kProxyAdvection;
  proxy.n = cli.get_int("n", 10);
  proxy.ex = proxy.ey = proxy.ez = cli.get_int("elems", 4);
  proxy.use_dssum = true;

  core::Config full = proxy;
  full.physics = core::Physics::kEuler;
  full.use_dssum = false;  // the compressible solver is pure DG
  full.cfl = 0.2;

  std::printf(
      "=== Mini-app validation: proxy vs full-physics kernel profile ===\n"
      "%d ranks, N=%d, %dx%dx%d elements, %d steps each\n\n",
      ranks, proxy.n, proxy.ex, proxy.ey, proxy.ez, steps);

  auto proxy_shares = kernel_shares(ranks, proxy, steps);
  auto full_shares = kernel_shares(ranks, full, steps);

  util::Table table({"kernel", "proxy % of time", "full (Euler) % of time",
                     "abs diff"});
  std::map<std::string, int> all_keys;
  for (const auto& [k, v] : proxy_shares) all_keys[k] = 1;
  for (const auto& [k, v] : full_shares) all_keys[k] = 1;
  double max_diff = 0.0;
  for (const auto& [key, unused] : all_keys) {
    (void)unused;
    double a = proxy_shares.count(key) ? proxy_shares.at(key) : 0.0;
    double b = full_shares.count(key) ? full_shares.at(key) : 0.0;
    // dssum only exists in the proxy; skip structural differences.
    if (key.find("dssum") != std::string::npos) continue;
    max_diff = std::max(max_diff, std::abs(a - b));
    table.add_row({key, util::Table::pct(a), util::Table::pct(b),
                   util::Table::pct(std::abs(a - b))});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "largest per-kernel share difference: %.1f%%\n"
      "(the proxy is a faithful performance model where the shared kernels'\n"
      " shares track; the Euler path shifts weight toward pointwise flux\n"
      " evaluation, which the paper's future CMT-bone versions would absorb)\n",
      100 * max_diff);
  return 0;
}
