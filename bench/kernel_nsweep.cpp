// §V text: google-benchmark N-sweep of the derivative kernels over the
// paper's order range ("with N ranging between 5 and 25") and the mxm /
// dealiasing building blocks — including every kernel-dispatch backend
// (kernels/dispatch.hpp). Each flop-counted benchmark also reports
// pct_peak: its GFLOP/s as a percentage of the measured machine compute
// roof (prof/roofline.hpp).

#include <benchmark/benchmark.h>

#include <vector>

#include "kernels/dispatch.hpp"
#include "kernels/div.hpp"
#include "kernels/gradient.hpp"
#include "kernels/mxm.hpp"
#include "kernels/tensor.hpp"
#include "prof/roofline.hpp"
#include "sem/operators.hpp"
#include "util/rng.hpp"

namespace {

using cmtbone::kernels::Backend;
using cmtbone::kernels::GradVariant;

// items_processed = flops (the historical convention of this sweep), plus
// the roofline counter: pct_peak reads directly as percent of the measured
// machine peak.
void set_flop_counters(benchmark::State& state, long long flops_per_iter) {
  const double total = double(state.iterations()) * double(flops_per_iter);
  state.SetItemsProcessed(state.iterations() * flops_per_iter);
  const double peak = cmtbone::prof::machine().peak_gflops;
  if (peak > 0.0) {
    state.counters["pct_peak"] =
        benchmark::Counter(total * 100.0 / (peak * 1e9),
                           benchmark::Counter::kIsRate);
  }
}

struct Workload {
  cmtbone::sem::Operators op;
  std::vector<double> u, out;
  int nel;

  Workload(int n, int nel_in) : op(cmtbone::sem::Operators::build(n)), nel(nel_in) {
    const std::size_t pts = std::size_t(n) * n * n * nel;
    u.resize(pts);
    out.resize(pts);
    cmtbone::util::SplitMix64 rng(5);
    for (double& x : u) x = rng.uniform(-1, 1);
  }
};

void bench_grad(benchmark::State& state, GradVariant v, int dir) {
  const int n = int(state.range(0));
  const int nel = 32;
  Workload w(n, nel);
  for (auto _ : state) {
    switch (dir) {
      case 0:
        cmtbone::kernels::grad_r(v, w.op.d.data(), w.u.data(), w.out.data(), n,
                                 nel);
        break;
      case 1:
        cmtbone::kernels::grad_s(v, w.op.d.data(), w.u.data(), w.out.data(), n,
                                 nel);
        break;
      default:
        cmtbone::kernels::grad_t(v, w.op.d.data(), w.u.data(), w.out.data(), n,
                                 nel);
    }
    benchmark::DoNotOptimize(w.out.data());
  }
  set_flop_counters(state, cmtbone::kernels::grad_flops(n, nel));
}

void bench_grad_backend(benchmark::State& state, Backend b, int dir) {
  const int n = int(state.range(0));
  const int nel = 32;
  Workload w(n, nel);
  for (auto _ : state) {
    cmtbone::kernels::grad_backend(b, dir, w.op.d.data(), w.u.data(),
                                   w.out.data(), n, nel);
    benchmark::DoNotOptimize(w.out.data());
  }
  set_flop_counters(state, cmtbone::kernels::grad_flops(n, nel));
}

void GradBasicR(benchmark::State& s) { bench_grad(s, GradVariant::kBasic, 0); }
void GradBasicS(benchmark::State& s) { bench_grad(s, GradVariant::kBasic, 1); }
void GradBasicT(benchmark::State& s) { bench_grad(s, GradVariant::kBasic, 2); }
void GradTunedR(benchmark::State& s) {
  bench_grad(s, GradVariant::kFusedUnrolled, 0);
}
void GradTunedS(benchmark::State& s) {
  bench_grad(s, GradVariant::kFusedUnrolled, 1);
}
void GradTunedT(benchmark::State& s) {
  bench_grad(s, GradVariant::kFusedUnrolled, 2);
}
void GradBlockedR(benchmark::State& s) {
  bench_grad(s, GradVariant::kBlocked, 0);
}
void GradFixedNR(benchmark::State& s) {
  bench_grad_backend(s, Backend::kFixedN, 0);
}
void GradFixedNS(benchmark::State& s) {
  bench_grad_backend(s, Backend::kFixedN, 1);
}
void GradFixedNT(benchmark::State& s) {
  bench_grad_backend(s, Backend::kFixedN, 2);
}
void GradSimdR(benchmark::State& s) {
  bench_grad_backend(s, Backend::kSimd, 0);
}
void GradSimdS(benchmark::State& s) {
  bench_grad_backend(s, Backend::kSimd, 1);
}
void GradSimdT(benchmark::State& s) {
  bench_grad_backend(s, Backend::kSimd, 2);
}
void GradSimdFmaR(benchmark::State& s) {
  bench_grad_backend(s, Backend::kSimdFma, 0);
}
void GradSimdFmaS(benchmark::State& s) {
  bench_grad_backend(s, Backend::kSimdFma, 1);
}
void GradSimdFmaT(benchmark::State& s) {
  bench_grad_backend(s, Backend::kSimdFma, 2);
}
void GradBatchedR(benchmark::State& s) {
  bench_grad_backend(s, Backend::kBatched, 0);
}
void GradBatchedS(benchmark::State& s) {
  bench_grad_backend(s, Backend::kBatched, 1);
}
void GradBatchedT(benchmark::State& s) {
  bench_grad_backend(s, Backend::kBatched, 2);
}

void Div3Fused(benchmark::State& state) {
  const int n = int(state.range(0));
  const int nel = 32;
  Workload w(n, nel);
  std::vector<double> fy = w.u, fz = w.u;
  for (auto _ : state) {
    cmtbone::kernels::div3(w.op.d.data(), w.u.data(), fy.data(), fz.data(),
                           w.out.data(), n, nel, 1.0, 1.0, 1.0,
                           /*fused=*/true);
    benchmark::DoNotOptimize(w.out.data());
  }
  set_flop_counters(state, cmtbone::kernels::div3_flops(n, nel));
}

void Div3ThreeSweeps(benchmark::State& state) {
  const int n = int(state.range(0));
  const int nel = 32;
  Workload w(n, nel);
  std::vector<double> fy = w.u, fz = w.u, work(w.u.size());
  for (auto _ : state) {
    cmtbone::kernels::div3(w.op.d.data(), w.u.data(), fy.data(), fz.data(),
                           w.out.data(), n, nel, 1.0, 1.0, 1.0,
                           /*fused=*/false, work.data());
    benchmark::DoNotOptimize(w.out.data());
  }
  set_flop_counters(state, cmtbone::kernels::div3_flops(n, nel));
}

void Mxm(benchmark::State& state) {
  const int n = int(state.range(0));
  std::vector<double> a(std::size_t(n) * n), b(std::size_t(n) * n * n),
      c(std::size_t(n) * n * n);
  cmtbone::util::SplitMix64 rng(6);
  for (double& x : a) x = rng.uniform(-1, 1);
  for (double& x : b) x = rng.uniform(-1, 1);
  for (auto _ : state) {
    cmtbone::kernels::mxm(a.data(), n, b.data(), n, c.data(), n * n);
    benchmark::DoNotOptimize(c.data());
  }
  set_flop_counters(state, cmtbone::kernels::mxm_flops(n, n, n * n));
}

void DealiasRoundTrip(benchmark::State& state) {
  const int n = int(state.range(0));
  auto op = cmtbone::sem::Operators::build(n);
  const int m = op.m;
  std::vector<double> u(std::size_t(n) * n * n),
      fine(std::size_t(m) * m * m), back(u.size()),
      work(cmtbone::kernels::tensor_work_size(m, m));
  cmtbone::util::SplitMix64 rng(7);
  for (double& x : u) x = rng.uniform(-1, 1);
  for (auto _ : state) {
    cmtbone::kernels::dealias_roundtrip(op.interp.data(), op.interp_t.data(),
                                        m, n, u.data(), fine.data(),
                                        back.data(), work.data());
    benchmark::DoNotOptimize(back.data());
  }
}

}  // namespace

BENCHMARK(GradBasicR)->DenseRange(5, 25, 5);
BENCHMARK(GradBasicS)->DenseRange(5, 25, 5);
BENCHMARK(GradBasicT)->DenseRange(5, 25, 5);
BENCHMARK(GradTunedR)->DenseRange(5, 25, 5);
BENCHMARK(GradTunedS)->DenseRange(5, 25, 5);
BENCHMARK(GradTunedT)->DenseRange(5, 25, 5);
BENCHMARK(GradBlockedR)->DenseRange(5, 25, 5);
BENCHMARK(GradFixedNR)->DenseRange(5, 25, 5);
BENCHMARK(GradFixedNS)->DenseRange(5, 25, 5);
BENCHMARK(GradFixedNT)->DenseRange(5, 25, 5);
BENCHMARK(GradSimdR)->DenseRange(5, 25, 5);
BENCHMARK(GradSimdS)->DenseRange(5, 25, 5);
BENCHMARK(GradSimdT)->DenseRange(5, 25, 5);
BENCHMARK(GradSimdFmaR)->DenseRange(5, 25, 5);
BENCHMARK(GradSimdFmaS)->DenseRange(5, 25, 5);
BENCHMARK(GradSimdFmaT)->DenseRange(5, 25, 5);
BENCHMARK(GradBatchedR)->DenseRange(5, 25, 5);
BENCHMARK(GradBatchedS)->DenseRange(5, 25, 5);
BENCHMARK(GradBatchedT)->DenseRange(5, 25, 5);
BENCHMARK(Div3Fused)->DenseRange(5, 25, 10);
BENCHMARK(Div3ThreeSweeps)->DenseRange(5, 25, 10);
BENCHMARK(Mxm)->DenseRange(5, 25, 5);
BENCHMARK(DealiasRoundTrip)->DenseRange(5, 25, 10);

BENCHMARK_MAIN();
