// Fig. 4 reproduction: "Partial CMT-bone call graph and execution profile".
//
// The paper profiled CMT-bone with gprof on 8 MPI processes and found the
// derivative kernel (ax_) dominating, followed by full2face_cmt and gs_op_.
// This bench runs the mini-app under the call-tree profiler, merges all
// ranks, and prints both the call tree and a flat table of the key kernels
// with their share of total time.

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  // Enough steps that one-time setup (gs_setup discovery) amortizes, as in
  // the paper's long profiled runs, and a slightly higher default order so
  // the O(N^4) derivative work dominates the O(N^2) surface traffic the
  // way it does on a real node (the in-process fabric overprices waits).
  bench::ProfiledRun run =
      bench::parse_run(argc, argv, /*default_steps=*/10, /*default_n=*/12);
  run.config.use_dssum = true;  // include the gs_op_ kernel, as in Fig. 4

  prof::CommProfiler comm_prof(run.ranks);
  std::vector<prof::CallProfile> call_profiles;
  bench::execute(run, &comm_prof, &call_profiles);

  prof::CallProfile merged;
  for (const auto& p : call_profiles) merged.merge(p);

  std::printf(
      "=== Fig. 4: CMT-bone call graph and execution profile ===\n"
      "%d ranks, N=%d, %dx%dx%d elements, %d steps\n\n",
      run.ranks, run.config.n, run.config.ex, run.config.ey, run.config.ez,
      run.steps);
  std::printf("Call tree (all ranks merged, inclusive time):\n%s\n",
              merged.tree_report().c_str());

  auto flat = merged.flat();
  double total = merged.total_seconds();
  if (total <= 0) total = 1;
  util::Table table({"kernel", "calls", "exclusive (s)", "% of total"});
  table.set_title("Flat profile of the key kernels (paper: ax_ dominates,\n"
                  "then full2face_cmt and gs_op_)");
  for (const auto& e : flat) {
    table.add_row({e.name, std::to_string(e.calls),
                   util::Table::num(e.exclusive, 4),
                   util::Table::pct(e.exclusive / total)});
  }
  std::printf("%s\n", table.str().c_str());

  // The headline claim of Fig. 4: derivative computation is the most
  // expensive kernel.
  if (!flat.empty()) {
    std::printf("hottest kernel: %s (%.1f%% of profiled time)\n",
                flat.front().name.c_str(),
                100.0 * flat.front().exclusive / total);
  }
  return 0;
}
