// Fig. 7 reproduction: "Comparison of the two communication algorithm
// candidates (pairwise exchange and crystal router) used in CMT-bone and
// Nekbone".
//
// The paper's setup: 256 processes (8,8,4), 100 elements per process
// (5,5,4 local, 40,40,16 global), N=10 gridpoints, one timestep; avg/min/max
// time of each gather-scatter method across ranks, for both mini-apps.
// The default here shrinks the scale so the bench finishes quickly on one
// oversubscribed core; --paper-scale runs the exact Fig. 7 geometry.
//
// Usage: fig7_gs_methods [--ranks 32] [--n 6] [--paper-scale]

#include <cstdio>

#include "bench_common.hpp"
#include "comm/runtime.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/numbering.hpp"
#include "mesh/partition.hpp"
#include "nekbone/nekbone.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

struct Setup {
  int ranks;
  mesh::BoxSpec spec;
};

// Gather-scatter tuning rows for one mini-app's id pattern.
std::vector<gs::GatherScatter::TuneRow> tune_for(const Setup& setup) {
  std::vector<gs::GatherScatter::TuneRow> rows;
  comm::run(setup.ranks, [&](comm::Comm& world) {
    mesh::Partition part(setup.spec, world.rank());
    auto ids = mesh::global_gll_ids(part);
    gs::GatherScatter handle(world, ids, gs::Method::kAuto);
    if (world.rank() == 0) rows = handle.tuning();
  });
  return rows;
}

void print_rows(util::Table& table, const char* app,
                const std::vector<gs::GatherScatter::TuneRow>& rows) {
  for (const auto& row : rows) {
    table.add_row({app, gs::method_name(row.method),
                   util::Table::sci(row.avg, 4), util::Table::sci(row.min, 4),
                   util::Table::sci(row.max, 4)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 32)")
      .describe("n", "GLL points per element direction (default 6)")
      .describe("paper-scale", "exact Fig. 7 geometry: 256 ranks, N=10")
      .describe("csv-dir", "also write the result table as CSV here");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  Setup cmt;
  if (cli.has("paper-scale")) {
    cmt.ranks = 256;
    cmt.spec.n = 10;
    cmt.spec.ex = 40;
    cmt.spec.ey = 40;
    cmt.spec.ez = 16;
    cmt.spec.px = 8;
    cmt.spec.py = 8;
    cmt.spec.pz = 4;
  } else {
    cmt.ranks = cli.get_int("ranks", 32);
    auto grid = mesh::BoxSpec::default_proc_grid(cmt.ranks);
    cmt.spec.n = cli.get_int("n", 6);
    cmt.spec.px = grid[0];
    cmt.spec.py = grid[1];
    cmt.spec.pz = grid[2];
    // ~2 elements per rank per direction, echoing the 100-elements/rank
    // shape of the paper at reduced scale.
    cmt.spec.ex = 2 * grid[0];
    cmt.spec.ey = 2 * grid[1];
    cmt.spec.ez = 2 * grid[2];
  }
  cmt.spec.periodic = true;

  const int epr = int(cmt.spec.total_elements()) / cmt.ranks;
  std::printf(
      "=== Fig. 7: gather-scatter method comparison, CMT-bone vs Nekbone ===\n"
      "Setup: %d processors (%d,%d,%d), %d elements/process, N=%d,\n"
      "       element grid (%d,%d,%d), %lld total elements\n\n",
      cmt.ranks, cmt.spec.px, cmt.spec.py, cmt.spec.pz, epr, cmt.spec.n,
      cmt.spec.ex, cmt.spec.ey, cmt.spec.ez, cmt.spec.total_elements());

  // CMT-bone's gs pattern: the DG mesh numbering (its gs_op is used for
  // dssum over all GLL points). Nekbone's pattern: identical numbering but
  // non-periodic (Nekbone solves a boundary problem), which changes the
  // shared-id structure the methods see.
  Setup nek = cmt;
  nek.spec.periodic = false;

  auto cmt_rows = tune_for(cmt);
  auto nek_rows = tune_for(nek);

  util::Table table(
      {"Mini-app", "All-to-all method", "Time (avg) s", "Time (min) s",
       "Time (max) s"});
  print_rows(table, "CMT-bone", cmt_rows);
  print_rows(table, "Nekbone", nek_rows);
  std::printf("%s\n", table.str().c_str());
  bench::write_csv(cli.get("csv-dir", ""), "fig7_gs_methods", table);

  auto best = [](const std::vector<gs::GatherScatter::TuneRow>& rows) {
    const gs::GatherScatter::TuneRow* b = &rows[0];
    for (const auto& r : rows) {
      if (r.avg < b->avg) b = &r;
    }
    return gs::method_name(b->method);
  };
  std::printf("selected: CMT-bone -> %s, Nekbone -> %s\n", best(cmt_rows),
              best(nek_rows));
  std::printf("(paper: all_reduce too expensive for both; CMT-bone picked\n"
              " pairwise exchange, Nekbone picked crystal router)\n");
  return 0;
}
