// §VI extension: validate the network model against the live runtime.
//
// Two validation loops, both prerequisites for trusting the model at scale:
//
//  1. Per-gs_op: calibrate LogGP parameters on the in-process fabric
//     (ping-pong latency, eager-send overhead, bulk bandwidth), measure the
//     three gather-scatter algorithms on a real mesh workload, and print
//     predicted vs measured per method — keyed by method, so the rows stay
//     honest if the tuner ever reorders or skips an algorithm.
//
//  2. Whole-run emulation: record a small run, distil its steady-state step
//     template (trace::extract_step_model), re-synthesize traces at several
//     rank counts, and replay them under the calibrated machine against the
//     wall time of *real* runs at those rank counts. --gate turns the
//     stated tolerance into an exit code for CI.
//
// Usage: netmodel_validation [--ranks 16] [--n 6] [--steps 3]
//                            [--tolerance 5.0] [--gate]

#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/numbering.hpp"
#include "mesh/partition.hpp"
#include "netmodel/calibrate.hpp"
#include "prof/timer.hpp"
#include "trace/extrapolate.hpp"
#include "trace/replay.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

cmtbone::core::Config config_for(const cmtbone::mesh::BoxSpec& spec) {
  cmtbone::core::Config cfg;
  cfg.n = spec.n;
  cfg.ex = spec.ex;
  cfg.ey = spec.ey;
  cfg.ez = spec.ez;
  cfg.px = spec.px;
  cfg.py = spec.py;
  cfg.pz = spec.pz;
  cfg.periodic = spec.periodic;
  // CFL mode (the default): every step carries the dt reduction, which the
  // extractor needs as its per-step marker. Pairwise keeps the recorded
  // exchange structure in one-message-per-partner form.
  cfg.gs_method = cmtbone::gs::Method::kPairwise;
  return cfg;
}

// The in-process fabric time-slices ranks onto hardware threads once they
// outnumber cores, so a measured wall time is ~oversubscription(p) times
// the wall of a dedicated one-core-per-rank machine — the machine replay
// models. Recorded compute gaps carry the recording's own contention the
// same way. Both sides of the comparison are normalized through this.
double oversubscription(int ranks) {
  const unsigned hw = std::thread::hardware_concurrency();
  const double cores = hw == 0 ? 1.0 : double(hw);
  return ranks > cores ? double(ranks) / cores : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("ranks", "ranks for the per-gs_op table (default 16)")
      .describe("n", "GLL points per direction (default 6)")
      .describe("steps", "measured/emulated steps per validation run "
                         "(default 3)")
      .describe("tolerance", "emulation gate: max allowed predicted/measured "
                             "makespan ratio, either direction (default 5.0)")
      .describe("gate", "exit nonzero unless every emulated rank count is "
                        "within the tolerance");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const int ranks = cli.get_int("ranks", 16);
  const int n = cli.get_int("n", 6);
  const int steps = cli.get_int("steps", 3);
  const double tolerance = cli.get_double("tolerance", 5.0);
  const bool gate = cli.has("gate");
  cli.reject_unknown();

  // --- part 1: per-gs_op predictions vs the startup tuner -------------------
  auto grid = mesh::BoxSpec::default_proc_grid(ranks);
  mesh::BoxSpec spec;
  spec.n = n;
  spec.px = grid[0];
  spec.py = grid[1];
  spec.pz = grid[2];
  spec.ex = 2 * grid[0];
  spec.ey = 2 * grid[1];
  spec.ez = 2 * grid[2];

  netmodel::LogGPParams machine;
  netmodel::ExchangeShape shape;
  std::vector<gs::GatherScatter::TuneRow> measured;
  comm::run(ranks, [&](comm::Comm& world) {
    netmodel::LogGPParams params = netmodel::calibrate(world);
    if (world.rank() == 0) netmodel::set_calibrated_machine(params);
    mesh::Partition part(spec, world.rank());
    auto ids = mesh::global_gll_ids(part);
    gs::GatherScatter handle(world, ids, gs::Method::kPairwise);
    handle.tune(/*repetitions=*/10);
    if (world.rank() == 0) {
      machine = params;
      measured = handle.tuning();
      shape = handle.exchange_shape();
    }
  });

  std::printf("=== LogGP validation: predicted vs measured gs_op cost ===\n");
  std::printf(
      "calibrated fabric: latency %.2f us, overhead %.2f us, bandwidth "
      "%.2f GB/s, compute %.2f Gval/s\n\n",
      machine.latency * 1e6, machine.overhead * 1e6, machine.bandwidth / 1e9,
      machine.compute_rate / 1e9);

  auto predicted = netmodel::predict_all(machine, shape);
  // Key each measured row to its own method's prediction — the tuner may
  // reorder rows or skip the allreduce at large id spaces, so positional
  // pairing would silently compare across algorithms.
  auto prediction_for = [&](gs::Method m) {
    switch (m) {
      case gs::Method::kPairwise: return predicted.pairwise;
      case gs::Method::kCrystalRouter: return predicted.crystal;
      case gs::Method::kAllReduce: return predicted.allreduce;
      default: return 0.0;
    }
  };

  util::Table table(
      {"method", "measured avg (s)", "predicted (s)", "ratio meas/pred"});
  std::size_t meas_best = 0, pred_best = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double pred = prediction_for(measured[i].method);
    double ratio = pred > 0 ? measured[i].avg / pred : 0.0;
    table.add_row({gs::method_name(measured[i].method),
                   util::Table::sci(measured[i].avg, 3),
                   util::Table::sci(pred, 3), util::Table::num(ratio, 2)});
    if (measured[i].avg < measured[meas_best].avg) meas_best = i;
    if (pred < prediction_for(measured[pred_best].method)) pred_best = i;
  }
  std::printf("%s\n", table.str().c_str());

  // The model earns trust if it at least orders the algorithms correctly.
  std::printf("measured winner:  %s\npredicted winner: %s -> %s\n",
              gs::method_name(measured[meas_best].method),
              gs::method_name(measured[pred_best].method),
              meas_best == pred_best ? "model ranks the algorithms correctly"
                                     : "model mis-ranks on this fabric");
  std::printf(
      "(absolute ratios reflect that the in-process fabric is not a real\n"
      " network: waits are scheduler-bound on one oversubscribed core)\n\n");

  // --- part 2: whole-run emulation vs real runs -----------------------------
  // Record the base run once, distil the step template, then predict the
  // makespan of real runs at other rank counts from the synthesized traces.
  const int base_ranks = 8;
  mesh::BoxSpec base;
  base.n = n;
  base.px = base.py = base.pz = 2;
  base.ex = base.ey = base.ez = 4;  // 2x2x2 elements per rank, weak-scaled

  trace::Recorder recorder(base_ranks);
  comm::RunOptions ropts;
  ropts.tracer = &recorder;
  comm::run(base_ranks, [&](comm::Comm& world) {
    core::Driver driver(world, config_for(base));
    driver.initialize(driver.default_ic());
    driver.run(steps + 2);  // extra steps so the tail is steady
  }, ropts);
  trace::Trace recorded = recorder.take();
  trace::StepModel model = trace::extract_step_model(recorded, base);

  std::printf(
      "=== Emulation validation: synthesized trace vs real runs ===\n"
      "base recording: %d ranks, %zu events, %zu phases/step, "
      "%.3g s/step\n\n",
      base_ranks, recorded.total_events(), model.phases.size(),
      model.step_seconds);

  util::Table etable({"ranks", "measured (s)", "emulated (s)",
                      "ratio", "within tol"});
  bool all_within = true;
  for (int p : {2, 4, 8, 16, 32}) {
    const mesh::BoxSpec target = trace::scale_spec(base, p);

    double wall = 0.0;
    comm::run(p, [&](comm::Comm& world) {
      core::Driver driver(world, config_for(target));
      driver.initialize(driver.default_ic());
      driver.run(1);  // warm allocations and the first-touch paths
      world.barrier();
      prof::WallTimer t;
      driver.run(steps);
      world.barrier();
      if (world.rank() == 0) wall = t.seconds();
    });

    // Descale the recorded gaps to dedicated-machine compute, replay under
    // the calibrated fabric, then re-apply the target's time-slicing factor
    // to land back in the in-process frame the wall clock measured.
    trace::Trace synthetic = trace::extrapolate(model, target, steps);
    trace::ReplayConfig rc;
    rc.machine = machine;
    rc.compute_scale = 1.0 / oversubscription(base_ranks);
    trace::ReplayResult rr = trace::replay(synthetic, rc);
    const double emulated = rr.makespan * oversubscription(p);

    const double ratio = (wall > 0 && emulated > 0)
                             ? std::max(wall / emulated, emulated / wall)
                             : std::numeric_limits<double>::infinity();
    const bool within = ratio <= tolerance;
    all_within = all_within && within;
    etable.add_row({util::Table::num(p, 0), util::Table::sci(wall, 3),
                    util::Table::sci(emulated, 3),
                    util::Table::num(ratio, 2), within ? "yes" : "NO"});
  }
  std::printf("%s\n", etable.str().c_str());
  std::printf(
      "tolerance: %.1fx either direction (in-process runs share cores, so\n"
      "wall times carry scheduler noise a LogGP fabric does not model)\n",
      tolerance);

  if (gate && !all_within) {
    std::printf("GATE FAILED: emulated makespan outside tolerance\n");
    return 1;
  }
  if (gate) std::printf("GATE PASSED\n");
  return 0;
}
