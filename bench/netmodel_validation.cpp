// §VI extension: validate the LogGP model against the live runtime.
//
// Calibrates LogGP parameters on the in-process fabric (ping-pong latency,
// eager-send overhead, bulk bandwidth), measures the three gather-scatter
// algorithms on a real mesh workload, and prints predicted vs measured —
// the model-validation loop the paper prescribes before trusting a network
// model for architecture simulation.
//
// Usage: netmodel_validation [--ranks 16] [--n 6]

#include <cstdio>

#include "comm/runtime.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/numbering.hpp"
#include "mesh/partition.hpp"
#include "netmodel/calibrate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 16)")
      .describe("n", "GLL points per direction (default 6)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 16);
  const int n = cli.get_int("n", 6);

  auto grid = mesh::BoxSpec::default_proc_grid(ranks);
  mesh::BoxSpec spec;
  spec.n = n;
  spec.px = grid[0];
  spec.py = grid[1];
  spec.pz = grid[2];
  spec.ex = 2 * grid[0];
  spec.ey = 2 * grid[1];
  spec.ez = 2 * grid[2];

  netmodel::LogGPParams machine;
  netmodel::ExchangeShape shape;
  std::vector<gs::GatherScatter::TuneRow> measured;
  comm::run(ranks, [&](comm::Comm& world) {
    netmodel::LogGPParams params = netmodel::calibrate(world);
    mesh::Partition part(spec, world.rank());
    auto ids = mesh::global_gll_ids(part);
    gs::GatherScatter handle(world, ids, gs::Method::kPairwise);
    handle.tune(/*repetitions=*/10);
    if (world.rank() == 0) {
      machine = params;
      measured = handle.tuning();
      shape.ranks = world.size();
      shape.neighbors = int(handle.pairwise_neighbors().size());
      shape.pairwise_bytes = (long long)(handle.pairwise_send_values()) * 8;
      shape.crystal_records = (long long)(handle.topology().shared.size());
      shape.big_vector_bytes = handle.big_vector_size() * 8;
    }
  });

  std::printf("=== LogGP validation: predicted vs measured gs_op cost ===\n");
  std::printf(
      "calibrated fabric: latency %.2f us, overhead %.2f us, bandwidth "
      "%.2f GB/s, compute %.2f Gval/s\n\n",
      machine.latency * 1e6, machine.overhead * 1e6, machine.bandwidth / 1e9,
      machine.compute_rate / 1e9);

  auto predicted = netmodel::predict_all(machine, shape);
  const double pred[3] = {predicted.pairwise, predicted.crystal,
                          predicted.allreduce};

  util::Table table(
      {"method", "measured avg (s)", "predicted (s)", "ratio meas/pred"});
  for (std::size_t i = 0; i < measured.size(); ++i) {
    double ratio = pred[i] > 0 ? measured[i].avg / pred[i] : 0.0;
    table.add_row({gs::method_name(measured[i].method),
                   util::Table::sci(measured[i].avg, 3),
                   util::Table::sci(pred[i], 3), util::Table::num(ratio, 2)});
  }
  std::printf("%s\n", table.str().c_str());

  // The model earns trust if it at least orders the algorithms correctly.
  int meas_best = 0, pred_best = 0;
  for (int i = 1; i < 3; ++i) {
    if (measured[i].avg < measured[meas_best].avg) meas_best = i;
    if (pred[i] < pred[pred_best]) pred_best = i;
  }
  std::printf("measured winner:  %s\npredicted winner: %s -> %s\n",
              gs::method_name(measured[meas_best].method),
              gs::method_name(measured[pred_best].method),
              meas_best == pred_best ? "model ranks the algorithms correctly"
                                     : "model mis-ranks on this fabric");
  std::printf(
      "(absolute ratios reflect that the in-process fabric is not a real\n"
      " network: waits are scheduler-bound on one oversubscribed core)\n");
  return 0;
}
