// Recovery study: what resilience costs and what a failure costs.
//
// Part 1 sweeps the checkpoint interval K — every K steps the coordinator
// agrees on an epoch, writes CRC32-protected per-rank files, and ships each
// payload to a buddy rank — and reports per-step overhead against the same
// run with checkpointing off. Part 2 injects a chaos kill mid-run and
// measures the full repair bill: failure-detection latency on the
// survivors, steps rolled back to the last committed epoch, time to
// restore, and the end-to-end wall-clock ratio vs an uninterrupted run.
// Results land in BENCH_recovery.json.
//
// Usage: recovery_study [--steps 40] [--json BENCH_recovery.json]
//        recovery_study --smoke   CI gate: median-of-reps check that the
//                                 K=10 checkpoint cadence costs < 10% per
//                                 step; also writes the JSON.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "prof/timer.hpp"
#include "resilience/checkpoint_coordinator.hpp"
#include "resilience/recovery.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

namespace fs = std::filesystem;

using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::resilience::CheckpointCoordinator;
using cmtbone::resilience::CheckpointOptions;
using cmtbone::resilience::RecoveryOptions;
using cmtbone::resilience::RecoveryPolicy;
using cmtbone::resilience::RecoveryReport;

Config study_config() {
  Config cfg;
  cfg.n = 6;
  cfg.ex = cfg.ey = cfg.ez = 4;
  cfg.fixed_dt = 1e-4;
  return cfg;  // proxy physics: five fields, the mini-app abstraction
}

// Scratch directory for one timed run's checkpoint files. `in_memory`
// places it on tmpfs (when the host has one) so the measurement isolates
// the checkpoint machinery from the scratch disk's fsync latency.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag, bool in_memory = false) {
    fs::path base = fs::temp_directory_path();
    if (in_memory) {
      std::error_code ec;
      if (fs::is_directory("/dev/shm", ec)) base = "/dev/shm";
    }
    path = base /
           ("cmtbone_recovery_" + std::to_string(::getpid()) + "_" + tag);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

// Time `steps` steps, checkpointing every `interval` (0 = no coordinator).
// Returns rank-0 wall seconds over the timed steps.
double time_run(int nranks, const Config& cfg, int steps, int interval,
                cmtbone::prof::RecoveryStats* stats = nullptr,
                bool in_memory = false) {
  ScratchDir scratch("k" + std::to_string(interval), in_memory);
  double seconds = 0.0;
  cmtbone::comm::run(nranks, [&](Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(1);  // warm up allocations and message buffers
    world.barrier();
    cmtbone::prof::WallTimer t;
    if (interval > 0) {
      CheckpointOptions opt;
      opt.directory = scratch.path.string();
      opt.interval = interval;
      opt.stats = stats;
      CheckpointCoordinator coord(world, opt);
      driver.run(steps, [&](Driver& d) { coord.maybe_checkpoint(d); });
    } else {
      driver.run(steps);
    }
    world.barrier();
    if (world.rank() == 0) seconds = t.seconds();
  });
  return seconds;
}

double median_run(int nranks, const Config& cfg, int steps, int interval,
                  int reps, cmtbone::prof::RecoveryStats* stats = nullptr,
                  bool in_memory = false) {
  std::vector<double> t;
  for (int r = 0; r < reps; ++r) {
    t.push_back(time_run(nranks, cfg, steps, interval,
                         r == 0 ? stats : nullptr, in_memory));
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

struct SweepRow {
  int interval = 0;  // 0 = checkpointing off
  double seconds = 0.0;
  double overhead = 0.0;  // vs interval 0
  long long bytes_per_epoch = 0;
};

struct KillRow {
  std::string scenario;
  int ranks = 0;
  double uninterrupted_s = 0.0;
  double recovered_s = 0.0;
  int failures = 0;
  long long steps_lost = 0;
  long long restored_epoch = -1;
  double detection_mean_s = 0.0;
  double mttr_s = 0.0;
};

int run_smoke(int reps) {
  // Gate: at the default production cadence (K >= 10) the coordinated
  // checkpoint machinery — epoch agreement, serialize, CRC, atomic write,
  // buddy exchange, barrier, prune — must cost under 10% per step. The
  // gate runs at the paper's N=10 with ~100 elements per rank (the Fig. 7
  // per-rank load) so a step carries production-like compute; the
  // sub-paper sweep configs deliberately shrink the step until
  // durable-write latency dominates, which is the trade the full study
  // plots, not a regression. Checkpoints land on tmpfs when the host has
  // one: the gate bounds the machinery's own cost, and the scratch disk's
  // fsync latency — which varies by orders of magnitude across CI
  // machines and is not a property of this code — is the full study's
  // subject, not the gate's.
  Config cfg = study_config();
  cfg.n = 10;
  cfg.ex = cfg.ey = cfg.ez = 6;
  const int nranks = 2;
  const int steps = 20;
  const double base =
      median_run(nranks, cfg, steps, 0, reps, nullptr, /*in_memory=*/true);
  const double k10 =
      median_run(nranks, cfg, steps, 10, reps, nullptr, /*in_memory=*/true);
  const double overhead = k10 / base - 1.0;
  std::printf(
      "recovery smoke (%d ranks, N=%d, %d^3 elements, %d steps, %d reps):\n"
      "  no-checkpoint median %.4fs, K=10 median %.4fs, overhead %.1f%%\n",
      nranks, cfg.n, cfg.ex, steps, reps, base, k10, 100.0 * overhead);
  if (overhead > 0.10) {
    std::printf("FAIL: K=10 checkpointing costs more than 10%% per step\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("steps", "timed steps per run (default 40)")
      .describe("reps", "repetitions, median taken (default 3; smoke 5)")
      .describe("ranks", "ranks for the sweep and kill scenarios (default 2)")
      .describe("json", "output file (default BENCH_recovery.json)")
      .describe("smoke", "CI gate: K=10 checkpoint overhead must be < 10%");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int steps = cli.get_int("steps", 40);
  const int nranks = cli.get_int("ranks", 2);
  const std::string json_path = cli.get("json", "BENCH_recovery.json");
  const bool smoke = cli.has("smoke");
  const int reps = cli.get_int("reps", smoke ? 5 : 3);
  const Config cfg = study_config();

  int smoke_rc = 0;
  if (smoke) smoke_rc = run_smoke(reps);

  // --- checkpoint-interval sweep -----------------------------------------
  std::vector<SweepRow> sweep;
  const double base =
      smoke ? 0.0 : median_run(nranks, cfg, steps, 0, reps);
  if (!smoke) {
    sweep.push_back({0, base, 0.0, 0});
    for (int k : {1, 2, 5, 10, 20}) {
      prof::RecoveryStats stats;
      SweepRow row;
      row.interval = k;
      row.seconds = median_run(nranks, cfg, steps, k, reps, &stats);
      row.overhead = row.seconds / base - 1.0;
      row.bytes_per_epoch =
          stats.checkpoints > 0 ? stats.checkpoint_bytes / stats.checkpoints
                                : 0;
      sweep.push_back(row);
      std::printf("sweep  K=%2d: %.4fs (%+.1f%%), %lld bytes/epoch/rank\n", k,
                  row.seconds, 100.0 * row.overhead, row.bytes_per_epoch);
    }
  }

  // --- kill-and-recover scenarios ----------------------------------------
  std::vector<KillRow> kills;
  if (!smoke) {
    struct Scenario {
      const char* name;
      long long kill_step;
    };
    const int kill_steps = steps;
    for (const Scenario& s :
         {Scenario{"early", kill_steps / 5}, Scenario{"mid", kill_steps / 2},
          Scenario{"late", kill_steps - 2}}) {
      KillRow row;
      row.scenario = s.name;
      row.ranks = nranks;
      row.uninterrupted_s = base;

      ScratchDir scratch(std::string("kill_") + s.name);
      ChaosPolicy policy;
      policy.seed = 2015;
      policy.kill_rank = nranks - 1;
      policy.kill_step = std::max(1ll, s.kill_step);
      ChaosEngine engine(policy, nranks);

      RecoveryPolicy rpolicy;
      rpolicy.backoff_initial_ms = 0.1;
      RecoveryOptions options;
      options.checkpoint.directory = scratch.path.string();
      options.checkpoint.interval = 10;
      options.chaos = &engine;

      prof::WallTimer t;
      RecoveryReport report =
          resilience::run_with_recovery(nranks, cfg, kill_steps, rpolicy,
                                        options);
      row.recovered_s = t.seconds();
      row.failures = report.failures;
      row.steps_lost = report.stats.steps_lost;
      row.restored_epoch = report.last_restored_epoch;
      row.detection_mean_s = report.stats.mean_detection_seconds();
      row.mttr_s = report.stats.mttr_seconds();
      kills.push_back(row);
      std::printf(
          "kill   %-5s (step %lld): %.4fs vs %.4fs clean, %d failure(s), "
          "%lld steps lost, restored epoch %lld, detect %.1fms, MTTR %.1fms\n",
          s.name, policy.kill_step, row.recovered_s, row.uninterrupted_s,
          row.failures, row.steps_lost, row.restored_epoch,
          1e3 * row.detection_mean_s, 1e3 * row.mttr_s);
    }

    util::Table table({"K", "seconds", "overhead", "bytes/epoch/rank"});
    table.set_title("Checkpoint-interval overhead sweep");
    for (const SweepRow& r : sweep) {
      table.add_row({r.interval == 0 ? "off" : std::to_string(r.interval),
                     util::Table::num(r.seconds, 4),
                     util::Table::num(100.0 * r.overhead, 1) + "%",
                     std::to_string(r.bytes_per_epoch)});
    }
    std::printf("\n%s\n", table.str().c_str());
  }

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"recovery_study\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"config\": {\"ranks\": %d, \"n\": %d, \"elems_per_dir\": "
               "%d, \"steps\": %d, \"reps\": %d},\n"
               "  \"protocol\": \"coordinated epoch checkpoints, CRC32 + "
               "atomic rename, buddy replication to rank+1, two-version "
               "ring\",\n",
               smoke ? "smoke" : "full", nranks, cfg.n, cfg.ex, steps, reps);
  std::fprintf(out, "  \"interval_sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::fprintf(out,
                 "    {\"interval\": %d, \"seconds\": %.6f, \"overhead\": "
                 "%.4f, \"bytes_per_epoch_per_rank\": %lld}%s\n",
                 r.interval, r.seconds, r.overhead, r.bytes_per_epoch,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"kill_scenarios\": [\n");
  for (std::size_t i = 0; i < kills.size(); ++i) {
    const KillRow& r = kills[i];
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"ranks\": %d, \"uninterrupted_seconds\": "
        "%.6f, \"recovered_seconds\": %.6f, \"failures\": %d, "
        "\"steps_lost\": %lld, \"restored_epoch\": %lld, "
        "\"detection_mean_seconds\": %.6f, \"mttr_seconds\": %.6f}%s\n",
        r.scenario.c_str(), r.ranks, r.uninterrupted_s, r.recovered_s,
        r.failures, r.steps_lost, r.restored_epoch, r.detection_mean_s,
        r.mttr_s, i + 1 < kills.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("(json written to %s)\n", json_path.c_str());
  return smoke_rc;
}
