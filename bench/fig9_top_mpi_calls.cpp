// Fig. 9 reproduction: "Time spent in the 20 most expensive MPI calls".
//
// The paper's observation: MPI_Wait dominates, exposing synchronization /
// load-balance cost that analytic network models struggle to capture. This
// bench prints the top-20 comm call sites by aggregate time across ranks,
// labeled site/operation the way mpiP attributes call sites.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  bench::ProfiledRun run = bench::parse_run(argc, argv);
  prof::CommProfiler profiler(run.ranks);
  bench::execute(run, &profiler);

  std::printf(
      "=== Fig. 9: time in the top 20 comm call sites ===\n"
      "%d ranks, N=%d, %dx%dx%d elements, %d steps\n\n",
      run.ranks, run.config.n, run.config.ex, run.config.ey, run.config.ez,
      run.steps);
  auto table = profiler.table_top_sites(20);
  std::printf("%s\n", table.str().c_str());
  bench::write_csv(run.csv_dir, "fig9_top_mpi_calls", table);

  // How much of comm time is synchronization (waits) vs data movement?
  double wait = 0, total = 0;
  for (const auto& s : profiler.site_totals()) {
    total += s.seconds;
    if (s.site.find("MPI_Wait") != std::string::npos ||
        s.site.find("MPI_Barrier") != std::string::npos) {
      wait += s.seconds;
    }
  }
  if (total > 0) {
    std::printf("synchronization share of comm time: %.1f%% "
                "(paper: MPI_Wait dominates -> load imbalance)\n",
                100 * wait / total);
  }
  return 0;
}
