// Figs. 5 & 6 reproduction: partial-derivative kernel runtimes, instruction
// counts, and cycle counts, with and without loop transformations.
//
// Paper setup: AMD Opteron 6378, gfortran, Nel=1563, N=10, 1000 "steps"
// (kernel invocations), PAPI counters. Here: the same kernels in C++, with
// hardware counters via perf_event_open when the kernel allows it,
// otherwise the analytic instruction model plus TSC cycles. The paper's
// headline: loop fusion + unroll makes dudt 2.31x and dudr 1.03x faster,
// while duds gains nothing because its access pattern forbids fusion.
//
// Usage: fig5_fig6_derivative_opt [--nel 200] [--steps 100] [--n 10]
//        (--nel 1563 --steps 1000 for the paper's exact workload)
//        [--json FILE] instead sweeps N=5..25 timing every kernel-dispatch
//        backend (scalar, fixed-N, SIMD, SIMD+FMA, batched) on the
//        derivative contraction shapes, reports GFLOP/s and % of the
//        measured machine peak per backend, and writes JSON. Fails loudly
//        (exit 1) if any dispatched backend loses to scalar across the
//        sweep, printing the losing variant and every N where it lost.
//        [--smoke] autotunes a subset of N and gates that the autotuned
//        selection is not slower than forced-scalar (the CI smoke check).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/gradient.hpp"
#include "kernels/mxm.hpp"
#include "prof/perf_counters.hpp"
#include "prof/roofline.hpp"
#include "prof/timer.hpp"
#include "sem/operators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Measurement {
  double seconds = 0;
  unsigned long long instructions = 0;
  unsigned long long cycles = 0;
  bool hw = false;
  // What `cycles` counts: real core cycles from perf_event when hw is true,
  // otherwise prof::read_cycles() — TSC ticks on x86 but steady-clock
  // *nanoseconds* on other platforms. Reported next to every count so the
  // two are never compared as if they shared a unit.
  const char* cycle_unit = "";
};

const char* measured_cycle_unit(bool hw) {
  return hw ? "hw-cycles" : cmtbone::prof::cycle_unit_name();
}

Measurement measure(cmtbone::kernels::GradVariant v, int dir, const double* d,
                    const double* u, double* out, int n, int nel, int steps) {
  using namespace cmtbone::kernels;
  auto call = [&] {
    switch (dir) {
      case 0: grad_r(v, d, u, out, n, nel); break;
      case 1: grad_s(v, d, u, out, n, nel); break;
      default: grad_t(v, d, u, out, n, nel); break;
    }
  };
  call();  // warm up

  Measurement m;
  cmtbone::prof::HwCounters hw;
  cmtbone::prof::WallTimer t;
  auto c0 = cmtbone::prof::read_cycles();
  hw.start();
  for (int s = 0; s < steps; ++s) call();
  hw.stop();
  auto c1 = cmtbone::prof::read_cycles();
  m.seconds = t.seconds();
  m.hw = hw.available();
  m.cycle_unit = measured_cycle_unit(m.hw);
  if (m.hw) {
    m.instructions = hw.instructions();
    m.cycles = hw.cycles();
  } else {
    m.instructions =
        (unsigned long long)(grad_instruction_estimate(v, n, nel)) * steps;
    m.cycles = c1 - c0;
  }
  return m;
}

// --- backend sweep (--json) -------------------------------------------------
//
// Times every kernel-dispatch backend on the derivative contraction pair
// (dudr + dudt over a batch of elements, the shapes the solver routes
// through mxm), via the same grad_backend entry point the dispatch layer
// uses in production. Best-of-k timing; element batch scaled so every N
// does comparable work. Reports GFLOP/s and percent of the measured
// machine compute peak per backend.
double best_of_sweeps(const std::function<void()>& body) {
  body();  // warm up
  double best = 1e300;
  for (int s = 0; s < 7; ++s) {
    cmtbone::prof::WallTimer t;
    for (int r = 0; r < 20; ++r) body();
    best = std::min(best, t.seconds() / 20.0);
  }
  return best;
}

int run_backend_json_sweep(const std::string& path) {
  using namespace cmtbone;
  using kernels::Backend;
  const auto& backends = kernels::all_backends();
  const prof::Machine& mach = prof::machine();

  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"fig5_fig6_derivative_opt --json\",\n"
               "  \"compare\": \"kernel dispatch backends (scalar, fixed-n, "
               "simd, simd-fma, batched) on the derivative contraction "
               "pair\",\n"
               "  \"shapes\": \"per element: dudr (NxN * NxN^2) + dudt "
               "(N^2xN * NxN) via kernels::grad_backend\",\n"
               "  \"timing\": \"best of 7 samples, 20 sweeps per sample\",\n"
               "  \"machine\": {\"isa\": \"%s\", \"peak_gflops\": %.2f, "
               "\"mem_gbytes_per_s\": %.2f},\n"
               "  \"results\": [\n",
               mach.isa.c_str(), mach.peak_gflops, mach.mem_gbytes);

  std::printf("=== kernel backend sweep (isa %s, peak %.1f GFLOP/s, "
              "mem %.1f GB/s) ===\n",
              mach.isa.c_str(), mach.peak_gflops, mach.mem_gbytes);

  // Per-backend log-speedup accumulators vs scalar, plus every N where a
  // backend lost — the loud-failure check gates each dispatched backend and
  // names the loser, not just fixed-N.
  std::vector<double> log_speedup(backends.size(), 0.0);
  std::vector<std::vector<int>> losses(backends.size());
  double log_simd_over_fixed_5_16 = 0.0;
  int points_5_16 = 0;
  int sweep_points = 0;
  bool first = true;

  for (int n = 5; n <= 25; ++n) {
    const int nel = std::max(4, 4000 / (n * n));
    const std::size_t epts = std::size_t(n) * n * n;
    util::SplitMix64 rng(7 * n + 1);
    std::vector<double> d(std::size_t(n) * n), u(epts * nel),
        scratch(epts * nel);
    for (double& x : d) x = rng.uniform(-1, 1);
    for (double& x : u) x = rng.uniform(-1, 1);

    // r + t derivative of the whole batch: 2 x 2 N^4 nel flops.
    const double flops = 2.0 * kernels::grad_flops(n, nel);
    const double bytes = 2.0 * kernels::grad_bytes(n, nel);
    const double intensity = flops / bytes;

    std::vector<double> secs(backends.size());
    for (std::size_t bi = 0; bi < backends.size(); ++bi) {
      const Backend b = backends[bi];
      secs[bi] = best_of_sweeps([&] {
        kernels::grad_backend(b, 0, d.data(), u.data(), scratch.data(), n,
                              nel);
        kernels::grad_backend(b, 2, d.data(), u.data(), scratch.data(), n,
                              nel);
      });
    }

    const double scalar_s = secs[0];
    double fixed_s = scalar_s, best_simd_s = 1e300;
    std::size_t best_bi = 0;
    std::fprintf(out,
                 "%s    {\"n\": %d, \"nel\": %d, \"intensity\": %.3f, "
                 "\"backends\": {",
                 first ? "" : ",\n", n, nel, intensity);
    first = false;
    std::printf("  N=%2d nel=%4d:", n, nel);
    for (std::size_t bi = 0; bi < backends.size(); ++bi) {
      const Backend b = backends[bi];
      const double gflops = flops / secs[bi] / 1e9;
      const double speedup = scalar_s / secs[bi];
      std::fprintf(out,
                   "%s\"%s\": {\"seconds\": %.9e, \"gflops\": %.3f, "
                   "\"pct_peak\": %.2f, \"speedup_vs_scalar\": %.3f}",
                   bi == 0 ? "" : ", ", kernels::backend_name(b), secs[bi],
                   gflops, prof::percent_of_peak(mach, gflops), speedup);
      std::printf(" %s %.1fGF(%2.0f%%)", kernels::backend_name(b), gflops,
                  prof::percent_of_peak(mach, gflops));
      if (secs[bi] < secs[best_bi]) best_bi = bi;
      if (b == Backend::kFixedN) fixed_s = secs[bi];
      if (b == Backend::kSimd || b == Backend::kSimdFma ||
          b == Backend::kBatched) {
        best_simd_s = std::min(best_simd_s, secs[bi]);
      }
      if (bi > 0) {
        log_speedup[bi] += std::log(speedup);
        if (speedup < 1.0) losses[bi].push_back(n);
      }
    }
    std::fprintf(out, "}, \"best\": \"%s\"}",
                 kernels::backend_name(backends[best_bi]));
    std::printf("  best=%s\n", kernels::backend_name(backends[best_bi]));
    if (n >= 5 && n <= 16) {
      log_simd_over_fixed_5_16 += std::log(fixed_s / best_simd_s);
      ++points_5_16;
    }
    ++sweep_points;
  }

  std::fprintf(out, "\n  ],\n  \"geomean_speedup_vs_scalar\": {");
  std::printf("geomean speedup vs scalar:");
  for (std::size_t bi = 1; bi < backends.size(); ++bi) {
    const double g = std::exp(log_speedup[bi] / sweep_points);
    std::fprintf(out, "%s\"%s\": %.3f", bi == 1 ? "" : ", ",
                 kernels::backend_name(backends[bi]), g);
    std::printf("  %s %.2fx", kernels::backend_name(backends[bi]), g);
  }
  const double simd_over_fixed =
      std::exp(log_simd_over_fixed_5_16 / points_5_16);
  std::fprintf(out,
               "},\n  \"geomean_best_simd_over_fixed_n5_16\": %.3f\n}\n",
               simd_over_fixed);
  std::fclose(out);
  std::printf("\ngeomean best-SIMD speedup over fixed-N (N=5..16): %.2fx\n",
              simd_over_fixed);
  std::printf("(json written to %s)\n", path.c_str());

  // Every dispatched backend exists purely as an optimization over the
  // scalar reference; a backend that loses across the sweep means the
  // build is misconfigured (e.g. a TU compiled without its intended flags)
  // and the numbers would silently misrepresent the kernels. Fail loudly,
  // naming the variant and each N where it lost.
  int rc = 0;
  for (std::size_t bi = 1; bi < backends.size(); ++bi) {
    const double g = std::exp(log_speedup[bi] / sweep_points);
    if (g < 1.0) {
      std::fprintf(stderr,
                   "FAIL: backend '%s' is slower than scalar across the "
                   "sweep (geomean %.3fx < 1.0); losing N:",
                   kernels::backend_name(backends[bi]), g);
      for (int n : losses[bi]) std::fprintf(stderr, " %d", n);
      std::fprintf(stderr, "\n");
      rc = 1;
    }
  }
  if (simd_over_fixed < 1.0) {
    std::fprintf(stderr,
                 "FAIL: best SIMD/batched backend loses to fixed-N on the "
                 "paper range N=5..16 (geomean %.3fx < 1.0)\n",
                 simd_over_fixed);
    rc = 1;
  }
  return rc;
}

// --- autotune smoke gate (--smoke) ------------------------------------------
//
// CI check: autotune a few paper-range sizes, install the table, and verify
// the dispatched (autotuned) selection is not slower than forced-scalar on
// an independent re-measurement. The 0.9 floor absorbs timer noise on a
// shared host; a genuine inversion (mis-tuned table, broken TU flags)
// lands far below it.
int run_smoke() {
  using namespace cmtbone;
  const std::vector<int> ns = {5, 8, 10, 13, 16};
  kernels::TuneTable table = kernels::autotune(ns);
  kernels::apply_tune_table(table);
  std::printf("=== autotune smoke (isa %s) ===\n", kernels::isa_name());

  double log_sum = 0.0;
  for (int n : ns) {
    const int nel = std::max(4, 2000 / (n * n));
    const std::size_t epts = std::size_t(n) * n * n;
    util::SplitMix64 rng(13 * n + 5);
    std::vector<double> d(std::size_t(n) * n), u(epts * nel),
        scratch(epts * nel);
    for (double& x : d) x = rng.uniform(-1, 1);
    for (double& x : u) x = rng.uniform(-1, 1);
    auto time_backend = [&](std::optional<kernels::Backend> force) {
      kernels::ScopedBackendForce guard(force);
      return best_of_sweeps([&] {
        kernels::grad_dispatch(0, d.data(), u.data(), scratch.data(), n, nel);
        kernels::grad_dispatch(2, d.data(), u.data(), scratch.data(), n, nel);
      });
    };
    const double scalar_s = time_backend(kernels::Backend::kScalar);
    const double tuned_s = time_backend(std::nullopt);
    const double speedup = scalar_s / tuned_s;
    std::printf("  N=%2d tuned=%s  %.2fx vs scalar\n", n,
                kernels::backend_name(kernels::selected_backend(n)), speedup);
    log_sum += std::log(speedup);
  }
  const double geomean = std::exp(log_sum / double(ns.size()));
  std::printf("geomean autotuned speedup vs scalar: %.2fx\n", geomean);
  if (geomean < 0.9) {
    std::fprintf(stderr,
                 "FAIL: autotuned kernel selection is slower than scalar "
                 "(geomean %.3fx < 0.9) — tuning picked a mis-built or "
                 "mis-measured backend\n",
                 geomean);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("nel", "elements (default 200; paper used 1563)")
      .describe("steps", "kernel invocations (default 100; paper used 1000)")
      .describe("n", "GLL points per direction (default 10)")
      .describe("csv-dir", "also write result tables as CSV here")
      .describe("json",
                "sweep N=5..25 over every kernel backend and write JSON here")
      .describe("smoke",
                "autotune a few N and gate autotuned-vs-scalar (CI check)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  if (cli.has("smoke")) {
    return run_smoke();
  }
  if (cli.has("json")) {
    return run_backend_json_sweep(cli.get("json", "BENCH_kernels.json"));
  }

  const int nel = cli.get_int("nel", 200);
  const int steps = cli.get_int("steps", 100);
  const int n = cli.get_int("n", 10);
  const std::string csv_dir = cli.get("csv-dir", "");

  auto op = sem::Operators::build(n);
  const std::size_t pts = std::size_t(n) * n * n * nel;
  std::vector<double> u(pts), out(pts);
  util::SplitMix64 rng(99);
  for (double& x : u) x = rng.uniform(-1, 1);

  const char* names[] = {"dudr", "duds", "dudt"};
  Measurement opt[3], basic[3];
  for (int dir = 0; dir < 3; ++dir) {
    opt[dir] = measure(kernels::GradVariant::kFusedUnrolled, dir, op.d.data(),
                       u.data(), out.data(), n, nel, steps);
    basic[dir] = measure(kernels::GradVariant::kBasic, dir, op.d.data(),
                         u.data(), out.data(), n, nel, steps);
  }

  const char* unit = measured_cycle_unit(opt[0].hw);
  std::printf(
      "=== Figs. 5/6: derivative kernel loop transformations ===\n"
      "Nel=%d, N=%d, %d invocations per kernel; counters: %s\n"
      "cycle unit: %s\n\n",
      nel, n, steps,
      opt[0].hw ? "hardware (perf_event)"
                : "analytic model + prof::read_cycles()",
      unit);

  const std::string cycles_col = std::string("Total Cycles (") + unit + ")";
  util::Table with({"Derivatives", "Runtime (seconds)", "Total instructions",
                    cycles_col});
  with.set_title("Fig. 5: with loop transformations (fused + unrolled)");
  for (int dir : {2, 0, 1}) {  // paper order: dudt, dudr, duds
    with.add_row({names[dir], util::Table::num(opt[dir].seconds, 3),
                  std::to_string(opt[dir].instructions),
                  std::to_string(opt[dir].cycles)});
  }
  std::printf("%s\n", with.str().c_str());
  cmtbone::bench::write_csv(csv_dir, "fig5_with_transformations", with);

  util::Table without({"Derivatives", "Runtime (seconds)", "Total instructions",
                       cycles_col});
  without.set_title("Fig. 6: basic implementation (no loop transformations)");
  for (int dir : {2, 0, 1}) {
    without.add_row({names[dir], util::Table::num(basic[dir].seconds, 3),
                     std::to_string(basic[dir].instructions),
                     std::to_string(basic[dir].cycles)});
  }
  std::printf("%s\n", without.str().c_str());
  cmtbone::bench::write_csv(csv_dir, "fig6_basic_implementation", without);

  std::printf("Speedups from loop transformations (paper: dudt 2.31x, dudr "
              "1.03x, duds ~1x):\n");
  for (int dir : {2, 0, 1}) {
    std::printf("  %s: %.2fx\n", names[dir],
                basic[dir].seconds / opt[dir].seconds);
  }

  // Roofline context: where these kernels sit against the measured machine
  // roofs (see prof/roofline.hpp for the probes and the cache-residency
  // caveat).
  const prof::Machine& mach = prof::machine();
  const double flops = double(kernels::grad_flops(n, nel)) * steps;
  const double intensity =
      double(kernels::grad_flops(n, nel)) / double(kernels::grad_bytes(n, nel));
  std::printf(
      "\nRoofline (isa %s, peak %.1f GFLOP/s, mem %.1f GB/s, "
      "intensity %.2f flop/byte -> attainable %.1f GFLOP/s):\n",
      mach.isa.c_str(), mach.peak_gflops, mach.mem_gbytes, intensity,
      prof::attainable_gflops(mach, intensity));
  for (int dir : {2, 0, 1}) {
    const double gflops = flops / opt[dir].seconds / 1e9;
    std::printf("  %s (fused+unrolled): %6.2f GFLOP/s = %4.1f%% of peak\n",
                names[dir], gflops, prof::percent_of_peak(mach, gflops));
  }
  return 0;
}
