// Figs. 5 & 6 reproduction: partial-derivative kernel runtimes, instruction
// counts, and cycle counts, with and without loop transformations.
//
// Paper setup: AMD Opteron 6378, gfortran, Nel=1563, N=10, 1000 "steps"
// (kernel invocations), PAPI counters. Here: the same kernels in C++, with
// hardware counters via perf_event_open when the kernel allows it,
// otherwise the analytic instruction model plus TSC cycles. The paper's
// headline: loop fusion + unroll makes dudt 2.31x and dudr 1.03x faster,
// while duds gains nothing because its access pattern forbids fusion.
//
// Usage: fig5_fig6_derivative_opt [--nel 200] [--steps 100] [--n 10]
//        (--nel 1563 --steps 1000 for the paper's exact workload)
//        [--json FILE] instead sweeps N=5..25 comparing the fixed-N mxm
//        microkernel dispatch against the runtime-N mxm on the derivative
//        contraction shapes and writes the timings as JSON.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/gradient.hpp"
#include "kernels/mxm.hpp"
#include "prof/perf_counters.hpp"
#include "prof/timer.hpp"
#include "sem/operators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Measurement {
  double seconds = 0;
  unsigned long long instructions = 0;
  unsigned long long cycles = 0;
  bool hw = false;
  // What `cycles` counts: real core cycles from perf_event when hw is true,
  // otherwise prof::read_cycles() — TSC ticks on x86 but steady-clock
  // *nanoseconds* on other platforms. Reported next to every count so the
  // two are never compared as if they shared a unit.
  const char* cycle_unit = "";
};

const char* measured_cycle_unit(bool hw) {
  return hw ? "hw-cycles" : cmtbone::prof::cycle_unit_name();
}

Measurement measure(cmtbone::kernels::GradVariant v, int dir, const double* d,
                    const double* u, double* out, int n, int nel, int steps) {
  using namespace cmtbone::kernels;
  auto call = [&] {
    switch (dir) {
      case 0: grad_r(v, d, u, out, n, nel); break;
      case 1: grad_s(v, d, u, out, n, nel); break;
      default: grad_t(v, d, u, out, n, nel); break;
    }
  };
  call();  // warm up

  Measurement m;
  cmtbone::prof::HwCounters hw;
  cmtbone::prof::WallTimer t;
  auto c0 = cmtbone::prof::read_cycles();
  hw.start();
  for (int s = 0; s < steps; ++s) call();
  hw.stop();
  auto c1 = cmtbone::prof::read_cycles();
  m.seconds = t.seconds();
  m.hw = hw.available();
  m.cycle_unit = measured_cycle_unit(m.hw);
  if (m.hw) {
    m.instructions = hw.instructions();
    m.cycles = hw.cycles();
  } else {
    m.instructions =
        (unsigned long long)(grad_instruction_estimate(v, n, nel)) * steps;
    m.cycles = c1 - c0;
  }
  return m;
}

// --- fixed-N vs runtime-N mxm sweep (--json) --------------------------------
//
// Times the two contraction shapes the derivative kernels route through mxm
// (dudr: (N x N)(N x N^2); dudt: (N^2 x N)(N x N)) over a batch of elements,
// once through the runtime-N mxm and once through the fixed-N dispatch
// table. Best-of-k timing; element batch scaled so every N does comparable
// work.
int run_mxm_json_sweep(const std::string& path) {
  using namespace cmtbone;
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"fig5_fig6_derivative_opt --json\",\n"
               "  \"compare\": \"kernels::mxm_fixed<N> dispatch vs runtime-N "
               "kernels::mxm\",\n"
               "  \"shapes\": \"per element: dudr (NxN * NxN^2) + dudt "
               "(N^2xN * NxN)\",\n"
               "  \"timing\": \"best of 7 samples, 20 sweeps per sample\",\n"
               "  \"cycle_unit\": \"%s\",\n"
               "  \"results\": [\n",
               cmtbone::prof::cycle_unit_name());

  std::printf("=== fixed-N mxm dispatch vs runtime mxm (N sweep) ===\n");
  bool first = true;
  double log_speedup_sum = 0.0;
  int sweep_points = 0;
  for (int n = 5; n <= 25; ++n) {
    const int nel = std::max(4, 4000 / (n * n));
    const std::size_t epts = std::size_t(n) * n * n;
    util::SplitMix64 rng(7 * n + 1);
    std::vector<double> d(std::size_t(n) * n), u(epts * nel), scratch(epts * nel);
    for (double& x : d) x = rng.uniform(-1, 1);
    for (double& x : u) x = rng.uniform(-1, 1);

    kernels::MxmFixedFn fixed = kernels::mxm_fixed_kernel(n);
    auto run_runtime = [&] {
      for (int e = 0; e < nel; ++e) {
        kernels::mxm(d.data(), n, u.data() + e * epts, n,
                     scratch.data() + e * epts, n * n);
        kernels::mxm(u.data() + e * epts, n * n, d.data(), n,
                     scratch.data() + e * epts, n);
      }
    };
    auto run_fixed = [&] {
      for (int e = 0; e < nel; ++e) {
        fixed(d.data(), n, u.data() + e * epts, scratch.data() + e * epts,
              n * n);
        fixed(u.data() + e * epts, n * n, d.data(),
              scratch.data() + e * epts, n);
      }
    };
    auto best_of = [&](const auto& body) {
      body();  // warm up
      double best = 1e300;
      for (int s = 0; s < 7; ++s) {
        prof::WallTimer t;
        for (int r = 0; r < 20; ++r) body();
        best = std::min(best, t.seconds() / 20.0);
      }
      return best;
    };

    const double runtime_s = best_of(run_runtime);
    const double fixed_s = best_of(run_fixed);
    // 2 flops per mul-add; two contractions of 2 N^4 per element.
    const double gflop = 4.0 * n * n * n * n * nel / 1e9;
    std::printf("  N=%2d nel=%4d runtime %8.3f us  fixed %8.3f us  "
                "speedup %.2fx\n",
                n, nel, runtime_s * 1e6, fixed_s * 1e6, runtime_s / fixed_s);
    std::fprintf(out,
                 "%s    {\"n\": %d, \"nel\": %d, "
                 "\"runtime_mxm_seconds\": %.9e, "
                 "\"fixed_mxm_seconds\": %.9e, "
                 "\"runtime_gflops\": %.3f, \"fixed_gflops\": %.3f, "
                 "\"speedup\": %.3f}",
                 first ? "" : ",\n", n, nel, runtime_s, fixed_s,
                 gflop / runtime_s, gflop / fixed_s, runtime_s / fixed_s);
    first = false;
    log_speedup_sum += std::log(runtime_s / fixed_s);
    ++sweep_points;
  }
  const double geomean = std::exp(log_speedup_sum / sweep_points);
  std::fprintf(out, "\n  ],\n  \"geomean_speedup\": %.3f\n}\n", geomean);
  std::fclose(out);
  std::printf("geomean fixed-N speedup over runtime-N: %.2fx\n", geomean);
  std::printf("(json written to %s)\n", path.c_str());
  // The fixed-N dispatch exists purely as an optimization; if it ever loses
  // to the runtime-N kernel across the sweep, the build is misconfigured
  // (e.g. the dispatch table compiled without its intended flags) and the
  // numbers would silently misrepresent §V. Fail loudly instead.
  if (geomean < 1.0) {
    std::fprintf(stderr,
                 "FAIL: fixed-N mxm is slower than runtime-N mxm "
                 "(geomean %.3fx < 1.0) — the specialized kernels regressed "
                 "or the build flags are wrong\n",
                 geomean);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("nel", "elements (default 200; paper used 1563)")
      .describe("steps", "kernel invocations (default 100; paper used 1000)")
      .describe("n", "GLL points per direction (default 10)")
      .describe("csv-dir", "also write result tables as CSV here")
      .describe("json",
                "sweep N=5..25 fixed-N vs runtime mxm and write JSON here");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  if (cli.has("json")) {
    return run_mxm_json_sweep(cli.get("json", "BENCH_kernels.json"));
  }

  const int nel = cli.get_int("nel", 200);
  const int steps = cli.get_int("steps", 100);
  const int n = cli.get_int("n", 10);
  const std::string csv_dir = cli.get("csv-dir", "");

  auto op = sem::Operators::build(n);
  const std::size_t pts = std::size_t(n) * n * n * nel;
  std::vector<double> u(pts), out(pts);
  util::SplitMix64 rng(99);
  for (double& x : u) x = rng.uniform(-1, 1);

  const char* names[] = {"dudr", "duds", "dudt"};
  Measurement opt[3], basic[3];
  for (int dir = 0; dir < 3; ++dir) {
    opt[dir] = measure(kernels::GradVariant::kFusedUnrolled, dir, op.d.data(),
                       u.data(), out.data(), n, nel, steps);
    basic[dir] = measure(kernels::GradVariant::kBasic, dir, op.d.data(),
                         u.data(), out.data(), n, nel, steps);
  }

  const char* unit = measured_cycle_unit(opt[0].hw);
  std::printf(
      "=== Figs. 5/6: derivative kernel loop transformations ===\n"
      "Nel=%d, N=%d, %d invocations per kernel; counters: %s\n"
      "cycle unit: %s\n\n",
      nel, n, steps,
      opt[0].hw ? "hardware (perf_event)"
                : "analytic model + prof::read_cycles()",
      unit);

  const std::string cycles_col = std::string("Total Cycles (") + unit + ")";
  util::Table with({"Derivatives", "Runtime (seconds)", "Total instructions",
                    cycles_col});
  with.set_title("Fig. 5: with loop transformations (fused + unrolled)");
  for (int dir : {2, 0, 1}) {  // paper order: dudt, dudr, duds
    with.add_row({names[dir], util::Table::num(opt[dir].seconds, 3),
                  std::to_string(opt[dir].instructions),
                  std::to_string(opt[dir].cycles)});
  }
  std::printf("%s\n", with.str().c_str());
  cmtbone::bench::write_csv(csv_dir, "fig5_with_transformations", with);

  util::Table without({"Derivatives", "Runtime (seconds)", "Total instructions",
                       cycles_col});
  without.set_title("Fig. 6: basic implementation (no loop transformations)");
  for (int dir : {2, 0, 1}) {
    without.add_row({names[dir], util::Table::num(basic[dir].seconds, 3),
                     std::to_string(basic[dir].instructions),
                     std::to_string(basic[dir].cycles)});
  }
  std::printf("%s\n", without.str().c_str());
  cmtbone::bench::write_csv(csv_dir, "fig6_basic_implementation", without);

  std::printf("Speedups from loop transformations (paper: dudt 2.31x, dudr "
              "1.03x, duds ~1x):\n");
  for (int dir : {2, 0, 1}) {
    std::printf("  %s: %.2fx\n", names[dir],
                basic[dir].seconds / opt[dir].seconds);
  }
  return 0;
}
