#pragma once
// Shared setup for the figure-reproduction benches: a profiled CMT-bone run
// at a configurable (default laptop-friendly) scale.
//
// The paper's communication figures (8-10) all come from one profiled
// CMT-bone execution; fig8/fig9/fig10 each perform an equivalent run and
// print their slice of the profile.

#include <fstream>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace cmtbone::bench {

struct ProfiledRun {
  int ranks = 8;
  core::Config config;
  int steps = 5;
  std::string csv_dir;  // when set, benches also write <csv_dir>/<name>.csv
};

/// Write a table as CSV into `dir` (no-op when dir is empty).
inline void write_csv(const std::string& dir, const std::string& name,
                      const util::Table& table) {
  if (dir.empty()) return;
  std::ofstream out(dir + "/" + name + ".csv");
  out << table.csv();
  std::printf("(csv written to %s/%s.csv)\n", dir.c_str(), name.c_str());
}

inline ProfiledRun parse_run(int argc, char** argv, int default_steps = 3,
                             int default_n = 10) {
  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 8)")
      .describe("n", "GLL points per direction (default 10)")
      .describe("elems", "global elements per direction (default 8)")
      .describe("steps", "time steps")
      .describe("csv-dir", "also write result tables as CSV into this directory")
      .describe("paper-scale",
                "use the paper's Fig. 7 scale: 256 ranks, 40x40x16 elements, "
                "N=10 (slow on one core)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    std::exit(0);
  }
  cli.reject_unknown();

  ProfiledRun run;
  run.csv_dir = cli.get("csv-dir", "");
  if (cli.has("paper-scale")) {
    run.ranks = 256;
    run.config.n = 10;
    run.config.ex = 40;
    run.config.ey = 40;
    run.config.ez = 16;
    run.config.px = 8;
    run.config.py = 8;
    run.config.pz = 4;
    run.steps = 1;
  } else {
    run.ranks = cli.get_int("ranks", 8);
    run.config.n = cli.get_int("n", default_n);
    run.config.ex = run.config.ey = run.config.ez = cli.get_int("elems", 8);
    run.steps = cli.get_int("steps", default_steps);
  }
  return run;
}

/// Execute the proxy mini-app under the comm profiler; fills `profiler`
/// (and per-rank call profiles when requested).
inline void execute(const ProfiledRun& run, prof::CommProfiler* profiler,
                    std::vector<prof::CallProfile>* call_profiles = nullptr) {
  comm::RunOptions opts;
  opts.comm_profiler = profiler;
  opts.call_profiles = call_profiles;
  comm::run(run.ranks, [&](comm::Comm& world) {
    core::Driver driver(world, run.config);
    driver.initialize(driver.default_ic());
    driver.run(run.steps);
  }, opts);
}

}  // namespace cmtbone::bench
