// §VI extension: LogGP-predicted algorithm costs on notional machines, and
// the pairwise/crystal-router crossover scale.
//
// The paper's motivation for communication profiling is "building robust
// network models for system simulation" of future architectures. This
// bench is purely analytic: it feeds the Fig. 7 problem shape into the
// LogGP model at increasing rank counts on three machine presets and
// reports each algorithm's predicted cost and the crossover point.

#include <cmath>
#include <cstdio>

#include "netmodel/loggp.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

// Per-rank exchange shape of the Fig. 7 workload at P ranks: a rank owns a
// block of elements whose surface scales like (elements/rank)^(2/3); the
// pairwise neighbor set on a 3-D Cartesian partition includes faces, edges
// and corners (26 at scale).
netmodel::ExchangeShape fig7_shape(int p, int n, int elems_per_rank) {
  netmodel::ExchangeShape s;
  s.ranks = p;
  s.neighbors = p >= 27 ? 26 : p - 1;
  double side = std::cbrt(double(elems_per_rank));
  double shared_points = 6.0 * side * side * double(n) * double(n);
  s.pairwise_bytes = (long long)(shared_points * 8.0);
  s.crystal_records = (long long)(shared_points);
  // all_reduce's big vector spans the whole global id space:
  // ~ (n-1)^3 distinct points per element, weak-scaled by P.
  double pts_per_elem = double(n - 1) * (n - 1) * (n - 1);
  s.big_vector_bytes =
      (long long)(pts_per_elem * double(elems_per_rank) * 8.0) * p;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("n", "GLL points per direction (default 10)")
      .describe("elems-per-rank", "elements per rank (default 100)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int n = cli.get_int("n", 10);
  const int epr = cli.get_int("elems-per-rank", 100);

  std::printf(
      "=== LogGP model: predicted gs_op cost vs scale (Fig. 7 shape) ===\n"
      "N=%d, %d elements/rank (weak scaling)\n\n",
      n, epr);

  for (const auto& machine :
       {netmodel::qdr_infiniband(), netmodel::ethernet_10g(),
        netmodel::notional_exascale()}) {
    util::Table table({"ranks", "pairwise (s)", "crystal (s)",
                       "all_reduce (s)", "model pick"});
    table.set_title("machine: " + machine.name);
    for (int p = 64; p <= 1 << 20; p *= 8) {
      auto shape = fig7_shape(p, n, epr);
      auto pred = netmodel::predict_all(machine, shape);
      table.add_row({std::to_string(p), util::Table::sci(pred.pairwise, 3),
                     util::Table::sci(pred.crystal, 3),
                     util::Table::sci(pred.allreduce, 3), pred.best()});
    }
    std::printf("%s", table.str().c_str());

    int crossover = netmodel::crossover_ranks(
        machine, 1 << 22, [&](int p) { return fig7_shape(p, n, epr); });
    if (crossover > 0) {
      std::printf("crystal router first beats pairwise at P = %d\n\n",
                  crossover);
    } else {
      std::printf("pairwise exchange wins at every modeled scale "
                  "(nearest-neighbor pattern)\n\n");
    }
  }

  std::printf("(paper: at 256 ranks on QDR InfiniBand, pairwise won for\n"
              " CMT-bone and all_reduce was too expensive for both apps)\n");
  return 0;
}
