// Behavioral emulation (§III-C): record a CMT-bone run, replay it on
// candidate architectures.
//
// The paper's co-design strategy pairs the mini-app with "fast and scalable
// Behavioral Emulation ... to emulate and evaluate a series of candidate
// exascale architectures". This bench records the mini-app's communication
// trace on the live fabric, then re-times the identical behavior under
// notional machine models (fabric quality x node speed) with the
// discrete-event replayer — no re-execution needed.
//
// Usage: besim_replay [--ranks 8] [--n 10] [--elems 8] [--steps 3]

#include <cstdio>

#include "bench_common.hpp"
#include "trace/replay.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  bench::ProfiledRun run = bench::parse_run(argc, argv);

  trace::Recorder recorder(run.ranks);
  comm::RunOptions opts;
  opts.tracer = &recorder;
  comm::run(run.ranks, [&](comm::Comm& world) {
    core::Driver driver(world, run.config);
    driver.initialize(driver.default_ic());
    driver.run(run.steps);
  }, opts);

  trace::Trace tr = recorder.take();
  std::printf(
      "=== Behavioral emulation: trace replay on candidate machines ===\n"
      "%d ranks, N=%d, %dx%dx%d elements, %d steps\n"
      "trace: %zu events, recorded makespan %.4f s\n\n",
      run.ranks, run.config.n, run.config.ex, run.config.ey, run.config.ez,
      run.steps, tr.total_events(), tr.recorded_makespan());

  util::Table table({"machine", "node speed", "predicted makespan (s)",
                     "comm (s)", "blocked (s)", "vs recorded"});
  const double recorded = tr.recorded_makespan();
  for (const auto& machine :
       {netmodel::qdr_infiniband(), netmodel::ethernet_10g(),
        netmodel::notional_exascale()}) {
    for (double scale : {1.0, 0.25}) {
      trace::ReplayConfig cfg;
      cfg.machine = machine;
      cfg.compute_scale = scale;
      auto result = trace::replay(tr, cfg);
      char speed[16];
      std::snprintf(speed, sizeof speed, "%.0fx", 1.0 / scale);
      // A zero-step or empty trace replays to makespan 0; report "-" rather
      // than dividing by zero (matching the recorded > 0 guard).
      char rel[16];
      if (recorded > 0 && result.makespan > 0) {
        std::snprintf(rel, sizeof rel, "%.2fx", recorded / result.makespan);
      } else {
        std::snprintf(rel, sizeof rel, "-");
      }
      table.add_row({machine.name, speed, util::Table::sci(result.makespan, 3),
                     util::Table::sci(result.total_comm, 3),
                     util::Table::sci(result.total_blocked, 3), rel});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Same behavior, re-timed: better fabrics shrink comm and blocked time,\n"
      "faster nodes shrink the compute gaps — the co-design trade-off the\n"
      "paper explores with behavioral emulation.\n");
  return 0;
}
