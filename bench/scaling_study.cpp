// Scaling study: strong and weak scaling of the CMT-bone step.
//
// The paper's co-design context is scaling behavior ("Understanding the
// size, frequency, average distance etc. of these communication routines is
// important for improving the scaling behavior of the software"). This
// bench sweeps rank counts in strong (fixed global problem) and weak
// (fixed per-rank problem) modes and reports per-step times and parallel
// efficiency.
//
// NOTE: ranks are threads sharing this machine's cores; on a single core
// the wall-clock "speedup" is bounded by 1 and the interesting output is
// the overhead growth — on a real cluster the same harness measures true
// scaling.
//
// Usage: scaling_study [--max-ranks 16] [--n 8] [--steps 2]

#include <cstdio>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "prof/timer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

double time_per_step(int ranks, const core::Config& cfg, int steps) {
  double seconds = 0.0;
  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.step();  // warm-up step (first-touch, gs plans)
    world.barrier();
    prof::WallTimer t;
    driver.run(steps);
    world.barrier();
    if (world.rank() == 0) seconds = t.seconds() / steps;
  });
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("max-ranks", "largest rank count (default 16)")
      .describe("n", "GLL points per direction (default 8)")
      .describe("steps", "timed steps per point (default 2)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int max_ranks = cli.get_int("max-ranks", 16);
  const int n = cli.get_int("n", 8);
  const int steps = cli.get_int("steps", 2);

  std::printf("=== CMT-bone scaling study (threads on this host) ===\n\n");

  // Strong scaling: fixed 8x8x4 global element grid.
  {
    util::Table table({"ranks", "proc grid", "time/step (s)", "vs 1 rank",
                       "parallel efficiency"});
    table.set_title("Strong scaling: 8x8x4 elements, N=" + std::to_string(n));
    double t1 = 0.0;
    for (int p = 1; p <= max_ranks; p *= 2) {
      auto grid = mesh::BoxSpec::default_proc_grid(p);
      core::Config cfg;
      cfg.n = n;
      cfg.ex = 8;
      cfg.ey = 8;
      cfg.ez = 4;
      cfg.px = grid[0];
      cfg.py = grid[1];
      cfg.pz = grid[2];
      double t = time_per_step(p, cfg, steps);
      if (p == 1) t1 = t;
      char grid_str[32];
      std::snprintf(grid_str, sizeof grid_str, "%dx%dx%d", grid[0], grid[1],
                    grid[2]);
      table.add_row({std::to_string(p), grid_str, util::Table::sci(t, 3),
                     util::Table::num(t1 / t, 2),
                     util::Table::pct(t1 / t / p)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  // Weak scaling: 8 elements per rank.
  {
    util::Table table(
        {"ranks", "global elements", "time/step (s)", "weak efficiency"});
    table.set_title("Weak scaling: 2x2x2 elements per rank, N=" +
                    std::to_string(n));
    double t1 = 0.0;
    for (int p = 1; p <= max_ranks; p *= 2) {
      auto grid = mesh::BoxSpec::default_proc_grid(p);
      core::Config cfg;
      cfg.n = n;
      cfg.px = grid[0];
      cfg.py = grid[1];
      cfg.pz = grid[2];
      cfg.ex = 2 * grid[0];
      cfg.ey = 2 * grid[1];
      cfg.ez = 2 * grid[2];
      double t = time_per_step(p, cfg, steps);
      if (p == 1) t1 = t;
      char elems[32];
      std::snprintf(elems, sizeof elems, "%dx%dx%d", cfg.ex, cfg.ey, cfg.ez);
      table.add_row({std::to_string(p), elems, util::Table::sci(t, 3),
                     util::Table::pct(t1 / t)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  return 0;
}
