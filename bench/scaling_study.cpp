// Scaling study: strong and weak scaling of the CMT-bone step.
//
// The paper's co-design context is scaling behavior ("Understanding the
// size, frequency, average distance etc. of these communication routines is
// important for improving the scaling behavior of the software"). This
// bench sweeps rank counts in strong (fixed global problem) and weak
// (fixed per-rank problem) modes and reports per-step times, parallel
// efficiency, and the per-rank imbalance factor (max/mean busy thread-CPU
// time) — the quantity the dynamic load balancer (src/balance) drives
// toward 1.
//
// NOTE: ranks are threads sharing this machine's cores; on a single core
// the wall-clock "speedup" is bounded by 1 and the interesting output is
// the overhead growth — on a real cluster the same harness measures true
// scaling. The imbalance factor uses per-thread CPU time and is meaningful
// either way.
//
// Usage: scaling_study [--max-ranks 16] [--n 8] [--steps 2]
//                      [--json BENCH_scaling.json]

#include <cstdio>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "prof/timer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

struct StepResult {
  double seconds = 0.0;    // rank-0 wall clock per step
  double imbalance = 1.0;  // max/mean busy thread-CPU time across ranks
};

StepResult time_per_step(int ranks, const core::Config& cfg, int steps) {
  StepResult result;
  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.step();  // warm-up step (first-touch, gs plans)
    driver.reset_balance_stats();
    world.barrier();
    prof::WallTimer t;
    driver.run(steps);
    world.barrier();
    const double wall = t.seconds();
    const balance::Imbalance imb = balance::measure_imbalance(
        world, driver.balance_stats().busy_seconds());
    if (world.rank() == 0) {
      result.seconds = wall / steps;
      result.imbalance = imb.factor();
    }
  });
  return result;
}

struct Row {
  std::string mode;  // "strong" | "weak"
  int ranks = 0;
  std::string grid;
  double seconds = 0, efficiency = 0, imbalance = 1;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("max-ranks", "largest rank count (default 16)")
      .describe("n", "GLL points per direction (default 8)")
      .describe("steps", "timed steps per point (default 2)")
      .describe("physics",
                "physics system: proxy|advection|burgers|euler "
                "(default proxy)")
      .describe("json", "output file (default BENCH_scaling.json)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  core::Physics physics = core::Physics::kProxyAdvection;
  if (!core::physics_from_name(cli.get("physics", "proxy"), &physics)) {
    std::fprintf(stderr, "unknown --physics name\n");
    return 1;
  }

  const int max_ranks = cli.get_int("max-ranks", 16);
  const int n = cli.get_int("n", 8);
  const int steps = cli.get_int("steps", 2);
  const std::string json_path = cli.get("json", "BENCH_scaling.json");

  std::printf("=== CMT-bone scaling study (threads on this host) ===\n\n");

  std::vector<Row> rows;

  // Strong scaling: fixed 8x8x4 global element grid.
  {
    util::Table table({"ranks", "proc grid", "time/step (s)", "vs 1 rank",
                       "parallel efficiency", "imbalance"});
    table.set_title("Strong scaling: 8x8x4 elements, N=" + std::to_string(n));
    double t1 = 0.0;
    for (int p = 1; p <= max_ranks; p *= 2) {
      auto grid = mesh::BoxSpec::default_proc_grid(p);
      core::Config cfg;
      cfg.physics = physics;
      cfg.n = n;
      cfg.ex = 8;
      cfg.ey = 8;
      cfg.ez = 4;
      cfg.px = grid[0];
      cfg.py = grid[1];
      cfg.pz = grid[2];
      StepResult r = time_per_step(p, cfg, steps);
      if (p == 1) t1 = r.seconds;
      char grid_str[32];
      std::snprintf(grid_str, sizeof grid_str, "%dx%dx%d", grid[0], grid[1],
                    grid[2]);
      Row row;
      row.mode = "strong";
      row.ranks = p;
      row.grid = grid_str;
      row.seconds = r.seconds;
      row.efficiency = t1 / r.seconds / p;
      row.imbalance = r.imbalance;
      rows.push_back(row);
      table.add_row({std::to_string(p), grid_str,
                     util::Table::sci(r.seconds, 3),
                     util::Table::num(t1 / r.seconds, 2),
                     util::Table::pct(row.efficiency),
                     util::Table::num(r.imbalance, 2)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  // Weak scaling: 8 elements per rank.
  {
    util::Table table({"ranks", "global elements", "time/step (s)",
                       "weak efficiency", "imbalance"});
    table.set_title("Weak scaling: 2x2x2 elements per rank, N=" +
                    std::to_string(n));
    double t1 = 0.0;
    for (int p = 1; p <= max_ranks; p *= 2) {
      auto grid = mesh::BoxSpec::default_proc_grid(p);
      core::Config cfg;
      cfg.physics = physics;
      cfg.n = n;
      cfg.px = grid[0];
      cfg.py = grid[1];
      cfg.pz = grid[2];
      cfg.ex = 2 * grid[0];
      cfg.ey = 2 * grid[1];
      cfg.ez = 2 * grid[2];
      StepResult r = time_per_step(p, cfg, steps);
      if (p == 1) t1 = r.seconds;
      char elems[32];
      std::snprintf(elems, sizeof elems, "%dx%dx%d", cfg.ex, cfg.ey, cfg.ez);
      Row row;
      row.mode = "weak";
      row.ranks = p;
      row.grid = elems;
      row.seconds = r.seconds;
      row.efficiency = t1 / r.seconds;
      row.imbalance = r.imbalance;
      rows.push_back(row);
      table.add_row({std::to_string(p), elems, util::Table::sci(r.seconds, 3),
                     util::Table::pct(row.efficiency),
                     util::Table::num(r.imbalance, 2)});
    }
    std::printf("%s\n", table.str().c_str());
  }

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"scaling_study\",\n"
               "  \"physics\": \"%s\",\n"
               "  \"n\": %d,\n"
               "  \"steps\": %d,\n"
               "  \"imbalance\": \"max/mean busy thread-CPU seconds across "
               "ranks over the timed steps (1.0 = perfectly balanced); the "
               "quantity the dynamic load balancer drives toward 1\",\n"
               "  \"results\": [\n",
               core::physics_name(physics), n, steps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"ranks\": %d, \"grid\": \"%s\", "
                 "\"seconds_per_step\": %.6f, \"efficiency\": %.4f, "
                 "\"imbalance\": %.4f}%s\n",
                 r.mode.c_str(), r.ranks, r.grid.c_str(), r.seconds,
                 r.efficiency, r.imbalance, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("(json written to %s)\n", json_path.c_str());
  return 0;
}
