// Load-balancing study: dynamic repartitioning (measured per-element cost
// model + bounded element migration) vs the static block partition.
//
// Scenarios:
//   clustered — a dense particle cluster lands on one rank's elements; the
//               regime the balancer exists for (CI gate: >= 1.3x modeled
//               time-to-solution).
//   front     — a dense particle slab re-injected at an advancing position;
//               the hot region marches across rank boundaries and the
//               balancer has to keep following it.
//   straggler — chaos per-rank message-delay slowdown over a *uniform*
//               workload: external jitter must not trick the measured
//               (CPU-clock) cost model into migration churn, and results
//               must stay bit-identical under the delays.
//   overhead  — uniform single-rank workload: everything the balancing
//               machinery adds (ordered gs folds, cost timers, no-op
//               epochs) must cost < 3% busy CPU time.
//
// Time-to-solution metric: the harness runs ranks as threads sharing this
// host's cores, so run wall clock cannot tell element layouts apart — the
// same total work executes time-sliced either way. What a one-rank-per-node
// bulk-synchronous run experiences is the per-step critical path, so the
// study reports, summed over steps, the max-over-ranks busy thread-CPU time
// of each step (grid + particle + rebalance overhead, prof::CpuTimer —
// blocked waits and time descheduled for other rank-threads accrue nothing)
// as the modeled time-to-solution, alongside the raw wall clock. The
// per-step sum matters for the front scenario: the moving hotspot straggles
// a different rank each phase, which run-total per-rank busy time would
// average away. Every balanced run is also checked bit-identical against
// the ordered static reference (config.ordered_gs, balance_interval = 0) —
// migration changes where elements live, never what the fields hold.
//
// Usage: balance_study [--steps 40] [--reps 3] [--particles 20000]
//                      [--json BENCH_balance.json]
//        balance_study --smoke   CI gate: clustered scenario must beat
//                                static by >= 1.3x modeled time-to-solution
//                                with bit-identical fields, and single-rank
//                                overhead must stay under 3%.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "balance/scenarios.hpp"
#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "prof/timer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
namespace balance = cmtbone::balance;

enum class Cloud { kNone, kCluster, kFront };

struct RunResult {
  double wall_seconds = 0;  // rank-0 wall clock over the timed steps
  // Modeled time-to-solution: sum over timed steps of the per-step
  // max-over-ranks busy thread-CPU time. Summing per step matters: a
  // moving hotspot (the front scenario) straggles a *different* rank each
  // phase, which run-total per-rank busy time averages away but a real
  // bulk-synchronous run still pays every step.
  double critical_seconds = 0;
  double mean_seconds = 0;  // sum of per-step mean busy: total work / ranks
  long long epochs = 0;     // rebalance epochs applied
  long long moves = 0;      // elements migrated
  std::vector<std::vector<double>> fields;  // dense global-by-gid, per field

  double imbalance() const {
    return mean_seconds > 0 ? critical_seconds / mean_seconds : 1.0;
  }
};

// Which physics system the study runs (--physics). The proxy default is
// the mini-app; burgers/euler exercise the nonlinear flux + carrier paths.
cmtbone::core::Physics g_physics = cmtbone::core::Physics::kProxyAdvection;

Config base_config(int n, int e) {
  Config cfg;
  cfg.physics = g_physics;
  cfg.n = n;
  cfg.ex = cfg.ey = cfg.ez = e;
  cfg.fixed_dt = 1e-3;
  cfg.particles_per_rank = 8;    // enables the tracker (uniform background)
  cfg.particle_coupling = 0.01;  // two-way deposit: particles touch the bits
  return cfg;
}

/// The bit-identity reference: static layout under the same key-canonical
/// gs folds the balanced run is forced onto.
Config static_config(Config cfg) {
  cfg.balance_interval = 0;
  cfg.ordered_gs = true;
  return cfg;
}

Config balanced_config(Config cfg, int interval, int max_moves) {
  cfg.balance_interval = interval;
  cfg.balance_max_moves = max_moves;
  return cfg;
}

RunResult time_run(int nranks, const Config& cfg, int steps, Cloud cloud,
                   long long particle_count, const ChaosPolicy* policy) {
  RunResult result;
  cmtbone::comm::RunOptions options;
  ChaosEngine engine(policy ? *policy : ChaosPolicy{}, nranks);
  if (policy) options.chaos = &engine;
  const int refresh = std::max(1, steps / 4);
  cmtbone::comm::run(
      nranks,
      [&](Comm& world) {
        Driver driver(world, cfg);
        driver.initialize(driver.default_ic());
        if (cloud == Cloud::kCluster) {
          balance::ClusterSpec cs;
          cs.count = particle_count;
          const auto cloud_particles = balance::clustered_cloud(cs);
          driver.tracker()->adopt_global(cloud_particles);
        } else if (cloud == Cloud::kFront) {
          balance::FrontSpec fs;
          fs.count = particle_count;
          const auto slab = balance::front_cloud(fs, 0.05);
          driver.tracker()->adopt_global(slab);
        }
        driver.run(1);  // warm up allocations and message buffers
        driver.reset_balance_stats();
        world.barrier();
        cmtbone::prof::WallTimer t;
        // Per-step critical-path accumulation: allreduce each step's busy
        // delta and sum the cross-rank max. The same hook drives the front
        // scenario's slab re-injection — at an advancing position every few
        // steps, so the hot region sweeps the domain (and rank boundaries)
        // faster than advection alone would carry it. The schedule depends
        // only on the step count, so static and balanced runs see the
        // identical particle history.
        double prev_busy = 0, critical = 0, mean_total = 0;
        balance::FrontSpec fs;
        fs.count = particle_count;
        const long first = driver.steps_taken();
        driver.run(steps, [&](Driver& d) {
          const double busy = d.balance_stats().busy_seconds();
          const balance::Imbalance step_imb =
              balance::measure_imbalance(world, busy - prev_busy);
          prev_busy = busy;
          critical += step_imb.max_busy;
          mean_total += step_imb.mean_busy;
          if (cloud == Cloud::kFront) {
            const long done = d.steps_taken() - first;
            if (done % refresh == 0 && done < steps) {
              const double pos = 0.05 + 0.8 * double(done) / double(steps);
              const auto moved = balance::front_cloud(fs, pos);
              d.tracker()->adopt_global(moved);
            }
          }
        });
        world.barrier();
        const double wall = t.seconds();
        std::vector<std::vector<double>> fields;
        for (int f = 0; f < driver.nfields(); ++f) {
          fields.push_back(driver.gather_global_field(f));
        }
        if (world.rank() == 0) {
          result.wall_seconds = wall;
          result.critical_seconds = critical;
          result.mean_seconds = mean_total;
          result.epochs = driver.rebalance_epochs();
          result.moves = driver.rebalance_moves();
          result.fields = std::move(fields);
        }
      },
      options);
  return result;
}

// Best-of-reps to shed scheduler noise. The fields are deterministic across
// reps (chaos injects delays, never value changes), so any rep's copy works
// for the bit-identity check.
RunResult best_run(int nranks, const Config& cfg, int steps, Cloud cloud,
                   long long particle_count, const ChaosPolicy* policy,
                   int reps, bool by_wall) {
  RunResult best;
  for (int r = 0; r < reps; ++r) {
    RunResult got = time_run(nranks, cfg, steps, cloud, particle_count,
                             policy);
    const double key = by_wall ? got.wall_seconds : got.critical_seconds;
    const double best_key = by_wall ? best.wall_seconds : best.critical_seconds;
    if (r == 0 || key < best_key) best = got;
  }
  return best;
}

bool bit_identical(const RunResult& a, const RunResult& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (std::size_t f = 0; f < a.fields.size(); ++f) {
    if (a.fields[f].size() != b.fields[f].size()) return false;
    if (std::memcmp(a.fields[f].data(), b.fields[f].data(),
                    a.fields[f].size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct Row {
  std::string scenario;
  int n = 0, e = 0, ranks = 0, steps = 0;
  long long particles = 0;
  RunResult stat, bal;
  bool identical = false;

  // Static / balanced critical-path ratio: the modeled speedup a
  // one-rank-per-node run would see.
  double modeled_speedup() const {
    return bal.critical_seconds > 0 ? stat.critical_seconds / bal.critical_seconds : 1.0;
  }
};

Row run_scenario(const std::string& name, int nranks, const Config& base,
                 int steps, Cloud cloud, long long particles,
                 const ChaosPolicy* policy, int interval, int reps) {
  Row row;
  row.scenario = name;
  row.n = base.n;
  row.e = base.ex;
  row.ranks = nranks;
  row.steps = steps;
  row.particles = particles;
  row.stat = best_run(nranks, static_config(base), steps, cloud, particles,
                      policy, reps, /*by_wall=*/false);
  row.bal = best_run(nranks, balanced_config(base, interval, 16), steps,
                     cloud, particles, policy, reps, /*by_wall=*/false);
  row.identical = bit_identical(row.stat, row.bal);
  std::printf(
      "%-9s %d ranks: modeled static %.4fs balanced %.4fs (%.2fx)  "
      "imbalance %.2f -> %.2f  epochs %lld moves %lld  bits %s\n",
      name.c_str(), nranks, row.stat.critical_seconds, row.bal.critical_seconds,
      row.modeled_speedup(), row.stat.imbalance(), row.bal.imbalance(),
      row.bal.epochs, row.bal.moves, row.identical ? "identical" : "DIFFER");
  return row;
}

/// Single-rank overhead: balanced config (which implies ordered gs folds,
/// cost timers, and a no-op rebalance epoch every interval) vs the plain
/// static default. Median-of-reps wall-clock ratio; 1 rank so threads do
/// not multiplex.
struct OverheadResult {
  double static_busy = 0, balanced_busy = 0;  // best-of-reps CPU seconds
  double static_wall = 0, balanced_wall = 0;  // best-of-reps wall seconds
  // The gated ratio is CPU busy time: it counts exactly the work the
  // balancing machinery adds (cost timers, no-op epochs, migration
  // plumbing) and is immune to the few-percent scheduler noise that makes
  // short wall-clock runs flap. Wall time is reported alongside.
  double busy_ratio() const { return balanced_busy / static_busy; }
  double wall_ratio() const { return balanced_wall / static_wall; }
};

OverheadResult overhead_run(int steps, int reps) {
  Config cfg = base_config(9, 3);
  cfg.particles_per_rank = 64;
  Config plain = cfg;  // defaults: no ordered gs, no balancing
  Config bal = balanced_config(cfg, 5, 16);
  OverheadResult out;
  for (int r = 0; r < reps; ++r) {
    const RunResult p = time_run(1, plain, steps, Cloud::kNone, 0, nullptr);
    const RunResult b = time_run(1, bal, steps, Cloud::kNone, 0, nullptr);
    if (r == 0 || p.critical_seconds < out.static_busy) out.static_busy = p.critical_seconds;
    if (r == 0 || b.critical_seconds < out.balanced_busy)
      out.balanced_busy = b.critical_seconds;
    if (r == 0 || p.wall_seconds < out.static_wall)
      out.static_wall = p.wall_seconds;
    if (r == 0 || b.wall_seconds < out.balanced_wall)
      out.balanced_wall = b.wall_seconds;
  }
  return out;
}

ChaosPolicy straggler_policy(int nranks) {
  ChaosPolicy policy;
  policy.seed = 2015;
  policy.delay_probability = 0.05;
  policy.max_delay_us = 3000;
  policy.rank_slowdown.assign(std::size_t(nranks), 1.0);
  policy.rank_slowdown[0] = 6.0;  // rank 0's injected delays stretched 6x
  return policy;
}

int run_smoke(int reps) {
  // Gate 1: clustered injection at 4 ranks — the balancer must beat the
  // static partition by a loud margin on the modeled (critical-path)
  // time-to-solution, with bit-identical fields.
  const int steps = 20;
  const long long particles = 12000;
  Row clustered = run_scenario("clustered", 4, base_config(5, 4), steps,
                               Cloud::kCluster, particles, nullptr,
                               /*interval=*/5, reps);
  // Gate 2: the machinery must be ~free when there is nothing to balance.
  const OverheadResult ovh = overhead_run(/*steps=*/24, std::max(reps, 5));
  std::printf(
      "overhead smoke (1 rank, N=9, 3^3 elements): busy static %.4fs "
      "balanced %.4fs (ratio %.3f); wall static %.4fs balanced %.4fs "
      "(ratio %.3f)\n",
      ovh.static_busy, ovh.balanced_busy, ovh.busy_ratio(), ovh.static_wall,
      ovh.balanced_wall, ovh.wall_ratio());

  int failures = 0;
  if (clustered.modeled_speedup() < 1.3) {
    std::printf("FAIL: clustered modeled speedup %.2fx < 1.3x\n",
                clustered.modeled_speedup());
    ++failures;
  }
  if (!clustered.identical) {
    std::printf("FAIL: balanced fields differ from the static reference\n");
    ++failures;
  }
  if (clustered.bal.moves <= 0) {
    std::printf("FAIL: balancer never migrated an element\n");
    ++failures;
  }
  if (ovh.busy_ratio() > 1.03) {
    std::printf("FAIL: single-rank overhead %.1f%% > 3%%\n",
                100.0 * (ovh.busy_ratio() - 1.0));
    ++failures;
  }
  std::printf(failures ? "FAIL\n" : "PASS\n");
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("steps", "timed steps per run (default 40)")
      .describe("reps", "repetitions, best-of (default 3; median for the "
                        "overhead scenario and --smoke)")
      .describe("particles", "cloud size for clustered/front (default 20000)")
      .describe("json", "output file (default BENCH_balance.json)")
      .describe("physics",
                "physics system: proxy|advection|burgers|euler "
                "(default proxy)")
      .describe("smoke", "CI gate: clustered >= 1.3x modeled speedup with "
                         "bit-identical fields; single-rank overhead < 3%");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  if (!core::physics_from_name(cli.get("physics", "proxy"), &g_physics)) {
    std::fprintf(stderr, "unknown --physics name\n");
    return 1;
  }

  const int reps = cli.get_int("reps", 3);
  if (cli.has("smoke")) return run_smoke(reps);
  const int steps = cli.get_int("steps", 40);
  const long long particles = cli.get_int("particles", 20000);
  const std::string json_path = cli.get("json", "BENCH_balance.json");

  std::vector<Row> rows;
  const int interval = 5;

  // Overhead first, while the machine is in its steady idle state — the
  // scenario sweeps below run for a minute and can shift thermal/cache
  // conditions under the short single-rank runs.
  const OverheadResult ovh =
      overhead_run(std::max(24, steps / 2), std::max(reps, 7));
  std::printf("overhead  1 rank: busy static %.4fs balanced %.4fs (ratio "
              "%.3f); wall ratio %.3f\n",
              ovh.static_busy, ovh.balanced_busy, ovh.busy_ratio(),
              ovh.wall_ratio());

  rows.push_back(run_scenario("clustered", 4, base_config(5, 4), steps,
                              Cloud::kCluster, particles, nullptr, interval,
                              reps));
  rows.push_back(run_scenario("front", 4, base_config(5, 4), steps,
                              Cloud::kFront, particles, nullptr, interval,
                              reps));
  {
    // Uniform workload, large enough that per-window CPU-time measurement
    // noise sits well below the rebalance threshold: the right outcome is
    // (near-)zero migration despite rank 0's 6x message delays.
    Config cfg = base_config(7, 4);
    cfg.particles_per_rank = 256;
    const ChaosPolicy policy = straggler_policy(4);
    rows.push_back(run_scenario("straggler", 4, cfg, steps, Cloud::kNone, 0,
                                &policy, interval, reps));
  }

  util::Table table({"scenario", "ranks", "modeled static (s)",
                     "modeled balanced (s)", "speedup", "imb before",
                     "imb after", "epochs", "moves", "bit-identical"});
  table.set_title("Dynamic load balancing study (modeled time-to-solution = "
                  "sum of per-step max-rank busy CPU seconds)");
  for (const Row& r : rows) {
    table.add_row({r.scenario, std::to_string(r.ranks),
                   util::Table::num(r.stat.critical_seconds, 4),
                   util::Table::num(r.bal.critical_seconds, 4),
                   util::Table::num(r.modeled_speedup(), 2),
                   util::Table::num(r.stat.imbalance(), 2),
                   util::Table::num(r.bal.imbalance(), 2),
                   std::to_string(r.bal.epochs), std::to_string(r.bal.moves),
                   r.identical ? "yes" : "NO"});
  }
  std::printf("\n%s\n", table.str().c_str());

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"balance_study\",\n"
      "  \"physics\": \"%s + two-way coupled tracers\",\n"
      "  \"metric\": \"modeled time-to-solution: sum over steps of the "
      "per-step max-over-ranks busy thread-CPU seconds (grid + particle + "
      "rebalance overhead). Ranks are threads sharing this host's cores, "
      "so wall clock cannot distinguish layouts; the per-step critical "
      "path is what a one-rank-per-node bulk-synchronous run pays. Best "
      "of %d runs of %d steps after one warm-up step.\",\n"
      "  \"bit_identity\": \"balanced fields compared bytewise against the "
      "ordered static reference (ordered_gs, balance_interval 0)\",\n"
      "  \"straggler\": \"uniform workload + chaos delay jitter stretched "
      "6x on rank 0: the CPU-clock cost model must not migrate in response "
      "to external message delays\",\n"
      "  \"overhead\": {\"ranks\": 1, \"static_busy_seconds\": %.6f, "
      "\"balanced_busy_seconds\": %.6f, \"busy_ratio\": %.4f, "
      "\"static_wall_seconds\": %.6f, \"balanced_wall_seconds\": %.6f, "
      "\"wall_ratio\": %.4f},\n"
      "  \"results\": [\n",
      core::physics_name(g_physics), reps, steps, ovh.static_busy,
      ovh.balanced_busy, ovh.busy_ratio(), ovh.static_wall, ovh.balanced_wall,
      ovh.wall_ratio());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"n\": %d, \"elems_per_dir\": %d, "
        "\"ranks\": %d, \"steps\": %d, \"particles\": %lld, "
        "\"static_critical_seconds\": %.6f, \"balanced_critical_seconds\": "
        "%.6f, \"modeled_speedup\": %.3f, \"static_imbalance\": %.3f, "
        "\"balanced_imbalance\": %.3f, \"static_wall_seconds\": %.6f, "
        "\"balanced_wall_seconds\": %.6f, \"epochs\": %lld, \"moves\": "
        "%lld, \"bit_identical\": %s}%s\n",
        r.scenario.c_str(), r.n, r.e, r.ranks, r.steps, r.particles,
        r.stat.critical_seconds, r.bal.critical_seconds, r.modeled_speedup(),
        r.stat.imbalance(), r.bal.imbalance(), r.stat.wall_seconds,
        r.bal.wall_seconds, r.bal.epochs, r.bal.moves,
        r.identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("(json written to %s)\n", json_path.c_str());

  // The study's own acceptance: the clustered scenario is the headline.
  for (const Row& r : rows) {
    if (!r.identical) {
      std::printf("FAIL: %s fields differ from the static reference\n",
                  r.scenario.c_str());
      return 1;
    }
  }
  return 0;
}
