// Convergence study: analytic-accuracy validation of the physics systems.
//
// The scenario pack (Burgers, Euler) exists so the proxy's communication
// and kernel skeleton can be validated against real PDE solutions, not just
// bit-identity invariants. This bench runs the three analytic checks and
// reports observed convergence orders:
//
//   1. Linear advection (smooth translate): h-refinement at fixed N must
//      show order ~N in the element size.
//   2. Burgers before shock formation: exact solution from Newton on the
//      characteristic equation; same order-~N expectation.
//   3. Sod shock tube: L1 density error against the exact Riemann solution
//      plus the star-region density plateau, and a positivity scan.
//
// With --smoke the bench exits nonzero when any gate fails (observed order
// too low, Sod L1 too large, or a non-physical state), which is what the CI
// scenario-smoke job runs.
//
// Usage: convergence_study [--smoke] [--json BENCH_convergence.json]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

struct OrderRow {
  std::string system;
  int n = 0;
  int elems_coarse = 0, elems_fine = 0;
  double err_coarse = 0, err_fine = 0, order = 0;
};

// L-inf (advection) or L1 (Burgers) error against the system's exact
// solution after `steps` fixed-dt steps on an e^3 (advection) or e x 1 x 1
// (Burgers) grid.
double run_error(const core::Config& cfg, int steps, bool l1) {
  double err = 0.0;
  comm::run(1, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(steps);
    const auto exact = driver.system().exact_solution(driver.time());
    err = l1 ? driver.l1_error(0, exact) : driver.linf_error(exact);
  });
  return err;
}

OrderRow observed_order(core::Physics physics, int n) {
  OrderRow row;
  row.system = core::physics_name(physics);
  row.n = n;
  const bool burgers = physics == core::Physics::kBurgers;
  row.elems_coarse = 4;
  row.elems_fine = 8;
  double errs[2];
  int idx = 0;
  for (int e : {row.elems_coarse, row.elems_fine}) {
    core::Config cfg;
    cfg.physics = physics;
    cfg.n = n;
    cfg.use_dssum = false;  // pure DG
    cfg.fixed_dt = 5e-4;
    if (burgers) {
      cfg.velocity = {1.0, 0.0, 0.0};
      cfg.ex = e;
      cfg.ey = cfg.ez = 1;
    } else {
      cfg.ex = cfg.ey = cfg.ez = e;
    }
    errs[idx++] = run_error(cfg, burgers ? 400 : 200, burgers);
  }
  row.err_coarse = errs[0];
  row.err_fine = errs[1];
  row.order = std::log2(errs[0] / errs[1]);
  return row;
}

struct SodResult {
  double t = 0;
  double l1_rho = 0;
  double plateau_rho = 0;  // sampled between contact and shock
  double min_pressure = 0;
};

SodResult run_sod() {
  SodResult result;
  comm::run(1, [&](comm::Comm& world) {
    core::Config cfg;
    cfg.physics = core::Physics::kEuler;
    cfg.euler_case = core::EulerCase::kSod;
    cfg.periodic = false;
    cfg.n = 2;
    cfg.ex = 200;
    cfg.ey = cfg.ez = 1;
    cfg.cfl = 0.25;
    cfg.use_dssum = false;
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    while (driver.time() < 0.15) driver.step();
    const double t = driver.time();
    result.t = t;
    result.l1_rho = driver.l1_error(0, driver.system().exact_solution(t));
    const auto rho = driver.field(0);
    const auto mx = driver.field(1);
    const auto en = driver.field(4);
    const double gamma = cfg.gamma;
    double pmin = 1e300;
    for (std::size_t p = 0; p < rho.size(); ++p) {
      const double pr =
          (gamma - 1.0) * (en[p] - 0.5 * mx[p] * mx[p] / rho[p]);
      if (pr < pmin) pmin = pr;
    }
    result.min_pressure = pmin;
    const int n = cfg.n;
    for (int e = 0; e < driver.element_layout().nel(); ++e) {
      const auto c = driver.node_coords(e, n / 2, 0, 0);
      const double xi = (c[0] - 0.5) / t;
      if (xi > 1.0 && xi < 1.5) {
        result.plateau_rho = rho[std::size_t(e) * n * n * n + n / 2];
        break;
      }
    }
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("smoke", "exit nonzero when a validation gate fails")
      .describe("json", "output file (default BENCH_convergence.json)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();
  const bool smoke = cli.has("smoke");
  const std::string json_path = cli.get("json", "BENCH_convergence.json");

  std::printf("=== CMT-bone convergence study ===\n\n");

  std::vector<OrderRow> rows;
  for (int n : {3, 4}) {
    rows.push_back(observed_order(core::Physics::kAdvection, n));
  }
  rows.push_back(observed_order(core::Physics::kBurgers, 4));

  util::Table table({"system", "N", "elems", "err coarse", "err fine",
                     "observed order", "gate (> N-1)"});
  table.set_title("h-convergence against analytic solutions (pure DG)");
  bool ok = true;
  for (const OrderRow& r : rows) {
    const bool pass = r.order > double(r.n) - 1.0;
    ok = ok && pass;
    char elems[32];
    std::snprintf(elems, sizeof elems, "%d -> %d", r.elems_coarse,
                  r.elems_fine);
    table.add_row({r.system, std::to_string(r.n), elems,
                   util::Table::sci(r.err_coarse, 3),
                   util::Table::sci(r.err_fine, 3),
                   util::Table::num(r.order, 2), pass ? "pass" : "FAIL"});
  }
  std::printf("%s\n", table.str().c_str());

  const SodResult sod = run_sod();
  const bool sod_l1_ok = sod.l1_rho < 0.01;
  const bool sod_plateau_ok = std::abs(sod.plateau_rho - 0.26557) < 0.02;
  const bool sod_positive = sod.min_pressure > 0.0;
  ok = ok && sod_l1_ok && sod_plateau_ok && sod_positive;
  util::Table sod_table({"quantity", "value", "gate"});
  sod_table.set_title("Sod shock tube vs exact Riemann (N=2, 200 elements, "
                      "t=" + std::to_string(sod.t) + ")");
  sod_table.add_row({"L1 density error", util::Table::sci(sod.l1_rho, 3),
                     sod_l1_ok ? "pass (< 0.01)" : "FAIL (< 0.01)"});
  sod_table.add_row({"star-region density", util::Table::num(sod.plateau_rho, 5),
                     sod_plateau_ok ? "pass (0.26557 +- 0.02)"
                                    : "FAIL (0.26557 +- 0.02)"});
  sod_table.add_row({"min pressure", util::Table::sci(sod.min_pressure, 3),
                     sod_positive ? "pass (> 0)" : "FAIL (> 0)"});
  std::printf("%s\n", sod_table.str().c_str());

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"convergence_study\",\n"
               "  \"orders\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const OrderRow& r = rows[i];
    std::fprintf(out,
                 "    {\"physics\": \"%s\", \"n\": %d, \"elems\": [%d, %d], "
                 "\"err_coarse\": %.6e, \"err_fine\": %.6e, "
                 "\"observed_order\": %.4f}%s\n",
                 r.system.c_str(), r.n, r.elems_coarse, r.elems_fine,
                 r.err_coarse, r.err_fine, r.order,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"sod\": {\"physics\": \"euler\", \"case\": \"sod\", "
               "\"t\": %.6f, \"l1_rho\": %.6e, \"plateau_rho\": %.6f, "
               "\"plateau_exact\": 0.26557, \"min_pressure\": %.6e},\n"
               "  \"gates_passed\": %s\n"
               "}\n",
               sod.t, sod.l1_rho, sod.plateau_rho, sod.min_pressure,
               ok ? "true" : "false");
  std::fclose(out);
  std::printf("(json written to %s)\n", json_path.c_str());

  if (smoke && !ok) {
    std::fprintf(stderr, "convergence_study: validation gate failed\n");
    return 1;
  }
  return 0;
}
