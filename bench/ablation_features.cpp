// Ablation bench: cost of each design choice in the CMT-bone step.
//
// DESIGN.md calls out the tunable pieces — kernel loop-transformation
// variant, dealiasing, gs_op dssum, gather-scatter method, time
// integrator. This bench toggles one at a time against a fixed baseline
// and reports the per-step cost delta, quantifying what each feature buys
// or costs.
//
// Usage: ablation_features [--ranks 4] [--n 10] [--elems 4] [--steps 3]

#include <cstdio>
#include <functional>
#include <vector>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "prof/timer.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cmtbone;

double time_per_step(int ranks, const core::Config& cfg, int steps) {
  double seconds = 0.0;
  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.step();  // warm-up
    world.barrier();
    prof::WallTimer t;
    driver.run(steps);
    world.barrier();
    if (world.rank() == 0) seconds = t.seconds() / steps;
  });
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 4)")
      .describe("n", "GLL points per direction (default 10)")
      .describe("elems", "global elements per direction (default 4)")
      .describe("steps", "timed steps per configuration (default 3)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 4);
  const int steps = cli.get_int("steps", 3);

  core::Config base;
  base.n = cli.get_int("n", 10);
  base.ex = base.ey = base.ez = cli.get_int("elems", 4);
  base.variant = kernels::GradVariant::kFusedUnrolled;
  base.use_dssum = true;
  base.dealias = false;
  base.integrator = core::TimeIntegrator::kRk3Ssp;
  base.gs_method = gs::Method::kPairwise;

  struct Variation {
    const char* name;
    std::function<void(core::Config&)> apply;
  };
  const std::vector<Variation> variations = {
      {"baseline (fused+unrolled, pairwise, dssum, rk3)", [](core::Config&) {}},
      {"kernel: basic loops", [](core::Config& c) {
         c.variant = kernels::GradVariant::kBasic;
       }},
      {"kernel: blocked (mxm-style)", [](core::Config& c) {
         c.variant = kernels::GradVariant::kBlocked;
       }},
      {"fused divergence (div3)", [](core::Config& c) {
         c.fused_divergence = true;
       }},
      {"dealias round-trip on", [](core::Config& c) { c.dealias = true; }},
      {"dssum off (pure DG)", [](core::Config& c) { c.use_dssum = false; }},
      {"gs: crystal router", [](core::Config& c) {
         c.gs_method = gs::Method::kCrystalRouter;
       }},
      {"face exchange via gs library", [](core::Config& c) {
         c.face_backend = core::FaceBackend::kGatherScatter;
       }},
      {"integrator: forward Euler (1 stage)", [](core::Config& c) {
         c.integrator = core::TimeIntegrator::kForwardEuler;
       }},
      {"integrator: RK4 (4 stages)", [](core::Config& c) {
         c.integrator = core::TimeIntegrator::kRk4;
       }},
  };

  std::printf("=== Ablation: per-step cost of CMT-bone design choices ===\n");
  std::printf("%d ranks, N=%d, %dx%dx%d elements, %d timed steps each\n\n",
              ranks, base.n, base.ex, base.ey, base.ez, steps);

  util::Table table({"configuration", "time/step (s)", "vs baseline"});
  double baseline = 0.0;
  for (const auto& v : variations) {
    core::Config cfg = base;
    v.apply(cfg);
    double t = time_per_step(ranks, cfg, steps);
    if (baseline == 0.0) baseline = t;
    char rel[32];
    std::snprintf(rel, sizeof rel, "%+.1f%%", 100.0 * (t - baseline) / baseline);
    table.add_row({v.name, util::Table::sci(t, 3), rel});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("(stage count scales the whole RHS pipeline; dealias adds\n"
              " mxm work; dssum adds one gs_op per field per step)\n");
  return 0;
}
