// Tracer-particle cloud in a compressible flow.
//
// Exercises the Lagrangian point-particle path (the capability the paper
// schedules for CMT-nek): a cloud of tracers seeded in an Euler flow is
// advected by the interpolated velocity field, migrating between ranks via
// the crystal router. Prints cloud statistics over time and can dump the
// final cloud as VTK.
//
// Usage: particle_cloud [--ranks 4] [--n 5] [--elems 2] [--steps 15]
//                       [--particles 50] [--vtk cloud.vtk]

#include <cmath>
#include <cstdio>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "io/vtk.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 4)")
      .describe("n", "GLL points per direction (default 5)")
      .describe("elems", "global elements per direction (default 2)")
      .describe("steps", "time steps (default 15)")
      .describe("particles", "tracer particles per rank (default 50)")
      .describe("vtk", "write the final cloud to this VTK file");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 4);
  const int steps = cli.get_int("steps", 15);
  const std::string vtk = cli.get("vtk", "");

  core::Config cfg;
  cfg.physics = core::Physics::kEuler;
  cfg.n = cli.get_int("n", 5);
  cfg.ex = cfg.ey = cfg.ez = cli.get_int("elems", 2);
  cfg.cfl = 0.25;
  cfg.use_dssum = false;
  cfg.velocity = {0.4, 0.2, 0.0};
  cfg.particles_per_rank = cli.get_int("particles", 50);

  util::Table table({"step", "time", "particles", "migrated/step",
                     "mean x", "mean y", "spread"});
  table.set_title("Tracer cloud in an Euler flow");

  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    auto* tracker = driver.tracker();

    auto stats = [&](int step, long migrated) {
      // Cloud centroid and RMS spread (collective).
      double sx = 0, sy = 0, sxx = 0;
      for (const auto& p : tracker->particles()) {
        sx += p.x;
        sy += p.y;
        sxx += p.x * p.x + p.y * p.y + p.z * p.z;
      }
      long long count = tracker->total_count();
      sx = world.allreduce_one(sx, comm::ReduceOp::kSum) / count;
      sy = world.allreduce_one(sy, comm::ReduceOp::kSum) / count;
      sxx = world.allreduce_one(sxx, comm::ReduceOp::kSum) / count;
      long total_migrated =
          (long)world.allreduce_one(double(migrated), comm::ReduceOp::kSum);
      if (world.rank() == 0) {
        table.add_row({std::to_string(step), util::Table::num(driver.time(), 4),
                       std::to_string(count), std::to_string(total_migrated),
                       util::Table::num(sx, 4), util::Table::num(sy, 4),
                       util::Table::num(std::sqrt(sxx), 4)});
      }
    };

    stats(0, 0);
    for (int block = 0; block < 3; ++block) {
      long migrated = 0;
      int block_steps = steps / 3;
      for (int s = 0; s < block_steps; ++s) {
        driver.step();
        migrated += long(tracker->last_migrated());
      }
      stats((block + 1) * block_steps, migrated / std::max(block_steps, 1));
    }

    if (!vtk.empty()) {
      // Gather the whole cloud to rank 0 and dump it.
      auto all = world.gatherv(
          std::span<const particles::Particle>(tracker->particles()), 0,
          nullptr);
      if (world.rank() == 0) {
        std::vector<double> ids(all.size());
        for (std::size_t i = 0; i < all.size(); ++i) ids[i] = double(all[i].id);
        io::write_vtk_points(
            vtk, all.size(),
            [&](std::size_t i) {
              return std::array<double, 3>{all[i].x, all[i].y, all[i].z};
            },
            {{"particle_id", std::span<const double>(ids)}});
        std::printf("wrote %zu particles to %s\n", all.size(), vtk.c_str());
      }
    }
  });

  std::printf("%s\n", table.str().c_str());
  std::printf("The population stays constant while particles migrate between\n"
              "ranks (crystal-router transport), and the centroid drifts with\n"
              "the carrier flow.\n");
  return 0;
}
