// Kernel tuning playground: sweep the derivative-kernel loop
// transformations across polynomial orders.
//
// Reproduces the paper's §V study interactively: for each N in the paper's
// range and each variant, time dudr/duds/dudt and report speedups over the
// basic implementation.
//
// Usage: kernel_tuning [--nel 64] [--reps 20] [--nmin 5] [--nmax 13]

#include <cstdio>
#include <vector>

#include "kernels/gradient.hpp"
#include "prof/timer.hpp"
#include "sem/operators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

double time_variant(cmtbone::kernels::GradVariant v, int dir, const double* d,
                    const double* u, double* out, int n, int nel, int reps) {
  using namespace cmtbone::kernels;
  // Warm up once, then time.
  auto call = [&] {
    switch (dir) {
      case 0: grad_r(v, d, u, out, n, nel); break;
      case 1: grad_s(v, d, u, out, n, nel); break;
      default: grad_t(v, d, u, out, n, nel); break;
    }
  };
  call();
  cmtbone::prof::WallTimer t;
  for (int r = 0; r < reps; ++r) call();
  return t.seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("nel", "elements (default 64)")
      .describe("reps", "repetitions per timing (default 20)")
      .describe("nmin", "smallest N (default 5)")
      .describe("nmax", "largest N (default 13)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int nel = cli.get_int("nel", 64);
  const int reps = cli.get_int("reps", 20);
  const int nmin = cli.get_int("nmin", 5);
  const int nmax = cli.get_int("nmax", 13);

  const char* dirs[] = {"dudr", "duds", "dudt"};

  for (int n = nmin; n <= nmax; n += 4) {
    auto op = sem::Operators::build(n);
    const std::size_t pts = std::size_t(n) * n * n * nel;
    std::vector<double> u(pts), out(pts);
    util::SplitMix64 rng(2024);
    for (double& x : u) x = rng.uniform(-1, 1);

    util::Table table({"variant", "dudr (us)", "duds (us)", "dudt (us)",
                       "speedup r", "speedup s", "speedup t"});
    table.set_title("N = " + std::to_string(n) + ", " + std::to_string(nel) +
                    " elements");
    double base[3] = {0, 0, 0};
    for (auto v : kernels::all_variants()) {
      double t[3];
      for (int dir = 0; dir < 3; ++dir) {
        t[dir] = time_variant(v, dir, op.d.data(), u.data(), out.data(), n,
                              nel, reps);
        if (v == kernels::GradVariant::kBasic) base[dir] = t[dir];
      }
      table.add_row({kernels::variant_name(v), util::Table::num(t[0] * 1e6, 1),
                     util::Table::num(t[1] * 1e6, 1),
                     util::Table::num(t[2] * 1e6, 1),
                     util::Table::num(base[0] / t[0], 2),
                     util::Table::num(base[1] / t[1], 2),
                     util::Table::num(base[2] / t[2], 2)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf("(directions: %s=first index, %s=middle, %s=last; the middle\n"
              "contraction resists fusion, as the paper observes for duds)\n",
              dirs[0], dirs[1], dirs[2]);
  return 0;
}
