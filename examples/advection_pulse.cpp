// Advection of a smooth pulse: the validation workload.
//
// Solves du/dt + c . grad u = 0 on the periodic unit box with the DG
// spectral-element path and compares against the exact translated solution,
// sweeping polynomial order to demonstrate spectral convergence — the
// correctness anchor behind the proxy kernels.
//
// Usage: advection_pulse [--ranks 4] [--elems 2] [--steps 20]

#include <cstdio>
#include <cmath>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 4)")
      .describe("elems", "global elements per direction (default 2)")
      .describe("steps", "time steps per order (default 20)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 4);
  const int elems = cli.get_int("elems", 2);
  const int steps = cli.get_int("steps", 20);

  util::Table table({"N", "dt", "final time", "Linf error vs exact"});
  table.set_title("DG-SEM advection: spectral convergence in N");

  double prev_err = 0.0;
  for (int n : {4, 6, 8, 10}) {
    double err = 0.0, t_final = 0.0, dt_used = 0.0;
    comm::run(ranks, [&](comm::Comm& world) {
      core::Config cfg;
      cfg.physics = core::Physics::kAdvection;
      cfg.n = n;
      cfg.ex = cfg.ey = cfg.ez = elems;
      cfg.use_dssum = false;
      cfg.fixed_dt = 1.5e-3;
      cfg.velocity = {1.0, 0.5, 0.25};

      core::Driver driver(world, cfg);
      auto ic = driver.default_ic();
      driver.initialize(ic);
      dt_used = driver.compute_dt();
      driver.run(steps);
      const double t = driver.time();
      auto wrap = [](double v) { return v - std::floor(v); };
      double e = driver.linf_error([&](double x, double y, double z, int f) {
        return ic(wrap(x - 1.0 * t), wrap(y - 0.5 * t), wrap(z - 0.25 * t), f);
      });
      if (world.rank() == 0) {
        err = e;
        t_final = t;
      }
    });
    table.add_row({std::to_string(n), util::Table::sci(dt_used, 2),
                   util::Table::num(t_final, 4), util::Table::sci(err, 3)});
    if (prev_err > 0.0 && err > prev_err) {
      std::printf("warning: error did not decrease from N=%d to N=%d\n", n - 2,
                  n);
    }
    prev_err = err;
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Each refinement multiplies accuracy: the error drops by orders of\n"
      "magnitude per +2 in N, the spectral signature of the SEM kernels.\n");
  return 0;
}
