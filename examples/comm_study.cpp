// Gather-scatter algorithm study: measured startup tuning vs the LogGP
// analytic model.
//
// Builds the Fig. 7 problem shape at a configurable scale, runs the gs
// startup tuning pass (pairwise vs crystal router vs all_reduce), and then
// asks the LogGP model what each algorithm *should* cost on three machine
// presets — the co-design loop of the paper's §VI in one binary.
//
// Usage: comm_study [--ranks 16] [--n 6] [--elems-per-rank 8]

#include <cstdio>

#include "comm/runtime.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/numbering.hpp"
#include "mesh/partition.hpp"
#include "netmodel/loggp.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 16)")
      .describe("n", "GLL points per direction (default 6)")
      .describe("elems-per-rank", "elements per rank, approx (default 8)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 16);
  const int n = cli.get_int("n", 6);
  const int epr = cli.get_int("elems-per-rank", 8);

  // Build a box with ~epr elements per rank on an auto processor grid.
  auto grid = mesh::BoxSpec::default_proc_grid(ranks);
  mesh::BoxSpec spec;
  spec.n = n;
  spec.px = grid[0];
  spec.py = grid[1];
  spec.pz = grid[2];
  int side = 1;
  while (side * side * side < epr) ++side;
  spec.ex = spec.px * side;
  spec.ey = spec.py * side;
  spec.ez = spec.pz * side;

  std::printf("gs study: %d ranks (%dx%dx%d), N=%d, %d elements/rank\n\n",
              ranks, spec.px, spec.py, spec.pz, n, side * side * side);

  std::vector<gs::GatherScatter::TuneRow> tuning;
  gs::Method chosen = gs::Method::kPairwise;
  netmodel::ExchangeShape shape;
  comm::run(ranks, [&](comm::Comm& world) {
    mesh::Partition part(spec, world.rank());
    auto ids = mesh::global_gll_ids(part);
    gs::GatherScatter gs_handle(world, ids, gs::Method::kAuto);
    if (world.rank() == 0) {
      tuning = gs_handle.tuning();
      chosen = gs_handle.method();
      shape.ranks = world.size();
      shape.neighbors = int(gs_handle.pairwise_neighbors().size());
      shape.pairwise_bytes =
          (long long)(gs_handle.pairwise_send_values()) * 8;
      shape.crystal_records = (long long)(gs_handle.topology().shared.size());
      shape.big_vector_bytes = gs_handle.big_vector_size() * 8;
    }
  });

  util::Table measured({"method", "time avg (s)", "time min (s)", "time max (s)"});
  measured.set_title("Measured startup tuning (in-process runtime)");
  for (const auto& row : tuning) {
    measured.add_row({gs::method_name(row.method), util::Table::sci(row.avg, 3),
                      util::Table::sci(row.min, 3), util::Table::sci(row.max, 3)});
  }
  std::printf("%s\nchosen method: %s\n\n", measured.str().c_str(),
              gs::method_name(chosen));

  util::Table predicted(
      {"machine", "pairwise (s)", "crystal (s)", "all_reduce (s)", "model pick"});
  predicted.set_title("LogGP-predicted per-gs_op cost (rank-0 shape)");
  for (const auto& machine :
       {netmodel::qdr_infiniband(), netmodel::ethernet_10g(),
        netmodel::notional_exascale()}) {
    auto p = netmodel::predict_all(machine, shape);
    predicted.add_row({machine.name, util::Table::sci(p.pairwise, 3),
                       util::Table::sci(p.crystal, 3),
                       util::Table::sci(p.allreduce, 3), p.best()});
  }
  std::printf("%s\n", predicted.str().c_str());
  std::printf(
      "Shape: %d pairwise neighbors, %lld bytes/exec pairwise, %lld shared\n"
      "ids, big vector %lld bytes.\n",
      shape.neighbors, shape.pairwise_bytes, shape.crystal_records,
      shape.big_vector_bytes);
  return 0;
}
