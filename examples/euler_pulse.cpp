// Compressible Euler: an acoustic density pulse in a periodic box.
//
// The physics CMT-nek's explicit solver steps (minus multiphase coupling):
// five conserved fields, nonlinear Euler fluxes, Rusanov numerical flux.
// Demonstrates conservation tracking, CFL-adaptive stepping, mid-run
// checkpoint/restart, and VTK export for visualization.
//
// Usage: euler_pulse [--ranks 4] [--n 6] [--elems 2] [--steps 20]
//                    [--vtk out.vtk] [--checkpoint-dir DIR]

#include <cmath>
#include <cstdio>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 4)")
      .describe("n", "GLL points per direction (default 6)")
      .describe("elems", "global elements per direction (default 2)")
      .describe("steps", "time steps (default 20)")
      .describe("vtk", "write final state to this VTK file (rank 0 only)")
      .describe("checkpoint-dir", "exercise save/restart through this dir");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 4);
  const int steps = cli.get_int("steps", 20);
  const std::string vtk = cli.get("vtk", "");
  const std::string ckpt_dir = cli.get("checkpoint-dir", "");

  core::Config cfg;
  cfg.physics = core::Physics::kEuler;
  cfg.n = cli.get_int("n", 6);
  cfg.ex = cfg.ey = cfg.ez = cli.get_int("elems", 2);
  cfg.cfl = 0.25;
  cfg.use_dssum = false;
  cfg.velocity = {0.5, 0.0, 0.0};  // background flow carrying the pulse

  util::Table table({"step", "time", "dt", "mass", "x-momentum", "energy"});
  table.set_title("Euler acoustic pulse: conserved quantities over time");

  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    // Gaussian density/pressure bump on a uniform background flow.
    auto ic = [&cfg](double x, double y, double z, int f) {
      double r2 = (x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                  (z - 0.5) * (z - 0.5);
      double bump = 0.1 * std::exp(-r2 / 0.02);
      double rho = 1.0 + bump;
      double p = 1.0 + bump;
      double ux = cfg.velocity[0];
      switch (f) {
        case 0: return rho;
        case 1: return rho * ux;
        case 2: return 0.0;
        case 3: return 0.0;
        default: return p / (cfg.gamma - 1.0) + 0.5 * rho * ux * ux;
      }
    };
    driver.initialize(ic);

    auto snapshot = [&](int step) {
      // All of these are collectives; every rank must make the same calls.
      double mass = driver.integral(0);
      double momx = driver.integral(1);
      double energy = driver.integral(4);
      double dt = driver.compute_dt();
      if (world.rank() == 0) {
        table.add_row({std::to_string(step), util::Table::num(driver.time(), 5),
                       util::Table::sci(dt, 2), util::Table::num(mass, 10),
                       util::Table::num(momx, 10),
                       util::Table::num(energy, 10)});
      }
    };

    snapshot(0);
    const int half = steps / 2;
    driver.run(half);
    snapshot(half);

    if (!ckpt_dir.empty()) {
      // Save, then resume in a brand-new driver: restart must be seamless.
      driver.save_checkpoint(ckpt_dir, "euler_pulse");
      core::Driver resumed(world, cfg);
      resumed.load_checkpoint(ckpt_dir, "euler_pulse");
      resumed.run(steps - half);
      double mass = resumed.integral(0);
      if (world.rank() == 0) {
        std::printf("restarted from checkpoint at step %d; final mass %.10f\n",
                    half, mass);
      }
      if (!vtk.empty() && world.rank() == 0) resumed.export_vtk(vtk);
      return;
    }

    driver.run(steps - half);
    snapshot(steps);
    if (!vtk.empty() && world.rank() == 0) driver.export_vtk(vtk);
  });

  std::printf("%s\n", table.str().c_str());
  std::printf("Mass, momentum, and energy columns are constant to round-off:\n"
              "the DG surface fluxes telescope across faces (conservation).\n");
  return 0;
}
