// Quickstart: the smallest complete CMT-bone run.
//
// Launches an 8-rank job, builds the proxy mini-app (5 conserved fields,
// linear flux, nearest-neighbor exchange + gs_op), advances a few steps and
// prints per-phase timings and the communication profile — a miniature of
// the paper's Figs. 4 and 8.
//
// Usage: quickstart [--ranks 8] [--n 6] [--elems 4] [--steps 5]

#include <cstdio>

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cmtbone;

  util::Cli cli(argc, argv);
  cli.describe("ranks", "number of ranks (default 8)")
      .describe("n", "GLL points per direction (default 6)")
      .describe("elems", "global elements per direction (default 4)")
      .describe("steps", "time steps (default 5)");
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  cli.reject_unknown();

  const int ranks = cli.get_int("ranks", 8);
  core::Config cfg;
  cfg.n = cli.get_int("n", 6);
  cfg.ex = cfg.ey = cfg.ez = cli.get_int("elems", 4);
  const int steps = cli.get_int("steps", 5);

  prof::CommProfiler comm_prof(ranks);
  std::vector<prof::CallProfile> call_profiles;
  comm::RunOptions opts;
  opts.comm_profiler = &comm_prof;
  opts.call_profiles = &call_profiles;

  double l2 = 0.0, mass0 = 0.0, mass1 = 0.0;
  comm::run(ranks, [&](comm::Comm& world) {
    core::Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    if (world.rank() == 0) mass0 = 0;  // set below collectively
    double m0 = driver.integral(0);
    driver.run(steps);
    double m1 = driver.integral(0);
    double norm = driver.l2_norm(0);
    if (world.rank() == 0) {
      mass0 = m0;
      mass1 = m1;
      l2 = norm;
    }
  }, opts);

  std::printf("CMT-bone quickstart: %d ranks, N=%d, %dx%dx%d elements, %d steps\n",
              ranks, cfg.n, cfg.ex, cfg.ey, cfg.ez, steps);
  std::printf("  mass integral:  %.12f -> %.12f (conserved)\n", mass0, mass1);
  std::printf("  L2 norm of field 0: %.6f\n\n", l2);

  // Merge every rank's call tree and print the Fig. 4-style profile.
  prof::CallProfile merged;
  for (const auto& p : call_profiles) merged.merge(p);
  std::printf("Execution profile (all ranks merged):\n%s\n",
              merged.tree_report().c_str());

  std::printf("%s\n", comm_prof.report_fraction_per_rank().c_str());
  return 0;
}
