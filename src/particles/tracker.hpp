#pragma once
// Lagrangian point-particle tracking — the paper's named next CMT-nek
// capability ("In the following years complete multiphase coupling, shock
// capturing, lagrangian point particle tracking, and real gas models will
// be added", §III-A).
//
// Particles live on the rank that owns the element containing them. Each
// step they advance along a velocity — either a uniform carrier velocity or
// one interpolated from the spectral-element fields via tensor-product
// Lagrange evaluation — and particles that cross a partition boundary
// migrate to their new owner through the crystal router, the same transport
// CMT-nek uses for its particle swap.

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "gs/crystal.hpp"
#include "mesh/layout.hpp"
#include "mesh/partition.hpp"
#include "sem/operators.hpp"

namespace cmtbone::particles {

/// One particle's migration record (also the on-wire layout).
struct Particle {
  long long id = 0;
  double x = 0, y = 0, z = 0;
};

class Tracker {
 public:
  /// Collective over `comm`; the partition must match the communicator.
  /// Ownership starts as the block layout of `part`.
  Tracker(comm::Comm& comm, const mesh::Partition& part,
          const sem::Operators& ops);

  /// Adopt a new element layout (the load balancer's relayout). Particles
  /// keep their positions; call migrate() afterwards to ship each one to
  /// its element's new owner. Collective only through that migrate().
  void set_layout(const mesh::ElementLayout& layout) { layout_ = layout; }
  const mesh::ElementLayout& layout() const { return layout_; }

  /// Seed `count_per_rank` particles uniformly inside this rank's block.
  /// Ids are globally unique and deterministic in (seed, rank).
  void seed_random(int count_per_rank, std::uint64_t seed);

  /// Seed `total` particles uniformly in the unit domain: every rank runs
  /// the identical RNG stream over all `total` particles and keeps the ones
  /// its layout owns — so the global particle set (ids and positions) is
  /// independent of the element layout, the property the balanced-vs-static
  /// bit-identity tests rest on.
  void seed_global(long long total, std::uint64_t seed);

  /// Replace the local set with the owned subset of a replicated global
  /// particle list (scenario generators build the full list identically on
  /// every rank).
  void adopt_global(std::span<const Particle> all);

  /// Advance every local particle by dt along a uniform velocity, with
  /// periodic wrap. Call migrate() afterwards to restore ownership.
  void advance(const std::array<double, 3>& velocity, double dt);

  /// Advance along a velocity interpolated from three spectral-element
  /// fields (each (n,n,n,nel) on this rank's elements). Forward Euler in
  /// time; particles must be locally owned when called.
  void advance_interpolated(const double* ux, const double* uy,
                            const double* uz, double dt);

  /// Ship every particle that left this rank's elements to its owner via
  /// the crystal router, then sort the local set by particle id. Collective.
  /// The sort makes the deposit accumulation order per element canonical —
  /// a function of the particle set alone, not of arrival history — which
  /// keeps the coupling source term bit-identical across relayouts.
  void migrate();

  /// Interpolate one scalar field at a (locally owned) position.
  double interpolate(const double* field, double x, double y, double z) const;

  /// Deposit `strength` from a (locally owned) position onto the owning
  /// element's nodes — the transpose of interpolation, the building block
  /// of two-way multiphase coupling (the paper's source term R). The
  /// deposit is partition-of-unity: the nodal weights sum to 1, so summing
  /// field * 1 recovers the total deposited strength under the
  /// interpolation pairing.
  void deposit(double* field, double x, double y, double z,
               double strength) const;

  /// Deposit every local particle with equal strength (a uniform particle
  /// load) onto `field`.
  void deposit_all(double* field, double strength_per_particle) const;

  /// True if (x,y,z) lies in an element this rank owns.
  bool owns(double x, double y, double z) const;
  /// Rank owning position (x,y,z).
  int owner_of(double x, double y, double z) const;

  /// Resident particles per local element (cost-model input).
  std::vector<int> count_per_element() const;

  std::size_t local_count() const { return particles_.size(); }
  const std::vector<Particle>& particles() const { return particles_; }
  std::vector<Particle>& mutable_particles() { return particles_; }

  /// Total particles across ranks (collective).
  long long total_count() const;

  /// Particles shipped by the last migrate() call on this rank.
  std::size_t last_migrated() const { return last_migrated_; }

 private:
  std::array<int, 3> element_of(double x, double y, double z) const;
  static double wrap01(double v) {
    v -= std::floor(v);
    // floor(1.0 - eps) edge: wrap exact 1.0 back to 0.
    return v >= 1.0 ? v - 1.0 : v;
  }

  comm::Comm* comm_;
  mesh::ElementLayout layout_;
  const sem::Operators* ops_;
  gs::CrystalRouter router_;
  std::array<double, 3> h_;
  std::vector<Particle> particles_;
  std::size_t last_migrated_ = 0;

  // Scratch for barycentric Lagrange evaluation (one weight set per axis).
  mutable std::vector<double> wx_, wy_, wz_;
  std::vector<double> bary_;  // barycentric weights of the GLL nodes
};

}  // namespace cmtbone::particles
