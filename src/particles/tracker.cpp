#include "particles/tracker.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "prof/callprof.hpp"
#include "sem/lgl.hpp"
#include "util/rng.hpp"

namespace cmtbone::particles {

Tracker::Tracker(comm::Comm& comm, const mesh::Partition& part,
                 const sem::Operators& ops)
    : comm_(&comm),
      layout_(mesh::ElementLayout::block(part.spec(), part.rank())),
      ops_(&ops),
      router_(comm) {
  const mesh::BoxSpec& spec = part.spec();
  h_ = {1.0 / spec.ex, 1.0 / spec.ey, 1.0 / spec.ez};
  bary_ = sem::barycentric_weights(ops.rule.nodes);
  wx_.resize(ops.n);
  wy_.resize(ops.n);
  wz_.resize(ops.n);
}

void Tracker::seed_random(int count_per_rank, std::uint64_t seed) {
  util::SplitMix64 rng(util::rank_seed(seed, comm_->rank()));
  particles_.clear();
  particles_.reserve(count_per_rank);
  // Seed inside this rank's *block* extent (the historical behavior; under
  // a non-block layout call migrate() afterwards to restore ownership).
  const mesh::Partition part(layout_.spec(), layout_.rank());
  const double x0 = part.x0() * h_[0], x1 = part.x1() * h_[0];
  const double y0 = part.y0() * h_[1], y1 = part.y1() * h_[1];
  const double z0 = part.z0() * h_[2], z1 = part.z1() * h_[2];
  for (int i = 0; i < count_per_rank; ++i) {
    Particle p;
    p.id = static_cast<long long>(comm_->rank()) * 1000000 + i;
    p.x = rng.uniform(x0, x1);
    p.y = rng.uniform(y0, y1);
    p.z = rng.uniform(z0, z1);
    particles_.push_back(p);
  }
}

void Tracker::seed_global(long long total, std::uint64_t seed) {
  util::SplitMix64 rng(util::rank_seed(seed, /*rank=*/0));
  particles_.clear();
  for (long long i = 0; i < total; ++i) {
    Particle p;
    p.id = i;
    p.x = rng.uniform(0.0, 1.0);
    p.y = rng.uniform(0.0, 1.0);
    p.z = rng.uniform(0.0, 1.0);
    if (owns(p.x, p.y, p.z)) particles_.push_back(p);
  }
}

void Tracker::adopt_global(std::span<const Particle> all) {
  particles_.clear();
  for (const Particle& p : all) {
    if (owns(p.x, p.y, p.z)) particles_.push_back(p);
  }
}

std::array<int, 3> Tracker::element_of(double x, double y, double z) const {
  const mesh::BoxSpec& spec = layout_.spec();
  auto clampi = [](int v, int hi) { return v < 0 ? 0 : (v >= hi ? hi - 1 : v); };
  return {clampi(int(x / h_[0]), spec.ex), clampi(int(y / h_[1]), spec.ey),
          clampi(int(z / h_[2]), spec.ez)};
}

bool Tracker::owns(double x, double y, double z) const {
  auto e = element_of(x, y, z);
  return layout_.owns(e[0], e[1], e[2]);
}

int Tracker::owner_of(double x, double y, double z) const {
  auto e = element_of(x, y, z);
  return layout_.owner_of(e[0], e[1], e[2]);
}

std::vector<int> Tracker::count_per_element() const {
  std::vector<int> count(std::size_t(layout_.nel()), 0);
  for (const Particle& p : particles_) {
    auto e = element_of(p.x, p.y, p.z);
    const int le = layout_.local_index(e[0], e[1], e[2]);
    if (le >= 0) ++count[std::size_t(le)];
  }
  return count;
}

void Tracker::advance(const std::array<double, 3>& velocity, double dt) {
  prof::ScopedRegion region("particle_advance");
  for (Particle& p : particles_) {
    p.x = wrap01(p.x + velocity[0] * dt);
    p.y = wrap01(p.y + velocity[1] * dt);
    p.z = wrap01(p.z + velocity[2] * dt);
  }
}

double Tracker::interpolate(const double* field, double x, double y,
                            double z) const {
  assert(owns(x, y, z));
  const int n = ops_->n;
  auto e = element_of(x, y, z);

  // Reference coordinates in [-1, 1] within the owning element.
  const double r = 2.0 * (x / h_[0] - e[0]) - 1.0;
  const double s = 2.0 * (y / h_[1] - e[1]) - 1.0;
  const double t = 2.0 * (z / h_[2] - e[2]) - 1.0;

  // Barycentric Lagrange weights per axis: w_i = b_i/(r - x_i), normalized;
  // exact node hits short-circuit to a delta.
  auto basis = [&](double coord, std::vector<double>& w) {
    const std::vector<double>& nodes = ops_->rule.nodes;
    for (int i = 0; i < n; ++i) {
      if (coord == nodes[i]) {
        std::fill(w.begin(), w.end(), 0.0);
        w[i] = 1.0;
        return;
      }
    }
    double denom = 0.0;
    for (int i = 0; i < n; ++i) {
      w[i] = bary_[i] / (coord - nodes[i]);
      denom += w[i];
    }
    for (int i = 0; i < n; ++i) w[i] /= denom;
  };
  basis(r, wx_);
  basis(s, wy_);
  basis(t, wz_);

  const int le = layout_.local_index(e[0], e[1], e[2]);
  const double* ue = field + std::size_t(le) * n * n * n;
  double value = 0.0;
  for (int k = 0; k < n; ++k) {
    double slab = 0.0;
    for (int j = 0; j < n; ++j) {
      double row = 0.0;
      const double* urow = ue + std::size_t(n) * (j + std::size_t(n) * k);
      for (int i = 0; i < n; ++i) row += wx_[i] * urow[i];
      slab += wy_[j] * row;
    }
    value += wz_[k] * slab;
  }
  return value;
}

void Tracker::deposit(double* field, double x, double y, double z,
                      double strength) const {
  assert(owns(x, y, z));
  const int n = ops_->n;
  auto e = element_of(x, y, z);
  const double r = 2.0 * (x / h_[0] - e[0]) - 1.0;
  const double s = 2.0 * (y / h_[1] - e[1]) - 1.0;
  const double t = 2.0 * (z / h_[2] - e[2]) - 1.0;

  auto basis = [&](double coord, std::vector<double>& w) {
    const std::vector<double>& nodes = ops_->rule.nodes;
    for (int i = 0; i < n; ++i) {
      if (coord == nodes[i]) {
        std::fill(w.begin(), w.end(), 0.0);
        w[i] = 1.0;
        return;
      }
    }
    double denom = 0.0;
    for (int i = 0; i < n; ++i) {
      w[i] = bary_[i] / (coord - nodes[i]);
      denom += w[i];
    }
    for (int i = 0; i < n; ++i) w[i] /= denom;
  };
  basis(r, wx_);
  basis(s, wy_);
  basis(t, wz_);

  const int le = layout_.local_index(e[0], e[1], e[2]);
  double* ue = field + std::size_t(le) * n * n * n;
  for (int k = 0; k < n; ++k) {
    const double wk = wz_[k] * strength;
    for (int j = 0; j < n; ++j) {
      const double wjk = wy_[j] * wk;
      double* row = ue + std::size_t(n) * (j + std::size_t(n) * k);
      for (int i = 0; i < n; ++i) row[i] += wx_[i] * wjk;
    }
  }
}

void Tracker::deposit_all(double* field, double strength_per_particle) const {
  prof::ScopedRegion region("particle_deposit");
  for (const Particle& p : particles_) {
    deposit(field, p.x, p.y, p.z, strength_per_particle);
  }
}

void Tracker::advance_interpolated(const double* ux, const double* uy,
                                   const double* uz, double dt) {
  prof::ScopedRegion region("particle_advance");
  for (Particle& p : particles_) {
    const double vx = interpolate(ux, p.x, p.y, p.z);
    const double vy = interpolate(uy, p.x, p.y, p.z);
    const double vz = interpolate(uz, p.x, p.y, p.z);
    p.x = wrap01(p.x + vx * dt);
    p.y = wrap01(p.y + vy * dt);
    p.z = wrap01(p.z + vz * dt);
  }
}

void Tracker::migrate() {
  prof::ScopedRegion region("particle_migrate");
  std::vector<Particle> leaving, staying;
  std::vector<int> dest;
  for (const Particle& p : particles_) {
    if (owns(p.x, p.y, p.z)) {
      staying.push_back(p);
    } else {
      leaving.push_back(p);
      dest.push_back(owner_of(p.x, p.y, p.z));
    }
  }
  last_migrated_ = leaving.size();

  std::vector<Particle> arrived = router_.route_records(
      std::span<const Particle>(leaving), dest);
  particles_ = std::move(staying);
  particles_.insert(particles_.end(), arrived.begin(), arrived.end());
  // Canonical local order (ids are globally unique): deposit accumulation
  // per element becomes a function of the particle set alone.
  std::sort(particles_.begin(), particles_.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
}

long long Tracker::total_count() const {
  return comm_->allreduce_one(static_cast<long long>(particles_.size()),
                              comm::ReduceOp::kSum);
}

}  // namespace cmtbone::particles
