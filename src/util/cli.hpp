#pragma once
// Minimal command-line parser for the example/bench drivers.
//
// All figure-reproduction binaries share the same conventions:
//   --flag            boolean switch
//   --key value       valued option
//   --key=value       also accepted
// Unknown options are an error (catches typos in sweep scripts).
//
// Ambiguity note: "--flag positional" reads the positional as the flag's
// value (the parser cannot know a flag takes no value). Pass positionals
// before options, or use --key=value forms.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cmtbone::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declare options up front so --help can print them and unknown options
  /// can be rejected. Returns *this for chaining.
  Cli& describe(const std::string& key, const std::string& help);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  long long get_ll(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Positional arguments (non-option tokens), in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True if --help was passed; callers should print usage() and exit.
  bool help_requested() const { return has("help"); }
  std::string usage() const;

  /// Throws std::runtime_error if any parsed option was never described.
  void reject_unknown() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;   // key -> raw value ("" for flags)
  std::map<std::string, std::string> help_;     // key -> description
  std::vector<std::string> positional_;
};

}  // namespace cmtbone::util
