#pragma once
// ASCII table formatting for bench output. The figure-reproduction benches
// print tables shaped like the paper's figures; this keeps them aligned and
// uniform.

#include <string>
#include <vector>

namespace cmtbone::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column-aligned cells, a header separator, and an optional
  /// title line above.
  std::string str() const;

  /// Render as CSV (header row + data rows; cells containing commas or
  /// quotes are quoted). The title is not emitted.
  std::string csv() const;

  void set_title(std::string title) { title_ = std::move(title); }

  /// Helpers for numeric cells.
  static std::string num(double v, int precision = 6);
  static std::string sci(double v, int precision = 3);
  static std::string pct(double v, int precision = 1);  // v in [0,1] -> "xx.x%"

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cmtbone::util
