#include "util/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace cmtbone::util {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  describe("help", "print this message");
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(tok);
      continue;
    }
    std::string key = tok.substr(2);
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      values_[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // "--key value" if the next token exists and is not itself an option;
    // otherwise a bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";
    }
  }
}

Cli& Cli::describe(const std::string& key, const std::string& help) {
  help_[key] = help;
  return *this;
}

bool Cli::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Cli::get_int(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoi(it->second);
}

long long Cli::get_ll(const std::string& key, long long fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  for (const auto& [key, help] : help_) {
    os << "  --" << key;
    for (std::size_t i = key.size(); i < 18; ++i) os << ' ';
    os << help << "\n";
  }
  return os.str();
}

void Cli::reject_unknown() const {
  for (const auto& [key, value] : values_) {
    (void)value;
    if (help_.count(key) == 0) {
      throw std::runtime_error("unknown option --" + key + "\n" + usage());
    }
  }
}

}  // namespace cmtbone::util
