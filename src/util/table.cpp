#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cmtbone::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c];
      for (std::size_t i = cells[c].size(); i < width[c]; ++i) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * v);
  return buf;
}

}  // namespace cmtbone::util
