#pragma once
// Deterministic, seedable RNG used throughout tests and workload generators.
//
// Reproducibility across ranks and runs matters more here than statistical
// sophistication: every rank seeds from (global seed, rank) so a parallel
// run can be checked against a serial oracle that re-derives the same
// per-rank streams.

#include <cstdint>

namespace cmtbone::util {

/// SplitMix64: tiny, fast, passes BigCrush for our purposes.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return double(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// Derive a per-rank seed from a global seed so streams are independent.
inline std::uint64_t rank_seed(std::uint64_t global_seed, int rank) {
  SplitMix64 mix(global_seed ^ (0x853c49e6748fea9bull + std::uint64_t(rank)));
  mix.next();
  return mix.next();
}

}  // namespace cmtbone::util
