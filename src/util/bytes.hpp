#pragma once
// Checked raw-byte copies.
//
// std::memcpy with a null pointer is undefined behavior even for length
// zero, and the degenerate topologies this code must survive — 1-rank jobs,
// empty exchange plans, zero-element shipments, empty message payloads —
// produce exactly that shape: `vec.data()` of an empty vector is allowed to
// be null. PR 4 fixed two such sites in the comm layer; every pack/unpack
// and serialization path now routes through this helper instead of raw
// memcpy so the class is dead, not resting.

#include <cstddef>
#include <cstring>

namespace cmtbone::util {

/// memcpy(dst, src, bytes) with the zero-length case made well-defined: a
/// no-op even when either pointer is null.
inline void copy_bytes(void* dst, const void* src, std::size_t bytes) {
  if (bytes == 0) return;
  std::memcpy(dst, src, bytes);
}

/// Typed form: copy `count` values of trivially-copyable T.
template <class T>
void copy_values(T* dst, const T* src, std::size_t count) {
  copy_bytes(dst, src, count * sizeof(T));
}

}  // namespace cmtbone::util
