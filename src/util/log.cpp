#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cmtbone::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (int(level) < int(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace cmtbone::util
