#pragma once
// Cache-line aligned, zero-initialised numeric buffers.
//
// Spectral-element kernels stream through (N,N,N,nel) tensors; keeping the
// base pointer 64-byte aligned lets the compiler emit aligned vector
// loads/stores and keeps per-element slices from straddling cache lines
// gratuitously.

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>
#include "util/bytes.hpp"

namespace cmtbone::util {

/// Fixed-capacity heap buffer of trivially-copyable T, aligned to `Align`
/// bytes. Unlike std::vector it never reallocates behind the caller's back,
/// which matters when raw pointers into the buffer are cached by kernels.
template <class T, std::size_t Align = 64>
class AlignedBuffer {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { allocate(n); }

  AlignedBuffer(const AlignedBuffer& other) {
    allocate(other.n_);
    copy_bytes(p_, other.p_, n_ * sizeof(T));
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : p_(std::exchange(other.p_, nullptr)), n_(std::exchange(other.n_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer other) noexcept {
    swap(other);
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(p_, other.p_);
    std::swap(n_, other.n_);
  }

  /// Discard contents and reallocate to exactly `n` zeroed elements.
  void reset(std::size_t n) {
    release();
    allocate(n);
  }

  void fill(T v) {
    for (std::size_t i = 0; i < n_; ++i) p_[i] = v;
  }

  T* data() { return p_; }
  const T* data() const { return p_; }
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  T& operator[](std::size_t i) { return p_[i]; }
  const T& operator[](std::size_t i) const { return p_[i]; }

  T* begin() { return p_; }
  T* end() { return p_ + n_; }
  const T* begin() const { return p_; }
  const T* end() const { return p_ + n_; }

  std::span<T> span() { return {p_, n_}; }
  std::span<const T> span() const { return {p_, n_}; }

 private:
  void allocate(std::size_t n) {
    n_ = n;
    if (n == 0) {
      p_ = nullptr;
      return;
    }
    // Round the byte count up to a multiple of the alignment as required by
    // std::aligned_alloc.
    std::size_t bytes = (n * sizeof(T) + Align - 1) / Align * Align;
    p_ = static_cast<T*>(std::aligned_alloc(Align, bytes));
    if (p_ == nullptr) throw std::bad_alloc{};
    std::memset(p_, 0, bytes);
  }

  void release() {
    std::free(p_);
    p_ = nullptr;
    n_ = 0;
  }

  T* p_ = nullptr;
  std::size_t n_ = 0;
};

}  // namespace cmtbone::util
