#pragma once
// Tiny leveled logger. Thread-safe; each line is written atomically so logs
// from 256 in-process ranks interleave by line, never by character.

#include <sstream>
#include <string>

namespace cmtbone::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Write one line (a newline is appended) if `level` passes the threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LineStream {
 public:
  explicit LineStream(LogLevel level) : level_(level) {}
  ~LineStream() { log_line(level_, os_.str()); }
  template <class T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineStream log_debug() { return detail::LineStream(LogLevel::kDebug); }
inline detail::LineStream log_info() { return detail::LineStream(LogLevel::kInfo); }
inline detail::LineStream log_warn() { return detail::LineStream(LogLevel::kWarn); }
inline detail::LineStream log_error() { return detail::LineStream(LogLevel::kError); }

}  // namespace cmtbone::util
