#pragma once
// Lightweight non-owning views over contiguous spectral-element data.
//
// CMT-nek (via Nek5000) stores each field as a Fortran-ordered rank-4 array
// u(i,j,k,e): i fastest, e slowest, with i,j,k in [0,N) the
// Gauss-Lobatto-Legendre point indices and e the local element index.
// These views reproduce that layout so the kernel variants in src/kernels
// are transliterations of the Fortran loop nests the paper studies.

#include <cassert>
#include <cstddef>

namespace cmtbone::util {

/// View of one element's (N,N,N) tensor, column-major (i fastest).
template <class T>
class Tensor3View {
 public:
  Tensor3View(T* data, int n) : p_(data), n_(n) {}

  T& operator()(int i, int j, int k) const {
    assert(i >= 0 && i < n_ && j >= 0 && j < n_ && k >= 0 && k < n_);
    return p_[i + n_ * (j + std::size_t(n_) * k)];
  }

  T* data() const { return p_; }
  int n() const { return n_; }
  std::size_t size() const { return std::size_t(n_) * n_ * n_; }

 private:
  T* p_;
  int n_;
};

/// View of a whole field (N,N,N,nel), column-major.
template <class T>
class FieldView {
 public:
  FieldView(T* data, int n, int nel) : p_(data), n_(n), nel_(nel) {}

  Tensor3View<T> element(int e) const {
    assert(e >= 0 && e < nel_);
    return {p_ + std::size_t(e) * n_ * n_ * n_, n_};
  }

  T& operator()(int i, int j, int k, int e) const {
    return element(e)(i, j, k);
  }

  T* data() const { return p_; }
  int n() const { return n_; }
  int nel() const { return nel_; }
  std::size_t size() const { return std::size_t(n_) * n_ * n_ * nel_; }

 private:
  T* p_;
  int n_;
  int nel_;
};

/// Square-matrix view (N,N), column-major: m(i,j) = p[i + n*j].
template <class T>
class MatrixView {
 public:
  MatrixView(T* data, int n) : p_(data), n_(n) {}

  T& operator()(int i, int j) const {
    assert(i >= 0 && i < n_ && j >= 0 && j < n_);
    return p_[i + std::size_t(n_) * j];
  }

  T* data() const { return p_; }
  int n() const { return n_; }

 private:
  T* p_;
  int n_;
};

}  // namespace cmtbone::util
