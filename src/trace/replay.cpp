#include "trace/replay.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>

namespace cmtbone::trace {

double collective_cost(const std::string& name, long long bytes, int nranks,
                       const netmodel::LogGPParams& m) {
  if (nranks <= 1) return 0.0;
  const int stages = int(std::ceil(std::log2(double(nranks))));
  const double msg = m.latency + 2.0 * m.overhead + bytes * m.gap_per_byte();
  if (name == "MPI_Allreduce" || name == "MPI_Allgather" ||
      name == "MPI_Allgatherv") {
    return 2.0 * stages * msg;  // reduce/gather + broadcast
  }
  if (name == "MPI_Barrier") {
    return stages * (m.latency + 2.0 * m.overhead);
  }
  if (name == "MPI_Alltoallv" || name == "MPI_Alltoall") {
    // Posted-all exchange: per-partner overhead serializes, wire overlaps.
    return 2.0 * (nranks - 1) * m.overhead + m.latency +
           bytes * m.gap_per_byte();
  }
  if (name == "MPI_Scan") {
    // Linear chain: a scan over P ranks crosses P-1 hops.
    return (nranks - 1) * msg;
  }
  // bcast, reduce, gather(v), comm_split, and anything unrecognized:
  // one binomial sweep.
  return stages * msg;
}

namespace {

struct MessageKey {
  int src, dst, tag;
  bool operator<(const MessageKey& other) const {
    if (src != other.src) return src < other.src;
    if (dst != other.dst) return dst < other.dst;
    return tag < other.tag;
  }
};

}  // namespace

ReplayResult replay(const Trace& trace, const ReplayConfig& config) {
  const int p = trace.nranks();
  const netmodel::LogGPParams& m = config.machine;

  ReplayResult result;
  result.rank_finish.assign(p, 0.0);
  // A trace with no events replays to a well-defined all-zero result (the
  // besim benches divide by the makespan; they guard, but the contract
  // should not depend on loop fall-through).
  if (trace.total_events() == 0) return result;

  std::vector<std::size_t> next(p, 0);    // next event index per rank
  std::vector<double> clock(p, 0.0);      // virtual time per rank
  std::vector<double> prev_end(p, 0.0);   // original end time of prior event
  // In-flight messages: arrival times per (src, dst, tag), FIFO
  // (non-overtaking matches the runtime's semantics).
  std::map<MessageKey, std::deque<double>> in_flight;
  // Collective rendezvous: ranks whose next event is their k-th collective.
  std::vector<long long> coll_index(p, 0);

  auto gap_of = [&](int r, const Event& e) {
    return std::max(0.0, e.t_start - prev_end[r]) * config.compute_scale;
  };

  int done = 0;
  for (int r = 0; r < p; ++r) {
    if (trace.ranks[r].empty()) ++done;
  }

  while (done < p) {
    bool progressed = false;

    // Try to advance every rank whose next event is executable.
    for (int r = 0; r < p; ++r) {
      while (next[r] < trace.ranks[r].size()) {
        const Event& e = trace.ranks[r][next[r]];
        if (e.kind == EventKind::kSend) {
          const double gap = gap_of(r, e);
          result.total_compute += gap;
          clock[r] += gap + m.overhead;
          result.total_comm += m.overhead;
          in_flight[{r, e.peer, e.tag}].push_back(
              clock[r] + m.latency + e.bytes * m.gap_per_byte());
          ++result.messages;
          result.bytes += e.bytes;
        } else if (e.kind == EventKind::kRecv) {
          auto it = in_flight.find({e.peer, r, e.tag});
          if (it == in_flight.end() || it->second.empty()) break;  // stalled
          const double gap = gap_of(r, e);
          result.total_compute += gap;
          const double ready = clock[r] + gap;
          const double arrival = it->second.front();
          it->second.pop_front();
          result.total_blocked += std::max(0.0, arrival - ready);
          clock[r] = std::max(ready, arrival) + m.overhead;
          result.total_comm += m.overhead;
        } else {
          break;  // collectives rendezvous below
        }
        prev_end[r] = e.t_end;
        ++next[r];
        progressed = true;
        if (next[r] == trace.ranks[r].size()) ++done;
      }
    }

    // Collective rendezvous: if every unfinished rank is parked at a
    // collective with the same per-rank ordinal and the same operation,
    // execute it synchronously.
    bool all_at_coll = done < p;
    long long k = -1;
    const std::string* coll_name = nullptr;
    for (int r = 0; r < p && all_at_coll; ++r) {
      if (next[r] >= trace.ranks[r].size()) {
        // A finished rank cannot join a collective: sequences mismatch.
        all_at_coll = false;
        break;
      }
      const Event& e = trace.ranks[r][next[r]];
      if (e.kind != EventKind::kCollective) {
        all_at_coll = false;
        break;
      }
      if (coll_name == nullptr) coll_name = &e.collective;
      if (e.collective != *coll_name) {
        // Ranks naming different collectives at one rendezvous would have
        // deadlocked (or corrupted) on the real fabric.
        all_at_coll = false;
        break;
      }
      if (k < 0) k = coll_index[r];
      if (coll_index[r] != k) all_at_coll = false;
    }
    if (all_at_coll) {
      // Enter: everyone applies its compute gap, then synchronizes.
      double enter = 0.0;
      long long max_bytes = 0;
      std::string name;
      for (int r = 0; r < p; ++r) {
        const Event& e = trace.ranks[r][next[r]];
        const double gap = gap_of(r, e);
        result.total_compute += gap;
        clock[r] += gap;
        enter = std::max(enter, clock[r]);
        max_bytes = std::max(max_bytes, e.bytes);
        name = e.collective;
      }
      const double cost = collective_cost(name, max_bytes, p, m);
      result.total_comm += cost;
      for (int r = 0; r < p; ++r) {
        result.total_blocked += enter - clock[r];
        clock[r] = enter + cost;
        prev_end[r] = trace.ranks[r][next[r]].t_end;
        ++coll_index[r];
        ++next[r];
        if (next[r] == trace.ranks[r].size()) ++done;
      }
      progressed = true;
    }

    if (!progressed && done < p) {
      throw std::runtime_error(
          "trace::replay: no rank can make progress (causally inconsistent "
          "trace: unmatched receive or mismatched collective sequence)");
    }
  }

  for (int r = 0; r < p; ++r) {
    result.rank_finish[r] = clock[r];
    result.makespan = std::max(result.makespan, clock[r]);
  }
  return result;
}

}  // namespace cmtbone::trace
