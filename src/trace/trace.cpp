#include "trace/trace.hpp"

#include <chrono>
#include <utility>

namespace cmtbone::trace {

double Trace::recorded_makespan() const {
  double t = 0.0;
  for (const auto& rank : ranks) {
    for (const Event& e : rank) {
      if (e.t_end > t) t = e.t_end;
    }
  }
  return t;
}

Recorder::Recorder(int nranks) {
  trace_.ranks.resize(nranks);
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

double Recorder::now() const {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
  return double(ns - epoch_ns_) * 1e-9;
}

void Recorder::on_send(int rank, int dest, int tag, long long bytes,
                       double t_start, double t_end) {
  Event e;
  e.kind = EventKind::kSend;
  e.peer = dest;
  e.tag = tag;
  e.bytes = bytes;
  e.t_start = t_start;
  e.t_end = t_end;
  trace_.ranks[rank].push_back(std::move(e));
}

void Recorder::on_recv(int rank, int source, int tag, long long bytes,
                       double t_start, double t_end) {
  Event e;
  e.kind = EventKind::kRecv;
  e.peer = source;
  e.tag = tag;
  e.bytes = bytes;
  e.t_start = t_start;
  e.t_end = t_end;
  trace_.ranks[rank].push_back(std::move(e));
}

void Recorder::on_collective(int rank, const char* name, long long bytes,
                             double t_start, double t_end) {
  Event e;
  e.kind = EventKind::kCollective;
  e.collective = name;
  e.bytes = bytes;
  e.t_start = t_start;
  e.t_end = t_end;
  trace_.ranks[rank].push_back(std::move(e));
}

Trace Recorder::take() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  trace_.ranks.resize(out.ranks.size());
  return out;
}

}  // namespace cmtbone::trace
