#pragma once
// Communication traces for behavioral emulation.
//
// The paper's co-design strategy (§III-C) evaluates notional exascale
// architectures by emulating application behavior on candidate machine
// models. This module records what a run actually did — per rank, the
// ordered sequence of sends, receive completions, and collectives, with
// the compute gaps between them — so the replay simulator (trace/replay.hpp)
// can re-time the same behavior on a different machine.

#include <cstdint>
#include <string>
#include <vector>

namespace cmtbone::trace {

enum class EventKind {
  kSend,        // eager send: peer = destination, bytes = payload
  kRecv,        // receive completion: peer = source, bytes = payload
  kCollective,  // whole-communicator operation (replayed analytically)
};

struct Event {
  EventKind kind = EventKind::kSend;
  double t_start = 0.0;  // seconds since recorder start (original machine)
  double t_end = 0.0;
  int peer = -1;       // global rank of the partner (p2p only)
  int tag = 0;         // p2p tag (matching key during replay)
  long long bytes = 0;
  std::string collective;  // collective name (kCollective only)
};

/// One rank's ordered event list.
using RankTrace = std::vector<Event>;

/// A full job trace.
struct Trace {
  std::vector<RankTrace> ranks;

  int nranks() const { return int(ranks.size()); }
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& r : ranks) n += r.size();
    return n;
  }
  /// Wall time of the recorded run (max event end time).
  double recorded_makespan() const;
};

/// Abstract sink the comm runtime reports into (kept minimal so comm does
/// not depend on the recorder implementation).
class Tracer {
 public:
  virtual ~Tracer() = default;
  /// Trace clock (seconds); all event timestamps come from this.
  virtual double now() const = 0;
  virtual void on_send(int rank, int dest, int tag, long long bytes,
                       double t_start, double t_end) = 0;
  virtual void on_recv(int rank, int source, int tag, long long bytes,
                       double t_start, double t_end) = 0;
  virtual void on_collective(int rank, const char* name, long long bytes,
                             double t_start, double t_end) = 0;
};

/// Concrete recorder: per-rank event vectors (each written only by its own
/// rank thread, so recording is lock-free), timestamps relative to
/// construction.
class Recorder : public Tracer {
 public:
  explicit Recorder(int nranks);

  double now() const override;
  void on_send(int rank, int dest, int tag, long long bytes, double t_start,
               double t_end) override;
  void on_recv(int rank, int source, int tag, long long bytes, double t_start,
               double t_end) override;
  void on_collective(int rank, const char* name, long long bytes,
                     double t_start, double t_end) override;

  /// Steal the recorded trace (recorder becomes empty).
  Trace take();

 private:
  Trace trace_;
  std::int64_t epoch_ns_ = 0;
};

}  // namespace cmtbone::trace
