#include "trace/extrapolate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>

#include "mesh/numbering.hpp"

namespace cmtbone::trace {

namespace {

// Tag conventions of the live runtime (mesh::FaceExchange and the gs
// pairwise exchange). Classification relies on them: face-exchange traffic
// is tagged 64 + face direction, everything else p2p is a merged
// per-partner gather-scatter message.
constexpr int kFaceTagBase = 64;

bool is_face_tag(int tag) {
  return tag >= kFaceTagBase && tag < kFaceTagBase + 6;
}

}  // namespace

ExchangeStructure exchange_structure(const mesh::BoxSpec& spec, int rank) {
  const mesh::Partition part(spec, rank);
  ExchangeStructure st;

  const int nels[3] = {part.nelx(), part.nely(), part.nelz()};
  for (int d = 0; d < 6; ++d) {
    const int axis = d / 2;
    int delta[3] = {0, 0, 0};
    delta[axis] = (d % 2) == 0 ? -1 : 1;
    int partner = part.neighbor_rank(delta[0], delta[1], delta[2]);
    // A single-rank axis wraps onto itself: the plane pairs locally, no
    // message. Physical boundaries report -1 already.
    if (partner == rank) partner = -1;
    st.face_partner[d] = partner;
    long long plane_elems = 1;
    for (int a = 0; a < 3; ++a) {
      if (a != axis) plane_elems *= nels[a];
    }
    st.face_contacts[d] =
        partner < 0 ? 0 : plane_elems * spec.n * spec.n;
  }

  // Pairwise gs partners: every one of the 26 neighbor directions
  // contributes its interface plane/edge/corner ids to that direction's
  // rank. Directions reaching the same rank (two ranks per axis) merge —
  // their id sets are distinct planes, so counts add.
  const long long pts[3] = {1LL * part.nelx() * (spec.n - 1) + 1,
                            1LL * part.nely() * (spec.n - 1) + 1,
                            1LL * part.nelz() * (spec.n - 1) + 1};
  std::map<int, long long> gs;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int partner = part.neighbor_rank(dx, dy, dz);
        if (partner < 0 || partner == rank) continue;
        long long ids = 1;
        if (dx == 0) ids *= pts[0];
        if (dy == 0) ids *= pts[1];
        if (dz == 0) ids *= pts[2];
        gs[partner] += ids;
      }
    }
  }
  st.gs_contacts.assign(gs.begin(), gs.end());
  return st;
}

namespace {

// Event signature for periodicity detection: collapses timestamps and
// payload so only the communication *structure* must repeat.
using Signature = std::tuple<int, int, int, std::string>;

Signature signature_of(const Event& e) {
  switch (e.kind) {
    case EventKind::kSend:
      return {0, is_face_tag(e.tag) ? e.tag : -1, e.peer, {}};
    case EventKind::kRecv:
      return {1, is_face_tag(e.tag) ? e.tag : -1, e.peer, {}};
    case EventKind::kCollective:
      return {2, 0, -1, e.collective};
  }
  return {3, 0, -1, {}};
}

// Smallest L such that the last 2L events are L-periodic and the L-suffix
// contains a collective (every steady step has at least the CFL reduction,
// and one collective per period rules out sub-periods). Returns 0 if none.
std::size_t steady_period(const std::vector<Signature>& sig) {
  const std::size_t len = sig.size();
  for (std::size_t L = 1; 2 * L <= len; ++L) {
    bool periodic = true;
    for (std::size_t i = len - L; i < len && periodic; ++i) {
      periodic = sig[i] == sig[i - L];
    }
    if (!periodic) continue;
    bool has_coll = false;
    for (std::size_t i = len - L; i < len && !has_coll; ++i) {
      has_coll = std::get<0>(sig[i]) == 2;
    }
    if (has_coll) return L;
  }
  return 0;
}

// Contact count of one recorded send against the base-geometry structure.
long long contacts_of_send(const Event& e, const ExchangeStructure& st) {
  if (is_face_tag(e.tag)) return st.face_contacts[e.tag - kFaceTagBase];
  for (const auto& [partner, ids] : st.gs_contacts) {
    if (partner == e.peer) return ids;
  }
  return 0;
}

// Distil one rank's steady-state suffix into a phase list.
std::vector<Phase> phases_of_rank(const RankTrace& events, std::size_t first,
                                  const ExchangeStructure& st) {
  std::vector<Phase> phases;
  // Per-phase accumulators (folded into bytes_per_contact on close).
  long long sent_bytes = 0, sent_contacts = 0;
  bool seen_recv = false;

  auto close = [&]() {
    if (!phases.empty() && phases.back().kind != Phase::Kind::kCollective &&
        sent_contacts > 0) {
      phases.back().bytes_per_contact =
          double(sent_bytes) / double(sent_contacts);
    }
    sent_bytes = sent_contacts = 0;
    seen_recv = false;
  };

  for (std::size_t i = first; i < events.size(); ++i) {
    const Event& e = events[i];
    const double gap =
        i == 0 ? 0.0 : std::max(0.0, e.t_start - events[i - 1].t_end);

    if (e.kind == EventKind::kCollective) {
      close();
      Phase ph;
      ph.kind = Phase::Kind::kCollective;
      ph.gap_send = gap;
      ph.collective = e.collective;
      ph.collective_bytes = e.bytes;
      phases.push_back(std::move(ph));
      continue;
    }

    const Phase::Kind cls =
        is_face_tag(e.tag) ? Phase::Kind::kFaceRound : Phase::Kind::kGsRound;
    const bool is_send = e.kind == EventKind::kSend;
    // A new round starts on a class change, after a collective, or when a
    // send follows this round's receives (back-to-back rounds of one
    // class, e.g. the per-field dssum gs_ops).
    if (phases.empty() || phases.back().kind != cls ||
        (is_send && seen_recv)) {
      close();
      Phase ph;
      ph.kind = cls;
      phases.push_back(std::move(ph));
    }
    if (is_send) {
      phases.back().gap_send += gap;
      sent_bytes += e.bytes;
      sent_contacts += contacts_of_send(e, st);
    } else {
      seen_recv = true;
      phases.back().gap_recv += gap;
    }
  }
  close();
  return phases;
}

bool same_structure(const std::vector<Phase>& a, const std::vector<Phase>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind) return false;
    if (a[i].kind == Phase::Kind::kCollective &&
        a[i].collective != b[i].collective) {
      return false;
    }
  }
  return true;
}

}  // namespace

StepModel extract_step_model(const Trace& trace, const mesh::BoxSpec& base) {
  if (trace.nranks() != base.nranks()) {
    throw std::runtime_error(
        "extract_step_model: trace rank count does not match the base spec");
  }
  const int p = trace.nranks();

  std::vector<std::vector<Phase>> per_rank(p);
  double step_seconds = 0.0;
  for (int r = 0; r < p; ++r) {
    const RankTrace& events = trace.ranks[r];
    std::vector<Signature> sig;
    sig.reserve(events.size());
    for (const Event& e : events) sig.push_back(signature_of(e));
    const std::size_t L = steady_period(sig);
    if (L == 0) {
      throw std::runtime_error(
          "extract_step_model: no steady-state period in the recorded trace "
          "(record more steps, in CFL mode so each step has a collective)");
    }
    const std::size_t first = events.size() - L;
    per_rank[r] =
        phases_of_rank(events, first, exchange_structure(base, r));
    if (r == 0) {
      step_seconds = events.back().t_end - events[first - 1].t_end;
    }
  }

  StepModel model;
  model.base = base;
  model.base_elems = double(mesh::Partition(base, 0).nel());
  model.step_seconds = step_seconds;

  // Average the template across ranks when they agree structurally (a
  // homogeneous periodic run does); otherwise rank 0 stands alone.
  bool uniform = true;
  for (int r = 1; r < p && uniform; ++r) {
    uniform = same_structure(per_rank[0], per_rank[r]);
  }
  model.phases = per_rank[0];
  if (uniform && p > 1) {
    for (std::size_t i = 0; i < model.phases.size(); ++i) {
      double gs = 0, gr = 0, in = 0;
      long long cb = 0;
      for (int r = 0; r < p; ++r) {
        gs += per_rank[r][i].gap_send;
        gr += per_rank[r][i].gap_recv;
        in += per_rank[r][i].bytes_per_contact;
        cb = std::max(cb, per_rank[r][i].collective_bytes);
      }
      model.phases[i].gap_send = gs / p;
      model.phases[i].gap_recv = gr / p;
      model.phases[i].bytes_per_contact = in / p;
      model.phases[i].collective_bytes = cb;
    }
  }
  return model;
}

mesh::BoxSpec scale_spec(const mesh::BoxSpec& base, int target_ranks) {
  const auto grid = mesh::BoxSpec::default_proc_grid(target_ranks);
  mesh::BoxSpec spec = base;
  // Weak scaling: per-rank block of the recording, replicated over the
  // target grid. Non-divisible recordings round to at least one layer.
  const int bx = std::max(1, base.ex / std::max(1, base.px));
  const int by = std::max(1, base.ey / std::max(1, base.py));
  const int bz = std::max(1, base.ez / std::max(1, base.pz));
  spec.px = grid[0];
  spec.py = grid[1];
  spec.pz = grid[2];
  spec.ex = grid[0] * bx;
  spec.ey = grid[1] * by;
  spec.ez = grid[2] * bz;
  return spec;
}

Trace extrapolate(const StepModel& model, const mesh::BoxSpec& spec,
                  int steps) {
  const int p = spec.nranks();
  Trace out;
  out.ranks.resize(p);

  for (int r = 0; r < p; ++r) {
    const ExchangeStructure st = exchange_structure(spec, r);
    const mesh::Partition part(spec, r);
    const double gscale =
        model.base_elems > 0 ? double(part.nel()) / model.base_elems : 1.0;

    std::size_t per_step = 0;
    for (const Phase& ph : model.phases) {
      if (ph.kind == Phase::Kind::kCollective) {
        per_step += 1;
      } else if (ph.kind == Phase::Kind::kFaceRound) {
        for (int d = 0; d < 6; ++d) per_step += st.face_partner[d] >= 0 ? 2 : 0;
      } else {
        per_step += 2 * st.gs_contacts.size();
      }
    }
    RankTrace& ev = out.ranks[r];
    ev.reserve(per_step * std::size_t(steps));

    double t = 0.0;
    auto push = [&](EventKind kind, int peer, int tag, long long bytes,
                    const std::string& name = {}) {
      Event e;
      e.kind = kind;
      e.t_start = t;
      e.t_end = t;
      e.peer = peer;
      e.tag = tag;
      e.bytes = bytes;
      e.collective = name;
      ev.push_back(std::move(e));
    };

    for (int step = 0; step < steps; ++step) {
      for (const Phase& ph : model.phases) {
        t += ph.gap_send * gscale;
        switch (ph.kind) {
          case Phase::Kind::kCollective:
            push(EventKind::kCollective, -1, 0, ph.collective_bytes,
                 ph.collective);
            break;
          case Phase::Kind::kFaceRound: {
            for (int d = 0; d < 6; ++d) {
              if (st.face_partner[d] < 0) continue;
              push(EventKind::kSend, st.face_partner[d], kFaceTagBase + d,
                   std::llround(ph.bytes_per_contact * st.face_contacts[d]));
            }
            t += ph.gap_recv * gscale;
            // The runtime posts the direction-d receive with the partner's
            // send tag, 64 + opposite(d) — opposite faces pair via d ^ 1.
            for (int d = 0; d < 6; ++d) {
              if (st.face_partner[d] < 0) continue;
              push(EventKind::kRecv, st.face_partner[d],
                   kFaceTagBase + (d ^ 1),
                   std::llround(ph.bytes_per_contact * st.face_contacts[d]));
            }
            break;
          }
          case Phase::Kind::kGsRound: {
            for (const auto& [partner, ids] : st.gs_contacts) {
              push(EventKind::kSend, partner, 7,
                   std::llround(ph.bytes_per_contact * double(ids)));
            }
            t += ph.gap_recv * gscale;
            for (const auto& [partner, ids] : st.gs_contacts) {
              push(EventKind::kRecv, partner, 7,
                   std::llround(ph.bytes_per_contact * double(ids)));
            }
            break;
          }
        }
      }
    }
  }
  return out;
}

netmodel::ExchangeShape shape_at(const mesh::BoxSpec& spec, int rank,
                                 double bytes_per_contact) {
  const ExchangeStructure st = exchange_structure(spec, rank);
  const mesh::Partition part(spec, rank);

  netmodel::ExchangeShape shape;
  shape.ranks = spec.nranks();
  shape.neighbors = int(st.gs_contacts.size());
  long long total = 0;
  for (const auto& [partner, ids] : st.gs_contacts) total += ids;
  shape.pairwise_bytes = std::llround(bytes_per_contact * double(total));

  // Distinct boundary ids of the block: whole point lattice minus the
  // interior once each shared plane is peeled off its axis.
  const long long pts[3] = {1LL * part.nelx() * (spec.n - 1) + 1,
                            1LL * part.nely() * (spec.n - 1) + 1,
                            1LL * part.nelz() * (spec.n - 1) + 1};
  long long inner = 1, whole = 1;
  for (int a = 0; a < 3; ++a) {
    const int planes = (st.face_partner[2 * a] >= 0 ? 1 : 0) +
                       (st.face_partner[2 * a + 1] >= 0 ? 1 : 0);
    whole *= pts[a];
    inner *= std::max(0LL, pts[a] - planes);
  }
  shape.crystal_records = (whole - inner) / 2;  // min-rank ownership ~ half
  shape.record_bytes = sizeof(long long) + sizeof(double);
  shape.big_vector_bytes =
      mesh::total_gll_points(spec) * static_cast<long long>(sizeof(double));
  return shape;
}

}  // namespace cmtbone::trace
