#pragma once
// Trace extrapolation: synthesize an at-scale trace from a small recording.
//
// The paper's co-design loop needs behavior at ranks counts nobody can run
// ("fast and scalable Behavioral Emulation ... up to millions of cores",
// §III-C). A small recorded run (8-16 ranks of the mini-app) carries the
// machine-specific numbers — compute gaps between exchanges, payload per
// contact point, the per-step collective sequence — while the mesh and
// gather-scatter structural model says exactly which partners exist and how
// many interface points they share at any rank count. This module marries
// the two: extract_step_model() distils the recording into a per-step
// template, and extrapolate() re-expands that template at an arbitrary
// processor grid into a causally consistent Trace that trace::replay can
// re-time under any LogGP machine.
//
// Extraction is structural, not a copy: the steady-state step is located by
// suffix periodicity (which drops gs_setup handshakes and warm-up), p2p
// events are classified by tag into face-exchange rounds (tags 64..69, one
// per face direction) and gather-scatter rounds (everything else, one
// merged message per partner), and each round's payload is normalized to
// bytes per structural contact point so it re-scales exactly with the
// partition geometry.

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "mesh/partition.hpp"
#include "netmodel/loggp.hpp"
#include "trace/trace.hpp"

namespace cmtbone::trace {

/// One phase of the steady-state step template.
struct Phase {
  enum class Kind { kFaceRound, kGsRound, kCollective };
  Kind kind = Kind::kCollective;

  /// Compute gaps (seconds on the recording machine, per base-rank element
  /// count): before the phase's first send, and between the sends and the
  /// first receive completion (overlapped compute lives in the latter).
  double gap_send = 0.0;
  double gap_recv = 0.0;

  /// Payload intensity, bytes per structural contact point — per interface
  /// GLL face point for face rounds, per shared global id for gs rounds.
  double bytes_per_contact = 0.0;

  /// kCollective only: recorded operation and payload (scale-invariant;
  /// the replayer charges the P-dependent part analytically).
  std::string collective;
  long long collective_bytes = 0;
};

/// The distilled per-step communication template of a recorded run.
struct StepModel {
  mesh::BoxSpec base;          // geometry of the recording
  double base_elems = 0.0;     // per-rank elements of the reference rank
  std::vector<Phase> phases;   // one steady step, in order
  double step_seconds = 0.0;   // recorded wall time of that step (diagnostic)
};

/// Structural exchange partners of one rank at scale `spec`.
struct ExchangeStructure {
  /// Per face direction (mesh face numbering: axis = d/2, side = d%2):
  /// partner rank (-1 when none: physical boundary or self) and GLL face
  /// points on the shared plane.
  std::array<int, 6> face_partner{};
  std::array<long long, 6> face_contacts{};
  /// Pairwise gather-scatter partners, ascending rank, with the number of
  /// global ids shared with each (the gs handle's per-neighbor entry
  /// count — edge/corner ids appear once per sharing partner).
  std::vector<std::pair<int, long long>> gs_contacts;
};
ExchangeStructure exchange_structure(const mesh::BoxSpec& spec, int rank);

/// Distil the steady-state step template from a recorded trace. The final
/// step is located per rank by suffix periodicity of the event signature
/// sequence (smallest period that repeats twice and contains a collective);
/// phase gaps and intensities are averaged across ranks when every rank
/// exhibits the same phase structure (a homogeneous periodic run does),
/// otherwise rank 0's template is used. Throws std::runtime_error when no
/// steady period exists (too few steps, or no collectives recorded — run
/// the recording in CFL mode).
StepModel extract_step_model(const Trace& trace, const mesh::BoxSpec& base);

/// Weak-scaled problem spec at `target_ranks`: the processor grid grows to
/// default_proc_grid(target_ranks) and every rank keeps the recording's
/// per-rank element block, so the per-step template applies unchanged.
mesh::BoxSpec scale_spec(const mesh::BoxSpec& base, int target_ranks);

/// Synthesize a causally consistent `steps`-step trace at spec.nranks()
/// ranks from the template: per rank, each phase re-expands against that
/// rank's live exchange_structure() (face sends/recvs per direction with
/// the face-exchange tag pairing, one merged gs message per partner in
/// ascending order, collectives in lockstep), with compute gaps scaled by
/// the rank's element count relative to the recording. Deterministic:
/// identical inputs give a bit-identical trace.
Trace extrapolate(const StepModel& model, const mesh::BoxSpec& spec,
                  int steps);

/// One rank's gs exchange shape at scale `spec` for analytic netmodel
/// predictions beyond replayable rank counts. `bytes_per_contact` supplies
/// the pairwise payload intensity (from the model's gs phases). Crystal
/// records are approximated as half the rank's distinct boundary ids
/// (min-rank ownership splits a torus surface about evenly).
netmodel::ExchangeShape shape_at(const mesh::BoxSpec& spec, int rank,
                                 double bytes_per_contact);

}  // namespace cmtbone::trace
