#pragma once
// Trace replay: behavioral emulation of a recorded run on a notional
// machine.
//
// Given a Trace recorded on the live fabric and a LogGP machine model, the
// replayer re-executes the event sequence in virtual time: compute gaps
// between events scale with a node-speed factor, each message costs
// overhead at the sender and arrives after latency + bytes/bandwidth, a
// receive blocks until its matching message arrives, and collectives
// synchronize all ranks and charge an analytic cost. The result predicts
// the run's makespan on the modeled machine — the fast architecture
// design-space exploration of the paper's §III-C, in the spirit of
// SST-style co-design simulation (§II).

#include <string>
#include <vector>

#include "netmodel/loggp.hpp"
#include "trace/trace.hpp"

namespace cmtbone::trace {

struct ReplayConfig {
  netmodel::LogGPParams machine;
  /// Virtual-node speed relative to the recording machine: compute gaps are
  /// multiplied by this (0.5 = twice as fast a node).
  double compute_scale = 1.0;
};

struct ReplayResult {
  double makespan = 0.0;               // predicted wall time
  std::vector<double> rank_finish;     // per-rank completion time
  double total_compute = 0.0;          // summed scaled compute gaps
  double total_comm = 0.0;             // summed send/recv/collective costs
  double total_blocked = 0.0;          // time spent stalled on unmatched recvs
  std::size_t messages = 0;
  long long bytes = 0;
};

/// Replay `trace` on the modeled machine. Throws std::runtime_error if the
/// trace is causally inconsistent (a receive whose message is never sent,
/// mismatched collective sequences — including a rank finishing before a
/// collective or ranks naming different collectives at one rendezvous).
/// An empty trace replays to an all-zero result.
///
/// Limitation: collectives are modeled as world-communicator rendezvous;
/// traces from jobs that run collectives on split communicators are not
/// replayable (the mini-apps here only use world collectives).
ReplayResult replay(const Trace& trace, const ReplayConfig& config);

/// Analytic cost charged for one whole-communicator collective during
/// replay: binomial sweeps for the tree collectives, serialized per-partner
/// overhead for the all-to-alls, a P-1 hop chain for MPI_Scan, and one
/// binomial sweep for anything unrecognized. Exposed so the cost formulas
/// can be pinned by unit tests.
double collective_cost(const std::string& name, long long bytes, int nranks,
                       const netmodel::LogGPParams& machine);

}  // namespace cmtbone::trace
