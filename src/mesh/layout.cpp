#include "mesh/layout.hpp"

#include <algorithm>
#include <stdexcept>

#include "mesh/faces.hpp"

namespace cmtbone::mesh {

ElementLayout ElementLayout::block(const BoxSpec& spec, int rank) {
  std::vector<int> owner(std::size_t(spec.total_elements()), 0);
  for (int cz = 0; cz < spec.pz; ++cz) {
    for (int cy = 0; cy < spec.py; ++cy) {
      for (int cx = 0; cx < spec.px; ++cx) {
        const int r = Partition::rank_of(spec, cx, cy, cz);
        Partition part(spec, r);
        for (int gz = part.z0(); gz < part.z1(); ++gz) {
          for (int gy = part.y0(); gy < part.y1(); ++gy) {
            for (int gx = part.x0(); gx < part.x1(); ++gx) {
              owner[std::size_t(gx + 1LL * spec.ex * (gy + 1LL * spec.ey * gz))] = r;
            }
          }
        }
      }
    }
  }
  return ElementLayout(spec, rank, std::move(owner));
}

ElementLayout::ElementLayout(const BoxSpec& spec, int rank,
                             std::vector<int> owner)
    : spec_(spec), rank_(rank), owner_(std::move(owner)) {
  if (static_cast<long long>(owner_.size()) != spec_.total_elements()) {
    throw std::invalid_argument(
        "ElementLayout: owner map size does not match the element grid");
  }
  if (rank_ < 0 || rank_ >= spec_.nranks()) {
    throw std::invalid_argument("ElementLayout: rank out of range");
  }
  for (int r : owner_) {
    if (r < 0 || r >= spec_.nranks()) {
      throw std::invalid_argument("ElementLayout: owner rank out of range");
    }
  }
  // Ascending-gid local order: iterating the owner map in gid order IS the
  // invariant (see the header) — no sort needed.
  for (std::size_t g = 0; g < owner_.size(); ++g) {
    if (owner_[g] == rank_) owned_.push_back(static_cast<long long>(g));
  }
}

int ElementLayout::local_of_gid(long long g) const {
  auto it = std::lower_bound(owned_.begin(), owned_.end(), g);
  if (it == owned_.end() || *it != g) return -1;
  return int(it - owned_.begin());
}

bool ElementLayout::element_touches_remote(int e) const {
  auto g = global_coords(e);
  const std::array<int, 3> extent = {spec_.ex, spec_.ey, spec_.ez};
  for (int f = 0; f < kFacesPerElement; ++f) {
    std::array<int, 3> ng = g;
    const int ax = face_axis(f);
    ng[ax] += face_side(f) == 0 ? -1 : 1;
    if (ng[ax] < 0 || ng[ax] >= extent[ax]) {
      if (!spec_.periodic) continue;  // physical boundary mirrors locally
      ng[ax] = (ng[ax] + extent[ax]) % extent[ax];
    }
    if (owner_of(ng[0], ng[1], ng[2]) != rank_) return true;
  }
  return false;
}

ElementClasses classify_interior_boundary(const ElementLayout& layout) {
  ElementClasses classes;
  for (int e = 0; e < layout.nel(); ++e) {
    if (layout.element_touches_remote(e)) {
      classes.boundary.push_back(e);
    } else {
      classes.interior.push_back(e);
    }
  }
  return classes;
}

}  // namespace cmtbone::mesh
