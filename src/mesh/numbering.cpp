#include "mesh/numbering.hpp"

namespace cmtbone::mesh {

namespace {
// Points per direction of the global (conforming) GLL grid. Elements share
// their boundary points, so each element contributes n-1 new layers; a
// non-periodic box keeps the final face, a periodic one wraps it.
long long grid_extent(int elements, int n, bool periodic) {
  return 1LL * elements * (n - 1) + (periodic ? 0 : 1);
}
}  // namespace

long long total_gll_points(const BoxSpec& spec) {
  return grid_extent(spec.ex, spec.n, spec.periodic) *
         grid_extent(spec.ey, spec.n, spec.periodic) *
         grid_extent(spec.ez, spec.n, spec.periodic);
}

namespace {
// Shared body: `Mesh` provides spec(), nel(), global_coords(e).
template <class Mesh>
std::vector<long long> gll_ids_impl(const Mesh& part) {
  const BoxSpec& spec = part.spec();
  const int n = spec.n;
  const long long gx_extent = grid_extent(spec.ex, n, spec.periodic);
  const long long gy_extent = grid_extent(spec.ey, n, spec.periodic);
  const long long gz_extent = grid_extent(spec.ez, n, spec.periodic);
  (void)gz_extent;

  std::vector<long long> ids(std::size_t(n) * n * n * part.nel());
  std::size_t idx = 0;
  for (int e = 0; e < part.nel(); ++e) {
    auto [egx, egy, egz] = part.global_coords(e);
    for (int k = 0; k < n; ++k) {
      long long pz = 1LL * egz * (n - 1) + k;
      if (spec.periodic) pz %= 1LL * spec.ez * (n - 1);
      for (int j = 0; j < n; ++j) {
        long long py = 1LL * egy * (n - 1) + j;
        if (spec.periodic) py %= 1LL * spec.ey * (n - 1);
        for (int i = 0; i < n; ++i) {
          long long px = 1LL * egx * (n - 1) + i;
          if (spec.periodic) px %= 1LL * spec.ex * (n - 1);
          ids[idx++] = px + gx_extent * (py + gy_extent * pz);
        }
      }
    }
  }
  return ids;
}
}  // namespace

std::vector<long long> global_gll_ids(const Partition& part) {
  return gll_ids_impl(part);
}

std::vector<long long> global_gll_ids(const ElementLayout& layout) {
  return gll_ids_impl(layout);
}

std::vector<long long> global_gll_keys(const ElementLayout& layout) {
  const int n = layout.spec().n;
  const std::size_t epts = std::size_t(n) * n * n;
  std::vector<long long> keys(epts * layout.nel());
  std::size_t idx = 0;
  for (int e = 0; e < layout.nel(); ++e) {
    const long long base = layout.gid_of(e) * (long long)(epts);
    for (std::size_t p = 0; p < epts; ++p) keys[idx++] = base + (long long)(p);
  }
  return keys;
}

}  // namespace cmtbone::mesh
