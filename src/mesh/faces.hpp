#pragma once
// Element face conventions and the full2face / face2full maps.
//
// full2face_cmt is one of CMT-bone's key kernels (paper §IV): it "creates an
// array of surface data, that needs to be transferred to the neighbors, from
// the volume data for each element".
//
// Face numbering: face = 2*axis + side, side 0 = low coordinate.
//   f0: i = 0     f1: i = n-1    (x faces)
//   f2: j = 0     f3: j = n-1    (y faces)
//   f4: k = 0     f5: k = n-1    (z faces)
// A face holds n*n points indexed (a,b) = the two transverse volume indices
// in ascending axis order: x faces -> (j,k), y faces -> (i,k), z -> (i,j).
// Adjacent axis-aligned elements see coincident (a,b), so no orientation
// permutation is needed on a structured box mesh.
//
// Face-array layout: faces[a + n*(b + n*(f + 6*e))].

#include <cstddef>

namespace cmtbone::mesh {

inline constexpr int kFacesPerElement = 6;

inline int face_axis(int f) { return f / 2; }
inline int face_side(int f) { return f % 2; }
inline int opposite_face(int f) { return f ^ 1; }

/// Volume index (within one element) of face point (a,b) of face f.
inline std::size_t face_point_volume_index(int f, int a, int b, int n) {
  const int edge = (face_side(f) == 0) ? 0 : n - 1;
  switch (face_axis(f)) {
    case 0: return std::size_t(edge) + std::size_t(n) * (a + std::size_t(n) * b);
    case 1: return std::size_t(a) + std::size_t(n) * (edge + std::size_t(n) * b);
    default: return std::size_t(a) + std::size_t(n) * (b + std::size_t(n) * edge);
  }
}

/// Offset of face f of element e in a face array.
inline std::size_t face_offset(int f, int e, int n) {
  return std::size_t(n) * n * (f + std::size_t(kFacesPerElement) * e);
}

/// Extract all element faces from volume data: u is (n,n,n,nel), faces is
/// (n,n,6,nel). This is full2face_cmt.
void full2face(const double* u, double* faces, int n, int nel);

/// Scatter-add face data back into the volume (the surface-lift access
/// pattern): u(face point) += faces(face point) for every face.
void face2full_add(const double* faces, double* u, int n, int nel);

/// Bytes of one field's face array.
inline std::size_t face_array_size(int n, int nel) {
  return std::size_t(n) * n * kFacesPerElement * nel;
}

}  // namespace cmtbone::mesh
