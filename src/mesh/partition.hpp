#pragma once
// Structured box mesh of hexahedral elements and its Cartesian partition
// onto a processor grid.
//
// Reproduces the domain decomposition of the paper's Fig. 3 and the Fig. 7
// setup: a global element grid (Ex,Ey,Ez) is split across a processor grid
// (Px,Py,Pz); each rank owns a contiguous block of elements ("local element
// distribution"). Non-divisible extents are balanced: the first
// (extent mod procs) ranks along a direction get one extra layer.

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmtbone::mesh {

/// Global problem geometry (identical on every rank).
struct BoxSpec {
  int n = 0;                 // GLL points per direction per element
  int ex = 0, ey = 0, ez = 0;  // global element grid
  int px = 0, py = 0, pz = 0;  // processor grid
  bool periodic = true;        // periodic box (the mini-app default)

  int nranks() const { return px * py * pz; }
  long long total_elements() const { return 1LL * ex * ey * ez; }

  void validate() const;

  /// Pick a near-cubic processor grid for `nranks` that divides nothing in
  /// particular — factorization into (px >= py >= pz) closest to a cube.
  static std::array<int, 3> default_proc_grid(int nranks);
};

/// One rank's slice of the box.
class Partition {
 public:
  Partition(const BoxSpec& spec, int rank);

  const BoxSpec& spec() const { return spec_; }
  int rank() const { return rank_; }

  // Processor coordinates (cx fastest in rank ordering).
  int cx() const { return cx_; }
  int cy() const { return cy_; }
  int cz() const { return cz_; }
  static int rank_of(const BoxSpec& spec, int cx, int cy, int cz) {
    return cx + spec.px * (cy + spec.py * cz);
  }

  // Owned global element ranges [x0, x1) etc.
  int x0() const { return x0_; }
  int x1() const { return x1_; }
  int y0() const { return y0_; }
  int y1() const { return y1_; }
  int z0() const { return z0_; }
  int z1() const { return z1_; }

  int nelx() const { return x1_ - x0_; }
  int nely() const { return y1_ - y0_; }
  int nelz() const { return z1_ - z0_; }
  int nel() const { return nelx() * nely() * nelz(); }

  /// Local index (lexicographic, x fastest) of owned global element.
  int local_index(int gx, int gy, int gz) const;
  /// Global coordinates of local element `e`.
  std::array<int, 3> global_coords(int e) const;

  /// Rank owning global element (gx,gy,gz); coordinates must be in range.
  int owner_of(int gx, int gy, int gz) const;

  /// Neighbor rank in direction (dx,dy,dz) in {-1,0,1}^3 on the processor
  /// grid, honoring periodicity. Returns -1 for a physical boundary in a
  /// non-periodic box.
  int neighbor_rank(int dx, int dy, int dz) const;

  /// True when any face of local element `e` pairs with an element on a
  /// remote rank (including periodic wrap). Physical-boundary faces mirror
  /// locally and do not count.
  bool element_touches_remote(int e) const;

 private:
  static void split_range(int extent, int procs, int coord, int* lo, int* hi);

  BoxSpec spec_;
  int rank_;
  int cx_, cy_, cz_;
  int x0_, x1_, y0_, y1_, z0_, z1_;
};

/// Interior/boundary split of a rank's elements for compute–communication
/// overlap: an element is `boundary` when at least one of its six faces
/// pairs with an element on another rank (its surface term needs in-flight
/// halo data), `interior` otherwise. Both lists are in ascending local
/// order and together cover 0..nel-1 exactly once.
struct ElementClasses {
  std::vector<int> interior;
  std::vector<int> boundary;
};

ElementClasses classify_interior_boundary(const Partition& part);

}  // namespace cmtbone::mesh
