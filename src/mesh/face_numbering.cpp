#include "mesh/face_numbering.hpp"

#include <array>

#include "mesh/faces.hpp"

namespace cmtbone::mesh {

namespace {
// Shared body: `Mesh` provides spec(), nel(), global_coords(e).
template <class Mesh>
std::vector<long long> face_gids_impl(const Mesh& part) {
  const BoxSpec& spec = part.spec();
  const int n = spec.n;
  const std::array<int, 3> extent = {spec.ex, spec.ey, spec.ez};

  // Mesh-face planes per axis: between-element planes wrap periodically,
  // otherwise the two boundary planes are distinct.
  std::array<long long, 3> planes;
  for (int ax = 0; ax < 3; ++ax) {
    planes[ax] = spec.periodic ? extent[ax] : extent[ax] + 1;
  }
  // Transverse element-grid extents per axis (ascending order, matching the
  // (a, b) face-point convention in faces.hpp).
  const std::array<std::array<int, 2>, 3> transverse = {{
      {spec.ey, spec.ez},  // x faces vary over (y, z)
      {spec.ex, spec.ez},  // y faces vary over (x, z)
      {spec.ex, spec.ey},  // z faces vary over (x, y)
  }};

  std::array<long long, 3> axis_base;
  long long base = 0;
  for (int ax = 0; ax < 3; ++ax) {
    axis_base[ax] = base;
    base += planes[ax] * transverse[ax][0] * transverse[ax][1] *
            (long long)(n) * n;
  }

  std::vector<long long> ids(face_array_size(n, part.nel()));
  for (int e = 0; e < part.nel(); ++e) {
    auto g = part.global_coords(e);
    for (int f = 0; f < kFacesPerElement; ++f) {
      const int ax = face_axis(f);
      long long plane = g[ax] + face_side(f);
      if (spec.periodic) plane %= extent[ax];
      const std::array<int, 2> t = {
          ax == 0 ? g[1] : g[0],
          ax == 2 ? g[1] : g[2],
      };
      long long face_linear =
          plane + planes[ax] * (t[0] + (long long)(transverse[ax][0]) * t[1]);
      long long point_base =
          axis_base[ax] + face_linear * (long long)(n) * n;
      for (int b = 0; b < n; ++b) {
        for (int a = 0; a < n; ++a) {
          ids[face_offset(f, e, n) + a + std::size_t(n) * b] =
              point_base + a + (long long)(n) * b;
        }
      }
    }
  }
  return ids;
}
}  // namespace

std::vector<long long> face_point_gids(const Partition& part) {
  return face_gids_impl(part);
}

std::vector<long long> face_point_gids(const ElementLayout& layout) {
  return face_gids_impl(layout);
}

std::vector<long long> face_point_keys(const ElementLayout& layout) {
  const int n = layout.spec().n;
  const std::size_t fpts = std::size_t(n) * n;
  std::vector<long long> keys(face_array_size(n, layout.nel()));
  for (int e = 0; e < layout.nel(); ++e) {
    const long long gid = layout.gid_of(e);
    for (int f = 0; f < kFacesPerElement; ++f) {
      const long long base = (gid * kFacesPerElement + f) * (long long)(fpts);
      long long* dst = keys.data() + face_offset(f, e, n);
      for (std::size_t p = 0; p < fpts; ++p) dst[p] = base + (long long)(p);
    }
  }
  return keys;
}

}  // namespace cmtbone::mesh
