#pragma once
// Per-axis coordinate maps: the physical geometry of the structured box.
//
// The seed mesh was the unit cube split uniformly — every element had extents
// (1/ex, 1/ey, 1/ez). The scenario pack generalizes this with per-axis 1-D
// coordinate maps: each axis carries a physical length and a monotone map
// from layer index to breakpoint, so the box can be stretched (geometric
// ratio between neighboring layers), boundary-clustered (tanh), or given a
// high aspect ratio (per-axis lengths). Element (gx,gy,gz) then has extents
// (wx[gx], wy[gy], wz[gz]) — the per-element metric the SEM geometric
// factors (volume scale 2/h, surface lift, quadrature Jacobian, CFL spacing)
// consume in core::Driver.
//
// The topology (element adjacency, face pairing, rank partition) is
// untouched: coordinate maps change *where* the elements sit, never *who*
// talks to whom. What they stress is everything that assumed a single
// per-axis h — notably the CFL dt (which must follow the smallest element)
// and the per-element lift/scale factors.

#include <string>
#include <vector>

namespace cmtbone::mesh {

enum class AxisMapKind {
  /// Equal widths length/count — the historical unit-box behavior when
  /// length == 1.
  kUniform,
  /// Geometric stretching: neighboring layer widths have ratio `param`
  /// (> 0, != 1); widths grow toward the high end for param > 1. The
  /// classic boundary-layer / far-field grading.
  kGeometric,
  /// Symmetric tanh clustering with strength `param` > 0: layers crowd
  /// toward both ends of the axis (breakpoints x_i follow a scaled tanh of
  /// the uniform fractions). param -> 0 degenerates to uniform.
  kTanh,
};

const char* axis_map_name(AxisMapKind kind);

/// One axis of the box geometry: a physical extent plus a monotone
/// layer-index -> coordinate map. Every rank evaluates the same closed-form
/// map, so the geometry is replicated-deterministic by construction.
struct AxisMap {
  AxisMapKind kind = AxisMapKind::kUniform;
  double param = 1.0;   // ratio (geometric) or clustering strength (tanh)
  double length = 1.0;  // physical extent of the axis

  bool uniform() const { return kind == AxisMapKind::kUniform; }
};

/// `count + 1` strictly ascending breakpoints from 0 to `length` (the last
/// one exactly `length`). Throws std::invalid_argument on a non-positive
/// count/length or an out-of-range map parameter.
std::vector<double> axis_breakpoints(const AxisMap& map, int count);

/// The `count` per-layer widths (adjacent breakpoint differences, all
/// positive). For kUniform every entry is exactly length / count.
std::vector<double> axis_widths(const AxisMap& map, int count);

/// Smallest layer width (the CFL-limiting extent along this axis).
double min_axis_width(const AxisMap& map, int count);

}  // namespace cmtbone::mesh
