#pragma once
// Global numbering of element *face points* for gather-scatter-based
// nearest-neighbor exchange.
//
// Nek5000 (and hence CMT-nek) drives its DG surface exchange through the
// gather-scatter library: every face point of every element gets a global
// id shared by exactly the one coincident face point of the neighboring
// element (unlike the volume GLL numbering, where an edge/corner id can
// have up to eight copies). A gs_op(add) over these ids then yields
// mine + neighbor at every interior face point.
//
// Ids are built from the global grid of mesh faces: an x-face plane sits
// between elements (gx-1) and gx, so plane index runs over [0, ex) for a
// periodic box ([0, ex] otherwise), and similarly for y and z. The id packs
// (axis, plane, transverse element coords, point-in-face) uniquely; the two
// elements adjacent to a face compute identical ids with identical (a, b)
// orientation because the mesh is a structured box.

#include <vector>

#include "mesh/layout.hpp"
#include "mesh/partition.hpp"

namespace cmtbone::mesh {

/// One id per local face slot, in face-array layout (a, b, face, element):
/// id[a + n*(b + n*(f + 6*e))]. Interior (and periodic-wrap) face points
/// share their id with exactly one other slot — the coincident point of the
/// neighbor element, possibly on another rank. Physical-boundary points
/// (non-periodic box) hold unique ids.
std::vector<long long> face_point_gids(const Partition& part);

/// Same numbering over an arbitrary element layout (identical to the
/// Partition form for the block layout — local element order coincides).
std::vector<long long> face_point_gids(const ElementLayout& layout);

/// Canonical per-slot reduction keys for ordered gather-scatter over face
/// arrays: key = (gid(element)*6 + face)*n^2 + point. The two copies of an
/// interior face id always come from distinct (element, face) slots — even
/// for the ex==1 self-periodic wrap, where one element's two opposite faces
/// pair with each other — so the keys order every id's copies identically
/// on all ranks, independent of element ownership.
std::vector<long long> face_point_keys(const ElementLayout& layout);

}  // namespace cmtbone::mesh
