#pragma once
// Nearest-neighbor surface-data exchange for the DG numerical-flux term.
//
// The paper's CMT-bone evaluates the numerical flux "on the surface of the
// elements which involves surface data exchange between nearest neighbors"
// (§IV). This class builds the exchange plan once (which faces are interior
// copies, which cross a partition boundary and to whom) and then moves any
// number of fields per call with Isend/Irecv/Waitall — the message pattern
// the paper's Figs. 8-10 profile.

#include <vector>

#include "comm/comm.hpp"
#include "mesh/faces.hpp"
#include "mesh/layout.hpp"
#include "mesh/partition.hpp"

namespace cmtbone::mesh {

class FaceExchange {
 public:
  FaceExchange(comm::Comm& comm, const Partition& part);

  /// Exchange plan over an arbitrary element layout (the dynamic load
  /// balancer's relayouts): one plan per (face direction, partner rank);
  /// sender packs its plane in ascending own-gid order and the receiver
  /// unpacks in ascending neighbor-gid order, which enumerate the paired
  /// faces identically on both sides. For the block layout this reproduces
  /// the Partition plan exactly (ascending local order is ascending gid).
  FaceExchange(comm::Comm& comm, const ElementLayout& layout);

  /// Withdraws any receives still posted by an interrupted begin()/finish()
  /// pair (chaos abort, peer failure), so no late delivery writes into the
  /// persistent recv buffers after they are freed.
  ~FaceExchange();
  FaceExchange(const FaceExchange&) = delete;
  FaceExchange& operator=(const FaceExchange&) = delete;

  /// Fill `nbrfaces` with, for every (element, face), the face values of the
  /// geometric neighbor element. Both arrays hold `nfields` stacked face
  /// arrays of face_array_size(n, nel) doubles each. Faces on a physical
  /// (non-periodic) boundary receive the element's own face values.
  /// Equivalent to begin() immediately followed by finish().
  void exchange(const double* myfaces, double* nbrfaces, int nfields);

  /// Split-phase half of exchange(): post all receives, pack and send every
  /// remote plane, and perform the local (same-rank and physical-boundary)
  /// copies into `nbrfaces`, then return with the remote messages still in
  /// flight. Faces of interior elements — and locally-paired faces of
  /// boundary elements — are valid in `nbrfaces` as soon as begin() returns;
  /// remotely-paired faces only after finish(). `myfaces` is fully packed
  /// before returning and may be reused; `nbrfaces` must stay alive until
  /// finish(). At most one exchange may be in flight per FaceExchange.
  void begin(const double* myfaces, double* nbrfaces, int nfields);

  /// Complete the exchange started by begin(): wait for the remote planes
  /// and unpack them into the `nbrfaces` passed to begin(). No-op when no
  /// exchange is in flight.
  void finish();

  /// True between begin() and the matching finish().
  bool in_flight() const { return pending_nbrfaces_ != nullptr; }

  /// Payload bytes this rank sends per exchange call.
  long long send_bytes_per_exchange(int nfields) const;

  /// Number of distinct remote partners (<= 6 on a structured partition).
  int remote_partner_count() const;

  /// Threads (including the caller) used for the pack/local-copy/unpack
  /// loops. Each (field, face) slot is copied exactly once to a disjoint
  /// destination, so the copies are bit-identical for every value.
  void set_threads(int threads) { threads_ = threads < 1 ? 1 : threads; }

 private:
  // Withdraw posted receives and clear the in-flight state (unwind path).
  void abandon_exchange();

  struct LocalCopy {
    int src_e, src_f;  // read myfaces(src_e, src_f)
    int dst_e, dst_f;  // write nbrfaces(dst_e, dst_f)
  };

  struct DirPlan {
    int dir = -1;      // my face id whose neighbors live on `partner`
    int partner = -1;  // remote rank
    std::vector<int> elems;  // pack order: my elements, ascending local index
    // Unpack order: the same elements sorted by their dir-neighbor's gid —
    // the order the partner packed its (opposite-face) plane in. Identical
    // to `elems` for the block layout.
    std::vector<int> recv_elems;
  };

  comm::Comm* comm_;
  int n_ = 0;
  int nel_ = 0;
  int threads_ = 1;
  std::vector<LocalCopy> local_;
  std::vector<DirPlan> plans_;
  // Send planes are packed straight into byte payloads that are moved into
  // the runtime (comm::Comm::isend_payload), so there is no persistent send
  // buffer; receive buffers persist across steps (resize only ever grows).
  std::vector<std::vector<double>> recvbuf_;  // one per plan

  // Split-phase state between begin() and finish().
  std::vector<comm::Request> recv_reqs_;
  double* pending_nbrfaces_ = nullptr;
  int pending_nfields_ = 0;
};

}  // namespace cmtbone::mesh
