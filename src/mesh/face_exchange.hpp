#pragma once
// Nearest-neighbor surface-data exchange for the DG numerical-flux term.
//
// The paper's CMT-bone evaluates the numerical flux "on the surface of the
// elements which involves surface data exchange between nearest neighbors"
// (§IV). This class builds the exchange plan once (which faces are interior
// copies, which cross a partition boundary and to whom) and then moves any
// number of fields per call with Isend/Irecv/Waitall — the message pattern
// the paper's Figs. 8-10 profile.

#include <vector>

#include "comm/comm.hpp"
#include "mesh/faces.hpp"
#include "mesh/partition.hpp"

namespace cmtbone::mesh {

class FaceExchange {
 public:
  FaceExchange(comm::Comm& comm, const Partition& part);

  /// Fill `nbrfaces` with, for every (element, face), the face values of the
  /// geometric neighbor element. Both arrays hold `nfields` stacked face
  /// arrays of face_array_size(n, nel) doubles each. Faces on a physical
  /// (non-periodic) boundary receive the element's own face values.
  void exchange(const double* myfaces, double* nbrfaces, int nfields);

  /// Payload bytes this rank sends per exchange call.
  long long send_bytes_per_exchange(int nfields) const;

  /// Number of distinct remote partners (<= 6 on a structured partition).
  int remote_partner_count() const;

 private:
  struct LocalCopy {
    int src_e, src_f;  // read myfaces(src_e, src_f)
    int dst_e, dst_f;  // write nbrfaces(dst_e, dst_f)
  };

  struct DirPlan {
    int dir = -1;      // my face id whose neighbors live on `partner`
    int partner = -1;  // remote rank
    std::vector<int> elems;  // plane elements, transverse-lexicographic order
  };

  comm::Comm* comm_;
  int n_ = 0;
  int nel_ = 0;
  std::vector<LocalCopy> local_;
  std::vector<DirPlan> plans_;
  std::vector<std::vector<double>> sendbuf_;  // one per plan
  std::vector<std::vector<double>> recvbuf_;
};

}  // namespace cmtbone::mesh
