#include "mesh/faces.hpp"

namespace cmtbone::mesh {

void full2face(const double* u, double* faces, int n, int nel) {
  const std::size_t elem_stride = std::size_t(n) * n * n;
  for (int e = 0; e < nel; ++e) {
    const double* ue = u + e * elem_stride;
    for (int f = 0; f < kFacesPerElement; ++f) {
      double* fe = faces + face_offset(f, e, n);
      for (int b = 0; b < n; ++b) {
        for (int a = 0; a < n; ++a) {
          fe[a + std::size_t(n) * b] = ue[face_point_volume_index(f, a, b, n)];
        }
      }
    }
  }
}

void face2full_add(const double* faces, double* u, int n, int nel) {
  const std::size_t elem_stride = std::size_t(n) * n * n;
  for (int e = 0; e < nel; ++e) {
    double* ue = u + e * elem_stride;
    for (int f = 0; f < kFacesPerElement; ++f) {
      const double* fe = faces + face_offset(f, e, n);
      for (int b = 0; b < n; ++b) {
        for (int a = 0; a < n; ++a) {
          ue[face_point_volume_index(f, a, b, n)] += fe[a + std::size_t(n) * b];
        }
      }
    }
  }
}

}  // namespace cmtbone::mesh
