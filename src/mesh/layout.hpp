#pragma once
// Arbitrary element-ownership layouts over the structured box mesh.
//
// mesh::Partition is the *static* Cartesian decomposition (contiguous
// blocks). The dynamic load balancer (Zhai et al., PAPERS.md) needs to move
// individual elements between ranks, so ownership becomes an arbitrary map
// gid -> rank replicated on every rank. ElementLayout is that map plus the
// rank's own element list.
//
// Local ordering invariant: a rank's owned elements are kept in ascending
// global-id order, with gid = gx + ex*(gy + ey*gz) (x fastest). For the
// block layout this coincides exactly with Partition's local lexicographic
// ordering, so every consumer generalized from Partition to ElementLayout
// (GLL/face numbering, element classification, FaceExchange) reproduces the
// static-partition behavior bit for bit — the anchor for the balancer's
// "migration changes *where*, never *what*" guarantee.

#include <array>
#include <vector>

#include "mesh/partition.hpp"

namespace cmtbone::mesh {

class ElementLayout {
 public:
  /// The static block layout of Partition — ownership identical to
  /// Partition(spec, r) for every rank r.
  static ElementLayout block(const BoxSpec& spec, int rank);

  /// Arbitrary ownership map: owner[gid] in [0, spec.nranks()) for every
  /// global element. Throws std::invalid_argument on size/range mismatch.
  ElementLayout(const BoxSpec& spec, int rank, std::vector<int> owner);

  const BoxSpec& spec() const { return spec_; }
  int rank() const { return rank_; }
  int nranks() const { return spec_.nranks(); }
  long long total_elements() const { return spec_.total_elements(); }

  /// Elements this rank owns (ascending gid order defines local indices).
  int nel() const { return int(owned_.size()); }
  const std::vector<long long>& owned_gids() const { return owned_; }
  const std::vector<int>& owner() const { return owner_; }

  long long gid(int gx, int gy, int gz) const {
    return gx + 1LL * spec_.ex * (gy + 1LL * spec_.ey * gz);
  }
  std::array<int, 3> coords_of_gid(long long g) const {
    const int gx = int(g % spec_.ex);
    const int gy = int((g / spec_.ex) % spec_.ey);
    const int gz = int(g / (1LL * spec_.ex * spec_.ey));
    return {gx, gy, gz};
  }

  long long gid_of(int e) const { return owned_[e]; }
  std::array<int, 3> global_coords(int e) const {
    return coords_of_gid(owned_[e]);
  }

  /// Local index of a gid, or -1 when this rank does not own it.
  int local_of_gid(long long g) const;
  int local_index(int gx, int gy, int gz) const {
    return local_of_gid(gid(gx, gy, gz));
  }

  int owner_of_gid(long long g) const { return owner_[std::size_t(g)]; }
  int owner_of(int gx, int gy, int gz) const {
    return owner_of_gid(gid(gx, gy, gz));
  }
  bool owns(int gx, int gy, int gz) const {
    return owner_of(gx, gy, gz) == rank_;
  }

  /// True when any face of local element `e` pairs with an element owned by
  /// another rank (including across the periodic wrap). Physical-boundary
  /// faces mirror locally and do not count.
  bool element_touches_remote(int e) const;

  /// Identical ownership everywhere (spec assumed equal).
  bool same_ownership(const ElementLayout& other) const {
    return owner_ == other.owner_;
  }

 private:
  BoxSpec spec_;
  int rank_ = 0;
  std::vector<int> owner_;       // size total_elements(), gid-indexed
  std::vector<long long> owned_; // my gids, ascending
};

/// Interior/boundary split for compute–communication overlap, generalized
/// over an arbitrary layout (see Partition's classify_interior_boundary).
ElementClasses classify_interior_boundary(const ElementLayout& layout);

}  // namespace cmtbone::mesh
