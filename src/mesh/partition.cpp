#include "mesh/partition.hpp"

namespace cmtbone::mesh {

void BoxSpec::validate() const {
  auto fail = [](const std::string& msg) { throw std::invalid_argument("BoxSpec: " + msg); };
  if (n < 2) fail("n must be >= 2");
  if (ex < 1 || ey < 1 || ez < 1) fail("element grid must be positive");
  if (px < 1 || py < 1 || pz < 1) fail("processor grid must be positive");
  if (ex < px || ey < py || ez < pz) {
    fail("each direction needs at least one element per processor");
  }
}

std::array<int, 3> BoxSpec::default_proc_grid(int nranks) {
  // Factor nranks into three near-equal factors: pick the largest factor
  // <= cbrt for pz, then split the remainder near its square root.
  std::array<int, 3> best = {nranks, 1, 1};
  for (int a = 1; a * a * a <= nranks; ++a) {
    if (nranks % a != 0) continue;
    int rem = nranks / a;
    for (int b = a; b * b <= rem; ++b) {
      if (rem % b != 0) continue;
      best = {rem / b, b, a};  // px >= py >= pz
    }
  }
  return best;
}

void Partition::split_range(int extent, int procs, int coord, int* lo, int* hi) {
  int base = extent / procs;
  int extra = extent % procs;
  // The first `extra` processors get base+1 layers.
  if (coord < extra) {
    *lo = coord * (base + 1);
    *hi = *lo + base + 1;
  } else {
    *lo = extra * (base + 1) + (coord - extra) * base;
    *hi = *lo + base;
  }
}

Partition::Partition(const BoxSpec& spec, int rank) : spec_(spec), rank_(rank) {
  spec_.validate();
  if (rank < 0 || rank >= spec.nranks()) {
    throw std::invalid_argument("Partition: rank out of range");
  }
  cx_ = rank % spec.px;
  cy_ = (rank / spec.px) % spec.py;
  cz_ = rank / (spec.px * spec.py);
  split_range(spec.ex, spec.px, cx_, &x0_, &x1_);
  split_range(spec.ey, spec.py, cy_, &y0_, &y1_);
  split_range(spec.ez, spec.pz, cz_, &z0_, &z1_);
}

int Partition::local_index(int gx, int gy, int gz) const {
  return (gx - x0_) + nelx() * ((gy - y0_) + nely() * (gz - z0_));
}

std::array<int, 3> Partition::global_coords(int e) const {
  int lx = e % nelx();
  int ly = (e / nelx()) % nely();
  int lz = e / (nelx() * nely());
  return {x0_ + lx, y0_ + ly, z0_ + lz};
}

int Partition::owner_of(int gx, int gy, int gz) const {
  auto coord_owner = [](int extent, int procs, int g) {
    int base = extent / procs;
    int extra = extent % procs;
    int boundary = extra * (base + 1);
    if (g < boundary) return g / (base + 1);
    return extra + (g - boundary) / base;
  };
  int ox = coord_owner(spec_.ex, spec_.px, gx);
  int oy = coord_owner(spec_.ey, spec_.py, gy);
  int oz = coord_owner(spec_.ez, spec_.pz, gz);
  return rank_of(spec_, ox, oy, oz);
}

bool Partition::element_touches_remote(int e) const {
  const std::array<int, 3> extent = {spec_.ex, spec_.ey, spec_.ez};
  const std::array<int, 3> lo = {x0_, y0_, z0_};
  const std::array<int, 3> hi = {x1_, y1_, z1_};
  auto g = global_coords(e);
  for (int ax = 0; ax < 3; ++ax) {
    for (int side = -1; side <= 1; side += 2) {
      int ng = g[ax] + side;
      if (ng < 0 || ng >= extent[ax]) {
        if (!spec_.periodic) continue;  // physical boundary mirrors locally
        ng = (ng + extent[ax]) % extent[ax];
      }
      if (ng < lo[ax] || ng >= hi[ax]) return true;
    }
  }
  return false;
}

int Partition::neighbor_rank(int dx, int dy, int dz) const {
  int nx = cx_ + dx, ny = cy_ + dy, nz = cz_ + dz;
  if (spec_.periodic) {
    nx = (nx + spec_.px) % spec_.px;
    ny = (ny + spec_.py) % spec_.py;
    nz = (nz + spec_.pz) % spec_.pz;
  } else if (nx < 0 || nx >= spec_.px || ny < 0 || ny >= spec_.py || nz < 0 ||
             nz >= spec_.pz) {
    return -1;
  }
  return rank_of(spec_, nx, ny, nz);
}

ElementClasses classify_interior_boundary(const Partition& part) {
  ElementClasses cls;
  const int nel = part.nel();
  cls.interior.reserve(nel);
  for (int e = 0; e < nel; ++e) {
    (part.element_touches_remote(e) ? cls.boundary : cls.interior).push_back(e);
  }
  return cls;
}

}  // namespace cmtbone::mesh
