#include "mesh/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cmtbone::mesh {

const char* axis_map_name(AxisMapKind kind) {
  switch (kind) {
    case AxisMapKind::kUniform: return "uniform";
    case AxisMapKind::kGeometric: return "geometric";
    case AxisMapKind::kTanh: return "tanh";
  }
  return "?";
}

std::vector<double> axis_breakpoints(const AxisMap& map, int count) {
  if (count < 1) {
    throw std::invalid_argument("axis_breakpoints: count must be >= 1");
  }
  if (!(map.length > 0.0) || !std::isfinite(map.length)) {
    throw std::invalid_argument("axis_breakpoints: length must be positive");
  }
  std::vector<double> x(std::size_t(count) + 1);
  switch (map.kind) {
    case AxisMapKind::kUniform: {
      const double h = map.length / count;
      for (int i = 0; i <= count; ++i) x[i] = i * h;
      break;
    }
    case AxisMapKind::kGeometric: {
      const double r = map.param;
      if (!(r > 0.0) || !std::isfinite(r)) {
        throw std::invalid_argument(
            "axis_breakpoints: geometric ratio must be positive");
      }
      if (r == 1.0) {
        const double h = map.length / count;
        for (int i = 0; i <= count; ++i) x[i] = i * h;
        break;
      }
      // Widths w_i = w0 * r^i; the partial sums are the breakpoints.
      const double w0 =
          map.length * (1.0 - r) / (1.0 - std::pow(r, double(count)));
      double acc = 0.0;
      x[0] = 0.0;
      for (int i = 0; i < count; ++i) {
        acc += w0 * std::pow(r, double(i));
        x[std::size_t(i) + 1] = acc;
      }
      break;
    }
    case AxisMapKind::kTanh: {
      const double b = map.param;
      if (!(b > 0.0) || !std::isfinite(b)) {
        throw std::invalid_argument(
            "axis_breakpoints: tanh strength must be positive");
      }
      const double denom = std::tanh(b);
      for (int i = 0; i <= count; ++i) {
        const double s = 2.0 * double(i) / double(count) - 1.0;  // [-1, 1]
        x[i] = 0.5 * map.length * (1.0 + std::tanh(b * s) / denom);
      }
      break;
    }
  }
  // Pin the endpoints exactly and insist on strict monotonicity — a map
  // whose rounding ever produced a non-positive width would silently break
  // the CFL bound and the geometric factors downstream.
  x.front() = 0.0;
  x.back() = map.length;
  for (int i = 0; i < count; ++i) {
    if (!(x[std::size_t(i) + 1] > x[i])) {
      throw std::invalid_argument(
          "axis_breakpoints: map produced a non-positive layer width");
    }
  }
  return x;
}

std::vector<double> axis_widths(const AxisMap& map, int count) {
  if (map.uniform()) {
    // Exactly the historical constant — not a breakpoint difference, so the
    // uniform path reproduces the seed geometry bit for bit.
    return std::vector<double>(std::size_t(count), map.length / count);
  }
  const std::vector<double> x = axis_breakpoints(map, count);
  std::vector<double> w(std::size_t(count), 0.0);
  for (int i = 0; i < count; ++i) w[i] = x[std::size_t(i) + 1] - x[i];
  return w;
}

double min_axis_width(const AxisMap& map, int count) {
  const std::vector<double> w = axis_widths(map, count);
  return *std::min_element(w.begin(), w.end());
}

}  // namespace cmtbone::mesh
