#include "mesh/face_exchange.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <map>
#include <numeric>
#include <utility>

#include "parallel/parallel.hpp"
#include "util/bytes.hpp"

namespace cmtbone::mesh {

namespace {
constexpr int kTagBase = 64;  // p2p tags 64..69, one per direction

std::array<int, 3> face_delta(int f) {
  std::array<int, 3> d = {0, 0, 0};
  d[face_axis(f)] = face_side(f) == 0 ? -1 : 1;
  return d;
}
}  // namespace

FaceExchange::FaceExchange(comm::Comm& comm, const Partition& part)
    : FaceExchange(comm, ElementLayout::block(part.spec(), part.rank())) {}

FaceExchange::FaceExchange(comm::Comm& comm, const ElementLayout& layout)
    : comm_(&comm), n_(layout.spec().n), nel_(layout.nel()) {
  const BoxSpec& spec = layout.spec();
  const std::array<int, 3> extent = {spec.ex, spec.ey, spec.ez};

  // One plan per (direction, partner). With arbitrary ownership a plane of
  // faces can pair with several ranks; (dir, partner) keeps each message a
  // single well-ordered stream. std::map gives a deterministic plan order.
  std::map<std::pair<int, int>, DirPlan> plans;
  std::map<std::pair<int, int>, std::vector<long long>> nbr_gids;

  // Local elements ascend by gid (the layout invariant), so appending while
  // scanning e leaves every plan's pack order in ascending own-gid order —
  // for the block layout exactly the transverse-lexicographic plane order
  // the static planner produced.
  for (int e = 0; e < nel_; ++e) {
    auto g = layout.global_coords(e);
    for (int f = 0; f < kFacesPerElement; ++f) {
      auto d = face_delta(f);
      std::array<int, 3> ng = {g[0] + d[0], g[1] + d[1], g[2] + d[2]};
      bool outside_global = false;
      for (int ax = 0; ax < 3; ++ax) {
        if (ng[ax] < 0 || ng[ax] >= extent[ax]) {
          if (spec.periodic) {
            ng[ax] = (ng[ax] + extent[ax]) % extent[ax];
          } else {
            outside_global = true;
          }
        }
      }
      if (outside_global) {
        // Physical boundary: mirror the element's own face.
        local_.push_back({e, f, e, f});
        continue;
      }
      const int owner = layout.owner_of(ng[0], ng[1], ng[2]);
      if (owner == layout.rank()) {
        int ne = layout.local_index(ng[0], ng[1], ng[2]);
        local_.push_back({ne, opposite_face(f), e, f});
      } else {
        DirPlan& plan = plans[{f, owner}];
        plan.dir = f;
        plan.partner = owner;
        plan.elems.push_back(e);
        nbr_gids[{f, owner}].push_back(layout.gid(ng[0], ng[1], ng[2]));
      }
    }
  }

  for (auto& [key, plan] : plans) {
    // Unpack order: the partner packed its plane ascending by *its* gids,
    // which are these elements' neighbor gids — sort by them (unique per
    // entry: distinct elements have distinct same-direction neighbors).
    const std::vector<long long>& gids = nbr_gids[key];
    std::vector<int> order(plan.elems.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return gids[a] < gids[b]; });
    plan.recv_elems.reserve(order.size());
    for (int i : order) plan.recv_elems.push_back(plan.elems[i]);
    plans_.push_back(std::move(plan));
  }
  recvbuf_.resize(plans_.size());
}

void FaceExchange::exchange(const double* myfaces, double* nbrfaces,
                            int nfields) {
  begin(myfaces, nbrfaces, nfields);
  finish();
}

FaceExchange::~FaceExchange() { abandon_exchange(); }

void FaceExchange::abandon_exchange() {
  for (comm::Request& r : recv_reqs_) comm_->cancel(r);
  recv_reqs_.clear();
  pending_nbrfaces_ = nullptr;
  pending_nfields_ = 0;
}

void FaceExchange::begin(const double* myfaces, double* nbrfaces,
                         int nfields) {
  comm::SiteScope site("full2face_cmt.exchange");
  const std::size_t fpts = std::size_t(n_) * n_;
  const std::size_t field_stride = face_array_size(n_, nel_);
  pending_nbrfaces_ = nbrfaces;
  pending_nfields_ = nfields;

  // Post receives first: the payload arriving from partner(d) was sent as
  // their face opposite(dir), which is exactly my `dir` neighbor data.
  // A chaos abort or peer failure can fire from the hooks inside
  // irecv/isend_payload with some receives already posted — withdraw them
  // on the way out so nothing delivers into recvbuf_ after the unwind.
  try {
    recv_reqs_.clear();
    recv_reqs_.reserve(plans_.size());
    for (std::size_t p = 0; p < plans_.size(); ++p) {
      const DirPlan& plan = plans_[p];
      recvbuf_[p].resize(plan.elems.size() * fpts * nfields);
      recv_reqs_.push_back(comm_->irecv(
          std::span<double>(recvbuf_[p]), plan.partner,
          kTagBase + opposite_face(plan.dir)));
    }

    // Pack each outgoing plane directly into the byte payload that becomes
    // the in-flight message — isend_payload moves it into the runtime, so
    // the plane is copied exactly once between `myfaces` and the receiver.
    // The (field, element) slots are packed by the worker pool; every slot
    // lands at its fixed offset regardless of which thread copies it.
    for (const DirPlan& plan : plans_) {
      const std::size_t nelems = plan.elems.size();
      std::vector<std::byte> payload(nelems * fpts * nfields * sizeof(double));
      std::byte* out = payload.data();
      const std::size_t slots = std::size_t(nfields) * nelems;
      parallel::for_elements(
          slots, parallel::default_grain(slots, threads_), threads_,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) {
              const std::size_t fd = s / nelems;
              const int e = plan.elems[s % nelems];
              const double* field = myfaces + fd * field_stride;
              util::copy_bytes(out + s * fpts * sizeof(double),
                               field + face_offset(plan.dir, e, n_),
                               fpts * sizeof(double));
            }
          });
      comm_->isend_payload(std::move(payload), plan.partner,
                           kTagBase + plan.dir);
    }
  } catch (...) {
    abandon_exchange();
    throw;
  }

  // Interior (and physical-boundary mirror) copies happen inside begin() so
  // every locally-paired face is usable while the remote planes fly. Each
  // (element, face) is the destination of exactly one copy, so splitting the
  // flattened (field, copy) list across threads races nothing.
  const std::size_t ncopies = local_.size();
  const std::size_t slots = std::size_t(nfields) * ncopies;
  parallel::for_elements(
      slots, parallel::default_grain(slots, threads_), threads_,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const std::size_t fd = s / ncopies;
          const LocalCopy& c = local_[s % ncopies];
          const double* src_field = myfaces + fd * field_stride;
          double* dst_field = nbrfaces + fd * field_stride;
          util::copy_bytes(dst_field + face_offset(c.dst_f, c.dst_e, n_),
                           src_field + face_offset(c.src_f, c.src_e, n_),
                           fpts * sizeof(double));
        }
      });
}

void FaceExchange::finish() {
  if (!in_flight()) return;
  comm::SiteScope site("full2face_cmt.exchange");
  const std::size_t fpts = std::size_t(n_) * n_;
  const std::size_t field_stride = face_array_size(n_, nel_);
  double* nbrfaces = pending_nbrfaces_;
  const int nfields = pending_nfields_;

  try {
    comm_->waitall(recv_reqs_);
  } catch (...) {
    // waitall withdrew whatever was still posted; clear the in-flight
    // state so the handle is reusable after the job unwinds.
    abandon_exchange();
    throw;
  }

  for (std::size_t p = 0; p < plans_.size(); ++p) {
    const DirPlan& plan = plans_[p];
    const double* in = recvbuf_[p].data();
    const std::size_t nelems = plan.elems.size();
    const std::size_t slots = std::size_t(nfields) * nelems;
    parallel::for_elements(
        slots, parallel::default_grain(slots, threads_), threads_,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t s = lo; s < hi; ++s) {
            const std::size_t fd = s / nelems;
            const int e = plan.recv_elems[s % nelems];
            double* field = nbrfaces + fd * field_stride;
            util::copy_bytes(field + face_offset(plan.dir, e, n_),
                             in + s * fpts, fpts * sizeof(double));
          }
        });
  }

  recv_reqs_.clear();
  pending_nbrfaces_ = nullptr;
  pending_nfields_ = 0;
}

long long FaceExchange::send_bytes_per_exchange(int nfields) const {
  long long bytes = 0;
  for (const DirPlan& plan : plans_) {
    bytes += 1LL * plan.elems.size() * n_ * n_ * nfields * sizeof(double);
  }
  return bytes;
}

int FaceExchange::remote_partner_count() const {
  std::vector<int> partners;
  for (const DirPlan& plan : plans_) partners.push_back(plan.partner);
  std::sort(partners.begin(), partners.end());
  partners.erase(std::unique(partners.begin(), partners.end()), partners.end());
  return int(partners.size());
}

}  // namespace cmtbone::mesh
