#pragma once
// Global numbering of GLL points.
//
// Nek5000 stores spectral-element coefficients redundantly: every element
// keeps its own copy of points on shared faces/edges/corners, and each
// local point carries the *global id* of the grid point it coincides with
// (paper §VI: "each processor is given index sets containing the global ids
// of the elements using gs_setup"). The gather-scatter library then reduces
// over all copies of each id. This module derives those ids for the
// structured box mesh.

#include <vector>

#include "mesh/layout.hpp"
#include "mesh/partition.hpp"

namespace cmtbone::mesh {

/// One global id per local GLL point, in field layout (i,j,k,e), i fastest.
/// Points shared between adjacent elements (and, for a periodic box, across
/// the wrap) receive equal ids. Ids are dense in [0, total_points).
std::vector<long long> global_gll_ids(const Partition& part);

/// Same numbering over an arbitrary element layout. For the block layout
/// this returns exactly global_gll_ids(Partition) — the local element order
/// coincides (see mesh/layout.hpp).
std::vector<long long> global_gll_ids(const ElementLayout& layout);

/// Canonical per-slot reduction keys for ordered gather-scatter: every
/// local GLL slot gets the globally-unique key gid(element)*n^3 + point.
/// Copies of one global id always come from distinct (element, point)
/// slots, so keys order the copies of an id identically on every rank and
/// independently of which rank owns which element — the gather-scatter
/// fold over these keys is layout-invariant bit for bit.
std::vector<long long> global_gll_keys(const ElementLayout& layout);

/// Total distinct global GLL points of the box (the id space size).
long long total_gll_points(const BoxSpec& spec);

}  // namespace cmtbone::mesh
