#pragma once
// cmtbone::chaos — seeded schedule perturbation and fault injection for the
// in-process message-passing runtime.
//
// The comm runtime's matching engine, deadlock detector, and abort paths are
// normally exercised only under whatever interleaving the OS scheduler
// happens to produce. This module turns the test suite into a concurrency
// oracle: a ChaosPolicy (installed via comm::RunOptions) makes the runtime
// insert bounded, seeded delays at operation hooks and hold/reorder message
// deliveries — without ever violating the per-(source, dest, tag) FIFO
// contract — so rare interleavings are explored on purpose and failing
// schedules can be replayed from a single seed.
//
// Reproducibility contract: every injection decision is a pure hash of
// (seed, stable event identity) — the sender's per-rank operation index, or
// a message's (ctx, src, dest, tag, per-stream sequence number) — never of
// wall-clock time or OS scheduling. The engine folds each decision into an
// order-independent digest (commutative sum of hashes), so two runs of the
// same deterministic workload under the same seed produce the same digest
// even though the OS interleaves their threads differently. chaos_stress
// uses that digest as its same-seed-same-schedule check.
//
// Note on MPI fidelity: holding a message of stream (src, dest, tagA) while
// a later (src, dest, tagB) message passes is weaker than MPI's full
// non-overtaking rule when a wildcard-tag receive is posted. Chaos tests
// therefore assert per-(source, dest, tag) order and multiset completeness,
// which every backend in this codebase relies on.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmtbone::chaos {

/// Which deterministic per-rank operation a hook fires for.
enum class Hook : std::uint64_t {
  kSend = 1,      // Comm::send_raw entry (covers collective trees too)
  kRecvPost = 2,  // Comm::post_recv_raw entry
  kWait = 3,      // Comm::wait_raw entry
  kProbe = 4,     // Mailbox::probe entry (blocking probe / recv_vector)
};

/// Tunable injection plan. All randomness is derived from `seed`; a policy
/// with zero probabilities and no forced abort only records the digest.
struct ChaosPolicy {
  /// Master seed; every decision hashes this with the event identity.
  std::uint64_t seed = 1;

  /// Chance that a rank-operation hook injects a delay.
  double delay_probability = 0.0;
  /// Upper bound (inclusive, microseconds) on one injected delay, before
  /// the per-rank slowdown factor is applied.
  int max_delay_us = 50;

  /// Chance that Mailbox::deliver holds a message instead of matching it.
  double hold_probability = 0.0;
  /// Upper bound (inclusive) on how many mailbox events a held message
  /// waits before release; bounds guarantee progress.
  int max_hold_ticks = 8;

  /// Per-global-rank multiplier on injected delay durations (empty = all
  /// 1.0). Models a straggler node.
  std::vector<double> rank_slowdown;

  /// Forced fault: `abort_rank` throws ChaosAbortInjected once its
  /// operation counter reaches `abort_at_op` (< 0 disables). Exercises the
  /// abort/unwind paths at a seed-chosen point in the schedule.
  int abort_rank = -1;
  long long abort_at_op = -1;

  /// Step-boundary kill: `kill_rank` throws ChaosAbortInjected from
  /// ChaosEngine::on_step() the first time it reaches step `kill_step`
  /// (< 0 disables). Unlike abort_at_op this fault is by default ONE-SHOT
  /// across the engine's lifetime, so a recovery re-run under the same
  /// engine rides past the kill point and completes — the fault model of a
  /// node that died once and was replaced.
  int kill_rank = -1;
  long long kill_step = -1;

  /// Repeating kill: with kill_period > 0 the fault re-arms after each
  /// fire at `fired_step + kill_period`, modeling a tenant whose node
  /// keeps dying (the service bench's faulty-tenant scenario). At most
  /// kill_max_count fires ever happen, and each fire requires reaching a
  /// strictly larger step than the previous one — a recovery attempt that
  /// replays rolled-back steps is never re-killed at the same point, so a
  /// sufficiently retried job always makes progress. 0 keeps the
  /// historical one-shot behavior.
  long long kill_period = 0;
  int kill_max_count = 1;

  /// Checkpoint-corruption fault: ChaosEngine::corrupt_checkpoint() answers
  /// true for (corrupt_rank, corrupt_epoch), telling the checkpoint
  /// coordinator to damage that rank's just-written primary file. Verifies
  /// the CRC/buddy/older-epoch fallback chain end to end (< 0 disables).
  int corrupt_rank = -1;
  long long corrupt_epoch = -1;

  /// Seed-derived sweep policy: draws every knob (delay/hold probabilities
  /// and bounds, one straggler rank) from `seed` so a seed sweep explores
  /// different perturbation mixes. Seed 0 injects nothing (digest only).
  static ChaosPolicy for_seed(std::uint64_t seed, int nranks);
};

/// Thrown by the engine when the policy's forced abort triggers; unwinds
/// the faulting rank exactly like a user exception, so every other rank
/// must exit via JobAborted instead of hanging.
struct ChaosAbortInjected : std::runtime_error {
  ChaosAbortInjected(int rank, long long op)
      : std::runtime_error("chaos: forced abort injected at rank " +
                           std::to_string(rank) + ", op " +
                           std::to_string(op)) {}

  /// The step-boundary kill variant (ChaosPolicy::kill_step).
  static ChaosAbortInjected at_step(int rank, long long step) {
    return ChaosAbortInjected("chaos: kill injected at rank " +
                              std::to_string(rank) + ", step " +
                              std::to_string(step));
  }

 private:
  explicit ChaosAbortInjected(const std::string& what)
      : std::runtime_error(what) {}
};

/// One engine per comm::run job. The comm layer calls the hooks; callers
/// read the digest after the run. Thread-safe: each rank owns its counter
/// slot, the digest is a commutative atomic accumulator.
class ChaosEngine {
 public:
  ChaosEngine(ChaosPolicy policy, int nranks);

  const ChaosPolicy& policy() const { return policy_; }
  int nranks() const { return int(ranks_.size()); }

  /// Per-rank operation hook (send / recv-post / wait / probe entry). May
  /// sleep a bounded, seeded amount and may throw ChaosAbortInjected.
  /// Must be called WITHOUT the mailbox mutex held (it can sleep).
  void on_rank_op(int rank, Hook hook);

  /// Step-boundary hook, called by the driver's resilience hook after each
  /// completed step. Throws ChaosAbortInjected when `rank` reaches the
  /// policy's next kill point; one-shot by default, re-arming every
  /// kill_period steps (bounded by kill_max_count) when configured.
  void on_step(int rank, long long step);

  /// Step-boundary kills fired so far (across every attempt sharing this
  /// engine).
  long long kill_fires() const {
    return kill_fires_.load(std::memory_order_relaxed);
  }

  /// Should the checkpoint coordinator corrupt `rank`'s just-written
  /// primary file for `epoch`? Pure decision — the coordinator does the
  /// damage (persistent, not one-shot: a rewrite of the same epoch is
  /// corrupted again, as a bad disk would).
  bool corrupt_checkpoint(int rank, long long epoch) const;

  /// Deliver-side decision for the `seq`-th message of stream
  /// (ctx, src, tag) -> dest: how many mailbox ticks to hold it (0 =
  /// deliver immediately). Pure (no sleeping); safe under the mailbox lock.
  int hold_ticks(int ctx, int src, int dest, int tag, std::uint64_t seq,
                 std::size_t bytes);

  /// Order-independent schedule digest: same workload + same seed => same
  /// value, regardless of OS thread interleaving.
  std::uint64_t digest() const {
    return digest_.load(std::memory_order_relaxed);
  }

 private:
  double slowdown(int rank) const;
  void note(std::uint64_t h) {
    digest_.fetch_add(h | 1, std::memory_order_relaxed);
  }

  ChaosPolicy policy_;
  // One counter per global rank, each written only by that rank's thread;
  // padded so neighboring ranks do not share a cache line.
  struct alignas(64) RankState {
    long long ops = 0;
  };
  std::vector<RankState> ranks_;
  std::atomic<std::uint64_t> digest_{0};
  // Next step eligible to fire the kill fault (-1 = disarmed). Advanced
  // past the firing step on every fire so replayed steps never re-fire.
  std::atomic<long long> kill_next_{-1};
  std::atomic<long long> kill_fires_{0};
};

}  // namespace cmtbone::chaos
