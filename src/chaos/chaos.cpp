#include "chaos/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace cmtbone::chaos {

namespace {

// SplitMix64 finalizer: the bit mixer behind every chaos decision.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix(h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

double to_unit(std::uint64_t h) { return double(h >> 11) * 0x1.0p-53; }

// Domain-separation salts so op decisions, hold decisions, and digest
// contributions never alias.
constexpr std::uint64_t kOpSalt = 0x6f70736c61740001ull;
constexpr std::uint64_t kHoldSalt = 0x686f6c6473616c74ull;

}  // namespace

ChaosPolicy ChaosPolicy::for_seed(std::uint64_t seed, int nranks) {
  ChaosPolicy p;
  p.seed = seed;
  if (seed == 0 || nranks <= 0) return p;  // digest-only policy
  std::uint64_t h = combine(seed, 0x5eed0001ull);
  p.delay_probability = 0.05 + 0.25 * to_unit(h = combine(h, 1));
  p.max_delay_us = 20 + int(combine(h, 2) % 101);  // 20..120 us
  p.hold_probability = 0.05 + 0.35 * to_unit(h = combine(h, 3));
  p.max_hold_ticks = 2 + int(combine(h, 4) % 9);  // 2..10 ticks
  p.rank_slowdown.assign(std::size_t(nranks), 1.0);
  int straggler = int(combine(h, 5) % std::uint64_t(nranks));
  p.rank_slowdown[std::size_t(straggler)] =
      2.0 + 3.0 * to_unit(combine(h, 6));
  return p;
}

ChaosEngine::ChaosEngine(ChaosPolicy policy, int nranks)
    : policy_(std::move(policy)), ranks_(std::size_t(std::max(nranks, 1))) {
  kill_next_.store(policy_.kill_step, std::memory_order_relaxed);
}

double ChaosEngine::slowdown(int rank) const {
  if (rank < 0 || std::size_t(rank) >= policy_.rank_slowdown.size()) {
    return 1.0;
  }
  return std::max(policy_.rank_slowdown[std::size_t(rank)], 0.0);
}

void ChaosEngine::on_rank_op(int rank, Hook hook) {
  if (rank < 0 || std::size_t(rank) >= ranks_.size()) return;
  const long long op = ranks_[std::size_t(rank)].ops++;
  if (rank == policy_.abort_rank && policy_.abort_at_op >= 0 &&
      op >= policy_.abort_at_op) {
    throw ChaosAbortInjected(rank, op);
  }
  std::uint64_t h = combine(policy_.seed, kOpSalt);
  h = combine(h, std::uint64_t(rank));
  h = combine(h, std::uint64_t(hook));
  h = combine(h, std::uint64_t(op));
  note(h);
  if (policy_.delay_probability <= 0.0) return;
  if (to_unit(h) >= policy_.delay_probability) return;
  const int bound = std::max(policy_.max_delay_us, 1);
  const int us = 1 + int(combine(h, 0xde1a4ull) % std::uint64_t(bound));
  const auto dur = std::chrono::microseconds(
      (long long)(double(us) * slowdown(rank)));
  if (dur.count() > 0) std::this_thread::sleep_for(dur);
}

void ChaosEngine::on_step(int rank, long long step) {
  if (rank != policy_.kill_rank || policy_.kill_step < 0) return;
  long long next = kill_next_.load(std::memory_order_acquire);
  if (next < 0 || step < next) return;
  const long long fired = kill_fires_.load(std::memory_order_relaxed);
  const long long bound = std::max(policy_.kill_max_count, 1);
  // Re-arm at a strictly larger step (or disarm at the count bound / in
  // one-shot mode): a recovery attempt replaying steps below the new
  // target rides past its old kill point, so progress is guaranteed. The
  // CAS keeps "exactly one fire per target" even across attempts sharing
  // this engine.
  const long long rearm = (policy_.kill_period > 0 && fired + 1 < bound)
                              ? step + policy_.kill_period
                              : -1;
  if (!kill_next_.compare_exchange_strong(next, rearm,
                                          std::memory_order_acq_rel)) {
    return;
  }
  kill_fires_.fetch_add(1, std::memory_order_relaxed);
  throw ChaosAbortInjected::at_step(rank, step);
}

bool ChaosEngine::corrupt_checkpoint(int rank, long long epoch) const {
  return policy_.corrupt_rank >= 0 && rank == policy_.corrupt_rank &&
         epoch == policy_.corrupt_epoch;
}

int ChaosEngine::hold_ticks(int ctx, int src, int dest, int tag,
                            std::uint64_t seq, std::size_t bytes) {
  std::uint64_t h = combine(policy_.seed, kHoldSalt);
  h = combine(h, (std::uint64_t(std::uint32_t(ctx)) << 32) |
                     std::uint32_t(src));
  h = combine(h, (std::uint64_t(std::uint32_t(dest)) << 32) |
                     std::uint32_t(tag));
  h = combine(h, seq);
  h = combine(h, std::uint64_t(bytes));
  note(h);
  if (policy_.hold_probability <= 0.0) return 0;
  if (to_unit(h) >= policy_.hold_probability) return 0;
  const int bound = std::max(policy_.max_hold_ticks, 1);
  return 1 + int(combine(h, 0x71c5ull) % std::uint64_t(bound));
}

}  // namespace cmtbone::chaos
