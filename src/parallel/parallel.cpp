#include "parallel/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace cmtbone::parallel {

namespace {
int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  if (end == v || parsed < 0 || parsed > 1 << 16) return fallback;
  return int(parsed);
}

int default_worker_count() {
  int override = env_int("CMTBONE_POOL_WORKERS", -1);
  if (override >= 0) return override;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;  // unknown: assume a small machine, stay modest
  // Rank threads participate in their own regions, so budget helpers at
  // hardware_concurrency - 1; keep at least one so threads_per_rank > 1
  // genuinely crosses threads (determinism/TSan coverage) even on one core.
  return std::max(1, int(hw) - 1);
}
}  // namespace

Pool& Pool::global() {
  static Pool pool(default_worker_count());
  return pool;
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  int env = env_int("CMTBONE_THREADS_PER_RANK", 0);
  return env > 0 ? env : 1;
}

Pool::Pool(int workers) {
  threads_.reserve(std::size_t(std::max(0, workers)));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::run_chunks(Region& region) {
  for (;;) {
    const std::size_t c = region.next.fetch_add(1);
    if (c >= region.nchunks) return;
    const std::size_t begin = c * region.grain;
    const std::size_t end = std::min(region.count, begin + region.grain);
    try {
      (*region.fn)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!region.error) region.error = std::current_exception();
      // Stop issuing further chunks; the partial results are about to be
      // discarded by the rethrow on the submitting thread anyway.
      region.next.store(region.nchunks);
    }
  }
}

void Pool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    Region* region = queue_.front();
    if (--region->helpers_wanted <= 0) queue_.pop_front();
    ++region->running;
    lock.unlock();
    run_chunks(*region);
    lock.lock();
    if (--region->running == 0) done_cv_.notify_all();
  }
}

void Pool::for_range(std::size_t count, std::size_t grain, int threads,
                     const RangeFn& fn) {
  if (count == 0) return;
  if (grain == 0) grain = 1;

  Region region;
  region.count = count;
  region.grain = grain;
  region.nchunks = (count + grain - 1) / grain;
  region.fn = &fn;

  // Budget: at most threads-1 helpers, never more than the pool has, and
  // never more helpers than there are chunks beyond the caller's first.
  int helpers = std::min(threads - 1, worker_count());
  if (region.nchunks - 1 < std::size_t(helpers)) {
    helpers = int(region.nchunks - 1);
  }
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      region.helpers_wanted = helpers;
      queue_.push_back(&region);
    }
    if (helpers == 1) {
      work_cv_.notify_one();
    } else {
      work_cv_.notify_all();
    }
  }

  // The submitting thread always participates; with zero helpers this is
  // simply a chunked serial loop.
  run_chunks(region);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Withdraw the region if no worker attached (all chunks already done);
    // after this no new helper can reach it.
    auto it = std::find(queue_.begin(), queue_.end(), &region);
    if (it != queue_.end()) queue_.erase(it);
    done_cv_.wait(lock, [&region] { return region.running == 0; });
    error = region.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace cmtbone::parallel
