#pragma once
// Deterministic intra-rank element parallelism.
//
// The compute side of the mini-app is embarrassingly element-parallel: every
// hot loop (volume flux divergence, surface numerical flux, the Nekbone
// stiffness operator, face pack/unpack) treats elements independently, so
// splitting an element list across threads changes which core executes each
// element but not one floating-point operation within it. That independence
// is the entire determinism argument: results are bit-identical for any
// thread count, any chunk boundaries, and any execution order — the same
// argument PR 2 used to make the overlap path bit-identical to blocking.
//
// Ranks in this reproduction are already std::threads inside one process
// (comm::run), so per-rank pools would multiply threads by ranks and thrash.
// Instead one process-wide Pool (size ~ hardware_concurrency) is shared:
// each rank submits its element-range region and asks for at most
// threads_per_rank - 1 helpers. When every worker is busy serving another
// rank, the submitting rank simply executes all chunks itself — graceful
// degradation under oversubscription, never a deadlock (the caller always
// participates and never waits for a worker to *start*).
//
// Safety under chaos/resilience unwinds: parallel regions are compute-only
// (no comm calls, so no chaos hook ever fires on a pool worker). A region
// that throws stops issuing chunks, drains, and rethrows the first exception
// on the submitting rank thread — from where it unwinds exactly like any
// rank failure. for_range() never returns while a worker can still touch
// the region, so stack-captured state stays valid.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cmtbone::parallel {

/// Shared worker pool. One global() instance serves every rank thread; extra
/// instances exist only for unit tests.
class Pool {
 public:
  /// Spawns `workers` helper threads (0 is valid: every region then runs
  /// entirely on its submitting thread).
  explicit Pool(int workers);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// The process-wide pool, sized max(1, hardware_concurrency - 1) helpers
  /// (rank threads themselves do work too) unless CMTBONE_POOL_WORKERS
  /// overrides it. Constructed on first use.
  static Pool& global();

  int worker_count() const { return int(threads_.size()); }

  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// Run fn(begin, end) over [0, count) in fixed chunks of `grain` indices,
  /// on up to `threads - 1` pool helpers plus the calling thread. Chunk
  /// boundaries depend only on (count, grain) — never on how many helpers
  /// actually show up. Blocks until every chunk completed; rethrows the
  /// first exception thrown by fn. Thread-safe: any number of rank threads
  /// may have regions in flight concurrently.
  void for_range(std::size_t count, std::size_t grain, int threads,
                 const RangeFn& fn);

 private:
  struct Region {
    std::size_t count = 0;
    std::size_t grain = 1;
    std::size_t nchunks = 0;
    std::atomic<std::size_t> next{0};  // next unclaimed chunk
    const RangeFn* fn = nullptr;
    int helpers_wanted = 0;    // guarded by mu_: workers still to attach
    int running = 0;           // guarded by mu_: helpers inside run_chunks
    std::exception_ptr error;  // guarded by mu_: first failure
  };

  void worker_loop();
  void run_chunks(Region& region);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stop
  std::condition_variable done_cv_;  // submitters: region fully drained
  std::deque<Region*> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Resolve a threads-per-rank request: a positive value wins; 0 falls back
/// to the CMTBONE_THREADS_PER_RANK environment variable (how CI runs the
/// whole tier-1 suite threaded without touching every test's Config), and
/// finally to 1 — today's serial behavior, bit for bit.
int resolve_threads(int requested);

/// Chunk size giving each participating thread a few chunks to balance
/// stragglers while keeping per-chunk kernel batches large.
inline std::size_t default_grain(std::size_t count, int threads) {
  const std::size_t parts = std::size_t(threads > 0 ? threads : 1) * 4;
  return count < parts ? 1 : (count + parts - 1) / parts;
}

/// Element-parallel loop: fn(begin, end) tiles [0, count). With threads <= 1
/// this is a direct inline call — no pool, no std::function, no atomics —
/// so threads_per_rank = 1 is exactly the pre-pool code path.
template <class Fn>
void for_elements(std::size_t count, std::size_t grain, int threads, Fn&& fn) {
  if (count == 0) return;
  if (threads <= 1) {
    fn(std::size_t{0}, count);
    return;
  }
  Pool::global().for_range(count, grain, threads, Pool::RangeFn(fn));
}

}  // namespace cmtbone::parallel
