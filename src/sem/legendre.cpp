#include "sem/legendre.hpp"

namespace cmtbone::sem {

double legendre(int n, double x) {
  if (n == 0) return 1.0;
  if (n == 1) return x;
  double pm1 = 1.0, p = x;
  for (int k = 2; k <= n; ++k) {
    double pk = ((2 * k - 1) * x * p - (k - 1) * pm1) / k;
    pm1 = p;
    p = pk;
  }
  return p;
}

LegendreEval legendre_with_derivative(int n, double x) {
  if (n == 0) return {1.0, 0.0};
  double pm1 = 1.0, p = x;
  for (int k = 2; k <= n; ++k) {
    double pk = ((2 * k - 1) * x * p - (k - 1) * pm1) / k;
    pm1 = p;
    p = pk;
  }
  // P'_n via the standard identity; at the endpoints use the closed form to
  // avoid the 0/0 in the identity.
  if (x == 1.0) return {p, 0.5 * n * (n + 1)};
  if (x == -1.0) {
    double sign = (n % 2 == 0) ? -1.0 : 1.0;
    return {p, sign * 0.5 * n * (n + 1)};
  }
  double dp = n * (x * p - pm1) / (x * x - 1.0);
  return {p, dp};
}

}  // namespace cmtbone::sem
