#pragma once
// Legendre polynomial evaluation. Foundation for the Gauss-Lobatto-Legendre
// (GLL) point sets the spectral element method collocates on.

namespace cmtbone::sem {

/// Value of the Legendre polynomial P_n at x (three-term recurrence).
double legendre(int n, double x);

/// Value and first derivative of P_n at x.
struct LegendreEval {
  double value;
  double derivative;
};
LegendreEval legendre_with_derivative(int n, double x);

}  // namespace cmtbone::sem
