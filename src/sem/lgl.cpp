#include "sem/lgl.hpp"

#include <cmath>
#include <stdexcept>

#include "sem/legendre.hpp"

namespace cmtbone::sem {

GllRule gll_rule(int n) {
  if (n < 2) throw std::invalid_argument("gll_rule: need n >= 2");
  GllRule rule;
  rule.n = n;
  rule.nodes.resize(n);
  rule.weights.resize(n);

  const int p = n - 1;  // polynomial degree
  rule.nodes[0] = -1.0;
  rule.nodes[p] = 1.0;

  // Interior nodes: roots of P'_p. Newton on q(x) = P'_p(x), using the
  // derivative identity  q'(x) = (2x P'_p - p(p+1) P_p) / (1 - x^2)
  // (from Legendre's equation). Chebyshev-Lobatto points start close enough
  // that ~5 iterations reach machine precision.
  for (int i = 1; i < p; ++i) {
    double x = -std::cos(M_PI * double(i) / double(p));
    for (int it = 0; it < 50; ++it) {
      LegendreEval e = legendre_with_derivative(p, x);
      double q = e.derivative;
      double dq = (2.0 * x * e.derivative - double(p) * (p + 1) * e.value) /
                  (1.0 - x * x);
      double dx = q / dq;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[i] = x;
  }

  for (int i = 0; i < n; ++i) {
    double lp = legendre(p, rule.nodes[i]);
    rule.weights[i] = 2.0 / (double(p) * double(p + 1) * lp * lp);
  }
  return rule;
}

GllRule gauss_rule(int n) {
  if (n < 1) throw std::invalid_argument("gauss_rule: need n >= 1");
  GllRule rule;
  rule.n = n;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  // Newton on P_n from the Chebyshev asymptotic guess; weights are
  // 2 / ((1 - x^2) P'_n(x)^2).
  for (int i = 0; i < n; ++i) {
    double x = -std::cos(M_PI * (i + 0.75) / (n + 0.5));
    LegendreEval e{};
    for (int it = 0; it < 60; ++it) {
      e = legendre_with_derivative(n, x);
      double dx = e.value / e.derivative;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    e = legendre_with_derivative(n, x);
    rule.nodes[i] = x;
    rule.weights[i] = 2.0 / ((1.0 - x * x) * e.derivative * e.derivative);
  }
  return rule;
}

std::vector<double> barycentric_weights(const std::vector<double>& nodes) {
  const int n = int(nodes.size());
  std::vector<double> w(n, 1.0);
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < n; ++k) {
      if (k != j) w[j] *= (nodes[j] - nodes[k]);
    }
    w[j] = 1.0 / w[j];
  }
  return w;
}

std::vector<double> derivative_matrix(const std::vector<double>& nodes) {
  const int n = int(nodes.size());
  std::vector<double> bw = barycentric_weights(nodes);
  std::vector<double> d(std::size_t(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    double diag = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      double dij = (bw[j] / bw[i]) / (nodes[i] - nodes[j]);
      d[i + std::size_t(n) * j] = dij;
      diag -= dij;  // rows sum to zero: d/dx of a constant vanishes
    }
    d[i + std::size_t(n) * i] = diag;
  }
  return d;
}

std::vector<double> interpolation_matrix(const std::vector<double>& from,
                                         const std::vector<double>& to) {
  const int nf = int(from.size());
  const int nt = int(to.size());
  std::vector<double> bw = barycentric_weights(from);
  std::vector<double> m(std::size_t(nt) * nf, 0.0);
  for (int i = 0; i < nt; ++i) {
    // Barycentric second form; exact hit on a source node short-circuits.
    int hit = -1;
    for (int j = 0; j < nf; ++j) {
      if (to[i] == from[j]) {
        hit = j;
        break;
      }
    }
    if (hit >= 0) {
      m[i + std::size_t(nt) * hit] = 1.0;
      continue;
    }
    double denom = 0.0;
    for (int j = 0; j < nf; ++j) denom += bw[j] / (to[i] - from[j]);
    for (int j = 0; j < nf; ++j) {
      m[i + std::size_t(nt) * j] = (bw[j] / (to[i] - from[j])) / denom;
    }
  }
  return m;
}

}  // namespace cmtbone::sem
