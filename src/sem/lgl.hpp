#pragma once
// Gauss-Lobatto-Legendre point sets, quadrature weights, spectral
// differentiation and interpolation matrices.
//
// CMT-nek discretises each hexahedral element with N GLL points per
// direction; the conserved variables are tensor products of degree-(N-1)
// Lagrange polynomials on those points (paper §III-B). The derivative
// matrix built here is the `D` whose small-matrix products dominate
// CMT-bone's runtime (paper §V).

#include <vector>

namespace cmtbone::sem {

/// GLL nodes and quadrature weights on [-1, 1].
struct GllRule {
  int n = 0;                    // number of points (polynomial degree n-1)
  std::vector<double> nodes;    // ascending, nodes[0] = -1, nodes[n-1] = +1
  std::vector<double> weights;  // positive, sum to 2
};

/// Compute the n-point GLL rule (n >= 2). Nodes are the roots of
/// (1 - x^2) P'_{n-1}(x), found by Newton iteration from Chebyshev-Lobatto
/// initial guesses; weights are 2 / (n (n-1) P_{n-1}(x_i)^2).
GllRule gll_rule(int n);

/// Compute the n-point Gauss-Legendre rule (n >= 1): interior roots of
/// P_n(x), exact for polynomials of degree <= 2n-1. Nek5000 evaluates
/// dealiased nonlinear terms on Gauss (not Lobatto) points, so the
/// fine-mesh mapping of paper §V targets these nodes.
GllRule gauss_rule(int n);

/// Barycentric weights for a node set (used by both differentiation and
/// interpolation matrix construction; numerically robust for GLL nodes).
std::vector<double> barycentric_weights(const std::vector<double>& nodes);

/// Spectral differentiation matrix on `nodes`, column-major:
/// D(i,j) = dL_j/dx (x_i), stored as d[i + n*j].
/// Rows sum to zero (derivative of the constant is zero) by construction.
std::vector<double> derivative_matrix(const std::vector<double>& nodes);

/// Interpolation matrix from `from` nodes to `to` points, column-major
/// (size |to| x |from|): I(i,j) = L_j(to_i). Used for dealiasing, where an
/// element is mapped to a finer quadrature mesh and back (paper §V).
std::vector<double> interpolation_matrix(const std::vector<double>& from,
                                         const std::vector<double>& to);

}  // namespace cmtbone::sem
