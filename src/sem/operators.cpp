#include "sem/operators.hpp"

namespace cmtbone::sem {

Operators Operators::build(int n, FineBasis basis) {
  Operators op;
  op.n = n;
  op.rule = gll_rule(n);
  op.d = derivative_matrix(op.rule.nodes);

  op.dt.resize(op.d.size());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      op.dt[j + std::size_t(n) * i] = op.d[i + std::size_t(n) * j];
    }
  }

  op.m = (3 * n) / 2;
  op.fine_rule =
      basis == FineBasis::kGauss ? gauss_rule(op.m) : gll_rule(op.m);
  op.interp = interpolation_matrix(op.rule.nodes, op.fine_rule.nodes);
  op.interp_t.resize(op.interp.size());
  for (int i = 0; i < op.m; ++i) {
    for (int j = 0; j < n; ++j) {
      op.interp_t[j + std::size_t(n) * i] = op.interp[i + std::size_t(op.m) * j];
    }
  }
  return op;
}

}  // namespace cmtbone::sem
