#pragma once
// Per-order operator bundle: everything a rank needs to apply the spectral
// element kernels for a given N (GLL rule, derivative matrix and its
// transpose, dealiasing interpolation pair).

#include <vector>

#include "sem/lgl.hpp"

namespace cmtbone::sem {

/// Operators for N GLL points per direction. Column-major matrices.
struct Operators {
  int n = 0;  // GLL points per direction

  GllRule rule;              // nodes + quadrature weights
  std::vector<double> d;     // derivative matrix D, n x n
  std::vector<double> dt;    // D transposed (the Fortran kernels use both)

  // Dealiasing pair (paper §V: "an element is first mapped to a finer mesh
  // and later mapped back"). Fine rule has m = 3n/2 points, the standard
  // 3/2-rule for quadratic nonlinearities; Nek evaluates the fine mesh on
  // Gauss (interior) points, which is the default here.
  int m = 0;                   // fine points per direction
  GllRule fine_rule;
  std::vector<double> interp;    // m x n: coarse -> fine
  std::vector<double> interp_t;  // n x m: transpose (fine -> coarse projection)

  enum class FineBasis { kGauss, kGaussLobatto };
  static Operators build(int n, FineBasis basis = FineBasis::kGauss);
};

}  // namespace cmtbone::sem
