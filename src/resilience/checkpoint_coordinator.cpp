#include "resilience/checkpoint_coordinator.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

#include "io/checkpoint.hpp"
#include "prof/timer.hpp"

namespace cmtbone::resilience {

namespace {
// User-tag space for the buddy payload exchange (< kCollectiveTagBase).
constexpr int kTagBuddySize = 0x3d00;
constexpr int kTagBuddyData = 0x3d01;

// Filename components parsed back out of a checkpoint directory entry.
struct ParsedName {
  long long epoch = -1;
  int rank = -1;
  bool buddy = false;
};

// <prefix>.e<epoch>.r<rank>[.buddy].chk -> ParsedName; false on anything
// else (including the .tmp staging files of an in-progress atomic write).
bool parse_name(const std::string& name, const std::string& prefix,
                ParsedName* out) {
  const std::string head = prefix + ".e";
  if (name.rfind(head, 0) != 0) return false;
  std::size_t pos = head.size();
  std::size_t digits = 0;
  long long epoch = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    epoch = epoch * 10 + (name[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0 || name.compare(pos, 2, ".r") != 0) return false;
  pos += 2;
  digits = 0;
  int rank = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    rank = rank * 10 + (name[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0) return false;
  std::string tail = name.substr(pos);
  if (tail == ".chk") {
    *out = {epoch, rank, false};
    return true;
  }
  if (tail == ".buddy.chk") {
    *out = {epoch, rank, true};
    return true;
  }
  return false;
}

// Flip one payload byte in place: the silent-corruption fault the chaos
// policy asks for. Deliberately NOT atomic — bit rot does not rename().
void corrupt_payload_byte(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > long(io::kHeaderBytesV2)) {
      const long at = long(io::kHeaderBytesV2) +
                      (size - long(io::kHeaderBytesV2)) / 2;
      unsigned char byte = 0;
      if (std::fseek(f, at, SEEK_SET) == 0 &&
          std::fread(&byte, 1, 1, f) == 1) {
        byte ^= 0xffu;
        if (std::fseek(f, at, SEEK_SET) == 0) {
          (void)std::fwrite(&byte, 1, 1, f);
        }
      }
    }
  }
  std::fclose(f);
}
}  // namespace

CheckpointCoordinator::CheckpointCoordinator(comm::Comm& comm,
                                             CheckpointOptions options)
    : comm_(&comm), opt_(std::move(options)) {
  if (opt_.directory.empty()) {
    throw std::invalid_argument(
        "CheckpointCoordinator: options.directory must be set");
  }
  if (opt_.keep_epochs < 1) opt_.keep_epochs = 1;
}

std::string CheckpointCoordinator::primary_path(const std::string& directory,
                                                const std::string& prefix,
                                                long long epoch, int rank) {
  char buf[64];
  std::snprintf(buf, sizeof buf, ".e%06lld.r%05d.chk", epoch, rank);
  return directory + "/" + prefix + buf;
}

std::string CheckpointCoordinator::buddy_path(const std::string& directory,
                                              const std::string& prefix,
                                              long long epoch,
                                              int origin_rank) {
  char buf[64];
  std::snprintf(buf, sizeof buf, ".e%06lld.r%05d.buddy.chk", epoch,
                origin_rank);
  return directory + "/" + prefix + buf;
}

long long CheckpointCoordinator::maybe_checkpoint(core::Driver& driver) {
  if (opt_.interval <= 0) return -1;
  if (driver.steps_taken() <= 0 || driver.steps_taken() % opt_.interval != 0) {
    return -1;
  }
  return checkpoint_now(driver);
}

long long CheckpointCoordinator::checkpoint_now(core::Driver& driver) {
  comm::SiteScope site("resilience.checkpoint");
  prof::WallTimer timer;

  // Epoch agreement: the epoch IS the step count, and a min/max allreduce
  // proves every rank is at the same one. Divergence here means the
  // lockstep contract is already broken, which no checkpoint should paper
  // over.
  long long lohi[2] = {driver.steps_taken(), -driver.steps_taken()};
  comm_->allreduce(std::span<long long>(lohi, 2), comm::ReduceOp::kMin);
  if (lohi[0] != -lohi[1]) {
    throw std::runtime_error(
        "checkpoint: ranks disagree on the step count (min " +
        std::to_string(lohi[0]) + ", max " + std::to_string(-lohi[1]) + ")");
  }
  const long long epoch = lohi[0];

  std::vector<std::byte> bytes = driver.serialize_checkpoint(epoch);
  const std::string primary =
      primary_path(opt_.directory, opt_.prefix, epoch, comm_->rank());
  io::write_file_atomic(primary, bytes);
  if (opt_.chaos != nullptr &&
      opt_.chaos->corrupt_checkpoint(comm_->rank(), epoch)) {
    corrupt_payload_byte(primary);
  }

  if (opt_.buddy_replication && comm_->size() > 1) {
    // Ring replication: my bytes go to rank+1, I host rank-1's. The buddy
    // file is named by its ORIGIN rank, so restore looks for
    // "my rank's epoch-e data" under the same name on either host.
    const int p = comm_->size();
    const int right = (comm_->rank() + 1) % p;
    const int left = (comm_->rank() + p - 1) % p;
    long long my_size = (long long)bytes.size();
    long long in_size = 0;
    comm_->sendrecv<long long>({&my_size, 1}, right, kTagBuddySize,
                               {&in_size, 1}, left, kTagBuddySize);
    std::vector<std::byte> theirs(static_cast<std::size_t>(in_size));
    comm_->sendrecv<std::byte>({bytes.data(), bytes.size()}, right,
                               kTagBuddyData, {theirs.data(), theirs.size()},
                               left, kTagBuddyData);
    io::write_file_atomic(buddy_path(opt_.directory, opt_.prefix, epoch, left),
                          theirs);
  }

  // Exiting this barrier means every rank has durably published epoch e —
  // only now may anyone discard e-2. (Restore does not trust this alone:
  // it re-derives completeness by intersecting per-rank restorable sets.)
  comm_->barrier();
  last_epoch_ = epoch;
  prune();

  if (opt_.stats != nullptr && comm_->rank() == 0) {
    opt_.stats->checkpoints += 1;
    opt_.stats->checkpoint_bytes += (long long)bytes.size();
    opt_.stats->checkpoint_seconds += timer.seconds();
  }
  return epoch;
}

std::vector<long long> CheckpointCoordinator::my_restorable_epochs() const {
  namespace fs = std::filesystem;
  std::vector<long long> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt_.directory, ec)) {
    ParsedName parsed;
    if (!parse_name(entry.path().filename().string(), opt_.prefix, &parsed)) {
      continue;
    }
    if (parsed.rank != comm_->rank()) continue;
    try {
      const io::CheckpointHeader h =
          io::validate_checkpoint(entry.path().string());
      // A v2 file must also claim the (epoch, rank) its name promises;
      // a v1 file carries neither and is accepted on CRC-free plausibility.
      if (h.version >= 2 && (h.epoch != parsed.epoch || h.rank != parsed.rank)) {
        continue;
      }
    } catch (const std::exception&) {
      continue;  // torn, truncated, or corrupt — not restorable from here
    }
    epochs.push_back(parsed.epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs;
}

bool CheckpointCoordinator::try_load_epoch(core::Driver& driver,
                                           long long epoch) {
  const std::string primary =
      primary_path(opt_.directory, opt_.prefix, epoch, comm_->rank());
  const std::string buddy =
      buddy_path(opt_.directory, opt_.prefix, epoch, comm_->rank());
  for (const std::string& path : {primary, buddy}) {
    try {
      driver.load_checkpoint_file(path);
      return true;
    } catch (const std::exception&) {
      // CRC mismatch, missing file, truncation: fall through to the replica.
    }
  }
  return false;
}

long long CheckpointCoordinator::restore_latest(core::Driver& driver) {
  comm::SiteScope site("resilience.restore");

  // Globally complete = every rank can restore it. Each rank reports the
  // epochs it can vouch for (valid primary or hosted-elsewhere replica of
  // MY data, i.e. the buddy file named with my rank), the intersection is
  // the candidate set, newest first.
  std::vector<long long> mine = my_restorable_epochs();
  std::vector<long long> all =
      comm_->allgatherv<long long>({mine.data(), mine.size()});
  std::map<long long, int> votes;
  for (long long e : all) votes[e] += 1;
  std::vector<long long> candidates;
  for (const auto& [epoch, count] : votes) {
    if (count == comm_->size()) candidates.push_back(epoch);
  }
  std::sort(candidates.rbegin(), candidates.rend());

  for (long long epoch : candidates) {
    const int ok = try_load_epoch(driver, epoch) ? 1 : 0;
    // A rank can lose its copy between the scan and the load (disk fault);
    // everyone must agree before the epoch counts, else fall back together.
    if (comm_->allreduce_one<int>(ok, comm::ReduceOp::kMin) == 1) {
      last_epoch_ = epoch;
      if (opt_.stats != nullptr && comm_->rank() == 0) {
        opt_.stats->restores += 1;
      }
      return epoch;
    }
  }
  return -1;
}

void CheckpointCoordinator::prune() {
  namespace fs = std::filesystem;
  // Per (rank-in-name, buddy?) group, keep the keep_epochs newest epochs.
  // This rank only ever deletes files it wrote: its primaries and the
  // replicas it hosts.
  std::map<std::pair<int, bool>, std::vector<std::pair<long long, fs::path>>>
      groups;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt_.directory, ec)) {
    ParsedName parsed;
    if (!parse_name(entry.path().filename().string(), opt_.prefix, &parsed)) {
      continue;
    }
    const bool my_primary = !parsed.buddy && parsed.rank == comm_->rank();
    const bool hosted_replica =
        parsed.buddy && comm_->size() > 1 &&
        parsed.rank == (comm_->rank() + comm_->size() - 1) % comm_->size();
    if (!my_primary && !hosted_replica) continue;
    groups[{parsed.rank, parsed.buddy}].emplace_back(parsed.epoch,
                                                     entry.path());
  }
  for (auto& [key, files] : groups) {
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = std::size_t(opt_.keep_epochs); i < files.size(); ++i) {
      fs::remove(files[i].second, ec);
    }
  }
}

}  // namespace cmtbone::resilience
