#include "resilience/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "comm/runtime.hpp"

namespace cmtbone::resilience {

namespace {
long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RecoveryReport run_with_recovery(int nranks, const core::Config& config,
                                 int nsteps, const RecoveryPolicy& policy,
                                 RecoveryOptions options) {
  if (options.checkpoint.directory.empty()) {
    throw std::invalid_argument(
        "run_with_recovery: options.checkpoint.directory must be set");
  }
  RecoveryReport report;
  options.checkpoint.stats = &report.stats;
  if (options.checkpoint.chaos == nullptr) {
    options.checkpoint.chaos = options.chaos;
  }

  // Cross-attempt bookkeeping, written by rank 0's thread inside the job
  // and read by the supervisor after the join (atomics because a failed
  // attempt's threads die at uncoordinated points).
  std::atomic<long long> progress{0};      // furthest step any attempt reached
  std::atomic<long long> committed{-1};    // newest epoch checkpoint_now took
  std::atomic<long long> restored{-1};     // epoch the latest attempt loaded
  std::atomic<long long> restore_done_ns{0};

  long long pending_fail_ns = 0;
  double backoff_ms = policy.backoff_initial_ms;

  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    report.attempts += 1;
    restored.store(-1);

    comm::RunOptions run_options;
    run_options.comm_profiler = options.comm_profiler;
    run_options.chaos = options.chaos;
    run_options.recovery = &report.stats;
    // Survivors of this attempt report failure against the attempt's base
    // epoch: the newest globally committed checkpoint at launch.
    run_options.epoch = committed.load();

    try {
      comm::run(
          nranks,
          [&](comm::Comm& world) {
            core::Driver driver(world, config);
            CheckpointCoordinator coordinator(world, options.checkpoint);
            const long long from = coordinator.restore_latest(driver);
            if (from >= 0) {
              if (world.rank() == 0) {
                restored.store(from);
                committed.store(std::max(committed.load(), from));
                restore_done_ns.store(now_ns());
              }
            } else {
              driver.initialize(options.initial_condition
                                    ? options.initial_condition
                                    : driver.default_ic());
            }
            const int remaining = nsteps - int(driver.steps_taken());
            driver.run(remaining, [&](core::Driver& d) {
              if (world.rank() == 0) {
                progress.store(
                    std::max(progress.load(), (long long)d.steps_taken()));
              }
              // Kill BEFORE the boundary's checkpoint: a rank that dies at
              // step s never contributes to epoch s, so recovery must come
              // from an older epoch — the adversarial ordering.
              if (options.chaos != nullptr) {
                options.chaos->on_step(world.global_rank(world.rank()),
                                       d.steps_taken());
              }
              const long long epoch = coordinator.maybe_checkpoint(d);
              if (epoch >= 0 && world.rank() == 0) {
                committed.store(std::max(committed.load(), epoch));
              }
            });
            if (options.on_final) options.on_final(driver, world);
          },
          run_options);

      // Attempt succeeded. Close an open repair interval (failure observed
      // -> this attempt's restore finished) before reporting.
      const long long done = restore_done_ns.load();
      if (pending_fail_ns != 0 && done > pending_fail_ns) {
        report.stats.repair_seconds_sum +=
            double(done - pending_fail_ns) * 1e-9;
        pending_fail_ns = 0;
      }
      report.completed = true;
      report.failures = int(report.stats.failures);
      report.last_restored_epoch = restored.load();
      return report;
    } catch (...) {
      const long long fail_ns = now_ns();
      report.stats.failures += 1;
      // Work beyond the rollback point is recomputed: steps past the last
      // committed epoch (or past step 0 when no epoch ever committed).
      report.stats.steps_lost +=
          std::max(0LL, progress.load() - std::max(committed.load(), 0LL));
      // This failed attempt may itself have restored after an earlier
      // failure; close that interval too.
      const long long done = restore_done_ns.exchange(0);
      if (pending_fail_ns != 0 && done > pending_fail_ns) {
        report.stats.repair_seconds_sum +=
            double(done - pending_fail_ns) * 1e-9;
      }
      pending_fail_ns = fail_ns;
      if (attempt == policy.max_retries) throw;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms =
          std::min(backoff_ms * policy.backoff_multiplier,
                   policy.backoff_max_ms);
    }
  }
  // Unreachable: the final failed attempt rethrows above.
  return report;
}

}  // namespace cmtbone::resilience
