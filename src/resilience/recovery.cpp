#include "resilience/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "comm/runtime.hpp"
#include "prof/timer.hpp"

namespace cmtbone::resilience {

namespace {
long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// SplitMix64 finalizer (the same mixer the chaos engine uses): one draw per
// (seed, attempt), so the jitter schedule is reproducible from the policy.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}
}  // namespace

double jittered_backoff_ms(const RecoveryPolicy& policy, int attempt,
                           double backoff_ms) {
  const double jitter = std::clamp(policy.backoff_jitter, 0.0, 1.0);
  if (jitter <= 0.0) return backoff_ms;
  const std::uint64_t h =
      mix64(policy.backoff_seed ^ mix64(std::uint64_t(attempt) +
                                        0x9e3779b97f4a7c15ull));
  const double unit = double(h >> 11) * 0x1.0p-53;  // [0, 1)
  return backoff_ms * (1.0 - jitter * unit);
}

RecoveryReport run_with_recovery(int nranks, const core::Config& config,
                                 int nsteps, const RecoveryPolicy& policy,
                                 RecoveryOptions options) {
  if (options.checkpoint.directory.empty()) {
    throw std::invalid_argument(
        "run_with_recovery: options.checkpoint.directory must be set");
  }
  RecoveryReport report;
  options.checkpoint.stats = &report.stats;
  if (options.checkpoint.chaos == nullptr) {
    options.checkpoint.chaos = options.chaos;
  }

  // Cross-attempt bookkeeping, written by rank 0's thread inside the job
  // and read by the supervisor after the join (atomics because a failed
  // attempt's threads die at uncoordinated points).
  std::atomic<long long> progress{0};      // furthest step any attempt reached
  std::atomic<long long> committed{-1};    // newest epoch checkpoint_now took
  std::atomic<long long> restored{-1};     // epoch the latest attempt loaded
  std::atomic<long long> restore_done_ns{0};

  long long pending_fail_ns = 0;
  double backoff_ms = policy.backoff_initial_ms;
  // The deadline clock covers the whole supervised run: attempts, backoff
  // sleeps, and restores all bill against it.
  prof::WallTimer deadline_timer;
  const bool watched =
      bool(options.yield_requested) || options.deadline_seconds > 0.0;

  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    report.attempts += 1;
    restored.store(-1);

    comm::RunOptions run_options;
    run_options.comm_profiler = options.comm_profiler;
    run_options.chaos = options.chaos;
    run_options.recovery = &report.stats;
    // Survivors of this attempt report failure against the attempt's base
    // epoch: the newest globally committed checkpoint at launch.
    run_options.epoch = committed.load();

    try {
      comm::run(
          nranks,
          [&](comm::Comm& world) {
            core::Driver driver(world, config);
            CheckpointCoordinator coordinator(world, options.checkpoint);
            const long long from = coordinator.restore_latest(driver);
            if (from >= 0) {
              if (world.rank() == 0) {
                restored.store(from);
                committed.store(std::max(committed.load(), from));
                restore_done_ns.store(now_ns());
              }
            } else {
              driver.initialize(options.initial_condition
                                    ? options.initial_condition
                                    : driver.default_ic());
            }
            const int remaining = nsteps - int(driver.steps_taken());
            driver.run(remaining, [&](core::Driver& d) {
              if (world.rank() == 0) {
                progress.store(
                    std::max(progress.load(), (long long)d.steps_taken()));
              }
              // Kill BEFORE the boundary's checkpoint: a rank that dies at
              // step s never contributes to epoch s, so recovery must come
              // from an older epoch — the adversarial ordering.
              if (options.chaos != nullptr) {
                options.chaos->on_step(world.global_rank(world.rank()),
                                       d.steps_taken());
              }
              const long long epoch = coordinator.maybe_checkpoint(d);
              if (epoch >= 0 && world.rank() == 0) {
                committed.store(std::max(committed.load(), epoch));
              }
              // Cooperative preemption / deadline: rank 0 samples the
              // flags, the allreduce makes the verdict identical on every
              // rank, and the whole job acts on it together — a lone rank
              // never unwinds while its peers post the next exchange.
              // Skipped entirely (no extra collective) when unwatched, and
              // at the final step, where finishing beats suspending.
              if (watched && d.steps_taken() < nsteps) {
                int want = 0;
                if (world.rank() == 0) {
                  if (options.yield_requested && options.yield_requested()) {
                    want |= 1;
                  }
                  if (options.deadline_seconds > 0.0 &&
                      deadline_timer.seconds() > options.deadline_seconds) {
                    want |= 2;
                  }
                }
                const int agreed =
                    world.allreduce_one<int>(want, comm::ReduceOp::kMax);
                if (agreed & 2) {
                  throw DeadlineExceeded(options.deadline_seconds,
                                         d.steps_taken());
                }
                if (agreed & 1) {
                  // Suspend exactly at this boundary: commit the state
                  // (unless this step already checkpointed) and unwind.
                  long long suspend_epoch = epoch;
                  if (suspend_epoch < 0) {
                    suspend_epoch = coordinator.checkpoint_now(d);
                  }
                  if (world.rank() == 0) {
                    committed.store(
                        std::max(committed.load(), suspend_epoch));
                  }
                  throw JobPreempted(suspend_epoch);
                }
              }
            });
            if (options.on_final) options.on_final(driver, world);
          },
          run_options);

      // Attempt succeeded. Close an open repair interval (failure observed
      // -> this attempt's restore finished) before reporting.
      const long long done = restore_done_ns.load();
      if (pending_fail_ns != 0 && done > pending_fail_ns) {
        report.stats.repair_seconds_sum +=
            double(done - pending_fail_ns) * 1e-9;
        pending_fail_ns = 0;
      }
      report.completed = true;
      report.failures = int(report.stats.failures);
      report.last_restored_epoch = restored.load();
      report.steps_reached = progress.load();
      return report;
    } catch (const JobPreempted& p) {
      // Not a failure: the suspend checkpoint committed before the unwind,
      // so a later call on the same directory resumes bit-identically.
      const long long done = restore_done_ns.load();
      if (pending_fail_ns != 0 && done > pending_fail_ns) {
        report.stats.repair_seconds_sum +=
            double(done - pending_fail_ns) * 1e-9;
      }
      report.preempted = true;
      report.preempt_epoch = p.epoch;
      report.failures = int(report.stats.failures);
      report.last_restored_epoch = restored.load();
      report.steps_reached = progress.load();
      return report;
    } catch (const DeadlineExceeded&) {
      throw;  // terminal by design: a retry could not finish any sooner
    } catch (const core::SolverDiverged&) {
      // Terminal too, but counted as a failure: the run is deterministic,
      // so replaying from the last checkpoint reproduces the same
      // non-physical state bit for bit — retrying cannot help. The caller
      // (service layer) attributes the structured error to the job.
      report.stats.failures += 1;
      throw;
    } catch (...) {
      const long long fail_ns = now_ns();
      report.stats.failures += 1;
      // Work beyond the rollback point is recomputed: steps past the last
      // committed epoch (or past step 0 when no epoch ever committed).
      report.stats.steps_lost +=
          std::max(0LL, progress.load() - std::max(committed.load(), 0LL));
      // This failed attempt may itself have restored after an earlier
      // failure; close that interval too.
      const long long done = restore_done_ns.exchange(0);
      if (pending_fail_ns != 0 && done > pending_fail_ns) {
        report.stats.repair_seconds_sum +=
            double(done - pending_fail_ns) * 1e-9;
      }
      pending_fail_ns = fail_ns;
      if (attempt == policy.max_retries) throw;
      if (options.deadline_seconds > 0.0 &&
          deadline_timer.seconds() > options.deadline_seconds) {
        throw DeadlineExceeded(options.deadline_seconds, progress.load());
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          jittered_backoff_ms(policy, attempt, backoff_ms)));
      backoff_ms =
          std::min(backoff_ms * policy.backoff_multiplier,
                   policy.backoff_max_ms);
    }
  }
  // Unreachable: the final failed attempt rethrows above.
  return report;
}

}  // namespace cmtbone::resilience
