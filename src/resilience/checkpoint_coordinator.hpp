#pragma once
// Coordinated checkpointing: every K steps all ranks agree on an epoch (an
// allreduce asserts they are at the same step), write CRC32-protected,
// torn-write-safe per-rank checkpoint files, optionally replicate the same
// bytes to a buddy rank, and prune a two-version ring (keep epoch e and
// e-1). Restore picks the newest *globally complete* epoch: one that every
// rank can produce a CRC-valid copy of, from its primary file or its
// buddy's replica — an epoch some rank only half-wrote before dying is
// never chosen, because that rank cannot vouch for it.
//
// File naming: <dir>/<prefix>.e<epoch>.r<rank>.chk for rank's own
// (primary) file, and <dir>/<prefix>.e<epoch>.r<origin>.buddy.chk for the
// replica of `origin`'s payload hosted by origin's buddy (rank origin+1
// mod P). Content under both names is byte-identical.

#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/comm.hpp"
#include "core/driver.hpp"
#include "prof/recovery.hpp"

namespace cmtbone::resilience {

struct CheckpointOptions {
  /// Directory for the checkpoint files; must exist and be writable.
  std::string directory;
  std::string prefix = "ckpt";
  /// Checkpoint every `interval` completed steps (<= 0: only explicit
  /// checkpoint_now() calls write anything).
  int interval = 10;
  /// Ship each rank's serialized checkpoint to rank+1 (mod P) so a lost or
  /// corrupt primary file is restorable from the replica. No-op on 1 rank.
  bool buddy_replication = true;
  /// Ring depth: how many newest epochs to keep on disk (2 = e and e-1).
  int keep_epochs = 2;
  /// Chaos fault source for corrupt-checkpoint injection (may be null).
  chaos::ChaosEngine* chaos = nullptr;
  /// Checkpoint cost/restore accounting; written by local rank 0 only.
  prof::RecoveryStats* stats = nullptr;
};

class CheckpointCoordinator {
 public:
  /// Not collective by itself; every method below is collective over `comm`
  /// and must be called by all ranks with the driver in lockstep.
  CheckpointCoordinator(comm::Comm& comm, CheckpointOptions options);

  /// Checkpoint when the driver's step count hits the interval; returns the
  /// committed epoch or -1 when this step is not a checkpoint boundary.
  long long maybe_checkpoint(core::Driver& driver);

  /// Checkpoint unconditionally. The epoch is the (allreduce-agreed) step
  /// count; throws if ranks disagree on it. Returns the epoch.
  long long checkpoint_now(core::Driver& driver);

  /// Roll the driver back to the newest epoch every rank can restore
  /// (CRC-valid primary, else the buddy replica; else the next-older
  /// epoch). Returns the restored epoch, or -1 when no globally complete
  /// epoch exists (caller should initialize fresh).
  long long restore_latest(core::Driver& driver);

  /// Epoch of the last successful checkpoint_now()/restore_latest() on this
  /// rank (-1 when none).
  long long last_epoch() const { return last_epoch_; }

  const CheckpointOptions& options() const { return opt_; }

  // --- file naming (exposed for tests and tooling) -----------------------
  static std::string primary_path(const std::string& directory,
                                  const std::string& prefix, long long epoch,
                                  int rank);
  static std::string buddy_path(const std::string& directory,
                                const std::string& prefix, long long epoch,
                                int origin_rank);

 private:
  // Epochs this rank can restore (a CRC-valid primary or buddy replica
  // exists), ascending and unique.
  std::vector<long long> my_restorable_epochs() const;
  // Load `epoch` into the driver (primary first, buddy fallback). Returns
  // false when neither copy is usable; the driver is only mutated on
  // success.
  bool try_load_epoch(core::Driver& driver, long long epoch);
  // Drop this rank's files (primary + hosted replicas) for epochs older
  // than the keep_epochs newest.
  void prune();

  comm::Comm* comm_;
  CheckpointOptions opt_;
  long long last_epoch_ = -1;
};

}  // namespace cmtbone::resilience
