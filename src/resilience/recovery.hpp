#pragma once
// Recovery supervisor: the resilient run loop. run_with_recovery() wraps
// comm::run around a driver + checkpoint coordinator, and when an attempt
// dies (a rank threw; survivors unwound via RankFailed), it rolls the job
// back to the newest globally complete checkpoint and re-launches with
// bounded retries and exponential backoff. A chaos-killed run recovers to
// bit-identical final fields: restart re-reads the exact bytes the rollback
// epoch committed, and the solver is deterministic from any committed state.

#include <functional>
#include <string>

#include "chaos/chaos.hpp"
#include "comm/comm.hpp"
#include "core/config.hpp"
#include "core/driver.hpp"
#include "prof/recovery.hpp"
#include "resilience/checkpoint_coordinator.hpp"

namespace cmtbone::resilience {

struct RecoveryPolicy {
  /// Re-launches allowed after a failed attempt (total attempts = 1 + this).
  int max_retries = 3;
  /// Exponential backoff between attempts.
  double backoff_initial_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 1000.0;
};

struct RecoveryOptions {
  /// Checkpoint cadence and placement; `checkpoint.directory` is required.
  CheckpointOptions checkpoint;
  /// Chaos engine threaded through both the comm runtime (schedule
  /// perturbation, abort faults) and the step hook (kill_step faults).
  /// Also installed as the coordinator's corruption source unless
  /// checkpoint.chaos is already set.
  chaos::ChaosEngine* chaos = nullptr;
  /// Initial condition for a cold start (default: driver.default_ic()).
  core::FieldFunction initial_condition;
  /// Runs on every rank after the final step of the successful attempt
  /// (e.g. to capture final fields for comparison). May use collectives.
  std::function<void(core::Driver&, comm::Comm&)> on_final;
  /// Optional comm profiler passed through to comm::run.
  prof::CommProfiler* comm_profiler = nullptr;
};

struct RecoveryReport {
  bool completed = false;         // reached nsteps (always true on return;
                                  // exhausted retries rethrow instead)
  int attempts = 0;               // comm::run launches, including the first
  int failures = 0;               // attempts that ended in a failed epoch
  long long last_restored_epoch = -1;  // -1: final attempt started cold
  prof::RecoveryStats stats;      // checkpoint / detection / repair costs
};

/// Run the solver for `nsteps` steps on `nranks` ranks, checkpointing every
/// checkpoint.interval steps and transparently recovering from failed
/// attempts. Returns once an attempt completes; rethrows the attempt's
/// exception once max_retries re-launches are exhausted.
RecoveryReport run_with_recovery(int nranks, const core::Config& config,
                                 int nsteps,
                                 const RecoveryPolicy& policy = {},
                                 RecoveryOptions options = {});

}  // namespace cmtbone::resilience
