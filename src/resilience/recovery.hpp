#pragma once
// Recovery supervisor: the resilient run loop. run_with_recovery() wraps
// comm::run around a driver + checkpoint coordinator, and when an attempt
// dies (a rank threw; survivors unwound via RankFailed), it rolls the job
// back to the newest globally complete checkpoint and re-launches with
// bounded retries and exponential backoff. A chaos-killed run recovers to
// bit-identical final fields: restart re-reads the exact bytes the rollback
// epoch committed, and the solver is deterministic from any committed state.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "chaos/chaos.hpp"
#include "comm/comm.hpp"
#include "core/config.hpp"
#include "core/driver.hpp"
#include "prof/recovery.hpp"
#include "resilience/checkpoint_coordinator.hpp"

namespace cmtbone::resilience {

struct RecoveryPolicy {
  /// Re-launches allowed after a failed attempt (total attempts = 1 + this).
  int max_retries = 3;
  /// Exponential backoff between attempts.
  double backoff_initial_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 1000.0;
  /// Decorrelating jitter: each backoff sleep is scaled by a factor drawn
  /// deterministically from (backoff_seed, attempt) in
  /// [1 - backoff_jitter, 1]. 0 (default) keeps the historical lockstep
  /// schedule; the service scheduler sets it so simultaneous multi-job
  /// restarts do not retry in phase and storm the checkpoint directory.
  double backoff_jitter = 0.0;
  std::uint64_t backoff_seed = 0;
};

/// The seed-deterministic jittered sleep for `attempt`'s retry: backoff_ms
/// scaled into [1 - jitter, 1]. Exposed so tests can pin the schedule.
double jittered_backoff_ms(const RecoveryPolicy& policy, int attempt,
                           double backoff_ms);

struct RecoveryOptions {
  /// Checkpoint cadence and placement; `checkpoint.directory` is required.
  CheckpointOptions checkpoint;
  /// Chaos engine threaded through both the comm runtime (schedule
  /// perturbation, abort faults) and the step hook (kill_step faults).
  /// Also installed as the coordinator's corruption source unless
  /// checkpoint.chaos is already set.
  chaos::ChaosEngine* chaos = nullptr;
  /// Initial condition for a cold start (default: driver.default_ic()).
  core::FieldFunction initial_condition;
  /// Runs on every rank after the final step of the successful attempt
  /// (e.g. to capture final fields for comparison). May use collectives.
  std::function<void(core::Driver&, comm::Comm&)> on_final;
  /// Optional comm profiler passed through to comm::run.
  prof::CommProfiler* comm_profiler = nullptr;
  /// Cooperative preemption: polled on rank 0's step hook and agreed by
  /// allreduce so every rank decides identically. When it turns true the
  /// job takes a coordinated checkpoint at the next step boundary and
  /// unwinds with JobPreempted; run_with_recovery returns with
  /// report.preempted = true and the checkpoint directory holds the exact
  /// state to resume from (a later run_with_recovery on the same directory
  /// continues bit-identically). Null = never preempt (no per-step
  /// collective is added).
  std::function<bool()> yield_requested;
  /// Wall-clock budget for this run_with_recovery call, spanning retries
  /// and backoff (<= 0 = none). Checked at step boundaries (rank-agreed)
  /// and between attempts; exceeding it throws DeadlineExceeded, which the
  /// supervisor treats as terminal (never retried).
  double deadline_seconds = 0.0;
};

/// Thrown on every rank (after rank agreement) when yield_requested asks a
/// running job to suspend; the suspend checkpoint has already committed
/// when this unwinds. run_with_recovery converts it into a report with
/// preempted = true — it only escapes if thrown outside a supervised run.
struct JobPreempted : std::runtime_error {
  long long epoch;
  explicit JobPreempted(long long checkpoint_epoch)
      : std::runtime_error("job preempted at checkpoint epoch " +
                           std::to_string(checkpoint_epoch)),
        epoch(checkpoint_epoch) {}
};

/// The run exceeded RecoveryOptions::deadline_seconds. Terminal: the
/// supervisor rethrows instead of retrying (a retry could not finish any
/// sooner).
struct DeadlineExceeded : std::runtime_error {
  explicit DeadlineExceeded(double deadline_s, long long step)
      : std::runtime_error("job deadline of " + std::to_string(deadline_s) +
                           "s exceeded at step " + std::to_string(step)) {}
};

struct RecoveryReport {
  bool completed = false;         // reached nsteps (true unless preempted;
                                  // exhausted retries rethrow instead)
  bool preempted = false;         // suspended via yield_requested; resume
                                  // by re-running on the same directory
  long long preempt_epoch = -1;   // epoch the suspend checkpoint committed
  int attempts = 0;               // comm::run launches, including the first
  int failures = 0;               // attempts that ended in a failed epoch
  long long last_restored_epoch = -1;  // -1: final attempt started cold
  long long steps_reached = 0;    // furthest step any attempt completed
  prof::RecoveryStats stats;      // checkpoint / detection / repair costs
};

/// Run the solver for `nsteps` steps on `nranks` ranks, checkpointing every
/// checkpoint.interval steps and transparently recovering from failed
/// attempts. Returns once an attempt completes; rethrows the attempt's
/// exception once max_retries re-launches are exhausted.
RecoveryReport run_with_recovery(int nranks, const core::Config& config,
                                 int nsteps,
                                 const RecoveryPolicy& policy = {},
                                 RecoveryOptions options = {});

}  // namespace cmtbone::resilience
