#pragma once
// Measured roofline model for kernel efficiency reporting.
//
// The benches already count flops and bytes per kernel; what was missing is
// the machine side of the ratio. This module measures, once per process:
//
//   peak_gflops   register-resident multiply-add throughput of the widest
//                 runnable SIMD backend (kernels/simd_backend.hpp probe) —
//                 the compute roof
//   mem_gbytes    sustained main-memory bandwidth from a stream-triad
//                 sweep over arrays far larger than cache — the memory roof
//
// and exposes the standard roofline: a kernel with arithmetic intensity I
// (flops/byte of main-memory traffic) can at best reach
// min(peak_gflops, mem_gbytes * I).
//
// Caveat the benches inherit: their working sets are sized like the
// solver's per-rank element batches, which largely fit in cache, so a
// measured kernel can legitimately exceed the DRAM-bandwidth ceiling —
// percent-of-peak (the compute roof) is the honest headline number, and
// the attainable ceiling is context.
//
// Environment overrides (taken verbatim, probes skipped) pin the numbers
// for deterministic tests and CI: CMTBONE_PEAK_GFLOPS, CMTBONE_MEM_GBS.

#include <string>

namespace cmtbone::prof {

struct Machine {
  double peak_gflops = 0.0;
  double mem_gbytes = 0.0;  // GB/s
  std::string isa;          // kernels::isa_name() at measurement time
};

/// Measured once at first use, then cached for the process.
const Machine& machine();

/// Roofline ceiling for arithmetic intensity `flops_per_byte`.
double attainable_gflops(const Machine& m, double flops_per_byte);

/// measured/peak in percent (compute roof).
double percent_of_peak(const Machine& m, double measured_gflops);

/// measured/attainable in percent (intensity-aware roof).
double percent_of_attainable(const Machine& m, double measured_gflops,
                             double flops_per_byte);

inline constexpr const char* kPeakEnvVar = "CMTBONE_PEAK_GFLOPS";
inline constexpr const char* kBandwidthEnvVar = "CMTBONE_MEM_GBS";

}  // namespace cmtbone::prof
