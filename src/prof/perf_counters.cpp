#include "prof/perf_counters.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace cmtbone::prof {

#if defined(__linux__)

namespace {
int open_counter(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return int(syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                     /*group_fd=*/-1, /*flags=*/0));
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof value) != sizeof value) value = 0;
  return value;
}
}  // namespace

HwCounters::HwCounters() {
  fd_instructions_ = open_counter(PERF_COUNT_HW_INSTRUCTIONS);
  fd_cycles_ = open_counter(PERF_COUNT_HW_CPU_CYCLES);
}

HwCounters::~HwCounters() {
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_cycles_ >= 0) close(fd_cycles_);
}

void HwCounters::start() {
  if (!available()) return;
  ioctl(fd_instructions_, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, 0);
  ioctl(fd_instructions_, PERF_EVENT_IOC_ENABLE, 0);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, 0);
}

void HwCounters::stop() {
  if (!available()) return;
  ioctl(fd_instructions_, PERF_EVENT_IOC_DISABLE, 0);
  ioctl(fd_cycles_, PERF_EVENT_IOC_DISABLE, 0);
  instructions_ = read_counter(fd_instructions_);
  cycles_ = read_counter(fd_cycles_);
}

#else  // non-Linux: never available

HwCounters::HwCounters() = default;
HwCounters::~HwCounters() = default;
void HwCounters::start() {}
void HwCounters::stop() {}

#endif

}  // namespace cmtbone::prof
