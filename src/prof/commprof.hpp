#pragma once
// Communication profiler: the stand-in for mpiP in the paper's Figs. 8-10.
//
// The message-passing runtime (src/comm) reports every operation here with
// a call-site label, elapsed time, and byte count. Each rank owns a private
// slot, so recording is lock-free with respect to other ranks; reports
// aggregate across ranks after the parallel region ends.
//
// Reports provided:
//   * per-rank % of wall time spent in comm ops        (Fig. 8)
//   * top-N call sites by aggregate time               (Fig. 9)
//   * total / average message size per call site       (Fig. 10)

#include <map>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace cmtbone::prof {

struct CommStat {
  long calls = 0;
  double seconds = 0.0;
  long long bytes = 0;  // payload bytes moved by this site (0 for waits)
};

class CommProfiler {
 public:
  explicit CommProfiler(int nranks);

  int nranks() const { return nranks_; }

  /// Record one comm operation on `rank`. `site` identifies the call site
  /// ("gs_pairwise/MPI_Isend", "driver/MPI_Allreduce", ...). Only `rank`'s
  /// thread may call this for a given rank — that is what makes it safe
  /// without locks.
  void record(int rank, const std::string& site, double seconds,
              long long bytes);

  /// Mark total wall time of the profiled region for `rank` (denominator of
  /// the Fig. 8 percentages).
  void set_rank_walltime(int rank, double seconds);

  /// Zero all stats (between benchmark repetitions).
  void reset();

  // --- queries -----------------------------------------------------------

  double rank_comm_seconds(int rank) const;
  double rank_walltime(int rank) const;
  /// Fraction of rank wall time spent in comm ops, per rank (Fig. 8).
  std::vector<double> comm_fraction_per_rank() const;

  struct SiteTotal {
    std::string site;
    long calls = 0;
    double seconds = 0.0;
    long long total_bytes = 0;
    double avg_bytes = 0.0;
  };
  /// All sites aggregated over ranks, sorted by time descending.
  std::vector<SiteTotal> site_totals() const;
  /// Top `n` sites by aggregate time (Fig. 9 uses n = 20).
  std::vector<SiteTotal> top_sites(int n) const;

  /// Aggregate stats for one rank.
  const std::map<std::string, CommStat>& rank_sites(int rank) const;

  // --- reports ------------------------------------------------------------

  util::Table table_fraction_per_rank() const;              // Fig. 8
  util::Table table_top_sites(int n) const;                 // Fig. 9
  util::Table table_message_sizes(int n) const;             // Fig. 10

  std::string report_fraction_per_rank() const;
  std::string report_top_sites(int n) const;
  std::string report_message_sizes(int n) const;

 private:
  int nranks_;
  // One slot per rank; slot i is written only by rank i's thread.
  std::vector<std::map<std::string, CommStat>> per_rank_;
  std::vector<double> walltime_;
};

}  // namespace cmtbone::prof
