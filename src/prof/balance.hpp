#pragma once
// Per-rank busy-time accounting for the dynamic load balancer.
//
// The driver accumulates, over one rebalance window, the thread-CPU seconds
// (prof::CpuTimer) spent in grid work (volume + surface kernels) and in
// particle work (advance, deposit, migrate). CPU time rather than wall time
// so a rank is charged only for work it executed — comm waits and, on an
// oversubscribed test host where ranks are threads, time spent descheduled
// for other ranks both accrue nothing. The cost model
// (balance/cost_model.hpp) turns these into per-element unit rates; the
// scaling benches report the cross-rank max/mean of busy_seconds() as the
// imbalance factor.

namespace cmtbone::prof {

struct BalanceStats {
  double grid_seconds = 0;      // volume + surface kernel time this window
  double particle_seconds = 0;  // particle advance/deposit/migrate time
  double rebalance_seconds = 0; // repartition + element migration time
                                // (accumulated in the run totals only, so
                                // the balanced run's busy time is charged
                                // for its own overhead; always zero in the
                                // cost model's measurement windows)
  long long steps = 0;          // steps accumulated in this window

  double busy_seconds() const {
    return grid_seconds + particle_seconds + rebalance_seconds;
  }
  void reset() { *this = BalanceStats{}; }
};

}  // namespace cmtbone::prof
