#pragma once
// Wall-clock and cycle timers.
//
// The paper reports PAPI total-cycle counts (Figs 5/6); PAPI is not
// available here, so cycle counts come from the TSC. On modern x86 the TSC
// is constant-rate and monotonic, which is exactly what a relative
// comparison between kernel variants needs.

#include <chrono>
#include <cstdint>
#include <ctime>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace cmtbone::prof {

/// Monotonic wall-clock timer in seconds.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time timer in seconds: counts only cycles this thread
/// actually executed. Two distortions that wall clocks suffer vanish here,
/// and both matter because our "ranks" are threads in one process:
///   * time blocked in a comm wait (condition variable) accrues no CPU, so
///     a rank waiting on a slow neighbor is not charged for the neighbor's
///     work, and
///   * time descheduled while other rank-threads share the same cores is
///     not charged either, so per-rank busy time on an oversubscribed test
///     host matches what a one-rank-per-node deployment would measure.
/// This is the clock the load-balancing cost model runs on.
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}

  void restart() { start_ = now(); }

  double seconds() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
    }
#endif
    // Fallback: wall time (correct on a dedicated core, pessimistic when
    // rank-threads share one).
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_ = 0;
};

/// What read_cycles() actually counts. On x86 it is raw TSC ticks; the
/// non-x86 fallback is steady-clock *nanoseconds*. The two differ by the
/// TSC frequency (a few GHz), so consumers must never mix readings across
/// platforms as if they shared a unit — benches report cycle_unit_name()
/// next to every count.
enum class CycleUnit { kTscCycles, kNanoseconds };

constexpr CycleUnit cycle_unit() {
#if defined(__x86_64__) || defined(_M_X64)
  return CycleUnit::kTscCycles;
#else
  return CycleUnit::kNanoseconds;
#endif
}

constexpr const char* cycle_unit_name(CycleUnit u = cycle_unit()) {
  return u == CycleUnit::kTscCycles ? "tsc-cycles" : "nanoseconds";
}

/// Read the platform cycle counter; interpret via cycle_unit().
inline std::uint64_t read_cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return std::uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Accumulating stopwatch: many start/stop intervals, one total.
class Stopwatch {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }

  void stop() {
    total_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
                  .count();
    ++laps_;
  }

  double seconds() const { return total_; }
  long laps() const { return laps_; }
  void reset() { total_ = 0.0; laps_ = 0; }

 private:
  std::chrono::steady_clock::time_point t0_{};
  double total_ = 0.0;
  long laps_ = 0;
};

}  // namespace cmtbone::prof
