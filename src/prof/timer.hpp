#pragma once
// Wall-clock and cycle timers.
//
// The paper reports PAPI total-cycle counts (Figs 5/6); PAPI is not
// available here, so cycle counts come from the TSC. On modern x86 the TSC
// is constant-rate and monotonic, which is exactly what a relative
// comparison between kernel variants needs.

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace cmtbone::prof {

/// Monotonic wall-clock timer in seconds.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Read the timestamp counter. Falls back to nanoseconds on non-x86.
inline std::uint64_t read_cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return std::uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Accumulating stopwatch: many start/stop intervals, one total.
class Stopwatch {
 public:
  void start() { t0_ = std::chrono::steady_clock::now(); }

  void stop() {
    total_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
                  .count();
    ++laps_;
  }

  double seconds() const { return total_; }
  long laps() const { return laps_; }
  void reset() { total_ = 0.0; laps_ = 0; }

 private:
  std::chrono::steady_clock::time_point t0_{};
  double total_ = 0.0;
  long laps_ = 0;
};

}  // namespace cmtbone::prof
