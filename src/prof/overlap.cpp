#include "prof/overlap.hpp"

namespace cmtbone::prof {

void OverlapStats::reset() {
  windows = 0;
  begin_seconds = 0.0;
  compute_seconds = 0.0;
  finish_seconds = 0.0;
}

double OverlapStats::hidden_fraction() const {
  const double denom = compute_seconds + finish_seconds;
  if (denom <= 0.0) return 0.0;
  return compute_seconds / denom;
}

double OverlapStats::exposed_seconds_per_window() const {
  if (windows == 0) return 0.0;
  return (begin_seconds + finish_seconds) / double(windows);
}

}  // namespace cmtbone::prof
