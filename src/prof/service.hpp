#pragma once
// Accounting for the simulation-as-a-service layer: the scheduler's live
// queue/worker gauges, lifetime job counters, preemption traffic, and the
// per-tenant worker-share ledger. bench/service_study reports these next to
// the per-job latency percentiles; Scheduler::stats() returns a snapshot.

#include <map>
#include <string>

namespace cmtbone::prof {

struct ServiceStats {
  // --- lifetime job counters ----------------------------------------------
  long long submitted = 0;   // accepted into the queue
  long long rejected = 0;    // refused at admission
  long long completed = 0;   // reached nsteps
  long long failed = 0;      // terminal failure (attributed in JobReport)
  long long cancelled = 0;   // discarded by a non-draining shutdown

  // --- scheduling traffic --------------------------------------------------
  long long dispatches = 0;   // job launches, including resumes
  long long preemptions = 0;  // checkpoint-backed suspensions
  long long resumes = 0;      // re-dispatches of a preempted job

  // --- fault-domain accounting (summed over every job's dispatches) -------
  long long job_failures = 0;   // failed attempts retried inside a job
  long long job_restores = 0;   // rollbacks that loaded a checkpoint
  double repair_seconds_sum = 0.0;

  // --- live gauges and high-water marks ------------------------------------
  long long queue_depth = 0;    // queued + preempted-awaiting-resume
  long long running_jobs = 0;
  long long busy_workers = 0;   // rank slots currently dispatched
  long long peak_queue_depth = 0;
  long long peak_busy_workers = 0;

  // --- fair-share ledger ----------------------------------------------------
  // Worker-seconds consumed per tenant (ranks x dispatch wall time), the
  // quantity fair-share scheduling balances.
  std::map<std::string, double> tenant_worker_seconds;
  std::map<std::string, long long> tenant_completed;

  /// Mean time to repair across every job's recoveries (0 when none).
  double mttr_seconds() const {
    return job_restores > 0 ? repair_seconds_sum / double(job_restores) : 0.0;
  }
};

}  // namespace cmtbone::prof
