#pragma once
// Hardware instruction/cycle counters via perf_event_open — the stand-in
// for the PAPI counters the paper's Figs. 5/6 report.
//
// Availability depends on kernel configuration (perf_event_paranoid,
// container seccomp policy). When the syscall is unavailable the counters
// degrade gracefully: available() returns false and callers fall back to
// the analytic instruction model (kernels::grad_instruction_estimate) plus
// TSC cycles.

#include <cstdint>

namespace cmtbone::prof {

class HwCounters {
 public:
  HwCounters();
  ~HwCounters();

  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// True if both hardware counters opened successfully.
  bool available() const { return fd_instructions_ >= 0 && fd_cycles_ >= 0; }

  void start();
  void stop();

  /// Counts accumulated between the last start()/stop() pair; 0 when
  /// unavailable.
  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t cycles() const { return cycles_; }

 private:
  int fd_instructions_ = -1;
  int fd_cycles_ = -1;
  std::uint64_t instructions_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace cmtbone::prof
