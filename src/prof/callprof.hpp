#pragma once
// Call-tree profiler: the stand-in for the gprof profile in the paper's
// Fig. 4 ("Partial CMT-bone call graph and execution profile").
//
// Usage: wrap regions in ScopedRegion. Each thread keeps its own tree (no
// locks on the hot path); trees from all ranks are merged for reporting.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "prof/timer.hpp"

namespace cmtbone::prof {

struct CallNode {
  std::string name;
  long calls = 0;
  double seconds = 0.0;  // inclusive
  std::map<std::string, std::unique_ptr<CallNode>> children;

  CallNode* child(const std::string& child_name);
  /// Inclusive time minus children's inclusive time.
  double exclusive_seconds() const;
};

/// One thread's (rank's) call tree.
class CallProfile {
 public:
  CallProfile();

  void enter(const std::string& name);
  void leave(double seconds);

  const CallNode& root() const { return *root_; }
  CallNode& mutable_root() { return *root_; }

  /// Merge `other` into this tree (used to aggregate ranks).
  void merge(const CallProfile& other);

  /// Flat profile: name -> {calls, inclusive, exclusive} summed over all
  /// occurrences in the tree.
  struct FlatEntry {
    std::string name;
    long calls = 0;
    double inclusive = 0.0;
    double exclusive = 0.0;
  };
  std::vector<FlatEntry> flat() const;

  /// Total profiled time (sum of root children inclusive).
  double total_seconds() const;

  /// gprof-style indented tree rendering with percentages of total.
  std::string tree_report() const;

 private:
  std::unique_ptr<CallNode> root_;
  std::vector<CallNode*> stack_;
};

/// Profile for the current thread. Each rank thread gets its own instance.
CallProfile& thread_profile();
/// Reset the current thread's profile (between benchmark repetitions).
void reset_thread_profile();

/// RAII region marker on the current thread's profile.
class ScopedRegion {
 public:
  explicit ScopedRegion(const std::string& name) {
    thread_profile().enter(name);
    timer_.restart();
  }
  ~ScopedRegion() { thread_profile().leave(timer_.seconds()); }

  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  WallTimer timer_;
};

}  // namespace cmtbone::prof
