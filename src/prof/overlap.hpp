#pragma once
// Accounting for the split-phase exchange window: how much compute ran
// between exchange begin() and finish(), and how long the finish-side wait
// still took. The ratio is the fraction of communication completion the
// overlap actually hid — the number the overlap_study bench reports.

namespace cmtbone::prof {

struct OverlapStats {
  long long windows = 0;        // split-phase exchanges accounted
  double begin_seconds = 0.0;   // post receives + pack + send
  double compute_seconds = 0.0; // work executed while messages were in flight
  double finish_seconds = 0.0;  // residual wait + unpack after the window

  void reset();

  /// compute / (compute + finish): 1.0 means the wait had fully drained by
  /// the time finish() was called; 0.0 means nothing was hidden (e.g. the
  /// blocking path, or an empty window). Zero-window stats report 0.
  double hidden_fraction() const;

  /// Seconds spent per window in the begin/finish halves combined — the
  /// exchange cost still on the critical path.
  double exposed_seconds_per_window() const;
};

}  // namespace cmtbone::prof
