#pragma once
// Accounting for the resilience layer: how fast survivors noticed a dead
// rank, how much checkpointing cost, and how expensive each recovery was
// (steps rolled back, mean time to repair). bench/recovery_study reports
// these next to the checkpoint-interval overhead sweep.

namespace cmtbone::prof {

struct RecoveryStats {
  // --- coordinated checkpointing (written by the coordinator on rank 0) ---
  long long checkpoints = 0;       // epochs committed
  long long checkpoint_bytes = 0;  // primary payload bytes, this rank
  double checkpoint_seconds = 0.0; // agree + serialize + write + replicate

  // --- failure detection (filled by comm::run after the job joins) -------
  long long detections = 0;          // survivor ranks that observed a failure
  double detection_seconds_sum = 0.0;
  double detection_seconds_max = 0.0;

  // --- recovery supervisor ------------------------------------------------
  long long failures = 0;      // attempts that ended in a failed epoch
  long long restores = 0;      // rollbacks that loaded a checkpoint
  long long steps_lost = 0;    // steps recomputed across all rollbacks
  double repair_seconds_sum = 0.0;  // failure observed -> state restored

  void reset();
  /// Accumulate another run's stats into this one (the service scheduler
  /// folds each dispatch's RecoveryReport into the job's lifetime totals).
  void merge(const RecoveryStats& other);

  /// Mean per-survivor latency between a rank dying and a blocked peer
  /// observing it (0 when no failure was detected).
  double mean_detection_seconds() const;
  /// Mean time to repair: failure observed -> rolled-back state restored
  /// (0 when nothing was ever restored).
  double mttr_seconds() const;
};

}  // namespace cmtbone::prof
