#include "prof/commprof.hpp"

#include <algorithm>
#include <cassert>

#include "util/table.hpp"

namespace cmtbone::prof {

CommProfiler::CommProfiler(int nranks)
    : nranks_(nranks), per_rank_(nranks), walltime_(nranks, 0.0) {}

void CommProfiler::record(int rank, const std::string& site, double seconds,
                          long long bytes) {
  assert(rank >= 0 && rank < nranks_);
  CommStat& s = per_rank_[rank][site];
  s.calls += 1;
  s.seconds += seconds;
  s.bytes += bytes;
}

void CommProfiler::set_rank_walltime(int rank, double seconds) {
  assert(rank >= 0 && rank < nranks_);
  walltime_[rank] = seconds;
}

void CommProfiler::reset() {
  for (auto& m : per_rank_) m.clear();
  std::fill(walltime_.begin(), walltime_.end(), 0.0);
}

double CommProfiler::rank_comm_seconds(int rank) const {
  double s = 0.0;
  for (const auto& [site, stat] : per_rank_[rank]) {
    (void)site;
    s += stat.seconds;
  }
  return s;
}

double CommProfiler::rank_walltime(int rank) const { return walltime_[rank]; }

std::vector<double> CommProfiler::comm_fraction_per_rank() const {
  std::vector<double> out(nranks_, 0.0);
  for (int r = 0; r < nranks_; ++r) {
    double wall = walltime_[r];
    if (wall > 0.0) out[r] = rank_comm_seconds(r) / wall;
  }
  return out;
}

std::vector<CommProfiler::SiteTotal> CommProfiler::site_totals() const {
  std::map<std::string, SiteTotal> acc;
  for (const auto& rank_map : per_rank_) {
    for (const auto& [site, stat] : rank_map) {
      SiteTotal& t = acc[site];
      t.site = site;
      t.calls += stat.calls;
      t.seconds += stat.seconds;
      t.total_bytes += stat.bytes;
    }
  }
  std::vector<SiteTotal> out;
  out.reserve(acc.size());
  for (auto& [site, t] : acc) {
    (void)site;
    t.avg_bytes = t.calls > 0 ? double(t.total_bytes) / double(t.calls) : 0.0;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(), [](const SiteTotal& a, const SiteTotal& b) {
    return a.seconds > b.seconds;
  });
  return out;
}

std::vector<CommProfiler::SiteTotal> CommProfiler::top_sites(int n) const {
  auto all = site_totals();
  if (int(all.size()) > n) all.resize(n);
  return all;
}

const std::map<std::string, CommStat>& CommProfiler::rank_sites(int rank) const {
  return per_rank_[rank];
}

util::Table CommProfiler::table_fraction_per_rank() const {
  util::Table t({"rank", "wall (s)", "comm (s)", "% in comm"});
  t.set_title("Time spent by each rank in communication routines (Fig. 8)");
  auto frac = comm_fraction_per_rank();
  for (int r = 0; r < nranks_; ++r) {
    t.add_row({std::to_string(r), util::Table::num(walltime_[r], 4),
               util::Table::num(rank_comm_seconds(r), 4),
               util::Table::pct(frac[r])});
  }
  return t;
}

util::Table CommProfiler::table_top_sites(int n) const {
  util::Table t({"call site", "calls", "time (s)", "% of comm time"});
  t.set_title("Time spent in the top " + std::to_string(n) +
              " comm call sites (Fig. 9)");
  auto sites = site_totals();
  double total = 0.0;
  for (const auto& s : sites) total += s.seconds;
  if (total <= 0.0) total = 1.0;
  int shown = 0;
  for (const auto& s : sites) {
    if (shown++ == n) break;
    t.add_row({s.site, std::to_string(s.calls), util::Table::num(s.seconds, 6),
               util::Table::pct(s.seconds / total)});
  }
  return t;
}

util::Table CommProfiler::table_message_sizes(int n) const {
  util::Table t({"call site", "calls", "total bytes", "avg bytes/msg"});
  t.set_title("Total and average message sizes per comm call site (Fig. 10)");
  auto sites = site_totals();
  // Fig. 10 covers the most frequently *called* sites that move data.
  std::sort(sites.begin(), sites.end(),
            [](const SiteTotal& a, const SiteTotal& b) { return a.calls > b.calls; });
  int shown = 0;
  for (const auto& s : sites) {
    if (s.total_bytes == 0) continue;
    if (shown++ == n) break;
    t.add_row({s.site, std::to_string(s.calls), std::to_string(s.total_bytes),
               util::Table::num(s.avg_bytes, 1)});
  }
  return t;
}

std::string CommProfiler::report_fraction_per_rank() const {
  return table_fraction_per_rank().str();
}

std::string CommProfiler::report_top_sites(int n) const {
  return table_top_sites(n).str();
}

std::string CommProfiler::report_message_sizes(int n) const {
  return table_message_sizes(n).str();
}

}  // namespace cmtbone::prof
