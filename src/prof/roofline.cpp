#include "prof/roofline.hpp"

#include <chrono>
#include <cstdlib>
#include <vector>

#include "kernels/simd_backend.hpp"

namespace cmtbone::prof {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Stream-triad bandwidth: a[i] = b[i] + s*c[i] over three arrays well past
// any cache (3 x 16 MB). Best of three timed passes after one warmup;
// bytes counted as two reads plus one write per element (write-allocate
// traffic not charged, matching STREAM convention).
double measure_triad_gbytes() {
  constexpr std::size_t kCount = 2u << 20;  // 2M doubles per array
  std::vector<double> a(kCount, 0.0), b(kCount, 1.0), c(kCount, 2.0);
  const double s = 0.42;
  auto pass = [&] {
    for (std::size_t i = 0; i < kCount; ++i) a[i] = b[i] + s * c[i];
  };
  pass();
  double best_sec = 0.0;
  for (int sample = 0; sample < 3; ++sample) {
    const double t0 = now_seconds();
    pass();
    const double sec = now_seconds() - t0;
    if (sample == 0 || sec < best_sec) best_sec = sec;
  }
  // Keep the result live so the passes cannot be dropped.
  static volatile double g_sink;
  g_sink = a[kCount / 2];
  (void)g_sink;
  const double bytes = 3.0 * sizeof(double) * double(kCount);
  return best_sec > 0.0 ? bytes / best_sec / 1e9 : 0.0;
}

double env_or(const char* var, double fallback_probe()) {
  if (const char* v = std::getenv(var)) {
    char* end = nullptr;
    const double x = std::strtod(v, &end);
    if (end != v && x > 0.0) return x;
  }
  return fallback_probe();
}

double probe_peak() {
  return kernels::simd_backend_best()->measure_peak_gflops();
}

Machine measure() {
  Machine m;
  m.isa = kernels::simd_backend_best()->name;
  m.peak_gflops = env_or(kPeakEnvVar, probe_peak);
  m.mem_gbytes = env_or(kBandwidthEnvVar, measure_triad_gbytes);
  return m;
}

}  // namespace

const Machine& machine() {
  static const Machine m = measure();
  return m;
}

double attainable_gflops(const Machine& m, double flops_per_byte) {
  const double bw_roof = m.mem_gbytes * flops_per_byte;
  return bw_roof < m.peak_gflops ? bw_roof : m.peak_gflops;
}

double percent_of_peak(const Machine& m, double measured_gflops) {
  return m.peak_gflops > 0.0 ? 100.0 * measured_gflops / m.peak_gflops : 0.0;
}

double percent_of_attainable(const Machine& m, double measured_gflops,
                             double flops_per_byte) {
  const double roof = attainable_gflops(m, flops_per_byte);
  return roof > 0.0 ? 100.0 * measured_gflops / roof : 0.0;
}

}  // namespace cmtbone::prof
