#include "prof/callprof.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

namespace cmtbone::prof {

CallNode* CallNode::child(const std::string& child_name) {
  auto& slot = children[child_name];
  if (!slot) {
    slot = std::make_unique<CallNode>();
    slot->name = child_name;
  }
  return slot.get();
}

double CallNode::exclusive_seconds() const {
  double s = seconds;
  for (const auto& [name, node] : children) {
    (void)name;
    s -= node->seconds;
  }
  return s;
}

CallProfile::CallProfile() : root_(std::make_unique<CallNode>()) {
  root_->name = "<root>";
  stack_.push_back(root_.get());
}

void CallProfile::enter(const std::string& name) {
  CallNode* node = stack_.back()->child(name);
  node->calls += 1;
  stack_.push_back(node);
}

void CallProfile::leave(double seconds) {
  stack_.back()->seconds += seconds;
  stack_.pop_back();
}

void CallProfile::merge(const CallProfile& other) {
  std::function<void(CallNode&, const CallNode&)> rec =
      [&rec](CallNode& dst, const CallNode& src) {
        dst.calls += src.calls;
        dst.seconds += src.seconds;
        for (const auto& [name, child] : src.children) {
          rec(*dst.child(name), *child);
        }
      };
  rec(*root_, other.root());
}

std::vector<CallProfile::FlatEntry> CallProfile::flat() const {
  std::map<std::string, FlatEntry> acc;
  std::function<void(const CallNode&)> rec = [&](const CallNode& node) {
    if (node.name != "<root>") {
      FlatEntry& e = acc[node.name];
      e.name = node.name;
      e.calls += node.calls;
      e.inclusive += node.seconds;
      e.exclusive += node.exclusive_seconds();
    }
    for (const auto& [name, child] : node.children) {
      (void)name;
      rec(*child);
    }
  };
  rec(*root_);

  std::vector<FlatEntry> out;
  out.reserve(acc.size());
  for (auto& [name, e] : acc) {
    (void)name;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const FlatEntry& a, const FlatEntry& b) {
    return a.exclusive > b.exclusive;
  });
  return out;
}

double CallProfile::total_seconds() const {
  double s = 0.0;
  for (const auto& [name, child] : root_->children) {
    (void)name;
    s += child->seconds;
  }
  return s;
}

std::string CallProfile::tree_report() const {
  std::ostringstream os;
  double total = total_seconds();
  if (total <= 0.0) total = 1.0;
  std::function<void(const CallNode&, int)> rec = [&](const CallNode& node,
                                                      int depth) {
    if (node.name != "<root>") {
      char buf[256];
      std::snprintf(buf, sizeof buf, "%*s%-*s %10.4fs %6.1f%% calls=%ld\n",
                    depth * 2, "", 36 - depth * 2, node.name.c_str(),
                    node.seconds, 100.0 * node.seconds / total, node.calls);
      os << buf;
    }
    // Children ordered by inclusive time, heaviest first.
    std::vector<const CallNode*> kids;
    for (const auto& [name, child] : node.children) {
      (void)name;
      kids.push_back(child.get());
    }
    std::sort(kids.begin(), kids.end(), [](const CallNode* a, const CallNode* b) {
      return a->seconds > b->seconds;
    });
    for (const CallNode* kid : kids) rec(*kid, depth + 1);
  };
  rec(*root_, -1);
  return os.str();
}

namespace {
thread_local std::unique_ptr<CallProfile> t_profile;
}

CallProfile& thread_profile() {
  if (!t_profile) t_profile = std::make_unique<CallProfile>();
  return *t_profile;
}

void reset_thread_profile() { t_profile = std::make_unique<CallProfile>(); }

}  // namespace cmtbone::prof
