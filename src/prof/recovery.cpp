#include "prof/recovery.hpp"

namespace cmtbone::prof {

void RecoveryStats::reset() { *this = RecoveryStats{}; }

void RecoveryStats::merge(const RecoveryStats& other) {
  checkpoints += other.checkpoints;
  checkpoint_bytes += other.checkpoint_bytes;
  checkpoint_seconds += other.checkpoint_seconds;
  detections += other.detections;
  detection_seconds_sum += other.detection_seconds_sum;
  detection_seconds_max =
      detection_seconds_max > other.detection_seconds_max
          ? detection_seconds_max
          : other.detection_seconds_max;
  failures += other.failures;
  restores += other.restores;
  steps_lost += other.steps_lost;
  repair_seconds_sum += other.repair_seconds_sum;
}

double RecoveryStats::mean_detection_seconds() const {
  return detections > 0 ? detection_seconds_sum / double(detections) : 0.0;
}

double RecoveryStats::mttr_seconds() const {
  return restores > 0 ? repair_seconds_sum / double(restores) : 0.0;
}

}  // namespace cmtbone::prof
