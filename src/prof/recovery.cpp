#include "prof/recovery.hpp"

namespace cmtbone::prof {

void RecoveryStats::reset() { *this = RecoveryStats{}; }

double RecoveryStats::mean_detection_seconds() const {
  return detections > 0 ? detection_seconds_sum / double(detections) : 0.0;
}

double RecoveryStats::mttr_seconds() const {
  return restores > 0 ? repair_seconds_sum / double(restores) : 0.0;
}

}  // namespace cmtbone::prof
