#include "comm/comm.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <tuple>

namespace cmtbone::comm {

// ---- SiteScope -------------------------------------------------------------

namespace {
thread_local std::string t_site;
}

SiteScope::SiteScope(std::string site) : previous_(t_site) {
  t_site = std::move(site);
}

SiteScope::~SiteScope() { t_site = previous_; }

const std::string& SiteScope::current() { return t_site; }

// ---- construction ----------------------------------------------------------

Comm::Comm(Universe& universe, int rank)
    : uni_(&universe), ctx_(0), rank_(rank) {
  group_.resize(universe.size());
  g2l_.resize(universe.size());
  for (int r = 0; r < universe.size(); ++r) {
    group_[r] = r;
    g2l_[r] = r;
  }
}

Comm::Comm(Universe& universe, int ctx, std::vector<int> group, int my_index)
    : uni_(&universe), ctx_(ctx), rank_(my_index), group_(std::move(group)) {
  g2l_.assign(universe.size(), -1);
  for (int r = 0; r < int(group_.size()); ++r) g2l_[group_[r]] = r;
}

int Comm::local_of_global(int global) const {
  assert(global >= 0 && global < int(g2l_.size()));
  int local = g2l_[global];
  assert(local >= 0 && "message from a rank outside this communicator");
  return local;
}

// ---- profiling --------------------------------------------------------------

void Comm::record(const char* op, double seconds, long long bytes,
                  int global_peer, int tag) const {
  prof::CommProfiler* prof = uni_->profiler();
  if (prof != nullptr) {
    const std::string& site = SiteScope::current();
    if (site.empty()) {
      prof->record(group_[rank_], op, seconds, bytes);
    } else {
      prof->record(group_[rank_], site + "/" + op, seconds, bytes);
    }
  }

  trace::Tracer* tracer = uni_->tracer();
  if (tracer != nullptr) {
    const double t_end = tracer->now();
    const double t_start = t_end - seconds;
    const int me = group_[rank_];
    if (std::strcmp(op, "MPI_Send") == 0 || std::strcmp(op, "MPI_Isend") == 0) {
      tracer->on_send(me, global_peer, tag, bytes, t_start, t_end);
    } else if (std::strcmp(op, "MPI_Sendrecv") == 0) {
      // The receive half is traced separately by the caller.
      tracer->on_send(me, global_peer, tag, bytes, t_start, t_end);
    } else if (std::strcmp(op, "MPI_Recv") == 0) {
      tracer->on_recv(me, global_peer, tag, bytes, t_start, t_end);
    } else if (std::strcmp(op, "MPI_Wait") == 0 ||
               std::strcmp(op, "MPI_Waitall") == 0 ||
               std::strcmp(op, "MPI_Test") == 0 ||
               std::strcmp(op, "MPI_Irecv") == 0 ||
               std::strcmp(op, "MPI_Iprobe") == 0 ||
               std::strcmp(op, "MPI_Probe") == 0) {
      // Waits are traced per matched receive (see wait/waitall).
    } else {
      tracer->on_collective(me, op, bytes, t_start, t_end);
    }
  }
}

// ---- raw (unprofiled) p2p ---------------------------------------------------
//
// The chaos hooks live here, below every profiled operation AND inside
// every collective tree (collectives are built from these three calls), so
// one hook site perturbs the whole runtime. Hooks run before the mailbox
// lock is taken — they may sleep or throw ChaosAbortInjected.

void Comm::send_raw(const void* buf, std::size_t bytes, int dest, int tag) {
  uni_->check_abort();
  if (chaos::ChaosEngine* eng = uni_->chaos()) {
    eng->on_rank_op(group_[rank_], chaos::Hook::kSend);
  }
  assert(dest >= 0 && dest < size());
  Envelope env;
  env.ctx = ctx_;
  env.src = group_[rank_];
  env.tag = tag;
  const auto* p = static_cast<const std::byte*>(buf);
  env.payload.assign(p, p + bytes);
  uni_->mailbox(group_[dest]).deliver(std::move(env));
}

Request Comm::post_recv_raw(void* buf, std::size_t capacity, int src, int tag) {
  uni_->check_abort();
  if (chaos::ChaosEngine* eng = uni_->chaos()) {
    eng->on_rank_op(group_[rank_], chaos::Hook::kRecvPost);
  }
  int global_src = src == kAnySource ? kAnySource : group_.at(src);
  return my_box().post_recv(ctx_, global_src, tag, buf, capacity);
}

Status Comm::wait_raw(const Request& req) {
  if (chaos::ChaosEngine* eng = uni_->chaos()) {
    eng->on_rank_op(group_[rank_], chaos::Hook::kWait);
  }
  // Block on the poster's mailbox; job-aware so a crashed peer or a
  // provable deadlock unwinds this rank instead of hanging it.
  return my_box().wait(req, uni_);
}

void Comm::waitall_raw(std::span<Request> reqs) {
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    try {
      wait_raw(reqs[i]);
    } catch (...) {
      // The mailbox withdrew the request it was waiting on (and a chaos
      // hook may have thrown before the wait even started), so withdraw
      // from i onward: the rest are still posted against buffers this
      // unwind is about to destroy.
      for (std::size_t j = i; j < reqs.size(); ++j) {
        my_box().cancel(reqs[j]);
      }
      throw;
    }
  }
}

// ---- profiled p2p -----------------------------------------------------------

void Comm::send_bytes(const void* buf, std::size_t bytes, int dest, int tag) {
  assert(tag >= 0 && tag < kCollectiveTagBase && "user tags must stay below kCollectiveTagBase");
  prof::WallTimer t;
  send_raw(buf, bytes, dest, tag);
  record("MPI_Send", t.seconds(), (long long)bytes, group_[dest], tag);
}

Request Comm::isend_bytes(const void* buf, std::size_t bytes, int dest, int tag) {
  assert(tag >= 0 && tag < kCollectiveTagBase);
  prof::WallTimer t;
  // Eager/buffered: the payload is copied out immediately, so the returned
  // request is already complete (matches MPI_Isend + instant MPI_Wait for
  // small messages on a real fabric).
  send_raw(buf, bytes, dest, tag);
  record("MPI_Isend", t.seconds(), (long long)bytes, group_[dest], tag);
  auto rs = std::make_shared<RequestState>();
  rs->done = true;
  rs->is_recv = false;
  rs->home = &my_box();
  return Request(std::move(rs));
}

Request Comm::isend_payload(std::vector<std::byte>&& payload, int dest,
                            int tag) {
  assert(tag >= 0 && tag < kCollectiveTagBase);
  prof::WallTimer t;
  const long long bytes = (long long)payload.size();
  // Mirror send_raw (abort check + chaos hook before the mailbox), but move
  // the caller's buffer into the envelope instead of copying it — the
  // payload crosses the runtime untouched until the receiver unpacks it.
  uni_->check_abort();
  if (chaos::ChaosEngine* eng = uni_->chaos()) {
    eng->on_rank_op(group_[rank_], chaos::Hook::kSend);
  }
  assert(dest >= 0 && dest < size());
  Envelope env;
  env.ctx = ctx_;
  env.src = group_[rank_];
  env.tag = tag;
  env.payload = std::move(payload);
  uni_->mailbox(group_[dest]).deliver(std::move(env));
  record("MPI_Isend", t.seconds(), bytes, group_[dest], tag);
  auto rs = std::make_shared<RequestState>();
  rs->done = true;
  rs->is_recv = false;
  rs->home = &my_box();
  return Request(std::move(rs));
}

Request Comm::irecv_bytes(void* buf, std::size_t capacity, int src, int tag) {
  prof::WallTimer t;
  Request req = post_recv_raw(buf, capacity, src, tag);
  record("MPI_Irecv", t.seconds(), 0);
  return req;
}

Status Comm::recv_bytes(void* buf, std::size_t capacity, int src, int tag) {
  prof::WallTimer t;
  Request req = post_recv_raw(buf, capacity, src, tag);
  Status s = wait_raw(req);
  int global_src = s.source;
  if (s.source >= 0) s.source = local_of_global(s.source);
  record("MPI_Recv", t.seconds(), (long long)s.bytes, global_src, s.tag);
  return s;
}

Status Comm::wait(Request& req) {
  prof::WallTimer t;
  Status s = wait_raw(req);
  bool was_recv = req.valid() && req.state()->is_recv;
  int global_src = s.source;
  if (s.source >= 0) s.source = local_of_global(s.source);
  record("MPI_Wait", t.seconds(), 0);
  if (was_recv && global_src >= 0) {
    trace_recv_completion(global_src, s.tag, (long long)s.bytes, t.seconds());
  }
  req = Request();
  return s;
}

void Comm::waitall(std::span<Request> reqs) {
  prof::WallTimer t;
  waitall_raw(reqs);
  record("MPI_Waitall", t.seconds(), 0);
  // Trace each matched receive; the blocking interval is shared.
  for (Request& r : reqs) {
    if (r.valid() && r.state()->is_recv) {
      const Status& s = r.state()->status;
      if (s.source >= 0) {
        trace_recv_completion(s.source, s.tag, (long long)s.bytes, t.seconds());
      }
    }
    r = Request();
  }
}

void Comm::trace_recv_completion(int global_src, int tag, long long bytes,
                                 double blocked_seconds) const {
  trace::Tracer* tracer = uni_->tracer();
  if (tracer == nullptr) return;
  const double t_end = tracer->now();
  tracer->on_recv(group_[rank_], global_src, tag, bytes,
                  t_end - blocked_seconds, t_end);
}

int Comm::waitany(std::span<Request> reqs, Status* status) {
  prof::WallTimer t;
  // Completion order is only observable through polling; requests complete
  // under the mailbox lock, so a short poll period costs little and keeps
  // the implementation free of extra per-request condition variables.
  bool doomed_seen = false;
  for (;;) {
    bool any_valid = false;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!reqs[i].valid()) continue;
      any_valid = true;
      if (my_box().test(reqs[i])) {
        Status s = reqs[i].state()->status;
        bool was_recv = reqs[i].state()->is_recv;
        record("MPI_Waitany", t.seconds(), 0);
        if (was_recv && s.source >= 0) {
          trace_recv_completion(s.source, s.tag, (long long)s.bytes,
                                t.seconds());
          s.source = local_of_global(s.source);
        }
        if (status != nullptr) *status = s;
        reqs[i] = Request();
        return int(i);
      }
    }
    if (!any_valid) {
      record("MPI_Waitany", t.seconds(), 0);
      return -1;
    }
    try {
      uni_->check_abort();
      // Deliveries happen-before a rank's exit, so one full rescan after
      // observing "everyone else exited" is conclusive. (check_abort ran
      // after the last_rank_standing observation, so a crashed peer has
      // already been reported as RankFailed/JobAborted above, never here.)
      if (doomed_seen) {
        // Name the first still-pending receive so the failure is
        // diagnosable.
        for (const Request& r : reqs) {
          if (r.valid() && r.state()->is_recv) {
            const RequestState& rs = *r.state();
            throw DeadlockDetected(group_[rank_], rs.ctx, rs.src, rs.tag);
          }
        }
        throw DeadlockDetected{};
      }
    } catch (...) {
      // Unwinding with receives still posted: withdraw them so deliveries
      // from ranks that have not yet noticed the failure cannot write into
      // buffers the caller is destroying.
      for (Request& r : reqs) my_box().cancel(r);
      throw;
    }
    if (uni_->last_rank_standing()) {
      // A chaos-held envelope must not masquerade as a missing sender.
      my_box().flush_held();
      doomed_seen = true;
      continue;
    }
    std::this_thread::yield();
  }
}

void Comm::cancel(Request& req) {
  my_box().cancel(req);
  req = Request();
}

bool Comm::test(Request& req) {
  prof::WallTimer t;
  bool done = my_box().test(req);
  record("MPI_Test", t.seconds(), 0);
  if (done) req = Request();
  return done;
}

Status Comm::probe(int src, int tag) {
  prof::WallTimer t;
  int global_src = src == kAnySource ? kAnySource : group_.at(src);
  Status s = my_box().probe(ctx_, global_src, tag, uni_);
  if (s.source >= 0) s.source = local_of_global(s.source);
  record("MPI_Probe", t.seconds(), 0);
  return s;
}

bool Comm::iprobe(int src, int tag, Status* status) {
  prof::WallTimer t;
  int global_src = src == kAnySource ? kAnySource : group_.at(src);
  bool hit = my_box().iprobe(ctx_, global_src, tag, status);
  if (hit && status != nullptr && status->source >= 0) {
    status->source = local_of_global(status->source);
  }
  record("MPI_Iprobe", t.seconds(), 0);
  return hit;
}

// ---- collectives -------------------------------------------------------------

void Comm::barrier() {
  prof::WallTimer t;
  const int tag = next_coll_tag();
  const int p = size();
  // Dissemination barrier: ceil(log2 P) rounds; round k signals rank+2^k.
  char token = 0;
  for (int k = 1; k < p; k <<= 1) {
    int dest = (rank_ + k) % p;
    int src = (rank_ - k % p + p) % p;
    send_raw(&token, 1, dest, tag + 0);
    char in = 0;
    wait_raw(post_recv_raw(&in, 1, src, tag + 0));
  }
  record("MPI_Barrier", t.seconds(), 0);
}

void Comm::bcast_tree(void* buf, std::size_t bytes, int root, int tag) {
  const int p = size();
  const int vr = (rank_ - root + p) % p;
  // Binomial tree: receive from parent once, then forward to children in
  // decreasing mask order.
  int mask = 1;
  while (mask < p) mask <<= 1;
  // Find the bit where vr receives: lowest set bit of vr.
  if (vr != 0) {
    int recv_mask = vr & -vr;
    int parent = ((vr & ~recv_mask) + root) % p;
    wait_raw(post_recv_raw(buf, bytes, parent, tag));
    mask = recv_mask;
  }
  // Children: vr + m for each m below our receive bit (or below p for root).
  int m = (vr == 0) ? mask : (vr & -vr);
  for (m >>= 1; m > 0; m >>= 1) {
    int child = vr + m;
    if (child < p) {
      send_raw(buf, bytes, (child + root) % p, tag);
    }
  }
}

void Comm::bcast_bytes(void* buf, std::size_t bytes, int root) {
  prof::WallTimer t;
  bcast_tree(buf, bytes, root, next_coll_tag());
  record("MPI_Bcast", t.seconds(), (long long)bytes);
}

Comm Comm::split(int color, int key) {
  prof::WallTimer t;
  const int p = size();

  // 1. Share (color, key) triples.
  struct Entry {
    int color, key, rank;
  };
  Entry mine{color, key, rank_};
  std::vector<Entry> all = allgather(std::span<const Entry>(&mine, 1));

  // 2. Rank 0 allocates one fresh context per distinct color and shares the
  //    assignment; contexts must be identical across members and unique in
  //    the universe.
  std::vector<int> colors;
  for (const Entry& e : all) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  std::vector<int> ctxs(colors.size(), 0);
  if (rank_ == 0) {
    for (auto& c : ctxs) c = uni_->next_ctx();
  }
  bcast_tree(ctxs.data(), ctxs.size() * sizeof(int), 0, next_coll_tag());

  // 3. Build my group, ordered by (key, parent rank).
  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  std::vector<int> group;
  int my_index = -1;
  for (const Entry& e : members) {
    if (e.rank == rank_) my_index = int(group.size());
    group.push_back(group_[e.rank]);
  }
  assert(my_index >= 0);

  std::size_t color_idx =
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin();
  int ctx = ctxs[color_idx];
  (void)p;
  record("MPI_Comm_split", t.seconds(), 0);
  return Comm(*uni_, ctx, std::move(group), my_index);
}

}  // namespace cmtbone::comm
