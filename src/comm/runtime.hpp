#pragma once
// Job launcher: spawns one thread per rank and runs the user body with a
// world communicator, the analogue of mpirun + MPI_Init.
//
// Every rank body runs to completion before run() returns. If a rank throws,
// the job is aborted (blocked peers unwind via JobAborted) and the first
// real exception is rethrown on the caller's thread.

#include <functional>
#include <vector>

#include "comm/comm.hpp"
#include "prof/callprof.hpp"
#include "prof/commprof.hpp"
#include "prof/recovery.hpp"

namespace cmtbone::comm {

struct RunOptions {
  /// Attach a communication profiler (mpiP proxy). Rank wall times are
  /// recorded into it automatically.
  prof::CommProfiler* comm_profiler = nullptr;
  /// If non-null, receives each rank's call-tree profile (gprof proxy),
  /// indexed by rank.
  std::vector<prof::CallProfile>* call_profiles = nullptr;
  /// Record a communication trace for behavioral emulation (trace/replay).
  trace::Tracer* tracer = nullptr;
  /// Attach a chaos engine: seeded schedule perturbation and fault
  /// injection threaded through the mailbox and collective trees. The
  /// caller owns the engine (construct it with the job's rank count) and
  /// can read its schedule digest after run() returns.
  chaos::ChaosEngine* chaos = nullptr;
  /// Accumulate failure-detection latencies (how long each surviving rank
  /// took to observe a dead peer) into these stats after the job joins.
  prof::RecoveryStats* recovery = nullptr;
  /// Epoch label carried by RankFailed on survivors (the recovery
  /// supervisor sets it to the attempt's restore epoch; -1 = no recovery).
  long long epoch = -1;
};

/// Run `body` on `nranks` ranks. Blocks until all ranks finish.
void run(int nranks, const std::function<void(Comm&)>& body,
         const RunOptions& options = {});

}  // namespace cmtbone::comm
