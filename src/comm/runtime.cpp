#include "comm/runtime.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "prof/timer.hpp"

namespace cmtbone::comm {

void run(int nranks, const std::function<void(Comm&)>& body,
         const RunOptions& options) {
  if (nranks <= 0) throw std::invalid_argument("comm::run: nranks must be > 0");
  if (options.chaos != nullptr && options.chaos->nranks() < nranks) {
    throw std::invalid_argument(
        "comm::run: chaos engine sized for fewer ranks than the job");
  }

  Universe universe(nranks, options.comm_profiler, options.tracer,
                    options.chaos);
  universe.set_epoch(options.epoch);
  std::vector<std::exception_ptr> errors(nranks);
  // Per-rank failure-detection latency, sampled at the moment a survivor's
  // blocked operation unwound (< 0 = this rank observed no failure). Each
  // slot is written only by its own rank thread and read after join.
  std::vector<double> detection(nranks, -1.0);
  if (options.call_profiles != nullptr) {
    options.call_profiles->clear();
    options.call_profiles->resize(nranks);
  }

  std::vector<std::thread> threads;
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      prof::reset_thread_profile();
      Comm world(universe, r);
      prof::WallTimer wall;
      try {
        body(world);
      } catch (const JobAborted&) {
        // The echo of a failure that originated elsewhere: record how long
        // this survivor took to notice, but do not claim the failure.
        errors[r] = std::current_exception();
        detection[r] = universe.seconds_since_failure();
        universe.abort();
      } catch (...) {
        // A real failure originating on this rank: attribute it so blocked
        // peers unwind with RankFailed instead of a bare abort (or, worse,
        // a spurious deadlock verdict).
        errors[r] = std::current_exception();
        universe.mark_failed(r);
      }
      universe.rank_finished();
      if (options.comm_profiler != nullptr) {
        options.comm_profiler->set_rank_walltime(r, wall.seconds());
      }
      if (options.call_profiles != nullptr) {
        (*options.call_profiles)[r] = std::move(prof::thread_profile());
        prof::reset_thread_profile();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (options.recovery != nullptr) {
    for (double d : detection) {
      if (d < 0.0) continue;
      options.recovery->detections += 1;
      options.recovery->detection_seconds_sum += d;
      options.recovery->detection_seconds_max =
          std::max(options.recovery->detection_seconds_max, d);
    }
  }

  // Rethrow the first real failure; JobAborted is only the echo of it.
  std::exception_ptr aborted;
  for (const auto& err : errors) {
    if (!err) continue;
    try {
      std::rethrow_exception(err);
    } catch (const JobAborted&) {
      aborted = err;
    } catch (...) {
      std::rethrow_exception(err);
    }
  }
  if (aborted) std::rethrow_exception(aborted);
}

}  // namespace cmtbone::comm
