#include "comm/runtime.hpp"

#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "prof/timer.hpp"

namespace cmtbone::comm {

void run(int nranks, const std::function<void(Comm&)>& body,
         const RunOptions& options) {
  if (nranks <= 0) throw std::invalid_argument("comm::run: nranks must be > 0");
  if (options.chaos != nullptr && options.chaos->nranks() < nranks) {
    throw std::invalid_argument(
        "comm::run: chaos engine sized for fewer ranks than the job");
  }

  Universe universe(nranks, options.comm_profiler, options.tracer,
                    options.chaos);
  std::vector<std::exception_ptr> errors(nranks);
  if (options.call_profiles != nullptr) {
    options.call_profiles->clear();
    options.call_profiles->resize(nranks);
  }

  std::vector<std::thread> threads;
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      prof::reset_thread_profile();
      Comm world(universe, r);
      prof::WallTimer wall;
      try {
        body(world);
      } catch (...) {
        errors[r] = std::current_exception();
        universe.abort();
      }
      universe.rank_finished();
      if (options.comm_profiler != nullptr) {
        options.comm_profiler->set_rank_walltime(r, wall.seconds());
      }
      if (options.call_profiles != nullptr) {
        (*options.call_profiles)[r] = std::move(prof::thread_profile());
        prof::reset_thread_profile();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Rethrow the first real failure; JobAborted is only the echo of it.
  std::exception_ptr aborted;
  for (const auto& err : errors) {
    if (!err) continue;
    try {
      std::rethrow_exception(err);
    } catch (const JobAborted&) {
      aborted = err;
    } catch (...) {
      std::rethrow_exception(err);
    }
  }
  if (aborted) std::rethrow_exception(aborted);
}

}  // namespace cmtbone::comm
