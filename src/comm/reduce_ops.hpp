#pragma once
// Reduction operators for the collective operations (MPI_Op analogue).

#include <algorithm>

namespace cmtbone::comm {

enum class ReduceOp { kSum, kProd, kMin, kMax };

template <class T>
T apply(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  return a;
}

inline const char* name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kProd: return "prod";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMax: return "max";
  }
  return "?";
}

}  // namespace cmtbone::comm
