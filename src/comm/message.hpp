#pragma once
// Message envelope and matching rules for the in-process message-passing
// runtime.
//
// This runtime substitutes for MPI in the reproduction (no MPI library is
// available in the build environment). It preserves MPI's matching
// semantics: a receive matches on (context, source, tag) with wildcard
// source/tag, and messages between a given (source, dest, context) pair
// match in posting order (non-overtaking).

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmtbone::comm {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// User-visible tags must stay below this; the collective implementations
/// use the tag space above it so user p2p traffic can never match
/// collective-internal messages.
inline constexpr int kCollectiveTagBase = 1 << 20;

/// A message in flight. `src` is the *global* rank of the sender; `ctx`
/// identifies the communicator (so split communicators do not cross-match).
struct Envelope {
  int ctx = 0;
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Printable names for a receive spec's wildcards (diagnostics).
inline std::string source_name(int src) {
  return src == kAnySource ? std::string("any") : std::to_string(src);
}
inline std::string tag_name(int tag) {
  return tag == kAnyTag ? std::string("any") : std::to_string(tag);
}
/// "rank R blocked on recv(ctx=C, src=S, tag=T)" — shared by the failure
/// exceptions so a failing chaos seed is diagnosable from the text alone.
inline std::string blocked_recv_string(int rank, int ctx, int src, int tag) {
  return "rank " + std::to_string(rank) + " blocked on recv(ctx=" +
         std::to_string(ctx) + ", src=" + source_name(src) +
         ", tag=" + tag_name(tag) + ")";
}

/// Thrown out of blocked operations when another rank aborted with an
/// exception, so the whole job unwinds instead of deadlocking. The detailed
/// form names the unwound rank and the receive it was stuck in.
struct JobAborted : std::runtime_error {
  JobAborted() : std::runtime_error("comm: job aborted by another rank") {}
  JobAborted(int rank, int ctx, int src, int tag)
      : std::runtime_error("comm: job aborted by another rank; " +
                           blocked_recv_string(rank, ctx, src, tag)) {}

 protected:
  explicit JobAborted(const std::string& what) : std::runtime_error(what) {}
};

/// Failure status delivered to survivors: the runtime identified *which*
/// rank died (its body unwound with a non-echo exception), so every peer
/// blocked on it — waits, probes, collective trees, the crystal router —
/// exits with the failed rank and the job's epoch instead of a generic
/// abort or a spurious deadlock verdict. Derives from JobAborted so
/// pre-resilience handlers keep working.
struct RankFailed : JobAborted {
  int failed_rank = -1;
  long long epoch = -1;
  RankFailed(int failed, long long job_epoch)
      : JobAborted("comm: rank " + std::to_string(failed) +
                   " failed (epoch " + std::to_string(job_epoch) + ")"),
        failed_rank(failed),
        epoch(job_epoch) {}
  RankFailed(int failed, long long job_epoch, int rank, int ctx, int src,
             int tag)
      : JobAborted("comm: rank " + std::to_string(failed) + " failed (epoch " +
                   std::to_string(job_epoch) + "); " +
                   blocked_recv_string(rank, ctx, src, tag)),
        failed_rank(failed),
        epoch(job_epoch) {}
};

/// Thrown out of a blocked operation that can provably never complete:
/// every other rank has already exited its body, so no one is left to send.
/// The usual cause is a collective called inside a rank-conditional block.
/// The detailed form names the blocked rank and the stuck receive's
/// (context, source, tag) so failing seeds can be diagnosed from the text.
struct DeadlockDetected : std::runtime_error {
  DeadlockDetected()
      : std::runtime_error(
            "comm: blocked operation cannot complete - all other ranks have "
            "exited (collective inside a rank-conditional block?)") {}
  DeadlockDetected(int rank, int ctx, int src, int tag)
      : std::runtime_error(
            "comm: blocked operation cannot complete - all other ranks have "
            "exited; " +
            blocked_recv_string(rank, ctx, src, tag) +
            " (collective inside a rank-conditional block?)") {}
};

/// Job-level state blocked operations poll to unwind instead of hanging.
class JobControl {
 public:
  virtual ~JobControl() = default;
  /// True once any rank aborted with an exception.
  virtual bool aborted() const = 0;
  /// True when the calling rank is the only one still running.
  virtual bool last_rank_standing() const = 0;
  /// Global rank identified as the failure's origin, or -1 while unknown
  /// (abort seen but the failing rank has not been attributed yet).
  virtual int failed_rank() const { return -1; }
  /// Epoch label the job was launched with (-1 outside recovery).
  virtual long long failure_epoch() const { return -1; }
};

/// Unwind a blocked operation on an aborted job with the most specific
/// exception available: RankFailed once the origin is known, JobAborted
/// otherwise. `rank` and the (ctx, src, tag) spec name the blocked receive.
[[noreturn]] inline void throw_blocked_abort(const JobControl& job, int rank,
                                             int ctx, int src, int tag) {
  const int failed = job.failed_rank();
  if (failed >= 0) {
    throw RankFailed(failed, job.failure_epoch(), rank, ctx, src, tag);
  }
  throw JobAborted(rank, ctx, src, tag);
}

/// Does an envelope satisfy a posted receive's (ctx, src, tag) spec?
inline bool matches(const Envelope& env, int ctx, int src, int tag) {
  return env.ctx == ctx && (src == kAnySource || env.src == src) &&
         (tag == kAnyTag || env.tag == tag);
}

}  // namespace cmtbone::comm
