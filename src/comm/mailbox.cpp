#include "comm/mailbox.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace cmtbone::comm {

void Mailbox::complete_locked(RequestState& rs, const Envelope& env) {
  if (env.payload.size() > rs.capacity) {
    throw std::runtime_error("comm: message truncation (recv buffer " +
                             std::to_string(rs.capacity) + " B < message " +
                             std::to_string(env.payload.size()) + " B)");
  }
  if (!env.payload.empty()) {
    std::memcpy(rs.buf, env.payload.data(), env.payload.size());
  }
  rs.status.source = env.src;
  rs.status.tag = env.tag;
  rs.status.bytes = env.payload.size();
  rs.done = true;
}

void Mailbox::deliver(Envelope env) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    RequestState& rs = **it;
    if (matches(env, rs.ctx, rs.src, rs.tag)) {
      complete_locked(rs, env);
      pending_.erase(it);
      cv_.notify_all();
      return;
    }
  }
  unexpected_.push_back(std::move(env));
  // Probers may be sleeping via wait(); wake them so iprobe loops make
  // progress. (wait() itself sleeps on cv_ too.)
  cv_.notify_all();
}

Request Mailbox::post_recv(int ctx, int src, int tag, void* buf,
                           std::size_t capacity) {
  auto rs = std::make_shared<RequestState>();
  rs->is_recv = true;
  rs->ctx = ctx;
  rs->src = src;
  rs->tag = tag;
  rs->buf = buf;
  rs->capacity = capacity;
  rs->home = this;

  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(*it, ctx, src, tag)) {
      complete_locked(*rs, *it);
      unexpected_.erase(it);
      return Request(std::move(rs));
    }
  }
  pending_.push_back(rs);
  return Request(std::move(rs));
}

Status Mailbox::wait(const Request& req, const JobControl* job) {
  if (!req.valid()) return {};
  RequestState& rs = *req.state();
  if (!rs.is_recv) return rs.status;  // sends complete at post time
  std::unique_lock<std::mutex> lock(mu_);
  if (job == nullptr) {
    cv_.wait(lock, [&rs] { return rs.done; });
  } else {
    // Poll job state at a coarse period so a crashed peer (or a provable
    // deadlock) unwinds this rank instead of leaving it blocked forever.
    while (!cv_.wait_for(lock, std::chrono::milliseconds(20),
                         [&rs] { return rs.done; })) {
      if (job->aborted()) throw JobAborted{};
      if (job->last_rank_standing()) throw DeadlockDetected{};
    }
  }
  return rs.status;
}

bool Mailbox::test(const Request& req) {
  if (!req.valid()) return true;
  RequestState& rs = *req.state();
  if (!rs.is_recv) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return rs.done;
}

Status Mailbox::probe(int ctx, int src, int tag, const JobControl* job) {
  std::unique_lock<std::mutex> lock(mu_);
  auto find = [&]() -> const Envelope* {
    for (const Envelope& env : unexpected_) {
      if (matches(env, ctx, src, tag)) return &env;
    }
    return nullptr;
  };
  // Job-state checks run under the mailbox mutex immediately after a failed
  // scan: a sender mid-deliver is blocked on this same mutex (so it has not
  // exited yet), which makes "no match AND everyone else exited" a proof of
  // deadlock rather than a race with in-flight delivery.
  const Envelope* hit = nullptr;
  while ((hit = find()) == nullptr) {
    if (job == nullptr) {
      cv_.wait(lock);
    } else {
      if (job->aborted()) throw JobAborted{};
      if (job->last_rank_standing()) throw DeadlockDetected{};
      cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
  }
  Status s;
  s.source = hit->src;
  s.tag = hit->tag;
  s.bytes = hit->payload.size();
  return s;
}

bool Mailbox::iprobe(int ctx, int src, int tag, Status* status) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Envelope& env : unexpected_) {
    if (matches(env, ctx, src, tag)) {
      if (status != nullptr) {
        status->source = env.src;
        status->tag = env.tag;
        status->bytes = env.payload.size();
      }
      return true;
    }
  }
  return false;
}

}  // namespace cmtbone::comm
