#include "comm/mailbox.hpp"

#include <chrono>
#include <cstring>
#include <set>
#include <stdexcept>
#include "util/bytes.hpp"

namespace cmtbone::comm {

void Mailbox::configure(int owner_rank, chaos::ChaosEngine* chaos) {
  owner_ = owner_rank;
  chaos_ = chaos;
}

void Mailbox::complete_locked(RequestState& rs, const Envelope& env) {
  if (env.payload.size() > rs.capacity) {
    throw std::runtime_error(
        "comm: message truncation (recv buffer " + std::to_string(rs.capacity) +
        " B < message " + std::to_string(env.payload.size()) + " B from src " +
        std::to_string(env.src) + ", tag " + std::to_string(env.tag) + ")");
  }
  util::copy_bytes(rs.buf, env.payload.data(), env.payload.size());
  rs.status.source = env.src;
  rs.status.tag = env.tag;
  rs.status.bytes = env.payload.size();
  rs.done = true;
}

void Mailbox::remove_pending_locked(const RequestState* rs) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->get() == rs) {
      pending_.erase(it);
      return;
    }
  }
}

void Mailbox::cancel(const Request& req) {
  if (!req.valid() || !req.state()->is_recv) return;
  std::lock_guard<std::mutex> lock(mu_);
  remove_pending_locked(req.state());
}

void Mailbox::deliver_locked(Envelope env) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    RequestState& rs = **it;
    if (matches(env, rs.ctx, rs.src, rs.tag)) {
      complete_locked(rs, env);
      pending_.erase(it);
      cv_.notify_all();
      return;
    }
  }
  unexpected_.push_back(std::move(env));
  // Probers may be sleeping via wait(); wake them so iprobe loops make
  // progress. (wait() itself sleeps on cv_ too.)
  cv_.notify_all();
}

void Mailbox::pump_locked() {
  ++tick_;
  if (held_.empty()) return;
  // Release due envelopes front to back. A stream whose earliest held
  // envelope is not yet due blocks its later envelopes, keeping
  // per-(source, dest, tag) FIFO intact.
  std::set<std::tuple<int, int, int>> blocked;
  for (auto it = held_.begin(); it != held_.end();) {
    auto key = std::make_tuple(it->env.ctx, it->env.src, it->env.tag);
    if (blocked.count(key) != 0) {
      ++it;
      continue;
    }
    if (it->due <= tick_) {
      Envelope env = std::move(it->env);
      it = held_.erase(it);
      deliver_locked(std::move(env));
    } else {
      blocked.insert(key);
      ++it;
    }
  }
}

void Mailbox::flush_held_locked() {
  while (!held_.empty()) {
    Envelope env = std::move(held_.front().env);
    held_.pop_front();
    deliver_locked(std::move(env));
  }
}

void Mailbox::release_stream_locked(int ctx, int src, int tag) {
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->env.ctx == ctx && it->env.src == src && it->env.tag == tag) {
      Envelope env = std::move(it->env);
      it = held_.erase(it);
      deliver_locked(std::move(env));
    } else {
      ++it;
    }
  }
}

void Mailbox::flush_held() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_held_locked();
}

void Mailbox::deliver(Envelope env) {
  std::lock_guard<std::mutex> lock(mu_);
  if (chaos_ != nullptr) {
    pump_locked();
    const std::uint64_t seq =
        stream_seq_[std::make_tuple(env.ctx, env.src, env.tag)]++;
    const int hold = chaos_->hold_ticks(env.ctx, env.src, owner_, env.tag,
                                        seq, env.payload.size());
    if (hold > 0) {
      held_.push_back({std::move(env), tick_ + std::uint64_t(hold)});
      return;
    }
    // Delivering now: earlier held messages of the same stream must go
    // first so this one never overtakes them.
    if (!held_.empty()) release_stream_locked(env.ctx, env.src, env.tag);
  }
  deliver_locked(std::move(env));
}

Request Mailbox::post_recv(int ctx, int src, int tag, void* buf,
                           std::size_t capacity) {
  auto rs = std::make_shared<RequestState>();
  rs->is_recv = true;
  rs->ctx = ctx;
  rs->src = src;
  rs->tag = tag;
  rs->buf = buf;
  rs->capacity = capacity;
  rs->home = this;

  std::lock_guard<std::mutex> lock(mu_);
  if (chaos_ != nullptr) pump_locked();
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(*it, ctx, src, tag)) {
      complete_locked(*rs, *it);
      unexpected_.erase(it);
      return Request(std::move(rs));
    }
  }
  pending_.push_back(rs);
  return Request(std::move(rs));
}

Status Mailbox::wait(const Request& req, const JobControl* job) {
  if (!req.valid()) return {};
  RequestState& rs = *req.state();
  if (!rs.is_recv) return rs.status;  // sends complete at post time
  std::unique_lock<std::mutex> lock(mu_);
  if (job == nullptr && chaos_ == nullptr) {
    cv_.wait(lock, [&rs] { return rs.done; });
    return rs.status;
  }
  // Poll at a coarse period so a crashed peer (or a provable deadlock)
  // unwinds this rank instead of leaving it blocked forever. Under chaos
  // the period shortens so held envelopes release promptly.
  const auto period = std::chrono::milliseconds(chaos_ != nullptr ? 2 : 20);
  while (!cv_.wait_for(lock, period, [&rs] { return rs.done; })) {
    if (chaos_ != nullptr) {
      pump_locked();
      if (rs.done) break;
    }
    if (job == nullptr) continue;
    if (job->aborted()) {
      remove_pending_locked(&rs);
      throw_blocked_abort(*job, owner_, rs.ctx, rs.src, rs.tag);
    }
    if (job->last_rank_standing()) {
      // A held envelope may be the very message this receive needs: release
      // everything before concluding that no sender can exist.
      if (chaos_ != nullptr) {
        flush_held_locked();
        if (rs.done) break;
      }
      // The dying rank raises the abort flag *before* decrementing the
      // active count, but this loop loads them in the opposite order — so
      // re-check after observing "everyone else exited" lest a crashed
      // peer be misreported as a provable deadlock.
      remove_pending_locked(&rs);
      if (job->aborted()) {
        throw_blocked_abort(*job, owner_, rs.ctx, rs.src, rs.tag);
      }
      throw DeadlockDetected(owner_, rs.ctx, rs.src, rs.tag);
    }
  }
  return rs.status;
}

bool Mailbox::test(const Request& req) {
  if (!req.valid()) return true;
  RequestState& rs = *req.state();
  if (!rs.is_recv) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (chaos_ != nullptr) pump_locked();
  return rs.done;
}

Status Mailbox::probe(int ctx, int src, int tag, const JobControl* job) {
  // Probe entry is a deterministic per-rank operation: give chaos its hook
  // (which may sleep or force-abort) before taking the mailbox lock.
  if (chaos_ != nullptr) chaos_->on_rank_op(owner_, chaos::Hook::kProbe);
  std::unique_lock<std::mutex> lock(mu_);
  auto find = [&]() -> const Envelope* {
    for (const Envelope& env : unexpected_) {
      if (matches(env, ctx, src, tag)) return &env;
    }
    return nullptr;
  };
  // Job-state checks run under the mailbox mutex immediately after a failed
  // scan: a sender mid-deliver is blocked on this same mutex (so it has not
  // exited yet), which makes "no match AND everyone else exited" a proof of
  // deadlock rather than a race with in-flight delivery.
  const Envelope* hit = nullptr;
  for (;;) {
    if (chaos_ != nullptr) pump_locked();
    if ((hit = find()) != nullptr) break;
    if (job != nullptr) {
      if (job->aborted()) throw_blocked_abort(*job, owner_, ctx, src, tag);
      if (job->last_rank_standing()) {
        if (chaos_ != nullptr) {
          flush_held_locked();
          if ((hit = find()) != nullptr) break;
        }
        // See wait(): the abort flag is raised before the active count
        // drops, so re-check before the deadlock verdict.
        if (job->aborted()) throw_blocked_abort(*job, owner_, ctx, src, tag);
        throw DeadlockDetected(owner_, ctx, src, tag);
      }
    }
    if (job == nullptr && chaos_ == nullptr) {
      cv_.wait(lock);
    } else {
      cv_.wait_for(lock,
                   std::chrono::milliseconds(chaos_ != nullptr ? 2 : 20));
    }
  }
  Status s;
  s.source = hit->src;
  s.tag = hit->tag;
  s.bytes = hit->payload.size();
  return s;
}

bool Mailbox::iprobe(int ctx, int src, int tag, Status* status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (chaos_ != nullptr) pump_locked();
  for (const Envelope& env : unexpected_) {
    if (matches(env, ctx, src, tag)) {
      if (status != nullptr) {
        status->source = env.src;
        status->tag = env.tag;
        status->bytes = env.payload.size();
      }
      return true;
    }
  }
  return false;
}

}  // namespace cmtbone::comm
