#pragma once
// Communicator: the user-facing handle of the message-passing runtime.
//
// Mirrors the slice of MPI that Nek5000/CMT-nek use: tagged point-to-point
// (blocking and nonblocking), wait/waitall/test, probe, and the collectives
// (barrier, bcast, reduce, allreduce, gather, allgather, alltoall(v), scan)
// plus communicator split. Collectives are implemented *algorithmically over
// point-to-point* (binomial trees, dissemination barrier, posted-all
// alltoallv) rather than via shared memory, so the message structure a real
// MPI job would exhibit — counts, sizes, partners — is preserved. That
// structure is what the paper's communication study (Figs 7-10) measures.
//
// Every public operation is timed and recorded into the attached
// prof::CommProfiler under a call-site label (see SiteScope), reproducing
// mpiP-style attribution.

#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "comm/message.hpp"
#include "comm/reduce_ops.hpp"
#include "comm/request.hpp"
#include "comm/universe.hpp"
#include "prof/timer.hpp"
#include "util/bytes.hpp"

namespace cmtbone::comm {

/// RAII call-site label. Library code brackets a phase with
///   SiteScope site("gs_op.pairwise");
/// and every comm operation inside records as "gs_op.pairwise/MPI_Isend",
/// the same way mpiP attributes time to call sites.
class SiteScope {
 public:
  explicit SiteScope(std::string site);
  ~SiteScope();
  SiteScope(const SiteScope&) = delete;
  SiteScope& operator=(const SiteScope&) = delete;

  /// Current thread's innermost site label ("" when none).
  static const std::string& current();

 private:
  std::string previous_;
};

class Comm {
 public:
  /// World communicator for `rank` in `universe` (made by comm::run()).
  Comm(Universe& universe, int rank);

  int rank() const { return rank_; }
  int size() const { return int(group_.size()); }
  /// Global (universe) rank of local rank `r`.
  int global_rank(int r) const { return group_[r]; }
  Universe& universe() const { return *uni_; }

  // --- point-to-point (byte-level) ---------------------------------------

  /// Blocking buffered send: copies the payload out and returns. Never
  /// deadlocks on unposted receives (eager semantics).
  void send_bytes(const void* buf, std::size_t bytes, int dest, int tag);
  Request isend_bytes(const void* buf, std::size_t bytes, int dest, int tag);
  /// Zero-copy isend for large payloads: the vector becomes the in-flight
  /// message without the buffered-send copy (the caller packs directly into
  /// it and hands it over). Same eager completion semantics as isend_bytes.
  Request isend_payload(std::vector<std::byte>&& payload, int dest, int tag);
  Request irecv_bytes(void* buf, std::size_t capacity, int src, int tag);
  Status recv_bytes(void* buf, std::size_t capacity, int src, int tag);

  Status wait(Request& req);
  void waitall(std::span<Request> reqs);
  /// Withdraw a posted nonblocking receive (MPI_Cancel analogue) and null
  /// the handle: afterwards no delivery can touch its buffer. Unwinding
  /// code with receives still in flight must cancel them before their
  /// buffers are destroyed. No-op on null/send/completed requests.
  void cancel(Request& req);
  /// Block until at least one request completes; returns its index and
  /// clears it (MPI_Waitany). Null requests are skipped; returns -1 when
  /// every request is null.
  int waitany(std::span<Request> reqs, Status* status = nullptr);
  bool test(Request& req);

  /// Combined send+receive with distinct buffers (MPI_Sendrecv): posts the
  /// receive, performs the (eager, non-blocking) send, then waits.
  template <class T>
  Status sendrecv(std::span<const T> send_data, int dest, int send_tag,
                  std::span<T> recv_data, int src, int recv_tag) {
    prof::WallTimer t;
    Request req = post_recv_raw(recv_data.data(), recv_data.size_bytes(), src,
                                recv_tag);
    send_raw(send_data.data(), send_data.size_bytes(), dest, send_tag);
    Status s = wait_raw(req);
    int global_src = s.source;
    if (s.source >= 0) s.source = local_of_global(s.source);
    record("MPI_Sendrecv", t.seconds(), (long long)send_data.size_bytes(),
           group_.at(dest), send_tag);
    if (global_src >= 0) {
      trace_recv_completion(global_src, s.tag, (long long)s.bytes, 0.0);
    }
    return s;
  }
  bool iprobe(int src, int tag, Status* status = nullptr);
  /// Blocking probe (MPI_Probe): returns metadata of the next matching
  /// message without receiving it. Use before a dynamic-size receive.
  Status probe(int src, int tag);

  /// Receive a message whose size the receiver does not know in advance
  /// (probe + sized receive). Returns the payload as elements of T.
  template <class T>
  std::vector<T> recv_vector(int src, int tag) {
    prof::WallTimer t;
    Status ps = my_box().probe(ctx_, src == kAnySource ? kAnySource : group_.at(src),
                               tag, uni_);
    std::vector<T> out(ps.bytes / sizeof(T));
    Request req = my_box().post_recv(ctx_, ps.source, ps.tag, out.data(),
                                     out.size() * sizeof(T));
    wait_raw(req);
    record("MPI_Recv", t.seconds(), (long long)ps.bytes, ps.source, ps.tag);
    return out;
  }

  // --- point-to-point (typed) --------------------------------------------

  template <class T>
  void send(std::span<const T> data, int dest, int tag) {
    send_bytes(data.data(), data.size_bytes(), dest, tag);
  }
  template <class T>
  Request isend(std::span<const T> data, int dest, int tag) {
    return isend_bytes(data.data(), data.size_bytes(), dest, tag);
  }
  template <class T>
  Request irecv(std::span<T> data, int src, int tag) {
    return irecv_bytes(data.data(), data.size_bytes(), src, tag);
  }
  template <class T>
  Status recv(std::span<T> data, int src, int tag) {
    return recv_bytes(data.data(), data.size_bytes(), src, tag);
  }

  // --- collectives ---------------------------------------------------------

  void barrier();

  void bcast_bytes(void* buf, std::size_t bytes, int root);
  template <class T>
  void bcast(std::span<T> data, int root) {
    bcast_bytes(data.data(), data.size_bytes(), root);
  }

  /// In-place elementwise reduction to `root`; other ranks' buffers are
  /// unchanged on exit (their contributions were consumed).
  template <class T>
  void reduce(std::span<T> data, ReduceOp op, int root);

  /// In-place elementwise allreduce.
  template <class T>
  void allreduce(std::span<T> data, ReduceOp op);

  /// Scalar convenience allreduce.
  template <class T>
  T allreduce_one(T value, ReduceOp op) {
    allreduce(std::span<T>(&value, 1), op);
    return value;
  }

  /// Gather equal-size contributions to root; returns size()*n elements at
  /// root, empty elsewhere.
  template <class T>
  std::vector<T> gather(std::span<const T> mine, int root);

  /// Variable-size gather to root. Returns concatenated data and fills
  /// `counts` (per-rank element counts) at root.
  template <class T>
  std::vector<T> gatherv(std::span<const T> mine, int root,
                         std::vector<int>* counts = nullptr);

  template <class T>
  std::vector<T> allgather(std::span<const T> mine);

  template <class T>
  std::vector<T> allgatherv(std::span<const T> mine,
                            std::vector<int>* counts = nullptr);

  /// Personalized all-to-all with equal counts: element block i of `send`
  /// goes to rank i; returns the blocks received, concatenated by source.
  template <class T>
  std::vector<T> alltoall(std::span<const T> send, int count_per_rank);

  /// Personalized all-to-all with per-destination counts. `send_counts[i]`
  /// elements (taken in order from `send`) go to rank i. Fills `recv_counts`
  /// and returns the received data concatenated by source rank.
  template <class T>
  std::vector<T> alltoallv(std::span<const T> send,
                           std::span<const int> send_counts,
                           std::vector<int>* recv_counts = nullptr);

  /// Inclusive prefix scan (sum of ranks 0..rank).
  template <class T>
  T scan_sum(T value);

  /// Split into sub-communicators by color (ranks with equal color end up
  /// in the same comm, ordered by key then parent rank). Collective.
  Comm split(int color, int key);

 private:
  Comm(Universe& universe, int ctx, std::vector<int> group, int my_index);

  Mailbox& my_box() const { return uni_->mailbox(group_[rank_]); }
  int local_of_global(int global) const;

  // Unprofiled internals used by the collectives (so a collective records
  // once, not once per internal message).
  void send_raw(const void* buf, std::size_t bytes, int dest, int tag);
  Request post_recv_raw(void* buf, std::size_t capacity, int src, int tag);
  Status wait_raw(const Request& req);
  // Wait on every request in order; if one wait unwinds (peer failure,
  // abort, provable deadlock), withdraw the not-yet-completed receives so
  // none can later deliver into a buffer the unwind is destroying.
  void waitall_raw(std::span<Request> reqs);
  int next_coll_tag() { return kCollectiveTagBase + (coll_seq_++ & 0xffff); }

  // Report one completed operation to the profiler and (if attached) the
  // trace recorder. `global_peer` is the partner's universe rank for p2p
  // ops (-1 otherwise); operations named like collectives are traced as
  // collective events, waits/probes are skipped (their completions are
  // traced per matched receive).
  void record(const char* op, double seconds, long long bytes,
              int global_peer = -1, int tag = 0) const;
  void trace_recv_completion(int global_src, int tag, long long bytes,
                             double blocked_seconds) const;

  // Collective building blocks (binomial trees rooted at `root`).
  void bcast_tree(void* buf, std::size_t bytes, int root, int tag);
  template <class T>
  void reduce_tree(std::span<T> data, ReduceOp op, int root, int tag);

  Universe* uni_;
  int ctx_;
  int rank_;                 // local rank within this communicator
  std::vector<int> group_;   // local rank -> global rank
  std::vector<int> g2l_;     // global rank -> local rank (-1 if absent)
  int coll_seq_ = 0;
};

// ---- template implementations ---------------------------------------------

template <class T>
void Comm::reduce_tree(std::span<T> data, ReduceOp op, int root, int tag) {
  // Binomial tree: relative rank vr folds children vr+2^k before sending to
  // its parent. Ranks exchange whole buffers; combine is elementwise.
  const int p = size();
  const int vr = (rank_ - root + p) % p;
  std::vector<T> incoming(data.size());
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      int child = vr + mask;
      if (child < p) {
        int src = (child + root) % p;
        wait_raw(post_recv_raw(incoming.data(), incoming.size() * sizeof(T),
                               src, tag));
        for (std::size_t i = 0; i < data.size(); ++i) {
          data[i] = apply(op, data[i], incoming[i]);
        }
      }
    } else {
      int parent = ((vr & ~mask) + root) % p;
      send_raw(data.data(), data.size_bytes(), parent, tag);
      break;
    }
    mask <<= 1;
  }
}

template <class T>
void Comm::reduce(std::span<T> data, ReduceOp op, int root) {
  prof::WallTimer t;
  int tag = next_coll_tag();
  reduce_tree(data, op, root, tag);
  record("MPI_Reduce", t.seconds(), (long long)(data.size_bytes()));
}

template <class T>
void Comm::allreduce(std::span<T> data, ReduceOp op) {
  prof::WallTimer t;
  int tag = next_coll_tag();
  reduce_tree(data, op, /*root=*/0, tag);
  bcast_tree(data.data(), data.size_bytes(), /*root=*/0, next_coll_tag());
  record("MPI_Allreduce", t.seconds(), (long long)(data.size_bytes()));
}

template <class T>
std::vector<T> Comm::gather(std::span<const T> mine, int root) {
  prof::WallTimer t;
  const int p = size();
  const int tag = next_coll_tag();
  std::vector<T> out;
  if (rank_ == root) {
    out.resize(mine.size() * std::size_t(p));
    std::vector<Request> reqs;
    reqs.reserve(p - 1);
    for (int r = 0; r < p; ++r) {
      if (r == rank_) {
        util::copy_bytes(out.data() + std::size_t(r) * mine.size(),
                         mine.data(), mine.size_bytes());
      } else {
        reqs.push_back(post_recv_raw(out.data() + std::size_t(r) * mine.size(),
                                     mine.size_bytes(), r, tag));
      }
    }
    waitall_raw(std::span<Request>(reqs));
  } else {
    send_raw(mine.data(), mine.size_bytes(), root, tag);
  }
  record("MPI_Gather", t.seconds(), (long long)(mine.size_bytes()));
  return out;
}

template <class T>
std::vector<T> Comm::gatherv(std::span<const T> mine, int root,
                             std::vector<int>* counts) {
  prof::WallTimer t;
  const int p = size();
  const int tag_count = next_coll_tag();
  const int tag_data = next_coll_tag();
  std::vector<T> out;
  if (rank_ == root) {
    std::vector<int> cnt(p);
    cnt[rank_] = int(mine.size());
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      wait_raw(post_recv_raw(&cnt[r], sizeof(int), r, tag_count));
    }
    std::size_t total = 0;
    std::vector<std::size_t> offset(p);
    for (int r = 0; r < p; ++r) {
      offset[r] = total;
      total += std::size_t(cnt[r]);
    }
    out.resize(total);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == rank_) {
        util::copy_bytes(out.data() + offset[r], mine.data(),
                         mine.size_bytes());
      } else if (cnt[r] > 0) {
        reqs.push_back(post_recv_raw(out.data() + offset[r],
                                     std::size_t(cnt[r]) * sizeof(T), r,
                                     tag_data));
      }
    }
    waitall_raw(std::span<Request>(reqs));
    if (counts != nullptr) *counts = std::move(cnt);
  } else {
    int n = int(mine.size());
    send_raw(&n, sizeof(int), root, tag_count);
    if (n > 0) send_raw(mine.data(), mine.size_bytes(), root, tag_data);
  }
  record("MPI_Gatherv", t.seconds(), (long long)(mine.size_bytes()));
  return out;
}

template <class T>
std::vector<T> Comm::allgather(std::span<const T> mine) {
  prof::WallTimer t;
  // Gather to 0 then broadcast the concatenation (2 log P latency).
  std::vector<T> all = gather(mine, /*root=*/0);
  if (rank_ != 0) all.resize(mine.size() * std::size_t(size()));
  bcast_tree(all.data(), all.size() * sizeof(T), /*root=*/0, next_coll_tag());
  record("MPI_Allgather", t.seconds(), (long long)(mine.size_bytes()));
  return all;
}

template <class T>
std::vector<T> Comm::allgatherv(std::span<const T> mine,
                                std::vector<int>* counts) {
  prof::WallTimer t;
  std::vector<int> cnt;
  std::vector<T> all = gatherv(mine, /*root=*/0, &cnt);
  cnt.resize(size());
  bcast_tree(cnt.data(), cnt.size() * sizeof(int), /*root=*/0, next_coll_tag());
  std::size_t total = 0;
  for (int c : cnt) total += std::size_t(c);
  all.resize(total);
  bcast_tree(all.data(), all.size() * sizeof(T), /*root=*/0, next_coll_tag());
  if (counts != nullptr) *counts = std::move(cnt);
  record("MPI_Allgatherv", t.seconds(), (long long)(mine.size_bytes()));
  return all;
}

template <class T>
std::vector<T> Comm::alltoall(std::span<const T> send, int count_per_rank) {
  std::vector<int> counts(size(), count_per_rank);
  return alltoallv(send, counts);
}

template <class T>
std::vector<T> Comm::alltoallv(std::span<const T> send,
                               std::span<const int> send_counts,
                               std::vector<int>* recv_counts) {
  prof::WallTimer t;
  const int p = size();
  const int tag_count = next_coll_tag();
  const int tag_data = next_coll_tag();

  // Exchange counts first (every pair), then post all receives and sends.
  std::vector<int> rcnt(p, 0);
  {
    std::vector<Request> reqs;
    reqs.reserve(2 * (p - 1));
    for (int r = 0; r < p; ++r) {
      if (r == rank_) {
        rcnt[r] = send_counts[r];
        continue;
      }
      reqs.push_back(post_recv_raw(&rcnt[r], sizeof(int), r, tag_count));
    }
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      send_raw(&send_counts[r], sizeof(int), r, tag_count);
    }
    waitall_raw(std::span<Request>(reqs));
  }

  std::vector<std::size_t> roff(p), soff(p);
  std::size_t rtotal = 0, stotal = 0;
  for (int r = 0; r < p; ++r) {
    roff[r] = rtotal;
    rtotal += std::size_t(rcnt[r]);
    soff[r] = stotal;
    stotal += std::size_t(send_counts[r]);
  }
  std::vector<T> out(rtotal);

  std::vector<Request> reqs;
  reqs.reserve(p - 1);
  for (int r = 0; r < p; ++r) {
    if (r == rank_) {
      util::copy_bytes(out.data() + roff[r], send.data() + soff[r],
                       std::size_t(rcnt[r]) * sizeof(T));
    } else if (rcnt[r] > 0) {
      reqs.push_back(post_recv_raw(out.data() + roff[r],
                                   std::size_t(rcnt[r]) * sizeof(T), r,
                                   tag_data));
    }
  }
  long long sent_bytes = 0;
  for (int r = 0; r < p; ++r) {
    if (r == rank_ || send_counts[r] == 0) continue;
    send_raw(send.data() + soff[r], std::size_t(send_counts[r]) * sizeof(T), r,
             tag_data);
    sent_bytes += (long long)(std::size_t(send_counts[r]) * sizeof(T));
  }
  waitall_raw(std::span<Request>(reqs));

  if (recv_counts != nullptr) *recv_counts = std::move(rcnt);
  record("MPI_Alltoallv", t.seconds(), sent_bytes);
  return out;
}

template <class T>
T Comm::scan_sum(T value) {
  prof::WallTimer t;
  const int tag = next_coll_tag();
  // Linear scan: rank r receives the prefix from r-1, adds, forwards.
  T prefix = value;
  if (rank_ > 0) {
    T from_left{};
    wait_raw(post_recv_raw(&from_left, sizeof(T), rank_ - 1, tag));
    prefix = from_left + value;
  }
  if (rank_ + 1 < size()) {
    send_raw(&prefix, sizeof(T), rank_ + 1, tag);
  }
  record("MPI_Scan", t.seconds(), (long long)sizeof(T));
  return prefix;
}

}  // namespace cmtbone::comm
