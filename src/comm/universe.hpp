#pragma once
// The Universe owns the shared state of one parallel "job": every rank's
// mailbox, the communicator-context allocator, the abort flag, and the
// (optional) communication profiler.

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/mailbox.hpp"
#include "prof/commprof.hpp"
#include "trace/trace.hpp"

namespace cmtbone::comm {

class Universe : public JobControl {
 public:
  explicit Universe(int nranks, prof::CommProfiler* profiler = nullptr,
                    trace::Tracer* tracer = nullptr,
                    chaos::ChaosEngine* chaos = nullptr)
      : boxes_(nranks), profiler_(profiler), tracer_(tracer), chaos_(chaos),
        active_(nranks) {
    for (int r = 0; r < nranks; ++r) {
      boxes_[r] = std::make_unique<Mailbox>();
      boxes_[r]->configure(r, chaos);
    }
  }

  int size() const { return int(boxes_.size()); }

  Mailbox& mailbox(int global_rank) { return *boxes_.at(global_rank); }

  prof::CommProfiler* profiler() const { return profiler_; }
  trace::Tracer* tracer() const { return tracer_; }
  chaos::ChaosEngine* chaos() const { return chaos_; }

  /// Allocate a fresh communicator context id (collision-free by
  /// construction). Context 0 is the world communicator.
  int next_ctx() { return ctx_counter_.fetch_add(1); }

  void abort() { aborted_.store(true, std::memory_order_release); }
  bool aborted() const override {
    return aborted_.load(std::memory_order_acquire);
  }
  void check_abort() const {
    if (aborted()) throw JobAborted{};
  }

  /// Called by the runtime when a rank's body returns; enables the
  /// provable-deadlock check in blocked operations.
  void rank_finished() { active_.fetch_sub(1, std::memory_order_acq_rel); }
  bool last_rank_standing() const override {
    return active_.load(std::memory_order_acquire) <= 1;
  }

 private:
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  prof::CommProfiler* profiler_;
  trace::Tracer* tracer_;
  chaos::ChaosEngine* chaos_;
  std::atomic<int> ctx_counter_{1};
  std::atomic<bool> aborted_{false};
  std::atomic<int> active_{0};
};

}  // namespace cmtbone::comm
