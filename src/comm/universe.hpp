#pragma once
// The Universe owns the shared state of one parallel "job": every rank's
// mailbox, the communicator-context allocator, the abort flag, and the
// (optional) communication profiler.

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/mailbox.hpp"
#include "prof/commprof.hpp"
#include "trace/trace.hpp"

namespace cmtbone::comm {

class Universe : public JobControl {
 public:
  explicit Universe(int nranks, prof::CommProfiler* profiler = nullptr,
                    trace::Tracer* tracer = nullptr,
                    chaos::ChaosEngine* chaos = nullptr)
      : boxes_(nranks), profiler_(profiler), tracer_(tracer), chaos_(chaos),
        active_(nranks) {
    for (int r = 0; r < nranks; ++r) {
      boxes_[r] = std::make_unique<Mailbox>();
      boxes_[r]->configure(r, chaos);
    }
  }

  int size() const { return int(boxes_.size()); }

  Mailbox& mailbox(int global_rank) { return *boxes_.at(global_rank); }

  prof::CommProfiler* profiler() const { return profiler_; }
  trace::Tracer* tracer() const { return tracer_; }
  chaos::ChaosEngine* chaos() const { return chaos_; }

  /// Allocate a fresh communicator context id (collision-free by
  /// construction). Context 0 is the world communicator.
  int next_ctx() { return ctx_counter_.fetch_add(1); }

  void abort() { aborted_.store(true, std::memory_order_release); }
  bool aborted() const override {
    return aborted_.load(std::memory_order_acquire);
  }

  /// Attribute the job's failure to `rank` (called by the runtime when a
  /// rank's body unwinds with a real exception, or by chaos when it kills a
  /// rank). First writer wins; also raises the abort flag, so peers blocked
  /// on this rank observe RankFailed instead of a bare JobAborted.
  void mark_failed(int rank) {
    int expected = -1;
    if (failed_rank_.compare_exchange_strong(expected, rank,
                                             std::memory_order_acq_rel)) {
      failed_at_ns_.store(now_ns(), std::memory_order_release);
    }
    abort();
  }
  int failed_rank() const override {
    return failed_rank_.load(std::memory_order_acquire);
  }

  /// Epoch label for failure reporting (set once by the runtime before the
  /// rank threads start; -1 outside recovery-supervised runs).
  void set_epoch(long long epoch) { epoch_ = epoch; }
  long long failure_epoch() const override { return epoch_; }

  /// Seconds elapsed since mark_failed(), or a negative value when no
  /// failure has been attributed. Survivors sample this as they observe the
  /// failure — the per-rank detection latency.
  double seconds_since_failure() const {
    const long long at = failed_at_ns_.load(std::memory_order_acquire);
    if (at == 0 || failed_rank() < 0) return -1.0;
    return double(now_ns() - at) * 1e-9;
  }

  void check_abort() const {
    if (!aborted()) return;
    const int failed = failed_rank();
    if (failed >= 0) throw RankFailed(failed, failure_epoch());
    throw JobAborted{};
  }

  /// Called by the runtime when a rank's body returns; enables the
  /// provable-deadlock check in blocked operations.
  void rank_finished() { active_.fetch_sub(1, std::memory_order_acq_rel); }
  bool last_rank_standing() const override {
    return active_.load(std::memory_order_acquire) <= 1;
  }

 private:
  static long long now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  prof::CommProfiler* profiler_;
  trace::Tracer* tracer_;
  chaos::ChaosEngine* chaos_;
  std::atomic<int> ctx_counter_{1};
  std::atomic<bool> aborted_{false};
  std::atomic<int> failed_rank_{-1};
  std::atomic<long long> failed_at_ns_{0};
  long long epoch_ = -1;
  std::atomic<int> active_{0};
};

}  // namespace cmtbone::comm
