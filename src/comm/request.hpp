#pragma once
// Nonblocking-operation handles (the MPI_Request analogue).

#include <cstddef>
#include <memory>

namespace cmtbone::comm {

class Mailbox;

/// Completion status of a receive (MPI_Status analogue).
struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

/// Shared state behind a Request. For receives, the mailbox fills
/// `status` and flips `done` under the mailbox mutex; waiters sleep on the
/// mailbox condition variable.
struct RequestState {
  bool done = false;
  bool is_recv = false;

  // Receive-side matching spec and destination buffer.
  int ctx = 0;
  int src = 0;
  int tag = 0;
  void* buf = nullptr;
  std::size_t capacity = 0;

  Status status;

  // Mailbox whose mutex/condvar guard this state (the poster's mailbox).
  Mailbox* home = nullptr;
};

/// Value-semantic handle; copyable like MPI_Request. A default-constructed
/// Request is "null" and completes immediately.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  RequestState* state() const { return state_.get(); }

 private:
  std::shared_ptr<RequestState> state_;
};

}  // namespace cmtbone::comm
