#pragma once
// Per-rank mailbox: the delivery and matching engine of the runtime.
//
// Each rank owns exactly one mailbox. Senders (other rank threads) call
// deliver(); the owning rank posts receives and waits. Matching follows
// MPI's rules: a posted receive takes the earliest queued message that
// matches, and an arriving message completes the earliest posted receive
// that matches.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "comm/message.hpp"
#include "comm/request.hpp"

namespace cmtbone::comm {

class Mailbox {
 public:
  /// Called from the sender's thread. Either completes a posted receive or
  /// queues the envelope as unexpected.
  void deliver(Envelope env);

  /// Post a nonblocking receive for the owning rank. If a queued unexpected
  /// message matches, the returned request is already complete.
  Request post_recv(int ctx, int src, int tag, void* buf, std::size_t capacity);

  /// Block until `req` completes; returns its status. While blocked, polls
  /// `job` (when given): throws JobAborted if another rank crashed, or
  /// DeadlockDetected if every other rank already exited.
  Status wait(const Request& req, const JobControl* job = nullptr);

  /// Nonblocking completion check.
  bool test(const Request& req);

  /// True if an unexpected message matching (ctx, src, tag) is queued.
  /// Fills `status` with its metadata without receiving it (MPI_Iprobe).
  bool iprobe(int ctx, int src, int tag, Status* status);

  /// Block until a message matching (ctx, src, tag) is queued; returns its
  /// metadata without receiving it (MPI_Probe). Abort-aware like wait().
  Status probe(int ctx, int src, int tag, const JobControl* job = nullptr);

 private:
  // Copies payload into the receive buffer and fills status. Caller holds mu_.
  static void complete_locked(RequestState& rs, const Envelope& env);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> unexpected_;
  std::deque<std::shared_ptr<RequestState>> pending_;
};

}  // namespace cmtbone::comm
