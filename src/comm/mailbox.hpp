#pragma once
// Per-rank mailbox: the delivery and matching engine of the runtime.
//
// Each rank owns exactly one mailbox. Senders (other rank threads) call
// deliver(); the owning rank posts receives and waits. Matching follows
// MPI's rules: a posted receive takes the earliest queued message that
// matches, and an arriving message completes the earliest posted receive
// that matches.
//
// Chaos integration: when a chaos::ChaosEngine is attached (see
// configure()), deliver() may hold an incoming envelope for a bounded,
// seeded number of mailbox events before it becomes matchable, reordering
// deliveries across streams while preserving per-(source, dest, tag) FIFO.
// Every blocking path pumps the held queue so progress is guaranteed, and
// the deadlock detector flushes it before concluding a provable deadlock
// (a held message must never be mistaken for a missing one).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "chaos/chaos.hpp"
#include "comm/message.hpp"
#include "comm/request.hpp"

namespace cmtbone::comm {

class Mailbox {
 public:
  /// Runtime wiring: the owning rank's global id and the job's chaos engine
  /// (nullptr = no injection). Called once by the Universe before ranks run.
  void configure(int owner_rank, chaos::ChaosEngine* chaos);

  /// Called from the sender's thread. Either completes a posted receive or
  /// queues the envelope as unexpected. Under chaos the envelope may first
  /// sit in the held queue for a bounded number of mailbox events.
  void deliver(Envelope env);

  /// Post a nonblocking receive for the owning rank. If a queued unexpected
  /// message matches, the returned request is already complete.
  Request post_recv(int ctx, int src, int tag, void* buf, std::size_t capacity);

  /// Block until `req` completes; returns its status. While blocked, polls
  /// `job` (when given): throws RankFailed/JobAborted if another rank
  /// crashed, or DeadlockDetected if every other rank already exited. On
  /// any of those throws the request is withdrawn from the pending list
  /// first, so no later delivery can write into a buffer the unwinding
  /// caller is about to destroy.
  Status wait(const Request& req, const JobControl* job = nullptr);

  /// Withdraw a posted receive (MPI_Cancel analogue): after cancel() no
  /// delivery will ever touch the request's buffer. Safe on null, send, and
  /// already-completed requests (no-op). Callers unwinding with receives
  /// still in flight MUST cancel them before the buffers go out of scope.
  void cancel(const Request& req);

  /// Nonblocking completion check.
  bool test(const Request& req);

  /// True if an unexpected message matching (ctx, src, tag) is queued.
  /// Fills `status` with its metadata without receiving it (MPI_Iprobe).
  bool iprobe(int ctx, int src, int tag, Status* status);

  /// Block until a message matching (ctx, src, tag) is queued; returns its
  /// metadata without receiving it (MPI_Probe). Abort-aware like wait().
  Status probe(int ctx, int src, int tag, const JobControl* job = nullptr);

  /// Release every chaos-held envelope immediately (in order). Called by
  /// blocked operations before a DeadlockDetected verdict; no-op without
  /// chaos or when nothing is held.
  void flush_held();

 private:
  // Copies payload into the receive buffer and fills status. Caller holds mu_.
  static void complete_locked(RequestState& rs, const Envelope& env);

  // Drop one posted receive from pending_ (no-op if absent). Caller holds mu_.
  void remove_pending_locked(const RequestState* rs);

  // The pre-chaos deliver(): match a pending receive or queue as
  // unexpected. Caller holds mu_.
  void deliver_locked(Envelope env);

  // Advance the chaos tick and release held envelopes that are due,
  // preserving per-stream order. Caller holds mu_.
  void pump_locked();

  // Release all held envelopes (queue order). Caller holds mu_.
  void flush_held_locked();

  // Release held envelopes of one (ctx, src, tag) stream, in order, so an
  // immediately-delivered message never overtakes them. Caller holds mu_.
  void release_stream_locked(int ctx, int src, int tag);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> unexpected_;
  std::deque<std::shared_ptr<RequestState>> pending_;

  // --- chaos state (all under mu_) ---------------------------------------
  int owner_ = -1;
  chaos::ChaosEngine* chaos_ = nullptr;
  std::uint64_t tick_ = 0;
  struct Held {
    Envelope env;
    std::uint64_t due;  // tick at which the envelope becomes deliverable
  };
  std::deque<Held> held_;
  // Per-(ctx, src, tag) arrival counters: the stable message identity the
  // engine's hold decision hashes.
  std::map<std::tuple<int, int, int>, std::uint64_t> stream_seq_;
};

}  // namespace cmtbone::comm
