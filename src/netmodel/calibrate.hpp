#pragma once
// LogGP parameter calibration against the live message-passing runtime.
//
// The paper's §VI point is that network models need machine parameters
// measured on the target. This measures them for whatever fabric the
// library is running on — here the in-process runtime, on a cluster an MPI
// build would measure the real interconnect — so model predictions can be
// validated against measured gs_op times (bench/netmodel_validation).

#include "comm/comm.hpp"
#include "netmodel/loggp.hpp"

namespace cmtbone::netmodel {

/// Measure LogGP parameters using ranks 0 and 1 of `comm` (collective;
/// needs size >= 2; the result is broadcast to all ranks):
///   latency    half the small-message ping-pong round trip,
///   overhead   cost of posting one eager isend,
///   bandwidth  from the large-message transfer time above latency,
///   compute    elementwise-reduce rate of one rank.
LogGPParams calibrate(comm::Comm& comm, int pingpong_reps = 200,
                      std::size_t bulk_bytes = 1 << 20);

}  // namespace cmtbone::netmodel
