#include "netmodel/loggp.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

namespace cmtbone::netmodel {

namespace {
std::mutex g_calibrated_mutex;
std::optional<LogGPParams> g_calibrated;  // guarded by g_calibrated_mutex
}  // namespace

void set_calibrated_machine(const LogGPParams& params) {
  std::lock_guard<std::mutex> lock(g_calibrated_mutex);
  g_calibrated = params;
}

std::optional<LogGPParams> calibrated_machine() {
  std::lock_guard<std::mutex> lock(g_calibrated_mutex);
  return g_calibrated;
}

void clear_calibrated_machine() {
  std::lock_guard<std::mutex> lock(g_calibrated_mutex);
  g_calibrated.reset();
}

LogGPParams qdr_infiniband() {
  // Mellanox Infiniscale IV QDR (the paper's Compton testbed): ~1.3 us
  // latency, ~4 GB/s effective per-link bandwidth.
  return {"qdr-infiniband", 1.3e-6, 4.0e-7, 4.0e9, 2.0e9};
}

LogGPParams ethernet_10g() {
  return {"10g-ethernet", 1.2e-5, 2.0e-6, 1.1e9, 2.0e9};
}

LogGPParams notional_exascale() {
  // A notional future fabric: sub-microsecond latency, 25 GB/s injection.
  return {"notional-exascale", 4.0e-7, 1.0e-7, 2.5e10, 8.0e9};
}

namespace {
double message_cost(const LogGPParams& m, double bytes) {
  return m.latency + 2.0 * m.overhead + bytes * m.gap_per_byte();
}
}  // namespace

double predict_pairwise(const LogGPParams& machine,
                        const ExchangeShape& shape) {
  if (shape.neighbors == 0) return 0.0;
  // All neighbor messages are posted at once: overheads serialize on the
  // host, wire time overlaps except the largest message.
  const double bytes_each =
      double(shape.pairwise_bytes) / double(shape.neighbors);
  return double(shape.neighbors) * 2.0 * machine.overhead + machine.latency +
         bytes_each * machine.gap_per_byte() +
         double(shape.pairwise_bytes) / machine.compute_rate / 8.0;
}

double predict_crystal(const LogGPParams& machine, const ExchangeShape& shape) {
  if (shape.ranks <= 1) return 0.0;
  const int stages = int(std::ceil(std::log2(double(shape.ranks))));
  // Each gs_op makes two routing passes (to owners and back); a pass moves
  // roughly the injected records through every stage.
  const double pass_bytes =
      double(shape.crystal_records) * double(shape.record_bytes);
  const double per_stage = message_cost(machine, pass_bytes);
  const double owner_reduce =
      double(shape.crystal_records) / machine.compute_rate;
  return 2.0 * stages * per_stage + owner_reduce;
}

double predict_allreduce(const LogGPParams& machine,
                         const ExchangeShape& shape) {
  if (shape.ranks <= 1) return 0.0;
  const int stages = int(std::ceil(std::log2(double(shape.ranks))));
  // Binomial reduce + broadcast of the whole big vector, plus the local
  // elementwise combine at every stage of the reduction.
  const double combine =
      double(shape.big_vector_bytes) / 8.0 / machine.compute_rate;
  return 2.0 * stages * message_cost(machine, double(shape.big_vector_bytes)) +
         stages * combine;
}

const char* Prediction::best() const {
  double m = std::min({pairwise, crystal, allreduce});
  if (m == pairwise) return "pairwise exchange";
  if (m == crystal) return "crystal router";
  return "all_reduce";
}

Prediction predict_all(const LogGPParams& machine, const ExchangeShape& shape) {
  return {predict_pairwise(machine, shape), predict_crystal(machine, shape),
          predict_allreduce(machine, shape)};
}

}  // namespace cmtbone::netmodel
