#include "netmodel/calibrate.hpp"

#include <algorithm>
#include <vector>

#include "prof/timer.hpp"

namespace cmtbone::netmodel {

LogGPParams calibrate(comm::Comm& comm, int pingpong_reps,
                      std::size_t bulk_bytes) {
  LogGPParams params;
  params.name = "calibrated";
  constexpr int kTag = 31;

  const int me = comm.rank();
  comm.barrier();

  if (me == 0 || me == 1) {
    const int peer = 1 - me;

    // --- latency: small-message ping-pong --------------------------------
    double byte_token = 0.0;
    std::span<double> token(&byte_token, 1);
    prof::WallTimer t;
    for (int r = 0; r < pingpong_reps; ++r) {
      if (me == 0) {
        comm.send(std::span<const double>(token), peer, kTag);
        comm.recv(token, peer, kTag);
      } else {
        comm.recv(token, peer, kTag);
        comm.send(std::span<const double>(token), peer, kTag);
      }
    }
    params.latency = t.seconds() / pingpong_reps / 2.0;

    // --- overhead: posting eager isends ----------------------------------
    if (me == 0) {
      prof::WallTimer to;
      for (int r = 0; r < pingpong_reps; ++r) {
        comm.isend(std::span<const double>(token), peer, kTag);
      }
      params.overhead = to.seconds() / pingpong_reps;
    } else {
      for (int r = 0; r < pingpong_reps; ++r) {
        comm.recv(token, peer, kTag);
      }
    }

    // --- bandwidth: bulk transfer above latency ---------------------------
    std::vector<double> bulk(bulk_bytes / sizeof(double), 1.0);
    const int bulk_reps = 8;
    prof::WallTimer tb;
    for (int r = 0; r < bulk_reps; ++r) {
      if (me == 0) {
        comm.send(std::span<const double>(bulk), peer, kTag);
        comm.recv(std::span<double>(bulk), peer, kTag);
      } else {
        comm.recv(std::span<double>(bulk), peer, kTag);
        comm.send(std::span<const double>(bulk), peer, kTag);
      }
    }
    double per_message = tb.seconds() / bulk_reps / 2.0;
    double wire = std::max(per_message - params.latency, 1e-12);
    params.bandwidth = double(bulk_bytes) / wire;
  }

  // --- compute rate: local elementwise reduce (every rank, take rank 0's)
  {
    std::vector<double> a(1 << 16, 1.0), b(1 << 16, 2.0);
    prof::WallTimer tc;
    const int reps = 16;
    for (int r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
    }
    double per_value = tc.seconds() / reps / double(a.size());
    params.compute_rate = 1.0 / std::max(per_value, 1e-12);
  }

  // Share rank 0's measurements with everyone.
  double packed[4] = {params.latency, params.overhead, params.bandwidth,
                      params.compute_rate};
  comm.bcast(std::span<double>(packed, 4), 0);
  params.latency = packed[0];
  params.overhead = packed[1];
  params.bandwidth = packed[2];
  params.compute_rate = packed[3];
  return params;
}

}  // namespace cmtbone::netmodel
