#pragma once
// LogGP-style analytic network model for the gather-scatter exchange
// algorithms.
//
// The paper's §VI motivates this: "To perform network simulations we also
// need appropriate latency and bandwidth models for the machines and data
// transfer characteristics for the application." This module predicts the
// per-gs_op cost of the three exchange algorithms on a parameterized
// machine, so notional future systems can be explored analytically and the
// pairwise/crystal-router crossover located without running at scale.
//
// Model: a message of m bytes between two ranks costs  L + 2o + G*m ;
// k concurrent messages from one rank serialize only their overhead o.

#include <optional>
#include <string>
#include <vector>

namespace cmtbone::netmodel {

struct LogGPParams {
  std::string name;
  double latency = 1e-6;        // L: end-to-end latency (s)
  double overhead = 5e-7;       // o: per-message CPU overhead (s)
  double bandwidth = 4.0e9;     // 1/G: bytes per second
  double compute_rate = 1.0e9;  // local reduce rate (values/s), for owner-side work

  double gap_per_byte() const { return 1.0 / bandwidth; }
};

/// Machine presets.
LogGPParams qdr_infiniband();    // like the paper's Compton testbed fabric
LogGPParams ethernet_10g();      // slower commodity cluster
LogGPParams notional_exascale(); // §VI "notional future system"

/// Process-wide calibrated-machine store. netmodel::calibrate (or anything
/// else that measures the live fabric) publishes its parameters here; the
/// gs::Method::kModel selection policy consumes them at handle
/// construction. Thread-safe; empty until someone publishes.
void set_calibrated_machine(const LogGPParams& params);
std::optional<LogGPParams> calibrated_machine();
void clear_calibrated_machine();

/// Structural description of one rank's gs exchange (from the gs handle).
struct ExchangeShape {
  int ranks = 0;                 // P
  int neighbors = 0;             // pairwise partners of this rank
  long long pairwise_bytes = 0;  // bytes this rank sends per pairwise exec
  long long crystal_records = 0; // records this rank injects per crystal pass
  long long record_bytes = 16;   // sizeof(id) + sizeof(value)
  long long big_vector_bytes = 0;  // allreduce method vector size
};

/// Predicted seconds per gs_op for each algorithm.
double predict_pairwise(const LogGPParams& machine, const ExchangeShape& shape);
double predict_crystal(const LogGPParams& machine, const ExchangeShape& shape);
double predict_allreduce(const LogGPParams& machine, const ExchangeShape& shape);

struct Prediction {
  double pairwise = 0, crystal = 0, allreduce = 0;
  const char* best() const;
};
Prediction predict_all(const LogGPParams& machine, const ExchangeShape& shape);

/// Sweep P for a fixed per-rank workload and report the first P (power of
/// two) at which the crystal router beats pairwise exchange; 0 if never
/// within `max_ranks`. `shape_of(P)` supplies the per-rank shape at scale P.
template <class ShapeFn>
int crossover_ranks(const LogGPParams& machine, int max_ranks,
                    ShapeFn&& shape_of) {
  for (int p = 2; p <= max_ranks; p *= 2) {
    ExchangeShape s = shape_of(p);
    if (predict_crystal(machine, s) < predict_pairwise(machine, s)) return p;
  }
  return 0;
}

}  // namespace cmtbone::netmodel
