#include "balance/rebalancer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "mesh/faces.hpp"

namespace cmtbone::balance {

std::vector<double> gather_global_costs(comm::Comm& comm,
                                        const mesh::ElementLayout& layout,
                                        std::span<const double> local_cost) {
  // Ship (gid, cost) pairs rather than relying on rank-order concatenation,
  // so assembly is correct for any ownership pattern.
  std::vector<long long> gids(layout.owned_gids());
  std::vector<long long> all_gids = comm.allgatherv(
      std::span<const long long>(gids));
  std::vector<double> all_costs = comm.allgatherv(local_cost);

  std::vector<double> dense(std::size_t(layout.total_elements()), 0.0);
  for (std::size_t i = 0; i < all_gids.size(); ++i) {
    dense[std::size_t(all_gids[i])] = all_costs[i];
  }
  return dense;
}

namespace {

double load_imbalance(const std::vector<double>& loads) {
  double mx = 0, sum = 0;
  for (double l : loads) {
    mx = std::max(mx, l);
    sum += l;
  }
  const double mean = sum / double(loads.size());
  return mean > 0 ? mx / mean : 1.0;
}

}  // namespace

RebalancePlan propose_owner(const mesh::ElementLayout& layout,
                            std::span<const double> cost,
                            const RebalanceConfig& config) {
  const mesh::BoxSpec& spec = layout.spec();
  const int nranks = spec.nranks();
  const long long total = layout.total_elements();

  RebalancePlan plan;
  plan.owner = layout.owner();

  std::vector<double> loads(std::size_t(nranks), 0.0);
  std::vector<int> counts(std::size_t(nranks), 0);
  for (long long g = 0; g < total; ++g) {
    loads[std::size_t(plan.owner[std::size_t(g)])] += cost[std::size_t(g)];
    ++counts[std::size_t(plan.owner[std::size_t(g)])];
  }
  plan.imbalance_before = load_imbalance(loads);
  plan.imbalance_after = plan.imbalance_before;
  if (nranks < 2) return plan;

  // True when gid g has a face neighbor owned by rank r (periodic wrap
  // included): the adjacency preference that keeps partitions compact.
  auto adjacent_to = [&](long long g, int r) {
    const std::array<int, 3> extent = {spec.ex, spec.ey, spec.ez};
    auto c = layout.coords_of_gid(g);
    for (int f = 0; f < mesh::kFacesPerElement; ++f) {
      std::array<int, 3> nc = c;
      const int ax = mesh::face_axis(f);
      nc[ax] += mesh::face_side(f) == 0 ? -1 : 1;
      if (nc[ax] < 0 || nc[ax] >= extent[ax]) {
        if (!spec.periodic) continue;
        nc[ax] = (nc[ax] + extent[ax]) % extent[ax];
      }
      if (plan.owner[std::size_t(layout.gid(nc[0], nc[1], nc[2]))] == r) {
        return true;
      }
    }
    return false;
  };

  for (int move = 0; move < config.max_moves; ++move) {
    // Donor: most loaded rank (lowest rank on ties); acceptor: least
    // loaded. Ties resolve identically everywhere — inputs are replicated.
    int donor = 0, acceptor = 0;
    for (int r = 1; r < nranks; ++r) {
      if (loads[std::size_t(r)] > loads[std::size_t(donor)]) donor = r;
      if (loads[std::size_t(r)] < loads[std::size_t(acceptor)]) acceptor = r;
    }
    double sum = 0;
    for (double l : loads) sum += l;
    const double mean = sum / double(nranks);
    if (mean <= 0 || loads[std::size_t(donor)] <= config.threshold * mean) {
      break;
    }
    if (counts[std::size_t(donor)] <= 1) break;  // never empty a rank

    // Candidate: a donor element whose cost most nearly halves the gap
    // (strictly reducing it), preferring acceptor-adjacent elements, tie
    // broken toward the lowest gid.
    const double gap =
        loads[std::size_t(donor)] - loads[std::size_t(acceptor)];
    const double half = gap / 2.0;
    long long best = -1;
    double best_score = std::numeric_limits<double>::infinity();
    bool best_adjacent = false;
    for (long long g = 0; g < total; ++g) {
      if (plan.owner[std::size_t(g)] != donor) continue;
      const double c = cost[std::size_t(g)];
      if (c <= 0 || c >= gap) continue;
      const bool adj = adjacent_to(g, acceptor);
      if (adj != best_adjacent) {
        if (!adj) continue;  // a non-adjacent candidate never beats adjacent
        best = g;            // first adjacent candidate found
        best_score = std::abs(c - half);
        best_adjacent = true;
        continue;
      }
      const double score = std::abs(c - half);
      if (score < best_score) {
        best = g;
        best_score = score;
      }
    }
    if (best < 0) break;

    plan.owner[std::size_t(best)] = acceptor;
    loads[std::size_t(donor)] -= cost[std::size_t(best)];
    loads[std::size_t(acceptor)] += cost[std::size_t(best)];
    --counts[std::size_t(donor)];
    ++counts[std::size_t(acceptor)];
    ++plan.moves;
  }

  plan.imbalance_after = load_imbalance(loads);
  return plan;
}

Imbalance measure_imbalance(comm::Comm& comm, double busy_seconds) {
  Imbalance im;
  im.max_busy = comm.allreduce_one(busy_seconds, comm::ReduceOp::kMax);
  im.mean_busy =
      comm.allreduce_one(busy_seconds, comm::ReduceOp::kSum) / comm.size();
  return im;
}

}  // namespace cmtbone::balance
