#include "balance/cost_model.hpp"

namespace cmtbone::balance {

void CostModel::observe(const prof::BalanceStats& window, int nel,
                        long long particles) {
  if (config_.mode != CostMode::kMeasured) return;
  if (window.steps <= 0 || nel <= 0) return;

  const double grid_rate = window.grid_seconds / nel;
  if (!calibrated_) {
    grid_unit_ = grid_rate;
  } else {
    grid_unit_ = config_.ewma * grid_rate + (1.0 - config_.ewma) * grid_unit_;
  }
  // Particle rate only updates when particles were actually resident; an
  // empty window would otherwise divide by zero (and carries no signal).
  if (particles > 0) {
    const double particle_rate = window.particle_seconds / particles;
    if (particle_unit_ == 0.0) {
      particle_unit_ = particle_rate;
    } else {
      particle_unit_ =
          config_.ewma * particle_rate + (1.0 - config_.ewma) * particle_unit_;
    }
  }
  calibrated_ = true;
}

std::vector<double> CostModel::element_costs(
    std::span<const int> particle_count) const {
  std::vector<double> cost(particle_count.size());
  if (config_.mode == CostMode::kMeasured && calibrated_) {
    for (std::size_t e = 0; e < cost.size(); ++e) {
      cost[e] = grid_unit_ + particle_unit_ * particle_count[e];
    }
  } else {
    for (std::size_t e = 0; e < cost.size(); ++e) {
      cost[e] = 1.0 + config_.particle_weight * particle_count[e];
    }
  }
  return cost;
}

}  // namespace cmtbone::balance
