#include "balance/scenarios.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace cmtbone::balance {

namespace {
double wrap01(double v) {
  v -= std::floor(v);
  return v >= 1.0 ? v - 1.0 : v;
}
}  // namespace

std::vector<particles::Particle> clustered_cloud(const ClusterSpec& spec) {
  util::SplitMix64 rng(spec.seed);
  std::vector<particles::Particle> cloud;
  cloud.reserve(std::size_t(spec.count));
  for (long long i = 0; i < spec.count; ++i) {
    particles::Particle p;
    p.id = i;
    p.x = wrap01(rng.uniform(spec.center[0] - spec.radius,
                             spec.center[0] + spec.radius));
    p.y = wrap01(rng.uniform(spec.center[1] - spec.radius,
                             spec.center[1] + spec.radius));
    p.z = wrap01(rng.uniform(spec.center[2] - spec.radius,
                             spec.center[2] + spec.radius));
    cloud.push_back(p);
  }
  return cloud;
}

std::vector<particles::Particle> front_cloud(const FrontSpec& spec,
                                             double position) {
  util::SplitMix64 rng(spec.seed);
  std::vector<particles::Particle> cloud;
  cloud.reserve(std::size_t(spec.count));
  for (long long i = 0; i < spec.count; ++i) {
    particles::Particle p;
    p.id = i;
    p.x = wrap01(position + rng.uniform(0.0, spec.width));
    p.y = rng.uniform(0.0, 1.0);
    p.z = rng.uniform(0.0, 1.0);
    cloud.push_back(p);
  }
  return cloud;
}

}  // namespace cmtbone::balance
