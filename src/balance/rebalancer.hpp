#pragma once
// Cost-weighted repartitioning: the decision half of dynamic load balancing.
//
// Every rank assembles the identical dense cost-by-gid array (allgatherv is
// byte-deterministic: gather to rank 0 + broadcast), then runs the identical
// greedy refinement, so the proposed owner map is replicated without a
// second collective. Refinement moves one element at a time from the most
// loaded rank to the least loaded, preferring elements adjacent to the
// acceptor's region (to limit surface growth), bounded by max_moves per
// epoch — incremental diffusion rather than scratch repartitioning, which
// keeps per-epoch migration volume small and bounded.

#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "mesh/layout.hpp"

namespace cmtbone::balance {

struct RebalanceConfig {
  int max_moves = 8;         // elements migrated per epoch, at most
  double threshold = 1.05;   // act only when max/mean load exceeds this
};

struct RebalancePlan {
  std::vector<int> owner;       // proposed gid -> rank map
  int moves = 0;                // elements reassigned vs. the input layout
  double imbalance_before = 1;  // max/mean cost load of the input layout
  double imbalance_after = 1;   // same for the proposed map
};

/// Assemble local per-element costs (one per local element, ascending-gid
/// order) into the dense global cost-by-gid array. Collective; returns the
/// identical array on every rank.
std::vector<double> gather_global_costs(comm::Comm& comm,
                                        const mesh::ElementLayout& layout,
                                        std::span<const double> local_cost);

/// Deterministic greedy refinement of `layout` under `cost` (dense by gid).
/// Pure replicated computation — identical inputs give identical plans on
/// every rank. Never empties a rank.
RebalancePlan propose_owner(const mesh::ElementLayout& layout,
                            std::span<const double> cost,
                            const RebalanceConfig& config);

/// Cross-rank max/mean of a busy-time sample (the imbalance factor the
/// benches report). Collective.
struct Imbalance {
  double max_busy = 0;
  double mean_busy = 0;
  double factor() const { return mean_busy > 0 ? max_busy / mean_busy : 1.0; }
};
Imbalance measure_imbalance(comm::Comm& comm, double busy_seconds);

}  // namespace cmtbone::balance
