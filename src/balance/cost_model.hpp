#pragma once
// Measured per-element cost model for dynamic load balancing.
//
// Zhai et al. (PAPERS.md) balance CMT-nek by attributing measured work to
// elements. We model a rank's busy time as
//
//     busy ≈ grid_unit * nel + particle_unit * (resident particles)
//
// and fit the two unit rates per rank by exponentially-weighted averaging
// of the driver's BalanceStats windows. An element's cost is then
//
//     cost(e) = grid_unit + particle_unit * count(e)
//
// with count(e) the particles resident in e. The rates are *rank-local*:
// a rank slowed by an external straggler (the chaos rank-slowdown fault)
// reports proportionally higher unit costs for the elements it owns, so
// the repartitioner sheds elements from it — measurement, not prediction,
// exactly the mini-app's "proxy the behavior" philosophy.
//
// kParticleCount mode replaces the measured rates with the deterministic
// surrogate cost(e) = 1 + particle_weight * count(e); the determinism tests
// use it so rebalance *decisions* (not just results) reproduce run to run.

#include <span>
#include <vector>

#include "prof/balance.hpp"

namespace cmtbone::balance {

enum class CostMode { kMeasured, kParticleCount };

struct CostModelConfig {
  CostMode mode = CostMode::kMeasured;
  double ewma = 0.5;             // weight of the newest window in the rates
  double particle_weight = 4.0;  // kParticleCount: cost units per particle
};

class CostModel {
 public:
  explicit CostModel(const CostModelConfig& config = {}) : config_(config) {}

  /// Feed one observation window: `window` seconds split over `nel` local
  /// elements and `particles` resident particles.
  void observe(const prof::BalanceStats& window, int nel, long long particles);

  /// Per-element costs given resident particle counts (one entry per local
  /// element). Before the first observe() the measured mode falls back to
  /// the deterministic surrogate so the first epoch still balances.
  std::vector<double> element_costs(std::span<const int> particle_count) const;

  double grid_unit() const { return grid_unit_; }
  double particle_unit() const { return particle_unit_; }
  bool calibrated() const { return calibrated_; }
  const CostModelConfig& config() const { return config_; }

 private:
  CostModelConfig config_;
  double grid_unit_ = 0;
  double particle_unit_ = 0;
  bool calibrated_ = false;
};

}  // namespace cmtbone::balance
