#pragma once
// Workload generators for the load-balancing study: particle distributions
// that concentrate work on few ranks, the regime where static partitioning
// loses (the multiphase "dense cluster" and "moving front" cases of the
// CMT-nek problem class).
//
// Each generator builds the *full* global particle list from a seed, with
// no rank-dependent input, so every rank produces the identical list and
// Tracker::adopt_global keeps the owned subset — the particle set is a
// function of the scenario alone, never of the current element layout.

#include <array>
#include <cstdint>
#include <vector>

#include "particles/tracker.hpp"

namespace cmtbone::balance {

struct ClusterSpec {
  long long count = 4096;
  std::array<double, 3> center = {0.25, 0.25, 0.5};
  double radius = 0.2;  // half-width of the cluster cube, domain units
  std::uint64_t seed = 1;
};

/// Dense cluster: particles uniform in the cube center ± radius (wrapped
/// into the unit domain). All the particle work lands on the few ranks
/// whose elements cover the cluster.
std::vector<particles::Particle> clustered_cloud(const ClusterSpec& spec);

struct FrontSpec {
  long long count = 4096;
  double width = 0.2;  // slab thickness along x, domain units
  std::uint64_t seed = 1;
};

/// Moving dense front: particles uniform in the slab x in
/// [position, position + width) (wrapped), y and z uniform. Advancing
/// `position` between epochs sweeps the hot region across rank boundaries.
std::vector<particles::Particle> front_cloud(const FrontSpec& spec,
                                             double position);

}  // namespace cmtbone::balance
