#include "kernels/gradient.hpp"

#include <cstddef>

#include "kernels/dispatch.hpp"
#include "kernels/mxm.hpp"

namespace cmtbone::kernels {

const char* variant_name(GradVariant v) {
  switch (v) {
    case GradVariant::kBasic: return "basic";
    case GradVariant::kFused: return "fused";
    case GradVariant::kUnrolled: return "unrolled";
    case GradVariant::kFusedUnrolled: return "fused+unrolled";
    case GradVariant::kBlocked: return "blocked";
    case GradVariant::kMxmFixed: return "mxm-fixed";
    case GradVariant::kDispatch: return "dispatch";
  }
  return "?";
}

const std::vector<GradVariant>& all_variants() {
  static const std::vector<GradVariant> v = {
      GradVariant::kBasic,         GradVariant::kFused,
      GradVariant::kUnrolled,      GradVariant::kFusedUnrolled,
      GradVariant::kBlocked,       GradVariant::kMxmFixed,
      GradVariant::kDispatch};
  return v;
}

namespace {

// ---- basic: plain loop nests, no transformations ---------------------------
// These transliterate the "basic implementation" of the paper's Fig. 6.

void grad_r_basic(const double* d, const double* u, double* out, int n) {
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        double s = 0.0;
        for (int l = 0; l < n; ++l) {
          s += d[i + std::size_t(n) * l] * u[l + std::size_t(n) * (j + std::size_t(n) * k)];
        }
        out[i + std::size_t(n) * (j + std::size_t(n) * k)] = s;
      }
    }
  }
}

void grad_s_basic(const double* d, const double* u, double* out, int n) {
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        double s = 0.0;
        for (int l = 0; l < n; ++l) {
          s += d[j + std::size_t(n) * l] * u[i + std::size_t(n) * (l + std::size_t(n) * k)];
        }
        out[i + std::size_t(n) * (j + std::size_t(n) * k)] = s;
      }
    }
  }
}

void grad_t_basic(const double* d, const double* u, double* out, int n) {
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        double s = 0.0;
        for (int l = 0; l < n; ++l) {
          s += d[k + std::size_t(n) * l] * u[i + std::size_t(n) * (j + std::size_t(n) * l)];
        }
        out[i + std::size_t(n) * (j + std::size_t(n) * k)] = s;
      }
    }
  }
}

// ---- fused: outer loops collapsed where the layout allows ------------------
// r: (j,k) fuse into one loop over the n^2 contiguous columns.
// t: (i,j) fuse into one loop over the n^2 contiguous rows of each k-slab.
// s: the middle-index contraction forbids fusion (paper §V), so fall back.

void grad_r_fused(const double* d, const double* u, double* out, int n) {
  const int n2 = n * n;
  for (int jk = 0; jk < n2; ++jk) {
    const double* __restrict ucol = u + std::size_t(jk) * n;
    double* __restrict ocol = out + std::size_t(jk) * n;
    for (int i = 0; i < n; ++i) {
      double s = 0.0;
      for (int l = 0; l < n; ++l) s += d[i + std::size_t(n) * l] * ucol[l];
      ocol[i] = s;
    }
  }
}

void grad_t_fused(const double* d, const double* u, double* out, int n) {
  const int n2 = n * n;
  for (int k = 0; k < n; ++k) {
    const double* __restrict drow = d + k;  // D(k, :) strided by n
    double* __restrict oslab = out + std::size_t(k) * n2;
    for (int ij = 0; ij < n2; ++ij) {
      double s = 0.0;
      for (int l = 0; l < n; ++l) {
        s += drow[std::size_t(n) * l] * u[ij + std::size_t(l) * n2];
      }
      oslab[ij] = s;
    }
  }
}

// ---- unrolled: compile-time N, inner contraction fully unrolled ------------
// The paper's production kernels completely unroll the innermost loop for
// all three derivatives; with N a template parameter the unroll pragma
// peels the whole contraction.

template <int N>
void grad_r_tpl(const double* __restrict d, const double* __restrict u,
                double* __restrict out, bool fused) {
  if (fused) {
    for (int jk = 0; jk < N * N; ++jk) {
      const double* __restrict ucol = u + std::size_t(jk) * N;
      double* __restrict ocol = out + std::size_t(jk) * N;
      for (int i = 0; i < N; ++i) {
        double s = 0.0;
#pragma GCC unroll 32
        for (int l = 0; l < N; ++l) s += d[i + N * l] * ucol[l];
        ocol[i] = s;
      }
    }
  } else {
    for (int k = 0; k < N; ++k) {
      for (int j = 0; j < N; ++j) {
        const double* __restrict ucol = u + N * (j + std::size_t(N) * k);
        double* __restrict ocol = out + N * (j + std::size_t(N) * k);
        for (int i = 0; i < N; ++i) {
          double s = 0.0;
#pragma GCC unroll 32
          for (int l = 0; l < N; ++l) s += d[i + N * l] * ucol[l];
          ocol[i] = s;
        }
      }
    }
  }
}

template <int N>
void grad_s_tpl(const double* __restrict d, const double* __restrict u,
                double* __restrict out, bool /*fused: not fusable*/) {
  for (int k = 0; k < N; ++k) {
    const double* __restrict uslab = u + std::size_t(k) * N * N;
    double* __restrict oslab = out + std::size_t(k) * N * N;
    for (int j = 0; j < N; ++j) {
      for (int i = 0; i < N; ++i) {
        double s = 0.0;
#pragma GCC unroll 32
        for (int l = 0; l < N; ++l) s += d[j + N * l] * uslab[i + N * l];
        oslab[i + N * j] = s;
      }
    }
  }
}

template <int N>
void grad_t_tpl(const double* __restrict d, const double* __restrict u,
                double* __restrict out, bool fused) {
  if (fused) {
    for (int k = 0; k < N; ++k) {
      double* __restrict oslab = out + std::size_t(k) * N * N;
      for (int ij = 0; ij < N * N; ++ij) {
        double s = 0.0;
#pragma GCC unroll 32
        for (int l = 0; l < N; ++l) s += d[k + N * l] * u[ij + std::size_t(l) * N * N];
        oslab[ij] = s;
      }
    }
  } else {
    for (int k = 0; k < N; ++k) {
      for (int j = 0; j < N; ++j) {
        double* __restrict orow = out + N * (j + std::size_t(N) * k);
        const double* __restrict urow = u + std::size_t(j) * N;
        for (int i = 0; i < N; ++i) {
          double s = 0.0;
#pragma GCC unroll 32
          for (int l = 0; l < N; ++l) s += d[k + N * l] * urow[i + std::size_t(l) * N * N];
          orow[i] = s;
        }
      }
    }
  }
}

// ---- blocked: mxm-style reformulation (our ablation extension) -------------
// Rewrites each contraction with the accumulation loop hoisted so the
// innermost loop streams unit-stride and C stays in registers/L1:
//   r: out = D * U            (U viewed as N x N^2)
//   s: per k-slab, out_k = U_k * D^T
//   t: out = U * D^T          (U viewed as N^2 x N)

void grad_r_blocked(const double* d, const double* u, double* out, int n) {
  mxm(d, n, u, n, out, n * n);
}

void grad_s_blocked(const double* d, const double* u, double* out, int n) {
  const std::size_t n2 = std::size_t(n) * n;
  for (int k = 0; k < n; ++k) {
    const double* uslab = u + k * n2;
    double* oslab = out + k * n2;
    for (int j = 0; j < n; ++j) {
      double* __restrict ocol = oslab + std::size_t(j) * n;
      for (int i = 0; i < n; ++i) ocol[i] = 0.0;
      for (int l = 0; l < n; ++l) {
        const double djl = d[j + std::size_t(n) * l];
        const double* __restrict ucol = uslab + std::size_t(l) * n;
        for (int i = 0; i < n; ++i) ocol[i] += djl * ucol[i];
      }
    }
  }
}

void grad_t_blocked(const double* d, const double* u, double* out, int n) {
  const std::size_t n2 = std::size_t(n) * n;
  for (int k = 0; k < n; ++k) {
    double* __restrict oslab = out + k * n2;
    for (std::size_t ij = 0; ij < n2; ++ij) oslab[ij] = 0.0;
    for (int l = 0; l < n; ++l) {
      const double dkl = d[k + std::size_t(n) * l];
      const double* __restrict uslab = u + l * n2;
      for (std::size_t ij = 0; ij < n2; ++ij) oslab[ij] += dkl * uslab[ij];
    }
  }
}

// ---- dispatch ---------------------------------------------------------------

enum class Dir { kR, kS, kT };

void grad_field_mxm_fixed(Dir dir, const double* d, const double* u,
                          double* out, int n, int nel);

template <int N>
void grad_elem_tpl(Dir dir, const double* d, const double* u, double* out,
                   bool fused) {
  switch (dir) {
    case Dir::kR: grad_r_tpl<N>(d, u, out, fused); break;
    case Dir::kS: grad_s_tpl<N>(d, u, out, fused); break;
    case Dir::kT: grad_t_tpl<N>(d, u, out, fused); break;
  }
}

/// Unrolled dispatch over the paper's N range (5..25) plus the small orders
/// the tests use. Returns false when n has no specialization (caller falls
/// back to the non-template kernels).
bool grad_elem_unrolled(Dir dir, const double* d, const double* u, double* out,
                        int n, bool fused) {
  switch (n) {
#define CMTBONE_CASE(N) \
  case N: grad_elem_tpl<N>(dir, d, u, out, fused); return true;
    CMTBONE_CASE(2)
    CMTBONE_CASE(3)
    CMTBONE_CASE(4)
    CMTBONE_CASE(5)
    CMTBONE_CASE(6)
    CMTBONE_CASE(7)
    CMTBONE_CASE(8)
    CMTBONE_CASE(9)
    CMTBONE_CASE(10)
    CMTBONE_CASE(11)
    CMTBONE_CASE(12)
    CMTBONE_CASE(13)
    CMTBONE_CASE(14)
    CMTBONE_CASE(15)
    CMTBONE_CASE(16)
    CMTBONE_CASE(17)
    CMTBONE_CASE(18)
    CMTBONE_CASE(19)
    CMTBONE_CASE(20)
    CMTBONE_CASE(21)
    CMTBONE_CASE(22)
    CMTBONE_CASE(23)
    CMTBONE_CASE(24)
    CMTBONE_CASE(25)
#undef CMTBONE_CASE
    default: return false;
  }
}

void grad_elem(Dir dir, GradVariant v, const double* d, const double* u,
               double* out, int n) {
  switch (v) {
    case GradVariant::kBasic:
      switch (dir) {
        case Dir::kR: grad_r_basic(d, u, out, n); return;
        case Dir::kS: grad_s_basic(d, u, out, n); return;
        case Dir::kT: grad_t_basic(d, u, out, n); return;
      }
      return;
    case GradVariant::kFused:
      switch (dir) {
        case Dir::kR: grad_r_fused(d, u, out, n); return;
        case Dir::kS: grad_s_basic(d, u, out, n); return;  // not fusable
        case Dir::kT: grad_t_fused(d, u, out, n); return;
      }
      return;
    case GradVariant::kUnrolled:
      if (grad_elem_unrolled(dir, d, u, out, n, /*fused=*/false)) return;
      grad_elem(dir, GradVariant::kBasic, d, u, out, n);
      return;
    case GradVariant::kFusedUnrolled:
      if (grad_elem_unrolled(dir, d, u, out, n, /*fused=*/true)) return;
      grad_elem(dir, GradVariant::kFused, d, u, out, n);
      return;
    case GradVariant::kBlocked:
      switch (dir) {
        case Dir::kR: grad_r_blocked(d, u, out, n); return;
        case Dir::kS: grad_s_blocked(d, u, out, n); return;
        case Dir::kT: grad_t_blocked(d, u, out, n); return;
      }
      return;
    case GradVariant::kMxmFixed:
      grad_field_mxm_fixed(dir, d, u, out, n, /*nel=*/1);
      return;
    case GradVariant::kDispatch:
      grad_dispatch(int(dir), d, u, out, n, /*nel=*/1);
      return;
  }
}

// ---- mxm-fixed: contractions as mxm through the fixed-N dispatch -----------
// r: out_e = D * U_e (U viewed as N x N^2). s and t contract against rows of
// D, i.e. right-multiply by D^T — transposed once per field call, amortized
// over all elements. Per output entry the accumulation runs over l ascending,
// exactly like kBasic, so the results are bit-identical.

void grad_field_mxm_fixed(Dir dir, const double* d, const double* u,
                          double* out, int n, int nel) {
  const std::size_t stride = std::size_t(n) * n * n;
  const std::size_t n2 = std::size_t(n) * n;
  if (dir == Dir::kR) {
    for (int e = 0; e < nel; ++e) {
      mxm_auto(d, n, u + e * stride, n, out + e * stride, n * n);
    }
    return;
  }
  double dt_stack[32 * 32];
  std::vector<double> dt_heap;
  double* dt = dt_stack;
  if (n > 32) {
    dt_heap.resize(n2);
    dt = dt_heap.data();
  }
  for (int l = 0; l < n; ++l) {
    for (int j = 0; j < n; ++j) {
      dt[l + std::size_t(n) * j] = d[j + std::size_t(n) * l];
    }
  }
  if (dir == Dir::kS) {
    for (int e = 0; e < nel; ++e) {
      for (int k = 0; k < n; ++k) {
        const double* uslab = u + e * stride + k * n2;
        double* oslab = out + e * stride + k * n2;
        mxm_auto(uslab, n, dt, n, oslab, n);
      }
    }
  } else {
    for (int e = 0; e < nel; ++e) {
      mxm_auto(u + e * stride, n * n, dt, n, out + e * stride, n);
    }
  }
}

void grad_field(Dir dir, GradVariant v, const double* d, const double* u,
                double* out, int n, int nel) {
  if (v == GradVariant::kMxmFixed) {
    grad_field_mxm_fixed(dir, d, u, out, n, nel);
    return;
  }
  if (v == GradVariant::kDispatch) {
    grad_dispatch(int(dir), d, u, out, n, nel);
    return;
  }
  const std::size_t stride = std::size_t(n) * n * n;
  for (int e = 0; e < nel; ++e) {
    grad_elem(dir, v, d, u + e * stride, out + e * stride, n);
  }
}

}  // namespace

void grad_r(GradVariant v, const double* d, const double* u, double* out,
            int n, int nel) {
  grad_field(Dir::kR, v, d, u, out, n, nel);
}

void grad_s(GradVariant v, const double* d, const double* u, double* out,
            int n, int nel) {
  grad_field(Dir::kS, v, d, u, out, n, nel);
}

void grad_t(GradVariant v, const double* d, const double* u, double* out,
            int n, int nel) {
  grad_field(Dir::kT, v, d, u, out, n, nel);
}

void grad3(GradVariant v, const double* d, const double* u, double* ur,
           double* us, double* ut, int n, int nel) {
  grad_r(v, d, u, ur, n, nel);
  grad_s(v, d, u, us, n, nel);
  grad_t(v, d, u, ut, n, nel);
}

long long grad_instruction_estimate(GradVariant v, int n, int nel) {
  const long long n3 = 1LL * n * n * n;
  const long long n4 = n3 * n;
  // Floating work and memory traffic are variant-independent:
  //   n^4 fmadds (counted as mul+add), n^4 loads of d and u, n^3 stores.
  long long ops = 2 * n4 + 2 * n4 + n3;
  // Loop-control overhead differs: every non-unrolled inner iteration costs
  // roughly an increment+compare+branch plus index arithmetic; fusing the
  // outer loops removes one level of bookkeeping per column.
  long long overhead = 0;
  switch (v) {
    case GradVariant::kBasic: overhead = 3 * n4 + 4 * n3; break;
    case GradVariant::kFused: overhead = 3 * n4 + 2 * n3; break;
    case GradVariant::kUnrolled: overhead = 4 * n3; break;
    case GradVariant::kFusedUnrolled: overhead = 2 * n3; break;
    case GradVariant::kBlocked: overhead = n4 + 2 * n3; break;
    // Fixed-N dispatch: unrolled contraction, register accumulators, one
    // store per output and no zero-fill pass. The backend-dispatch layer
    // routes to kernels of at least that quality.
    case GradVariant::kMxmFixed: overhead = n3; break;
    case GradVariant::kDispatch: overhead = n3; break;
  }
  return (ops + overhead) * nel;
}

}  // namespace cmtbone::kernels
