#include "kernels/mxm.hpp"

namespace cmtbone::kernels {

// Column-major C(i,j) = sum_l A(i,l) B(l,j). The j-l-i ordering streams
// unit-stride through A's columns and C's columns, which vectorizes well
// for the small N (5..25) this library cares about.

void mxm(const double* a, int n1, const double* b, int n2, double* c, int n3) {
  for (int j = 0; j < n3; ++j) {
    double* __restrict cj = c + std::size_t(j) * n1;
    for (int i = 0; i < n1; ++i) cj[i] = 0.0;
    const double* bj = b + std::size_t(j) * n2;
    for (int l = 0; l < n2; ++l) {
      const double blj = bj[l];
      const double* __restrict al = a + std::size_t(l) * n1;
      for (int i = 0; i < n1; ++i) cj[i] += al[i] * blj;
    }
  }
}

void mxm_acc(const double* a, int n1, const double* b, int n2, double* c,
             int n3) {
  for (int j = 0; j < n3; ++j) {
    double* __restrict cj = c + std::size_t(j) * n1;
    const double* bj = b + std::size_t(j) * n2;
    for (int l = 0; l < n2; ++l) {
      const double blj = bj[l];
      const double* __restrict al = a + std::size_t(l) * n1;
      for (int i = 0; i < n1; ++i) cj[i] += al[i] * blj;
    }
  }
}

}  // namespace cmtbone::kernels
