#include "kernels/mxm.hpp"

namespace cmtbone::kernels {

// Column-major C(i,j) = sum_l A(i,l) B(l,j). The j-l-i ordering streams
// unit-stride through A's columns and C's columns, which vectorizes well
// for the small N (5..25) this library cares about.

void mxm(const double* a, int n1, const double* b, int n2, double* c, int n3) {
  for (int j = 0; j < n3; ++j) {
    double* __restrict cj = c + std::size_t(j) * n1;
    for (int i = 0; i < n1; ++i) cj[i] = 0.0;
    const double* bj = b + std::size_t(j) * n2;
    for (int l = 0; l < n2; ++l) {
      const double blj = bj[l];
      const double* __restrict al = a + std::size_t(l) * n1;
      for (int i = 0; i < n1; ++i) cj[i] += al[i] * blj;
    }
  }
}

void mxm_acc(const double* a, int n1, const double* b, int n2, double* c,
             int n3) {
  for (int j = 0; j < n3; ++j) {
    double* __restrict cj = c + std::size_t(j) * n1;
    const double* bj = b + std::size_t(j) * n2;
    for (int l = 0; l < n2; ++l) {
      const double blj = bj[l];
      const double* __restrict al = a + std::size_t(l) * n1;
      for (int i = 0; i < n1; ++i) cj[i] += al[i] * blj;
    }
  }
}

// With N2 known at compile time the contraction fully unrolls and each C
// entry lives in a register for its whole accumulation: one store per
// result instead of the runtime loop's zero-fill pass plus N2 read-modify-
// write sweeps over the C column. A 4-wide i-block keeps enough independent
// accumulator chains in flight to hide the fma latency. Accumulation runs
// over l ascending from zero — the same floating-point sequence per C entry
// as mxm(), so the results are bit-identical.
template <int N2>
void mxm_fixed(const double* a, int n1, const double* b, double* c, int n3) {
  const double* __restrict ar = a;
  for (int j = 0; j < n3; ++j) {
    double* __restrict cj = c + std::size_t(j) * n1;
    const double* __restrict bj = b + std::size_t(j) * N2;
    int i = 0;
    for (; i + 4 <= n1; i += 4) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
#pragma GCC unroll 32
      for (int l = 0; l < N2; ++l) {
        const double blj = bj[l];
        const double* __restrict al = ar + std::size_t(l) * n1 + i;
        s0 += al[0] * blj;
        s1 += al[1] * blj;
        s2 += al[2] * blj;
        s3 += al[3] * blj;
      }
      cj[i] = s0;
      cj[i + 1] = s1;
      cj[i + 2] = s2;
      cj[i + 3] = s3;
    }
    for (; i < n1; ++i) {
      double s = 0.0;
#pragma GCC unroll 32
      for (int l = 0; l < N2; ++l) s += ar[std::size_t(l) * n1 + i] * bj[l];
      cj[i] = s;
    }
  }
}

MxmFixedFn mxm_fixed_kernel(int n2) {
  switch (n2) {
#define CMTBONE_CASE(N) \
  case N: return &mxm_fixed<N>;
    CMTBONE_CASE(2)
    CMTBONE_CASE(3)
    CMTBONE_CASE(4)
    CMTBONE_CASE(5)
    CMTBONE_CASE(6)
    CMTBONE_CASE(7)
    CMTBONE_CASE(8)
    CMTBONE_CASE(9)
    CMTBONE_CASE(10)
    CMTBONE_CASE(11)
    CMTBONE_CASE(12)
    CMTBONE_CASE(13)
    CMTBONE_CASE(14)
    CMTBONE_CASE(15)
    CMTBONE_CASE(16)
    CMTBONE_CASE(17)
    CMTBONE_CASE(18)
    CMTBONE_CASE(19)
    CMTBONE_CASE(20)
    CMTBONE_CASE(21)
    CMTBONE_CASE(22)
    CMTBONE_CASE(23)
    CMTBONE_CASE(24)
    CMTBONE_CASE(25)
#undef CMTBONE_CASE
    default: return nullptr;
  }
}

#define CMTBONE_INSTANTIATE(N) \
  template void mxm_fixed<N>(const double*, int, const double*, double*, int);
CMTBONE_INSTANTIATE(2)
CMTBONE_INSTANTIATE(3)
CMTBONE_INSTANTIATE(4)
CMTBONE_INSTANTIATE(5)
CMTBONE_INSTANTIATE(6)
CMTBONE_INSTANTIATE(7)
CMTBONE_INSTANTIATE(8)
CMTBONE_INSTANTIATE(9)
CMTBONE_INSTANTIATE(10)
CMTBONE_INSTANTIATE(11)
CMTBONE_INSTANTIATE(12)
CMTBONE_INSTANTIATE(13)
CMTBONE_INSTANTIATE(14)
CMTBONE_INSTANTIATE(15)
CMTBONE_INSTANTIATE(16)
CMTBONE_INSTANTIATE(17)
CMTBONE_INSTANTIATE(18)
CMTBONE_INSTANTIATE(19)
CMTBONE_INSTANTIATE(20)
CMTBONE_INSTANTIATE(21)
CMTBONE_INSTANTIATE(22)
CMTBONE_INSTANTIATE(23)
CMTBONE_INSTANTIATE(24)
CMTBONE_INSTANTIATE(25)
#undef CMTBONE_INSTANTIATE

}  // namespace cmtbone::kernels
