// Portable SIMD backend: baseline compile flags, 2-wide generic vectors
// (SSE2 on x86; double-pumped scalar elsewhere). Always compiled, always
// runnable — the fallback when the ISA TUs are disabled or the CPU lacks
// them. No hardware FMA is assumed: the fma=true kernels here go through
// correctly-rounded __builtin_fma (slow; exists for parity testing only).

#define CMTBONE_SIMD_NS portable
#define CMTBONE_SIMD_NAME "portable"
#define CMTBONE_SIMD_MAXW 2
#define CMTBONE_SIMD_HW_FMA 0
#include "kernels/simd_kernels.inc.hpp"

namespace cmtbone::kernels::detail {
const SimdBackend* simd_table_portable() { return portable::backend_table(); }
}  // namespace cmtbone::kernels::detail
