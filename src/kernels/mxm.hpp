#pragma once
// Small-matrix multiply, the workhorse of the spectral element solver.
//
// Nek5000's `mxm(a,n1,b,n2,c,n3)` computes C = A*B for column-major
// matrices A(n1,n2), B(n2,n3), C(n1,n3). The derivative, dealiasing, and
// Nekbone stiffness kernels are all expressed through it (paper §IV-V).

#include <cstddef>

namespace cmtbone::kernels {

/// C(n1,n3) = A(n1,n2) * B(n2,n3), column-major, C overwritten.
void mxm(const double* a, int n1, const double* b, int n2, double* c, int n3);

/// C += A * B (accumulating form, used by the Nekbone operator).
void mxm_acc(const double* a, int n1, const double* b, int n2, double* c,
             int n3);

// --- fixed-N microkernels ----------------------------------------------------
// The contraction length n2 is the polynomial order N in every tensor
// contraction of the solver (paper range 5..25), so a compile-time-N fast
// path pays everywhere: the inner accumulation fully unrolls, C columns stay
// in registers, and the zero-then-accumulate memory round-trip of the
// runtime loop disappears. Accumulation order over l is ascending in both
// forms, so the fixed kernels are bit-identical to mxm().

/// Same contract as mxm() with n2 = N2 fixed at compile time.
template <int N2>
void mxm_fixed(const double* a, int n1, const double* b, double* c, int n3);

/// Signature of a fixed-N2 kernel (a, n1, b, c, n3).
using MxmFixedFn = void (*)(const double*, int, const double*, double*, int);

/// Dispatch-table lookup, done once per size by callers that loop: returns
/// the specialized kernel for contraction length n2, or nullptr when n2 is
/// outside the specialized range (2..25).
MxmFixedFn mxm_fixed_kernel(int n2);

/// mxm() routed through the fixed-N dispatch, falling back to the runtime
/// loop for unspecialized sizes. Bit-identical to mxm() either way.
inline void mxm_auto(const double* a, int n1, const double* b, int n2,
                     double* c, int n3) {
  if (MxmFixedFn f = mxm_fixed_kernel(n2)) {
    f(a, n1, b, c, n3);
  } else {
    mxm(a, n1, b, n2, c, n3);
  }
}

/// Flop count of one mxm call (multiplies + adds).
inline long long mxm_flops(int n1, int n2, int n3) {
  return 2LL * n1 * n2 * n3;
}

}  // namespace cmtbone::kernels
