#pragma once
// Small-matrix multiply, the workhorse of the spectral element solver.
//
// Nek5000's `mxm(a,n1,b,n2,c,n3)` computes C = A*B for column-major
// matrices A(n1,n2), B(n2,n3), C(n1,n3). The derivative, dealiasing, and
// Nekbone stiffness kernels are all expressed through it (paper §IV-V).

#include <cstddef>

namespace cmtbone::kernels {

/// C(n1,n3) = A(n1,n2) * B(n2,n3), column-major, C overwritten.
void mxm(const double* a, int n1, const double* b, int n2, double* c, int n3);

/// C += A * B (accumulating form, used by the Nekbone operator).
void mxm_acc(const double* a, int n1, const double* b, int n2, double* c,
             int n3);

/// Flop count of one mxm call (multiplies + adds).
inline long long mxm_flops(int n1, int n2, int n3) {
  return 2LL * n1 * n2 * n3;
}

}  // namespace cmtbone::kernels
