#pragma once
// Pointwise vector kernels for the solver's non-contraction inner loops:
// the dssum multiplicity scaling, the fused-divergence combine, the Nekbone
// ax tail, and the CG inner products.
//
// These loops are memory-bound streams; the win over leaving them to the
// autovectorizer is a guaranteed vector shape (GCC generic vectors, so the
// TU vectorizes under the baseline flags with no ISA gamble) and an
// explicit accumulation-order contract:
//
//   * The elementwise ops (scale / combine / ax tail) touch each index
//     independently — vector width cannot change a single result bit, so
//     they are unconditionally safe for the bit-identity paths.
//   * weighted_dot is a reduction, so lane-parallel accumulation IS a
//     reorder. The strict form reproduces the historical scalar ascending
//     loop bit for bit; the vector form commits to a fixed 4-lane
//     accumulator shape folded in a fixed order, which is deterministic and
//     machine/ISA-independent — just different bits from strict. Callers
//     pick per the active kernel backend (scalar backend => strict).
//
// Compiled with -ffp-contract=off (see CMakeLists): the combine ops spell
// multiply and add separately and must stay that way to match the fused
// kernels they replace.

#include <cstddef>

namespace cmtbone::kernels {

/// x[i] *= s[i] for i in [0, count).
void pointwise_scale(double* x, const double* s, std::size_t count);

/// out[i] = sx*out[i] + sy*gs[i] + sz*gt[i] — the div3 combine, evaluated
/// left to right exactly like the fused kernel's (sx*ar + sy*as) + sz*at.
void combine_div3(double* out, const double* gs, const double* gt, double sx,
                  double sy, double sz, std::size_t count);

/// w[i] = h1*(w[i] + s[i]) + h2*m[i]*u[i] — the Nekbone local_ax tail,
/// in the historical scalar evaluation order (h2*m rounds first).
void ax_combine(double* w, const double* s, const double* m, const double* u,
                double h1, double h2, std::size_t count);

/// sum over i of a[i]*b[i]*w[i]. strict_order=true is the plain ascending
/// scalar loop; false uses the 4-lane accumulator shape described above.
double weighted_dot(const double* a, const double* b, const double* w,
                    std::size_t count, bool strict_order);

}  // namespace cmtbone::kernels
