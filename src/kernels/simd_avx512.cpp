// AVX-512 backend TU: compiled with -mavx512f -mfma (avx512f implies AVX2
// but not the __FMA__ macro, which the narrow-vector fused kernels test),
// plus -ffp-contract=off; see simd_kernels.inc.hpp. Only added to the
// build when the compiler accepts the flags; only handed out by dispatch
// when the CPU reports avx512f.

#define CMTBONE_SIMD_NS avx512
#define CMTBONE_SIMD_NAME "avx512"
#define CMTBONE_SIMD_MAXW 8
#define CMTBONE_SIMD_HW_FMA 1
#include "kernels/simd_kernels.inc.hpp"

namespace cmtbone::kernels::detail {
const SimdBackend* simd_table_avx512() { return avx512::backend_table(); }
}  // namespace cmtbone::kernels::detail
