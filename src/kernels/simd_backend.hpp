#pragma once
// Explicit-SIMD mxm backends, one per instruction set, selected at runtime.
//
// The fixed-N kernels in mxm.cpp rely on the autovectorizer under the
// project's baseline flags (-O2, no -march), which caps them at SSE2. To use
// the wide units that the paper's contraction sizes (N=5..25) can feed, the
// same register-blocked kernel body (simd_kernels.inc.hpp) is compiled into
// three translation units with different ISA flags:
//
//   simd_portable.cpp   baseline flags       2-wide vectors (SSE2 on x86)
//   simd_avx2.cpp       -mavx2 -mfma         4-wide (compiled only if the
//                                            compiler supports the flag)
//   simd_avx512.cpp     -mavx512f            8-wide (likewise)
//
// Each TU wraps the shared body in its own namespace so the three copies
// have distinct mangled names — with identical names the linker would keep
// one copy of any inline helper and silently run, say, AVX-512 code on an
// AVX2-selected path (the classic multi-ISA ODR trap). The dispatch layer
// (dispatch.hpp) checks CPU support with __builtin_cpu_supports before
// handing out an ISA backend; the portable backend always exists.
//
// Accumulation-order policy (shared with mxm / mxm_fixed): every C entry
// accumulates over l ascending from zero; SIMD parallelism is only across
// output rows (i), never across the contraction. The fma=false kernels
// round each multiply and each add separately (the TUs are compiled with
// -ffp-contract=off so the compiler cannot fuse them) and are therefore
// bit-identical to the scalar reference. The fma=true kernels keep the same
// order but contract each step into one fused multiply-add — a single
// rounding per step, so results differ from scalar by a bounded ULP count
// yet are still deterministic run-to-run and across thread counts.

#include "kernels/mxm.hpp"

namespace cmtbone::kernels {

/// One compiled-in SIMD instruction-set backend.
struct SimdBackend {
  const char* name;  // "portable" | "avx2" | "avx512"
  int width;         // doubles per vector register the TU targets
  bool hw_fma;       // fused multiply-add executes in hardware
  /// Kernel for contraction length n2 in [2,25]; nullptr outside that
  /// range. Signature matches MxmFixedFn: (a, n1, b, c, n3) with n2 baked
  /// in. fma selects the fused-multiply-add flavor (see policy above).
  MxmFixedFn (*mxm_kernel)(int n2, bool fma);
  /// Measured register-resident multiply-add throughput in GFLOP/s — the
  /// compute roof for this backend on this machine (used by prof's
  /// roofline). Runs a short (~ms) probe on every call.
  double (*measure_peak_gflops)();
};

/// Always available; compiled with the project's baseline flags.
const SimdBackend* simd_backend_portable();
/// Compiled-in AND supported by this CPU, else nullptr.
const SimdBackend* simd_backend_avx2();
const SimdBackend* simd_backend_avx512();
/// Widest backend that is compiled in and runnable on this CPU.
const SimdBackend* simd_backend_best();

namespace detail {
// Raw per-TU tables; use the checked getters above, which gate on runtime
// CPU support. Declarations exist unconditionally; the ISA definitions are
// only linked when CMake compiles the matching TU.
const SimdBackend* simd_table_portable();
const SimdBackend* simd_table_avx2();
const SimdBackend* simd_table_avx512();
}  // namespace detail

}  // namespace cmtbone::kernels
