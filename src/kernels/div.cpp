#include "kernels/div.hpp"

#include <cstddef>
#include <vector>

#include "kernels/dispatch.hpp"
#include "kernels/gradient.hpp"
#include "kernels/vecops.hpp"

namespace cmtbone::kernels {

namespace {

void div3_fused_elem(const double* __restrict d, const double* __restrict fx,
                     const double* __restrict fy, const double* __restrict fz,
                     double* __restrict out, int n, double sx, double sy,
                     double sz) {
  const std::size_t n2 = std::size_t(n) * n;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        double ar = 0.0, as = 0.0, at = 0.0;
        const double* fx_col = fx + n * (j + std::size_t(n) * k);
        for (int l = 0; l < n; ++l) {
          ar += d[i + std::size_t(n) * l] * fx_col[l];
          as += d[j + std::size_t(n) * l] * fy[i + n * (l + std::size_t(n) * k)];
          at += d[k + std::size_t(n) * l] * fz[i + n * j + n2 * l];
        }
        out[i + n * (j + std::size_t(n) * k)] = sx * ar + sy * as + sz * at;
      }
    }
  }
}

}  // namespace

void div3(const double* d, const double* fx, const double* fy,
          const double* fz, double* out, int n, int nel, double sx, double sy,
          double sz, bool fused, double* work) {
  const std::size_t elem = std::size_t(n) * n * n;
  if (fused) {
    for (int e = 0; e < nel; ++e) {
      div3_fused_elem(d, fx + e * elem, fy + e * elem, fz + e * elem,
                      out + e * elem, n, sx, sy, sz);
    }
    return;
  }

  // Reference path: three separate derivative sweeps.
  std::vector<double> local_work;
  if (work == nullptr) {
    local_work.resize(elem * nel);
    work = local_work.data();
  }
  grad_r(GradVariant::kFusedUnrolled, d, fx, out, n, nel);
  for (std::size_t p = 0; p < elem * nel; ++p) out[p] *= sx;
  grad_s(GradVariant::kFusedUnrolled, d, fy, work, n, nel);
  for (std::size_t p = 0; p < elem * nel; ++p) out[p] += sy * work[p];
  grad_t(GradVariant::kFusedUnrolled, d, fz, work, n, nel);
  for (std::size_t p = 0; p < elem * nel; ++p) out[p] += sz * work[p];
}

void div3_dispatch(const double* d, const double* fx, const double* fy,
                   const double* fz, double* out, int n, int nel, double sx,
                   double sy, double sz, double* work) {
  // With the scalar backend the dispatch contractions would fall back to
  // runtime mxm sweeps — the register-blocked fused kernel is strictly
  // better there, and its bits match (same ascending-l accumulation, same
  // combine order).
  if (selected_backend(n) == Backend::kScalar) {
    div3(d, fx, fy, fz, out, n, nel, sx, sy, sz, /*fused=*/true);
    return;
  }
  const std::size_t cnt = std::size_t(n) * n * n * nel;
  std::vector<double> local_work;
  if (work == nullptr) {
    local_work.resize(2 * cnt);
    work = local_work.data();
  }
  double* gs = work;
  double* gt = work + cnt;
  grad_dispatch(0, d, fx, out, n, nel);
  grad_dispatch(1, d, fy, gs, n, nel);
  grad_dispatch(2, d, fz, gt, n, nel);
  combine_div3(out, gs, gt, sx, sy, sz, cnt);
}

}  // namespace cmtbone::kernels
