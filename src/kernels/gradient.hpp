#pragma once
// Partial-derivative kernels dudr / duds / dudt and their loop-transformation
// variants — the subject of the paper's Section V optimization study.
//
// For a field u(i,j,k) of N^3 GLL values per element (column-major, i
// fastest) and the N x N derivative matrix D:
//
//   dudr(i,j,k) = sum_l D(i,l) u(l,j,k)     (contraction over the 1st index)
//   duds(i,j,k) = sum_l D(j,l) u(i,l,k)     (contraction over the 2nd index)
//   dudt(i,j,k) = sum_l D(k,l) u(i,j,l)     (contraction over the 3rd index)
//
// Each is an O(N^4) operation per element. The paper reports that the
// CMT-bone kernels (inherited from Nek5000) fully unroll the innermost loop
// for all three derivatives and fuse the two outermost loops for the r- and
// t-derivatives; duds's access pattern forbids fusion. The variants here
// implement exactly those transformations so the Fig. 5 / Fig. 6 comparison
// can be regenerated:
//
//   kBasic          plain triple loop + inner contraction, no transformations
//   kFused          outer loops fused (r: over jk; t: over ij); duds = basic
//   kUnrolled       inner contraction fully unrolled (compile-time N)
//   kFusedUnrolled  both — the production CMT-bone / Nek5000 form
//   kBlocked        cache-blocked over the fused index (our extension,
//                   exercised by the ablation bench)
//   kMxmFixed       each contraction expressed as an mxm routed through the
//                   fixed-N microkernel dispatch (see kernels/mxm.hpp); the
//                   s/t directions multiply by D^T, transposed once per
//                   field. Bit-identical to kBasic.
//   kDispatch       routed through the runtime backend-dispatch layer
//                   (kernels/dispatch.hpp): scalar / fixed-N / SIMD /
//                   batched, chosen by force, tuning table, or default.
//                   Bit-identical to kBasic for every backend except the
//                   explicitly opted-into fused-multiply-add one.

#include <string>
#include <vector>

namespace cmtbone::kernels {

enum class GradVariant {
  kBasic,
  kFused,
  kUnrolled,
  kFusedUnrolled,
  kBlocked,
  kMxmFixed,
  kDispatch,
};

const char* variant_name(GradVariant v);
/// All variants, in declaration order (for sweeps).
const std::vector<GradVariant>& all_variants();

/// One derivative over `nel` elements. `d` is the N x N derivative matrix,
/// `u` the input field (N^3 * nel), `out` the derivative field (same size).
void grad_r(GradVariant v, const double* d, const double* u, double* out,
            int n, int nel);
void grad_s(GradVariant v, const double* d, const double* u, double* out,
            int n, int nel);
void grad_t(GradVariant v, const double* d, const double* u, double* out,
            int n, int nel);

/// All three derivatives of one field (the flux-divergence building block).
void grad3(GradVariant v, const double* d, const double* u, double* ur,
           double* us, double* ut, int n, int nel);

/// Flops of one directional derivative over nel elements: 2 N^4 nel.
inline long long grad_flops(int n, int nel) {
  return 2LL * n * n * n * n * nel;
}

/// Minimal main-memory bytes of one directional derivative over nel
/// elements (u read once, out written once; D stays cached) — the byte
/// side of the roofline arithmetic intensity.
inline long long grad_bytes(int n, int nel) {
  return 2LL * 8 * n * n * n * nel;
}

/// Analytic instruction-count model per directional derivative, the stand-in
/// for the paper's PAPI "total instructions" column. Counts floating ops,
/// memory ops and loop-control overhead; the transformation variants differ
/// only in overhead, mirroring why they execute fewer instructions.
long long grad_instruction_estimate(GradVariant v, int n, int nel);

}  // namespace cmtbone::kernels
