#pragma once
// Unified kernel-backend dispatch: scalar, fixed-N, SIMD, SIMD+FMA, and
// element-batched variants of the solver's tensor contractions behind one
// call site, selectable at runtime.
//
// Selection precedence, checked per contraction length n:
//
//   1. forced backend — set_forced_backend() or, once at first use, the
//      CMTBONE_KERNEL_BACKEND environment variable
//   2. applied tuning table (apply_tune_table / ensure_tuned) — best
//      measured backend per n
//   3. default: kBatched (the widest compiled-in, CPU-supported SIMD ISA
//      with element batching — the fastest choice on every machine we have
//      measured; falls back gracefully, see below)
//
// Backends degrade, never abort: outside the specialized range n ∈ [2,25],
// or when no SIMD TU for the selected ISA is compiled in, dispatch falls
// back (SIMD → fixed-N → scalar) while preserving the scalar accumulation
// order, so results stay bit-identical to the reference.
//
// Accumulation-order policy (documented in full in simd_backend.hpp and
// DESIGN.md): every backend except kSimdFma reproduces the scalar
// reference bit for bit; kSimdFma keeps the same accumulation order but
// fuses each multiply-add into a single rounding — deterministic
// run-to-run and across thread counts, ULP-bounded against scalar.

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kernels/mxm.hpp"

namespace cmtbone::kernels {

enum class Backend {
  kScalar,   // runtime-N loops (kernels::mxm / basic gradients)
  kFixedN,   // compile-time-N dispatch table (mxm_fixed)
  kSimd,     // explicit vector kernels, mul+add kept separate (bit-exact)
  kSimdFma,  // explicit vector kernels with fused multiply-add
  kBatched,  // SIMD kernels + element batching (r contracts all elements
             // in one call; s/t amortize the D transpose per field)
};

inline constexpr int kNumBackends = 5;
inline constexpr int kMinDispatchN = 2;
inline constexpr int kMaxDispatchN = 25;

const char* backend_name(Backend b);
/// Parse "scalar" | "fixed-n" | "simd" | "simd-fma" | "batched"; nullopt on
/// anything else.
std::optional<Backend> backend_from_name(std::string_view name);
/// All backends in declaration order (for sweeps and tests).
const std::vector<Backend>& all_backends();

/// True when the backend preserves the scalar accumulation contract and is
/// therefore bit-identical to kScalar; false only for kSimdFma.
bool backend_bit_identical(Backend b);

/// Name of the widest SIMD instruction set dispatch will actually use on
/// this machine ("avx512" | "avx2" | "portable") — compiled-in AND
/// CPU-supported. Tags tuning caches so a table measured elsewhere is
/// rejected here.
const char* isa_name();

// ---- selection --------------------------------------------------------------

/// Override every other selection source process-wide (nullopt clears).
/// Thread-safe; kernels already in flight finish on their old choice.
void set_forced_backend(std::optional<Backend> b);
std::optional<Backend> forced_backend();

/// The backend dispatch will use for contraction length n right now.
Backend selected_backend(int n);

/// RAII force for tests and benches: forces `b` on construction, restores
/// the previous force state on destruction.
class ScopedBackendForce {
 public:
  explicit ScopedBackendForce(std::optional<Backend> b)
      : prev_(forced_backend()) {
    set_forced_backend(b);
  }
  ~ScopedBackendForce() { set_forced_backend(prev_); }
  ScopedBackendForce(const ScopedBackendForce&) = delete;
  ScopedBackendForce& operator=(const ScopedBackendForce&) = delete;

 private:
  std::optional<Backend> prev_;
};

// ---- kernel entry points ----------------------------------------------------

/// Contraction kernel for length n2 under the currently selected backend,
/// or nullptr when the selection is kScalar or n2 is unspecialized — the
/// caller then uses the runtime mxm(), which is the same bit-exact result.
MxmFixedFn dispatch_mxm(int n2);

/// One directional derivative (dir: 0 = r, 1 = s, 2 = t) over nel elements
/// under an explicit backend. Same contract as grad_r/s/t.
void grad_backend(Backend b, int dir, const double* d, const double* u,
                  double* out, int n, int nel);

/// Same, under the current selection (this is what GradVariant::kDispatch
/// routes to).
void grad_dispatch(int dir, const double* d, const double* u, double* out,
                   int n, int nel);

// ---- autotuning -------------------------------------------------------------

struct TuneEntry {
  int n = 0;
  Backend best = Backend::kBatched;
  /// Measured seconds per sweep, indexed by Backend declaration order.
  std::array<double, kNumBackends> seconds{};
};

struct TuneTable {
  std::string isa;  // isa_name() at measurement time
  std::vector<TuneEntry> entries;
};

/// Measure every backend on a gradient-shaped workload for each n; returns
/// the table (does not install it).
TuneTable autotune(const std::vector<int>& ns);

/// Install / clear the per-n selection used at precedence level 2.
void apply_tune_table(const TuneTable& table);
void clear_tune_table();

/// Text round-trip. parse_tune_table validates magic, version, ISA (must
/// match this machine), the backend list (staleness guard against future
/// backend-set changes), and every entry; any anomaly yields nullopt so
/// callers re-tune instead of trusting a bad cache.
std::string serialize_tune_table(const TuneTable& table);
std::optional<TuneTable> parse_tune_table(std::string_view text);

/// File round-trip; load returns nullopt on unreadable or invalid files,
/// save returns false on I/O failure. Never throws, never aborts.
bool save_tune_cache(const TuneTable& table, const std::string& path);
std::optional<TuneTable> load_tune_cache(const std::string& path);

/// Startup convenience mirroring gs_autotune_sweep: if a forced backend is
/// active (env or programmatic) the cache is ignored and an empty table
/// returns; else a valid cache at `path` is loaded and applied; else the
/// sizes are tuned, applied, and saved to `path` (save skipped when `path`
/// is empty).
TuneTable ensure_tuned(const std::vector<int>& ns, const std::string& path);

/// Environment knobs (read once, at first selection):
///   CMTBONE_KERNEL_BACKEND    backend name → forced backend
///   CMTBONE_KERNEL_AUTOTUNE   "1" → tune n ∈ [2,25] at first use
///   CMTBONE_KERNEL_TUNE_CACHE cache file path for the startup tune
inline constexpr const char* kBackendEnvVar = "CMTBONE_KERNEL_BACKEND";
inline constexpr const char* kAutotuneEnvVar = "CMTBONE_KERNEL_AUTOTUNE";
inline constexpr const char* kTuneCacheEnvVar = "CMTBONE_KERNEL_TUNE_CACHE";

/// Re-read the environment knobs (tests use this after setenv; normal code
/// never needs it). Clears any applied tune table first.
void reload_env_selection();

}  // namespace cmtbone::kernels
