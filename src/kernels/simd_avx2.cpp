// AVX2+FMA backend TU: compiled with -mavx2 -mfma (plus -ffp-contract=off;
// see simd_kernels.inc.hpp). Only added to the build when the compiler
// accepts those flags; only handed out by dispatch when the CPU reports
// avx2 and fma support.

#define CMTBONE_SIMD_NS avx2
#define CMTBONE_SIMD_NAME "avx2"
#define CMTBONE_SIMD_MAXW 4
#define CMTBONE_SIMD_HW_FMA 1
#include "kernels/simd_kernels.inc.hpp"

namespace cmtbone::kernels::detail {
const SimdBackend* simd_table_avx2() { return avx2::backend_table(); }
}  // namespace cmtbone::kernels::detail
