// Register-blocked SIMD mxm kernel body, compiled once per instruction-set
// translation unit (see simd_backend.hpp for the multi-TU scheme and the
// accumulation-order policy). The including TU must define, BEFORE the
// include:
//
//   CMTBONE_SIMD_NS      unique namespace for this TU (ODR isolation)
//   CMTBONE_SIMD_NAME    backend name string
//   CMTBONE_SIMD_MAXW    widest vector width in doubles: 2, 4, or 8
//   CMTBONE_SIMD_HW_FMA  1 when the TU's ISA flags include hardware FMA
//
// and must be compiled with -ffp-contract=off: the fma=false kernels spell
// the accumulation as separate multiply and add, and contraction into an
// FMA would silently change their rounding and break bit-parity with the
// scalar reference. The fma=true kernels request fusion explicitly.
//
// No include guard on purpose: each TU includes this exactly once inside
// its own macro configuration.

#include <chrono>
#include <cstddef>
#include <cstring>

#include "kernels/simd_backend.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cmtbone::kernels {
namespace CMTBONE_SIMD_NS {

// GCC/Clang generic vectors: W-wide double arithmetic at any W on any
// target — widths beyond the hardware are double-pumped by the compiler.
// Loads and stores go through memcpy, which lowers to unaligned vector
// moves; kernel extents are arbitrary so no alignment is assumed.
template <int W>
struct Vec {
  typedef double V __attribute__((vector_size(W * 8)));
  V v;

  static Vec load(const double* p) {
    Vec r;
    __builtin_memcpy(&r.v, p, sizeof(V));
    return r;
  }
  void store(double* p) const { __builtin_memcpy(p, &v, sizeof(V)); }
  static Vec zero() { return Vec{V{}}; }
  static Vec bcast(double x) { return Vec{V{} + x}; }
};

// mac<false>: c + a*b with two roundings — the scalar-reference order.
// mac<true>: one fused multiply-add (single rounding). Hardware intrinsics
// where the TU's ISA provides them; otherwise per-lane __builtin_fma, which
// is correctly rounded but slow (libm) — a correctness path, never picked
// by tuning.
template <bool Fma, int W>
inline Vec<W> mac(Vec<W> a, Vec<W> b, Vec<W> c) {
  if constexpr (!Fma) {
    return Vec<W>{c.v + a.v * b.v};
  } else {
#if defined(__AVX512F__)
    if constexpr (W == 8) {
      return Vec<8>{(typename Vec<8>::V)_mm512_fmadd_pd(
          (__m512d)a.v, (__m512d)b.v, (__m512d)c.v)};
    }
#endif
#if defined(__FMA__)
    if constexpr (W == 4) {
      return Vec<4>{(typename Vec<4>::V)_mm256_fmadd_pd(
          (__m256d)a.v, (__m256d)b.v, (__m256d)c.v)};
    }
    if constexpr (W == 2) {
      return Vec<2>{(typename Vec<2>::V)_mm_fmadd_pd((__m128d)a.v, (__m128d)b.v,
                                                     (__m128d)c.v)};
    }
#endif
    Vec<W> r;
    for (int i = 0; i < W; ++i) {
      r.v[i] = __builtin_fma(a.v[i], b.v[i], c.v[i]);
    }
    return r;
  }
}

// Rows [i0, i0 + floor((n1-i0)/W)*W) of C, W rows per vector, with a 4-wide
// column block so four C columns accumulate per sweep over A — the l loop
// is the only loop carrying the accumulation and it runs ascending, per the
// policy. Returns the first row not covered.
template <int W, bool Fma, int N2>
int mxm_rows(const double* __restrict a, int n1, const double* __restrict b,
             double* __restrict c, int n3, int i0) {
  using V = Vec<W>;
  for (; i0 + W <= n1; i0 += W) {
    const double* ai = a + i0;
    int j = 0;
    for (; j + 4 <= n3; j += 4) {
      const double* __restrict b0 = b + std::size_t(j) * N2;
      V s0 = V::zero(), s1 = V::zero(), s2 = V::zero(), s3 = V::zero();
#pragma GCC unroll 32
      for (int l = 0; l < N2; ++l) {
        const V av = V::load(ai + std::size_t(l) * n1);
        s0 = mac<Fma>(av, V::bcast(b0[l]), s0);
        s1 = mac<Fma>(av, V::bcast(b0[N2 + l]), s1);
        s2 = mac<Fma>(av, V::bcast(b0[2 * N2 + l]), s2);
        s3 = mac<Fma>(av, V::bcast(b0[3 * N2 + l]), s3);
      }
      double* cj = c + std::size_t(j) * n1 + i0;
      s0.store(cj);
      s1.store(cj + n1);
      s2.store(cj + 2 * std::size_t(n1));
      s3.store(cj + 3 * std::size_t(n1));
    }
    for (; j < n3; ++j) {
      const double* __restrict bj = b + std::size_t(j) * N2;
      V s = V::zero();
#pragma GCC unroll 32
      for (int l = 0; l < N2; ++l) {
        s = mac<Fma>(V::load(ai + std::size_t(l) * n1), V::bcast(bj[l]), s);
      }
      s.store(c + std::size_t(j) * n1 + i0);
    }
  }
  return i0;
}

// Leftover rows, scalar — same l-ascending order, so still bit-identical
// (fma=false) or single-rounding-per-step (fma=true).
template <bool Fma, int N2>
void mxm_tail(const double* __restrict a, int n1, const double* __restrict b,
              double* __restrict c, int n3, int i0) {
  for (int j = 0; j < n3; ++j) {
    const double* __restrict bj = b + std::size_t(j) * N2;
    for (int i = i0; i < n1; ++i) {
      double s = 0.0;
#pragma GCC unroll 32
      for (int l = 0; l < N2; ++l) {
        if constexpr (Fma) {
          s = __builtin_fma(a[std::size_t(l) * n1 + i], bj[l], s);
        } else {
          s += a[std::size_t(l) * n1 + i] * bj[l];
        }
      }
      c[std::size_t(j) * n1 + i] = s;
    }
  }
}

/// C(n1,n3) = A(n1,N2) * B(N2,n3), column-major. Row cascade: full-width
/// vectors first, then narrower, then a scalar tail, so odd n1 (the common
/// case — n1 is N or N^2 for odd N) keeps most rows vectorized.
template <bool Fma, int N2>
void mxm_simd(const double* a, int n1, const double* b, double* c, int n3) {
  int i = 0;
#if CMTBONE_SIMD_MAXW >= 8
  i = mxm_rows<8, Fma, N2>(a, n1, b, c, n3, i);
#endif
#if CMTBONE_SIMD_MAXW >= 4
  i = mxm_rows<4, Fma, N2>(a, n1, b, c, n3, i);
#endif
  i = mxm_rows<2, Fma, N2>(a, n1, b, c, n3, i);
  if (i < n1) mxm_tail<Fma, N2>(a, n1, b, c, n3, i);
}

MxmFixedFn mxm_kernel(int n2, bool fma) {
  switch (n2) {
#define CMTBONE_CASE(N) \
  case N: return fma ? &mxm_simd<true, N> : &mxm_simd<false, N>;
    CMTBONE_CASE(2)
    CMTBONE_CASE(3)
    CMTBONE_CASE(4)
    CMTBONE_CASE(5)
    CMTBONE_CASE(6)
    CMTBONE_CASE(7)
    CMTBONE_CASE(8)
    CMTBONE_CASE(9)
    CMTBONE_CASE(10)
    CMTBONE_CASE(11)
    CMTBONE_CASE(12)
    CMTBONE_CASE(13)
    CMTBONE_CASE(14)
    CMTBONE_CASE(15)
    CMTBONE_CASE(16)
    CMTBONE_CASE(17)
    CMTBONE_CASE(18)
    CMTBONE_CASE(19)
    CMTBONE_CASE(20)
    CMTBONE_CASE(21)
    CMTBONE_CASE(22)
    CMTBONE_CASE(23)
    CMTBONE_CASE(24)
    CMTBONE_CASE(25)
#undef CMTBONE_CASE
    default: return nullptr;
  }
}

// Compute-roof probe: eight independent W-wide multiply-add chains, enough
// to cover FMA latency on two issue ports, register-resident. Reports the
// best of three short samples as GFLOP/s (2 flops per multiply-add, fused
// or not).
double measure_peak_gflops() {
  constexpr int W = CMTBONE_SIMD_MAXW;
  constexpr bool kFma = CMTBONE_SIMD_HW_FMA != 0;
  using V = Vec<W>;
  const V a = V::bcast(1.0 + 1e-9);
  const V b = V::bcast(1.0 - 1e-9);
  V acc[8];
  for (int u = 0; u < 8; ++u) acc[u] = V::bcast(1e-6 * (u + 1));
  constexpr long kIters = 1L << 20;
  double best = 0.0;
  double sink = 0.0;
  for (int sample = 0; sample < 3; ++sample) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long it = 0; it < kIters; ++it) {
#pragma GCC unroll 8
      for (int u = 0; u < 8; ++u) acc[u] = mac<kFma>(a, b, acc[u]);
    }
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double flops = double(kIters) * 8.0 * W * 2.0;
    if (sec > 0.0) best = best > flops / sec ? best : flops / sec;
  }
  // Consume the accumulators through a volatile so the chains cannot be
  // elided, without taking their address (which would demote them from
  // registers to a stack slot inside the timed loop).
  for (int u = 0; u < 8; ++u) {
    for (int lane = 0; lane < W; ++lane) sink += acc[u].v[lane];
  }
  static volatile double g_probe_sink;
  g_probe_sink = sink;
  (void)g_probe_sink;
  return best / 1e9;
}

const SimdBackend* backend_table() {
  static const SimdBackend table = {
      CMTBONE_SIMD_NAME, CMTBONE_SIMD_MAXW, CMTBONE_SIMD_HW_FMA != 0,
      &mxm_kernel, &measure_peak_gflops};
  return &table;
}

}  // namespace CMTBONE_SIMD_NS
}  // namespace cmtbone::kernels
