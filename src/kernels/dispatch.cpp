#include "kernels/dispatch.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "kernels/gradient.hpp"
#include "kernels/simd_backend.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace cmtbone::kernels {

// ---- ISA backends -----------------------------------------------------------

const SimdBackend* simd_backend_portable() {
  return detail::simd_table_portable();
}

const SimdBackend* simd_backend_avx2() {
#if defined(CMTBONE_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (ok) return detail::simd_table_avx2();
#endif
  return nullptr;
}

const SimdBackend* simd_backend_avx512() {
#if defined(CMTBONE_HAVE_AVX512_TU) && \
    (defined(__x86_64__) || defined(__i386__))
  static const bool ok = __builtin_cpu_supports("avx512f");
  if (ok) return detail::simd_table_avx512();
#endif
  return nullptr;
}

const SimdBackend* simd_backend_best() {
  if (const SimdBackend* b = simd_backend_avx512()) return b;
  if (const SimdBackend* b = simd_backend_avx2()) return b;
  return simd_backend_portable();
}

const char* isa_name() { return simd_backend_best()->name; }

// ---- names ------------------------------------------------------------------

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kFixedN: return "fixed-n";
    case Backend::kSimd: return "simd";
    case Backend::kSimdFma: return "simd-fma";
    case Backend::kBatched: return "batched";
  }
  return "?";
}

std::optional<Backend> backend_from_name(std::string_view name) {
  for (Backend b : all_backends()) {
    if (name == backend_name(b)) return b;
  }
  return std::nullopt;
}

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> v = {Backend::kScalar, Backend::kFixedN,
                                         Backend::kSimd, Backend::kSimdFma,
                                         Backend::kBatched};
  return v;
}

bool backend_bit_identical(Backend b) { return b != Backend::kSimdFma; }

// ---- selection state --------------------------------------------------------

namespace {

constexpr int kNoBackend = -1;

struct Selection {
  std::atomic<int> forced{kNoBackend};
  // Per-n tuned choice, kNoBackend when untuned. Index by n directly; the
  // table is tiny.
  std::array<std::atomic<int>, kMaxDispatchN + 1> tuned;
  Selection() {
    for (auto& t : tuned) t.store(kNoBackend, std::memory_order_relaxed);
  }
};

Selection& sel() {
  static Selection s;
  return s;
}

std::mutex g_env_mu;
bool g_env_done = false;

// Reads the environment knobs. Called under g_env_mu; must not call the
// public ensure_env()-guarded accessors (re-entrancy).
void init_from_env() {
  Selection& s = sel();
  if (const char* v = std::getenv(kBackendEnvVar)) {
    if (auto b = backend_from_name(v)) {
      s.forced.store(int(*b), std::memory_order_relaxed);
    } else {
      util::log_warn() << "ignoring " << kBackendEnvVar << "=\"" << v
                       << "\" (unknown backend; valid: scalar fixed-n simd "
                          "simd-fma batched)";
    }
  }
  if (s.forced.load(std::memory_order_relaxed) != kNoBackend) return;
  const char* tune = std::getenv(kAutotuneEnvVar);
  if (tune == nullptr || std::string_view(tune) != "1") return;
  const char* cache = std::getenv(kTuneCacheEnvVar);
  const std::string path = cache ? cache : "";
  std::vector<int> ns;
  for (int n = kMinDispatchN; n <= kMaxDispatchN; ++n) ns.push_back(n);
  if (!path.empty()) {
    if (auto cached = load_tune_cache(path)) {
      apply_tune_table(*cached);
      return;
    }
  }
  TuneTable t = autotune(ns);
  apply_tune_table(t);
  if (!path.empty()) save_tune_cache(t, path);
}

void ensure_env() {
  std::lock_guard<std::mutex> lock(g_env_mu);
  if (g_env_done) return;
  g_env_done = true;
  init_from_env();
}

}  // namespace

void set_forced_backend(std::optional<Backend> b) {
  ensure_env();
  sel().forced.store(b ? int(*b) : kNoBackend, std::memory_order_relaxed);
}

std::optional<Backend> forced_backend() {
  ensure_env();
  int f = sel().forced.load(std::memory_order_relaxed);
  return f == kNoBackend ? std::nullopt : std::optional<Backend>(Backend(f));
}

Backend selected_backend(int n) {
  ensure_env();
  Selection& s = sel();
  int f = s.forced.load(std::memory_order_relaxed);
  if (f != kNoBackend) return Backend(f);
  if (n >= kMinDispatchN && n <= kMaxDispatchN) {
    int t = s.tuned[n].load(std::memory_order_relaxed);
    if (t != kNoBackend) return Backend(t);
  }
  return Backend::kBatched;
}

void apply_tune_table(const TuneTable& table) {
  Selection& s = sel();
  for (const TuneEntry& e : table.entries) {
    if (e.n >= kMinDispatchN && e.n <= kMaxDispatchN) {
      s.tuned[e.n].store(int(e.best), std::memory_order_relaxed);
    }
  }
}

void clear_tune_table() {
  for (auto& t : sel().tuned) t.store(kNoBackend, std::memory_order_relaxed);
}

void reload_env_selection() {
  std::lock_guard<std::mutex> lock(g_env_mu);
  sel().forced.store(kNoBackend, std::memory_order_relaxed);
  for (auto& t : sel().tuned) t.store(kNoBackend, std::memory_order_relaxed);
  init_from_env();
  g_env_done = true;
}

// ---- kernel entry points ----------------------------------------------------

namespace {

MxmFixedFn simd_mxm_or_null(int n2, bool fma) {
  return simd_backend_best()->mxm_kernel(n2, fma);
}

}  // namespace

MxmFixedFn dispatch_mxm(int n2) {
  switch (selected_backend(n2)) {
    case Backend::kScalar: return nullptr;
    case Backend::kFixedN: return mxm_fixed_kernel(n2);
    case Backend::kSimdFma:
      if (MxmFixedFn f = simd_mxm_or_null(n2, true)) return f;
      return mxm_fixed_kernel(n2);
    case Backend::kSimd:
    case Backend::kBatched:
      // Batching is a gradient-level layout trick; for a lone mxm the
      // batched backend is the plain SIMD kernel.
      if (MxmFixedFn f = simd_mxm_or_null(n2, false)) return f;
      return mxm_fixed_kernel(n2);
  }
  return nullptr;
}

namespace {

// D^T staging shared by the s/t directions (they contract against rows of
// D, i.e. right-multiply by D^T), built once per field call like the
// mxm-fixed gradient path.
struct DTranspose {
  double stack[32 * 32];
  std::vector<double> heap;
  const double* build(const double* d, int n) {
    double* dt = stack;
    if (n > 32) {
      heap.resize(std::size_t(n) * n);
      dt = heap.data();
    }
    for (int l = 0; l < n; ++l) {
      for (int j = 0; j < n; ++j) {
        dt[l + std::size_t(n) * j] = d[j + std::size_t(n) * l];
      }
    }
    return dt;
  }
};

// SIMD gradient: same contraction shapes as the mxm-fixed variant, with
// the explicit vector kernel. `batched` merges the r-direction across all
// elements into a single kernel call (the per-element output columns are
// independent, so the merge is bit-preserving); s and t keep per-slab /
// per-element calls — their layouts do not admit a wider contraction.
void grad_simd(const SimdBackend& bk, bool fma, bool batched, int dir,
               const double* d, const double* u, double* out, int n,
               int nel) {
  MxmFixedFn f = bk.mxm_kernel(n, fma);
  if (f == nullptr) {  // outside the specialized range: bit-exact fallback
    GradVariant v = GradVariant::kMxmFixed;
    if (dir == 0) grad_r(v, d, u, out, n, nel);
    if (dir == 1) grad_s(v, d, u, out, n, nel);
    if (dir == 2) grad_t(v, d, u, out, n, nel);
    return;
  }
  const std::size_t stride = std::size_t(n) * n * n;
  const std::size_t n2 = std::size_t(n) * n;
  if (dir == 0) {
    if (batched) {
      f(d, n, u, out, int(n2) * nel);
    } else {
      for (int e = 0; e < nel; ++e) {
        f(d, n, u + e * stride, out + e * stride, int(n2));
      }
    }
    return;
  }
  DTranspose tr;
  const double* dt = tr.build(d, n);
  if (dir == 1) {
    for (int e = 0; e < nel; ++e) {
      for (int k = 0; k < n; ++k) {
        f(u + e * stride + k * n2, n, dt, out + e * stride + k * n2, n);
      }
    }
  } else {
    for (int e = 0; e < nel; ++e) {
      f(u + e * stride, int(n2), dt, out + e * stride, n);
    }
  }
}

}  // namespace

void grad_backend(Backend b, int dir, const double* d, const double* u,
                  double* out, int n, int nel) {
  switch (b) {
    case Backend::kScalar: {
      GradVariant v = GradVariant::kBasic;
      if (dir == 0) grad_r(v, d, u, out, n, nel);
      if (dir == 1) grad_s(v, d, u, out, n, nel);
      if (dir == 2) grad_t(v, d, u, out, n, nel);
      return;
    }
    case Backend::kFixedN: {
      GradVariant v = GradVariant::kMxmFixed;
      if (dir == 0) grad_r(v, d, u, out, n, nel);
      if (dir == 1) grad_s(v, d, u, out, n, nel);
      if (dir == 2) grad_t(v, d, u, out, n, nel);
      return;
    }
    case Backend::kSimd:
      grad_simd(*simd_backend_best(), false, false, dir, d, u, out, n, nel);
      return;
    case Backend::kSimdFma:
      grad_simd(*simd_backend_best(), true, false, dir, d, u, out, n, nel);
      return;
    case Backend::kBatched:
      grad_simd(*simd_backend_best(), false, true, dir, d, u, out, n, nel);
      return;
  }
}

void grad_dispatch(int dir, const double* d, const double* u, double* out,
                   int n, int nel) {
  grad_backend(selected_backend(n), dir, d, u, out, n, nel);
}

// ---- autotuning -------------------------------------------------------------

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TuneTable autotune(const std::vector<int>& ns) {
  TuneTable table;
  table.isa = isa_name();
  for (int n : ns) {
    if (n < kMinDispatchN || n > kMaxDispatchN) continue;
    // Gradient-shaped probe: the r+t derivative pair over a working set of
    // ~1200 n-points per direction — the contraction mix the solver runs.
    const int nel = std::max(4, 1200 / (n * n));
    const std::size_t n3 = std::size_t(n) * n * n;
    std::vector<double> d(std::size_t(n) * n), u(n3 * nel), out(n3 * nel);
    util::SplitMix64 rng(0x9e3779b97f4a7c15ULL ^ std::uint64_t(n));
    for (double& x : d) x = rng.uniform() - 0.5;
    for (double& x : u) x = rng.uniform() - 0.5;
    TuneEntry entry;
    entry.n = n;
    double best_sec = 0.0;
    for (std::size_t bi = 0; bi < all_backends().size(); ++bi) {
      const Backend b = all_backends()[bi];
      auto sweep = [&] {
        grad_backend(b, 0, d.data(), u.data(), out.data(), n, nel);
        grad_backend(b, 2, d.data(), u.data(), out.data(), n, nel);
      };
      sweep();  // warmup
      double best = 0.0;
      for (int sample = 0; sample < 3; ++sample) {
        const double t0 = now_seconds();
        for (int rep = 0; rep < 3; ++rep) sweep();
        const double dt = (now_seconds() - t0) / 3.0;
        if (sample == 0 || dt < best) best = dt;
      }
      entry.seconds[bi] = best;
      if (bi == 0 || best < best_sec) {
        best_sec = best;
        entry.best = b;
      }
    }
    table.entries.push_back(entry);
  }
  return table;
}

// ---- tuning-table serialization ---------------------------------------------

namespace {
constexpr const char* kTuneMagic = "cmtbone-kernel-tune v1";
}

std::string serialize_tune_table(const TuneTable& table) {
  std::ostringstream os;
  os << kTuneMagic << "\n";
  os << "isa " << table.isa << "\n";
  os << "backends";
  for (Backend b : all_backends()) os << " " << backend_name(b);
  os << "\n";
  os.precision(17);
  for (const TuneEntry& e : table.entries) {
    os << "n " << e.n << " best " << backend_name(e.best);
    for (double s : e.seconds) os << " " << s;
    os << "\n";
  }
  return os.str();
}

std::optional<TuneTable> parse_tune_table(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  if (!std::getline(is, line) || line != kTuneMagic) return std::nullopt;
  if (!std::getline(is, line)) return std::nullopt;
  TuneTable table;
  {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key >> table.isa) || key != "isa") return std::nullopt;
    // A cache measured under a different instruction set ranks backends
    // that do not exist here (or mis-ranks the ones that do): reject it
    // so the caller re-tunes on this machine.
    if (table.isa != isa_name()) return std::nullopt;
  }
  if (!std::getline(is, line)) return std::nullopt;
  {
    // Staleness guard: the backend list must match this build exactly, so
    // caches written before a backend-set change invalidate themselves.
    std::ostringstream want;
    want << "backends";
    for (Backend b : all_backends()) want << " " << backend_name(b);
    if (line != want.str()) return std::nullopt;
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key, bestkey, bestname;
    TuneEntry e;
    if (!(ls >> key >> e.n >> bestkey >> bestname) || key != "n" ||
        bestkey != "best") {
      return std::nullopt;
    }
    if (e.n < kMinDispatchN || e.n > kMaxDispatchN) return std::nullopt;
    auto b = backend_from_name(bestname);
    if (!b) return std::nullopt;
    e.best = *b;
    for (double& s : e.seconds) {
      if (!(ls >> s) || !(s >= 0.0)) return std::nullopt;
    }
    std::string extra;
    if (ls >> extra) return std::nullopt;
    table.entries.push_back(e);
  }
  return table;
}

bool save_tune_cache(const TuneTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize_tune_table(table);
  return bool(out);
}

std::optional<TuneTable> load_tune_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_tune_table(buf.str());
}

TuneTable ensure_tuned(const std::vector<int>& ns, const std::string& path) {
  if (forced_backend()) return {};
  if (!path.empty()) {
    if (auto cached = load_tune_cache(path)) {
      apply_tune_table(*cached);
      return *cached;
    }
  }
  TuneTable table = autotune(ns);
  apply_tune_table(table);
  if (!path.empty()) save_tune_cache(table, path);
  return table;
}

}  // namespace cmtbone::kernels
