#pragma once
// Tensor-product operator application: apply a 1-D matrix along each of the
// three coordinate directions of an (n,n,n) element.
//
// This is the dealiasing path the paper describes ("an element is first
// mapped to a finer mesh and later mapped back") and the building block of
// the Nekbone stiffness operator.

#include <cstddef>

namespace cmtbone::kernels {

/// out(a,b,c) = sum_{i,j,k} A(a,i) A(b,j) A(c,k) u(i,j,k).
/// `a` is m x n column-major, `at` its transpose (n x m). `work` must hold
/// at least m*n*n + m*m*n doubles.
void tensor_apply3(const double* a, const double* at, int m, int n,
                   const double* u, double* out, double* work);

/// Workspace size for tensor_apply3.
inline std::size_t tensor_work_size(int m, int n) {
  return std::size_t(m) * n * n + std::size_t(m) * m * n;
}

/// Round-trip dealias: interpolate an element to the fine mesh (m points per
/// direction), then project back with the transpose pair. With interp/interp_t
/// from sem::Operators this reproduces the dealiasing reference-element
/// traffic. `fine` holds m^3 doubles, `work` tensor_work_size(max(m,n), ...).
void dealias_roundtrip(const double* interp, const double* interp_t, int m,
                       int n, const double* u, double* fine, double* back,
                       double* work);

}  // namespace cmtbone::kernels
