#include "kernels/tensor.hpp"

#include "kernels/dispatch.hpp"
#include "kernels/mxm.hpp"

namespace cmtbone::kernels {

void tensor_apply3(const double* a, const double* at, int m, int n,
                   const double* u, double* out, double* work) {
  double* t1 = work;                                 // (m, n, n)
  double* t2 = work + std::size_t(m) * n * n;        // (m, m, n)

  // Every direction contracts over n, so one backend-dispatch lookup
  // selects the kernel for the whole application (runtime fallback for
  // unspecialized sizes or a scalar selection; results are bit-identical
  // either way under every bit-exact backend — see kernels/dispatch.hpp).
  if (MxmFixedFn f = dispatch_mxm(n)) {
    f(a, m, u, t1, n * n);
    for (int k = 0; k < n; ++k) {
      f(t1 + std::size_t(k) * m * n, m, at, t2 + std::size_t(k) * m * m, m);
    }
    f(t2, m * m, at, out, m);
    return;
  }

  // Direction 1: t1(a,j,k) = sum_i A(a,i) u(i,j,k)  ==  A * U(n, n^2).
  mxm(a, m, u, n, t1, n * n);

  // Direction 2: per k-slab, t2(.,.,k) = t1(.,.,k) * A^T.
  for (int k = 0; k < n; ++k) {
    mxm(t1 + std::size_t(k) * m * n, m, at, n, t2 + std::size_t(k) * m * m, m);
  }

  // Direction 3: out(ab, c) = sum_k t2(ab, k) A(c,k)  ==  T2(m^2, n) * A^T.
  mxm(t2, m * m, at, n, out, m);
}

void dealias_roundtrip(const double* interp, const double* interp_t, int m,
                       int n, const double* u, double* fine, double* back,
                       double* work) {
  tensor_apply3(interp, interp_t, m, n, u, fine, work);
  tensor_apply3(interp_t, interp, n, m, fine, back, work);
}

}  // namespace cmtbone::kernels
