#include "kernels/vecops.hpp"

namespace cmtbone::kernels {

namespace {

// 4-wide generic vectors: lowered to the widest available hardware vectors
// (double-pumped SSE2 under the baseline flags) with unaligned moves, same
// scheme as the simd_kernels TUs. Elementwise use keeps bits; the dot's
// shape is fixed at 4 lanes regardless of what the hardware provides, so
// its (reordered) result is identical on every machine.
typedef double V4 __attribute__((vector_size(32)));

inline V4 load4(const double* p) {
  V4 v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

inline void store4(double* p, V4 v) { __builtin_memcpy(p, &v, sizeof v); }

inline V4 bcast4(double x) { return V4{} + x; }

}  // namespace

void pointwise_scale(double* x, const double* s, std::size_t count) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    store4(x + i, load4(x + i) * load4(s + i));
  }
  for (; i < count; ++i) x[i] *= s[i];
}

void combine_div3(double* out, const double* gs, const double* gt, double sx,
                  double sy, double sz, std::size_t count) {
  const V4 vx = bcast4(sx), vy = bcast4(sy), vz = bcast4(sz);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    store4(out + i,
           vx * load4(out + i) + vy * load4(gs + i) + vz * load4(gt + i));
  }
  for (; i < count; ++i) {
    out[i] = sx * out[i] + sy * gs[i] + sz * gt[i];
  }
}

void ax_combine(double* w, const double* s, const double* m, const double* u,
                double h1, double h2, std::size_t count) {
  const V4 v1 = bcast4(h1), v2 = bcast4(h2);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    store4(w + i, v1 * (load4(w + i) + load4(s + i)) +
                      (v2 * load4(m + i)) * load4(u + i));
  }
  for (; i < count; ++i) {
    w[i] = h1 * (w[i] + s[i]) + h2 * m[i] * u[i];
  }
}

double weighted_dot(const double* a, const double* b, const double* w,
                    std::size_t count, bool strict_order) {
  if (strict_order) {
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) sum += a[i] * b[i] * w[i];
    return sum;
  }
  // Fixed shape: four independent lane accumulators, folded pairwise, then
  // the scalar tail ascending. No width dependence, no data dependence —
  // the same input always reduces through the same operation tree.
  V4 acc = V4{};
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    acc += load4(a + i) * load4(b + i) * load4(w + i);
  }
  double sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  for (; i < count; ++i) sum += a[i] * b[i] * w[i];
  return sum;
}

}  // namespace cmtbone::kernels
