#pragma once
// Fused flux-divergence kernel: the composite operation the CMT-bone RHS
// actually needs — s_x dF/dr + s_y dG/ds + s_z dH/dt in one sweep.
//
// Computing the three directional derivatives separately (grad_r/s/t)
// streams the output three times; the fused form keeps the accumulator in
// registers and reads D rows once per point. This is the natural next
// optimization step after §V's per-derivative loop transformations, and the
// ablation bench quantifies it.

namespace cmtbone::kernels {

/// out(i,j,k) = sx * sum_l D(i,l) fx(l,j,k)
///            + sy * sum_l D(j,l) fy(i,l,k)
///            + sz * sum_l D(k,l) fz(i,j,l)       for each of nel elements.
/// `fused` selects the single-sweep form; otherwise three separate
/// derivative passes accumulate through `work` (n^3 * nel doubles of
/// scratch; allocated internally when null).
void div3(const double* d, const double* fx, const double* fy,
          const double* fz, double* out, int n, int nel, double sx, double sy,
          double sz, bool fused = true, double* work = nullptr);

/// div3 under the currently selected kernel backend (kernels/dispatch): the
/// three directional derivatives run through the SIMD/batched contraction
/// kernels and a single elementwise sweep combines them in exactly the
/// fused kernel's order (sx*ar + sy*as) + sz*at — so the result is
/// bit-identical to the fused form under every bit-exact backend. `work`
/// must hold 2*n^3*nel doubles (allocated internally when null). Falls back
/// to the single-sweep fused kernel when the selection is kScalar.
void div3_dispatch(const double* d, const double* fx, const double* fy,
                   const double* fz, double* out, int n, int nel, double sx,
                   double sy, double sz, double* work = nullptr);

/// Flops of one div3 over nel elements: three contractions plus the scaled
/// accumulation.
inline long long div3_flops(int n, int nel) {
  const long long n3 = 1LL * n * n * n;
  return (3 * 2 * n3 * n + 5 * n3) * nel;
}

}  // namespace cmtbone::kernels
