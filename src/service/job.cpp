#include "service/job.hpp"

namespace cmtbone::service {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPreempted: return "preempted";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool job_state_terminal(JobState s) {
  return s == JobState::kCompleted || s == JobState::kFailed ||
         s == JobState::kRejected || s == JobState::kCancelled;
}

}  // namespace cmtbone::service
