#pragma once
// Simulation-as-a-service job front end: what a tenant submits (JobSpec),
// the lifecycle a job moves through, and the report the service hands back.
//
// Job state machine (see DESIGN.md "Service layer"):
//
//   submit -> kQueued -> kRunning -> kCompleted
//                |  ^        |   \-> kFailed      (attributed, terminal)
//                |  |        \----> kPreempted -> kQueued (resume from disk)
//                |  \---------------------/
//                \-> kRejected  (admission control, terminal)
//                \-> kCancelled (non-draining shutdown, terminal)
//
// Every terminal outcome — including a chaos-injected crash loop inside the
// job — lands in that job's JobReport and nowhere else: one tenant's
// failure is contained, attributed, and invisible to every other job except
// through freed capacity.

#include <cstdint>
#include <functional>
#include <string>

#include "chaos/chaos.hpp"
#include "comm/comm.hpp"
#include "core/config.hpp"
#include "core/driver.hpp"
#include "prof/recovery.hpp"
#include "resilience/recovery.hpp"

namespace cmtbone::service {

enum class JobState {
  kQueued,     // admitted, waiting for workers
  kRunning,    // dispatched under its own recovery supervisor
  kPreempted,  // suspended to a coordinated checkpoint; back in the queue
  kCompleted,  // reached nsteps (terminal)
  kFailed,     // terminal failure, attributed in JobReport::error
  kRejected,   // refused at admission (terminal)
  kCancelled,  // discarded by a non-draining shutdown (terminal)
};

const char* job_state_name(JobState s);
bool job_state_terminal(JobState s);

/// One simulation job as a tenant describes it.
struct JobSpec {
  /// Accounting key for quotas and fair-share; jobs of one tenant share a
  /// worker budget and a spot in the fair-share ledger.
  std::string tenant = "default";
  /// Higher runs first; a strictly higher priority may preempt lower ones
  /// (checkpoint-backed, resumed later bit-identically).
  int priority = 0;

  core::Config config;
  int nsteps = 1;
  /// Worker slots this job occupies while running (= comm ranks).
  int ranks = 1;

  /// Per-job retry budget and backoff. The budget spans the job's whole
  /// lifetime: retries consumed before a preemption stay consumed after
  /// the resume. If backoff_jitter is left at 0 the scheduler applies its
  /// own decorrelating default so co-failing jobs never retry in lockstep.
  resilience::RecoveryPolicy retry;
  /// Coordinated-checkpoint cadence (steps); also the preemption
  /// granularity floor is one step regardless of this value.
  int checkpoint_interval = 10;
  /// Wall-clock budget across all of the job's dispatches (<= 0: none).
  /// Exceeding it is a terminal, attributed failure — never retried.
  double deadline_seconds = 0.0;

  /// Per-job fault injection (tests and the service bench). The engine
  /// must outlive the job; faults it injects are contained to this job.
  chaos::ChaosEngine* chaos = nullptr;
  /// Cold-start initial condition (default: the driver's default_ic()).
  core::FieldFunction initial_condition;
  /// Runs on every rank after the final step of the completing dispatch.
  std::function<void(core::Driver&, comm::Comm&)> on_final;
};

/// Everything the service knows about one job, terminal or not.
struct JobReport {
  std::uint64_t id = 0;
  std::string tenant;
  int priority = 0;
  JobState state = JobState::kQueued;
  /// Failure attribution for kFailed/kRejected: the exception text of the
  /// fault that ended the job (e.g. "chaos: forced abort injected at rank
  /// 0, op 5" after the retry budget drained) or the admission verdict.
  std::string error;

  int dispatches = 0;    // launches, including resumes after preemption
  int attempts = 0;      // comm::run launches, including in-job retries
  int failures = 0;      // failed attempts absorbed by the job's supervisor
  int preemptions = 0;   // checkpoint-backed suspensions
  long long steps_done = 0;        // furthest step completed
  long long last_restored_epoch = -1;

  double queue_seconds = 0.0;  // submit -> dispatch, summed over waits
  double run_seconds = 0.0;    // dispatch -> exit, summed over dispatches
  prof::RecoveryStats stats;   // checkpoint/detection/repair, job lifetime
};

}  // namespace cmtbone::service
