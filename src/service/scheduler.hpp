#pragma once
// Multi-tenant job scheduler over the resilient runtime — the
// simulation-as-a-service front end.
//
// The scheduler owns a budget of worker slots (one slot = one comm rank
// thread) and moves submitted jobs through the state machine in job.hpp:
//
//   * Admission control: a job is REJECTED outright when it can never run
//     (ranks > capacity) or when the queue — global or per-tenant — is
//     full; otherwise it is QUEUED. Capacity or quota pressure never
//     rejects, it queues: transient load is the service's normal state.
//   * Fair-share dispatch: among runnable queued jobs the scheduler picks
//     by priority first, then the tenant with the fewest running workers,
//     then the tenant with the least worker-seconds consumed, then FIFO —
//     so a tenant flooding the queue cannot starve the others.
//   * Checkpoint-backed preemption: when a strictly higher-priority job is
//     blocked only by capacity, the scheduler asks the lowest-priority
//     running jobs to yield. A yielding job commits a coordinated
//     checkpoint at its next step boundary, unwinds, re-enters the queue,
//     and later resumes from disk — bit-identical to never having been
//     suspended (the resilience layer's restore guarantee).
//   * Per-job fault domains: every dispatch runs under its own
//     resilience::run_with_recovery supervisor on its own comm universe,
//     with a per-job retry budget, decorrelated backoff, and optional
//     deadline. A chaos abort, rank kill, or checkpoint corruption inside
//     one job is retried, and if the budget drains, attributed in that
//     job's JobReport — the scheduler thread and every other job never see
//     it except as freed capacity.
//
// Thread model: submit() may be called from any thread; one scheduler loop
// thread makes every dispatch/preemption decision; each dispatched job runs
// on its own supervisor thread (which spawns the job's rank threads via
// comm::run). All bookkeeping lives under one mutex shared with the
// JobHandles, which stay valid after the Scheduler is destroyed.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "prof/service.hpp"
#include "service/job.hpp"

namespace cmtbone::service {

struct JobRecord;  // internal; defined in scheduler.cpp

/// A tenant's view of one submitted job. Copyable; outlives the Scheduler.
class JobHandle {
 public:
  JobHandle() = default;
  bool valid() const { return rec_ != nullptr; }
  std::uint64_t id() const;
  JobState state() const;
  /// Snapshot of the job's report so far (terminal or not).
  JobReport report() const;
  /// Block until the job reaches a terminal state; returns the report.
  JobReport wait() const;

 private:
  friend class Scheduler;
  std::shared_ptr<JobRecord> rec_;
};

struct ServiceOptions {
  /// Worker-slot capacity: the sum of `ranks` over running jobs never
  /// exceeds this.
  int total_workers = 4;
  /// Per-tenant cap on concurrently running workers (0 = no quota). Keeps
  /// one tenant — healthy or crash-looping — from occupying the pool.
  int tenant_max_workers = 0;
  /// Queue-depth admission bounds (0 = unbounded): jobs beyond them are
  /// rejected, not queued.
  int max_queued = 0;
  int tenant_max_queued = 0;
  /// Allow checkpoint-backed preemption by strictly higher priorities.
  bool preemption = true;
  /// Root directory for per-job checkpoint subdirectories (required).
  std::string checkpoint_root;
  /// Keep terminal jobs' checkpoint directories (default: removed).
  bool keep_checkpoints = false;
  /// Decorrelating retry-backoff jitter applied to jobs whose
  /// RecoveryPolicy left backoff_jitter at 0 (see recovery.hpp).
  double default_backoff_jitter = 0.5;
};

class Scheduler {
 public:
  explicit Scheduler(ServiceOptions options);
  /// Drains: equivalent to shutdown(true).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission control + enqueue. Never throws on a bad spec: an
  /// inadmissible job comes back as a terminal kRejected handle with the
  /// verdict in report().error.
  JobHandle submit(JobSpec spec);

  /// Stop accepting work. drain=true runs every queued job to a terminal
  /// state first; drain=false cancels the queue and asks running jobs to
  /// yield at their next step boundary (they are then cancelled, their
  /// checkpoints discarded). Idempotent; blocks until the loop exits.
  void shutdown(bool drain = true);

  /// Snapshot of the service metrics (gauges are live values).
  prof::ServiceStats stats() const;

  const ServiceOptions& options() const { return opt_; }

 private:
  struct Shared;
  friend struct JobRecord;  // holds a shared_ptr<Shared> to outlive us
  friend class JobHandle;

  void loop();
  // All _locked methods require sh_->mu.
  void schedule_locked();
  int pick_next_locked() const;
  void maybe_preempt_locked();
  void launch_locked(const std::shared_ptr<JobRecord>& rec);
  void run_job(std::shared_ptr<JobRecord> rec);

  ServiceOptions opt_;
  std::shared_ptr<Shared> sh_;
  std::thread loop_;
};

}  // namespace cmtbone::service
