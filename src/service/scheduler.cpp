#include "service/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "prof/timer.hpp"

namespace cmtbone::service {

using clock_type = std::chrono::steady_clock;

// Sync primitives plus every piece of mutable scheduler state, all guarded
// by `mu`. Lives in a shared_ptr owned by the Scheduler and by every
// JobRecord, so a JobHandle can lock and wait after the Scheduler is gone.
struct Scheduler::Shared {
  mutable std::mutex mu;
  std::condition_variable sched_cv;  // wakes the scheduler loop
  std::condition_variable user_cv;   // wakes JobHandle::wait()ers

  prof::ServiceStats stats;
  // Runnable jobs (kQueued and kPreempted) in submit/requeue order.
  std::vector<std::shared_ptr<JobRecord>> queue;
  std::vector<std::shared_ptr<JobRecord>> running;
  // Finished dispatch threads, handed over for the loop thread to join. A
  // dispatch thread moves its own std::thread handle here on exit so the
  // record's `worker` slot is free for the next dispatch immediately.
  std::vector<std::thread> reap;
  std::map<std::string, int> tenant_workers;  // running rank slots
  std::map<std::string, int> tenant_queued;
  int free_workers = 0;
  bool stopping = false;
  bool drain = true;
  std::uint64_t next_id = 1;
};

struct JobRecord {
  std::shared_ptr<Scheduler::Shared> sh;

  // Immutable after submit().
  std::uint64_t id = 0;
  JobSpec spec;
  std::string dir;  // per-job checkpoint directory (empty when rejected)

  // Guarded by sh->mu.
  JobState state = JobState::kQueued;
  std::string error;
  bool preempt_requested = false;  // the scheduler's ledger of pending yields
  int dispatches = 0;
  int attempts = 0;
  int failures = 0;
  int preemptions = 0;
  long long steps_done = 0;
  long long last_restored_epoch = -1;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  clock_type::time_point queued_since{};
  prof::RecoveryStats stats;

  // Touched only by the scheduler loop thread (assignment in launch) and by
  // the dispatch thread's final move into Shared::reap, which happen under
  // sh->mu and never overlap.
  std::thread worker;

  // Written by the scheduler, read by the job's rank-0 step hook.
  std::atomic<bool> preempt{false};
};

namespace {

JobReport report_locked(const JobRecord& r) {
  JobReport rep;
  rep.id = r.id;
  rep.tenant = r.spec.tenant;
  rep.priority = r.spec.priority;
  rep.state = r.state;
  rep.error = r.error;
  rep.dispatches = r.dispatches;
  rep.attempts = r.attempts;
  rep.failures = r.failures;
  rep.preemptions = r.preemptions;
  rep.steps_done = r.steps_done;
  rep.last_restored_epoch = r.last_restored_epoch;
  rep.queue_seconds = r.queue_seconds;
  rep.run_seconds = r.run_seconds;
  rep.stats = r.stats;
  return rep;
}

[[noreturn]] void invalid_handle() {
  throw std::logic_error("service: operation on an invalid JobHandle");
}

}  // namespace

std::uint64_t JobHandle::id() const {
  if (!rec_) invalid_handle();
  return rec_->id;
}

JobState JobHandle::state() const {
  if (!rec_) invalid_handle();
  std::lock_guard<std::mutex> lk(rec_->sh->mu);
  return rec_->state;
}

JobReport JobHandle::report() const {
  if (!rec_) invalid_handle();
  std::lock_guard<std::mutex> lk(rec_->sh->mu);
  return report_locked(*rec_);
}

JobReport JobHandle::wait() const {
  if (!rec_) invalid_handle();
  std::unique_lock<std::mutex> lk(rec_->sh->mu);
  rec_->sh->user_cv.wait(lk, [&] { return job_state_terminal(rec_->state); });
  return report_locked(*rec_);
}

Scheduler::Scheduler(ServiceOptions options) : opt_(std::move(options)) {
  if (opt_.checkpoint_root.empty()) {
    throw std::invalid_argument("service: checkpoint_root is required");
  }
  if (opt_.total_workers < 1) {
    throw std::invalid_argument("service: total_workers must be >= 1");
  }
  std::filesystem::create_directories(opt_.checkpoint_root);
  sh_ = std::make_shared<Shared>();
  sh_->free_workers = opt_.total_workers;
  loop_ = std::thread([this] { loop(); });
}

Scheduler::~Scheduler() { shutdown(true); }

JobHandle Scheduler::submit(JobSpec spec) {
  auto rec = std::make_shared<JobRecord>();
  rec->sh = sh_;
  rec->spec = std::move(spec);
  JobHandle h;
  h.rec_ = rec;

  std::lock_guard<std::mutex> lk(sh_->mu);
  rec->id = sh_->next_id++;
  const JobSpec& s = rec->spec;

  std::string reject;
  if (sh_->stopping) {
    reject = "rejected: service is shutting down";
  } else if (s.nsteps < 1) {
    reject = "rejected: nsteps must be >= 1";
  } else if (s.ranks < 1) {
    reject = "rejected: ranks must be >= 1";
  } else if (s.ranks > opt_.total_workers) {
    reject = "rejected: ranks (" + std::to_string(s.ranks) +
             ") exceeds the worker pool (" +
             std::to_string(opt_.total_workers) + ")";
  } else if (opt_.tenant_max_workers > 0 && s.ranks > opt_.tenant_max_workers) {
    reject = "rejected: ranks (" + std::to_string(s.ranks) +
             ") exceeds the tenant worker quota (" +
             std::to_string(opt_.tenant_max_workers) + ")";
  } else if (opt_.max_queued > 0 &&
             (long long)(sh_->queue.size()) >= opt_.max_queued) {
    reject = "rejected: queue full (" + std::to_string(opt_.max_queued) + ")";
  } else if (opt_.tenant_max_queued > 0 &&
             sh_->tenant_queued[s.tenant] >= opt_.tenant_max_queued) {
    reject = "rejected: tenant queue full (" +
             std::to_string(opt_.tenant_max_queued) + ")";
  }
  if (!reject.empty()) {
    rec->state = JobState::kRejected;
    rec->error = reject;
    sh_->stats.rejected += 1;
    return h;  // terminal handle; the job never enters the queue
  }

  rec->state = JobState::kQueued;
  rec->queued_since = clock_type::now();
  rec->dir = opt_.checkpoint_root + "/job" + std::to_string(rec->id);
  sh_->queue.push_back(rec);
  sh_->tenant_queued[s.tenant] += 1;
  sh_->stats.submitted += 1;
  sh_->stats.queue_depth += 1;
  sh_->stats.peak_queue_depth =
      std::max(sh_->stats.peak_queue_depth, sh_->stats.queue_depth);
  sh_->sched_cv.notify_all();
  return h;
}

void Scheduler::shutdown(bool drain) {
  std::vector<std::string> dirs_to_remove;
  {
    std::lock_guard<std::mutex> lk(sh_->mu);
    if (!sh_->stopping) {
      sh_->stopping = true;
      sh_->drain = drain;
    } else if (!drain) {
      sh_->drain = false;  // escalate an in-progress drain to a cancel
    }
    if (!sh_->drain) {
      for (auto& rec : sh_->queue) {
        rec->state = JobState::kCancelled;
        rec->error = "cancelled: service shutdown";
        sh_->stats.cancelled += 1;
        sh_->stats.queue_depth -= 1;
        sh_->tenant_queued[rec->spec.tenant] -= 1;
        if (!opt_.keep_checkpoints && !rec->dir.empty()) {
          dirs_to_remove.push_back(rec->dir);
        }
      }
      sh_->queue.clear();
      // Ask running jobs to yield at their next step boundary; their
      // finish path converts the preemption into a cancellation.
      for (auto& rec : sh_->running) {
        rec->preempt.store(true, std::memory_order_relaxed);
      }
    }
    sh_->sched_cv.notify_all();
    sh_->user_cv.notify_all();
  }
  for (const std::string& d : dirs_to_remove) {
    std::error_code ec;
    std::filesystem::remove_all(d, ec);
  }
  if (loop_.joinable()) loop_.join();
}

prof::ServiceStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lk(sh_->mu);
  return sh_->stats;
}

void Scheduler::loop() {
  std::unique_lock<std::mutex> lk(sh_->mu);
  for (;;) {
    if (!sh_->reap.empty()) {
      std::vector<std::thread> done = std::move(sh_->reap);
      sh_->reap.clear();
      lk.unlock();
      for (std::thread& t : done) t.join();
      lk.lock();
      continue;  // state may have changed while unlocked
    }
    schedule_locked();
    if (sh_->stopping && sh_->running.empty() && sh_->queue.empty() &&
        sh_->reap.empty()) {
      break;
    }
    sh_->sched_cv.wait(lk);
  }
}

void Scheduler::schedule_locked() {
  for (;;) {
    const int i = pick_next_locked();
    if (i < 0) break;
    std::shared_ptr<JobRecord> rec = sh_->queue[size_t(i)];
    sh_->queue.erase(sh_->queue.begin() + i);
    launch_locked(rec);
  }
  if (opt_.preemption) maybe_preempt_locked();
}

int Scheduler::pick_next_locked() const {
  auto tenant_running = [&](const std::string& t) {
    const auto it = sh_->tenant_workers.find(t);
    return it == sh_->tenant_workers.end() ? 0 : it->second;
  };
  auto tenant_seconds = [&](const std::string& t) {
    const auto it = sh_->stats.tenant_worker_seconds.find(t);
    return it == sh_->stats.tenant_worker_seconds.end() ? 0.0 : it->second;
  };
  // Fair-share order among runnable jobs: priority, then the tenant with
  // the fewest running workers, then the tenant with the least historical
  // worker-seconds, then submit order (queue position).
  auto better = [&](const JobRecord& a, const JobRecord& b) {
    if (a.spec.priority != b.spec.priority) {
      return a.spec.priority > b.spec.priority;
    }
    const int wa = tenant_running(a.spec.tenant);
    const int wb = tenant_running(b.spec.tenant);
    if (wa != wb) return wa < wb;
    const double sa = tenant_seconds(a.spec.tenant);
    const double sb = tenant_seconds(b.spec.tenant);
    if (sa != sb) return sa < sb;
    return false;  // earlier queue position wins
  };
  int best = -1;
  for (int i = 0; i < int(sh_->queue.size()); ++i) {
    const JobRecord& r = *sh_->queue[size_t(i)];
    if (r.spec.ranks > sh_->free_workers) continue;
    if (opt_.tenant_max_workers > 0 &&
        tenant_running(r.spec.tenant) + r.spec.ranks >
            opt_.tenant_max_workers) {
      continue;
    }
    if (best < 0 || better(r, *sh_->queue[size_t(best)])) best = i;
  }
  return best;
}

void Scheduler::maybe_preempt_locked() {
  auto tenant_running = [&](const std::string& t) {
    const auto it = sh_->tenant_workers.find(t);
    return it == sh_->tenant_workers.end() ? 0 : it->second;
  };
  // The job preemption would serve: the highest-priority queued job that is
  // blocked by capacity alone. A quota-blocked job waits for its own
  // tenant's work to finish; evicting other tenants cannot help it.
  const JobRecord* top = nullptr;
  for (const auto& r : sh_->queue) {
    if (opt_.tenant_max_workers > 0 &&
        tenant_running(r->spec.tenant) + r->spec.ranks >
            opt_.tenant_max_workers) {
      continue;
    }
    if (top == nullptr || r->spec.priority > top->spec.priority) top = r.get();
  }
  if (top == nullptr) return;

  // Slots already on the way: free ones plus pending yields.
  int incoming = sh_->free_workers;
  for (const auto& r : sh_->running) {
    if (r->preempt_requested) incoming += r->spec.ranks;
  }
  if (incoming >= top->spec.ranks) return;

  // Candidate victims: strictly lower priority, not already yielding.
  // Evict the lowest priority first, newest job breaking ties, and only if
  // the chosen set actually unblocks the top job.
  std::vector<JobRecord*> victims;
  for (const auto& r : sh_->running) {
    if (r->spec.priority < top->spec.priority && !r->preempt_requested) {
      victims.push_back(r.get());
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const JobRecord* a, const JobRecord* b) {
              if (a->spec.priority != b->spec.priority) {
                return a->spec.priority < b->spec.priority;
              }
              return a->id > b->id;
            });
  std::vector<JobRecord*> chosen;
  int will_free = incoming;
  for (JobRecord* v : victims) {
    if (will_free >= top->spec.ranks) break;
    chosen.push_back(v);
    will_free += v->spec.ranks;
  }
  if (will_free < top->spec.ranks) return;
  for (JobRecord* v : chosen) {
    v->preempt_requested = true;
    v->preempt.store(true, std::memory_order_relaxed);
  }
}

void Scheduler::launch_locked(const std::shared_ptr<JobRecord>& rec) {
  const bool resume = rec->state == JobState::kPreempted;
  rec->queue_seconds += std::chrono::duration<double>(clock_type::now() -
                                                      rec->queued_since)
                            .count();
  rec->state = JobState::kRunning;
  rec->preempt.store(false, std::memory_order_relaxed);
  rec->preempt_requested = false;
  rec->dispatches += 1;

  sh_->free_workers -= rec->spec.ranks;
  sh_->tenant_workers[rec->spec.tenant] += rec->spec.ranks;
  sh_->tenant_queued[rec->spec.tenant] -= 1;
  sh_->running.push_back(rec);

  prof::ServiceStats& st = sh_->stats;
  st.dispatches += 1;
  if (resume) st.resumes += 1;
  st.queue_depth -= 1;
  st.running_jobs += 1;
  st.busy_workers += rec->spec.ranks;
  st.peak_busy_workers = std::max(st.peak_busy_workers, st.busy_workers);

  rec->worker = std::thread([this, rec] { run_job(rec); });
}

void Scheduler::run_job(std::shared_ptr<JobRecord> rec) {
  prof::WallTimer timer;
  resilience::RecoveryReport rr;
  std::string error;
  bool preempted = false;
  bool deadline_hit = false;

  resilience::RecoveryPolicy pol = rec->spec.retry;
  {
    std::lock_guard<std::mutex> lk(sh_->mu);
    // Decorrelate co-failing jobs' retry storms unless the spec pinned its
    // own jitter schedule; the job id seeds a distinct jitter stream.
    if (pol.backoff_jitter <= 0.0) {
      pol.backoff_jitter = opt_.default_backoff_jitter;
      if (pol.backoff_seed == 0) pol.backoff_seed = rec->id;
    }
    // The retry budget spans the job's lifetime: failures absorbed before a
    // preemption stay spent after the resume.
    pol.max_retries = std::max(0, pol.max_retries - rec->failures);
  }

  try {
    std::filesystem::create_directories(rec->dir);
    resilience::RecoveryOptions ro;
    ro.checkpoint.directory = rec->dir;
    ro.checkpoint.interval = rec->spec.checkpoint_interval;
    ro.chaos = rec->spec.chaos;
    ro.initial_condition = rec->spec.initial_condition;
    ro.on_final = rec->spec.on_final;
    ro.yield_requested = [r = rec.get()] {
      return r->preempt.load(std::memory_order_relaxed);
    };
    if (rec->spec.deadline_seconds > 0.0) {
      double consumed = 0.0;
      {
        std::lock_guard<std::mutex> lk(sh_->mu);
        consumed = rec->run_seconds;
      }
      const double remaining = rec->spec.deadline_seconds - consumed;
      if (remaining <= 0.0) {
        throw resilience::DeadlineExceeded(rec->spec.deadline_seconds, 0);
      }
      ro.deadline_seconds = remaining;
    }
    rr = resilience::run_with_recovery(rec->spec.ranks, rec->spec.config,
                                       rec->spec.nsteps, pol, std::move(ro));
    preempted = rr.preempted;
  } catch (const resilience::DeadlineExceeded& e) {
    deadline_hit = true;
    error = e.what();
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown failure";
  }
  const double dur = timer.seconds();

  std::string dir_to_remove;
  {
    std::lock_guard<std::mutex> lk(sh_->mu);
    prof::ServiceStats& st = sh_->stats;
    sh_->free_workers += rec->spec.ranks;
    sh_->tenant_workers[rec->spec.tenant] -= rec->spec.ranks;
    st.busy_workers -= rec->spec.ranks;
    st.running_jobs -= 1;
    st.tenant_worker_seconds[rec->spec.tenant] += rec->spec.ranks * dur;
    rec->run_seconds += dur;

    if (error.empty()) {
      rec->attempts += rr.attempts;
      rec->failures += rr.failures;
      rec->steps_done = std::max(rec->steps_done, rr.steps_reached);
      if (rr.last_restored_epoch >= 0) {
        rec->last_restored_epoch = rr.last_restored_epoch;
      }
      rec->stats.merge(rr.stats);
      st.job_failures += rr.failures;
      st.job_restores += rr.stats.restores;
      st.repair_seconds_sum += rr.stats.repair_seconds_sum;
    } else if (deadline_hit) {
      rec->attempts += 1;
      rec->failures += 1;
      st.job_failures += 1;
    } else {
      // The supervisor rethrew after burning the whole remaining budget;
      // its report is lost with the throw, but the attempt count is known.
      rec->attempts += pol.max_retries + 1;
      rec->failures += pol.max_retries + 1;
      st.job_failures += pol.max_retries + 1;
    }

    auto& run = sh_->running;
    run.erase(std::find(run.begin(), run.end(), rec));

    if (!error.empty()) {
      rec->state = JobState::kFailed;
      rec->error = error;
      st.failed += 1;
      if (!opt_.keep_checkpoints) dir_to_remove = rec->dir;
    } else if (preempted) {
      rec->preemptions += 1;
      st.preemptions += 1;
      if (sh_->stopping && !sh_->drain) {
        rec->state = JobState::kCancelled;
        rec->error = "cancelled: service shutdown";
        st.cancelled += 1;
        if (!opt_.keep_checkpoints) dir_to_remove = rec->dir;
      } else {
        rec->state = JobState::kPreempted;
        rec->queued_since = clock_type::now();
        sh_->queue.push_back(rec);
        sh_->tenant_queued[rec->spec.tenant] += 1;
        st.queue_depth += 1;
        st.peak_queue_depth = std::max(st.peak_queue_depth, st.queue_depth);
      }
    } else {
      rec->state = JobState::kCompleted;
      st.completed += 1;
      st.tenant_completed[rec->spec.tenant] += 1;
      if (!opt_.keep_checkpoints) dir_to_remove = rec->dir;
    }

    // Hand this dispatch thread's own handle to the loop for joining; the
    // record's worker slot is now free for a relaunch.
    sh_->reap.push_back(std::move(rec->worker));
    sh_->sched_cv.notify_all();
    sh_->user_cv.notify_all();
  }
  if (!dir_to_remove.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir_to_remove, ec);
  }
}

}  // namespace cmtbone::service
