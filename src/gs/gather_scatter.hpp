#pragma once
// The gather-scatter handle: gs_setup + gs_op, reproducing Nek5000's gslib
// as CMT-bone exercises it.
//
// A gs_op reduces, over every set of coincident GLL points (same global
// id), the values held by all their local copies — across elements and
// across ranks — and writes the result back to every copy. It proceeds in
// three phases:
//   1. local gather: fold this rank's duplicate copies into one value/id,
//   2. nonlocal exchange: combine with the other sharer ranks using one of
//      three algorithms — pairwise exchange, crystal router, or
//      allreduce-on-a-big-vector (paper §VI),
//   3. local scatter: write the reduced value back to every local copy.
//
// At construction with Method::kAuto the handle times all three algorithms
// and keeps the fastest, exactly as CMT-nek/Nek5000 do at startup ("At the
// beginning of each simulation, three gather-scatter methods are evaluated
// to determine which one performs the best for the given problem setup and
// machine"). The tuning table is retained — it is the content of Fig. 7.

#include <map>
#include <span>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "gs/crystal.hpp"
#include "gs/topology.hpp"
#include "netmodel/loggp.hpp"

namespace cmtbone::gs {

using comm::ReduceOp;

/// kAuto times all three algorithms at setup and keeps the fastest.
/// kModel skips the timing pass: it builds the handle's ExchangeShape from
/// the live topology and asks netmodel::predict_all under the calibrated
/// machine (netmodel::calibrated_machine()), falling back to the measured
/// tune() when no calibration has been published. Either way the handle
/// ends up running one of the three concrete algorithms, so results are
/// bit-identical to forcing that method directly.
enum class Method { kPairwise, kCrystalRouter, kAllReduce, kAuto, kModel };

const char* method_name(Method m);

class GatherScatter {
 public:
  /// Collective. `slot_ids`: one global id per local data slot. With
  /// kAuto, runs the startup tuning pass and picks the fastest method.
  ///
  /// `slot_keys`, when non-empty (one key per slot, globally unique across
  /// all ranks' slots), switches the handle to *ordered* mode: every
  /// gs_op folds the copies of each id in ascending-key order, starting
  /// from the op identity, no matter which rank holds which copy. Keys
  /// derive from global mesh coordinates (mesh::global_gll_keys /
  /// face_point_keys), so the reduction order — and hence every result
  /// bit — is invariant under element migration between ranks: the load
  /// balancer's "migration changes *where*, never *what*" anchor. Ordered
  /// mode exchanges raw per-copy values with each sharer (a pairwise-style
  /// pattern, slightly larger messages for edge/corner ids) and ignores
  /// the configured exchange method.
  GatherScatter(comm::Comm& comm, std::span<const long long> slot_ids,
                Method method = Method::kAuto,
                std::span<const long long> slot_keys = {});

  /// True when constructed with per-slot keys (layout-invariant folds).
  bool ordered() const { return ordered_; }

  /// Withdraws any split-phase receives still posted (a chaos abort or
  /// peer failure can unwind the owner between begin() and finish()), so
  /// no late delivery ever writes into the freed recv buffers.
  ~GatherScatter();
  GatherScatter(const GatherScatter&) = delete;
  GatherScatter& operator=(const GatherScatter&) = delete;

  /// gs_op: in-place gather-scatter over `values` (one per slot).
  void exec(std::span<double> values, ReduceOp op);

  /// Like exec, but with a specific algorithm (for benchmarking).
  void exec_with(std::span<double> values, ReduceOp op, Method method);

  /// gs_op over `nfields` fields at once (Nek's gs_op_fields): `values`
  /// holds the fields back to back, each one slot-count long. All fields of
  /// a shared id travel in the same message, so per-exec message *count*
  /// stays flat while payload scales with nfields — the batching CMT-nek
  /// relies on when exchanging the five conserved variables.
  void exec_many(std::span<double> values, int nfields, ReduceOp op);
  void exec_many_with(std::span<double> values, int nfields, ReduceOp op,
                      Method method);

  /// Split-phase exec_many for compute–communication overlap. begin() runs
  /// the local gather and, under the pairwise method, posts all receives and
  /// sends the shared values, returning with the messages in flight;
  /// finish() waits, accumulates the remote contributions (in the same
  /// neighbor order as exec_many — results are bit-identical) and scatters
  /// back into the span passed to begin(). The crystal-router and allreduce
  /// methods use unsplittable collectives, so for them the whole gs_op
  /// completes inside begin() and finish() only clears the in-flight flag.
  /// The span must stay alive until finish(); one gs_op in flight at a time.
  void exec_many_begin(std::span<double> values, int nfields, ReduceOp op);
  void exec_many_finish();

  /// True between exec_many_begin() and the matching exec_many_finish().
  bool split_in_flight() const { return split_.active; }

  /// Typed gs_op, as gslib supports for its datatype set: T is one of
  /// double, float, int, long long. Same semantics as exec/exec_many.
  template <class T>
  void exec_typed(std::span<T> values, ReduceOp op) {
    exec_impl<T>(values, 1, op, method_);
  }
  template <class T>
  void exec_many_typed(std::span<T> values, int nfields, ReduceOp op,
                       Method method) {
    exec_impl<T>(values, nfields, op, method);
  }

  Method method() const { return method_; }
  const Topology& topology() const { return topo_; }

  /// Per-method startup timing (seconds per gs_op), reduced across ranks.
  /// Populated by the kAuto constructor or tune(); the rows of Fig. 7.
  struct TuneRow {
    Method method = Method::kPairwise;
    double avg = 0, min = 0, max = 0;  // across ranks
  };
  const std::vector<TuneRow>& tuning() const { return tuning_; }

  /// Run (or re-run) the startup tuning pass; returns the winner.
  Method tune(int repetitions = 5);

  /// This rank's exchange structure as the analytic network model sees it
  /// (ranks, pairwise partners and bytes, crystal records, big-vector
  /// bytes). What Method::kModel feeds to netmodel::predict_all.
  netmodel::ExchangeShape exchange_shape() const;

  // --- structure queries (for the communication-model benches) -----------
  /// Ranks this rank exchanges with under the pairwise method.
  std::vector<int> pairwise_neighbors() const;
  /// Values this rank sends per pairwise exec.
  std::size_t pairwise_send_values() const;
  /// Size (in values) of the allreduce method's big vector (the whole
  /// global id space, as in gslib).
  long long big_vector_size() const { return topo_.total_global; }

 private:
  // The whole gs_op pipeline (local gather, exchange, local scatter) is
  // templated over the value type; backends operate on locally-gathered
  // unique values with `nfields` interleaved per unique id. Instantiated in
  // the .cpp for double, float, int, long long.
  template <class T>
  void exec_impl(std::span<T> values, int nfields, ReduceOp op, Method method);
  template <class T>
  void exec_pairwise(std::vector<T>& unique_values, int nfields, ReduceOp op);
  template <class T>
  void exec_crystal(std::vector<T>& unique_values, int nfields, ReduceOp op);
  template <class T>
  void exec_allreduce(std::vector<T>& unique_values, int nfields, ReduceOp op);

  template <class T>
  static T identity(ReduceOp op);

  // Ordered mode: build the per-id fold programs from per-slot keys
  // (called at construction when slot_keys is non-empty).
  void setup_ordered(std::span<const long long> slot_keys);
  // Ordered gs_op: private ids fold their local copies in key order;
  // shared ids ship raw per-copy values to every sharer and every sharer
  // folds the full copy list via the precomputed merge program.
  template <class T>
  void exec_ordered(std::span<T> values, int nfields, ReduceOp op);
  // Split-phase ordered gs_op (double-only, like exec_many_begin/finish).
  void exec_ordered_begin(std::span<double> values, int nfields, ReduceOp op);
  void exec_ordered_finish();
  // Shared phases: gather private folds + stage my shared copies (`mine`),
  // and fold shared entries from mine + per-neighbor recv buffers.
  template <class T>
  void ordered_gather(std::span<const T> values, int nfields, ReduceOp op,
                      std::vector<T>& unique, std::vector<T>& mine) const;
  template <class T>
  void ordered_fold_shared(int nfields, ReduceOp op, std::vector<T>& unique,
                           const std::vector<T>& mine,
                           const std::vector<std::vector<T>>& recvbuf) const;

  // Model-driven method selection (collective): predict all three
  // algorithms from the worst-rank exchange shape and return the cheapest.
  // Reduces each prediction across ranks so every rank picks the same
  // method deterministically.
  Method select_from_model(const netmodel::LogGPParams& machine);

  // Withdraw any posted split-phase receives and clear the in-flight state;
  // the unwind path shared by the destructor and begin()/finish() failure
  // handling.
  void abandon_split();

  comm::Comm* comm_;
  Topology topo_;
  Method method_;
  std::vector<TuneRow> tuning_;

  // --- ordered-mode fold programs (empty unless ordered_) -----------------
  bool ordered_ = false;
  // Local slots grouped by unique id, each group sorted ascending by key:
  // unique u's slots are ordered_slots_[ordered_begin_[u] .. ordered_begin_[u+1]).
  std::vector<int> ordered_slots_;
  std::vector<int> ordered_begin_;
  // Per unique id: its topo_.shared entry, or -1 when private to this rank.
  std::vector<int> shared_of_unique_;
  // My copies of shared entry s occupy flat-buffer positions
  // [my_copy_offset_[s], my_copy_offset_[s+1]) — same slot order as above.
  std::vector<int> my_copy_offset_;
  // Copies each pairwise neighbor sends me per exec (neighbors in
  // pairwise_plan_ map order, the order recv buffers are indexed by).
  std::vector<std::size_t> nbr_copy_total_;
  // Merge program: shared entry s folds steps
  // [merge_begin_[s], merge_begin_[s+1]) in ascending-key order.
  struct MergeStep {
    int src;  // -1 = my flat copy buffer, else neighbor position in plan order
    int idx;  // copy index within that source buffer
  };
  std::vector<MergeStep> merge_steps_;
  std::vector<int> merge_begin_;

  // Pairwise plan: per neighbor rank, the shared entries (as indices into
  // topo_.shared, whose id order both sides agree on).
  std::map<int, std::vector<int>> pairwise_plan_;

  // Crystal plan: owner of each shared entry (min rank of the sharer set,
  // including me); shared entries I own, keyed for arrival-time lookup.
  std::vector<int> owner_;                    // per shared entry
  std::vector<long long> owned_ids_;          // ascending ids I own
  std::vector<int> owned_shared_entry_;       // topo_.shared index per owned id
  CrystalRouter router_;

  // Split-phase state between exec_many_begin() and exec_many_finish().
  // The gather/pack/unpack buffers persist across steps so a steady-state
  // time step allocates nothing on this path.
  struct SplitState {
    bool active = false;
    bool done_in_begin = false;  // non-pairwise methods finish inside begin()
    std::span<double> values;
    int nfields = 0;
    ReduceOp op = ReduceOp::kSum;
    std::vector<double> unique;
    std::vector<double> mine;  // ordered mode: my shared copies, flat
    std::vector<std::vector<double>> sendbuf, recvbuf;  // one per neighbor
    std::vector<comm::Request> reqs;
  };
  SplitState split_;
};

}  // namespace cmtbone::gs
