#include "gs/topology.hpp"

#include <algorithm>
#include <map>

namespace cmtbone::gs {

std::size_t Topology::exchange_volume() const {
  std::size_t v = 0;
  for (const SharedId& s : shared) v += s.sharers.size();
  return v;
}

Topology gs_setup(comm::Comm& comm, std::span<const long long> slot_ids) {
  comm::SiteScope site("gs_setup");
  const int p = comm.size();
  const int me = comm.rank();

  Topology topo;

  // --- local dedup: slots -> unique ids ---------------------------------
  topo.unique_ids.assign(slot_ids.begin(), slot_ids.end());
  std::sort(topo.unique_ids.begin(), topo.unique_ids.end());
  topo.unique_ids.erase(
      std::unique(topo.unique_ids.begin(), topo.unique_ids.end()),
      topo.unique_ids.end());
  topo.unique_of_slot.resize(slot_ids.size());
  for (std::size_t s = 0; s < slot_ids.size(); ++s) {
    topo.unique_of_slot[s] = int(
        std::lower_bound(topo.unique_ids.begin(), topo.unique_ids.end(),
                         slot_ids[s]) -
        topo.unique_ids.begin());
  }

  // --- ship ids to their home ranks (generalized all-to-all) ------------
  // Ids are already sorted, and id % p groups them arbitrarily, so bucket
  // explicitly.
  std::vector<std::vector<long long>> bucket(p);
  for (long long id : topo.unique_ids) {
    bucket[int(id % p)].push_back(id);
  }
  std::vector<long long> send;
  std::vector<int> send_counts(p);
  send.reserve(topo.unique_ids.size());
  for (int r = 0; r < p; ++r) {
    send_counts[r] = int(bucket[r].size());
    send.insert(send.end(), bucket[r].begin(), bucket[r].end());
  }
  std::vector<int> recv_counts;
  std::vector<long long> incoming = comm.alltoallv(
      std::span<const long long>(send), send_counts, &recv_counts);

  // --- home-side collation ----------------------------------------------
  // For each id this rank is home for: the set of ranks that reported it.
  std::map<long long, std::vector<int>> holders;
  {
    std::size_t pos = 0;
    for (int src = 0; src < p; ++src) {
      for (int c = 0; c < recv_counts[src]; ++c) {
        holders[incoming[pos++]].push_back(src);
      }
    }
  }

  // Dense global indices for shared ids: exclusive scan of per-home counts
  // (deterministic: homes index their shared ids in ascending id order).
  long long my_shared_count = 0;
  for (const auto& [id, ranks] : holders) {
    (void)id;
    if (ranks.size() > 1) ++my_shared_count;
  }
  long long scan_incl = comm.scan_sum(my_shared_count);
  long long my_base = scan_incl - my_shared_count;
  topo.total_shared = comm.allreduce_one(my_shared_count, comm::ReduceOp::kSum);
  topo.total_global = comm.allreduce_one(
      static_cast<long long>(holders.size()), comm::ReduceOp::kSum);

  // --- reply to sharers ---------------------------------------------------
  // Flattened record per (shared id, sharer): [id, shared_index, nsharers,
  // r0..r_{n-1}] sent to every sharer.
  std::vector<std::vector<long long>> reply(p);
  {
    long long next_index = my_base;
    for (const auto& [id, ranks] : holders) {
      if (ranks.size() < 2) continue;
      long long shared_index = next_index++;
      for (int dest : ranks) {
        auto& out = reply[dest];
        out.push_back(id);
        out.push_back(shared_index);
        out.push_back(static_cast<long long>(ranks.size()));
        for (int r : ranks) out.push_back(r);
      }
    }
  }
  std::vector<long long> reply_flat;
  std::vector<int> reply_counts(p);
  for (int r = 0; r < p; ++r) {
    reply_counts[r] = int(reply[r].size());
    reply_flat.insert(reply_flat.end(), reply[r].begin(), reply[r].end());
  }
  std::vector<long long> answers = comm.alltoallv(
      std::span<const long long>(reply_flat), reply_counts, nullptr);

  // --- parse answers into SharedId entries --------------------------------
  std::size_t pos = 0;
  while (pos < answers.size()) {
    SharedId entry;
    entry.id = answers[pos++];
    entry.shared_index = answers[pos++];
    long long nsharers = answers[pos++];
    entry.sharers.reserve(std::size_t(nsharers) - 1);
    for (long long i = 0; i < nsharers; ++i) {
      int r = int(answers[pos++]);
      if (r != me) entry.sharers.push_back(r);
    }
    std::sort(entry.sharers.begin(), entry.sharers.end());
    entry.unique_index = int(
        std::lower_bound(topo.unique_ids.begin(), topo.unique_ids.end(),
                         entry.id) -
        topo.unique_ids.begin());
    topo.shared.push_back(std::move(entry));
  }
  std::sort(topo.shared.begin(), topo.shared.end(),
            [](const SharedId& a, const SharedId& b) { return a.id < b.id; });

  return topo;
}

}  // namespace cmtbone::gs
