#pragma once
// gs_setup: the discovery phase of the gather-scatter library.
//
// From the paper (§VI): "spectral element coefficients are stored
// redundantly (and locally) on each processor ... and each processor is
// given index sets containing the global ids of the elements using
// gs_setup. This requires a discovery phase using all-to-all communication
// to identify for every global index i on processes p, all the processes q
// that also have i."
//
// Implementation: ids hash to a "home" rank (id mod P); every rank ships
// its distinct ids to their homes (alltoallv); each home collates the
// sharer set of every id it is responsible for, assigns a dense index to
// the shared ones, and replies to every sharer with (id, shared index,
// sharer list). The result is the topology all three exchange algorithms
// are built on.

#include <cstdint>
#include <span>
#include <vector>

#include "comm/comm.hpp"

namespace cmtbone::gs {

/// One locally-present global id that at least one other rank also holds.
struct SharedId {
  long long id = 0;
  int unique_index = 0;      // index into the handle's unique-id array
  long long shared_index = 0;  // dense global index among all shared ids
  std::vector<int> sharers;    // other ranks holding this id (sorted, != me)
};

/// Per-rank output of discovery.
struct Topology {
  /// Distinct local ids, ascending. unique_of_slot maps every input slot
  /// (GLL point) to its entry here.
  std::vector<long long> unique_ids;
  std::vector<int> unique_of_slot;

  /// The subset of unique ids that other ranks share, with their sharer
  /// sets. Sorted by id.
  std::vector<SharedId> shared;

  /// Global count of distinct shared ids (dense index space of the shared
  /// entries).
  long long total_shared = 0;

  /// Global count of ALL distinct ids. The allreduce method's "big vector"
  /// spans this whole space — every rank's redundant coefficients — which
  /// is what makes it "too expensive" in the paper's Fig. 7.
  long long total_global = 0;

  /// Sum over shared ids of |sharers| on this rank — the rank's exchange
  /// volume in values.
  std::size_t exchange_volume() const;
};

/// Run discovery. Collective over `comm`. `slot_ids` carries one global id
/// per local data slot (repeats allowed — e.g. an edge shared by several
/// local elements).
Topology gs_setup(comm::Comm& comm, std::span<const long long> slot_ids);

}  // namespace cmtbone::gs
