#pragma once
// Crystal router: staged all-to-all record routing.
//
// The crystal router (Fox et al., used by Nek5000's gslib) delivers
// arbitrary (destination, payload) records in ceil(log2 P) stages: the rank
// range is bisected, every rank ships the records destined for the other
// half to a partner there, and the algorithm recurses into each half. The
// paper (§VI): "All-to-all communication using the crystal router exchange
// is guaranteed to complete in log2 P stages."
//
// Works for any P (not just powers of two): when the halves are unequal the
// extra lower rank ships to the last upper rank; correctness only requires
// records to reach the right *half* each stage.

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "util/bytes.hpp"

namespace cmtbone::gs {

class CrystalRouter {
 public:
  explicit CrystalRouter(comm::Comm& comm) : comm_(&comm) {}

  /// Route fixed-size records. `records` holds dest.size() records of
  /// `record_bytes` each; `dest[i]` is record i's destination rank.
  /// Returns the records delivered to this rank, concatenated (arrival
  /// order unspecified). Collective.
  std::vector<std::byte> route(std::span<const std::byte> records,
                               std::span<const int> dest,
                               std::size_t record_bytes);

  /// Typed convenience: route a vector of trivially-copyable records.
  template <class T>
  std::vector<T> route_records(std::span<const T> records,
                               std::span<const int> dest) {
    auto bytes = route(
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(records.data()),
            records.size_bytes()),
        dest, sizeof(T));
    std::vector<T> out(bytes.size() / sizeof(T));
    util::copy_bytes(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Stages executed by the last route() call (== ceil(log2 P)).
  int stages() const { return stages_; }

 private:
  comm::Comm* comm_;
  int stages_ = 0;
};

}  // namespace cmtbone::gs
