#include "gs/crystal.hpp"

#include <cstring>
#include "util/bytes.hpp"

namespace cmtbone::gs {

namespace {
constexpr int kTagBase = 128;  // p2p tags 128..191 (stage-indexed)

// Working set: parallel arrays of destinations and flat payload.
struct Pool {
  std::vector<int> dest;
  std::vector<std::byte> data;  // dest.size() * record_bytes
};

// Serialize a shipment as [int32 count][dests][payload].
std::vector<std::byte> pack(const Pool& ship, std::size_t record_bytes) {
  const int count = int(ship.dest.size());
  std::vector<std::byte> buf(sizeof(int) + count * sizeof(int) +
                             count * record_bytes);
  util::copy_bytes(buf.data(), &count, sizeof(int));
  util::copy_bytes(buf.data() + sizeof(int), ship.dest.data(),
                   count * sizeof(int));
  util::copy_bytes(buf.data() + sizeof(int) + count * sizeof(int),
                   ship.data.data(), count * record_bytes);
  return buf;
}

void unpack_into(const std::vector<std::byte>& buf, std::size_t record_bytes,
                 Pool* pool) {
  int count = 0;
  util::copy_bytes(&count, buf.data(), sizeof(int));
  if (count <= 0) return;
  std::size_t old = pool->dest.size();
  pool->dest.resize(old + count);
  util::copy_bytes(pool->dest.data() + old, buf.data() + sizeof(int),
                   count * sizeof(int));
  std::size_t old_bytes = pool->data.size();
  pool->data.resize(old_bytes + count * record_bytes);
  util::copy_bytes(pool->data.data() + old_bytes,
                   buf.data() + sizeof(int) + count * sizeof(int),
                   count * record_bytes);
}
}  // namespace

std::vector<std::byte> CrystalRouter::route(std::span<const std::byte> records,
                                            std::span<const int> dest,
                                            std::size_t record_bytes) {
  comm::SiteScope site("crystal_router");
  const int me = comm_->rank();

  Pool pool;
  pool.dest.assign(dest.begin(), dest.end());
  pool.data.assign(records.begin(), records.end());
  stages_ = 0;

  int lo = 0, hi = comm_->size();
  while (hi - lo > 1) {
    const int nl = (hi - lo + 1) / 2;  // lower-half size (>= upper)
    const int mid = lo + nl;
    const int nh = hi - mid;
    const bool lower = me < mid;
    const int stage_tag = kTagBase + stages_;
    ++stages_;

    // Partition: keep records whose destination is in my half.
    Pool keep, ship;
    for (std::size_t i = 0; i < pool.dest.size(); ++i) {
      bool dst_lower = pool.dest[i] < mid;
      Pool& side = (dst_lower == lower) ? keep : ship;
      side.dest.push_back(pool.dest[i]);
      std::size_t old = side.data.size();
      side.data.resize(old + record_bytes);
      util::copy_bytes(side.data.data() + old,
                       pool.data.data() + i * record_bytes, record_bytes);
    }

    if (lower) {
      const int l = me - lo;
      const int partner = mid + std::min(l, nh - 1);
      // Receive first when we have a partner that targets us; ordering is
      // safe either way because sends are buffered (never block).
      std::vector<std::byte> out = pack(ship, record_bytes);
      comm_->send(std::span<const std::byte>(out), partner, stage_tag);
      pool = std::move(keep);
      if (l < nh) {
        auto in = comm_->recv_vector<std::byte>(mid + l, stage_tag);
        unpack_into(in, record_bytes, &pool);
      }
      hi = mid;
    } else {
      const int u = me - mid;
      const int partner = lo + u;
      std::vector<std::byte> out = pack(ship, record_bytes);
      comm_->send(std::span<const std::byte>(out), partner, stage_tag);
      pool = std::move(keep);
      auto in = comm_->recv_vector<std::byte>(lo + u, stage_tag);
      unpack_into(in, record_bytes, &pool);
      // The odd lower rank (when nl > nh) also ships to the last upper rank.
      if (u == nh - 1 && nl > nh) {
        auto extra = comm_->recv_vector<std::byte>(lo + nl - 1, stage_tag);
        unpack_into(extra, record_bytes, &pool);
      }
      lo = mid;
    }
  }

  return std::move(pool.data);
}

}  // namespace cmtbone::gs
