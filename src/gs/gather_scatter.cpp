#include "gs/gather_scatter.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "prof/timer.hpp"
#include "util/bytes.hpp"

namespace cmtbone::gs {

namespace {
constexpr int kPairwiseTag = 7;
// Ordered-mode setup handshake (copy counts, then copy keys, per neighbor).
constexpr int kOrderedCountTag = 8;
constexpr int kOrderedKeyTag = 9;
}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::kPairwise: return "pairwise exchange";
    case Method::kCrystalRouter: return "crystal router";
    case Method::kAllReduce: return "all_reduce";
    case Method::kAuto: return "auto";
    case Method::kModel: return "model";
  }
  return "?";
}

template <class T>
T GatherScatter::identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return T(0);
    case ReduceOp::kProd: return T(1);
    case ReduceOp::kMin: return std::numeric_limits<T>::max();
    case ReduceOp::kMax: return std::numeric_limits<T>::lowest();
  }
  return T(0);
}

GatherScatter::GatherScatter(comm::Comm& comm,
                             std::span<const long long> slot_ids, Method method,
                             std::span<const long long> slot_keys)
    : comm_(&comm),
      topo_(gs_setup(comm, slot_ids)),
      method_(method),
      router_(comm) {
  // Pairwise plan: topo_.shared is sorted by id, so appending in order gives
  // both sides of every pair an identical per-neighbor id ordering.
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    for (int r : topo_.shared[s].sharers) {
      pairwise_plan_[r].push_back(int(s));
    }
  }

  // Crystal plan: owner = min rank of the sharer set (which includes me).
  owner_.resize(topo_.shared.size());
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    const SharedId& sh = topo_.shared[s];
    int owner = comm.rank();
    if (!sh.sharers.empty()) owner = std::min(owner, sh.sharers.front());
    owner_[s] = owner;
    if (owner == comm.rank()) {
      owned_ids_.push_back(sh.id);
      owned_shared_entry_.push_back(int(s));
    }
  }

  if (!slot_keys.empty()) setup_ordered(slot_keys);

  // Ordered mode always runs its own (pairwise-pattern) exchange; kAuto
  // would time algorithms the handle never uses.
  if (method_ == Method::kAuto) {
    method_ = ordered_ ? Method::kPairwise : tune();
  } else if (method_ == Method::kModel) {
    if (ordered_) {
      method_ = Method::kPairwise;
    } else if (auto machine = netmodel::calibrated_machine()) {
      method_ = select_from_model(*machine);
    } else {
      method_ = tune();
    }
  }
}

// --- ordered mode -----------------------------------------------------------
//
// Setup builds, per global id, a canonical fold *program* over all of the
// id's copies, ordered by each copy's globally-unique key. At exec time
// every sharer of an id receives every other sharer's raw copy values and
// folds the full copy list (its own included) in ascending-key order,
// starting from the op identity. A private id folds its local copies the
// same way. Since the (key, value) multiset of an id's copies does not
// depend on which rank holds which copy, neither does the fold — the bits
// are invariant under element migration.

void GatherScatter::setup_ordered(std::span<const long long> slot_keys) {
  ordered_ = true;
  const std::size_t nunique = topo_.unique_ids.size();
  const std::size_t nslots = topo_.unique_of_slot.size();

  // Slots grouped by unique id, ascending by key within each group.
  std::vector<int> count(nunique, 0);
  for (std::size_t s = 0; s < nslots; ++s) ++count[topo_.unique_of_slot[s]];
  ordered_begin_.assign(nunique + 1, 0);
  for (std::size_t u = 0; u < nunique; ++u) {
    ordered_begin_[u + 1] = ordered_begin_[u] + count[u];
  }
  ordered_slots_.resize(nslots);
  std::vector<int> cursor(ordered_begin_.begin(), ordered_begin_.end() - 1);
  for (std::size_t s = 0; s < nslots; ++s) {
    ordered_slots_[cursor[topo_.unique_of_slot[s]]++] = int(s);
  }
  for (std::size_t u = 0; u < nunique; ++u) {
    std::sort(ordered_slots_.begin() + ordered_begin_[u],
              ordered_slots_.begin() + ordered_begin_[u + 1],
              [&](int a, int b) { return slot_keys[a] < slot_keys[b]; });
  }

  shared_of_unique_.assign(nunique, -1);
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    shared_of_unique_[topo_.shared[s].unique_index] = int(s);
  }
  my_copy_offset_.assign(topo_.shared.size() + 1, 0);
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    const int u = topo_.shared[s].unique_index;
    my_copy_offset_[s + 1] =
        my_copy_offset_[s] + (ordered_begin_[u + 1] - ordered_begin_[u]);
  }

  // Handshake with each pairwise neighbor: my per-entry copy counts, then
  // the copy keys (each entry's keys already ascending). Both sides walk
  // the shared entries in the same (id) order, so arrays line up.
  const std::size_t nnbr = pairwise_plan_.size();
  std::vector<std::vector<int>> send_counts(nnbr), recv_counts(nnbr);
  std::vector<comm::Request> reqs;
  reqs.reserve(nnbr);
  std::size_t b = 0;
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    recv_counts[b].resize(entries.size());
    reqs.push_back(comm_->irecv(std::span<int>(recv_counts[b]), neighbor,
                                kOrderedCountTag));
    ++b;
  }
  b = 0;
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    std::vector<int>& sc = send_counts[b++];
    sc.reserve(entries.size());
    for (int s : entries) {
      sc.push_back(my_copy_offset_[s + 1] - my_copy_offset_[s]);
    }
    comm_->isend(std::span<const int>(sc), neighbor, kOrderedCountTag);
  }
  comm_->waitall(reqs);

  nbr_copy_total_.assign(nnbr, 0);
  for (std::size_t i = 0; i < nnbr; ++i) {
    for (int c : recv_counts[i]) nbr_copy_total_[i] += std::size_t(c);
  }

  std::vector<std::vector<long long>> send_keys(nnbr), recv_keys(nnbr);
  reqs.clear();
  b = 0;
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    (void)entries;
    recv_keys[b].resize(nbr_copy_total_[b]);
    reqs.push_back(comm_->irecv(std::span<long long>(recv_keys[b]), neighbor,
                                kOrderedKeyTag));
    ++b;
  }
  b = 0;
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    std::vector<long long>& sk = send_keys[b++];
    for (int s : entries) {
      const int u = topo_.shared[s].unique_index;
      for (int i = ordered_begin_[u]; i < ordered_begin_[u + 1]; ++i) {
        sk.push_back(slot_keys[ordered_slots_[i]]);
      }
    }
    comm_->isend(std::span<const long long>(sk), neighbor, kOrderedKeyTag);
  }
  comm_->waitall(reqs);

  // Merge program: per shared entry, every copy (mine and each sharer's)
  // sorted ascending by key. Keys are globally unique, so every sharer
  // derives the identical order from the identical key multiset.
  struct Cand {
    long long key;
    int src, idx;
  };
  std::vector<std::vector<Cand>> cand(topo_.shared.size());
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    const int u = topo_.shared[s].unique_index;
    for (int i = ordered_begin_[u]; i < ordered_begin_[u + 1]; ++i) {
      cand[s].push_back({slot_keys[ordered_slots_[i]], -1,
                         my_copy_offset_[s] + (i - ordered_begin_[u])});
    }
  }
  b = 0;
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    (void)neighbor;
    int pos = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (int j = 0; j < recv_counts[b][i]; ++j) {
        cand[entries[i]].push_back({recv_keys[b][pos], int(b), pos});
        ++pos;
      }
    }
    ++b;
  }
  merge_begin_.assign(topo_.shared.size() + 1, 0);
  merge_steps_.clear();
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    std::sort(cand[s].begin(), cand[s].end(),
              [](const Cand& a, const Cand& c) { return a.key < c.key; });
    for (const Cand& c : cand[s]) merge_steps_.push_back({c.src, c.idx});
    merge_begin_[s + 1] = int(merge_steps_.size());
  }
}

template <class T>
void GatherScatter::ordered_gather(std::span<const T> values, int nfields,
                                   ReduceOp op, std::vector<T>& unique,
                                   std::vector<T>& mine) const {
  const std::size_t slots = values.size() / nfields;
  const std::size_t nf = std::size_t(nfields);
  unique.assign(topo_.unique_ids.size() * nf, identity<T>(op));
  mine.resize(std::size_t(my_copy_offset_.back()) * nf);
  for (std::size_t u = 0; u < topo_.unique_ids.size(); ++u) {
    const int s = shared_of_unique_[u];
    if (s < 0) {
      // Private id: fold local copies ascending by key — the same sequence
      // the merge program would produce were the copies split across ranks.
      T* uv = unique.data() + u * nf;
      for (int i = ordered_begin_[u]; i < ordered_begin_[u + 1]; ++i) {
        const std::size_t slot = std::size_t(ordered_slots_[i]);
        for (std::size_t f = 0; f < nf; ++f) {
          uv[f] = comm::apply(op, uv[f], values[f * slots + slot]);
        }
      }
    } else {
      // Shared id: stage raw copies; folding happens after the exchange.
      for (int i = ordered_begin_[u]; i < ordered_begin_[u + 1]; ++i) {
        const std::size_t slot = std::size_t(ordered_slots_[i]);
        T* dst =
            mine.data() +
            (std::size_t(my_copy_offset_[s]) + (i - ordered_begin_[u])) * nf;
        for (std::size_t f = 0; f < nf; ++f) dst[f] = values[f * slots + slot];
      }
    }
  }
}

template <class T>
void GatherScatter::ordered_fold_shared(
    int nfields, ReduceOp op, std::vector<T>& unique,
    const std::vector<T>& mine,
    const std::vector<std::vector<T>>& recvbuf) const {
  const std::size_t nf = std::size_t(nfields);
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    T* uv = unique.data() + std::size_t(topo_.shared[s].unique_index) * nf;
    for (int m = merge_begin_[s]; m < merge_begin_[s + 1]; ++m) {
      const MergeStep& st = merge_steps_[m];
      const T* v = (st.src < 0 ? mine.data() : recvbuf[st.src].data()) +
                   std::size_t(st.idx) * nf;
      for (std::size_t f = 0; f < nf; ++f) {
        uv[f] = comm::apply(op, uv[f], v[f]);
      }
    }
  }
}

template <class T>
void GatherScatter::exec_ordered(std::span<T> values, int nfields,
                                 ReduceOp op) {
  comm::SiteScope site("gs_op");
  const std::size_t slots = values.size() / nfields;
  const std::size_t nf = std::size_t(nfields);

  std::vector<T> unique, mine;
  ordered_gather(std::span<const T>(values.data(), values.size()), nfields, op,
                 unique, mine);

  // Ship raw copies to every sharer (pairwise pattern, slightly larger
  // payload than the pre-reduced pairwise method for edge/corner ids).
  comm::SiteScope psite("gs_op.pairwise");
  std::vector<std::vector<T>> sendbuf, recvbuf;
  std::vector<comm::Request> reqs;
  sendbuf.reserve(pairwise_plan_.size());
  recvbuf.reserve(pairwise_plan_.size());
  reqs.reserve(pairwise_plan_.size());
  std::size_t b = 0;
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    (void)entries;
    recvbuf.emplace_back(nbr_copy_total_[b++] * nf);
    reqs.push_back(
        comm_->irecv(std::span<T>(recvbuf.back()), neighbor, kPairwiseTag));
  }
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    auto& buf = sendbuf.emplace_back();
    for (int s : entries) {
      const T* src = mine.data() + std::size_t(my_copy_offset_[s]) * nf;
      buf.insert(buf.end(), src,
                 src + std::size_t(my_copy_offset_[s + 1] -
                                   my_copy_offset_[s]) * nf);
    }
    comm_->isend(std::span<const T>(buf), neighbor, kPairwiseTag);
  }
  comm_->waitall(reqs);

  ordered_fold_shared(nfields, op, unique, mine, recvbuf);

  for (std::size_t s = 0; s < slots; ++s) {
    const T* u = unique.data() + topo_.unique_of_slot[s] * nf;
    for (std::size_t f = 0; f < nf; ++f) values[f * slots + s] = u[f];
  }
}

void GatherScatter::exec_ordered_begin(std::span<double> values, int nfields,
                                       ReduceOp op) {
  comm::SiteScope site("gs_op");
  split_.active = true;
  split_.done_in_begin = false;
  split_.values = values;
  split_.nfields = nfields;
  split_.op = op;

  ordered_gather(std::span<const double>(values.data(), values.size()),
                 nfields, op, split_.unique, split_.mine);

  const std::size_t nf = std::size_t(nfields);
  comm::SiteScope psite("gs_op.pairwise");
  try {
    split_.sendbuf.resize(pairwise_plan_.size());
    split_.recvbuf.resize(pairwise_plan_.size());
    split_.reqs.clear();
    split_.reqs.reserve(pairwise_plan_.size());
    std::size_t b = 0;
    for (const auto& [neighbor, entries] : pairwise_plan_) {
      (void)entries;
      std::vector<double>& rb = split_.recvbuf[b];
      rb.resize(nbr_copy_total_[b] * nf);
      ++b;
      split_.reqs.push_back(
          comm_->irecv(std::span<double>(rb), neighbor, kPairwiseTag));
    }
    b = 0;
    for (const auto& [neighbor, entries] : pairwise_plan_) {
      std::vector<double>& sb = split_.sendbuf[b++];
      sb.clear();
      for (int s : entries) {
        const double* src =
            split_.mine.data() + std::size_t(my_copy_offset_[s]) * nf;
        sb.insert(sb.end(), src,
                  src + std::size_t(my_copy_offset_[s + 1] -
                                    my_copy_offset_[s]) * nf);
      }
      comm_->isend(std::span<const double>(sb), neighbor, kPairwiseTag);
    }
  } catch (...) {
    abandon_split();
    throw;
  }
}

void GatherScatter::exec_ordered_finish() {
  split_.active = false;
  comm::SiteScope site("gs_op");
  const std::size_t nf = std::size_t(split_.nfields);
  const std::size_t slots = split_.values.size() / split_.nfields;

  {
    comm::SiteScope psite("gs_op.pairwise");
    try {
      comm_->waitall(split_.reqs);
    } catch (...) {
      abandon_split();
      throw;
    }
    split_.reqs.clear();
  }

  ordered_fold_shared(split_.nfields, split_.op, split_.unique, split_.mine,
                      split_.recvbuf);

  for (std::size_t s = 0; s < slots; ++s) {
    const double* u = split_.unique.data() + topo_.unique_of_slot[s] * nf;
    for (std::size_t f = 0; f < nf; ++f) {
      split_.values[f * slots + s] = u[f];
    }
  }
}

void GatherScatter::exec(std::span<double> values, ReduceOp op) {
  exec_impl<double>(values, 1, op, method_);
}

void GatherScatter::exec_with(std::span<double> values, ReduceOp op,
                              Method method) {
  exec_impl<double>(values, 1, op, method);
}

void GatherScatter::exec_many(std::span<double> values, int nfields,
                              ReduceOp op) {
  exec_impl<double>(values, nfields, op, method_);
}

void GatherScatter::exec_many_with(std::span<double> values, int nfields,
                                   ReduceOp op, Method method) {
  exec_impl<double>(values, nfields, op, method);
}

GatherScatter::~GatherScatter() { abandon_split(); }

void GatherScatter::abandon_split() {
  for (comm::Request& r : split_.reqs) comm_->cancel(r);
  split_.reqs.clear();
  split_.active = false;
  split_.done_in_begin = false;
}

void GatherScatter::exec_many_begin(std::span<double> values, int nfields,
                                    ReduceOp op) {
  if (ordered_) {
    exec_ordered_begin(values, nfields, op);
    return;
  }
  comm::SiteScope site("gs_op");
  split_.active = true;
  split_.values = values;
  split_.nfields = nfields;
  split_.op = op;

  const std::size_t slots = values.size() / nfields;
  const std::size_t nf = std::size_t(nfields);

  // Phase 1: local gather — identical code path to exec_impl, into the
  // persistent buffer.
  split_.unique.assign(topo_.unique_ids.size() * nf, identity<double>(op));
  for (std::size_t s = 0; s < slots; ++s) {
    double* u = split_.unique.data() + topo_.unique_of_slot[s] * nf;
    for (std::size_t f = 0; f < nf; ++f) {
      u[f] = comm::apply(op, u[f], values[f * slots + s]);
    }
  }

  if (method_ == Method::kCrystalRouter || method_ == Method::kAllReduce) {
    // These methods are built on unsplittable collectives: run the whole
    // gs_op to completion now. The result is the same either way; only the
    // overlap opportunity is lost.
    if (method_ == Method::kCrystalRouter) {
      exec_crystal(split_.unique, nfields, op);
    } else {
      exec_allreduce(split_.unique, nfields, op);
    }
    for (std::size_t s = 0; s < slots; ++s) {
      const double* u = split_.unique.data() + topo_.unique_of_slot[s] * nf;
      for (std::size_t f = 0; f < nf; ++f) values[f * slots + s] = u[f];
    }
    split_.done_in_begin = true;
    return;
  }
  split_.done_in_begin = false;

  // Phase 2a (pairwise): post all receives, pack and send. Mirrors
  // exec_pairwise exactly, with the buffers persisting across steps.
  comm::SiteScope psite("gs_op.pairwise");
  try {
    split_.sendbuf.resize(pairwise_plan_.size());
    split_.recvbuf.resize(pairwise_plan_.size());
    split_.reqs.clear();
    split_.reqs.reserve(pairwise_plan_.size());
    std::size_t b = 0;
    for (const auto& [neighbor, entries] : pairwise_plan_) {
      std::vector<double>& rb = split_.recvbuf[b++];
      rb.resize(entries.size() * nf);
      split_.reqs.push_back(
          comm_->irecv(std::span<double>(rb), neighbor, kPairwiseTag));
    }
    b = 0;
    for (const auto& [neighbor, entries] : pairwise_plan_) {
      std::vector<double>& sb = split_.sendbuf[b++];
      sb.clear();
      sb.reserve(entries.size() * nf);
      for (int s : entries) {
        const double* u =
            split_.unique.data() + topo_.shared[s].unique_index * nf;
        sb.insert(sb.end(), u, u + nf);
      }
      comm_->isend(std::span<const double>(sb), neighbor, kPairwiseTag);
    }
  } catch (...) {
    // A chaos abort or peer failure can fire from the hooks inside
    // irecv/isend with some receives already posted: withdraw them so
    // nothing delivers into this handle's buffers after the unwind.
    abandon_split();
    throw;
  }
}

void GatherScatter::exec_many_finish() {
  if (!split_.active) return;
  if (ordered_) {
    exec_ordered_finish();
    return;
  }
  split_.active = false;
  if (split_.done_in_begin) return;

  comm::SiteScope site("gs_op");
  const std::size_t nf = std::size_t(split_.nfields);
  const std::size_t slots = split_.values.size() / split_.nfields;

  {
    // Phase 2b (pairwise): wait and accumulate in the same neighbor order
    // as exec_pairwise, so the floating-point reduction order — and hence
    // the result bits — match the blocking path.
    comm::SiteScope psite("gs_op.pairwise");
    try {
      comm_->waitall(split_.reqs);
    } catch (...) {
      // waitall withdrew whatever was still posted; clear the split state
      // so the handle is reusable (and the destructor has nothing stale).
      abandon_split();
      throw;
    }
    std::size_t b = 0;
    for (const auto& [neighbor, entries] : pairwise_plan_) {
      const std::vector<double>& buf = split_.recvbuf[b++];
      for (std::size_t i = 0; i < entries.size(); ++i) {
        double* u =
            split_.unique.data() + topo_.shared[entries[i]].unique_index * nf;
        for (std::size_t f = 0; f < nf; ++f) {
          u[f] = comm::apply(split_.op, u[f], buf[i * nf + f]);
        }
      }
    }
    split_.reqs.clear();
  }

  // Phase 3: local scatter.
  for (std::size_t s = 0; s < slots; ++s) {
    const double* u = split_.unique.data() + topo_.unique_of_slot[s] * nf;
    for (std::size_t f = 0; f < nf; ++f) {
      split_.values[f * slots + s] = u[f];
    }
  }
}

template <class T>
void GatherScatter::exec_impl(std::span<T> values, int nfields, ReduceOp op,
                              Method method) {
  if (ordered_) {
    // The ordered fold program replaces all three exchange methods; a
    // per-call method request cannot be honored without changing the bits.
    exec_ordered(values, nfields, op);
    return;
  }
  comm::SiteScope site("gs_op");
  const std::size_t slots = values.size() / nfields;
  const std::size_t nf = std::size_t(nfields);

  // Phase 1: local gather — fold duplicate local copies per unique id.
  // Unique values interleave fields per id (id major, field minor) so one
  // exchange message carries all fields of an id contiguously.
  std::vector<T> unique(topo_.unique_ids.size() * nf, identity<T>(op));
  for (std::size_t s = 0; s < slots; ++s) {
    T* u = unique.data() + topo_.unique_of_slot[s] * nf;
    for (std::size_t f = 0; f < nf; ++f) {
      u[f] = comm::apply(op, u[f], values[f * slots + s]);
    }
  }

  // Phase 2: nonlocal exchange.
  switch (method) {
    case Method::kPairwise: exec_pairwise(unique, nfields, op); break;
    case Method::kCrystalRouter: exec_crystal(unique, nfields, op); break;
    case Method::kAllReduce: exec_allreduce(unique, nfields, op); break;
    // kAuto/kModel are resolved to a concrete method at construction; a
    // per-call request for them degrades to the pairwise exchange.
    case Method::kAuto: exec_pairwise(unique, nfields, op); break;
    case Method::kModel: exec_pairwise(unique, nfields, op); break;
  }

  // Phase 3: local scatter.
  for (std::size_t s = 0; s < slots; ++s) {
    const T* u = unique.data() + topo_.unique_of_slot[s] * nf;
    for (std::size_t f = 0; f < nf; ++f) {
      values[f * slots + s] = u[f];
    }
  }
}

// --- pairwise exchange -------------------------------------------------------

template <class T>
void GatherScatter::exec_pairwise(std::vector<T>& unique_values, int nfields,
                                  ReduceOp op) {
  comm::SiteScope site("gs_op.pairwise");
  constexpr int kTag = kPairwiseTag;
  const std::size_t nf = std::size_t(nfields);

  // Snapshot outgoing values before any accumulation: each pair must see
  // the peer's locally-gathered value, not a partially reduced one.
  std::vector<std::vector<T>> sendbuf, recvbuf;
  std::vector<comm::Request> reqs;
  sendbuf.reserve(pairwise_plan_.size());
  recvbuf.reserve(pairwise_plan_.size());
  reqs.reserve(pairwise_plan_.size());
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    recvbuf.emplace_back(entries.size() * nf);
    reqs.push_back(comm_->irecv(std::span<T>(recvbuf.back()), neighbor, kTag));
  }
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    auto& buf = sendbuf.emplace_back();
    buf.reserve(entries.size() * nf);
    for (int s : entries) {
      const T* u = unique_values.data() + topo_.shared[s].unique_index * nf;
      buf.insert(buf.end(), u, u + nf);
    }
    comm_->isend(std::span<const T>(buf), neighbor, kTag);
  }
  comm_->waitall(reqs);

  std::size_t b = 0;
  for (const auto& [neighbor, entries] : pairwise_plan_) {
    const std::vector<T>& buf = recvbuf[b++];
    for (std::size_t i = 0; i < entries.size(); ++i) {
      T* u = unique_values.data() + topo_.shared[entries[i]].unique_index * nf;
      for (std::size_t f = 0; f < nf; ++f) {
        u[f] = comm::apply(op, u[f], buf[i * nf + f]);
      }
    }
  }
}

// --- crystal router ----------------------------------------------------------

namespace {
// Crystal records carry the id followed by nfields values; the byte-level
// router keeps the record size dynamic per exec and per value type.
template <class T>
void append_record(std::vector<std::byte>* buf, long long id, const T* values,
                   std::size_t nf) {
  std::size_t old = buf->size();
  buf->resize(old + sizeof(long long) + nf * sizeof(T));
  util::copy_bytes(buf->data() + old, &id, sizeof(long long));
  util::copy_bytes(buf->data() + old + sizeof(long long), values,
                   nf * sizeof(T));
}

inline long long record_id(const std::byte* rec) {
  long long id;
  util::copy_bytes(&id, rec, sizeof(long long));
  return id;
}

template <class T>
const T* record_values(const std::byte* rec) {
  return reinterpret_cast<const T*>(rec + sizeof(long long));
}
}  // namespace

template <class T>
void GatherScatter::exec_crystal(std::vector<T>& unique_values, int nfields,
                                 ReduceOp op) {
  comm::SiteScope site("gs_op.crystal");
  const int me = comm_->rank();
  const std::size_t nf = std::size_t(nfields);
  const std::size_t record_bytes = sizeof(long long) + nf * sizeof(T);

  // Pass 1: every sharer ships its gathered values to the id's owner.
  std::vector<std::byte> outbound;
  std::vector<int> outbound_dest;
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    if (owner_[s] == me) continue;
    append_record(&outbound, topo_.shared[s].id,
                  unique_values.data() + topo_.shared[s].unique_index * nf, nf);
    outbound_dest.push_back(owner_[s]);
  }
  std::vector<std::byte> arrived =
      router_.route(outbound, outbound_dest, record_bytes);

  // Owner-side reduction into the owned entries.
  for (std::size_t pos = 0; pos < arrived.size(); pos += record_bytes) {
    const std::byte* rec = arrived.data() + pos;
    auto it = std::lower_bound(owned_ids_.begin(), owned_ids_.end(),
                               record_id(rec));
    int s = owned_shared_entry_[it - owned_ids_.begin()];
    T* u = unique_values.data() + topo_.shared[s].unique_index * nf;
    const T* v = record_values<T>(rec);
    for (std::size_t f = 0; f < nf; ++f) u[f] = comm::apply(op, u[f], v[f]);
  }

  // Pass 2: owners ship the reduced results back to every other sharer.
  std::vector<std::byte> results;
  std::vector<int> results_dest;
  for (std::size_t o = 0; o < owned_ids_.size(); ++o) {
    int s = owned_shared_entry_[o];
    const T* u = unique_values.data() + topo_.shared[s].unique_index * nf;
    for (int r : topo_.shared[s].sharers) {
      append_record(&results, owned_ids_[o], u, nf);
      results_dest.push_back(r);
    }
  }
  std::vector<std::byte> incoming =
      router_.route(results, results_dest, record_bytes);
  for (std::size_t pos = 0; pos < incoming.size(); pos += record_bytes) {
    const std::byte* rec = incoming.data() + pos;
    // Find the shared entry by id (topo_.shared is sorted by id).
    auto it = std::lower_bound(
        topo_.shared.begin(), topo_.shared.end(), record_id(rec),
        [](const SharedId& a, long long id) { return a.id < id; });
    T* u = unique_values.data() + it->unique_index * nf;
    util::copy_bytes(u, record_values<T>(rec), nf * sizeof(T));
  }
}

// --- allreduce on a big vector ------------------------------------------------

template <class T>
void GatherScatter::exec_allreduce(std::vector<T>& unique_values, int nfields,
                                   ReduceOp op) {
  comm::SiteScope site("gs_op.all_reduce");
  const std::size_t nf = std::size_t(nfields);
  // The big vector spans the whole global id space (as in gslib), with the
  // shared entries packed first; private entries ride along as identity and
  // are never read back. This is what makes the method scale so poorly.
  std::vector<T> big(std::size_t(topo_.total_global) * nf, identity<T>(op));
  for (const SharedId& sh : topo_.shared) {
    util::copy_bytes(big.data() + std::size_t(sh.shared_index) * nf,
                     unique_values.data() + sh.unique_index * nf,
                     nf * sizeof(T));
  }
  comm_->allreduce(std::span<T>(big), op);
  for (const SharedId& sh : topo_.shared) {
    util::copy_bytes(unique_values.data() + sh.unique_index * nf,
                     big.data() + std::size_t(sh.shared_index) * nf,
                     nf * sizeof(T));
  }
}

// --- startup tuning (the Fig. 7 measurement) -----------------------------------

Method GatherScatter::tune(int repetitions) {
  // Ordered handles run one fixed exchange; there is nothing to tune.
  if (ordered_) return method_;
  tuning_.clear();
  const Method methods[] = {Method::kPairwise, Method::kCrystalRouter,
                            Method::kAllReduce};
  std::vector<double> dummy(topo_.unique_of_slot.size(), 1.0);

  // The allreduce big vector spans the whole global id space; past this
  // size the method cannot win and timing it would only burn memory and
  // wall clock (the paper's "too expensive"). Record it as infinite.
  constexpr long long kAllreduceTuneLimit = 1LL << 23;  // values (64 MiB)

  double best_avg = std::numeric_limits<double>::infinity();
  Method best = Method::kPairwise;
  for (Method m : methods) {
    if (m == Method::kAllReduce && topo_.total_global > kAllreduceTuneLimit) {
      TuneRow row;
      row.method = m;
      row.avg = row.min = row.max = std::numeric_limits<double>::infinity();
      tuning_.push_back(row);
      continue;
    }
    // Warm-up once (first-touch allocation), then time.
    exec_with(std::span<double>(dummy), ReduceOp::kSum, m);
    comm_->barrier();
    prof::WallTimer t;
    for (int rep = 0; rep < repetitions; ++rep) {
      exec_with(std::span<double>(dummy), ReduceOp::kSum, m);
    }
    double mine = t.seconds() / repetitions;

    TuneRow row;
    row.method = m;
    row.avg = comm_->allreduce_one(mine, ReduceOp::kSum) / comm_->size();
    row.min = comm_->allreduce_one(mine, ReduceOp::kMin);
    row.max = comm_->allreduce_one(mine, ReduceOp::kMax);
    tuning_.push_back(row);
    if (row.avg < best_avg) {
      best_avg = row.avg;
      best = m;
    }
  }
  method_ = best;
  return best;
}

// --- model-driven method selection -------------------------------------------

netmodel::ExchangeShape GatherScatter::exchange_shape() const {
  netmodel::ExchangeShape shape;
  shape.ranks = comm_->size();
  shape.neighbors = int(pairwise_plan_.size());
  shape.pairwise_bytes =
      static_cast<long long>(pairwise_send_values() * sizeof(double));
  // Crystal pass 1 injects one record per shared entry this rank does not
  // own; the return pass is symmetric in aggregate, and predict_crystal
  // already doubles for the two passes.
  long long not_owned = 0;
  for (std::size_t s = 0; s < topo_.shared.size(); ++s) {
    if (owner_[s] != comm_->rank()) ++not_owned;
  }
  shape.crystal_records = not_owned;
  shape.record_bytes = sizeof(long long) + sizeof(double);
  shape.big_vector_bytes =
      topo_.total_global * static_cast<long long>(sizeof(double));
  return shape;
}

Method GatherScatter::select_from_model(const netmodel::LogGPParams& machine) {
  const netmodel::Prediction mine =
      netmodel::predict_all(machine, exchange_shape());
  // Per-rank shapes differ (corner ranks have fewer partners than interior
  // ones); the run is gated by the slowest rank, and everyone must agree on
  // the method or the exchange deadlocks. Reduce each algorithm's cost to
  // its worst rank — a collective, so this is deterministic and identical
  // everywhere.
  const double pairwise = comm_->allreduce_one(mine.pairwise, ReduceOp::kMax);
  const double crystal = comm_->allreduce_one(mine.crystal, ReduceOp::kMax);
  const double allreduce = comm_->allreduce_one(mine.allreduce, ReduceOp::kMax);

  tuning_.clear();
  tuning_.push_back({Method::kPairwise, pairwise, pairwise, pairwise});
  tuning_.push_back({Method::kCrystalRouter, crystal, crystal, crystal});
  tuning_.push_back({Method::kAllReduce, allreduce, allreduce, allreduce});

  // Ties break in enum order (pairwise first), matching tune().
  Method best = Method::kPairwise;
  double best_cost = pairwise;
  if (crystal < best_cost) { best = Method::kCrystalRouter; best_cost = crystal; }
  if (allreduce < best_cost) { best = Method::kAllReduce; }
  return best;
}

// --- structure queries ----------------------------------------------------------

std::vector<int> GatherScatter::pairwise_neighbors() const {
  std::vector<int> out;
  out.reserve(pairwise_plan_.size());
  for (const auto& [rank, entries] : pairwise_plan_) {
    (void)entries;
    out.push_back(rank);
  }
  return out;
}

std::size_t GatherScatter::pairwise_send_values() const {
  std::size_t v = 0;
  for (const auto& [rank, entries] : pairwise_plan_) {
    (void)rank;
    v += entries.size();
  }
  return v;
}

// Instantiate the typed pipeline for gslib's datatype set.
template void GatherScatter::exec_impl<double>(std::span<double>, int,
                                               ReduceOp, Method);
template void GatherScatter::exec_impl<float>(std::span<float>, int, ReduceOp,
                                              Method);
template void GatherScatter::exec_impl<int>(std::span<int>, int, ReduceOp,
                                            Method);
template void GatherScatter::exec_impl<long long>(std::span<long long>, int,
                                                  ReduceOp, Method);

}  // namespace cmtbone::gs
