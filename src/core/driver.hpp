#pragma once
// The CMT-bone driver: an explicit DG spectral-element solver for the
// conservation law dU/dt + div f(U) = 0 on a periodic box, structured
// exactly like the mini-app the paper describes:
//
//   * volume term: flux divergence via the derivative-matrix kernels
//     (the ax_-like routine dominating Fig. 4),
//   * surface term: full2face_cmt extraction, nearest-neighbor exchange,
//     Rusanov numerical flux,
//   * optional dealiasing round-trip and gs_op direct-stiffness averaging,
//   * SSP-RK3 time stepping with a per-step allreduce for the CFL dt
//     (the "vector reductions" of §VI).
//
// Physics modes select the HyperbolicSystem stepped (see core/system.hpp);
// the proxy mode reproduces CMT-bone's abstraction, the advection and
// Burgers modes are analytically verifiable, the Euler mode exercises the
// full 5-field nonlinear path (smooth entropy wave or Sod's shock tube).

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "balance/cost_model.hpp"
#include "comm/comm.hpp"
#include "core/config.hpp"
#include "core/system.hpp"
#include "gs/gather_scatter.hpp"
#include "io/checkpoint.hpp"
#include "mesh/face_exchange.hpp"
#include "mesh/layout.hpp"
#include "mesh/partition.hpp"
#include "particles/tracker.hpp"
#include "prof/balance.hpp"
#include "prof/overlap.hpp"
#include "sem/operators.hpp"

namespace cmtbone::core {

class Driver {
 public:
  /// Collective over `comm`; comm.size() must equal the processor grid.
  Driver(comm::Comm& comm, const Config& config);

  /// Set fields from a callback (defaults provided by default_ic()).
  void initialize(const FieldFunction& ic);
  /// Physics-appropriate smooth default initial condition.
  FieldFunction default_ic() const;

  /// Advance `nsteps` steps; returns simulated time advanced.
  double run(int nsteps);
  /// Like run(), invoking `after_step` after every completed step. The
  /// resilience layer hangs its checkpoint cadence (and chaos its
  /// kill-at-step fault) off this hook; the hook may throw, which unwinds
  /// the run like any rank failure.
  using StepHook = std::function<void(Driver&)>;
  double run(int nsteps, const StepHook& after_step);
  void step();

  double time() const { return time_; }
  long steps_taken() const { return steps_; }

  /// CFL-limited dt from the per-element metric spacing (collective: one
  /// min-allreduce). Nonlinear systems fold their admissibility scan into
  /// the same reduction (a diverged rank contributes a negative sentinel),
  /// so every rank agrees and throws SolverDiverged together.
  double compute_dt();

  // --- field access and diagnostics --------------------------------------
  int nfields() const { return config_.nfields(); }
  std::span<const double> field(int f) const { return u_[f]; }
  std::span<double> mutable_field(int f) { return {u_[f].data(), u_[f].size()}; }

  /// Physical coordinates of GLL node (i,j,k) of local element e.
  std::array<double, 3> node_coords(int e, int i, int j, int k) const;

  /// Quadrature-weighted L2 norm / integral of a field over the whole
  /// domain (collective).
  double l2_norm(int f);
  double integral(int f);
  /// Max-norm error of all fields vs a callback (collective).
  double linf_error(const FieldFunction& exact);
  /// Quadrature-weighted L1 error of one field vs a callback (collective) —
  /// the right norm for discontinuous profiles (Sod).
  double l1_error(int f, const FieldFunction& exact);

  /// The hyperbolic system this driver steps (flux model, analytic
  /// solutions, admissibility).
  const HyperbolicSystem& system() const { return *system_; }

  const mesh::Partition& partition() const { return part_; }
  /// Current element ownership (the block layout until a rebalance moves
  /// elements; local indices are ascending-gid over the owned set).
  const mesh::ElementLayout& element_layout() const { return layout_; }
  const Config& config() const { return config_; }
  const sem::Operators& operators() const { return ops_; }
  gs::GatherScatter& gather_scatter() { return *gs_; }
  mesh::FaceExchange& face_exchange() { return *exchange_; }
  /// Null unless config.particles_per_rank > 0.
  particles::Tracker* tracker() { return tracker_.get(); }

  /// Interior/boundary element split used by the overlap path.
  const mesh::ElementClasses& element_classes() const { return classes_; }

  /// Accumulated split-phase exchange timing (empty unless config.overlap).
  const prof::OverlapStats& overlap_stats() const { return overlap_stats_; }
  void reset_overlap_stats() { overlap_stats_.reset(); }

  // --- dynamic load balancing ---------------------------------------------
  /// Adopt an explicit gid -> rank ownership map (collective): migrate the
  /// conserved fields and resident particles to the new owners and rebuild
  /// every layout-derived structure (exchange plans, gs handles, element
  /// classes, scratch sizes). With ordered_gs/balancing enabled the fields
  /// after migration are bit-identical to what a run that always owned this
  /// layout would hold.
  void apply_layout(const std::vector<int>& owner);
  /// Run one rebalance epoch now (collective): observe the cost window,
  /// propose a repartition, and apply it if it moves anything. Returns the
  /// number of elements migrated.
  int rebalance_now();

  /// Busy-time accounting since the last reset (grid + particle seconds);
  /// the cost model consumes the per-epoch window internally, this total
  /// is for the benches' imbalance-factor reports.
  const prof::BalanceStats& balance_stats() const { return balance_total_; }
  void reset_balance_stats() { balance_total_.reset(); }
  /// Rebalance epochs applied and total elements migrated so far.
  long long rebalance_epochs() const { return balance_epochs_; }
  long long rebalance_moves() const { return balance_moves_; }
  const balance::CostModel& cost_model() const { return cost_model_; }

  /// Assemble one field into the dense global-by-gid array (collective;
  /// identical on every rank): element gid g occupies [g*n^3, (g+1)*n^3).
  /// The layout-independent view the determinism tests compare.
  std::vector<double> gather_global_field(int f) const;

  /// Payload bytes this rank sends per RHS evaluation (face exchange only).
  long long face_bytes_per_rhs() const {
    return exchange_->send_bytes_per_exchange(nfields());
  }

  /// Analytic flop counts on this rank (documented model: derivative
  /// kernels dominate at 2 N^4 per element per field per direction, plus
  /// pointwise flux/axpy work at O(N^3)).
  long long flops_per_rhs() const;
  long long flops_per_step() const;

  // --- I/O -----------------------------------------------------------------
  /// Write this rank's fields to directory/prefix.rNNNNN.chk; every rank
  /// writes its own file (Nek's one-file-per-processor mode).
  void save_checkpoint(const std::string& directory,
                       const std::string& prefix) const;
  /// Restore fields, time, and step count from a matching checkpoint.
  /// Throws if the checkpoint geometry does not match this config.
  void load_checkpoint(const std::string& directory, const std::string& prefix);
  /// Single-file forms, used by the checkpoint coordinator which names
  /// files by (epoch, rank) and ships the same bytes to a buddy rank.
  void save_checkpoint_file(const std::string& path, long long epoch = -1) const;
  void load_checkpoint_file(const std::string& path);
  /// This rank's checkpoint as the exact bytes save_checkpoint_file would
  /// write (v3 header with CRC32, rank, `epoch`, and the element-ownership
  /// map, so a rebalanced run restores into the layout it saved from).
  std::vector<std::byte> serialize_checkpoint(long long epoch = -1) const;
  /// Adopt a parsed checkpoint (geometry-checked) as the current state.
  /// `owner` is the v3 ownership map (empty for v1/v2 files, which imply
  /// the static block partition). Collective when the stored layout differs
  /// from the current one — every rank restores together anyway.
  void restore_state(const io::CheckpointHeader& header,
                     std::vector<std::vector<double>>&& fields,
                     std::span<const std::int32_t> owner = {});
  /// Export this rank's fields as a legacy-VTK point cloud.
  void export_vtk(const std::string& path) const;

 private:
  void compute_rhs(const std::vector<std::vector<double>>& u,
                   std::vector<std::vector<double>>& rhs);
  void compute_rhs_blocking(const std::vector<std::vector<double>>& u,
                            std::vector<std::vector<double>>& rhs);
  void compute_rhs_overlap(const std::vector<std::vector<double>>& u,
                           std::vector<std::vector<double>>& rhs);
  // RHS building blocks, each over an explicit element list so the overlap
  // path can run them per interior/boundary class. The per-point
  // floating-point operation sequence does not depend on how the element
  // list is split (each point belongs to exactly one element), which is
  // what keeps the overlap path bit-identical.
  // The _range forms process elems[lo, hi) and are what the worker-pool
  // threads execute; splitting a list into ranges changes batching only,
  // never a per-element bit (see src/parallel/parallel.hpp).
  void volume_term(const std::vector<std::vector<double>>& u,
                   std::vector<std::vector<double>>& rhs,
                   std::span<const int> elems);
  void volume_term_range(const std::vector<std::vector<double>>& u,
                         std::vector<std::vector<double>>& rhs,
                         std::span<const int> elems, std::size_t lo,
                         std::size_t hi);
  void surface_term(std::vector<std::vector<double>>& rhs,
                    std::span<const int> elems);
  void surface_term_range(std::vector<std::vector<double>>& rhs,
                          std::span<const int> elems, std::size_t lo,
                          std::size_t hi);
  void dealias_term(const std::vector<std::vector<double>>& u);
  void particle_source(std::vector<std::vector<double>>& rhs);
  void pack_faces(const std::vector<std::vector<double>>& u);
  void exchange_faces();  // myfaces_ -> nbrfaces_ via the selected backend
  void gs_faces_subtract();  // gs backend: mine+neighbor -> neighbor
  void step_rk4(double dt);
  void apply_dssum();
  void step_particles(double dt);
  /// Physical extent of local element `e` along `axis` (the uniform h_ or
  /// the element's slab width under a stretched map).
  double elem_h(int e, int axis) const {
    return elem_h_.empty() ? h_[axis] : elem_h_[std::size_t(e)][axis];
  }

  /// Ordered (key-canonical) gs folds: explicit knob or implied by dynamic
  /// balancing, which needs layout-invariant reduction order.
  bool ordered_gs_enabled() const {
    return config_.ordered_gs || config_.balance_interval > 0;
  }
  /// (Re)build everything derived from layout_: exchange/gs handles,
  /// element classes, buffer sizes, multiplicity. Collective. Called at
  /// construction and after every ownership change.
  void rebuild_topology();
  /// Ship the conserved fields to the owners under `next` (collective;
  /// u_ afterwards holds the new local set in ascending-gid order).
  void migrate_fields(const mesh::ElementLayout& next);
  void maybe_rebalance();

  comm::Comm* comm_;
  Config config_;
  std::unique_ptr<HyperbolicSystem> system_;
  mesh::BoxSpec spec_;
  mesh::Partition part_;
  mesh::ElementLayout layout_;
  sem::Operators ops_;
  int threads_ = 1;  // resolved threads_per_rank (config knob or env)
  mesh::ElementClasses classes_;
  std::vector<int> all_elems_;  // 0..nel-1, the blocking path's element list
  prof::OverlapStats overlap_stats_;
  std::unique_ptr<mesh::FaceExchange> exchange_;
  std::unique_ptr<gs::GatherScatter> gs_;
  std::vector<double> inv_multiplicity_;

  // Gather-scatter face-exchange backend (cfg.face_backend == kGatherScatter):
  // paired face-point ids plus an interior mask (physical-boundary points
  // have one copy and mirror their own value).
  std::unique_ptr<gs::GatherScatter> face_gs_;
  std::vector<unsigned char> face_interior_;

  std::unique_ptr<particles::Tracker> tracker_;

  // Load-balancing state: the cost model's per-epoch measurement window,
  // the run-total busy accounting, and applied-epoch counters.
  balance::CostModel cost_model_;
  prof::BalanceStats balance_window_;
  prof::BalanceStats balance_total_;
  double rhs_particle_seconds_ = 0;  // particle share of the current rhs
  long long balance_epochs_ = 0;
  long long balance_moves_ = 0;

  double time_ = 0.0;
  long steps_ = 0;

  std::size_t pts_ = 0;  // n^3 * nel
  // Fields and scratch, one vector per conserved variable.
  std::vector<std::vector<double>> u_, u1_, u2_, rhs_;
  std::vector<std::vector<double>> flux_;   // pointwise flux, per field
  std::array<std::vector<double>, 3> flux_fused_;  // per-axis flux (fused path)
  std::vector<double> grad_scratch_;
  std::vector<double> div_work_;  // div3_dispatch scratch (fused path only)
  std::vector<double> myfaces_, nbrfaces_;  // nfields stacked face arrays
  std::vector<double> dealias_fine_, dealias_back_, dealias_work_;
  double dealias_checksum_ = 0.0;
  // Particle carrier velocity scratch (allocated only with a tracker); the
  // system fills it pointwise and the tracker interpolates from it.
  std::array<std::vector<double>, 3> carrier_;

  // Geometry. h_ is the uniform per-axis element extent (the historical
  // unit-box fast path, still used verbatim when every axis map is
  // uniform). Under stretched maps, widths_[axis][g] / offsets_[axis][g]
  // hold the physical width and left edge of global slab g along `axis`,
  // and elem_h_ caches the per-local-element extents (rebuilt with the
  // layout; empty on uniform meshes).
  std::array<double, 3> h_;
  bool uniform_mesh_ = true;
  std::array<std::vector<double>, 3> widths_, offsets_;
  std::vector<std::array<double, 3>> elem_h_;
};

}  // namespace cmtbone::core
