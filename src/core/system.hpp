#pragma once
// The hyperbolic-system abstraction: what the driver steps.
//
// The seed hard-coded two flux models into Driver (the 5-field linear proxy
// and Euler) behind `if (physics == ...)` branches. Following the shape of
// MFEM's hypsys miniapp (advection / Burgers / Euler behind one
// HyperbolicSystem class), the pointwise physics now lives behind this
// interface: the conserved-field count, the axis flux (bulk, per-field, and
// single-point flavors matching the volume / fused-divergence / surface
// call sites), the signal speed for the CFL bound and the Rusanov
// dissipation, the particle carrier velocity, admissibility of a state, and
// the analytic initial/exact solutions where the scenario has them.
//
// Contract for implementations: the range methods must perform the same
// per-point floating-point operation sequence regardless of how a caller
// splits [lo, hi) — that batching-invariance is what keeps the overlap and
// worker-pool paths bit-identical to serial, exactly as the hard-coded
// branches were.

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/config.hpp"

namespace cmtbone::core {

/// Initial/exact-solution callback: (x, y, z, field) -> value.
using FieldFunction = std::function<double(double, double, double, int)>;

/// Upper bound on conserved fields across all systems (stack scratch size).
inline constexpr int kMaxFields = 8;

/// A rank produced a non-physical state (negative density/pressure, NaN).
/// Raised collectively — every rank agrees via the dt reduction and throws
/// together — so the recovery supervisor and the service layer attribute it
/// like any other job fault instead of letting NaNs advance
/// bit-deterministically. Deterministic replay would diverge identically,
/// so run_with_recovery treats it as terminal (never retried).
struct SolverDiverged : std::runtime_error {
  long long step;
  int rank;  // the rank that observed the state (or own rank if remote)
  SolverDiverged(long long at_step, int on_rank, const std::string& why)
      : std::runtime_error(
            "solver diverged at step " + std::to_string(at_step) +
            (why.empty() ? std::string(": non-physical state on another rank")
                         : ": " + why)),
        step(at_step),
        rank(on_rank) {}
};

class HyperbolicSystem {
 public:
  explicit HyperbolicSystem(const Config& config) : config_(config) {}
  virtual ~HyperbolicSystem() = default;

  virtual const char* name() const = 0;
  virtual int nfields() const = 0;

  /// Axis flux of every field over points [lo, hi): u[f][p] -> f[f][p].
  virtual void flux_range(const double* const* u, double* const* f,
                          std::size_t lo, std::size_t hi, int axis) const = 0;

  /// Axis flux of a single field over [lo, hi) (the fused-divergence path,
  /// which wants the three axis fluxes of one field at a time).
  virtual void flux_range_field(const double* const* u, double* dst,
                                std::size_t lo, std::size_t hi, int axis,
                                int field) const = 0;

  /// Axis flux at a single point: u[0..nfields) -> f[0..nfields) (the
  /// surface / Rusanov path).
  virtual void flux_point(const double* u, double* f, int axis) const = 0;

  /// Fastest signal speed at a single point along `axis`.
  virtual double wavespeed_point(const double* u, int axis) const = 0;

  /// Max signal speed over [lo, hi) along `axis` (the CFL bound). Linear
  /// systems return the constant without touching memory.
  virtual double max_wavespeed(const double* const* u, std::size_t lo,
                               std::size_t hi, int axis) const = 0;

  /// Per-point carrier velocity for Lagrangian particles, written into
  /// vx/vy/vz over [lo, hi). Linear advection carries Config::velocity;
  /// Euler carries momentum / density; Burgers carries a * u.
  virtual void carrier_velocity(const double* const* u, double* vx,
                                double* vy, double* vz, std::size_t lo,
                                std::size_t hi) const = 0;

  /// Whether states can leave the physical manifold (nonlinear systems).
  /// When true the driver scans admissibility at every step boundary and
  /// raises SolverDiverged on agreement.
  virtual bool needs_admissibility_check() const { return false; }
  /// True when every state in [lo, hi) is physical and finite. On failure
  /// `why` (if non-null) describes the first offending point.
  virtual bool admissible(const double* const* u, std::size_t lo,
                          std::size_t hi, std::string* why) const {
    (void)u;
    (void)lo;
    (void)hi;
    (void)why;
    return true;
  }

  /// The scenario's default initial condition.
  virtual FieldFunction initial_condition() const = 0;

  /// Whether exact_solution() is available (possibly only up to a finite
  /// time — see exact_solution_horizon()).
  virtual bool has_exact_solution() const { return false; }
  /// Analytic solution at time `t`; throws std::logic_error when
  /// has_exact_solution() is false.
  virtual FieldFunction exact_solution(double t) const;
  /// Latest time the exact solution is valid (infinity when unlimited;
  /// Burgers' characteristics cross at the shock-formation time).
  virtual double exact_solution_horizon() const;

  const Config& config() const { return config_; }

 protected:
  Config config_;
};

/// Instantiate the system Config::physics selects.
std::unique_ptr<HyperbolicSystem> make_system(const Config& config);

/// Exact solution of Sod's Riemann problem at similarity coordinate
/// xi = (x - x0) / t: primitive (rho, u, p) for the standard left state
/// (1, 0, 1) and right state (0.125, 0, 0.1). Exposed for the convergence
/// bench and tests.
struct SodSample {
  double rho, u, p;
};
SodSample sod_exact(double xi, double gamma);

}  // namespace cmtbone::core
