#include "core/system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/flux.hpp"

namespace cmtbone::core {

FieldFunction HyperbolicSystem::exact_solution(double) const {
  throw std::logic_error(std::string(name()) +
                         ": no analytic solution for this scenario");
}

double HyperbolicSystem::exact_solution_horizon() const {
  return std::numeric_limits<double>::infinity();
}

namespace {

// Periodic wrap of x into [0, length).
double wrap(double x, double length) {
  x -= length * std::floor(x / length);
  return x >= length ? x - length : x;
}

// The smooth positive bump every linear scenario advects, generalized from
// the seed's unit-box profile to per-axis lengths (x/L == x bit-for-bit
// when L == 1, so the historical initial condition is unchanged).
double bump(double x, double y, double z, const std::array<double, 3>& len) {
  return 2.0 + std::sin(2.0 * M_PI * (x / len[0])) *
                   std::sin(2.0 * M_PI * (y / len[1])) *
                   std::sin(2.0 * M_PI * (z / len[2]));
}

// --- linear advection (proxy: 5 fields; validation: 1 field) --------------

class LinearAdvectionSystem : public HyperbolicSystem {
 public:
  LinearAdvectionSystem(const Config& config, int nf, const char* name)
      : HyperbolicSystem(config), nf_(nf), name_(name) {}

  const char* name() const override { return name_; }
  int nfields() const override { return nf_; }

  void flux_range(const double* const* u, double* const* f, std::size_t lo,
                  std::size_t hi, int axis) const override {
    const double c = config_.velocity[axis];
    for (int field = 0; field < nf_; ++field) {
      for (std::size_t p = lo; p < hi; ++p) {
        f[field][p] = c * u[field][p];
      }
    }
  }

  void flux_range_field(const double* const* u, double* dst, std::size_t lo,
                        std::size_t hi, int axis, int field) const override {
    const double c = config_.velocity[axis];
    for (std::size_t p = lo; p < hi; ++p) {
      dst[p] = c * u[field][p];
    }
  }

  void flux_point(const double* u, double* f, int axis) const override {
    const double c = config_.velocity[axis];
    for (int field = 0; field < nf_; ++field) f[field] = c * u[field];
  }

  double wavespeed_point(const double*, int axis) const override {
    return std::abs(config_.velocity[axis]);
  }

  double max_wavespeed(const double* const*, std::size_t, std::size_t,
                       int axis) const override {
    return std::abs(config_.velocity[axis]);
  }

  void carrier_velocity(const double* const*, double* vx, double* vy,
                        double* vz, std::size_t lo,
                        std::size_t hi) const override {
    const auto v = config_.velocity;
    for (std::size_t p = lo; p < hi; ++p) {
      vx[p] = v[0];
      vy[p] = v[1];
      vz[p] = v[2];
    }
  }

  FieldFunction initial_condition() const override {
    const auto len = config_.domain_length();
    return [len](double x, double y, double z, int f) {
      return (f + 1) * bump(x, y, z, len);
    };
  }

  bool has_exact_solution() const override { return true; }

  FieldFunction exact_solution(double t) const override {
    // Linear advection on the periodic box: a translate of the IC.
    const auto v = config_.velocity;
    const auto len = config_.domain_length();
    const FieldFunction ic = initial_condition();
    return [v, len, ic, t](double x, double y, double z, int f) {
      return ic(wrap(x - v[0] * t, len[0]), wrap(y - v[1] * t, len[1]),
                wrap(z - v[2] * t, len[2]), f);
    };
  }

 private:
  int nf_;
  const char* name_;
};

// --- scalar Burgers --------------------------------------------------------

class BurgersSystem : public HyperbolicSystem {
 public:
  explicit BurgersSystem(const Config& config) : HyperbolicSystem(config) {}

  const char* name() const override { return "burgers"; }
  int nfields() const override { return 1; }

  void flux_range(const double* const* u, double* const* f, std::size_t lo,
                  std::size_t hi, int axis) const override {
    const double ha = 0.5 * config_.velocity[axis];
    for (std::size_t p = lo; p < hi; ++p) {
      f[0][p] = ha * u[0][p] * u[0][p];
    }
  }

  void flux_range_field(const double* const* u, double* dst, std::size_t lo,
                        std::size_t hi, int axis, int) const override {
    const double ha = 0.5 * config_.velocity[axis];
    for (std::size_t p = lo; p < hi; ++p) {
      dst[p] = ha * u[0][p] * u[0][p];
    }
  }

  void flux_point(const double* u, double* f, int axis) const override {
    const double ha = 0.5 * config_.velocity[axis];
    f[0] = ha * u[0] * u[0];
  }

  double wavespeed_point(const double* u, int axis) const override {
    return std::abs(config_.velocity[axis] * u[0]);
  }

  double max_wavespeed(const double* const* u, std::size_t lo, std::size_t hi,
                       int axis) const override {
    const double a = config_.velocity[axis];
    double lambda = 0.0;
    for (std::size_t p = lo; p < hi; ++p) {
      lambda = std::max(lambda, std::abs(a * u[0][p]));
    }
    return lambda;
  }

  void carrier_velocity(const double* const* u, double* vx, double* vy,
                        double* vz, std::size_t lo,
                        std::size_t hi) const override {
    // The local characteristic speed a * u — what a tracer embedded in the
    // Burgers "flow" rides.
    const auto a = config_.velocity;
    for (std::size_t p = lo; p < hi; ++p) {
      vx[p] = a[0] * u[0][p];
      vy[p] = a[1] * u[0][p];
      vz[p] = a[2] * u[0][p];
    }
  }

  bool needs_admissibility_check() const override { return true; }

  bool admissible(const double* const* u, std::size_t lo, std::size_t hi,
                  std::string* why) const override {
    for (std::size_t p = lo; p < hi; ++p) {
      if (!std::isfinite(u[0][p])) {
        if (why) {
          *why = "burgers: non-finite state at local point " +
                 std::to_string(p);
        }
        return false;
      }
    }
    return true;
  }

  // x-profile: g(x) = 0.5 + 0.25 sin(2 pi x / Lx), constant in y and z, so
  // the multi-axis flux collapses to 1-D dynamics along x.
  double profile(double x) const {
    return 0.5 + 0.25 * std::sin(2.0 * M_PI * (x / config_.mesh_map[0].length));
  }
  double profile_deriv(double x) const {
    const double lx = config_.mesh_map[0].length;
    return 0.25 * (2.0 * M_PI / lx) * std::cos(2.0 * M_PI * (x / lx));
  }

  FieldFunction initial_condition() const override {
    return [this](double x, double, double, int) { return profile(x); };
  }

  bool has_exact_solution() const override { return true; }

  double exact_solution_horizon() const override {
    // Characteristics cross when 1 + t * a_x * g'(x0) first hits zero:
    // t* = 1 / (|a_x| * max |g'|) with max |g'| = 0.5 pi / Lx.
    const double ax = std::abs(config_.velocity[0]);
    if (ax == 0.0) return std::numeric_limits<double>::infinity();
    return config_.mesh_map[0].length * 2.0 / (M_PI * ax);
  }

  FieldFunction exact_solution(double t) const override {
    // Method of characteristics: u = g(x - a_x u t), solved per point by
    // Newton (valid pre-shock, t < exact_solution_horizon()).
    const double ax = config_.velocity[0];
    return [this, ax, t](double x, double, double, int) {
      double u = profile(x);
      for (int it = 0; it < 100; ++it) {
        const double xi = x - ax * u * t;
        const double r = u - profile(xi);
        const double dr = 1.0 + ax * t * profile_deriv(xi);
        const double du = r / dr;
        u -= du;
        if (std::abs(du) < 1e-14) break;
      }
      return u;
    };
  }
};

// --- compressible Euler ----------------------------------------------------

class EulerSystem : public HyperbolicSystem {
 public:
  explicit EulerSystem(const Config& config) : HyperbolicSystem(config) {}

  const char* name() const override { return "euler"; }
  int nfields() const override { return 5; }

  void flux_range(const double* const* u, double* const* f, std::size_t lo,
                  std::size_t hi, int axis) const override {
    const double gamma = config_.gamma;
    for (std::size_t p = lo; p < hi; ++p) {
      State5 s{u[0][p], u[1][p], u[2][p], u[3][p], u[4][p]};
      State5 fl = euler_flux(s, axis, gamma);
      f[0][p] = fl.rho;
      f[1][p] = fl.mx;
      f[2][p] = fl.my;
      f[3][p] = fl.mz;
      f[4][p] = fl.e;
    }
  }

  void flux_range_field(const double* const* u, double* dst, std::size_t lo,
                        std::size_t hi, int axis, int field) const override {
    const double gamma = config_.gamma;
    for (std::size_t p = lo; p < hi; ++p) {
      State5 s{u[0][p], u[1][p], u[2][p], u[3][p], u[4][p]};
      State5 fl = euler_flux(s, axis, gamma);
      const double v[5] = {fl.rho, fl.mx, fl.my, fl.mz, fl.e};
      dst[p] = v[field];
    }
  }

  void flux_point(const double* u, double* f, int axis) const override {
    State5 s{u[0], u[1], u[2], u[3], u[4]};
    State5 fl = euler_flux(s, axis, config_.gamma);
    f[0] = fl.rho;
    f[1] = fl.mx;
    f[2] = fl.my;
    f[3] = fl.mz;
    f[4] = fl.e;
  }

  double wavespeed_point(const double* u, int axis) const override {
    State5 s{u[0], u[1], u[2], u[3], u[4]};
    return euler_wavespeed(s, axis, config_.gamma);
  }

  double max_wavespeed(const double* const* u, std::size_t lo, std::size_t hi,
                       int axis) const override {
    const double gamma = config_.gamma;
    double lambda = 0.0;
    for (std::size_t p = lo; p < hi; ++p) {
      State5 s{u[0][p], u[1][p], u[2][p], u[3][p], u[4][p]};
      lambda = std::max(lambda, euler_wavespeed(s, axis, gamma));
    }
    return lambda;
  }

  void carrier_velocity(const double* const* u, double* vx, double* vy,
                        double* vz, std::size_t lo,
                        std::size_t hi) const override {
    for (std::size_t p = lo; p < hi; ++p) {
      vx[p] = u[1][p] / u[0][p];
      vy[p] = u[2][p] / u[0][p];
      vz[p] = u[3][p] / u[0][p];
    }
  }

  bool needs_admissibility_check() const override { return true; }

  bool admissible(const double* const* u, std::size_t lo, std::size_t hi,
                  std::string* why) const override {
    const double gamma = config_.gamma;
    for (std::size_t p = lo; p < hi; ++p) {
      const double rho = u[0][p], mx = u[1][p], my = u[2][p], mz = u[3][p],
                   e = u[4][p];
      if (!std::isfinite(rho) || !std::isfinite(mx) || !std::isfinite(my) ||
          !std::isfinite(mz) || !std::isfinite(e)) {
        if (why) {
          *why = "euler: non-finite state at local point " + std::to_string(p);
        }
        return false;
      }
      if (rho <= 0.0) {
        if (why) {
          *why = "euler: non-positive density " + std::to_string(rho) +
                 " at local point " + std::to_string(p);
        }
        return false;
      }
      const double kinetic = 0.5 * (mx * mx + my * my + mz * mz) / rho;
      const double pressure = (gamma - 1.0) * (e - kinetic);
      if (pressure < 0.0) {
        if (why) {
          *why = "euler: negative pressure " + std::to_string(pressure) +
                 " at local point " + std::to_string(p);
        }
        return false;
      }
    }
    return true;
  }

  FieldFunction initial_condition() const override {
    if (config_.euler_case == EulerCase::kSod) return sod_ic();
    // Smooth density (entropy) wave on a uniform (velocity, pressure)
    // background — the seed's default Euler IC.
    const auto vel = config_.velocity;
    const double gamma = config_.gamma;
    const auto len = config_.domain_length();
    return [vel, gamma, len](double x, double y, double z, int f) {
      double rho = 1.0 + 0.2 * (bump(x, y, z, len) - 2.0);
      double p = 1.0;
      double kinetic =
          0.5 * rho * (vel[0] * vel[0] + vel[1] * vel[1] + vel[2] * vel[2]);
      switch (f) {
        case 0: return rho;
        case 1: return rho * vel[0];
        case 2: return rho * vel[1];
        case 3: return rho * vel[2];
        default: return p / (gamma - 1.0) + kinetic;
      }
    };
  }

  bool has_exact_solution() const override { return true; }

  FieldFunction exact_solution(double t) const override {
    if (config_.euler_case == EulerCase::kSod) {
      if (t == 0.0) return sod_ic();
      const double gamma = config_.gamma;
      const double x0 = 0.5 * config_.mesh_map[0].length;
      return [gamma, x0, t](double x, double, double, int f) {
        const SodSample s = sod_exact((x - x0) / t, gamma);
        switch (f) {
          case 0: return s.rho;
          case 1: return s.rho * s.u;
          case 2: return 0.0;
          case 3: return 0.0;
          default: return s.p / (gamma - 1.0) + 0.5 * s.rho * s.u * s.u;
        }
      };
    }
    // Entropy wave: the density profile translates at the uniform carrier
    // velocity; velocity and pressure stay constant, so every conserved
    // field is the translated IC.
    const auto v = config_.velocity;
    const auto len = config_.domain_length();
    const FieldFunction ic = initial_condition();
    return [v, len, ic, t](double x, double y, double z, int f) {
      return ic(wrap(x - v[0] * t, len[0]), wrap(y - v[1] * t, len[1]),
                wrap(z - v[2] * t, len[2]), f);
    };
  }

 private:
  FieldFunction sod_ic() const {
    const double gamma = config_.gamma;
    const double x0 = 0.5 * config_.mesh_map[0].length;
    // Smooth the initial jump over ~2 element widths with a tanh profile.
    // A nodal spectral scheme cannot represent a discontinuity that lands
    // inside an element: the unsmoothed step drives the pressure negative
    // within a few RK stages. The smoothing width vanishes under mesh
    // refinement, so the exact-Riemann comparison stays consistent.
    const double delta =
        2.0 * config_.mesh_map[0].length / std::max(1, config_.ex);
    return [gamma, x0, delta](double x, double, double, int f) {
      const double s = 0.5 * (1.0 - std::tanh((x - x0) / delta));  // 1 -> 0
      const double rho = 0.125 + s * (1.0 - 0.125);
      const double p = 0.1 + s * (1.0 - 0.1);
      switch (f) {
        case 0: return rho;
        case 1:
        case 2:
        case 3: return 0.0;
        default: return p / (gamma - 1.0);
      }
    };
  }
};

}  // namespace

SodSample sod_exact(double xi, double gamma) {
  // Exact Riemann solution (Toro ch. 4) for the Sod states: left
  // (rho, u, p) = (1, 0, 1), right (0.125, 0, 0.1). For gamma-law gases the
  // structure is a left rarefaction, contact, right shock; the sampler
  // below handles the general wave pattern anyway so perturbed gammas stay
  // correct.
  const double rl = 1.0, ul = 0.0, pl = 1.0;
  const double rr = 0.125, ur = 0.0, pr = 0.1;
  const double cl = std::sqrt(gamma * pl / rl);
  const double cr = std::sqrt(gamma * pr / rr);
  const double g1 = (gamma - 1.0) / (2.0 * gamma);
  const double g2 = (gamma + 1.0) / (2.0 * gamma);
  const double g3 = (gamma - 1.0) / (gamma + 1.0);

  // Pressure function f_K(p) and derivative for the star-region Newton.
  auto fk = [&](double p, double rk, double pk, double ck, double* dfdp) {
    if (p > pk) {  // shock
      const double a = 2.0 / ((gamma + 1.0) * rk);
      const double b = g3 * pk;
      const double sq = std::sqrt(a / (p + b));
      *dfdp = sq * (1.0 - 0.5 * (p - pk) / (p + b));
      return (p - pk) * sq;
    }
    // rarefaction
    const double pr_ratio = p / pk;
    *dfdp = std::pow(pr_ratio, -g2) / (rk * ck);
    return (2.0 * ck / (gamma - 1.0)) * (std::pow(pr_ratio, g1) - 1.0);
  };

  // Two-rarefaction initial guess, then Newton to machine precision.
  double ps = std::pow(
      (cl + cr - 0.5 * (gamma - 1.0) * (ur - ul)) /
          (cl / std::pow(pl, g1) + cr / std::pow(pr, g1)),
      1.0 / g1);
  ps = std::max(ps, 1e-12);
  for (int it = 0; it < 60; ++it) {
    double dfl, dfr;
    const double f =
        fk(ps, rl, pl, cl, &dfl) + fk(ps, rr, pr, cr, &dfr) + (ur - ul);
    const double dp = f / (dfl + dfr);
    ps -= dp;
    if (ps < 1e-12) ps = 1e-12;
    if (std::abs(dp) < 1e-14 * ps) break;
  }
  double dfl, dfr;
  const double us = 0.5 * (ul + ur) +
                    0.5 * (fk(ps, rr, pr, cr, &dfr) - fk(ps, rl, pl, cl, &dfl));

  SodSample out{};
  if (xi < us) {
    // Left of the contact.
    if (ps > pl) {  // left shock
      const double sl =
          ul - cl * std::sqrt(g2 * ps / pl + g1);
      if (xi < sl) {
        out = {rl, ul, pl};
      } else {
        const double r = rl * ((ps / pl + g3) / (g3 * ps / pl + 1.0));
        out = {r, us, ps};
      }
    } else {  // left rarefaction
      const double shl = ul - cl;
      const double csl = cl * std::pow(ps / pl, g1);
      const double stl = us - csl;
      if (xi < shl) {
        out = {rl, ul, pl};
      } else if (xi > stl) {
        out = {rl * std::pow(ps / pl, 1.0 / gamma), us, ps};
      } else {  // inside the fan
        const double u = (2.0 / (gamma + 1.0)) *
                         (cl + 0.5 * (gamma - 1.0) * ul + xi);
        const double c = (2.0 / (gamma + 1.0)) *
                         (cl + 0.5 * (gamma - 1.0) * (ul - xi));
        out = {rl * std::pow(c / cl, 2.0 / (gamma - 1.0)), u,
               pl * std::pow(c / cl, 2.0 * gamma / (gamma - 1.0))};
      }
    }
  } else {
    // Right of the contact.
    if (ps > pr) {  // right shock (the Sod case)
      const double sr = ur + cr * std::sqrt(g2 * ps / pr + g1);
      if (xi > sr) {
        out = {rr, ur, pr};
      } else {
        const double r = rr * ((ps / pr + g3) / (g3 * ps / pr + 1.0));
        out = {r, us, ps};
      }
    } else {  // right rarefaction
      const double shr = ur + cr;
      const double csr = cr * std::pow(ps / pr, g1);
      const double str = us + csr;
      if (xi > shr) {
        out = {rr, ur, pr};
      } else if (xi < str) {
        out = {rr * std::pow(ps / pr, 1.0 / gamma), us, ps};
      } else {
        const double u = (2.0 / (gamma + 1.0)) *
                         (-cr + 0.5 * (gamma - 1.0) * ur + xi);
        const double c = (2.0 / (gamma + 1.0)) *
                         (cr - 0.5 * (gamma - 1.0) * (ur - xi));
        out = {rr * std::pow(c / cr, 2.0 / (gamma - 1.0)), u,
               pr * std::pow(c / cr, 2.0 * gamma / (gamma - 1.0))};
      }
    }
  }
  return out;
}

std::unique_ptr<HyperbolicSystem> make_system(const Config& config) {
  switch (config.physics) {
    case Physics::kProxyAdvection:
      return std::make_unique<LinearAdvectionSystem>(config, 5,
                                                     "proxy-advection");
    case Physics::kAdvection:
      return std::make_unique<LinearAdvectionSystem>(config, 1, "advection");
    case Physics::kBurgers:
      return std::make_unique<BurgersSystem>(config);
    case Physics::kEuler:
      return std::make_unique<EulerSystem>(config);
  }
  throw std::invalid_argument("make_system: unknown physics");
}

}  // namespace cmtbone::core
