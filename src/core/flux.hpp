#pragma once
// Pointwise flux models for the conservation law dU/dt + div f(U) = R
// (paper Eq. 1), with R = 0 ("the latest version of CMT-nek has limited
// multiphase coupling, the source terms ... are set to zero").

#include <algorithm>
#include <array>
#include <cmath>

namespace cmtbone::core {

/// Conserved state (mass, momentum, total energy).
struct State5 {
  double rho, mx, my, mz, e;
};

inline double& momentum(State5& s, int axis) {
  switch (axis) {
    case 0: return s.mx;
    case 1: return s.my;
    default: return s.mz;
  }
}

/// Euler flux vector along `axis` for conserved state u.
inline State5 euler_flux(const State5& u, int axis, double gamma) {
  const double inv_rho = 1.0 / u.rho;
  const std::array<double, 3> vel = {u.mx * inv_rho, u.my * inv_rho,
                                     u.mz * inv_rho};
  const double kinetic = 0.5 * u.rho * (vel[0] * vel[0] + vel[1] * vel[1] +
                                        vel[2] * vel[2]);
  const double pressure = (gamma - 1.0) * (u.e - kinetic);
  const double vn = vel[axis];
  State5 f{u.rho * vn, u.mx * vn, u.my * vn, u.mz * vn, (u.e + pressure) * vn};
  // Pressure contributes to the normal momentum flux.
  momentum(f, axis) += pressure;
  return f;
}

/// Fastest signal speed |v_n| + c along `axis`.
inline double euler_wavespeed(const State5& u, int axis, double gamma) {
  const double inv_rho = 1.0 / u.rho;
  const std::array<double, 3> vel = {u.mx * inv_rho, u.my * inv_rho,
                                     u.mz * inv_rho};
  const double kinetic = 0.5 * u.rho * (vel[0] * vel[0] + vel[1] * vel[1] +
                                        vel[2] * vel[2]);
  const double pressure = (gamma - 1.0) * (u.e - kinetic);
  const double c = std::sqrt(std::max(gamma * pressure * inv_rho, 0.0));
  return std::abs(vel[axis]) + c;
}

/// Rusanov (local Lax-Friedrichs) scalar numerical flux along an axis.
/// `sign` is the outward normal component of the face (+1 high, -1 low);
/// `f_in`/`f_out` are the axis fluxes of the interior/exterior states and
/// `lambda` the max wavespeed of the pair.
inline double rusanov(double f_in, double f_out, double u_in, double u_out,
                      double lambda, double sign) {
  return 0.5 * (f_in + f_out) - 0.5 * lambda * sign * (u_out - u_in);
}

}  // namespace cmtbone::core
