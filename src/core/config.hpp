#pragma once
// CMT-bone run configuration.
//
// The paper's key application parameters (§IV): "degree of the polynomial
// N-1, number of elements per processor Nel, and the number of MPI
// processes P". The config mirrors the Fig. 7 setup block: a global element
// grid, a processor grid, and N gridpoints per element per direction.

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "balance/cost_model.hpp"
#include "gs/gather_scatter.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/gradient.hpp"
#include "mesh/geometry.hpp"

namespace cmtbone::core {

/// What the conserved fields mean physically.
enum class Physics {
  /// The mini-app proxy: five conserved fields (mass, three momentum
  /// components, energy) all advected linearly — the source terms are zero
  /// and the flux is linear, exactly the abstraction the paper describes
  /// ("the current version of CMT-bone abstracts CMT-nek behavior as
  /// matrix-multiplication and nearest neighbor surface data exchanges").
  kProxyAdvection,
  /// One scalar field, genuine DG-SEM linear advection. Has an analytic
  /// solution (a translate of the initial condition) — the validation path.
  kAdvection,
  /// Scalar Burgers: flux 0.5 * a_axis * u^2 with a = Config::velocity, the
  /// simplest genuinely nonlinear hyperbolic system (wavespeed follows the
  /// solution). Smooth pre-shock solutions are analytic via characteristics.
  kBurgers,
  /// Compressible Euler with Rusanov numerical flux (the physics CMT-nek's
  /// explicit compressible solver steps, minus multiphase coupling).
  kEuler,
};

const char* physics_name(Physics p);
/// Parse a physics_name() string; returns false on an unknown name.
bool physics_from_name(const std::string& name, Physics* out);

/// Which Euler scenario the system's initial condition / exact solution
/// describe (the flux model is the same either way).
enum class EulerCase {
  /// Smooth density wave riding a uniform (velocity, pressure) background —
  /// an entropy wave, whose exact solution is the translated initial
  /// density. The historical default_ic.
  kSmoothWave,
  /// Sod's shock tube along x: (rho, p) = (1, 1) left of mid-domain,
  /// (0.125, 0.1) right, fluid at rest. Exact solution from the 1-D Riemann
  /// problem (rarefaction / contact / shock). Use with periodic = false.
  kSod,
};

const char* euler_case_name(EulerCase c);

/// Explicit time integrators. CMT-nek's explicit compressible solver uses a
/// three-stage SSP Runge-Kutta; the others support temporal-order studies
/// and the cheap-stepping ablation.
enum class TimeIntegrator {
  kForwardEuler,  // 1 stage, order 1
  kRk2Ssp,        // Heun / SSP(2,2), order 2
  kRk3Ssp,        // Shu-Osher SSP(3,3), order 3 (the CMT-nek default)
  kRk4,           // classic RK4, order 4
};

const char* integrator_name(TimeIntegrator t);
int integrator_stages(TimeIntegrator t);
int integrator_order(TimeIntegrator t);

/// How the nearest-neighbor surface exchange moves data. The paper (§IV):
/// nearest-neighbor exchanges "take place using a specialized gather-scatter
/// library" — that is kGatherScatter, where face points carry paired global
/// ids and one gs_op(add) per exchange yields mine+neighbor. kDirect is the
/// hand-built plan of mesh::FaceExchange (fewer, larger messages).
enum class FaceBackend { kDirect, kGatherScatter };

const char* face_backend_name(FaceBackend b);

struct Config {
  int n = 10;                  // GLL points per direction (Fig. 7 uses 10)
  int ex = 8, ey = 8, ez = 8;  // global element grid
  int px = 0, py = 0, pz = 0;  // processor grid; 0 = derive from comm size
  bool periodic = true;

  /// Physical geometry: one coordinate map per axis (mesh/geometry.hpp).
  /// The default is the historical unit box split uniformly; non-uniform
  /// maps (geometric / tanh stretching) and per-axis lengths (high-aspect
  /// boxes) feed per-element extents into the SEM geometric factors and the
  /// CFL dt. Topology (adjacency, partition, exchange plans) is unchanged.
  std::array<mesh::AxisMap, 3> mesh_map = {};

  bool uniform_mesh() const {
    return mesh_map[0].uniform() && mesh_map[1].uniform() &&
           mesh_map[2].uniform();
  }
  std::array<double, 3> domain_length() const {
    return {mesh_map[0].length, mesh_map[1].length, mesh_map[2].length};
  }

  Physics physics = Physics::kProxyAdvection;
  FaceBackend face_backend = FaceBackend::kDirect;
  TimeIntegrator integrator = TimeIntegrator::kRk3Ssp;
  kernels::GradVariant variant = kernels::GradVariant::kDispatch;
  gs::Method gs_method = gs::Method::kPairwise;

  /// Concrete value: force that kernel backend (scalar / fixed-N / SIMD /
  /// batched, see kernels/dispatch.hpp) process-wide at Driver
  /// construction. Kernel selection is process-global shared state — the
  /// kernels are stateless and every in-process rank uses the same ones —
  /// so the last Driver constructed wins. nullopt (default) leaves the
  /// process selection alone: CMTBONE_KERNEL_BACKEND, an applied tuning
  /// table, or the built-in default.
  std::optional<kernels::Backend> kernel_backend;

  /// Compute the volume term with the single-sweep fused divergence kernel
  /// (kernels::div3) instead of three separate derivative passes — the
  /// next optimization step beyond §V's per-derivative transformations.
  /// When set, `variant` is ignored for the volume term.
  bool fused_divergence = false;

  /// Overlap the nearest-neighbor surface exchange with element compute:
  /// the exchange is split into begin/finish halves and the rank's interior
  /// elements (no face paired with a remote rank) are advanced while the
  /// halo messages fly; boundary elements finish after the wait. The
  /// floating-point operation order per point is unchanged, so results are
  /// bit-identical to the blocking path.
  bool overlap = false;

  /// Intra-rank element parallelism: how many threads (including the rank
  /// thread itself) advance this rank's element loops — the volume flux
  /// divergence, the surface numerical flux, and face pack/unpack — through
  /// the shared parallel::Pool. Elements are independent, so results are
  /// bit-identical for every value. 0 resolves from the
  /// CMTBONE_THREADS_PER_RANK environment variable (default 1 = serial,
  /// exactly the pre-pool code path).
  int threads_per_rank = 0;

  /// Apply direct-stiffness averaging (gs_op over shared GLL points, then
  /// divide by multiplicity) after each step — the gs_op_ kernel of Fig. 4.
  bool use_dssum = true;
  /// Run the dealias round-trip on the energy field each RHS evaluation
  /// (the "mapped to a finer mesh and later mapped back" path of §V).
  bool dealias = false;

  /// Lagrangian tracer particles per rank (0 = off). Particles advect with
  /// the carrier velocity (proxy/advection) or the interpolated flow field
  /// (Euler) and migrate between ranks through the crystal router — the
  /// point-particle capability the paper schedules for CMT-nek (§III-A).
  int particles_per_rank = 0;
  std::uint64_t particle_seed = 2015;
  /// Two-way coupling strength: when nonzero, every particle deposits this
  /// much momentum-source per RHS evaluation onto its owning element (the
  /// conservation-law source term R of paper Eq. 1, which current CMT-bone
  /// sets to zero; "complete multiphase coupling" is the §III-A roadmap).
  double particle_coupling = 0.0;

  /// Dynamic load balancing (balance/): every `balance_interval` steps the
  /// driver assembles measured per-element costs, runs the replicated
  /// greedy repartitioner, and migrates elements (fields + resident
  /// particles) to the proposed owners. 0 = static partition. A nonzero
  /// interval implies `ordered_gs` — the layout-invariant reduction order
  /// is what makes balanced runs bit-identical to static ordered runs.
  int balance_interval = 0;
  /// Elements migrated per rebalance epoch, at most (bounded diffusion).
  int balance_max_moves = 8;
  /// Rebalance only when max/mean cost load exceeds this factor.
  double balance_threshold = 1.05;
  /// Cost attribution: measured EWMA rates, or the deterministic
  /// particle-count surrogate (see balance/cost_model.hpp).
  balance::CostMode balance_cost_mode = balance::CostMode::kMeasured;
  /// EWMA weight of the newest measurement window (measured mode).
  double balance_ewma = 0.5;
  /// Cost units per resident particle (particle-count mode).
  double balance_particle_weight = 4.0;

  /// Use ordered (key-canonical) gather-scatter folds even without dynamic
  /// balancing — the static reference configuration the balanced-vs-static
  /// bit-identity tests compare against. Changes dssum/face-gs reduction
  /// order (still deterministic, different bits from the default methods).
  bool ordered_gs = false;

  double cfl = 0.3;
  double fixed_dt = 0.0;  // > 0 overrides the CFL computation
  std::array<double, 3> velocity = {1.0, 0.5, 0.25};  // advection speed
  double gamma = 1.4;                                  // Euler only
  EulerCase euler_case = EulerCase::kSmoothWave;       // Euler scenario

  int nfields() const {
    return physics == Physics::kAdvection || physics == Physics::kBurgers
               ? 1
               : 5;
  }
};

}  // namespace cmtbone::core
