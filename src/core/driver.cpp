#include "core/driver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "balance/rebalancer.hpp"
#include "core/flux.hpp"
#include "io/checkpoint.hpp"
#include "io/vtk.hpp"
#include "kernels/div.hpp"
#include "kernels/gradient.hpp"
#include "kernels/tensor.hpp"
#include "kernels/vecops.hpp"
#include "mesh/face_numbering.hpp"
#include "mesh/numbering.hpp"
#include "parallel/parallel.hpp"
#include "prof/callprof.hpp"
#include "prof/timer.hpp"

namespace cmtbone::core {

const char* physics_name(Physics p) {
  switch (p) {
    case Physics::kProxyAdvection: return "proxy-advection";
    case Physics::kAdvection: return "advection";
    case Physics::kBurgers: return "burgers";
    case Physics::kEuler: return "euler";
  }
  return "?";
}

bool physics_from_name(const std::string& name, Physics* out) {
  if (name == "proxy") {  // CLI shorthand for the mini-app default
    *out = Physics::kProxyAdvection;
    return true;
  }
  for (Physics p : {Physics::kProxyAdvection, Physics::kAdvection,
                    Physics::kBurgers, Physics::kEuler}) {
    if (name == physics_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

const char* euler_case_name(EulerCase c) {
  switch (c) {
    case EulerCase::kSmoothWave: return "smooth-wave";
    case EulerCase::kSod: return "sod";
  }
  return "?";
}

const char* integrator_name(TimeIntegrator t) {
  switch (t) {
    case TimeIntegrator::kForwardEuler: return "forward-euler";
    case TimeIntegrator::kRk2Ssp: return "ssp-rk2";
    case TimeIntegrator::kRk3Ssp: return "ssp-rk3";
    case TimeIntegrator::kRk4: return "rk4";
  }
  return "?";
}

int integrator_stages(TimeIntegrator t) {
  switch (t) {
    case TimeIntegrator::kForwardEuler: return 1;
    case TimeIntegrator::kRk2Ssp: return 2;
    case TimeIntegrator::kRk3Ssp: return 3;
    case TimeIntegrator::kRk4: return 4;
  }
  return 0;
}

const char* face_backend_name(FaceBackend b) {
  switch (b) {
    case FaceBackend::kDirect: return "direct";
    case FaceBackend::kGatherScatter: return "gather-scatter";
  }
  return "?";
}

int integrator_order(TimeIntegrator t) {
  switch (t) {
    case TimeIntegrator::kForwardEuler: return 1;
    case TimeIntegrator::kRk2Ssp: return 2;
    case TimeIntegrator::kRk3Ssp: return 3;
    case TimeIntegrator::kRk4: return 4;
  }
  return 0;
}

namespace {
mesh::BoxSpec make_spec(const Config& cfg, int nranks) {
  mesh::BoxSpec spec;
  spec.n = cfg.n;
  spec.ex = cfg.ex;
  spec.ey = cfg.ey;
  spec.ez = cfg.ez;
  spec.periodic = cfg.periodic;
  if (cfg.px > 0) {
    spec.px = cfg.px;
    spec.py = cfg.py;
    spec.pz = cfg.pz;
  } else {
    auto grid = mesh::BoxSpec::default_proc_grid(nranks);
    spec.px = grid[0];
    spec.py = grid[1];
    spec.pz = grid[2];
  }
  if (spec.nranks() != nranks) {
    throw std::invalid_argument(
        "Driver: processor grid does not match communicator size");
  }
  spec.validate();
  return spec;
}
}  // namespace

Driver::Driver(comm::Comm& comm, const Config& config)
    : comm_(&comm),
      config_(config),
      system_(make_system(config)),
      spec_(make_spec(config, comm.size())),
      part_(spec_, comm.rank()),
      layout_(mesh::ElementLayout::block(spec_, comm.rank())),
      ops_(sem::Operators::build(config.n)),
      threads_(parallel::resolve_threads(config.threads_per_rank)) {
  if (config_.kernel_backend) {
    kernels::set_forced_backend(*config_.kernel_backend);
  }

  balance::CostModelConfig cm;
  cm.mode = config_.balance_cost_mode;
  cm.ewma = config_.balance_ewma;
  cm.particle_weight = config_.balance_particle_weight;
  cost_model_ = balance::CostModel(cm);

  // Per-axis geometry. Uniform maps keep the historical constant-extent
  // fast path (h_ only); stretched maps additionally tabulate per-slab
  // widths and left edges.
  uniform_mesh_ = config_.uniform_mesh();
  h_ = {config_.mesh_map[0].length / spec_.ex,
        config_.mesh_map[1].length / spec_.ey,
        config_.mesh_map[2].length / spec_.ez};
  if (!uniform_mesh_) {
    const int counts[3] = {spec_.ex, spec_.ey, spec_.ez};
    for (int axis = 0; axis < 3; ++axis) {
      widths_[axis] = mesh::axis_widths(config_.mesh_map[axis], counts[axis]);
      std::vector<double> bp =
          mesh::axis_breakpoints(config_.mesh_map[axis], counts[axis]);
      bp.pop_back();
      offsets_[axis] = std::move(bp);
    }
  }

  rebuild_topology();

  if (config_.particles_per_rank > 0) {
    // The tracker's locate/interpolate machinery assumes the historical
    // uniform unit box; stretched or scaled scenarios run grid-only.
    if (!uniform_mesh_ || config_.mesh_map[0].length != 1.0 ||
        config_.mesh_map[1].length != 1.0 ||
        config_.mesh_map[2].length != 1.0) {
      throw std::invalid_argument(
          "Driver: particles require the uniform unit-box mesh");
    }
    tracker_ = std::make_unique<particles::Tracker>(comm, part_, ops_);
    tracker_->seed_random(config_.particles_per_rank, config_.particle_seed);
  }
}

void Driver::rebuild_topology() {
  const bool ordered = ordered_gs_enabled();

  // For the block layout the generalized plans coincide exactly with the
  // static Partition plans, so this path is bit-identical to the historical
  // Partition-based construction.
  exchange_ = std::make_unique<mesh::FaceExchange>(*comm_, layout_);
  exchange_->set_threads(threads_);

  {
    prof::ScopedRegion region("gs_setup");
    std::vector<long long> ids = mesh::global_gll_ids(layout_);
    if (ordered) {
      std::vector<long long> keys = mesh::global_gll_keys(layout_);
      gs_ = std::make_unique<gs::GatherScatter>(
          *comm_, std::span<const long long>(ids), config_.gs_method,
          std::span<const long long>(keys));
    } else {
      gs_ = std::make_unique<gs::GatherScatter>(
          *comm_, std::span<const long long>(ids), config_.gs_method);
    }
  }

  const int n = config_.n;
  const int nel = layout_.nel();
  pts_ = std::size_t(n) * n * n * nel;
  const int nf = nfields();

  classes_ = mesh::classify_interior_boundary(layout_);
  all_elems_.resize(nel);
  std::iota(all_elems_.begin(), all_elems_.end(), 0);

  // Per-local-element extents under a stretched map (layout-dependent, so
  // rebuilt here). Uniform meshes keep elem_h_ empty and read h_.
  elem_h_.clear();
  if (!uniform_mesh_) {
    elem_h_.resize(std::size_t(nel));
    for (int e = 0; e < nel; ++e) {
      const auto g = layout_.global_coords(e);
      elem_h_[std::size_t(e)] = {widths_[0][std::size_t(g[0])],
                                 widths_[1][std::size_t(g[1])],
                                 widths_[2][std::size_t(g[2])]};
    }
  }

  // u_ carries state across a rebalance: migrate_fields() resized it to the
  // new layout before this runs. Everything else is per-step scratch.
  auto alloc_fields = [&](std::vector<std::vector<double>>& v) {
    v.assign(nf, std::vector<double>(pts_, 0.0));
  };
  if (u_.empty()) alloc_fields(u_);
  alloc_fields(u1_);
  alloc_fields(u2_);
  alloc_fields(rhs_);
  alloc_fields(flux_);
  grad_scratch_.assign(pts_, 0.0);
  if (config_.particles_per_rank > 0) {
    for (auto& buf : carrier_) buf.assign(pts_, 0.0);
  }
  if (config_.fused_divergence) {
    for (auto& buf : flux_fused_) buf.assign(pts_, 0.0);
    // div3_dispatch scratch: two gradient blocks per element, indexed by
    // 2*base so parallel element ranges stay disjoint.
    div_work_.assign(2 * pts_, 0.0);
  }
  myfaces_.assign(mesh::face_array_size(n, nel) * nf, 0.0);
  nbrfaces_.assign(mesh::face_array_size(n, nel) * nf, 0.0);

  if (config_.dealias) {
    const int m = ops_.m;
    dealias_fine_.assign(std::size_t(m) * m * m, 0.0);
    dealias_back_.assign(std::size_t(n) * n * n, 0.0);
    dealias_work_.assign(kernels::tensor_work_size(std::max(m, n), std::max(m, n)),
                         0.0);
  }

  // Direct-stiffness multiplicity: gs_op(add) over a field of ones counts
  // the copies of each global point.
  inv_multiplicity_.assign(pts_, 1.0);
  gs_->exec(std::span<double>(inv_multiplicity_), gs::ReduceOp::kSum);
  for (double& v : inv_multiplicity_) v = 1.0 / v;

  if (config_.face_backend == FaceBackend::kGatherScatter) {
    prof::ScopedRegion region("gs_setup (faces)");
    std::vector<long long> fids = mesh::face_point_gids(layout_);
    if (ordered) {
      std::vector<long long> fkeys = mesh::face_point_keys(layout_);
      face_gs_ = std::make_unique<gs::GatherScatter>(
          *comm_, std::span<const long long>(fids), config_.gs_method,
          std::span<const long long>(fkeys));
    } else {
      face_gs_ = std::make_unique<gs::GatherScatter>(
          *comm_, std::span<const long long>(fids), config_.gs_method);
    }
    // Interior mask from the multiplicity trick: interior face points have
    // exactly two copies, physical-boundary points one.
    std::vector<double> ones(fids.size(), 1.0);
    face_gs_->exec(std::span<double>(ones), gs::ReduceOp::kSum);
    face_interior_.resize(ones.size());
    for (std::size_t s = 0; s < ones.size(); ++s) {
      face_interior_[s] = ones[s] > 1.5 ? 1 : 0;
    }
  }
}

std::array<double, 3> Driver::node_coords(int e, int i, int j, int k) const {
  auto g = layout_.global_coords(e);
  const std::vector<double>& r = ops_.rule.nodes;
  if (uniform_mesh_) {
    return {(g[0] + 0.5 * (r[i] + 1.0)) * h_[0],
            (g[1] + 0.5 * (r[j] + 1.0)) * h_[1],
            (g[2] + 0.5 * (r[k] + 1.0)) * h_[2]};
  }
  const std::array<double, 3>& eh = elem_h_[std::size_t(e)];
  return {offsets_[0][std::size_t(g[0])] + 0.5 * (r[i] + 1.0) * eh[0],
          offsets_[1][std::size_t(g[1])] + 0.5 * (r[j] + 1.0) * eh[1],
          offsets_[2][std::size_t(g[2])] + 0.5 * (r[k] + 1.0) * eh[2]};
}

FieldFunction Driver::default_ic() const {
  return system_->initial_condition();
}

void Driver::initialize(const FieldFunction& ic) {
  const int n = config_.n;
  for (int f = 0; f < nfields(); ++f) {
    std::size_t idx = 0;
    for (int e = 0; e < layout_.nel(); ++e) {
      for (int k = 0; k < n; ++k) {
        for (int j = 0; j < n; ++j) {
          for (int i = 0; i < n; ++i) {
            auto c = node_coords(e, i, j, k);
            u_[f][idx++] = ic(c[0], c[1], c[2], f);
          }
        }
      }
    }
  }
  time_ = 0.0;
  steps_ = 0;
}

double Driver::compute_dt() {
  prof::ScopedRegion region("compute_dt");
  // Nonlinear systems validate the state at every step boundary; a bad rank
  // reports through the dt reduction (below) or, on the fixed-dt path, a
  // dedicated flag reduction, so the throw is collective either way.
  std::string why;
  bool ok = true;
  const double* uptr[kMaxFields];
  const int nf = nfields();
  for (int f = 0; f < nf; ++f) uptr[f] = u_[f].data();
  if (system_->needs_admissibility_check()) {
    ok = system_->admissible(uptr, 0, pts_, &why);
  }
  if (config_.fixed_dt > 0.0) {
    if (system_->needs_admissibility_check()) {
      const double bad =
          comm_->allreduce_one(ok ? 0.0 : 1.0, comm::ReduceOp::kMax);
      if (bad > 0.0) throw SolverDiverged(steps_, comm_->rank(), why);
    }
    return config_.fixed_dt;
  }
  // Smallest GLL node spacing per direction, scaled to each element's
  // physical extent. (For uniform meshes min_e dx/lambda_e equals the
  // historical dx / max_e lambda_e bit for bit — division by the larger
  // wavespeed is the minimum — so this per-element form is not a behavior
  // change there; it exists for stretched meshes, where a single per-axis
  // h would let the thinnest layer violate the CFL bound.)
  const std::vector<double>& r = ops_.rule.nodes;
  const double dr_min = r[1] - r[0];
  const std::size_t epts =
      std::size_t(config_.n) * config_.n * config_.n;
  double dt = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < 3; ++axis) {
    for (int e = 0; e < layout_.nel(); ++e) {
      const std::size_t base = std::size_t(e) * epts;
      const double lambda =
          system_->max_wavespeed(uptr, base, base + epts, axis);
      const double dx = 0.5 * dr_min * elem_h(e, axis);
      if (lambda > 0.0) dt = std::min(dt, dx / lambda);
    }
  }
  if (!ok) dt = -1.0;  // sentinel: wins the min, every rank sees it
  // The per-step vector reduction of §VI.
  dt = comm_->allreduce_one(dt, comm::ReduceOp::kMin);
  if (dt < 0.0) throw SolverDiverged(steps_, comm_->rank(), why);
  return config_.cfl * dt;
}

void Driver::compute_rhs(const std::vector<std::vector<double>>& u,
                         std::vector<std::vector<double>>& rhs) {
  prof::ScopedRegion region("compute_rhs");
  // Cost-model attribution: thread-CPU time of the whole evaluation minus
  // the particle share (deposit), accumulated per measurement window. The
  // CPU clock charges a rank only for work it executed itself — comm waits
  // (condvar sleeps) and time descheduled in favor of other rank-threads on
  // an oversubscribed host accrue nothing — so per-element unit rates stay
  // meaningful whether ranks are processes on dedicated nodes or threads
  // sharing one test core. (With threads_per_rank > 1 the pool workers'
  // share of grid time is not charged to this thread; that scales the grid
  // unit rate down uniformly and cancels out of the relative comparison the
  // repartitioner makes.)
  prof::CpuTimer cost_timer;
  rhs_particle_seconds_ = 0.0;
  for (int f = 0; f < nfields(); ++f) {
    std::fill(rhs[f].begin(), rhs[f].end(), 0.0);
  }
  if (config_.overlap) {
    compute_rhs_overlap(u, rhs);
  } else {
    compute_rhs_blocking(u, rhs);
  }
  const double grid = cost_timer.seconds() - rhs_particle_seconds_;
  balance_window_.grid_seconds += grid;
  balance_total_.grid_seconds += grid;
}

void Driver::compute_rhs_blocking(const std::vector<std::vector<double>>& u,
                                  std::vector<std::vector<double>>& rhs) {
  volume_term(u, rhs, all_elems_);
  dealias_term(u);
  particle_source(rhs);
  pack_faces(u);
  exchange_faces();
  surface_term(rhs, all_elems_);
}

void Driver::compute_rhs_overlap(const std::vector<std::vector<double>>& u,
                                 std::vector<std::vector<double>>& rhs) {
  const int nf = nfields();
  // Extract the halo and launch the exchange before any volume work:
  // full2face reads only `u` and the exchange touches only myfaces_ /
  // nbrfaces_, so hoisting them ahead of the volume term changes no
  // floating-point operation.
  pack_faces(u);

  if (config_.face_backend == FaceBackend::kDirect) {
    {
      prof::ScopedRegion r("exchange_begin");
      prof::WallTimer t;
      exchange_->begin(myfaces_.data(), nbrfaces_.data(), nf);
      overlap_stats_.begin_seconds += t.seconds();
    }
    {
      prof::ScopedRegion r("overlap_window");
      prof::WallTimer t;
      // Same global phase order as the blocking path — volume, dealias,
      // particle source, surface — and within each phase the same per-point
      // operation sequence, so the result bits match exactly.
      volume_term(u, rhs, classes_.interior);
      volume_term(u, rhs, classes_.boundary);
      dealias_term(u);
      particle_source(rhs);
      // Every face of an interior element is locally paired, and begin()
      // performed all local copies — so the interior surface term runs
      // while the halo messages are still in flight.
      surface_term(rhs, classes_.interior);
      overlap_stats_.compute_seconds += t.seconds();
    }
    {
      prof::ScopedRegion r("exchange_finish");
      prof::WallTimer t;
      exchange_->finish();
      overlap_stats_.finish_seconds += t.seconds();
    }
    surface_term(rhs, classes_.boundary);
  } else {
    // gs backend: locally-paired face values also travel through the gs sum
    // and are only correct after finish(), so no surface work fits in the
    // window — it covers the volume, dealias and particle phases instead.
    std::copy(myfaces_.begin(), myfaces_.end(), nbrfaces_.begin());
    {
      prof::ScopedRegion r("exchange_begin");
      prof::WallTimer t;
      face_gs_->exec_many_begin(std::span<double>(nbrfaces_), nf,
                                gs::ReduceOp::kSum);
      overlap_stats_.begin_seconds += t.seconds();
    }
    {
      prof::ScopedRegion r("overlap_window");
      prof::WallTimer t;
      volume_term(u, rhs, all_elems_);
      dealias_term(u);
      particle_source(rhs);
      overlap_stats_.compute_seconds += t.seconds();
    }
    {
      prof::ScopedRegion r("exchange_finish");
      prof::WallTimer t;
      face_gs_->exec_many_finish();
      overlap_stats_.finish_seconds += t.seconds();
    }
    gs_faces_subtract();
    surface_term(rhs, all_elems_);
  }
  ++overlap_stats_.windows;
}

void Driver::volume_term(const std::vector<std::vector<double>>& u,
                         std::vector<std::vector<double>>& rhs,
                         std::span<const int> elems) {
  if (elems.empty()) return;
  prof::ScopedRegion ax_region("ax_ (flux divergence)");
  // Elements are independent — each chunk writes only its own elements'
  // slices of rhs/flux_/grad_scratch_ — so splitting the list across pool
  // threads leaves every bit of the result unchanged.
  parallel::for_elements(
      elems.size(), parallel::default_grain(elems.size(), threads_), threads_,
      [&](std::size_t lo, std::size_t hi) {
        volume_term_range(u, rhs, elems, lo, hi);
      });
}

void Driver::volume_term_range(const std::vector<std::vector<double>>& u,
                               std::vector<std::vector<double>>& rhs,
                               std::span<const int> elems, std::size_t lo,
                               std::size_t hi) {
  const int n = config_.n;
  const int nf = nfields();
  const std::size_t epts = std::size_t(n) * n * n;
  const double* uptr[kMaxFields];
  for (int f = 0; f < nf; ++f) uptr[f] = u[f].data();
  double* fptr[kMaxFields];
  for (int f = 0; f < nf; ++f) fptr[f] = flux_[f].data();

  // Process maximal runs of consecutive elements so the full list (the
  // blocking path) keeps its single bulk kernel call per direction and the
  // interior/boundary lists batch their x-rows. Per-element results do not
  // depend on the batching — the kernels treat elements independently. On a
  // stretched mesh a run also breaks where the element extents change,
  // because the batched kernels take one scalar scale per axis.
  std::size_t i = lo;
  while (i < hi) {
    std::size_t j = i + 1;
    while (j < hi && elems[j] == elems[j - 1] + 1 &&
           (uniform_mesh_ || elem_h_[std::size_t(elems[j])] ==
                                 elem_h_[std::size_t(elems[j - 1])])) {
      ++j;
    }
    // (runs never merge across chunk boundaries; per-element bits are
    // batching-invariant, so the split is harmless)
    const int e0 = elems[i];
    const int m = int(j - i);
    const std::size_t base = std::size_t(e0) * epts;
    const std::size_t cnt = std::size_t(m) * epts;
    i = j;
    const std::array<double, 3> eh = {elem_h(e0, 0), elem_h(e0, 1),
                                      elem_h(e0, 2)};

    if (config_.fused_divergence) {
      // Fused path: evaluate the three axis fluxes of one field, then a
      // single div3 sweep accumulates the scaled divergence. (For Euler
      // this re-derives the flux per field — the option trades that
      // pointwise redundancy for one output sweep instead of three.)
      for (int f = 0; f < nf; ++f) {
        for (int axis = 0; axis < 3; ++axis) {
          system_->flux_range_field(uptr, flux_fused_[axis].data(), base,
                                    base + cnt, axis, f);
        }
        kernels::div3_dispatch(ops_.d.data(), flux_fused_[0].data() + base,
                               flux_fused_[1].data() + base,
                               flux_fused_[2].data() + base,
                               grad_scratch_.data() + base, n, m, 2.0 / eh[0],
                               2.0 / eh[1], 2.0 / eh[2],
                               div_work_.data() + 2 * base);
        for (std::size_t p = base; p < base + cnt; ++p) {
          rhs[f][p] -= grad_scratch_[p];
        }
      }
    } else {
      for (int axis = 0; axis < 3; ++axis) {
        // Pointwise axis flux of every field.
        system_->flux_range(uptr, fptr, base, base + cnt, axis);
        // d(flux)/d(axis) with the selected loop-transformation variant.
        const double scale = 2.0 / eh[axis];
        for (int f = 0; f < nf; ++f) {
          switch (axis) {
            case 0:
              kernels::grad_r(config_.variant, ops_.d.data(),
                              flux_[f].data() + base,
                              grad_scratch_.data() + base, n, m);
              break;
            case 1:
              kernels::grad_s(config_.variant, ops_.d.data(),
                              flux_[f].data() + base,
                              grad_scratch_.data() + base, n, m);
              break;
            default:
              kernels::grad_t(config_.variant, ops_.d.data(),
                              flux_[f].data() + base,
                              grad_scratch_.data() + base, n, m);
          }
          for (std::size_t p = base; p < base + cnt; ++p) {
            rhs[f][p] -= scale * grad_scratch_[p];
          }
        }
      }
    }
  }
}

void Driver::dealias_term(const std::vector<std::vector<double>>& u) {
  // Always whole-rank in ascending element order: the checksum accumulates
  // across elements, so its order must not depend on the overlap split.
  if (!config_.dealias) return;
  prof::ScopedRegion dl_region("dealias (intp_rstd)");
  const int n = config_.n;
  const std::size_t elem = std::size_t(n) * n * n;
  const int last = nfields() - 1;  // energy field
  for (int e = 0; e < layout_.nel(); ++e) {
    kernels::dealias_roundtrip(ops_.interp.data(), ops_.interp_t.data(),
                               ops_.m, n, u[last].data() + e * elem,
                               dealias_fine_.data(), dealias_back_.data(),
                               dealias_work_.data());
    dealias_checksum_ += dealias_back_[0];
  }
}

void Driver::particle_source(std::vector<std::vector<double>>& rhs) {
  // Multiphase source term (paper Eq. 1's R).
  if (!tracker_ || config_.particle_coupling == 0.0) return;
  prof::ScopedRegion src_region("particle_source");
  prof::CpuTimer t;
  // Deposit onto the x-momentum equation (drag-like forcing); for the
  // single-field advection mode the scalar itself receives the source.
  const int target = nfields() >= 2 ? 1 : 0;
  tracker_->deposit_all(rhs[target].data(), config_.particle_coupling);
  const double s = t.seconds();
  rhs_particle_seconds_ += s;
  balance_window_.particle_seconds += s;
  balance_total_.particle_seconds += s;
}

void Driver::pack_faces(const std::vector<std::vector<double>>& u) {
  prof::ScopedRegion f2f_region("full2face_cmt");
  const int n = config_.n;
  const int nel = layout_.nel();
  const std::size_t fsz = mesh::face_array_size(n, nel);
  for (int f = 0; f < nfields(); ++f) {
    mesh::full2face(u[f].data(), myfaces_.data() + f * fsz, n, nel);
  }
}

void Driver::surface_term(std::vector<std::vector<double>>& rhs,
                          std::span<const int> elems) {
  if (elems.empty()) return;
  prof::ScopedRegion nfx_region("numerical_flux");
  // Each element's flux lift touches only that element's rhs points, and
  // myfaces_/nbrfaces_ are read-only here — element-parallel, bit-stable.
  parallel::for_elements(
      elems.size(), parallel::default_grain(elems.size(), threads_), threads_,
      [&](std::size_t lo, std::size_t hi) {
        surface_term_range(rhs, elems, lo, hi);
      });
}

void Driver::surface_term_range(std::vector<std::vector<double>>& rhs,
                                std::span<const int> elems, std::size_t lo,
                                std::size_t hi) {
  const int n = config_.n;
  const int nf = nfields();
  const std::size_t fsz = mesh::face_array_size(n, layout_.nel());
  const std::vector<double>& w = ops_.rule.weights;
  const double w_edge = w[0];  // == w[n-1]
  const std::size_t elem = std::size_t(n) * n * n;

  for (std::size_t ei = lo; ei < hi; ++ei) {
    const int e = elems[ei];
    for (int face = 0; face < mesh::kFacesPerElement; ++face) {
      const int axis = mesh::face_axis(face);
      const double sign = mesh::face_side(face) == 0 ? -1.0 : 1.0;
      const double lift = 2.0 / elem_h(e, axis) / w_edge;
      for (int b = 0; b < n; ++b) {
        for (int a = 0; a < n; ++a) {
          const std::size_t foff =
              mesh::face_offset(face, e, n) + a + std::size_t(n) * b;
          const std::size_t voff =
              e * elem + mesh::face_point_volume_index(face, a, b, n);
          // Gather the two face states, evaluate the system's pointwise
          // flux and signal speed, and lift the Rusanov correction. For
          // both historical physics branches this performs the exact
          // per-point operation sequence the hard-coded code did.
          double uin[kMaxFields], uout[kMaxFields];
          double fin[kMaxFields], fout[kMaxFields];
          for (int f = 0; f < nf; ++f) {
            uin[f] = myfaces_[f * fsz + foff];
            uout[f] = nbrfaces_[f * fsz + foff];
          }
          system_->flux_point(uin, fin, axis);
          system_->flux_point(uout, fout, axis);
          const double lambda = std::max(system_->wavespeed_point(uin, axis),
                                         system_->wavespeed_point(uout, axis));
          for (int f = 0; f < nf; ++f) {
            double fstar =
                rusanov(fin[f], fout[f], uin[f], uout[f], lambda, sign);
            rhs[f][voff] -= lift * sign * (fstar - fin[f]);
          }
        }
      }
    }
  }
}

void Driver::gs_faces_subtract() {
  // Each interior face point has exactly two copies, so the gs_op(add)
  // yielded mine+neighbor; subtracting my value leaves the neighbor's.
  // Physical-boundary points (single copy) mirror mine.
  const std::size_t fsz = mesh::face_array_size(config_.n, layout_.nel());
  for (int f = 0; f < nfields(); ++f) {
    double* nbr = nbrfaces_.data() + f * fsz;
    const double* mine = myfaces_.data() + f * fsz;
    for (std::size_t s = 0; s < fsz; ++s) {
      nbr[s] = face_interior_[s] ? nbr[s] - mine[s] : mine[s];
    }
  }
}

void Driver::exchange_faces() {
  prof::ScopedRegion ex_region("nearest_neighbor_exchange");
  const int nf = nfields();
  if (config_.face_backend == FaceBackend::kDirect) {
    exchange_->exchange(myfaces_.data(), nbrfaces_.data(), nf);
    return;
  }
  std::copy(myfaces_.begin(), myfaces_.end(), nbrfaces_.begin());
  face_gs_->exec_many(std::span<double>(nbrfaces_), nf, gs::ReduceOp::kSum);
  gs_faces_subtract();
}

void Driver::apply_dssum() {
  prof::ScopedRegion region("gs_op_ (dssum)");
  for (int f = 0; f < nfields(); ++f) {
    gs_->exec(std::span<double>(u_[f]), gs::ReduceOp::kSum);
    kernels::pointwise_scale(u_[f].data(), inv_multiplicity_.data(), pts_);
  }
}

void Driver::step() {
  prof::ScopedRegion region("cmt_step");
  const double dt = compute_dt();
  const int nf = nfields();

  if (config_.integrator == TimeIntegrator::kRk4) {
    step_rk4(dt);
  } else {
    // Shu-Osher form: u_i = a_i*u0 + b_i*(u_{i-1} + dt*L(u_{i-1})); the SSP
    // schemes are convex combinations of forward-Euler stages.
    struct Stage {
      double a, b;
    };
    static constexpr Stage kEulerTab[] = {{0.0, 1.0}};
    static constexpr Stage kRk2Tab[] = {{0.0, 1.0}, {0.5, 0.5}};
    static constexpr Stage kRk3Tab[] = {
        {0.0, 1.0}, {0.75, 0.25}, {1.0 / 3.0, 2.0 / 3.0}};
    const Stage* tab = kRk3Tab;
    int stages = 3;
    switch (config_.integrator) {
      case TimeIntegrator::kForwardEuler: tab = kEulerTab; stages = 1; break;
      case TimeIntegrator::kRk2Ssp: tab = kRk2Tab; stages = 2; break;
      default: break;
    }

    // u1_ holds the running stage value; u_ keeps u0 until the final write.
    std::vector<std::vector<double>>* prev = &u_;
    for (int s = 0; s < stages; ++s) {
      compute_rhs(*prev, rhs_);
      std::vector<std::vector<double>>* next =
          (s == stages - 1) ? &u_ : &u1_;
      const double a = tab[s].a, b = tab[s].b;
      for (int f = 0; f < nf; ++f) {
        const std::vector<double>& u0 = u_[f];
        const std::vector<double>& up = (*prev)[f];
        std::vector<double>& un = (*next)[f];
        for (std::size_t p = 0; p < pts_; ++p) {
          un[p] = a * u0[p] + b * (up[p] + dt * rhs_[f][p]);
        }
      }
      prev = next;
    }
  }

  if (config_.use_dssum) apply_dssum();
  if (tracker_) step_particles(dt);

  time_ += dt;
  ++steps_;
  ++balance_window_.steps;
  ++balance_total_.steps;
  maybe_rebalance();
}

void Driver::step_particles(double dt) {
  prof::ScopedRegion region("particle_tracking");
  prof::CpuTimer cost_timer;
  // Every physics routes through the interpolated-field path: the system
  // fills the pointwise carrier flow (Euler: momentum / density; linear
  // advection: the constant transport velocity; Burgers: the local
  // characteristic speed) and the tracker interpolates it at each particle.
  // The historical shortcut of advancing non-Euler particles with the raw
  // config velocity bypassed the interpolation machinery entirely, so those
  // runs exercised a different (and unrepresentative) code path.
  const double* uptr[kMaxFields];
  for (int f = 0; f < nfields(); ++f) uptr[f] = u_[f].data();
  system_->carrier_velocity(uptr, carrier_[0].data(), carrier_[1].data(),
                            carrier_[2].data(), 0, pts_);
  tracker_->advance_interpolated(carrier_[0].data(), carrier_[1].data(),
                                 carrier_[2].data(), dt);
  tracker_->migrate();
  const double s = cost_timer.seconds();
  balance_window_.particle_seconds += s;
  balance_total_.particle_seconds += s;
}

void Driver::step_rk4(double dt) {
  // Classic RK4. u1_ is the stage state, u2_ accumulates the weighted ks.
  const int nf = nfields();
  const double half = 0.5 * dt;

  compute_rhs(u_, rhs_);  // k1
  for (int f = 0; f < nf; ++f) {
    for (std::size_t p = 0; p < pts_; ++p) {
      u2_[f][p] = rhs_[f][p];  // acc = k1
      u1_[f][p] = u_[f][p] + half * rhs_[f][p];
    }
  }
  compute_rhs(u1_, rhs_);  // k2
  for (int f = 0; f < nf; ++f) {
    for (std::size_t p = 0; p < pts_; ++p) {
      u2_[f][p] += 2.0 * rhs_[f][p];
      u1_[f][p] = u_[f][p] + half * rhs_[f][p];
    }
  }
  compute_rhs(u1_, rhs_);  // k3
  for (int f = 0; f < nf; ++f) {
    for (std::size_t p = 0; p < pts_; ++p) {
      u2_[f][p] += 2.0 * rhs_[f][p];
      u1_[f][p] = u_[f][p] + dt * rhs_[f][p];
    }
  }
  compute_rhs(u1_, rhs_);  // k4
  for (int f = 0; f < nf; ++f) {
    for (std::size_t p = 0; p < pts_; ++p) {
      u_[f][p] += (dt / 6.0) * (u2_[f][p] + rhs_[f][p]);
    }
  }
}

double Driver::run(int nsteps) {
  double t0 = time_;
  for (int s = 0; s < nsteps; ++s) step();
  return time_ - t0;
}

double Driver::run(int nsteps, const StepHook& after_step) {
  double t0 = time_;
  for (int s = 0; s < nsteps; ++s) {
    step();
    if (after_step) after_step(*this);
  }
  return time_ - t0;
}

long long Driver::flops_per_rhs() const {
  const int n = config_.n;
  const int nel = layout_.nel();
  const int nf = nfields();
  const long long n3 = 1LL * n * n * n;
  // Per direction and field: one derivative (2 N^4 per element), the
  // pointwise flux evaluation (~2 N^3) and the rhs axpy (2 N^3).
  long long volume = 3LL * nf * (kernels::grad_flops(n, nel) + 4 * n3 * nel);
  // Surface: per face point and field, the Rusanov flux is ~8 flops.
  long long surface = 1LL * nf * nel * 6 * n * n * 8;
  return volume + surface;
}

long long Driver::flops_per_step() const {
  return integrator_stages(config_.integrator) * flops_per_rhs();
}

std::vector<std::byte> Driver::serialize_checkpoint(long long epoch) const {
  io::CheckpointHeader header;
  header.n = config_.n;
  header.nel = layout_.nel();
  header.nfields = nfields();
  header.steps = steps_;
  header.time = time_;
  header.rank = comm_->rank();
  header.epoch = epoch;
  std::vector<const double*> fields;
  fields.reserve(u_.size());
  for (const auto& f : u_) fields.push_back(f.data());
  const std::vector<int>& own = layout_.owner();
  std::vector<std::int32_t> owner32(own.begin(), own.end());
  return io::serialize_checkpoint(header,
                                  std::span<const double* const>(fields), pts_,
                                  std::span<const std::int32_t>(owner32));
}

void Driver::save_checkpoint_file(const std::string& path,
                                  long long epoch) const {
  io::write_file_atomic(path, serialize_checkpoint(epoch));
}

void Driver::restore_state(const io::CheckpointHeader& header,
                           std::vector<std::vector<double>>&& fields,
                           std::span<const std::int32_t> owner) {
  if (header.n != config_.n || header.nfields != nfields()) {
    throw std::runtime_error(
        "load_checkpoint: geometry mismatch with this configuration");
  }
  // Resolve the layout the checkpoint was taken under: the stored v3 owner
  // map, or the static block partition for v1/v2 files.
  mesh::ElementLayout saved =
      owner.empty()
          ? mesh::ElementLayout::block(spec_, comm_->rank())
          : mesh::ElementLayout(spec_, comm_->rank(),
                                std::vector<int>(owner.begin(), owner.end()));
  if (header.nel != saved.nel()) {
    throw std::runtime_error(
        "load_checkpoint: geometry mismatch with this configuration");
  }
  if (!saved.same_ownership(layout_)) {
    layout_ = std::move(saved);
    rebuild_topology();
    if (tracker_) {
      tracker_->set_layout(layout_);
      tracker_->migrate();
    }
  }
  for (int f = 0; f < nfields(); ++f) u_[f] = std::move(fields[f]);
  time_ = header.time;
  steps_ = header.steps;
}

void Driver::load_checkpoint_file(const std::string& path) {
  std::vector<std::vector<double>> fields;
  std::vector<std::int32_t> owner;
  io::CheckpointHeader header = io::read_checkpoint(path, &fields, &owner);
  restore_state(header, std::move(fields),
                std::span<const std::int32_t>(owner));
}

void Driver::save_checkpoint(const std::string& directory,
                             const std::string& prefix) const {
  save_checkpoint_file(
      io::rank_checkpoint_path(directory, prefix, comm_->rank()));
}

void Driver::load_checkpoint(const std::string& directory,
                             const std::string& prefix) {
  load_checkpoint_file(
      io::rank_checkpoint_path(directory, prefix, comm_->rank()));
}

void Driver::export_vtk(const std::string& path) const {
  const int n = config_.n;
  std::vector<std::pair<std::string, std::span<const double>>> fields;
  static const char* kNames[] = {"rho", "mom_x", "mom_y", "mom_z", "energy"};
  for (int f = 0; f < nfields(); ++f) {
    const char* name = nfields() == 1 ? "u" : kNames[f];
    fields.emplace_back(name, std::span<const double>(u_[f]));
  }
  const std::size_t n3 = std::size_t(n) * n * n;
  io::write_vtk_points(
      path, pts_,
      [&](std::size_t p) {
        int e = int(p / n3);
        std::size_t r = p % n3;
        int i = int(r % n);
        int j = int((r / n) % n);
        int k = int(r / (std::size_t(n) * n));
        return node_coords(e, i, j, k);
      },
      fields);
}

double Driver::l2_norm(int f) {
  const int n = config_.n;
  const std::vector<double>& w = ops_.rule.weights;
  double sum = 0.0;
  std::size_t idx = 0;
  for (int e = 0; e < layout_.nel(); ++e) {
    // Per-element Jacobian; on a uniform mesh this is the historical
    // constant (same factors, same order), so the sum's bits are unchanged.
    const double jac = 0.125 * elem_h(e, 0) * elem_h(e, 1) * elem_h(e, 2);
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          double v = u_[f][idx++];
          sum += jac * w[i] * w[j] * w[k] * v * v;
        }
      }
    }
  }
  sum = comm_->allreduce_one(sum, comm::ReduceOp::kSum);
  return std::sqrt(sum);
}

double Driver::integral(int f) {
  const int n = config_.n;
  const std::vector<double>& w = ops_.rule.weights;
  double sum = 0.0;
  std::size_t idx = 0;
  for (int e = 0; e < layout_.nel(); ++e) {
    const double jac = 0.125 * elem_h(e, 0) * elem_h(e, 1) * elem_h(e, 2);
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          sum += jac * w[i] * w[j] * w[k] * u_[f][idx++];
        }
      }
    }
  }
  return comm_->allreduce_one(sum, comm::ReduceOp::kSum);
}

double Driver::l1_error(int f, const FieldFunction& exact) {
  const int n = config_.n;
  const std::vector<double>& w = ops_.rule.weights;
  double sum = 0.0;
  std::size_t idx = 0;
  for (int e = 0; e < layout_.nel(); ++e) {
    const double jac = 0.125 * elem_h(e, 0) * elem_h(e, 1) * elem_h(e, 2);
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          auto c = node_coords(e, i, j, k);
          sum += jac * w[i] * w[j] * w[k] *
                 std::abs(u_[f][idx++] - exact(c[0], c[1], c[2], f));
        }
      }
    }
  }
  return comm_->allreduce_one(sum, comm::ReduceOp::kSum);
}

double Driver::linf_error(const FieldFunction& exact) {
  const int n = config_.n;
  double err = 0.0;
  for (int f = 0; f < nfields(); ++f) {
    std::size_t idx = 0;
    for (int e = 0; e < layout_.nel(); ++e) {
      for (int k = 0; k < n; ++k) {
        for (int j = 0; j < n; ++j) {
          for (int i = 0; i < n; ++i) {
            auto c = node_coords(e, i, j, k);
            err = std::max(err,
                           std::abs(u_[f][idx++] - exact(c[0], c[1], c[2], f)));
          }
        }
      }
    }
  }
  return comm_->allreduce_one(err, comm::ReduceOp::kMax);
}

// --- dynamic load balancing --------------------------------------------------

void Driver::migrate_fields(const mesh::ElementLayout& next) {
  const int nf = nfields();
  const std::size_t epts =
      std::size_t(config_.n) * config_.n * config_.n;
  const int nranks = comm_->size();
  const int me = comm_->rank();

  // Pack leaving elements grouped by destination rank, ascending gid within
  // each group. Both sides hold the replicated owner maps, so the receiver
  // can reconstruct exactly which gids arrive from whom — but shipping the
  // gids alongside keeps the wire format self-describing.
  std::vector<int> gid_counts(nranks, 0), val_counts(nranks, 0);
  std::vector<long long> send_gids;
  std::vector<double> send_vals;
  for (int dest = 0; dest < nranks; ++dest) {
    if (dest == me) continue;
    for (int e = 0; e < layout_.nel(); ++e) {
      const long long g = layout_.gid_of(e);
      if (next.owner_of_gid(g) != dest) continue;
      send_gids.push_back(g);
      ++gid_counts[dest];
      for (int f = 0; f < nf; ++f) {
        const double* src = u_[f].data() + std::size_t(e) * epts;
        send_vals.insert(send_vals.end(), src, src + epts);
      }
      val_counts[dest] += int(nf * epts);
    }
  }

  std::vector<long long> arrived_gids = comm_->alltoallv(
      std::span<const long long>(send_gids), gid_counts);
  std::vector<double> arrived_vals = comm_->alltoallv(
      std::span<const double>(send_vals), val_counts);

  // Record i of the arrival stream owns arrived_vals[i*nf*epts ...): the
  // value and gid streams were packed congruently. Index by gid.
  std::vector<std::size_t> order(arrived_gids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return arrived_gids[a] < arrived_gids[b];
  });

  // Assemble the new local field set in the next layout's ascending-gid
  // local order from kept + arrived elements.
  std::vector<std::vector<double>> nu(
      nf, std::vector<double>(std::size_t(next.nel()) * epts));
  for (int e2 = 0; e2 < next.nel(); ++e2) {
    const long long g = next.gid_of(e2);
    const int e1 = layout_.local_of_gid(g);
    if (e1 >= 0) {
      for (int f = 0; f < nf; ++f) {
        std::copy_n(u_[f].data() + std::size_t(e1) * epts, epts,
                    nu[f].data() + std::size_t(e2) * epts);
      }
    } else {
      auto it = std::lower_bound(
          order.begin(), order.end(), g,
          [&](std::size_t a, long long gid) { return arrived_gids[a] < gid; });
      if (it == order.end() || arrived_gids[*it] != g) {
        throw std::logic_error("migrate_fields: expected element never arrived");
      }
      const double* blk = arrived_vals.data() + *it * nf * epts;
      for (int f = 0; f < nf; ++f) {
        std::copy_n(blk + std::size_t(f) * epts, epts,
                    nu[f].data() + std::size_t(e2) * epts);
      }
    }
  }
  u_ = std::move(nu);
}

void Driver::apply_layout(const std::vector<int>& owner) {
  mesh::ElementLayout next(spec_, comm_->rank(), owner);
  if (next.same_ownership(layout_)) return;
  migrate_fields(next);
  layout_ = std::move(next);
  rebuild_topology();
  if (tracker_) {
    tracker_->set_layout(layout_);
    // Re-home resident particles: ownership moved under them, so each rank
    // routes the particles it no longer owns (collective; ends with the
    // canonical id sort, keeping deposit order layout-invariant).
    tracker_->migrate();
  }
}

int Driver::rebalance_now() {
  prof::ScopedRegion region("rebalance");
  // Epoch overhead (decision + migration + topology rebuild) is charged to
  // the run-total busy time so the balanced run pays for its own machinery
  // in every busy-time comparison; it never enters the measurement window
  // the cost model fits unit rates from.
  prof::CpuTimer epoch_timer;
  std::vector<int> counts =
      tracker_ ? tracker_->count_per_element()
               : std::vector<int>(std::size_t(layout_.nel()), 0);
  const long long local_particles =
      tracker_ ? static_cast<long long>(tracker_->local_count()) : 0;
  cost_model_.observe(balance_window_, layout_.nel(), local_particles);
  balance_window_.reset();

  std::vector<double> cost = cost_model_.element_costs(counts);
  std::vector<double> dense =
      balance::gather_global_costs(*comm_, layout_, cost);
  balance::RebalanceConfig rc;
  rc.max_moves = config_.balance_max_moves;
  rc.threshold = config_.balance_threshold;
  balance::RebalancePlan plan = balance::propose_owner(layout_, dense, rc);
  if (plan.moves > 0) {
    apply_layout(plan.owner);
    ++balance_epochs_;
    balance_moves_ += plan.moves;
  }
  balance_total_.rebalance_seconds += epoch_timer.seconds();
  return plan.moves;
}

void Driver::maybe_rebalance() {
  if (config_.balance_interval <= 0) return;
  if (steps_ % config_.balance_interval != 0) return;
  rebalance_now();
}

std::vector<double> Driver::gather_global_field(int f) const {
  const std::size_t epts =
      std::size_t(config_.n) * config_.n * config_.n;
  std::vector<long long> gids = layout_.owned_gids();
  std::vector<long long> all_gids =
      comm_->allgatherv(std::span<const long long>(gids));
  std::vector<double> all_vals =
      comm_->allgatherv(std::span<const double>(u_[f]));
  std::vector<double> dense(
      std::size_t(layout_.total_elements()) * epts, 0.0);
  for (std::size_t i = 0; i < all_gids.size(); ++i) {
    std::copy_n(all_vals.begin() + i * epts, epts,
                dense.begin() + std::size_t(all_gids[i]) * epts);
  }
  return dense;
}

}  // namespace cmtbone::core
