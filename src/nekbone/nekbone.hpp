#pragma once
// Mini-Nekbone: the baseline mini-app the paper compares CMT-bone against
// (Fig. 7).
//
// Nekbone is the proxy for Nek5000's incompressible flow solve: a conjugate
// gradient iteration on the spectral-element Helmholtz operator
//   A = h1 * K + h2 * M
// (stiffness + mass), with direct-stiffness summation (gs_op) enforcing
// continuity across elements/ranks and allreduce dot products. It exercises
// the same substrates as CMT-bone — tensor-product mxm kernels and the
// gather-scatter library — but with a different balance: gs_op on every
// operator application rather than face-only nearest-neighbor exchange.

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "gs/gather_scatter.hpp"
#include "kernels/gradient.hpp"
#include "mesh/partition.hpp"
#include "sem/operators.hpp"

namespace cmtbone::nekbone {

struct NekboneConfig {
  int n = 10;
  int ex = 8, ey = 8, ez = 8;
  int px = 0, py = 0, pz = 0;  // 0 = derive from comm size
  bool periodic = true;
  double h1 = 1.0;   // stiffness coefficient
  double h2 = 0.1;   // mass coefficient (> 0 keeps A SPD on a periodic box)
  gs::Method gs_method = gs::Method::kPairwise;
  kernels::GradVariant variant = kernels::GradVariant::kDispatch;
  /// Threads (including the caller) for the local stiffness operator's
  /// element loops. Elements are independent, so any value is bit-identical.
  /// 0 resolves from CMTBONE_THREADS_PER_RANK (default 1 = serial).
  int threads_per_rank = 0;
};

class Nekbone {
 public:
  Nekbone(comm::Comm& comm, const NekboneConfig& config);

  int n() const { return config_.n; }
  std::size_t points() const { return pts_; }
  const mesh::Partition& partition() const { return part_; }
  gs::GatherScatter& gather_scatter() { return *gs_; }

  /// w = A u (local tensor-product operator + dssum). u must be continuous;
  /// w comes out continuous.
  void apply_ax(std::span<const double> u, std::span<double> w);

  /// Multiplicity-weighted global dot product (each shared GLL point counted
  /// once). Collective.
  double dot(std::span<const double> a, std::span<const double> b);

  /// Assemble b = dssum(M f) for a pointwise forcing callback f(x,y,z).
  void assemble_rhs(const std::function<double(double, double, double)>& f,
                    std::span<double> b);

  /// Evaluate a callback at every GLL node (for exact-solution comparison).
  void evaluate(const std::function<double(double, double, double)>& f,
                std::span<double> out) const;

  std::array<double, 3> node_coords(int e, int i, int j, int k) const;

  struct CgResult {
    int iterations = 0;
    double residual = 0.0;  // sqrt(r.r) at exit
  };
  /// Preconditioner-free CG for A x = b; x is both the initial guess and
  /// the result. Collective.
  CgResult solve_cg(std::span<double> x, std::span<const double> b,
                    int max_iterations, double tolerance);

  /// One "proxy" CG iteration worth of work on dummy data (for the Fig. 7
  /// style timing without a physical problem).
  void proxy_iteration();

 private:
  void local_ax(const double* u, double* w);
  // Stiffness + mass application for elements [e0, e1): the worker-pool
  // chunk body. Per-point arithmetic is independent across elements, so
  // chunking never changes a bit.
  void local_ax_range(const double* u, double* w, std::size_t e0,
                      std::size_t e1);

  comm::Comm* comm_;
  NekboneConfig config_;
  mesh::BoxSpec spec_;
  mesh::Partition part_;
  sem::Operators ops_;
  int threads_ = 1;  // resolved threads_per_rank
  std::unique_ptr<gs::GatherScatter> gs_;

  std::size_t pts_ = 0;
  std::array<double, 3> h_;
  std::vector<double> geo_rr_, geo_ss_, geo_tt_, mass_;  // diagonal factors
  std::vector<double> inv_multiplicity_;
  std::vector<double> ur_, us_, ut_, scratch_;
  std::vector<double> cg_r_, cg_p_, cg_w_;  // CG work vectors
};

}  // namespace cmtbone::nekbone
