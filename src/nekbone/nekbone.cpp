#include "nekbone/nekbone.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/dispatch.hpp"
#include "kernels/vecops.hpp"
#include "mesh/numbering.hpp"
#include "parallel/parallel.hpp"
#include "prof/callprof.hpp"

namespace cmtbone::nekbone {

namespace {
mesh::BoxSpec make_spec(const NekboneConfig& cfg, int nranks) {
  mesh::BoxSpec spec;
  spec.n = cfg.n;
  spec.ex = cfg.ex;
  spec.ey = cfg.ey;
  spec.ez = cfg.ez;
  spec.periodic = cfg.periodic;
  if (cfg.px > 0) {
    spec.px = cfg.px;
    spec.py = cfg.py;
    spec.pz = cfg.pz;
  } else {
    auto grid = mesh::BoxSpec::default_proc_grid(nranks);
    spec.px = grid[0];
    spec.py = grid[1];
    spec.pz = grid[2];
  }
  if (spec.nranks() != nranks) {
    throw std::invalid_argument(
        "Nekbone: processor grid does not match communicator size");
  }
  spec.validate();
  return spec;
}
}  // namespace

Nekbone::Nekbone(comm::Comm& comm, const NekboneConfig& config)
    : comm_(&comm),
      config_(config),
      spec_(make_spec(config, comm.size())),
      part_(spec_, comm.rank()),
      ops_(sem::Operators::build(config.n)),
      threads_(parallel::resolve_threads(config.threads_per_rank)) {
  {
    prof::ScopedRegion region("gs_setup");
    std::vector<long long> ids = mesh::global_gll_ids(part_);
    gs_ = std::make_unique<gs::GatherScatter>(
        comm, std::span<const long long>(ids), config.gs_method);
  }

  const int n = config_.n;
  const int nel = part_.nel();
  pts_ = std::size_t(n) * n * n * nel;
  h_ = {1.0 / spec_.ex, 1.0 / spec_.ey, 1.0 / spec_.ez};

  // Diagonal geometric factors of the uniform-box stiffness operator:
  //   K u |_q = D_r^T (G_rr D_r u) + D_s^T (G_ss D_s u) + D_t^T (G_tt D_t u)
  //   G_rr = w_i w_j w_k * (hy hz) / (2 hx), etc.; M = w_i w_j w_k * J.
  const std::vector<double>& w = ops_.rule.weights;
  const double jac = 0.125 * h_[0] * h_[1] * h_[2];
  geo_rr_.resize(pts_);
  geo_ss_.resize(pts_);
  geo_tt_.resize(pts_);
  mass_.resize(pts_);
  std::size_t idx = 0;
  for (int e = 0; e < nel; ++e) {
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          const double www = w[i] * w[j] * w[k];
          geo_rr_[idx] = www * h_[1] * h_[2] / (2.0 * h_[0]);
          geo_ss_[idx] = www * h_[0] * h_[2] / (2.0 * h_[1]);
          geo_tt_[idx] = www * h_[0] * h_[1] / (2.0 * h_[2]);
          mass_[idx] = www * jac;
          ++idx;
        }
      }
    }
  }

  inv_multiplicity_.assign(pts_, 1.0);
  gs_->exec(std::span<double>(inv_multiplicity_), gs::ReduceOp::kSum);
  for (double& v : inv_multiplicity_) v = 1.0 / v;

  ur_.assign(pts_, 0.0);
  us_.assign(pts_, 0.0);
  ut_.assign(pts_, 0.0);
  scratch_.assign(pts_, 0.0);
  cg_r_.assign(pts_, 0.0);
  cg_p_.assign(pts_, 0.0);
  cg_w_.assign(pts_, 0.0);
}

std::array<double, 3> Nekbone::node_coords(int e, int i, int j, int k) const {
  auto g = part_.global_coords(e);
  const std::vector<double>& r = ops_.rule.nodes;
  return {(g[0] + 0.5 * (r[i] + 1.0)) * h_[0],
          (g[1] + 0.5 * (r[j] + 1.0)) * h_[1],
          (g[2] + 0.5 * (r[k] + 1.0)) * h_[2]};
}

void Nekbone::local_ax(const double* u, double* w) {
  prof::ScopedRegion region("ax_ (local stiffness)");
  const std::size_t nel = std::size_t(part_.nel());
  parallel::for_elements(nel, parallel::default_grain(nel, threads_), threads_,
                         [&](std::size_t e0, std::size_t e1) {
                           local_ax_range(u, w, e0, e1);
                         });
}

void Nekbone::local_ax_range(const double* u, double* w, std::size_t e0,
                             std::size_t e1) {
  const int n = config_.n;
  const int m = int(e1 - e0);
  const std::size_t epts = std::size_t(n) * n * n;
  const std::size_t off = e0 * epts;
  const std::size_t end = e1 * epts;

  // Gradients in reference coordinates for this chunk's elements only; the
  // kernels process elements one at a time, so handing them a sub-range
  // produces the same per-point contractions as the full-array call.
  kernels::grad_r(config_.variant, ops_.d.data(), u + off, ur_.data() + off, n,
                  m);
  kernels::grad_s(config_.variant, ops_.d.data(), u + off, us_.data() + off, n,
                  m);
  kernels::grad_t(config_.variant, ops_.d.data(), u + off, ut_.data() + off, n,
                  m);

  // Scale by the diagonal geometric factors (elementwise — vectorization
  // cannot change the bits).
  kernels::pointwise_scale(ur_.data() + off, geo_rr_.data() + off, end - off);
  kernels::pointwise_scale(us_.data() + off, geo_ss_.data() + off, end - off);
  kernels::pointwise_scale(ut_.data() + off, geo_tt_.data() + off, end - off);

  // Transpose gradients back: w = D_r^T ur + D_s^T us + D_t^T ut. Applying
  // grad with D^T is exactly the transpose contraction.
  kernels::grad_r(config_.variant, ops_.dt.data(), ur_.data() + off, w + off, n,
                  m);
  kernels::grad_s(config_.variant, ops_.dt.data(), us_.data() + off,
                  scratch_.data() + off, n, m);
  for (std::size_t p = off; p < end; ++p) w[p] += scratch_[p];
  kernels::grad_t(config_.variant, ops_.dt.data(), ut_.data() + off,
                  scratch_.data() + off, n, m);
  kernels::ax_combine(w + off, scratch_.data() + off, mass_.data() + off,
                      u + off, config_.h1, config_.h2, end - off);
}

void Nekbone::apply_ax(std::span<const double> u, std::span<double> w) {
  local_ax(u.data(), w.data());
  prof::ScopedRegion region("gs_op_ (dssum)");
  gs_->exec(w, gs::ReduceOp::kSum);
}

double Nekbone::dot(std::span<const double> a, std::span<const double> b) {
  // The multiplicity-weighted inner product is a reduction, so the 4-lane
  // vector form is a (deterministic, machine-independent) reorder; keep the
  // historical ascending order when the scalar backend is selected so a
  // forced-scalar run reproduces old bits exactly.
  const bool strict =
      kernels::selected_backend(config_.n) == kernels::Backend::kScalar;
  const double sum = kernels::weighted_dot(a.data(), b.data(),
                                           inv_multiplicity_.data(), pts_,
                                           strict);
  return comm_->allreduce_one(sum, comm::ReduceOp::kSum);
}

void Nekbone::assemble_rhs(
    const std::function<double(double, double, double)>& f,
    std::span<double> b) {
  const int n = config_.n;
  std::size_t idx = 0;
  for (int e = 0; e < part_.nel(); ++e) {
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          auto c = node_coords(e, i, j, k);
          b[idx] = mass_[idx] * f(c[0], c[1], c[2]);
          ++idx;
        }
      }
    }
  }
  gs_->exec(b, gs::ReduceOp::kSum);
}

void Nekbone::evaluate(const std::function<double(double, double, double)>& f,
                       std::span<double> out) const {
  const int n = config_.n;
  std::size_t idx = 0;
  for (int e = 0; e < part_.nel(); ++e) {
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          auto c = node_coords(e, i, j, k);
          out[idx++] = f(c[0], c[1], c[2]);
        }
      }
    }
  }
}

Nekbone::CgResult Nekbone::solve_cg(std::span<double> x,
                                    std::span<const double> b,
                                    int max_iterations, double tolerance) {
  prof::ScopedRegion region("cg_solve");
  CgResult result;

  // r = b - A x; p = r.
  apply_ax(x, std::span<double>(cg_w_));
  for (std::size_t i = 0; i < pts_; ++i) cg_r_[i] = b[i] - cg_w_[i];
  cg_p_ = cg_r_;

  double rho = dot(cg_r_, cg_r_);
  const double stop = tolerance * tolerance;
  for (int it = 0; it < max_iterations; ++it) {
    if (rho <= stop) break;
    apply_ax(cg_p_, std::span<double>(cg_w_));
    double alpha = rho / dot(cg_p_, cg_w_);
    for (std::size_t i = 0; i < pts_; ++i) {
      x[i] += alpha * cg_p_[i];
      cg_r_[i] -= alpha * cg_w_[i];
    }
    double rho_next = dot(cg_r_, cg_r_);
    double beta = rho_next / rho;
    for (std::size_t i = 0; i < pts_; ++i) {
      cg_p_[i] = cg_r_[i] + beta * cg_p_[i];
    }
    rho = rho_next;
    result.iterations = it + 1;
  }
  result.residual = std::sqrt(rho);
  return result;
}

void Nekbone::proxy_iteration() {
  // One CG iteration's communication+compute on synthetic data: ax apply
  // (gradients + dssum) and two allreduce dot products.
  std::fill(cg_p_.begin(), cg_p_.end(), 1.0);
  apply_ax(cg_p_, std::span<double>(cg_w_));
  (void)dot(cg_p_, cg_w_);
  (void)dot(cg_w_, cg_w_);
}

}  // namespace cmtbone::nekbone
