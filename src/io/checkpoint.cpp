#include "io/checkpoint.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#include "util/bytes.hpp"
#endif

namespace cmtbone::io {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("checkpoint " + path + ": " + what);
}

// Sanity checks shared by all parses (runs on the v1 header prefix, which
// already contains the version field).
void check_plausible(const CheckpointHeader& h, const std::string& path) {
  CheckpointHeader expected;
  if (h.magic != expected.magic) fail(path, "bad magic");
  if (h.version < 1 || h.version > 3) fail(path, "unsupported version");
  if (h.n < 2 || h.nel < 0 || h.nfields < 0) fail(path, "implausible header");
}
}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  // Standard reflected IEEE polynomial, byte-at-a-time table.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

ChecksumMismatch::ChecksumMismatch(std::string file_path, int file_rank,
                                   long long file_epoch,
                                   std::uint32_t expected, std::uint32_t actual)
    : std::runtime_error("checkpoint " + file_path +
                         ": payload CRC mismatch (header says " +
                         std::to_string(expected) + ", payload hashes to " +
                         std::to_string(actual) + "; rank " +
                         std::to_string(file_rank) + ", epoch " +
                         std::to_string(file_epoch) + ")"),
      path(std::move(file_path)),
      rank(file_rank),
      epoch(file_epoch) {}

std::vector<std::byte> serialize_checkpoint(
    const CheckpointHeader& header, std::span<const double* const> fields,
    std::size_t points, std::span<const std::int32_t> owner) {
  if (int(fields.size()) != header.nfields) {
    throw std::runtime_error(
        "checkpoint serialize: field count does not match header");
  }
  CheckpointHeader h = header;
  h.version = owner.empty() ? 2 : 3;
  h.total_elements = static_cast<std::int64_t>(owner.size());
  const std::size_t header_bytes =
      owner.empty() ? kHeaderBytesV2 : kHeaderBytesV3;
  const std::size_t owner_bytes = owner.size() * sizeof(std::int32_t);
  const std::size_t payload =
      owner_bytes + fields.size() * points * sizeof(double);
  std::vector<std::byte> out(header_bytes + payload);
  std::byte* dst = out.data() + header_bytes;
  if (!owner.empty()) {
    util::copy_bytes(dst, owner.data(), owner_bytes);
    dst += owner_bytes;
  }
  for (const double* field : fields) {
    util::copy_bytes(dst, field, points * sizeof(double));
    dst += points * sizeof(double);
  }
  h.payload_crc = crc32(out.data() + header_bytes, payload);
  util::copy_bytes(out.data(), &h, header_bytes);
  return out;
}

CheckpointHeader parse_checkpoint(std::span<const std::byte> bytes,
                                  const std::string& path,
                                  std::vector<std::vector<double>>* fields,
                                  std::vector<std::int32_t>* owner) {
  if (bytes.size() < kHeaderBytesV1) fail(path, "truncated header");
  CheckpointHeader header;
  util::copy_bytes(static_cast<void*>(&header), bytes.data(), kHeaderBytesV1);
  check_plausible(header, path);
  std::size_t header_bytes = kHeaderBytesV1;
  if (header.version >= 2) {
    header_bytes = header.version == 2 ? kHeaderBytesV2 : kHeaderBytesV3;
    if (bytes.size() < header_bytes) fail(path, "truncated header");
    util::copy_bytes(static_cast<void*>(&header), bytes.data(), header_bytes);
  }
  if (header.version == 3 && header.total_elements < header.nel) {
    fail(path, "implausible header (owner map shorter than local count)");
  }
  const std::size_t owner_bytes =
      header.version == 3
          ? std::size_t(header.total_elements) * sizeof(std::int32_t)
          : 0;
  const std::size_t points =
      std::size_t(header.n) * header.n * header.n * header.nel;
  const std::size_t payload =
      owner_bytes + std::size_t(header.nfields) * points * sizeof(double);
  if (bytes.size() != header_bytes + payload) {
    fail(path, "payload size mismatch (truncated or trailing garbage)");
  }
  const std::byte* src = bytes.data() + header_bytes;
  if (header.version >= 2) {
    const std::uint32_t actual = crc32(src, payload);
    if (actual != header.payload_crc) {
      throw ChecksumMismatch(path, header.rank, header.epoch,
                             header.payload_crc, actual);
    }
  }
  if (owner != nullptr) {
    owner->assign(header.version == 3 ? std::size_t(header.total_elements) : 0,
                  0);
    if (!owner->empty()) {
      util::copy_bytes(owner->data(), src, owner_bytes);
    }
  }
  src += owner_bytes;
  if (fields != nullptr) {
    fields->assign(header.nfields, std::vector<double>(points));
    for (auto& field : *fields) {
      util::copy_bytes(field.data(), src, points * sizeof(double));
      src += points * sizeof(double);
    }
  }
  return header;
}

namespace {
// Injected short-write threshold (set_write_failure_after); < 0 = off.
std::atomic<long long> g_write_fail_after{-1};
}  // namespace

void set_write_failure_after(long long bytes) {
  g_write_fail_after.store(bytes, std::memory_order_relaxed);
}

void write_file_atomic(const std::string& path,
                       std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (!f) fail(path, "cannot open " + tmp + " for writing");
    const long long limit =
        g_write_fail_after.load(std::memory_order_relaxed);
    if (limit >= 0 && std::size_t(limit) < bytes.size()) {
      // Simulated ENOSPC: part of the payload lands in the tmp file, then
      // the device reports a short write. Follow the real short-write
      // path: remove the staging file, never touch the published name.
      (void)std::fwrite(bytes.data(), 1, std::size_t(limit), f.get());
      f = File(nullptr);
      std::remove(tmp.c_str());
      fail(path, "write failed: short write (injected ENOSPC after " +
                     std::to_string(limit) + " bytes)");
    }
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
      std::remove(tmp.c_str());
      fail(path, "write failed");
    }
    if (std::fflush(f.get()) != 0) {
      std::remove(tmp.c_str());
      fail(path, "flush failed");
    }
#ifndef _WIN32
    // Push the bytes to stable storage before the rename publishes the
    // file: rename-then-sync could expose a zero-length file after a crash.
    if (::fsync(::fileno(f.get())) != 0) {
      std::remove(tmp.c_str());
      fail(path, "fsync failed");
    }
#endif
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    fail(path, "rename from " + tmp + " failed: " + ec.message());
  }
}

std::vector<std::byte> read_file(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) fail(path, "cannot open for reading");
  if (std::fseek(f.get(), 0, SEEK_END) != 0) fail(path, "seek failed");
  const long size = std::ftell(f.get());
  if (size < 0) fail(path, "tell failed");
  if (std::fseek(f.get(), 0, SEEK_SET) != 0) fail(path, "seek failed");
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    fail(path, "read failed");
  }
  return bytes;
}

void write_checkpoint(const std::string& path, const CheckpointHeader& header,
                      std::span<const double* const> fields,
                      std::size_t points) {
  write_file_atomic(path, serialize_checkpoint(header, fields, points));
}

CheckpointHeader read_checkpoint(const std::string& path,
                                 std::vector<std::vector<double>>* fields,
                                 std::vector<std::int32_t>* owner) {
  return parse_checkpoint(read_file(path), path, fields, owner);
}

CheckpointHeader validate_checkpoint(const std::string& path) {
  return parse_checkpoint(read_file(path), path, nullptr);
}

std::string rank_checkpoint_path(const std::string& directory,
                                 const std::string& prefix, int rank) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%05d", rank);
  return directory + "/" + prefix + ".r" + buf + ".chk";
}

}  // namespace cmtbone::io
