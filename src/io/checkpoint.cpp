#include "io/checkpoint.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace cmtbone::io {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("checkpoint " + path + ": " + what);
}
}  // namespace

void write_checkpoint(const std::string& path, const CheckpointHeader& header,
                      std::span<const double* const> fields,
                      std::size_t points) {
  if (int(fields.size()) != header.nfields) {
    fail(path, "field count does not match header");
  }
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) fail(path, "cannot open for writing");
  if (std::fwrite(&header, sizeof header, 1, f.get()) != 1) {
    fail(path, "header write failed");
  }
  for (const double* field : fields) {
    if (std::fwrite(field, sizeof(double), points, f.get()) != points) {
      fail(path, "payload write failed");
    }
  }
  if (std::fflush(f.get()) != 0) fail(path, "flush failed");
}

CheckpointHeader read_checkpoint(const std::string& path,
                                 std::vector<std::vector<double>>* fields) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) fail(path, "cannot open for reading");
  CheckpointHeader header;
  if (std::fread(&header, sizeof header, 1, f.get()) != 1) {
    fail(path, "header read failed");
  }
  CheckpointHeader expected;
  if (header.magic != expected.magic) fail(path, "bad magic");
  if (header.version != expected.version) fail(path, "unsupported version");
  if (header.n < 2 || header.nel < 0 || header.nfields < 0) {
    fail(path, "implausible header");
  }
  const std::size_t points =
      std::size_t(header.n) * header.n * header.n * header.nel;
  fields->assign(header.nfields, std::vector<double>(points));
  for (auto& field : *fields) {
    if (std::fread(field.data(), sizeof(double), points, f.get()) != points) {
      fail(path, "payload read failed (truncated?)");
    }
  }
  return header;
}

std::string rank_checkpoint_path(const std::string& directory,
                                 const std::string& prefix, int rank) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%05d", rank);
  return directory + "/" + prefix + ".r" + buf + ".chk";
}

}  // namespace cmtbone::io
