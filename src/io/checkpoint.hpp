#pragma once
// Per-rank binary checkpointing of field data.
//
// Production Nek runs checkpoint conserved variables so long simulations
// survive machine faults; the mini-app carries the same capability so its
// I/O phase can be profiled alongside compute and comm. Format: a fixed
// little-endian header (magic, version, n, nel, nfields, steps, time, and —
// since version 2 — a CRC32 of the payload plus the writing rank and
// checkpoint epoch) followed by the raw field payload. One file per rank,
// as Nek5000 does in its one-file-per-processor mode.
//
// Version 3 (dynamic load balancing) additionally records the element
// ownership map: the header grows a total_elements count and the payload is
// prefixed with total_elements int32 owner ranks (the replicated gid->rank
// map) ahead of the field data; the CRC covers both. Version 1/2 files have
// no map and imply the static block partition.
//
// Durability contract (the resilience layer depends on it):
//   * Writes are torn-write-safe: the bytes go to `<path>.tmp`, are
//     fsync'd, and only then renamed over `path`, so a crash mid-write
//     never leaves a truncated file under the real name.
//   * Version-2 readers verify the payload CRC32 and throw
//     ChecksumMismatch (carrying rank/path/epoch) on silent corruption.
//   * Version-1 files (no CRC trailer) remain readable.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmtbone::io {

struct CheckpointHeader {
  std::uint64_t magic = 0x434d54424f4e4531ull;  // "CMTBONE1"
  std::uint32_t version = 2;
  std::int32_t n = 0;
  std::int32_t nel = 0;
  std::int32_t nfields = 0;
  std::int64_t steps = 0;
  double time = 0.0;
  // --- version 2 trailer ---------------------------------------------------
  std::uint32_t payload_crc = 0;  // CRC32 (IEEE) of the raw payload
  std::int32_t rank = -1;         // writing rank (-1 when not rank-addressed)
  std::int64_t epoch = -1;        // coordinated-checkpoint epoch (-1 = none)
  // --- version 3 trailer ---------------------------------------------------
  // Global element count = length of the int32 owner map that prefixes the
  // payload. 0 in v1/v2 files (static block partition implied).
  std::int64_t total_elements = 0;
};

// The on-disk layout is the in-memory layout: the first 40 bytes are the
// version-1 header, the v2 trailer extends it to 56 and the v3 trailer to
// 64. Reads of older files parse only the prefix, so the struct must never
// be reordered.
inline constexpr std::size_t kHeaderBytesV1 = 40;
inline constexpr std::size_t kHeaderBytesV2 = 56;
inline constexpr std::size_t kHeaderBytesV3 = 64;
static_assert(sizeof(CheckpointHeader) == kHeaderBytesV3,
              "checkpoint header layout is part of the file format");
static_assert(offsetof(CheckpointHeader, payload_crc) == kHeaderBytesV1,
              "v2 trailer must start exactly where the v1 header ended");
static_assert(offsetof(CheckpointHeader, total_elements) == kHeaderBytesV2,
              "v3 trailer must start exactly where the v2 header ended");

/// CRC32 (IEEE 802.3, reflected) over `bytes` bytes. Pass the previous
/// return value as `seed` to checksum data in chunks.
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

/// A checkpoint whose payload CRC does not match its header: the file is
/// present and well-formed but silently corrupt. Distinct from the generic
/// runtime_error failures so recovery can fall back to a buddy copy or an
/// older epoch instead of treating the file as absent.
struct ChecksumMismatch : std::runtime_error {
  std::string path;
  int rank = -1;
  long long epoch = -1;
  ChecksumMismatch(std::string file_path, int file_rank, long long file_epoch,
                   std::uint32_t expected, std::uint32_t actual);
};

/// Serialize header + fields (each `points` doubles) to bytes, filling the
/// header's payload CRC. The result is exactly what write_checkpoint puts
/// on disk — the resilience layer ships the same bytes to a buddy rank.
/// With a non-empty `owner` map the file is written as version 3 (the map
/// prefixes the field payload); otherwise the historical version-2 bytes.
std::vector<std::byte> serialize_checkpoint(
    const CheckpointHeader& header, std::span<const double* const> fields,
    std::size_t points, std::span<const std::int32_t> owner = {});

/// Parse serialized checkpoint bytes (v1..v3); validates magic, version,
/// payload size, and (v2+) the payload CRC. Fills `fields` and `owner`
/// when non-null (`owner` is cleared for v1/v2 files — no map stored, the
/// static block partition is implied). `path` is used only for messages.
CheckpointHeader parse_checkpoint(std::span<const std::byte> bytes,
                                  const std::string& path,
                                  std::vector<std::vector<double>>* fields,
                                  std::vector<std::int32_t>* owner = nullptr);

/// Durably write `bytes` to `path` via `<path>.tmp` + fsync + atomic
/// rename. Throws std::runtime_error on I/O failure (the tmp file is
/// removed on a failed attempt).
void write_file_atomic(const std::string& path,
                       std::span<const std::byte> bytes);

/// Testing hook: make write_file_atomic fail as a full device would after
/// `bytes` payload bytes reached the tmp file (a short write / ENOSPC).
/// The contract under that failure — clear error, tmp removed, the
/// published file never touched — is what the error-path tests pin.
/// Process-wide; < 0 disables (the default).
void set_write_failure_after(long long bytes);

/// Read a whole file into memory. Throws std::runtime_error on failure.
std::vector<std::byte> read_file(const std::string& path);

/// Write fields (each `points` doubles) to `path`, torn-write-safe.
/// Throws std::runtime_error on I/O failure.
void write_checkpoint(const std::string& path, const CheckpointHeader& header,
                      std::span<const double* const> fields,
                      std::size_t points);

/// Read a checkpoint; returns the header and fills `fields` (resized to
/// header.nfields vectors of the stored point count) and, for v3 files,
/// `owner`. Validates magic, version, payload size, and (v2+) the CRC.
CheckpointHeader read_checkpoint(const std::string& path,
                                 std::vector<std::vector<double>>* fields,
                                 std::vector<std::int32_t>* owner = nullptr);

/// Full-file validation (header + payload CRC) without keeping the data.
/// Returns the header; throws like read_checkpoint on any defect.
CheckpointHeader validate_checkpoint(const std::string& path);

/// Conventional per-rank checkpoint file name.
std::string rank_checkpoint_path(const std::string& directory,
                                 const std::string& prefix, int rank);

}  // namespace cmtbone::io
