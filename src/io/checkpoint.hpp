#pragma once
// Per-rank binary checkpointing of field data.
//
// Production Nek runs checkpoint conserved variables so long simulations
// survive machine faults; the mini-app carries the same capability so its
// I/O phase can be profiled alongside compute and comm. Format: a fixed
// little-endian header (magic, version, n, nel, nfields, steps, time)
// followed by the raw field payload. One file per rank, as Nek5000 does in
// its one-file-per-processor mode.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cmtbone::io {

struct CheckpointHeader {
  std::uint64_t magic = 0x434d54424f4e4531ull;  // "CMTBONE1"
  std::uint32_t version = 1;
  std::int32_t n = 0;
  std::int32_t nel = 0;
  std::int32_t nfields = 0;
  std::int64_t steps = 0;
  double time = 0.0;
};

/// Write fields (each `points` doubles) to `path`. Throws std::runtime_error
/// on I/O failure.
void write_checkpoint(const std::string& path, const CheckpointHeader& header,
                      std::span<const double* const> fields,
                      std::size_t points);

/// Read a checkpoint; returns the header and fills `fields` (resized to
/// header.nfields vectors of the stored point count). Validates magic,
/// version, and payload size.
CheckpointHeader read_checkpoint(const std::string& path,
                                 std::vector<std::vector<double>>* fields);

/// Conventional per-rank checkpoint file name.
std::string rank_checkpoint_path(const std::string& directory,
                                 const std::string& prefix, int rank);

}  // namespace cmtbone::io
