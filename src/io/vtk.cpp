#include "io/vtk.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace cmtbone::io {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
}  // namespace

void write_vtk_points(
    const std::string& path, std::size_t points,
    const std::function<std::array<double, 3>(std::size_t)>& coords,
    const std::vector<std::pair<std::string, std::span<const double>>>& fields) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "w"));
  if (!f) throw std::runtime_error("vtk: cannot open " + path);
  std::FILE* out = f.get();

  std::fprintf(out, "# vtk DataFile Version 3.0\n");
  std::fprintf(out, "cmtbone spectral-element field export\n");
  std::fprintf(out, "ASCII\n");
  std::fprintf(out, "DATASET UNSTRUCTURED_GRID\n");
  std::fprintf(out, "POINTS %zu double\n", points);
  for (std::size_t p = 0; p < points; ++p) {
    auto c = coords(p);
    std::fprintf(out, "%.12g %.12g %.12g\n", c[0], c[1], c[2]);
  }
  std::fprintf(out, "CELLS %zu %zu\n", points, 2 * points);
  for (std::size_t p = 0; p < points; ++p) {
    std::fprintf(out, "1 %zu\n", p);
  }
  std::fprintf(out, "CELL_TYPES %zu\n", points);
  for (std::size_t p = 0; p < points; ++p) {
    std::fprintf(out, "1\n");  // VTK_VERTEX
  }
  std::fprintf(out, "POINT_DATA %zu\n", points);
  for (const auto& [name, values] : fields) {
    if (values.size() != points) {
      throw std::runtime_error("vtk: field " + name + " has wrong size");
    }
    std::fprintf(out, "SCALARS %s double 1\nLOOKUP_TABLE default\n",
                 name.c_str());
    for (std::size_t p = 0; p < points; ++p) {
      std::fprintf(out, "%.12g\n", values[p]);
    }
  }
}

}  // namespace cmtbone::io
