#pragma once
// Legacy-VTK export of spectral-element fields for visualization.
//
// Each GLL point becomes a VTK vertex carrying the field values; ParaView
// (or any VTK reader) can render the point cloud or resample it. One file
// per rank; a driver-level helper stitches the naming.

#include <array>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace cmtbone::io {

/// Write a legacy-VTK (ASCII, UNSTRUCTURED_GRID of vertices) file.
/// `coords(p)` returns the physical position of point p in [0, points);
/// each entry of `fields` is {name, values} with values.size() == points.
void write_vtk_points(
    const std::string& path, std::size_t points,
    const std::function<std::array<double, 3>(std::size_t)>& coords,
    const std::vector<std::pair<std::string, std::span<const double>>>& fields);

}  // namespace cmtbone::io
