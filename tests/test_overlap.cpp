// Split-phase exchange overlap: interior/boundary classification, the
// begin/finish halves of FaceExchange and GatherScatter, and — the contract
// the whole feature rests on — bit-identical results between the overlapped
// and blocking RHS paths on every topology, including chaos-perturbed
// schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/face_exchange.hpp"
#include "mesh/faces.hpp"
#include "mesh/partition.hpp"
#include "util/rng.hpp"

namespace {

using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::core::Config;
using cmtbone::core::Driver;
using cmtbone::core::FaceBackend;
using cmtbone::core::Physics;
using cmtbone::core::TimeIntegrator;
using cmtbone::mesh::BoxSpec;
using cmtbone::mesh::Partition;
using cmtbone::util::SplitMix64;

// --- interior/boundary classification ---------------------------------------

BoxSpec spec_for(int n, int e, int px, int py, int pz) {
  BoxSpec spec;
  spec.n = n;
  spec.ex = spec.ey = spec.ez = e;
  spec.px = px;
  spec.py = py;
  spec.pz = pz;
  return spec;
}

TEST(ElementClasses, PartitionCoveredExactlyOnceInAscendingOrder) {
  for (auto [px, py, pz] : {std::array<int, 3>{1, 1, 1},
                            std::array<int, 3>{2, 1, 1},
                            std::array<int, 3>{2, 2, 1},
                            std::array<int, 3>{3, 1, 1}}) {
    BoxSpec spec = spec_for(4, 6, px, py, pz);
    for (int rank = 0; rank < spec.nranks(); ++rank) {
      Partition part(spec, rank);
      auto cls = cmtbone::mesh::classify_interior_boundary(part);
      EXPECT_TRUE(std::is_sorted(cls.interior.begin(), cls.interior.end()));
      EXPECT_TRUE(std::is_sorted(cls.boundary.begin(), cls.boundary.end()));
      std::vector<int> all(cls.interior);
      all.insert(all.end(), cls.boundary.begin(), cls.boundary.end());
      std::sort(all.begin(), all.end());
      ASSERT_EQ(int(all.size()), part.nel());
      for (int e = 0; e < part.nel(); ++e) EXPECT_EQ(all[e], e);
    }
  }
}

TEST(ElementClasses, SingleRankPeriodicBoxIsAllInterior) {
  // Every periodic neighbor wraps back onto this rank, so no element's
  // surface term waits on a message.
  Partition part(spec_for(4, 3, 1, 1, 1), 0);
  auto cls = cmtbone::mesh::classify_interior_boundary(part);
  EXPECT_EQ(int(cls.interior.size()), part.nel());
  EXPECT_TRUE(cls.boundary.empty());
}

TEST(ElementClasses, BoundaryIsTheRemoteFacingLayer) {
  // ex=8 over px=2: each rank owns gx-slabs of width 4; only the two
  // x-extreme layers (one facing the partner directly, one via the periodic
  // wrap) touch a remote rank.
  BoxSpec spec = spec_for(4, 8, 2, 1, 1);
  for (int rank = 0; rank < 2; ++rank) {
    Partition part(spec, rank);
    auto cls = cmtbone::mesh::classify_interior_boundary(part);
    for (int e : cls.boundary) {
      auto g = part.global_coords(e);
      EXPECT_TRUE(g[0] == part.x0() || g[0] == part.x1() - 1) << e;
    }
    for (int e : cls.interior) {
      auto g = part.global_coords(e);
      EXPECT_TRUE(g[0] > part.x0() && g[0] < part.x1() - 1) << e;
    }
    EXPECT_EQ(cls.boundary.size(), std::size_t(2 * 8 * 8));
  }
}

TEST(ElementClasses, NonPeriodicPhysicalBoundaryDoesNotCount) {
  // One rank, non-periodic: faces at the domain edge mirror locally, so
  // everything stays interior.
  BoxSpec spec = spec_for(4, 3, 1, 1, 1);
  spec.periodic = false;
  Partition part(spec, 0);
  auto cls = cmtbone::mesh::classify_interior_boundary(part);
  EXPECT_TRUE(cls.boundary.empty());
}

// --- FaceExchange begin/finish ----------------------------------------------

TEST(FaceExchangeSplit, BeginFinishBitIdenticalToBlockingExchange) {
  cmtbone::comm::run(2, [](Comm& world) {
    BoxSpec spec = spec_for(4, 4, 2, 1, 1);
    Partition part(spec, world.rank());
    cmtbone::mesh::FaceExchange ex(world, part);

    const int nfields = 3;
    const std::size_t fsz =
        cmtbone::mesh::face_array_size(spec.n, part.nel()) * nfields;
    SplitMix64 rng(77 + world.rank());
    std::vector<double> myfaces(fsz);
    for (double& v : myfaces) v = rng.uniform(-1.0, 1.0);

    std::vector<double> blocking(fsz, -1.0), split(fsz, -2.0);
    ex.exchange(myfaces.data(), blocking.data(), nfields);

    EXPECT_FALSE(ex.in_flight());
    ex.begin(myfaces.data(), split.data(), nfields);
    EXPECT_TRUE(ex.in_flight());
    ex.finish();
    EXPECT_FALSE(ex.in_flight());

    for (std::size_t i = 0; i < fsz; ++i) {
      ASSERT_EQ(blocking[i], split[i]) << "face value " << i;
    }
    // finish() without a begin() is a harmless no-op.
    ex.finish();
  });
}

// --- GatherScatter begin/finish ---------------------------------------------

TEST(GatherScatterSplit, SplitPhaseBitIdenticalToExecMany) {
  for (auto method : {cmtbone::gs::Method::kPairwise,
                      cmtbone::gs::Method::kCrystalRouter,
                      cmtbone::gs::Method::kAllReduce}) {
    cmtbone::comm::run(3, [&](Comm& world) {
      // Each rank shares one id with its successor and everyone shares 42.
      const int r = world.rank();
      std::vector<long long> ids = {100 + r, 100 + (r + 1) % 3, 42, 900 + r};
      cmtbone::gs::GatherScatter gs(
          world, std::span<const long long>(ids), method);

      const int nfields = 2;
      SplitMix64 rng(11 + r);
      std::vector<double> ref(ids.size() * nfields);
      for (double& v : ref) v = rng.uniform(-1.0, 1.0);
      std::vector<double> split(ref);

      gs.exec_many(std::span<double>(ref), nfields,
                   cmtbone::gs::ReduceOp::kSum);

      EXPECT_FALSE(gs.split_in_flight());
      gs.exec_many_begin(std::span<double>(split), nfields,
                         cmtbone::gs::ReduceOp::kSum);
      EXPECT_TRUE(gs.split_in_flight());
      gs.exec_many_finish();
      EXPECT_FALSE(gs.split_in_flight());

      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i], split[i])
            << cmtbone::gs::method_name(method) << " value " << i;
      }
      // finish() without a begin() is a harmless no-op.
      gs.exec_many_finish();
    });
  }
}

// --- driver: overlapped RHS is bit-identical to the blocking RHS -------------

using Fields = std::vector<std::vector<double>>;

Config overlap_config(FaceBackend backend, Physics physics) {
  Config cfg;
  cfg.physics = physics;
  cfg.face_backend = backend;
  cfg.n = 5;
  cfg.ex = cfg.ey = cfg.ez = 4;
  cfg.integrator = TimeIntegrator::kRk4;
  cfg.fixed_dt = 1e-3;
  cfg.use_dssum = true;
  cfg.dealias = true;
  cfg.particles_per_rank = 16;
  cfg.particle_coupling = 0.05;
  return cfg;
}

std::vector<Fields> run_sim(int nranks, const Config& cfg, int steps,
                            ChaosEngine* chaos = nullptr) {
  std::vector<Fields> out(nranks);
  cmtbone::comm::RunOptions options;
  options.chaos = chaos;
  cmtbone::comm::run(
      nranks,
      [&](Comm& world) {
        Driver driver(world, cfg);
        driver.initialize(driver.default_ic());
        driver.run(steps);
        Fields f;
        for (int i = 0; i < driver.nfields(); ++i) {
          auto s = driver.field(i);
          f.emplace_back(s.begin(), s.end());
        }
        out[world.rank()] = std::move(f);
      },
      options);
  return out;
}

void expect_bitwise_equal(const std::vector<Fields>& a,
                          const std::vector<Fields>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size()) << "rank " << r;
    for (std::size_t f = 0; f < a[r].size(); ++f) {
      ASSERT_EQ(a[r][f].size(), b[r][f].size());
      for (std::size_t p = 0; p < a[r][f].size(); ++p) {
        ASSERT_EQ(a[r][f][p], b[r][f][p])
            << "rank " << r << " field " << f << " point " << p;
      }
    }
  }
}

TEST(OverlapDriver, BitIdenticalToBlockingDirectBackend) {
  // 1 rank (all interior), 2 ranks, and a non-power-of-two count.
  for (int nranks : {1, 2, 3}) {
    Config cfg = overlap_config(FaceBackend::kDirect, Physics::kEuler);
    auto blocking = run_sim(nranks, cfg, 10);
    cfg.overlap = true;
    auto overlapped = run_sim(nranks, cfg, 10);
    SCOPED_TRACE(nranks);
    expect_bitwise_equal(blocking, overlapped);
  }
}

TEST(OverlapDriver, BitIdenticalToBlockingGsBackend) {
  for (int nranks : {1, 2, 3}) {
    Config cfg = overlap_config(FaceBackend::kGatherScatter, Physics::kEuler);
    auto blocking = run_sim(nranks, cfg, 10);
    cfg.overlap = true;
    auto overlapped = run_sim(nranks, cfg, 10);
    SCOPED_TRACE(nranks);
    expect_bitwise_equal(blocking, overlapped);
  }
}

TEST(OverlapDriver, BitIdenticalSingleFieldAdvection) {
  Config cfg = overlap_config(FaceBackend::kDirect, Physics::kAdvection);
  cfg.use_dssum = false;  // pure DG path
  auto blocking = run_sim(2, cfg, 10);
  cfg.overlap = true;
  auto overlapped = run_sim(2, cfg, 10);
  expect_bitwise_equal(blocking, overlapped);
}

TEST(OverlapDriver, ChaosPerturbedOverlapStillBitIdentical) {
  // Chaos injects delays, message holds and a straggler rank — it perturbs
  // the schedule, never the data. The overlapped run under chaos must still
  // reproduce the unperturbed blocking run bit for bit.
  const int nranks = 3;
  Config cfg = overlap_config(FaceBackend::kDirect, Physics::kEuler);
  auto blocking = run_sim(nranks, cfg, 10);

  for (std::uint64_t seed : {3u, 17u}) {
    ChaosPolicy policy;
    policy.seed = seed;
    policy.delay_probability = 0.3;
    policy.max_delay_us = 200;
    policy.hold_probability = 0.3;
    policy.max_hold_ticks = 6;
    policy.rank_slowdown = {3.0, 1.0, 1.0};
    ChaosEngine engine(policy, nranks);

    Config overlap_cfg = cfg;
    overlap_cfg.overlap = true;
    auto overlapped = run_sim(nranks, overlap_cfg, 10, &engine);
    SCOPED_TRACE(seed);
    expect_bitwise_equal(blocking, overlapped);
  }
}

TEST(OverlapDriver, ThreadedOverlapUnderChaosStillBitIdentical) {
  // Stack all three schedule perturbers at once — overlap splitting, chaos
  // delays/holds/stragglers, and the worker pool moving element chunks
  // between threads — and demand the serial blocking answer bit for bit.
  const int nranks = 3;
  Config cfg = overlap_config(FaceBackend::kDirect, Physics::kEuler);
  auto blocking = run_sim(nranks, cfg, 10);

  for (std::uint64_t seed : {5u, 23u}) {
    ChaosPolicy policy;
    policy.seed = seed;
    policy.delay_probability = 0.3;
    policy.max_delay_us = 200;
    policy.hold_probability = 0.3;
    policy.max_hold_ticks = 6;
    policy.rank_slowdown = {3.0, 1.0, 1.0};
    ChaosEngine engine(policy, nranks);

    Config threaded = cfg;
    threaded.overlap = true;
    threaded.threads_per_rank = 4;
    auto perturbed = run_sim(nranks, threaded, 10, &engine);
    SCOPED_TRACE(seed);
    expect_bitwise_equal(blocking, perturbed);
  }
}

TEST(OverlapDriver, OverlapStatsAccumulateOnlyOnOverlapPath) {
  cmtbone::comm::run(2, [](Comm& world) {
    Config cfg = overlap_config(FaceBackend::kDirect, Physics::kEuler);
    cfg.overlap = true;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(2);
    const auto& stats = driver.overlap_stats();
    // RK4: four RHS evaluations per step, one window each.
    EXPECT_EQ(stats.windows, 2 * 4);
    EXPECT_GT(stats.compute_seconds, 0.0);
    EXPECT_GE(stats.hidden_fraction(), 0.0);
    EXPECT_LE(stats.hidden_fraction(), 1.0);

    Config off = cfg;
    off.overlap = false;
    Driver blocking_driver(world, off);
    blocking_driver.initialize(blocking_driver.default_ic());
    blocking_driver.run(1);
    EXPECT_EQ(blocking_driver.overlap_stats().windows, 0);
  });
}

}  // namespace
