// Tests for the chaos module: seeded schedule perturbation, reproducibility,
// FIFO preservation under message holds, forced-abort unwinding, and the
// replay-a-failing-seed harness shared with chaos_stress.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>

#include "chaos/chaos.hpp"
#include "chaos_workloads.hpp"
#include "comm/runtime.hpp"

namespace {

using cmtbone::chaos::ChaosAbortInjected;
using cmtbone::chaos::ChaosEngine;
using cmtbone::chaos::ChaosPolicy;
using cmtbone::comm::Comm;
using cmtbone::comm::DeadlockDetected;
using cmtbone::comm::JobAborted;
using cmtbone::comm::ReduceOp;

std::uint64_t run_with_policy(const ChaosPolicy& policy, int nranks,
                              const std::function<void(Comm&)>& body) {
  ChaosEngine engine(policy, nranks);
  cmtbone::comm::RunOptions options;
  options.chaos = &engine;
  cmtbone::comm::run(nranks, body, options);
  return engine.digest();
}

// ---- reproducibility --------------------------------------------------------

TEST(Chaos, SameSeedSameDigest) {
  // The digest summarizes every injection decision; identical digests on
  // repeated runs mean the same seed reproduces the same schedule even
  // though the OS interleaves the rank threads differently each time.
  for (const char* name : {"p2p", "gs_crystal"}) {
    std::uint64_t d1 = chaosws::run_workload(name, 11);
    std::uint64_t d2 = chaosws::run_workload(name, 11);
    EXPECT_EQ(d1, d2) << "workload " << name;
  }
}

TEST(Chaos, DifferentSeedsGiveDifferentSchedules) {
  EXPECT_NE(chaosws::run_workload("p2p", 1), chaosws::run_workload("p2p", 2));
}

TEST(Chaos, ForSeedZeroIsQuiescent) {
  ChaosPolicy off = ChaosPolicy::for_seed(0, 4);
  EXPECT_EQ(off.delay_probability, 0.0);
  EXPECT_EQ(off.hold_probability, 0.0);
  EXPECT_EQ(off.abort_rank, -1);
}

// ---- FIFO preservation under aggressive reordering --------------------------

TEST(Chaos, HeavyHoldsPreservePerSourceTagOrder) {
  // Hold 90% of messages for multiple ticks: deliveries are massively
  // reordered across streams, but within one (source, tag) stream order
  // must survive, and every message must eventually arrive.
  ChaosPolicy policy;
  policy.seed = 42;
  policy.hold_probability = 0.9;
  policy.max_hold_ticks = 12;
  policy.delay_probability = 0.2;
  policy.max_delay_us = 30;

  constexpr int kMsgs = 20;
  constexpr int kTag = 7;
  run_with_policy(policy, 3, [&](Comm& world) {
    if (world.rank() < 2) {
      for (int i = 0; i < kMsgs; ++i) {
        long long v = world.rank() * 1000 + i;
        world.send(std::span<const long long>(&v, 1), 2, kTag);
      }
      return;
    }
    int next[2] = {0, 0};
    for (int n = 0; n < 2 * kMsgs; ++n) {
      long long v = -1;
      auto s = world.recv(std::span<long long>(&v, 1),
                          cmtbone::comm::kAnySource, kTag);
      ASSERT_TRUE(s.source == 0 || s.source == 1);
      EXPECT_EQ(v, s.source * 1000 + next[s.source])
          << "stream (" << s.source << ", tag " << kTag << ") reordered";
      ++next[s.source];
    }
    EXPECT_EQ(next[0], kMsgs);
    EXPECT_EQ(next[1], kMsgs);
  });
}

// ---- forced abort -----------------------------------------------------------

TEST(Chaos, ForcedAbortUnwindsAllRanksWithoutHang) {
  ChaosPolicy policy;
  policy.seed = 9;
  policy.abort_rank = 2;
  policy.abort_at_op = 7;

  constexpr int kRanks = 4;
  std::atomic<int> job_aborted_unwinds{0};
  auto body = [&](Comm& world) {
    try {
      // Never returns on its own: only the injected abort ends the job.
      for (;;) {
        (void)world.allreduce_one<long long>(world.rank(), ReduceOp::kSum);
      }
    } catch (const JobAborted&) {
      job_aborted_unwinds.fetch_add(1);
      throw;
    }
  };
  EXPECT_THROW(run_with_policy(policy, kRanks, body), ChaosAbortInjected);
  // The injected abort is rank 2's own exception; every other rank must
  // have unwound via JobAborted rather than hanging in a collective.
  EXPECT_EQ(job_aborted_unwinds.load(), kRanks - 1);
}

// ---- replay harness ---------------------------------------------------------

TEST(Chaos, ReplayByNameMatchesDirectRun) {
  EXPECT_EQ(chaosws::replay("crystal/5"), chaosws::run_workload("crystal", 5));
}

TEST(Chaos, ReplayRejectsMalformedSpecs) {
  EXPECT_THROW(chaosws::replay("no-slash"), std::runtime_error);
  EXPECT_THROW(chaosws::replay("p2p/"), std::runtime_error);
  EXPECT_THROW(chaosws::replay("p2p/12x"), std::runtime_error);
  EXPECT_THROW(chaosws::run_workload("bogus", 1), std::runtime_error);
}

TEST(Chaos, AllWorkloadsPassAFewSeeds) {
  for (const std::string& name : chaosws::workload_names()) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      EXPECT_NO_THROW(chaosws::run_workload(name, seed))
          << name << "/" << seed;
    }
  }
}

// ---- diagnosable failure text ----------------------------------------------

TEST(Chaos, DeadlockMessageNamesRankSourceAndTag) {
  try {
    cmtbone::comm::run(2, [](Comm& world) {
      if (world.rank() == 0) {
        long long v = 0;
        world.recv(std::span<long long>(&v, 1), 1, 5);  // never sent
      }
    });
    FAIL() << "expected DeadlockDetected";
  } catch (const DeadlockDetected& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("src=1"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=5"), std::string::npos) << what;
  }
}

TEST(Chaos, JobAbortedMessageNamesBlockedReceive) {
  std::string captured;
  try {
    cmtbone::comm::run(2, [&](Comm& world) {
      if (world.rank() == 0) {
        // Let rank 1 actually block in its receive before aborting, so the
        // JobAborted it sees carries the blocked-receive detail (an abort
        // caught before the wait uses the generic message).
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        throw std::runtime_error("boom");
      }
      try {
        long long v = 0;
        world.recv(std::span<long long>(&v, 1), 0, 7);
      } catch (const JobAborted& e) {
        captured = e.what();
        throw;
      }
    });
    FAIL() << "expected the user exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_NE(captured.find("rank 1"), std::string::npos) << captured;
  EXPECT_NE(captured.find("src=0"), std::string::npos) << captured;
  EXPECT_NE(captured.find("tag=7"), std::string::npos) << captured;
}

// ---- step-boundary kill semantics ------------------------------------------

TEST(ChaosKillStep, OneShotByDefault) {
  ChaosPolicy policy;
  policy.kill_rank = 0;
  policy.kill_step = 5;
  ChaosEngine engine(policy, 2);
  engine.on_step(0, 4);  // before the kill point: quiet
  EXPECT_THROW(engine.on_step(0, 5), ChaosAbortInjected);
  // The historical contract: one fire ever, so a recovery re-run under the
  // same engine rides past the kill point.
  engine.on_step(0, 5);
  engine.on_step(0, 6);
  engine.on_step(0, 100);
  EXPECT_EQ(engine.kill_fires(), 1);
}

TEST(ChaosKillStep, OtherRankNeverFires) {
  ChaosPolicy policy;
  policy.kill_rank = 1;
  policy.kill_step = 3;
  ChaosEngine engine(policy, 2);
  engine.on_step(0, 3);
  engine.on_step(0, 4);
  EXPECT_EQ(engine.kill_fires(), 0);
  EXPECT_THROW(engine.on_step(1, 3), ChaosAbortInjected);
}

TEST(ChaosKillStep, PeriodicRearmNeverRefiresOnReplayedSteps) {
  ChaosPolicy policy;
  policy.kill_rank = 0;
  policy.kill_step = 5;
  policy.kill_period = 3;
  policy.kill_max_count = 100;
  ChaosEngine engine(policy, 1);
  EXPECT_THROW(engine.on_step(0, 5), ChaosAbortInjected);
  // A recovery attempt replays the rolled-back steps; the re-armed target
  // is fired_step + period, strictly past the last fire, so the replay is
  // never killed at the same point and the job always makes progress.
  engine.on_step(0, 3);
  engine.on_step(0, 4);
  engine.on_step(0, 5);
  engine.on_step(0, 6);
  engine.on_step(0, 7);
  EXPECT_EQ(engine.kill_fires(), 1);
  EXPECT_THROW(engine.on_step(0, 8), ChaosAbortInjected);
  EXPECT_EQ(engine.kill_fires(), 2);
}

TEST(ChaosKillStep, OvershootingTheTargetStillFires) {
  // A replay that checkpoints past the armed step (e.g. restore lands at a
  // later epoch) must still hit the fault at the next boundary reached.
  ChaosPolicy policy;
  policy.kill_rank = 0;
  policy.kill_step = 5;
  policy.kill_period = 2;
  policy.kill_max_count = 100;
  ChaosEngine engine(policy, 1);
  EXPECT_THROW(engine.on_step(0, 9), ChaosAbortInjected);  // first reach >= 5
  // Re-armed at 9 + 2 = 11, not at the stale 7.
  engine.on_step(0, 10);
  EXPECT_THROW(engine.on_step(0, 11), ChaosAbortInjected);
  EXPECT_EQ(engine.kill_fires(), 2);
}

TEST(ChaosKillStep, MaxCountBoundsTheFires) {
  ChaosPolicy policy;
  policy.kill_rank = 0;
  policy.kill_step = 2;
  policy.kill_period = 1;
  policy.kill_max_count = 2;
  ChaosEngine engine(policy, 1);
  EXPECT_THROW(engine.on_step(0, 2), ChaosAbortInjected);
  EXPECT_THROW(engine.on_step(0, 3), ChaosAbortInjected);
  for (long long s = 2; s < 50; ++s) engine.on_step(0, s);
  EXPECT_EQ(engine.kill_fires(), 2);
}

}  // namespace
