// Mesh substrate: partitioning, global numbering, face maps, face exchange.

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "comm/runtime.hpp"
#include "mesh/face_exchange.hpp"
#include "mesh/geometry.hpp"
#include "mesh/face_numbering.hpp"
#include "mesh/faces.hpp"
#include "mesh/numbering.hpp"
#include "mesh/partition.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::mesh::BoxSpec;
using cmtbone::mesh::FaceExchange;
using cmtbone::mesh::Partition;

BoxSpec spec_of(int n, int ex, int ey, int ez, int px, int py, int pz,
                bool periodic = true) {
  BoxSpec s;
  s.n = n;
  s.ex = ex;
  s.ey = ey;
  s.ez = ez;
  s.px = px;
  s.py = py;
  s.pz = pz;
  s.periodic = periodic;
  return s;
}

TEST(BoxSpec, ValidationRejectsBadGrids) {
  EXPECT_THROW(spec_of(1, 4, 4, 4, 1, 1, 1).validate(), std::invalid_argument);
  EXPECT_THROW(spec_of(5, 0, 4, 4, 1, 1, 1).validate(), std::invalid_argument);
  EXPECT_THROW(spec_of(5, 2, 4, 4, 4, 1, 1).validate(), std::invalid_argument);
  EXPECT_NO_THROW(spec_of(5, 4, 4, 4, 2, 2, 1).validate());
}

TEST(BoxSpec, DefaultProcGridIsNearCubicFactorization) {
  auto g256 = BoxSpec::default_proc_grid(256);
  EXPECT_EQ(g256[0] * g256[1] * g256[2], 256);
  EXPECT_GE(g256[0], g256[1]);
  EXPECT_GE(g256[1], g256[2]);
  auto g8 = BoxSpec::default_proc_grid(8);
  EXPECT_EQ(g8[0], 2);
  EXPECT_EQ(g8[1], 2);
  EXPECT_EQ(g8[2], 2);
  auto g7 = BoxSpec::default_proc_grid(7);  // prime: 7x1x1
  EXPECT_EQ(g7[0] * g7[1] * g7[2], 7);
}

TEST(Partition, Fig7SetupMatchesPaper) {
  // Fig. 7: 256 processors (8,8,4), elements (40,40,16), local (5,5,4),
  // 100 elements per process, 25600 total.
  BoxSpec spec = spec_of(10, 40, 40, 16, 8, 8, 4);
  EXPECT_EQ(spec.nranks(), 256);
  EXPECT_EQ(spec.total_elements(), 25600);
  for (int r = 0; r < 256; ++r) {
    Partition part(spec, r);
    EXPECT_EQ(part.nelx(), 5);
    EXPECT_EQ(part.nely(), 5);
    EXPECT_EQ(part.nelz(), 4);
    EXPECT_EQ(part.nel(), 100);
  }
}

TEST(Partition, BlocksTileTheBoxExactly) {
  BoxSpec spec = spec_of(5, 7, 5, 3, 3, 2, 2);  // non-divisible extents
  std::set<std::tuple<int, int, int>> covered;
  for (int r = 0; r < spec.nranks(); ++r) {
    Partition part(spec, r);
    EXPECT_GT(part.nel(), 0);
    for (int z = part.z0(); z < part.z1(); ++z) {
      for (int y = part.y0(); y < part.y1(); ++y) {
        for (int x = part.x0(); x < part.x1(); ++x) {
          auto [it, fresh] = covered.insert({x, y, z});
          EXPECT_TRUE(fresh) << "element covered twice";
        }
      }
    }
  }
  EXPECT_EQ(covered.size(), std::size_t(spec.total_elements()));
}

TEST(Partition, OwnerOfAgreesWithBlocks) {
  BoxSpec spec = spec_of(5, 7, 5, 3, 3, 2, 2);
  Partition any(spec, 0);
  for (int r = 0; r < spec.nranks(); ++r) {
    Partition part(spec, r);
    for (int z = part.z0(); z < part.z1(); ++z) {
      for (int y = part.y0(); y < part.y1(); ++y) {
        for (int x = part.x0(); x < part.x1(); ++x) {
          EXPECT_EQ(any.owner_of(x, y, z), r);
        }
      }
    }
  }
}

TEST(Partition, LocalIndexRoundTrips) {
  BoxSpec spec = spec_of(5, 6, 4, 4, 2, 2, 1);
  for (int r = 0; r < spec.nranks(); ++r) {
    Partition part(spec, r);
    for (int e = 0; e < part.nel(); ++e) {
      auto g = part.global_coords(e);
      EXPECT_EQ(part.local_index(g[0], g[1], g[2]), e);
    }
  }
}

TEST(Partition, NeighborRanksPeriodicWrap) {
  BoxSpec spec = spec_of(5, 4, 4, 4, 2, 2, 1);
  Partition p0(spec, 0);  // coords (0,0,0)
  EXPECT_EQ(p0.neighbor_rank(1, 0, 0), 1);
  EXPECT_EQ(p0.neighbor_rank(-1, 0, 0), 1);  // wraps
  EXPECT_EQ(p0.neighbor_rank(0, 1, 0), 2);
  EXPECT_EQ(p0.neighbor_rank(0, 0, 1), 0);   // pz=1 wraps to self
  BoxSpec open = spec_of(5, 4, 4, 4, 2, 2, 1, /*periodic=*/false);
  Partition q0(open, 0);
  EXPECT_EQ(q0.neighbor_rank(-1, 0, 0), -1);  // physical boundary
}

// --- global numbering ---------------------------------------------------------

TEST(Numbering, SharedFacePointsGetEqualIds) {
  // Single rank, 2x1x1 elements: the x-interface points of element 0 and 1
  // must carry identical ids.
  BoxSpec spec = spec_of(4, 2, 1, 1, 1, 1, 1, /*periodic=*/false);
  Partition part(spec, 0);
  auto ids = cmtbone::mesh::global_gll_ids(part);
  const int n = spec.n;
  auto at = [&](int e, int i, int j, int k) {
    return ids[i + n * (j + n * (k + std::size_t(n) * e))];
  };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(at(0, n - 1, j, k), at(1, 0, j, k));
      EXPECT_NE(at(0, 0, j, k), at(1, 0, j, k));
    }
  }
}

TEST(Numbering, PeriodicWrapIdentifiesOppositeBoundaries) {
  BoxSpec spec = spec_of(3, 2, 1, 1, 1, 1, 1, /*periodic=*/true);
  Partition part(spec, 0);
  auto ids = cmtbone::mesh::global_gll_ids(part);
  const int n = spec.n;
  auto at = [&](int e, int i, int j, int k) {
    return ids[i + n * (j + n * (k + std::size_t(n) * e))];
  };
  // +x face of the last element wraps onto the -x face of the first.
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(at(1, n - 1, j, k), at(0, 0, j, k));
    }
  }
}

TEST(Numbering, MultiplicityCountsMatchStencil) {
  // Interior points appear once, face points twice, edge points four
  // times, corner points eight times (periodic 2x2x2 box).
  BoxSpec spec = spec_of(3, 2, 2, 2, 1, 1, 1);
  Partition part(spec, 0);
  auto ids = cmtbone::mesh::global_gll_ids(part);
  std::map<long long, int> mult;
  for (long long id : ids) mult[id]++;
  std::map<int, int> histogram;
  for (auto& [id, m] : mult) histogram[m]++;
  // Multiplicities on a periodic conforming mesh are 1, 2, 4, or 8.
  for (auto& [m, count] : histogram) {
    EXPECT_TRUE(m == 1 || m == 2 || m == 4 || m == 8) << "multiplicity " << m;
  }
  EXPECT_EQ(cmtbone::mesh::total_gll_points(spec),
            static_cast<long long>(mult.size()));
}

TEST(Numbering, ParallelIdsAgreeWithSerialOracle) {
  // The ids a rank derives for its elements must equal those the serial
  // (single-rank) partition derives for the same global elements.
  BoxSpec par = spec_of(4, 4, 2, 2, 2, 2, 1);
  BoxSpec ser = spec_of(4, 4, 2, 2, 1, 1, 1);
  Partition serial(ser, 0);
  auto serial_ids = cmtbone::mesh::global_gll_ids(serial);
  const int n = par.n;
  const std::size_t elem = std::size_t(n) * n * n;
  for (int r = 0; r < par.nranks(); ++r) {
    Partition part(par, r);
    auto ids = cmtbone::mesh::global_gll_ids(part);
    for (int e = 0; e < part.nel(); ++e) {
      auto g = part.global_coords(e);
      int se = serial.local_index(g[0], g[1], g[2]);
      for (std::size_t p = 0; p < elem; ++p) {
        ASSERT_EQ(ids[e * elem + p], serial_ids[se * elem + p]);
      }
    }
  }
}

// --- face maps ---------------------------------------------------------------

TEST(Faces, Full2FaceExtractsTheRightPoints) {
  const int n = 3, nel = 2;
  std::vector<double> u(n * n * n * nel);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = double(i);
  std::vector<double> faces(cmtbone::mesh::face_array_size(n, nel));
  cmtbone::mesh::full2face(u.data(), faces.data(), n, nel);
  for (int e = 0; e < nel; ++e) {
    for (int f = 0; f < 6; ++f) {
      for (int b = 0; b < n; ++b) {
        for (int a = 0; a < n; ++a) {
          std::size_t fidx =
              cmtbone::mesh::face_offset(f, e, n) + a + std::size_t(n) * b;
          std::size_t vidx = std::size_t(e) * n * n * n +
                             cmtbone::mesh::face_point_volume_index(f, a, b, n);
          EXPECT_DOUBLE_EQ(faces[fidx], u[vidx]);
        }
      }
    }
  }
}

TEST(Faces, Face2FullAddIsAdjointOfExtraction) {
  const int n = 4, nel = 1;
  std::vector<double> u(n * n * n, 0.0);
  std::vector<double> faces(cmtbone::mesh::face_array_size(n, nel), 1.0);
  cmtbone::mesh::face2full_add(faces.data(), u.data(), n, nel);
  // Each volume point receives one unit per face it belongs to: corners 3,
  // edges 2, face interiors 1, interior 0.
  auto on_boundary = [n](int c) { return c == 0 || c == n - 1; };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        int faces_touching = on_boundary(i) + on_boundary(j) + on_boundary(k);
        EXPECT_DOUBLE_EQ(u[i + n * (j + std::size_t(n) * k)],
                         double(faces_touching));
      }
    }
  }
}

TEST(Faces, OppositeFaceConvention) {
  using cmtbone::mesh::opposite_face;
  EXPECT_EQ(opposite_face(0), 1);
  EXPECT_EQ(opposite_face(1), 0);
  EXPECT_EQ(opposite_face(4), 5);
}

// --- face-point numbering (gs-based exchange ids) ------------------------------

TEST(FaceNumbering, EveryInteriorFacePointHasExactlyTwoCopies) {
  BoxSpec spec = spec_of(3, 2, 2, 2, 1, 1, 1, /*periodic=*/true);
  Partition part(spec, 0);
  auto ids = cmtbone::mesh::face_point_gids(part);
  std::map<long long, int> mult;
  for (long long id : ids) mult[id]++;
  for (const auto& [id, m] : mult) {
    EXPECT_EQ(m, 2) << "face-point id " << id;
  }
  // 3 axes x 2 planes... total slots = nel*6*n^2, each id twice.
  EXPECT_EQ(mult.size() * 2, ids.size());
}

TEST(FaceNumbering, NonPeriodicBoundaryPointsAreUnique) {
  BoxSpec spec = spec_of(3, 2, 2, 1, 1, 1, 1, /*periodic=*/false);
  Partition part(spec, 0);
  auto ids = cmtbone::mesh::face_point_gids(part);
  std::map<long long, int> mult;
  for (long long id : ids) mult[id]++;
  int singles = 0, doubles = 0;
  for (const auto& [id, m] : mult) {
    ASSERT_TRUE(m == 1 || m == 2) << m;
    (m == 1 ? singles : doubles)++;
  }
  // 2x2x1 box: interior mesh faces: x: 1*2*1, y: 2*1*1, z: none interior
  // (ez=1, both z faces physical). Each interior face has n^2 paired points.
  EXPECT_EQ(doubles, (1 * 2 + 2 * 1) * 9);
  EXPECT_GT(singles, 0);
}

TEST(FaceNumbering, PairedSlotsAreGeometricallyAdjacent) {
  // The two slots sharing an id must be (element, face f) and its neighbor
  // (element', opposite(f)) at the same (a, b).
  BoxSpec spec = spec_of(3, 2, 2, 2, 1, 1, 1, /*periodic=*/true);
  Partition part(spec, 0);
  auto ids = cmtbone::mesh::face_point_gids(part);
  const int n = spec.n;
  auto slot = [&](int e, int f, int a, int b) {
    return cmtbone::mesh::face_offset(f, e, n) + a + std::size_t(n) * b;
  };
  for (int e = 0; e < part.nel(); ++e) {
    auto g = part.global_coords(e);
    for (int f = 0; f < 6; ++f) {
      int axis = cmtbone::mesh::face_axis(f);
      int dir = cmtbone::mesh::face_side(f) == 0 ? -1 : 1;
      std::array<int, 3> ng = {g[0], g[1], g[2]};
      ng[axis] = (ng[axis] + dir + 2) % 2;  // extent 2 per direction
      int ne = part.local_index(ng[0], ng[1], ng[2]);
      for (int b = 0; b < n; ++b) {
        for (int a = 0; a < n; ++a) {
          ASSERT_EQ(ids[slot(e, f, a, b)],
                    ids[slot(ne, cmtbone::mesh::opposite_face(f), a, b)]);
        }
      }
    }
  }
}

TEST(FaceNumbering, ParallelIdsAgreeWithSerialOracle) {
  BoxSpec par = spec_of(3, 4, 2, 2, 2, 2, 1);
  BoxSpec ser = spec_of(3, 4, 2, 2, 1, 1, 1);
  Partition serial(ser, 0);
  auto serial_ids = cmtbone::mesh::face_point_gids(serial);
  const std::size_t per_elem = cmtbone::mesh::face_array_size(par.n, 1);
  for (int r = 0; r < par.nranks(); ++r) {
    Partition part(par, r);
    auto ids = cmtbone::mesh::face_point_gids(part);
    for (int e = 0; e < part.nel(); ++e) {
      auto g = part.global_coords(e);
      int se = serial.local_index(g[0], g[1], g[2]);
      for (std::size_t p = 0; p < per_elem; ++p) {
        ASSERT_EQ(ids[e * per_elem + p], serial_ids[se * per_elem + p]);
      }
    }
  }
}

// --- face exchange -------------------------------------------------------------

// Fill a field with a function of the *global* point identity so any rank
// can verify the neighbor values it receives without communication.
double global_marker(int gx, int gy, int gz, int face, int a, int b) {
  return gx * 1.0e6 + gy * 1.0e4 + gz * 1.0e2 + face * 10.0 + a + 0.01 * b;
}

void face_exchange_check(const BoxSpec& spec) {
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    Partition part(spec, world.rank());
    FaceExchange ex(world, part);
    const int n = spec.n;
    const int nel = part.nel();
    const std::size_t fsz = cmtbone::mesh::face_array_size(n, nel);

    // Hand-build a face array whose entries encode (element, face, a, b).
    std::vector<double> myfaces(fsz), nbrfaces(fsz, -1);
    for (int e = 0; e < nel; ++e) {
      auto g = part.global_coords(e);
      for (int f = 0; f < 6; ++f) {
        for (int b = 0; b < n; ++b) {
          for (int a = 0; a < n; ++a) {
            myfaces[cmtbone::mesh::face_offset(f, e, n) + a + std::size_t(n) * b] =
                global_marker(g[0], g[1], g[2], f, a, b);
          }
        }
      }
    }
    ex.exchange(myfaces.data(), nbrfaces.data(), 1);

    // Every (element, face) must now hold the neighbor element's opposite
    // face marker with identical (a, b).
    const std::array<int, 3> extent = {spec.ex, spec.ey, spec.ez};
    for (int e = 0; e < nel; ++e) {
      auto g = part.global_coords(e);
      for (int f = 0; f < 6; ++f) {
        int axis = cmtbone::mesh::face_axis(f);
        int dir = cmtbone::mesh::face_side(f) == 0 ? -1 : 1;
        std::array<int, 3> ng = {g[0], g[1], g[2]};
        ng[axis] += dir;
        bool physical = false;
        for (int ax = 0; ax < 3; ++ax) {
          if (ng[ax] < 0 || ng[ax] >= extent[ax]) {
            if (spec.periodic) {
              ng[ax] = (ng[ax] + extent[ax]) % extent[ax];
            } else {
              physical = true;
            }
          }
        }
        for (int b = 0; b < n; ++b) {
          for (int a = 0; a < n; ++a) {
            double got = nbrfaces[cmtbone::mesh::face_offset(f, e, n) + a +
                                  std::size_t(n) * b];
            double want =
                physical
                    ? global_marker(g[0], g[1], g[2], f, a, b)
                    : global_marker(ng[0], ng[1], ng[2],
                                    cmtbone::mesh::opposite_face(f), a, b);
            ASSERT_DOUBLE_EQ(got, want)
                << "e=" << e << " f=" << f << " a=" << a << " b=" << b;
          }
        }
      }
    }
  });
}

TEST(FaceExchange, SingleRankPeriodicWrap) {
  face_exchange_check(spec_of(3, 2, 2, 2, 1, 1, 1));
}

TEST(FaceExchange, TwoRanksOneDirection) {
  face_exchange_check(spec_of(3, 4, 2, 2, 2, 1, 1));
}

TEST(FaceExchange, EightRanksAllDirections) {
  face_exchange_check(spec_of(3, 4, 4, 4, 2, 2, 2));
}

TEST(FaceExchange, NonPeriodicBoundariesMirror) {
  face_exchange_check(spec_of(3, 4, 4, 2, 2, 2, 1, /*periodic=*/false));
}

TEST(FaceExchange, SingleElementPerRankPeriodic) {
  // nelx == 1 with px == 2: both x faces of each element are remote, and
  // both exchanges target the same partner (distinct tags must keep them
  // apart).
  face_exchange_check(spec_of(3, 2, 2, 2, 2, 1, 1));
}

TEST(FaceExchange, OddProcessorCounts) {
  face_exchange_check(spec_of(3, 6, 3, 2, 3, 1, 1));
}

TEST(FaceExchange, MultiFieldExchangeKeepsFieldsSeparate) {
  BoxSpec spec = spec_of(3, 4, 2, 2, 2, 1, 1);
  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    Partition part(spec, world.rank());
    FaceExchange ex(world, part);
    const int n = spec.n;
    const int nel = part.nel();
    const std::size_t fsz = cmtbone::mesh::face_array_size(n, nel);
    const int nf = 3;
    std::vector<double> myfaces(nf * fsz), nbrfaces(nf * fsz, -1);
    for (int f = 0; f < nf; ++f) {
      for (std::size_t i = 0; i < fsz; ++i) {
        myfaces[f * fsz + i] = world.rank() * 1000.0 + f * 100.0;
      }
    }
    ex.exchange(myfaces.data(), nbrfaces.data(), nf);
    // Whatever the source rank was, the field id digit must be preserved.
    for (int f = 0; f < nf; ++f) {
      for (std::size_t i = 0; i < fsz; ++i) {
        double v = nbrfaces[f * fsz + i];
        int field_digit = int(v) % 1000 / 100;
        EXPECT_EQ(field_digit, f);
      }
    }
  });
}

TEST(FaceExchange, ByteAccountingMatchesPlanes) {
  BoxSpec spec = spec_of(4, 4, 4, 4, 2, 2, 1);
  cmtbone::comm::run(4, [&](Comm& world) {
    Partition part(spec, world.rank());
    FaceExchange ex(world, part);
    // Each rank owns a 2x2x4 block: remote planes are +x/-x (2x4 elements)
    // and +y/-y (2x4); z wraps locally (pz=1). 4 planes x 8 faces x n^2
    // points x 8 bytes.
    long long expected = 4LL * 8 * 16 * 8;
    EXPECT_EQ(ex.send_bytes_per_exchange(1), expected);
    EXPECT_EQ(ex.remote_partner_count(), 2);
  });
}

// ---------------------------------------------------------------------------
// Axis coordinate maps (mesh/geometry.hpp)
// ---------------------------------------------------------------------------

TEST(AxisMap, UniformWidthsAreTheExactHistoricalConstant) {
  cmtbone::mesh::AxisMap map;  // uniform, length 1
  const auto w = cmtbone::mesh::axis_widths(map, 8);
  ASSERT_EQ(w.size(), 8u);
  for (double wi : w) {
    // Bit-exact 1.0/8, not a breakpoint difference — the uniform fast path
    // must reproduce the seed geometry exactly.
    EXPECT_EQ(wi, 1.0 / 8);
  }
  EXPECT_EQ(cmtbone::mesh::min_axis_width(map, 8), 1.0 / 8);
}

TEST(AxisMap, BreakpointsSpanTheAxisAndIncrease) {
  using cmtbone::mesh::AxisMap;
  using cmtbone::mesh::AxisMapKind;
  for (AxisMap map : {AxisMap{AxisMapKind::kUniform, 1.0, 2.5},
                      AxisMap{AxisMapKind::kGeometric, 1.4, 2.5},
                      AxisMap{AxisMapKind::kTanh, 2.0, 2.5}}) {
    const auto x = cmtbone::mesh::axis_breakpoints(map, 6);
    ASSERT_EQ(x.size(), 7u);
    EXPECT_EQ(x.front(), 0.0);
    EXPECT_EQ(x.back(), 2.5);
    for (std::size_t i = 0; i + 1 < x.size(); ++i) EXPECT_LT(x[i], x[i + 1]);
  }
}

TEST(AxisMap, GeometricWidthsFollowTheRatio) {
  cmtbone::mesh::AxisMap map{cmtbone::mesh::AxisMapKind::kGeometric, 1.5, 1.0};
  const auto w = cmtbone::mesh::axis_widths(map, 5);
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    EXPECT_NEAR(w[i + 1] / w[i], 1.5, 1e-12);
  }
  double sum = 0.0;
  for (double wi : w) sum += wi;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AxisMap, TanhClusteringIsSymmetricAndClustersTheEnds) {
  cmtbone::mesh::AxisMap map{cmtbone::mesh::AxisMapKind::kTanh, 2.0, 1.0};
  const auto w = cmtbone::mesh::axis_widths(map, 8);
  for (std::size_t i = 0; i < w.size() / 2; ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);  // symmetric
  }
  EXPECT_LT(w.front(), w[w.size() / 2]);  // ends thinner than the middle
}

TEST(AxisMap, InvalidParametersThrow) {
  using cmtbone::mesh::AxisMap;
  using cmtbone::mesh::AxisMapKind;
  EXPECT_THROW(cmtbone::mesh::axis_breakpoints(AxisMap{}, 0),
               std::invalid_argument);
  EXPECT_THROW(cmtbone::mesh::axis_breakpoints(
                   AxisMap{AxisMapKind::kUniform, 1.0, -1.0}, 4),
               std::invalid_argument);
  EXPECT_THROW(cmtbone::mesh::axis_breakpoints(
                   AxisMap{AxisMapKind::kGeometric, -0.5, 1.0}, 4),
               std::invalid_argument);
  EXPECT_THROW(cmtbone::mesh::axis_breakpoints(
                   AxisMap{AxisMapKind::kTanh, 0.0, 1.0}, 4),
               std::invalid_argument);
}

}  // namespace
