// I/O: checkpoint round trips, corruption handling, VTK export, and the
// driver-level save/load path.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "io/checkpoint.hpp"
#include "io/vtk.hpp"

namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cmtbone_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(IoTest, CheckpointRoundTripPreservesEverything) {
  cmtbone::io::CheckpointHeader header;
  header.n = 3;
  header.nel = 2;
  header.nfields = 2;
  header.steps = 42;
  header.time = 1.75;
  const std::size_t points = 3 * 3 * 3 * 2;
  std::vector<double> f0(points), f1(points);
  for (std::size_t i = 0; i < points; ++i) {
    f0[i] = double(i);
    f1[i] = -double(i) * 0.5;
  }
  const double* fields[] = {f0.data(), f1.data()};
  std::string path = (dir_ / "ckpt.bin").string();
  cmtbone::io::write_checkpoint(path, header,
                                std::span<const double* const>(fields, 2),
                                points);

  std::vector<std::vector<double>> loaded;
  auto h = cmtbone::io::read_checkpoint(path, &loaded);
  EXPECT_EQ(h.n, 3);
  EXPECT_EQ(h.nel, 2);
  EXPECT_EQ(h.steps, 42);
  EXPECT_DOUBLE_EQ(h.time, 1.75);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], f0);
  EXPECT_EQ(loaded[1], f1);
}

TEST_F(IoTest, ReadRejectsBadMagicAndTruncation) {
  std::string path = (dir_ / "bad.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  std::vector<std::vector<double>> fields;
  EXPECT_THROW(cmtbone::io::read_checkpoint(path, &fields),
               std::runtime_error);

  // Valid header but truncated payload.
  cmtbone::io::CheckpointHeader header;
  header.n = 4;
  header.nel = 4;
  header.nfields = 1;
  std::string path2 = (dir_ / "trunc.bin").string();
  {
    std::ofstream out(path2, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&header), sizeof header);
    double only_one = 3.0;
    out.write(reinterpret_cast<const char*>(&only_one), sizeof only_one);
  }
  EXPECT_THROW(cmtbone::io::read_checkpoint(path2, &fields),
               std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  std::vector<std::vector<double>> fields;
  EXPECT_THROW(cmtbone::io::read_checkpoint((dir_ / "nope.bin").string(),
                                            &fields),
               std::runtime_error);
}

TEST_F(IoTest, RankPathsAreDistinctAndStable) {
  using cmtbone::io::rank_checkpoint_path;
  EXPECT_EQ(rank_checkpoint_path("/tmp", "run", 0), "/tmp/run.r00000.chk");
  EXPECT_EQ(rank_checkpoint_path("/tmp", "run", 255), "/tmp/run.r00255.chk");
  EXPECT_NE(rank_checkpoint_path("/tmp", "run", 1),
            rank_checkpoint_path("/tmp", "run", 2));
}

TEST_F(IoTest, VtkExportIsWellFormed) {
  std::string path = (dir_ / "out.vtk").string();
  std::vector<double> values = {1.0, 2.0, 3.0};
  cmtbone::io::write_vtk_points(
      path, 3,
      [](std::size_t p) {
        return std::array<double, 3>{double(p), 0.0, 0.0};
      },
      {{"u", std::span<const double>(values)}});
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(all.find("POINTS 3 double"), std::string::npos);
  EXPECT_NE(all.find("SCALARS u double 1"), std::string::npos);
  EXPECT_NE(all.find("POINT_DATA 3"), std::string::npos);
}

TEST_F(IoTest, VtkRejectsWrongFieldSize) {
  std::vector<double> values = {1.0};
  EXPECT_THROW(cmtbone::io::write_vtk_points(
                   (dir_ / "bad.vtk").string(), 3,
                   [](std::size_t) {
                     return std::array<double, 3>{0, 0, 0};
                   },
                   {{"u", std::span<const double>(values)}}),
               std::runtime_error);
}

// --- driver-level checkpoint/restart -----------------------------------------

TEST_F(IoTest, DriverCheckpointRestartResumesExactly) {
  using cmtbone::core::Config;
  using cmtbone::core::Driver;
  Config cfg;
  cfg.n = 4;
  cfg.ex = cfg.ey = cfg.ez = 2;
  cfg.fixed_dt = 1e-3;
  std::string dir = dir_.string();

  // Run 6 steps straight through.
  std::vector<double> straight;
  cmtbone::comm::run(2, [&](cmtbone::comm::Comm& world) {
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.run(6);
    if (world.rank() == 0) {
      auto f = driver.field(0);
      straight.assign(f.begin(), f.end());
    }
  });

  // Run 3 steps, checkpoint, restart in a fresh driver, run 3 more.
  std::vector<double> resumed;
  cmtbone::comm::run(2, [&](cmtbone::comm::Comm& world) {
    {
      Driver driver(world, cfg);
      driver.initialize(driver.default_ic());
      driver.run(3);
      driver.save_checkpoint(dir, "half");
    }
    Driver fresh(world, cfg);
    fresh.load_checkpoint(dir, "half");
    EXPECT_EQ(fresh.steps_taken(), 3);
    EXPECT_NEAR(fresh.time(), 3e-3, 1e-15);
    fresh.run(3);
    if (world.rank() == 0) {
      auto f = fresh.field(0);
      resumed.assign(f.begin(), f.end());
    }
  });

  ASSERT_EQ(straight.size(), resumed.size());
  for (std::size_t i = 0; i < straight.size(); ++i) {
    ASSERT_EQ(straight[i], resumed[i]) << "index " << i;
  }
}

TEST_F(IoTest, DriverLoadRejectsGeometryMismatch) {
  using cmtbone::core::Config;
  using cmtbone::core::Driver;
  std::string dir = dir_.string();
  cmtbone::comm::run(1, [&](cmtbone::comm::Comm& world) {
    Config cfg;
    cfg.n = 4;
    cfg.ex = cfg.ey = cfg.ez = 2;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.save_checkpoint(dir, "geom");

    Config other = cfg;
    other.n = 5;
    Driver wrong(world, other);
    EXPECT_THROW(wrong.load_checkpoint(dir, "geom"), std::runtime_error);
  });
}

TEST_F(IoTest, DriverVtkExportWritesAllFields) {
  using cmtbone::core::Config;
  using cmtbone::core::Driver;
  std::string path = (dir_ / "driver.vtk").string();
  cmtbone::comm::run(1, [&](cmtbone::comm::Comm& world) {
    Config cfg;
    cfg.n = 3;
    cfg.ex = cfg.ey = cfg.ez = 1;
    Driver driver(world, cfg);
    driver.initialize(driver.default_ic());
    driver.export_vtk(path);
  });
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("SCALARS rho double 1"), std::string::npos);
  EXPECT_NE(all.find("SCALARS energy double 1"), std::string::npos);
  EXPECT_NE(all.find("POINTS 27 double"), std::string::npos);
}

TEST(DriverFlops, ModelScalesWithConfiguration) {
  using cmtbone::core::Config;
  using cmtbone::core::Driver;
  cmtbone::comm::run(1, [](cmtbone::comm::Comm& world) {
    Config cfg;
    cfg.n = 6;
    cfg.ex = cfg.ey = cfg.ez = 2;
    Driver d6(world, cfg);
    Config cfg2 = cfg;
    cfg2.integrator = cmtbone::core::TimeIntegrator::kForwardEuler;
    Driver d1(world, cfg2);
    EXPECT_EQ(d6.flops_per_step(), 3 * d6.flops_per_rhs());
    EXPECT_EQ(d1.flops_per_step(), d1.flops_per_rhs());
    EXPECT_GT(d6.flops_per_rhs(), 0);
  });
}

// ---- write_file_atomic error paths -----------------------------------------
//
// The atomic-write contract under failure: the published name either keeps
// its previous contents or does not exist — never a torn file — and the
// .tmp staging file never lingers.

std::vector<std::byte> test_payload(std::size_t n, unsigned char fill) {
  return std::vector<std::byte>(n, std::byte{fill});
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Resets the injected short-write threshold even when an assertion bails
// out of the test early.
struct ShortWriteGuard {
  explicit ShortWriteGuard(long long bytes) {
    cmtbone::io::set_write_failure_after(bytes);
  }
  ~ShortWriteGuard() { cmtbone::io::set_write_failure_after(-1); }
};

TEST_F(IoTest, AtomicWriteIntoMissingDirectoryFailsCleanly) {
  const fs::path target = dir_ / "no_such_subdir" / "ckpt.bin";
  const auto bytes = test_payload(64, 0xab);
  EXPECT_THROW(cmtbone::io::write_file_atomic(target.string(), bytes),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
}

TEST_F(IoTest, AtomicWriteWithFileAsParentFailsCleanly) {
  const fs::path blocker = dir_ / "not_a_dir";
  { std::ofstream out(blocker); out << "occupied"; }
  const fs::path target = blocker / "ckpt.bin";
  const auto bytes = test_payload(64, 0xcd);
  EXPECT_THROW(cmtbone::io::write_file_atomic(target.string(), bytes),
               std::runtime_error);
  EXPECT_EQ(slurp(blocker), "occupied");  // the blocking file is untouched
}

TEST_F(IoTest, AtomicWriteIntoUnwritableDirectoryFailsCleanly) {
#ifndef _WIN32
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root ignores directory write permissions";
  }
  const fs::path locked = dir_ / "locked";
  fs::create_directories(locked);
  fs::permissions(locked, fs::perms::owner_read | fs::perms::owner_exec);
  const fs::path target = locked / "ckpt.bin";
  const auto bytes = test_payload(64, 0x11);
  EXPECT_THROW(cmtbone::io::write_file_atomic(target.string(), bytes),
               std::runtime_error);
  fs::permissions(locked, fs::perms::owner_all);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
#else
  GTEST_SKIP() << "POSIX permission test";
#endif
}

TEST_F(IoTest, InjectedShortWriteOnFreshPathLeavesNothingBehind) {
  const fs::path target = dir_ / "fresh.bin";
  const auto bytes = test_payload(256, 0x5a);
  {
    ShortWriteGuard enospc(32);  // device "fills up" after 32 bytes
    EXPECT_THROW(cmtbone::io::write_file_atomic(target.string(), bytes),
                 std::runtime_error);
    EXPECT_FALSE(fs::exists(target));
    EXPECT_FALSE(fs::exists(target.string() + ".tmp"));
  }
  // Space freed: the same write now succeeds end to end.
  cmtbone::io::write_file_atomic(target.string(), bytes);
  EXPECT_EQ(fs::file_size(target), bytes.size());
}

TEST_F(IoTest, InjectedShortWriteNeverTearsThePublishedFile) {
  const fs::path target = dir_ / "published.bin";
  const auto old_bytes = test_payload(128, 0x22);
  cmtbone::io::write_file_atomic(target.string(), old_bytes);
  const std::string before = slurp(target);

  const auto new_bytes = test_payload(256, 0x77);
  {
    ShortWriteGuard enospc(200);  // fails mid-payload, past the old size
    EXPECT_THROW(cmtbone::io::write_file_atomic(target.string(), new_bytes),
                 std::runtime_error);
  }
  // The short write died in the staging file: the published name still
  // carries the previous contents byte for byte, and no .tmp lingers.
  EXPECT_EQ(slurp(target), before);
  EXPECT_FALSE(fs::exists(target.string() + ".tmp"));

  const std::string msg = [&] {
    ShortWriteGuard enospc(200);
    try {
      cmtbone::io::write_file_atomic(target.string(), new_bytes);
    } catch (const std::exception& e) {
      return std::string(e.what());
    }
    return std::string();
  }();
  EXPECT_NE(msg.find("short write"), std::string::npos) << msg;
}

}  // namespace
