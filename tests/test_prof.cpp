// Profiling substrate: call trees, comm profiler reports, timers.

#include <gtest/gtest.h>

#include <thread>

#include "comm/runtime.hpp"
#include "prof/callprof.hpp"
#include "prof/commprof.hpp"
#include "prof/perf_counters.hpp"
#include "prof/timer.hpp"

namespace {

using cmtbone::prof::CallProfile;
using cmtbone::prof::CommProfiler;
using cmtbone::prof::ScopedRegion;

// Keep a computation observable without volatile arithmetic.
void benchmark_guard(double& v) {
  asm volatile("" : "+m"(v) : : "memory");
}

TEST(Timer, WallTimerAdvances) {
  cmtbone::prof::WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(t.seconds(), 0.004);
}

TEST(Timer, StopwatchAccumulatesLaps) {
  cmtbone::prof::Stopwatch sw;
  for (int i = 0; i < 3; ++i) {
    sw.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sw.stop();
  }
  EXPECT_EQ(sw.laps(), 3);
  EXPECT_GT(sw.seconds(), 0.005);
  sw.reset();
  EXPECT_EQ(sw.laps(), 0);
}

TEST(Timer, CyclesMonotone) {
  auto a = cmtbone::prof::read_cycles();
  auto b = cmtbone::prof::read_cycles();
  EXPECT_GE(b, a);
}

TEST(Timer, CycleUnitMatchesPlatform) {
  // read_cycles() counts TSC ticks on x86 and steady-clock nanoseconds
  // elsewhere; the advertised unit must match the compiled-in reader so no
  // consumer ever mixes the two as one unit.
  using cmtbone::prof::CycleUnit;
  constexpr CycleUnit unit = cmtbone::prof::cycle_unit();
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_EQ(unit, CycleUnit::kTscCycles);
  EXPECT_STREQ(cmtbone::prof::cycle_unit_name(), "tsc-cycles");
#else
  EXPECT_EQ(unit, CycleUnit::kNanoseconds);
  EXPECT_STREQ(cmtbone::prof::cycle_unit_name(), "nanoseconds");
#endif
  EXPECT_STREQ(cmtbone::prof::cycle_unit_name(CycleUnit::kTscCycles),
               "tsc-cycles");
  EXPECT_STREQ(cmtbone::prof::cycle_unit_name(CycleUnit::kNanoseconds),
               "nanoseconds");
}

TEST(CallProf, BuildsNestedTree) {
  cmtbone::prof::reset_thread_profile();
  {
    ScopedRegion outer("step");
    {
      ScopedRegion inner("rhs");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    { ScopedRegion inner("rhs"); }
    { ScopedRegion other("gs"); }
  }
  const auto& prof = cmtbone::prof::thread_profile();
  auto flat = prof.flat();
  ASSERT_GE(flat.size(), 3u);
  long rhs_calls = 0;
  for (const auto& e : flat) {
    if (e.name == "rhs") rhs_calls = e.calls;
  }
  EXPECT_EQ(rhs_calls, 2);
  EXPECT_GT(prof.total_seconds(), 0.0);
  std::string report = prof.tree_report();
  EXPECT_NE(report.find("step"), std::string::npos);
  EXPECT_NE(report.find("rhs"), std::string::npos);
}

TEST(CallProf, ExclusiveTimeSubtractsChildren) {
  cmtbone::prof::reset_thread_profile();
  {
    ScopedRegion outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    {
      ScopedRegion inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  }
  auto flat = cmtbone::prof::thread_profile().flat();
  double outer_excl = 0, outer_incl = 0, inner_incl = 0;
  for (const auto& e : flat) {
    if (e.name == "outer") {
      outer_excl = e.exclusive;
      outer_incl = e.inclusive;
    }
    if (e.name == "inner") inner_incl = e.inclusive;
  }
  EXPECT_GT(inner_incl, 0.003);
  EXPECT_NEAR(outer_excl, outer_incl - inner_incl, 1e-9);
}

TEST(CallProf, MergeAccumulatesAcrossProfiles) {
  CallProfile a, b;
  a.enter("x");
  a.leave(1.0);
  b.enter("x");
  b.leave(2.0);
  b.enter("y");
  b.leave(0.5);
  a.merge(b);
  auto flat = a.flat();
  double x_time = 0, y_time = 0;
  long x_calls = 0;
  for (const auto& e : flat) {
    if (e.name == "x") {
      x_time = e.inclusive;
      x_calls = e.calls;
    }
    if (e.name == "y") y_time = e.inclusive;
  }
  EXPECT_DOUBLE_EQ(x_time, 3.0);
  EXPECT_EQ(x_calls, 2);
  EXPECT_DOUBLE_EQ(y_time, 0.5);
}

TEST(CommProf, RecordsAndAggregates) {
  CommProfiler prof(2);
  prof.record(0, "gs/MPI_Isend", 0.5, 100);
  prof.record(0, "gs/MPI_Isend", 0.25, 50);
  prof.record(1, "gs/MPI_Wait", 1.0, 0);
  prof.set_rank_walltime(0, 1.5);
  prof.set_rank_walltime(1, 2.0);

  EXPECT_DOUBLE_EQ(prof.rank_comm_seconds(0), 0.75);
  auto frac = prof.comm_fraction_per_rank();
  EXPECT_DOUBLE_EQ(frac[0], 0.5);
  EXPECT_DOUBLE_EQ(frac[1], 0.5);

  auto sites = prof.site_totals();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].site, "gs/MPI_Wait");  // sorted by time
  EXPECT_EQ(sites[1].calls, 2);
  EXPECT_EQ(sites[1].total_bytes, 150);
  EXPECT_DOUBLE_EQ(sites[1].avg_bytes, 75.0);

  auto top1 = prof.top_sites(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].site, "gs/MPI_Wait");
}

TEST(CommProf, ReportsRenderWithoutCrashing) {
  CommProfiler prof(2);
  prof.record(0, "a/MPI_Send", 0.1, 64);
  prof.set_rank_walltime(0, 0.2);
  prof.set_rank_walltime(1, 0.2);
  EXPECT_NE(prof.report_fraction_per_rank().find("rank"), std::string::npos);
  EXPECT_NE(prof.report_top_sites(5).find("MPI_Send"), std::string::npos);
  EXPECT_NE(prof.report_message_sizes(5).find("64"), std::string::npos);
  prof.reset();
  EXPECT_TRUE(prof.site_totals().empty());
}

TEST(CommProf, RuntimeIntegrationAttributesSites) {
  CommProfiler prof(2);
  cmtbone::comm::RunOptions opts;
  opts.comm_profiler = &prof;
  cmtbone::comm::run(2, [](cmtbone::comm::Comm& world) {
    cmtbone::comm::SiteScope site("unit_test_phase");
    double x = world.rank();
    world.allreduce(std::span<double>(&x, 1), cmtbone::comm::ReduceOp::kSum);
  }, opts);
  bool found = false;
  for (const auto& s : prof.site_totals()) {
    if (s.site == "unit_test_phase/MPI_Allreduce") {
      found = true;
      EXPECT_EQ(s.calls, 2);  // one per rank
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GT(prof.rank_walltime(0), 0.0);
}

TEST(PerfCounters, GracefulWhetherAvailableOrNot) {
  cmtbone::prof::HwCounters hw;
  hw.start();
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += i;
  benchmark_guard(sum);
  hw.stop();
  if (hw.available()) {
    EXPECT_GT(hw.instructions(), 0u);
    EXPECT_GT(hw.cycles(), 0u);
  } else {
    EXPECT_EQ(hw.instructions(), 0u);
    EXPECT_EQ(hw.cycles(), 0u);
  }
}

}  // namespace
