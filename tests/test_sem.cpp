// Spectral-element machinery: GLL rules, differentiation, interpolation.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sem/legendre.hpp"
#include "sem/lgl.hpp"
#include "sem/operators.hpp"

namespace {

using cmtbone::sem::derivative_matrix;
using cmtbone::sem::gll_rule;
using cmtbone::sem::interpolation_matrix;
using cmtbone::sem::legendre;
using cmtbone::sem::legendre_with_derivative;

TEST(Legendre, LowOrderClosedForms) {
  for (double x : {-0.9, -0.3, 0.0, 0.4, 1.0}) {
    EXPECT_DOUBLE_EQ(legendre(0, x), 1.0);
    EXPECT_DOUBLE_EQ(legendre(1, x), x);
    EXPECT_NEAR(legendre(2, x), 0.5 * (3 * x * x - 1), 1e-14);
    EXPECT_NEAR(legendre(3, x), 0.5 * (5 * x * x * x - 3 * x), 1e-14);
  }
}

TEST(Legendre, DerivativeMatchesFiniteDifference) {
  const double h = 1e-6;
  for (int n = 1; n <= 8; ++n) {
    for (double x : {-0.7, -0.2, 0.1, 0.6}) {
      auto e = legendre_with_derivative(n, x);
      double fd = (legendre(n, x + h) - legendre(n, x - h)) / (2 * h);
      EXPECT_NEAR(e.derivative, fd, 1e-6) << "n=" << n << " x=" << x;
    }
  }
}

TEST(Legendre, EndpointDerivativeClosedForm) {
  for (int n = 1; n <= 10; ++n) {
    auto ep = legendre_with_derivative(n, 1.0);
    EXPECT_NEAR(ep.derivative, 0.5 * n * (n + 1), 1e-12);
    auto em = legendre_with_derivative(n, -1.0);
    double sign = (n % 2 == 0) ? -1.0 : 1.0;
    EXPECT_NEAR(em.derivative, sign * 0.5 * n * (n + 1), 1e-12);
  }
}

TEST(GllRule, KnownNodesN3) {
  auto r = gll_rule(3);
  ASSERT_EQ(r.n, 3);
  EXPECT_DOUBLE_EQ(r.nodes[0], -1.0);
  EXPECT_NEAR(r.nodes[1], 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(r.nodes[2], 1.0);
  EXPECT_NEAR(r.weights[0], 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(r.weights[1], 4.0 / 3.0, 1e-15);
  EXPECT_NEAR(r.weights[2], 1.0 / 3.0, 1e-15);
}

TEST(GllRule, KnownNodesN4) {
  auto r = gll_rule(4);
  const double x1 = std::sqrt(1.0 / 5.0);
  EXPECT_NEAR(r.nodes[1], -x1, 1e-14);
  EXPECT_NEAR(r.nodes[2], x1, 1e-14);
  EXPECT_NEAR(r.weights[0], 1.0 / 6.0, 1e-14);
  EXPECT_NEAR(r.weights[1], 5.0 / 6.0, 1e-14);
}

TEST(GllRule, KnownNodesN5) {
  auto r = gll_rule(5);
  const double x1 = std::sqrt(3.0 / 7.0);
  EXPECT_NEAR(r.nodes[1], -x1, 1e-14);
  EXPECT_NEAR(r.nodes[3], x1, 1e-14);
  EXPECT_NEAR(r.weights[2], 32.0 / 45.0, 1e-14);
}

class GllRuleSweep : public ::testing::TestWithParam<int> {};

TEST_P(GllRuleSweep, NodesSortedSymmetricInUnitInterval) {
  auto r = gll_rule(GetParam());
  EXPECT_DOUBLE_EQ(r.nodes.front(), -1.0);
  EXPECT_DOUBLE_EQ(r.nodes.back(), 1.0);
  for (int i = 1; i < r.n; ++i) EXPECT_LT(r.nodes[i - 1], r.nodes[i]);
  for (int i = 0; i < r.n; ++i) {
    EXPECT_NEAR(r.nodes[i], -r.nodes[r.n - 1 - i], 1e-13);
    EXPECT_NEAR(r.weights[i], r.weights[r.n - 1 - i], 1e-13);
    EXPECT_GT(r.weights[i], 0.0);
  }
}

TEST_P(GllRuleSweep, WeightsSumToTwo) {
  auto r = gll_rule(GetParam());
  double sum = std::accumulate(r.weights.begin(), r.weights.end(), 0.0);
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(GllRuleSweep, QuadratureExactToDegree2Nm3) {
  // GLL with n points integrates polynomials of degree <= 2n-3 exactly.
  auto r = gll_rule(GetParam());
  for (int deg = 0; deg <= 2 * r.n - 3; ++deg) {
    double q = 0.0;
    for (int i = 0; i < r.n; ++i) {
      q += r.weights[i] * std::pow(r.nodes[i], deg);
    }
    double exact = (deg % 2 == 1) ? 0.0 : 2.0 / (deg + 1);
    EXPECT_NEAR(q, exact, 1e-11) << "n=" << r.n << " deg=" << deg;
  }
}

TEST_P(GllRuleSweep, DerivativeMatrixExactOnPolynomials) {
  auto r = gll_rule(GetParam());
  auto d = derivative_matrix(r.nodes);
  const int n = r.n;
  // d/dx x^k = k x^{k-1} holds exactly for k <= n-1.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double num = 0.0;
      for (int j = 0; j < n; ++j) {
        num += d[i + std::size_t(n) * j] * std::pow(r.nodes[j], k);
      }
      double exact = (k == 0) ? 0.0 : k * std::pow(r.nodes[i], k - 1);
      EXPECT_NEAR(num, exact, 1e-9 * std::max(1.0, std::abs(exact)))
          << "n=" << n << " k=" << k << " i=" << i;
    }
  }
}

TEST_P(GllRuleSweep, DerivativeMatrixRowsSumToZero) {
  auto r = gll_rule(GetParam());
  auto d = derivative_matrix(r.nodes);
  for (int i = 0; i < r.n; ++i) {
    double s = 0.0;
    for (int j = 0; j < r.n; ++j) s += d[i + std::size_t(r.n) * j];
    EXPECT_NEAR(s, 0.0, 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, GllRuleSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12, 16, 20,
                                           25));

// --- Gauss-Legendre (dealiasing) rule ----------------------------------------

TEST(GaussRule, KnownNodesN2N3) {
  using cmtbone::sem::gauss_rule;
  auto r2 = gauss_rule(2);
  const double inv_sqrt3 = 1.0 / std::sqrt(3.0);
  EXPECT_NEAR(r2.nodes[0], -inv_sqrt3, 1e-14);
  EXPECT_NEAR(r2.nodes[1], inv_sqrt3, 1e-14);
  EXPECT_NEAR(r2.weights[0], 1.0, 1e-14);
  auto r3 = gauss_rule(3);
  EXPECT_NEAR(r3.nodes[1], 0.0, 1e-14);
  EXPECT_NEAR(r3.nodes[2], std::sqrt(3.0 / 5.0), 1e-14);
  EXPECT_NEAR(r3.weights[1], 8.0 / 9.0, 1e-14);
  EXPECT_NEAR(r3.weights[0], 5.0 / 9.0, 1e-14);
}

class GaussRuleSweep : public ::testing::TestWithParam<int> {};

TEST_P(GaussRuleSweep, ExactToDegree2Nm1AndInterior) {
  auto r = cmtbone::sem::gauss_rule(GetParam());
  for (int i = 0; i < r.n; ++i) {
    EXPECT_GT(r.nodes[i], -1.0);
    EXPECT_LT(r.nodes[i], 1.0);
    if (i > 0) {
      EXPECT_LT(r.nodes[i - 1], r.nodes[i]);
    }
  }
  for (int deg = 0; deg <= 2 * r.n - 1; ++deg) {
    double q = 0.0;
    for (int i = 0; i < r.n; ++i) {
      q += r.weights[i] * std::pow(r.nodes[i], deg);
    }
    double exact = (deg % 2 == 1) ? 0.0 : 2.0 / (deg + 1);
    EXPECT_NEAR(q, exact, 1e-11) << "n=" << r.n << " deg=" << deg;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussRuleSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 15, 20));

TEST(Operators, FineBasisSelectsGaussOrLobatto) {
  auto gauss = cmtbone::sem::Operators::build(
      6, cmtbone::sem::Operators::FineBasis::kGauss);
  auto lobatto = cmtbone::sem::Operators::build(
      6, cmtbone::sem::Operators::FineBasis::kGaussLobatto);
  EXPECT_GT(gauss.fine_rule.nodes.front(), -1.0);  // interior nodes
  EXPECT_DOUBLE_EQ(lobatto.fine_rule.nodes.front(), -1.0);
  EXPECT_EQ(gauss.m, lobatto.m);
}

TEST(Interpolation, ReproducesPolynomialsExactly) {
  auto coarse = gll_rule(6);
  auto fine = gll_rule(9);
  auto m = interpolation_matrix(coarse.nodes, fine.nodes);
  // Degree-5 polynomial is represented exactly on 6 points.
  auto poly = [](double x) {
    return 1.0 + x * (2.0 + x * (-1.5 + x * (0.5 + x * (1.0 - 0.25 * x))));
  };
  for (int i = 0; i < fine.n; ++i) {
    double v = 0.0;
    for (int j = 0; j < coarse.n; ++j) {
      v += m[i + std::size_t(fine.n) * j] * poly(coarse.nodes[j]);
    }
    EXPECT_NEAR(v, poly(fine.nodes[i]), 1e-12);
  }
}

TEST(Interpolation, IdentityOnSameNodes) {
  auto r = gll_rule(7);
  auto m = interpolation_matrix(r.nodes, r.nodes);
  for (int i = 0; i < r.n; ++i) {
    for (int j = 0; j < r.n; ++j) {
      EXPECT_NEAR(m[i + std::size_t(r.n) * j], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Interpolation, RowsSumToOne) {
  // Interpolating the constant 1 returns 1 at every target point.
  auto from = gll_rule(8);
  auto to = gll_rule(12);
  auto m = interpolation_matrix(from.nodes, to.nodes);
  for (int i = 0; i < to.n; ++i) {
    double s = 0.0;
    for (int j = 0; j < from.n; ++j) s += m[i + std::size_t(to.n) * j];
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Interpolation, GaussTargetsIntegrateExactly) {
  // Interpolating a degree-(n-1) polynomial from GLL to Gauss nodes and
  // integrating with the Gauss weights must equal the exact integral
  // (Gauss is exact far beyond n-1) — the dealiasing pipeline's soundness.
  auto coarse = cmtbone::sem::gll_rule(5);
  auto fine = cmtbone::sem::gauss_rule(7);
  auto m = cmtbone::sem::interpolation_matrix(coarse.nodes, fine.nodes);
  // poly = 1 + 0.5 x + 2 x^2 - x^4 (degree 4, exactly representable on 5
  // GLL points). Exact integral over [-1,1]: 2 + 0 + 4/3 - 2/5.
  auto poly = [](double x) {
    return 1.0 + x * 0.5 + 2.0 * x * x - x * x * x * x;
  };
  double exact = 2.0 + 4.0 / 3.0 - 2.0 / 5.0;
  double q = 0.0;
  for (int i = 0; i < fine.n; ++i) {
    double v = 0.0;
    for (int j = 0; j < coarse.n; ++j) {
      v += m[i + std::size_t(fine.n) * j] * poly(coarse.nodes[j]);
    }
    q += fine.weights[i] * v;
  }
  EXPECT_NEAR(q, exact, 1e-12);
}

TEST(Operators, BuildBundlesConsistentSizes) {
  auto op = cmtbone::sem::Operators::build(10);
  EXPECT_EQ(op.n, 10);
  EXPECT_EQ(op.m, 15);
  EXPECT_EQ(op.d.size(), 100u);
  EXPECT_EQ(op.dt.size(), 100u);
  EXPECT_EQ(op.interp.size(), std::size_t(15 * 10));
  // dt really is the transpose of d.
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(op.d[i + 10 * j], op.dt[j + 10 * i]);
    }
  }
}

}  // namespace
