// The message-passing runtime: point-to-point semantics, collectives,
// communicator split, dynamic receives, and failure behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "util/rng.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::comm::kAnySource;
using cmtbone::comm::kAnyTag;
using cmtbone::comm::ReduceOp;
using cmtbone::comm::Request;
using cmtbone::comm::Status;

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::vector<std::atomic<bool>> seen(8);
  cmtbone::comm::run(8, [&](Comm& world) {
    EXPECT_EQ(world.size(), 8);
    seen[world.rank()].store(true);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 8);
  for (auto& s : seen) EXPECT_TRUE(s.load());
}

TEST(Runtime, SingleRankWorks) {
  cmtbone::comm::run(1, [](Comm& world) {
    EXPECT_EQ(world.rank(), 0);
    world.barrier();
    EXPECT_EQ(world.allreduce_one(42.0, ReduceOp::kSum), 42.0);
  });
}

TEST(Runtime, RankExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      cmtbone::comm::run(4,
                         [](Comm& world) {
                           if (world.rank() == 2) {
                             throw std::runtime_error("rank 2 boom");
                           }
                           // Other ranks block on a message that never
                           // comes; the abort must unwind them.
                           double x = 0;
                           world.recv(std::span<double>(&x, 1), kAnySource, 9);
                         }),
      std::runtime_error);
}

TEST(Runtime, ProvableDeadlockIsDetectedNotHung) {
  // Rank 0 blocks on a collective while every other rank exits: no sender
  // can ever exist, so the runtime must unwind with DeadlockDetected
  // (classic bug: collective called inside a rank-conditional block).
  EXPECT_THROW(
      cmtbone::comm::run(4,
                         [](Comm& world) {
                           if (world.rank() == 0) {
                             double x = 1.0;
                             world.allreduce(std::span<double>(&x, 1),
                                             ReduceOp::kSum);
                           }
                         }),
      cmtbone::comm::DeadlockDetected);
}

TEST(Runtime, EarlyExitOfUninvolvedRanksIsFine) {
  // Ranks 2 and 3 exit immediately; 0 and 1 keep talking to each other.
  // The deadlock detector must NOT fire while a potential sender remains.
  cmtbone::comm::run(4, [](Comm& world) {
    if (world.rank() >= 2) return;
    const int peer = 1 - world.rank();
    for (int i = 0; i < 50; ++i) {
      int v = i;
      world.send(std::span<const int>(&v, 1), peer, 1);
      int got = -1;
      world.recv(std::span<int>(&got, 1), peer, 1);
      EXPECT_EQ(got, i);
    }
  });
}

TEST(PointToPoint, BlockingSendRecvRoundTrip) {
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      std::vector<double> data = {1.5, -2.5, 3.25};
      world.send(std::span<const double>(data), 1, 5);
    } else {
      std::vector<double> data(3);
      Status s = world.recv(std::span<double>(data), 0, 5);
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(s.tag, 5);
      EXPECT_EQ(s.bytes, 3 * sizeof(double));
      EXPECT_DOUBLE_EQ(data[1], -2.5);
    }
  });
}

TEST(PointToPoint, MessagesDoNotOvertake) {
  // FIFO per (source, dest): ten messages arrive in posting order.
  cmtbone::comm::run(2, [](Comm& world) {
    const int kMessages = 10;
    if (world.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        world.send(std::span<const int>(&i, 1), 1, 3);
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        int v = -1;
        world.recv(std::span<int>(&v, 1), 0, 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(PointToPoint, TagSelectsAmongQueuedMessages) {
  // Receive in reverse tag order: tag matching must pick the right queued
  // message, not the first arrival.
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      int a = 111, b = 222;
      world.send(std::span<const int>(&a, 1), 1, 1);
      world.send(std::span<const int>(&b, 1), 1, 2);
    } else {
      int v = 0;
      world.recv(std::span<int>(&v, 1), 0, 2);
      EXPECT_EQ(v, 222);
      world.recv(std::span<int>(&v, 1), 0, 1);
      EXPECT_EQ(v, 111);
    }
  });
}

TEST(PointToPoint, WildcardSourceAndTag) {
  cmtbone::comm::run(3, [](Comm& world) {
    if (world.rank() == 0) {
      int got = 0, sum = 0;
      for (int m = 0; m < 2; ++m) {
        Status s = world.recv(std::span<int>(&got, 1), kAnySource, kAnyTag);
        EXPECT_TRUE(s.source == 1 || s.source == 2);
        sum += got;
      }
      EXPECT_EQ(sum, 10 + 20);
    } else {
      int v = world.rank() * 10;
      world.send(std::span<const int>(&v, 1), 0, world.rank());
    }
  });
}

TEST(PointToPoint, SendToSelf) {
  cmtbone::comm::run(2, [](Comm& world) {
    int v = world.rank() + 99;
    world.send(std::span<const int>(&v, 1), world.rank(), 4);
    int got = 0;
    world.recv(std::span<int>(&got, 1), world.rank(), 4);
    EXPECT_EQ(got, world.rank() + 99);
  });
}

TEST(PointToPoint, NonblockingIrecvPostedBeforeSend) {
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 1) {
      double x = 0.0;
      Request r = world.irecv(std::span<double>(&x, 1), 0, 8);
      world.barrier();  // guarantee the irecv is posted first
      Status s = world.wait(r);
      EXPECT_DOUBLE_EQ(x, 2.75);
      EXPECT_EQ(s.source, 0);
    } else {
      world.barrier();
      double x = 2.75;
      world.send(std::span<const double>(&x, 1), 1, 8);
    }
  });
}

TEST(PointToPoint, TruncationThrows) {
  EXPECT_THROW(cmtbone::comm::run(2,
                                  [](Comm& world) {
                                    if (world.rank() == 0) {
                                      std::vector<double> big(8, 1.0);
                                      world.send(std::span<const double>(big),
                                                 1, 2);
                                    } else {
                                      double small = 0;
                                      world.recv(std::span<double>(&small, 1),
                                                 0, 2);
                                    }
                                  }),
               std::runtime_error);
}

TEST(PointToPoint, ProbeAndDynamicReceive) {
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      std::vector<long long> payload = {10, 20, 30, 40, 50};
      world.send(std::span<const long long>(payload), 1, 6);
    } else {
      Status s = world.probe(0, 6);
      EXPECT_EQ(s.bytes, 5 * sizeof(long long));
      auto data = world.recv_vector<long long>(0, 6);
      ASSERT_EQ(data.size(), 5u);
      EXPECT_EQ(data[4], 50);
    }
  });
}

TEST(PointToPoint, SendrecvSwapsValues) {
  cmtbone::comm::run(2, [](Comm& world) {
    const int peer = 1 - world.rank();
    double mine = 10.0 + world.rank();
    double theirs = 0.0;
    Status s = world.sendrecv(std::span<const double>(&mine, 1), peer, 3,
                              std::span<double>(&theirs, 1), peer, 3);
    EXPECT_DOUBLE_EQ(theirs, 10.0 + peer);
    EXPECT_EQ(s.source, peer);
    EXPECT_EQ(s.bytes, sizeof(double));
  });
}

TEST(PointToPoint, SendrecvRingRotation) {
  // Classic ring shift: rank r sends to r+1, receives from r-1.
  cmtbone::comm::run(5, [](Comm& world) {
    const int p = world.size();
    int right = (world.rank() + 1) % p;
    int left = (world.rank() - 1 + p) % p;
    int mine = world.rank() * 7;
    int got = -1;
    world.sendrecv(std::span<const int>(&mine, 1), right, 1,
                   std::span<int>(&got, 1), left, 1);
    EXPECT_EQ(got, left * 7);
  });
}

TEST(PointToPoint, WaitanyReturnsACompletedRequest) {
  cmtbone::comm::run(3, [](Comm& world) {
    if (world.rank() == 0) {
      // Post receives from both peers; they send staggered.
      double a = 0, b = 0;
      std::vector<Request> reqs;
      reqs.push_back(world.irecv(std::span<double>(&a, 1), 1, 5));
      reqs.push_back(world.irecv(std::span<double>(&b, 1), 2, 5));
      std::set<int> seen;
      Status s;
      int first = world.waitany(reqs, &s);
      ASSERT_GE(first, 0);
      seen.insert(first);
      int second = world.waitany(reqs, &s);
      ASSERT_GE(second, 0);
      seen.insert(second);
      EXPECT_EQ(seen.size(), 2u);
      EXPECT_EQ(world.waitany(reqs), -1);  // all consumed
      EXPECT_DOUBLE_EQ(a, 1.0);
      EXPECT_DOUBLE_EQ(b, 2.0);
    } else {
      double v = world.rank();
      world.send(std::span<const double>(&v, 1), 0, 5);
    }
  });
}

TEST(PointToPoint, WaitanyOnAllNullRequestsReturnsMinusOne) {
  cmtbone::comm::run(1, [](Comm& world) {
    std::vector<Request> reqs(3);  // all null
    EXPECT_EQ(world.waitany(reqs), -1);
  });
}

// --- collectives -------------------------------------------------------------

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, Barrier) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  cmtbone::comm::run(p, [&](Comm& world) {
    arrived.fetch_add(1);
    world.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), p);
  });
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(4, world.rank() == root ? root * 7 : -1);
      world.bcast(std::span<int>(data), root);
      for (int v : data) EXPECT_EQ(v, root * 7);
    }
  });
}

TEST_P(CollectiveSizes, AllreduceSumMinMax) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    double r = world.rank();
    EXPECT_DOUBLE_EQ(world.allreduce_one(r, ReduceOp::kSum),
                     p * (p - 1) / 2.0);
    EXPECT_DOUBLE_EQ(world.allreduce_one(r, ReduceOp::kMin), 0.0);
    EXPECT_DOUBLE_EQ(world.allreduce_one(r, ReduceOp::kMax), double(p - 1));
  });
}

TEST_P(CollectiveSizes, AllreduceVectorMatchesSerialReference) {
  const int p = GetParam();
  const int kLen = 17;
  // Serial reference.
  std::vector<double> expected(kLen, 0.0);
  for (int r = 0; r < p; ++r) {
    cmtbone::util::SplitMix64 rng(cmtbone::util::rank_seed(42, r));
    for (int i = 0; i < kLen; ++i) expected[i] += rng.uniform(-1, 1);
  }
  cmtbone::comm::run(p, [&](Comm& world) {
    cmtbone::util::SplitMix64 rng(cmtbone::util::rank_seed(42, world.rank()));
    std::vector<double> v(kLen);
    for (double& x : v) x = rng.uniform(-1, 1);
    world.allreduce(std::span<double>(v), ReduceOp::kSum);
    for (int i = 0; i < kLen; ++i) EXPECT_NEAR(v[i], expected[i], 1e-12);
  });
}

TEST_P(CollectiveSizes, ReduceToEveryRoot) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    for (int root = 0; root < p; ++root) {
      std::vector<long long> v = {1LL << world.rank()};
      world.reduce(std::span<long long>(v), ReduceOp::kSum, root);
      if (world.rank() == root) {
        EXPECT_EQ(v[0], (1LL << p) - 1);
      }
    }
  });
}

TEST_P(CollectiveSizes, GatherAndAllgather) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    int mine = world.rank() * world.rank();
    auto at_root = world.gather(std::span<const int>(&mine, 1), 0);
    if (world.rank() == 0) {
      ASSERT_EQ(int(at_root.size()), p);
      for (int r = 0; r < p; ++r) EXPECT_EQ(at_root[r], r * r);
    } else {
      EXPECT_TRUE(at_root.empty());
    }
    auto everywhere = world.allgather(std::span<const int>(&mine, 1));
    ASSERT_EQ(int(everywhere.size()), p);
    for (int r = 0; r < p; ++r) EXPECT_EQ(everywhere[r], r * r);
  });
}

TEST_P(CollectiveSizes, GathervVariableSizes) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    // Rank r contributes r elements (rank 0 contributes none).
    std::vector<int> mine(world.rank(), world.rank());
    std::vector<int> counts;
    auto all = world.gatherv(std::span<const int>(mine), 0, &counts);
    if (world.rank() == 0) {
      ASSERT_EQ(int(counts.size()), p);
      std::size_t pos = 0;
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(counts[r], r);
        for (int c = 0; c < r; ++c) EXPECT_EQ(all[pos++], r);
      }
      EXPECT_EQ(pos, all.size());
    }
  });
}

TEST_P(CollectiveSizes, AlltoallvPersonalizedExchange) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    // Rank r sends (r + dest) copies of value r*100+dest to each dest.
    std::vector<int> send;
    std::vector<int> counts(p);
    for (int dest = 0; dest < p; ++dest) {
      counts[dest] = world.rank() + dest;
      for (int c = 0; c < counts[dest]; ++c) {
        send.push_back(world.rank() * 100 + dest);
      }
    }
    std::vector<int> rcounts;
    auto got = world.alltoallv(std::span<const int>(send), counts, &rcounts);
    std::size_t pos = 0;
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(rcounts[src], src + world.rank());
      for (int c = 0; c < rcounts[src]; ++c) {
        EXPECT_EQ(got[pos++], src * 100 + world.rank());
      }
    }
    EXPECT_EQ(pos, got.size());
  });
}

TEST_P(CollectiveSizes, ScanSum) {
  const int p = GetParam();
  cmtbone::comm::run(p, [&](Comm& world) {
    long long prefix = world.scan_sum(static_cast<long long>(world.rank() + 1));
    long long expected = 0;
    for (int r = 0; r <= world.rank(); ++r) expected += r + 1;
    EXPECT_EQ(prefix, expected);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

TEST(PointToPoint, IprobeSeesQueuedMessageWithoutConsuming) {
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      int v = 5;
      world.send(std::span<const int>(&v, 1), 1, 6);
      world.barrier();
    } else {
      world.barrier();  // message definitely queued now
      Status s;
      EXPECT_TRUE(world.iprobe(0, 6, &s));
      EXPECT_EQ(s.bytes, sizeof(int));
      EXPECT_TRUE(world.iprobe(0, 6));  // still there: probe doesn't consume
      EXPECT_FALSE(world.iprobe(0, 7));  // wrong tag
      int got = 0;
      world.recv(std::span<int>(&got, 1), 0, 6);
      EXPECT_FALSE(world.iprobe(0, 6));  // consumed now
    }
  });
}

TEST(PointToPoint, TestReportsCompletionNonBlocking) {
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 1) {
      double x = 0;
      Request r = world.irecv(std::span<double>(&x, 1), 0, 2);
      // Not sent yet: test must return false without blocking.
      EXPECT_FALSE(world.test(r));
      world.barrier();   // rank 0 sends before this returns on its side
      world.barrier();   // ensure delivery strictly precedes the re-test
      EXPECT_TRUE(world.test(r));
      EXPECT_DOUBLE_EQ(x, 9.5);
    } else {
      world.barrier();
      double x = 9.5;
      world.send(std::span<const double>(&x, 1), 1, 2);
      world.barrier();
    }
  });
}

TEST(EdgeCases, ZeroByteMessagesMatchNormally) {
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.send_bytes(nullptr, 0, 1, 9);
    } else {
      Status s = world.recv_bytes(nullptr, 0, 0, 9);
      EXPECT_EQ(s.bytes, 0u);
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(s.tag, 9);
    }
  });
}

TEST(EdgeCases, EmptySpanCollectives) {
  cmtbone::comm::run(3, [](Comm& world) {
    std::vector<double> empty;
    world.allreduce(std::span<double>(empty), ReduceOp::kSum);
    world.bcast(std::span<double>(empty), 0);
    auto gathered = world.allgather(std::span<const double>(empty));
    EXPECT_TRUE(gathered.empty());
  });
}

TEST(EdgeCases, StructuredTypesThroughCollectives) {
  struct Pair {
    int a;
    double b;
  };
  cmtbone::comm::run(4, [](Comm& world) {
    Pair mine{world.rank(), world.rank() * 0.5};
    auto all = world.allgather(std::span<const Pair>(&mine, 1));
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[r].a, r);
      EXPECT_DOUBLE_EQ(all[r].b, r * 0.5);
    }
  });
}

TEST(EdgeCases, SplitOfSplitNestsCorrectly) {
  cmtbone::comm::run(8, [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_EQ(quarter.size(), 2);
    // Sum of world ranks in my quarter.
    double sum = quarter.allreduce_one(double(world.rank()), ReduceOp::kSum);
    int base = (world.rank() / 2) * 2;
    EXPECT_DOUBLE_EQ(sum, base + base + 1);
  });
}

TEST(EdgeCases, SelfCommSplitSizeOne) {
  cmtbone::comm::run(3, [](Comm& world) {
    // Every rank its own color: three singleton communicators.
    Comm solo = world.split(world.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_DOUBLE_EQ(solo.allreduce_one(7.0, ReduceOp::kSum), 7.0);
    solo.barrier();
  });
}

// --- communicator split -------------------------------------------------------

TEST(CommSplit, EvenOddGroups) {
  cmtbone::comm::run(6, [](Comm& world) {
    Comm half = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(half.size(), 3);
    EXPECT_EQ(half.rank(), world.rank() / 2);
    // Sum of world ranks within my group.
    double s = half.allreduce_one(double(world.rank()), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(s, world.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  cmtbone::comm::run(4, [](Comm& world) {
    // Reverse rank order via key.
    Comm rev = world.split(0, world.size() - world.rank());
    EXPECT_EQ(rev.rank(), world.size() - 1 - world.rank());
  });
}

TEST(PointToPoint, ProbeRacesConcurrentDeliver) {
  // Rank 0 probes while rank 1 is still delivering: every probe must
  // return coherent metadata (size, source, tag) for a message that a
  // subsequent sized receive then gets in full. Sizes vary so a stale or
  // torn probe result shows up as a truncation or content mismatch.
  constexpr int kMsgs = 64;
  cmtbone::comm::run(2, [](Comm& world) {
    if (world.rank() == 1) {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<int> payload(1 + i % 7, i);
        world.send(std::span<const int>(payload), 0, /*tag=*/i % 3);
        if (i % 4 == 0) std::this_thread::yield();
      }
      return;
    }
    for (int n = 0; n < kMsgs; ++n) {
      Status meta = world.probe(kAnySource, kAnyTag);
      EXPECT_EQ(meta.source, 1);
      std::vector<int> got =
          world.recv_vector<int>(meta.source, meta.tag);
      EXPECT_EQ(got.size(), meta.bytes / sizeof(int));
      ASSERT_FALSE(got.empty());
      for (int v : got) EXPECT_EQ(v, got.front());
      EXPECT_EQ(got.size(), 1 + std::size_t(got.front()) % 7);
      EXPECT_EQ(got.front() % 3, meta.tag);
    }
    // Nothing left behind.
    EXPECT_FALSE(world.iprobe(kAnySource, kAnyTag));
  });
}

TEST(PointToPoint, TestPollingCompletesIsendIrecv) {
  // Drive both halves of a nonblocking exchange to completion purely via
  // test() polling — no wait() anywhere.
  cmtbone::comm::run(2, [](Comm& world) {
    int peer = 1 - world.rank();
    std::vector<long long> in(5, -1), out(5);
    std::iota(out.begin(), out.end(), 100 * world.rank());
    Request recv = world.irecv(std::span<long long>(in), peer, 11);
    if (world.rank() == 1) {
      // Let rank 0 spin on test() for a while before the send lands.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    Request send = world.isend(std::span<const long long>(out), peer, 11);
    while (!world.test(send)) std::this_thread::yield();
    while (!world.test(recv)) std::this_thread::yield();
    for (int i = 0; i < 5; ++i) EXPECT_EQ(in[i], 100 * peer + i);
    // A completed-and-cleared request stays null.
    EXPECT_FALSE(send.valid());
    EXPECT_FALSE(recv.valid());
  });
}

TEST(PointToPoint, AnySourceOverlappingTagsUnderChaos) {
  // Three senders share two tags; chaos holds and delays scramble arrival
  // order across streams. Wildcard-source receives must still see each
  // (source, tag) stream in order and drain exactly the sent multiset.
  constexpr int kRanks = 4;
  constexpr int kMsgs = 12;
  constexpr int kTags[] = {3, 4};
  cmtbone::chaos::ChaosEngine engine(
      cmtbone::chaos::ChaosPolicy::for_seed(77, kRanks), kRanks);
  cmtbone::comm::RunOptions options;
  options.chaos = &engine;
  cmtbone::comm::run(
      kRanks,
      [&](Comm& world) {
        if (world.rank() != 0) {
          for (int i = 0; i < kMsgs; ++i) {
            for (int tag : kTags) {
              long long v = world.rank() * 10000 + tag * 100 + i;
              world.send(std::span<const long long>(&v, 1), 0, tag);
            }
          }
          return;
        }
        for (int tag : kTags) {
          int next[kRanks] = {0, 0, 0, 0};
          for (int n = 0; n < (kRanks - 1) * kMsgs; ++n) {
            long long v = -1;
            Status s = world.recv(std::span<long long>(&v, 1), kAnySource, tag);
            ASSERT_GE(s.source, 1);
            ASSERT_LT(s.source, kRanks);
            EXPECT_EQ(v, s.source * 10000 + tag * 100 + next[s.source]);
            ++next[s.source];
          }
          for (int src = 1; src < kRanks; ++src) EXPECT_EQ(next[src], kMsgs);
        }
      },
      options);
  EXPECT_NE(engine.digest(), 0u);
}

TEST(CommSplit, SubcommTrafficDoesNotCrossGroups) {
  cmtbone::comm::run(4, [](Comm& world) {
    Comm group = world.split(world.rank() / 2, world.rank());
    // Each group does its own exchange with identical tags; messages must
    // stay inside the group (context separation).
    int v = world.rank();
    int got = -1;
    int partner = 1 - group.rank();
    group.send(std::span<const int>(&v, 1), partner, 2);
    group.recv(std::span<int>(&got, 1), partner, 2);
    int expected = (world.rank() / 2) * 2 + (1 - world.rank() % 2);
    EXPECT_EQ(got, expected);
  });
}

}  // namespace
