// Kernel variants: mxm, gradient loop transformations, tensor apply.

#include <gtest/gtest.h>

#include <cctype>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/dispatch.hpp"
#include "kernels/div.hpp"
#include "kernels/gradient.hpp"
#include "kernels/mxm.hpp"
#include "kernels/simd_backend.hpp"
#include "kernels/tensor.hpp"
#include "sem/operators.hpp"
#include "util/rng.hpp"

namespace {

using cmtbone::kernels::GradVariant;
using cmtbone::util::SplitMix64;

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(Mxm, MatchesNaiveTripleLoop) {
  const int n1 = 5, n2 = 7, n3 = 4;
  auto a = random_vec(std::size_t(n1) * n2, 1);
  auto b = random_vec(std::size_t(n2) * n3, 2);
  std::vector<double> c(std::size_t(n1) * n3, -7.0);
  cmtbone::kernels::mxm(a.data(), n1, b.data(), n2, c.data(), n3);
  for (int j = 0; j < n3; ++j) {
    for (int i = 0; i < n1; ++i) {
      double s = 0.0;
      for (int l = 0; l < n2; ++l) s += a[i + n1 * l] * b[l + n2 * j];
      EXPECT_NEAR(c[i + n1 * j], s, 1e-13);
    }
  }
}

TEST(Mxm, IdentityLeavesMatrixUnchanged) {
  const int n = 6;
  std::vector<double> eye(n * n, 0.0);
  for (int i = 0; i < n; ++i) eye[i + n * i] = 1.0;
  auto b = random_vec(n * n, 3);
  std::vector<double> c(n * n);
  cmtbone::kernels::mxm(eye.data(), n, b.data(), n, c.data(), n);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_DOUBLE_EQ(c[i], b[i]);
}

TEST(Mxm, AccumulatingFormAddsToC) {
  const int n = 4;
  auto a = random_vec(n * n, 4);
  auto b = random_vec(n * n, 5);
  std::vector<double> c0(n * n, 1.0), c1(n * n, 0.0);
  cmtbone::kernels::mxm(a.data(), n, b.data(), n, c1.data(), n);
  cmtbone::kernels::mxm_acc(a.data(), n, b.data(), n, c0.data(), n);
  for (int i = 0; i < n * n; ++i) EXPECT_NEAR(c0[i], c1[i] + 1.0, 1e-13);
}

// --- fixed-N microkernel dispatch ------------------------------------------

TEST(MxmFixed, BitIdenticalToRuntimeMxmForEveryDispatchedN) {
  // The fixed-N kernels accumulate over l in the same ascending order as the
  // runtime loop, so the results must match bit for bit — which is what lets
  // the driver switch kernels without perturbing physics results.
  for (int n2 = 2; n2 <= 25; ++n2) {
    cmtbone::kernels::MxmFixedFn f = cmtbone::kernels::mxm_fixed_kernel(n2);
    ASSERT_NE(f, nullptr) << "n2=" << n2;
    // Cover both the 4-wide blocked rows and the remainder rows.
    for (int n1 : {8, 5, 3}) {
      const int n3 = 6;
      auto a = random_vec(std::size_t(n1) * n2, 100 + n2);
      auto b = random_vec(std::size_t(n2) * n3, 200 + n2);
      std::vector<double> c_ref(std::size_t(n1) * n3, 0.0);
      std::vector<double> c_fix(std::size_t(n1) * n3, 0.0);
      cmtbone::kernels::mxm(a.data(), n1, b.data(), n2, c_ref.data(), n3);
      f(a.data(), n1, b.data(), c_fix.data(), n3);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_ref[i], c_fix[i]) << "n2=" << n2 << " n1=" << n1
                                      << " idx=" << i;
      }
    }
  }
}

TEST(MxmFixed, DispatchTableBounds) {
  EXPECT_EQ(cmtbone::kernels::mxm_fixed_kernel(1), nullptr);
  EXPECT_EQ(cmtbone::kernels::mxm_fixed_kernel(26), nullptr);
  EXPECT_EQ(cmtbone::kernels::mxm_fixed_kernel(0), nullptr);
  EXPECT_NE(cmtbone::kernels::mxm_fixed_kernel(2), nullptr);
  EXPECT_NE(cmtbone::kernels::mxm_fixed_kernel(25), nullptr);
}

TEST(MxmFixed, AutoFallsBackToRuntimeKernelBeyondTable) {
  const int n2 = 30;  // outside the 2..25 dispatch range
  const int n1 = 7, n3 = 5;
  auto a = random_vec(std::size_t(n1) * n2, 11);
  auto b = random_vec(std::size_t(n2) * n3, 12);
  std::vector<double> c_ref(std::size_t(n1) * n3, 0.0);
  std::vector<double> c_auto(std::size_t(n1) * n3, 0.0);
  cmtbone::kernels::mxm(a.data(), n1, b.data(), n2, c_ref.data(), n3);
  cmtbone::kernels::mxm_auto(a.data(), n1, b.data(), n2, c_auto.data(), n3);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_EQ(c_ref[i], c_auto[i]);
  }
}

TEST(Gradient, MxmFixedVariantBitIdenticalToBasic) {
  for (int n : {5, 9, 13}) {
    const int nel = 3;
    const std::size_t pts = std::size_t(n) * n * n * nel;
    auto ops = cmtbone::sem::Operators::build(n);
    auto u = random_vec(pts, 40 + n);
    std::vector<double> ref(pts), fix(pts);
    using cmtbone::kernels::grad_r;
    using cmtbone::kernels::grad_s;
    using cmtbone::kernels::grad_t;
    grad_r(GradVariant::kBasic, ops.d.data(), u.data(), ref.data(), n, nel);
    grad_r(GradVariant::kMxmFixed, ops.d.data(), u.data(), fix.data(), n, nel);
    for (std::size_t p = 0; p < pts; ++p) ASSERT_EQ(ref[p], fix[p]) << n;
    grad_s(GradVariant::kBasic, ops.d.data(), u.data(), ref.data(), n, nel);
    grad_s(GradVariant::kMxmFixed, ops.d.data(), u.data(), fix.data(), n, nel);
    for (std::size_t p = 0; p < pts; ++p) ASSERT_EQ(ref[p], fix[p]) << n;
    grad_t(GradVariant::kBasic, ops.d.data(), u.data(), ref.data(), n, nel);
    grad_t(GradVariant::kMxmFixed, ops.d.data(), u.data(), fix.data(), n, nel);
    for (std::size_t p = 0; p < pts; ++p) ASSERT_EQ(ref[p], fix[p]) << n;
  }
}

// --- gradient variants agree with the basic reference ----------------------

struct GradCase {
  int n;
  GradVariant variant;
};

class GradAgree : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradAgree, AllDirectionsMatchBasic) {
  const auto [n, variant] = GetParam();
  const int nel = 3;
  const std::size_t pts = std::size_t(n) * n * n * nel;
  auto op = cmtbone::sem::Operators::build(n);
  auto u = random_vec(pts, 100 + n);

  std::vector<double> ref(pts), got(pts);
  using cmtbone::kernels::grad_r;
  using cmtbone::kernels::grad_s;
  using cmtbone::kernels::grad_t;

  grad_r(GradVariant::kBasic, op.d.data(), u.data(), ref.data(), n, nel);
  grad_r(variant, op.d.data(), u.data(), got.data(), n, nel);
  for (std::size_t i = 0; i < pts; ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);

  grad_s(GradVariant::kBasic, op.d.data(), u.data(), ref.data(), n, nel);
  grad_s(variant, op.d.data(), u.data(), got.data(), n, nel);
  for (std::size_t i = 0; i < pts; ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);

  grad_t(GradVariant::kBasic, op.d.data(), u.data(), ref.data(), n, nel);
  grad_t(variant, op.d.data(), u.data(), got.data(), n, nel);
  for (std::size_t i = 0; i < pts; ++i) EXPECT_NEAR(got[i], ref[i], 1e-12);
}

std::vector<GradCase> all_grad_cases() {
  std::vector<GradCase> cases;
  for (int n : {2, 3, 5, 8, 10, 13, 16, 25, 27 /* no unrolled instantiation */}) {
    for (GradVariant v : cmtbone::kernels::all_variants()) {
      cases.push_back({n, v});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GradAgree, ::testing::ValuesIn(all_grad_cases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      std::string name = cmtbone::kernels::variant_name(info.param.variant);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return "N" + std::to_string(info.param.n) + "_" + name;
    });

// --- gradients differentiate correctly -------------------------------------

TEST(Gradient, DifferentiatesTensorPolynomialExactly) {
  // u(r,s,t) = r^2 s + 3 t on one element; all three partials are degree
  // < n, so spectral differentiation is exact.
  const int n = 6, nel = 1;
  auto op = cmtbone::sem::Operators::build(n);
  const auto& x = op.rule.nodes;
  std::vector<double> u(n * n * n), ur(u.size()), us(u.size()), ut(u.size());
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        u[i + n * (j + n * k)] = x[i] * x[i] * x[j] + 3.0 * x[k];
      }
    }
  }
  cmtbone::kernels::grad3(GradVariant::kFusedUnrolled, op.d.data(), u.data(),
                          ur.data(), us.data(), ut.data(), n, nel);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        std::size_t p = i + n * (j + std::size_t(n) * k);
        EXPECT_NEAR(ur[p], 2.0 * x[i] * x[j], 1e-11);
        EXPECT_NEAR(us[p], x[i] * x[i], 1e-11);
        EXPECT_NEAR(ut[p], 3.0, 1e-11);
      }
    }
  }
}

TEST(Gradient, FlopAndInstructionModels) {
  using cmtbone::kernels::grad_flops;
  using cmtbone::kernels::grad_instruction_estimate;
  EXPECT_EQ(grad_flops(10, 1), 20000);
  EXPECT_EQ(grad_flops(10, 100), 2000000);
  // Unrolling must reduce the modeled instruction count, never the flops.
  for (int n : {5, 10, 25}) {
    long long basic =
        grad_instruction_estimate(GradVariant::kBasic, n, 10);
    long long unrolled =
        grad_instruction_estimate(GradVariant::kFusedUnrolled, n, 10);
    EXPECT_GT(basic, unrolled);
    EXPECT_GT(unrolled, grad_flops(n, 10));  // model includes memory ops
  }
}

// --- fused divergence ---------------------------------------------------------

TEST(Div3, FusedMatchesThreeSeparateDerivatives) {
  const int n = 6, nel = 3;
  const std::size_t pts = std::size_t(n) * n * n * nel;
  auto op = cmtbone::sem::Operators::build(n);
  auto fx = random_vec(pts, 41), fy = random_vec(pts, 42), fz = random_vec(pts, 43);
  std::vector<double> fused(pts), reference(pts);
  const double sx = 2.0, sy = -1.5, sz = 0.5;
  cmtbone::kernels::div3(op.d.data(), fx.data(), fy.data(), fz.data(),
                         fused.data(), n, nel, sx, sy, sz, /*fused=*/true);
  cmtbone::kernels::div3(op.d.data(), fx.data(), fy.data(), fz.data(),
                         reference.data(), n, nel, sx, sy, sz,
                         /*fused=*/false);
  for (std::size_t p = 0; p < pts; ++p) {
    ASSERT_NEAR(fused[p], reference[p], 1e-11);
  }
}

TEST(Div3, DivergenceOfLinearFieldIsExact) {
  // fx = x (in reference coords r), fy = 2s, fz = -t: div = 1 + 2 - 1 = 2
  // with unit scales.
  const int n = 5, nel = 1;
  auto op = cmtbone::sem::Operators::build(n);
  const auto& x = op.rule.nodes;
  std::vector<double> fx(n * n * n), fy(fx.size()), fz(fx.size()), out(fx.size());
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        std::size_t p = i + n * (j + std::size_t(n) * k);
        fx[p] = x[i];
        fy[p] = 2.0 * x[j];
        fz[p] = -x[k];
      }
    }
  }
  cmtbone::kernels::div3(op.d.data(), fx.data(), fy.data(), fz.data(),
                         out.data(), n, nel, 1.0, 1.0, 1.0);
  for (double v : out) EXPECT_NEAR(v, 2.0, 1e-11);
}

TEST(Div3, FlopModelPositiveAndScales) {
  using cmtbone::kernels::div3_flops;
  EXPECT_GT(div3_flops(10, 1), 0);
  EXPECT_EQ(div3_flops(10, 4), 4 * div3_flops(10, 1));
}

// --- tensor-product application ---------------------------------------------

TEST(TensorApply, MatchesDirectSum) {
  const int n = 4, m = 5;
  auto a = random_vec(std::size_t(m) * n, 7);  // m x n
  std::vector<double> at(n * m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) at[j + n * i] = a[i + m * j];
  }
  auto u = random_vec(std::size_t(n) * n * n, 8);
  std::vector<double> out(std::size_t(m) * m * m);
  std::vector<double> work(cmtbone::kernels::tensor_work_size(m, n));
  cmtbone::kernels::tensor_apply3(a.data(), at.data(), m, n, u.data(),
                                  out.data(), work.data());
  for (int c = 0; c < m; ++c) {
    for (int b = 0; b < m; ++b) {
      for (int aa = 0; aa < m; ++aa) {
        double s = 0.0;
        for (int k = 0; k < n; ++k) {
          for (int j = 0; j < n; ++j) {
            for (int i = 0; i < n; ++i) {
              s += a[aa + m * i] * a[b + m * j] * a[c + m * k] *
                   u[i + n * (j + std::size_t(n) * k)];
            }
          }
        }
        EXPECT_NEAR(out[aa + m * (b + std::size_t(m) * c)], s, 1e-12);
      }
    }
  }
}

TEST(TensorApply, DealiasRoundTripPreservesResolvedPolynomials) {
  // A degree-(n-1) tensor polynomial lives exactly in the coarse space, so
  // interpolating up and projecting back must reproduce it.
  const int n = 5;
  auto op = cmtbone::sem::Operators::build(n);
  const int m = op.m;
  const auto& x = op.rule.nodes;
  std::vector<double> u(n * n * n);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        u[i + n * (j + std::size_t(n) * k)] =
            (1 + x[i]) * (2 - x[j] * x[j]) * (0.5 + x[k]);
      }
    }
  }
  std::vector<double> fine(std::size_t(m) * m * m), back(u.size());
  std::vector<double> work(cmtbone::kernels::tensor_work_size(m, m));
  // Interpolate up; the interpolant of a resolved polynomial evaluated back
  // on the coarse nodes (via interpolation fine->coarse, using interp_t as
  // the evaluation of coarse basis at fine nodes transposed) recovers it.
  cmtbone::kernels::tensor_apply3(op.interp.data(), op.interp_t.data(), m, n,
                                  u.data(), fine.data(), work.data());
  // The fine values must equal the polynomial evaluated at fine nodes.
  const auto& y = op.fine_rule.nodes;
  for (int k = 0; k < m; ++k) {
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        double exact = (1 + y[i]) * (2 - y[j] * y[j]) * (0.5 + y[k]);
        EXPECT_NEAR(fine[i + m * (j + std::size_t(m) * k)], exact, 1e-11);
      }
    }
  }
  (void)back;
}

// ---- SIMD / dispatch backend parity -----------------------------------------
//
// Accumulation-order policy under test (simd_backend.hpp, DESIGN.md):
//
//   * Every C(i,j) accumulates over l ascending from zero, and SIMD
//     parallelism runs only across output rows i — never across the
//     contraction. The non-fma kernels therefore perform the same
//     multiplies and adds, in the same order, as the scalar mxm(), and
//     must match it BIT FOR BIT. The suites below assert with ASSERT_EQ
//     on doubles, i.e. exact bit equality (no tolerance).
//
//   * The fma kernels keep that order but fuse each multiply-add into a
//     single rounding. Against the two-roundings-per-step scalar
//     reference, each of the n2 steps can perturb the running sum by at
//     most one ulp of the accumulated magnitude, so
//
//       |fma - scalar| <= 2 * n2 * eps * sum_l |a(i,l) * b(l,j)|
//
//     with the bound computed from the data (the absolute-value
//     contraction), not from the result — a naive relative-error check
//     breaks down under cancellation. fma results are still fully
//     deterministic: same inputs give the same bits, run to run and at
//     any thread count.

using cmtbone::kernels::Backend;
using cmtbone::kernels::kMaxDispatchN;
using cmtbone::kernels::kMinDispatchN;
using cmtbone::kernels::MxmFixedFn;
using cmtbone::kernels::SimdBackend;

std::vector<const SimdBackend*> compiled_simd_backends() {
  std::vector<const SimdBackend*> v;
  for (const SimdBackend* b : {cmtbone::kernels::simd_backend_portable(),
                               cmtbone::kernels::simd_backend_avx2(),
                               cmtbone::kernels::simd_backend_avx512()}) {
    if (b) v.push_back(b);  // ISA TUs may be compiled out or unsupported.
  }
  return v;
}

// Data-derived fma tolerance for C(i,j): the absolute-value contraction
// bounds the magnitude each fused step rounds.
double fma_tol(const double* a, int n1, const double* b, int n2, int i,
               int j) {
  double mag = 0.0;
  for (int l = 0; l < n2; ++l) {
    mag += std::fabs(a[i + std::size_t(n1) * l]) *
           std::fabs(b[l + std::size_t(n2) * j]);
  }
  return 2.0 * n2 * DBL_EPSILON * mag + 1e-300;
}

TEST(SimdParity, NonFmaBitIdenticalToScalarForEveryIsaAndN) {
  const auto backends = compiled_simd_backends();
  ASSERT_FALSE(backends.empty());
  // Row counts that are odd, prime, and off the 8/4/2 vector widths
  // exercise the whole row cascade and its scalar tail; offset=1 slides
  // every base pointer one double past the allocation start, so the
  // kernels also run from vector-misaligned addresses.
  const int n1s[] = {1, 2, 3, 5, 8, 12, 16, 17, 25};
  const int n3s[] = {1, 3, 6};
  for (const SimdBackend* bk : backends) {
    for (int n2 = kMinDispatchN; n2 <= kMaxDispatchN; ++n2) {
      MxmFixedFn f = bk->mxm_kernel(n2, /*fma=*/false);
      ASSERT_NE(f, nullptr) << bk->name << " n2=" << n2;
      for (int n1 : n1s) {
        for (int n3 : n3s) {
          for (std::uint64_t seed : {11u, 97u}) {
            for (int offset : {0, 1}) {
              auto a = random_vec(std::size_t(n1) * n2 + offset, seed * n2);
              auto b =
                  random_vec(std::size_t(n2) * n3 + offset, seed * n2 + 1);
              std::vector<double> want(std::size_t(n1) * n3 + offset, -3.0);
              std::vector<double> got = want;
              cmtbone::kernels::mxm(a.data() + offset, n1, b.data() + offset,
                                    n2, want.data() + offset, n3);
              f(a.data() + offset, n1, b.data() + offset, got.data() + offset,
                n3);
              for (std::size_t p = 0; p < want.size(); ++p) {
                ASSERT_EQ(want[p], got[p])
                    << bk->name << " n1=" << n1 << " n2=" << n2
                    << " n3=" << n3 << " seed=" << seed
                    << " offset=" << offset << " index=" << p;
              }
            }
          }
        }
      }
    }
  }
}

TEST(SimdParity, FmaWithinDataDerivedBoundAndDeterministic) {
  const auto backends = compiled_simd_backends();
  ASSERT_FALSE(backends.empty());
  const int n1s[] = {1, 3, 5, 8, 17};
  const int n3 = 5;
  for (const SimdBackend* bk : backends) {
    for (int n2 = kMinDispatchN; n2 <= kMaxDispatchN; ++n2) {
      MxmFixedFn f = bk->mxm_kernel(n2, /*fma=*/true);
      ASSERT_NE(f, nullptr) << bk->name << " n2=" << n2;
      for (int n1 : n1s) {
        auto a = random_vec(std::size_t(n1) * n2, 131u * n2 + n1);
        auto b = random_vec(std::size_t(n2) * n3, 137u * n2 + n1);
        std::vector<double> ref(std::size_t(n1) * n3, 0.0);
        std::vector<double> got(ref.size(), 0.0), again(ref.size(), 0.0);
        cmtbone::kernels::mxm(a.data(), n1, b.data(), n2, ref.data(), n3);
        f(a.data(), n1, b.data(), got.data(), n3);
        f(a.data(), n1, b.data(), again.data(), n3);
        for (int j = 0; j < n3; ++j) {
          for (int i = 0; i < n1; ++i) {
            const std::size_t p = i + std::size_t(n1) * j;
            // Same inputs, same bits: fma differs from scalar, never from
            // itself.
            ASSERT_EQ(got[p], again[p])
                << bk->name << " n1=" << n1 << " n2=" << n2 << " i=" << i
                << " j=" << j;
            ASSERT_LE(std::fabs(got[p] - ref[p]),
                      fma_tol(a.data(), n1, b.data(), n2, i, j))
                << bk->name << " n1=" << n1 << " n2=" << n2 << " i=" << i
                << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(DispatchParity, EveryBackendGradMatchesScalarForAllNAndDirections) {
  // grad_backend under every Backend vs the kScalar reference, for every
  // dispatched n plus one beyond the table (n=27: the SIMD/fixed-N paths
  // must degrade to the runtime kernel, still bit-exact). The fma bound
  // reuses the absolute-value trick: running the scalar gradient on
  // |d|, |u| yields sum_l |d * u| at every output point.
  const int nel = 3;
  std::vector<int> ns;
  for (int n = kMinDispatchN; n <= kMaxDispatchN; ++n) ns.push_back(n);
  ns.push_back(kMaxDispatchN + 2);
  for (int n : ns) {
    const std::size_t pts = std::size_t(n) * n * n * nel;
    auto d = random_vec(std::size_t(n) * n, 1000u + n);
    auto u = random_vec(pts, 2000u + n);
    std::vector<double> ad(d.size()), au(u.size());
    for (std::size_t p = 0; p < d.size(); ++p) ad[p] = std::fabs(d[p]);
    for (std::size_t p = 0; p < u.size(); ++p) au[p] = std::fabs(u[p]);
    for (int dir = 0; dir < 3; ++dir) {
      std::vector<double> ref(pts, 0.0), mag(pts, 0.0), got(pts, 0.0);
      cmtbone::kernels::grad_backend(Backend::kScalar, dir, d.data(),
                                     u.data(), ref.data(), n, nel);
      cmtbone::kernels::grad_backend(Backend::kScalar, dir, ad.data(),
                                     au.data(), mag.data(), n, nel);
      for (Backend b : cmtbone::kernels::all_backends()) {
        if (b == Backend::kScalar) continue;
        std::fill(got.begin(), got.end(), -5.0);
        cmtbone::kernels::grad_backend(b, dir, d.data(), u.data(), got.data(),
                                       n, nel);
        for (std::size_t p = 0; p < pts; ++p) {
          if (cmtbone::kernels::backend_bit_identical(b)) {
            ASSERT_EQ(ref[p], got[p])
                << cmtbone::kernels::backend_name(b) << " n=" << n
                << " dir=" << dir << " point=" << p;
          } else {
            ASSERT_LE(std::fabs(got[p] - ref[p]),
                      2.0 * n * DBL_EPSILON * mag[p] + 1e-300)
                << cmtbone::kernels::backend_name(b) << " n=" << n
                << " dir=" << dir << " point=" << p;
          }
        }
      }
    }
  }
}

TEST(DispatchParity, TensorApplyBitIdenticalUnderEveryBitExactBackend) {
  // tensor_apply3 routes its contractions through dispatch_mxm; forcing
  // each bit-exact backend must leave interpolation results untouched at
  // the bit level (this path feeds the golden-checked dealiased physics).
  using cmtbone::kernels::ScopedBackendForce;
  for (int n : {4, 8}) {
    auto op = cmtbone::sem::Operators::build(n);
    const int m = op.m;
    auto u = random_vec(std::size_t(n) * n * n, 60u + n);
    std::vector<double> fine(std::size_t(m) * m * m, 0.0);
    std::vector<double> work(cmtbone::kernels::tensor_work_size(m, m));
    std::vector<double> want;
    {
      ScopedBackendForce force(Backend::kScalar);
      cmtbone::kernels::tensor_apply3(op.interp.data(), op.interp_t.data(), m,
                                      n, u.data(), fine.data(), work.data());
      want = fine;
    }
    for (Backend b :
         {Backend::kFixedN, Backend::kSimd, Backend::kBatched}) {
      ScopedBackendForce force(b);
      std::fill(fine.begin(), fine.end(), -9.0);
      cmtbone::kernels::tensor_apply3(op.interp.data(), op.interp_t.data(), m,
                                      n, u.data(), fine.data(), work.data());
      for (std::size_t p = 0; p < fine.size(); ++p) {
        ASSERT_EQ(want[p], fine[p]) << cmtbone::kernels::backend_name(b)
                                    << " n=" << n << " point=" << p;
      }
    }
  }
}

}  // namespace
