// Property and fuzz tests: randomized inputs checked against serial
// oracles and algebraic invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "chaos/chaos.hpp"
#include "comm/runtime.hpp"
#include "gs/crystal.hpp"
#include "gs/gather_scatter.hpp"
#include "kernels/gradient.hpp"
#include "kernels/mxm.hpp"
#include "mesh/face_exchange.hpp"
#include "mesh/faces.hpp"
#include "mesh/partition.hpp"
#include "util/rng.hpp"

namespace {

using cmtbone::comm::Comm;
using cmtbone::comm::ReduceOp;
using cmtbone::gs::GatherScatter;
using cmtbone::gs::Method;
using cmtbone::util::SplitMix64;

// --- randomized gs against the serial oracle ---------------------------------

class GsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GsFuzz, RandomIdSetsMatchOracleForAllMethods) {
  // Random rank count, random overlapping id sets (with in-rank repeats),
  // random values: every method must agree with the serial reduction.
  SplitMix64 rng(1000 + GetParam());
  const int p = 2 + int(rng.below(7));            // 2..8 ranks
  const int universe = 5 + int(rng.below(40));    // ids drawn from [0,universe)
  const ReduceOp op =
      std::array{ReduceOp::kSum, ReduceOp::kMin, ReduceOp::kMax}[rng.below(3)];

  std::vector<std::vector<long long>> ids(p);
  std::vector<std::vector<double>> vals(p);
  for (int r = 0; r < p; ++r) {
    const int slots = 1 + int(rng.below(30));
    for (int s = 0; s < slots; ++s) {
      ids[r].push_back(static_cast<long long>(rng.below(universe)));
      vals[r].push_back(rng.uniform(-5.0, 5.0));
    }
  }

  std::map<long long, double> oracle;
  for (int r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < ids[r].size(); ++s) {
      auto [it, fresh] = oracle.try_emplace(ids[r][s], vals[r][s]);
      if (!fresh) it->second = cmtbone::comm::apply(op, it->second, vals[r][s]);
    }
  }

  for (Method m : {Method::kPairwise, Method::kCrystalRouter,
                   Method::kAllReduce}) {
    cmtbone::comm::run(p, [&](Comm& world) {
      GatherScatter gs(world, ids[world.rank()], m);
      std::vector<double> v = vals[world.rank()];
      gs.exec(std::span<double>(v), op);
      for (std::size_t s = 0; s < v.size(); ++s) {
        ASSERT_NEAR(v[s], oracle.at(ids[world.rank()][s]), 1e-11)
            << "method=" << cmtbone::gs::method_name(m)
            << " rank=" << world.rank() << " slot=" << s;
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GsFuzz, ::testing::Range(0, 12));

// --- randomized crystal routing ------------------------------------------------

class CrystalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CrystalFuzz, RandomDestinationsDeliverExactMultiset) {
  SplitMix64 rng(4000 + GetParam());
  const int p = 2 + int(rng.below(9));  // 2..10 ranks

  // Pre-generate each rank's payloads and the expected arrivals.
  struct Rec {
    long long tagval;
  };
  std::vector<std::vector<Rec>> records(p);
  std::vector<std::vector<int>> dest(p);
  std::vector<std::vector<long long>> expected(p);
  for (int r = 0; r < p; ++r) {
    const int count = int(rng.below(25));
    for (int c = 0; c < count; ++c) {
      int d = int(rng.below(p));
      long long v = static_cast<long long>(rng.next() >> 8);
      records[r].push_back({v});
      dest[r].push_back(d);
      expected[d].push_back(v);
    }
  }
  for (auto& e : expected) std::sort(e.begin(), e.end());

  cmtbone::comm::run(p, [&](Comm& world) {
    cmtbone::gs::CrystalRouter router(world);
    auto got = router.route_records(
        std::span<const Rec>(records[world.rank()]), dest[world.rank()]);
    std::vector<long long> arrived;
    for (const Rec& rec : got) arrived.push_back(rec.tagval);
    std::sort(arrived.begin(), arrived.end());
    ASSERT_EQ(arrived, expected[world.rank()]) << "rank " << world.rank();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrystalFuzz, ::testing::Range(0, 10));

// --- randomized alltoallv -------------------------------------------------------

class AlltoallvFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallvFuzz, RandomCountsRoundTrip) {
  SplitMix64 rng(7000 + GetParam());
  const int p = 2 + int(rng.below(7));

  // counts[src][dst] and the values each src sends to each dst.
  std::vector<std::vector<int>> counts(p, std::vector<int>(p));
  std::vector<std::vector<std::vector<double>>> payload(
      p, std::vector<std::vector<double>>(p));
  for (int s = 0; s < p; ++s) {
    for (int d = 0; d < p; ++d) {
      counts[s][d] = int(rng.below(6));  // 0..5, zeros included
      for (int c = 0; c < counts[s][d]; ++c) {
        payload[s][d].push_back(rng.uniform(-1, 1));
      }
    }
  }

  cmtbone::comm::run(p, [&](Comm& world) {
    const int me = world.rank();
    std::vector<double> send;
    for (int d = 0; d < p; ++d) {
      send.insert(send.end(), payload[me][d].begin(), payload[me][d].end());
    }
    std::vector<int> rcounts;
    auto got = world.alltoallv(std::span<const double>(send),
                               std::span<const int>(counts[me]), &rcounts);
    std::size_t pos = 0;
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(rcounts[s], counts[s][me]);
      for (double v : payload[s][me]) {
        ASSERT_DOUBLE_EQ(got[pos++], v);
      }
    }
    ASSERT_EQ(pos, got.size());
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlltoallvFuzz, ::testing::Range(0, 8));

// --- randomized mxm shapes vs naive --------------------------------------------

class MxmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MxmFuzz, RandomShapesMatchNaive) {
  SplitMix64 rng(9000 + GetParam());
  const int n1 = 1 + int(rng.below(24));
  const int n2 = 1 + int(rng.below(24));
  const int n3 = 1 + int(rng.below(24));
  std::vector<double> a(std::size_t(n1) * n2), b(std::size_t(n2) * n3),
      c(std::size_t(n1) * n3);
  for (double& x : a) x = rng.uniform(-1, 1);
  for (double& x : b) x = rng.uniform(-1, 1);
  cmtbone::kernels::mxm(a.data(), n1, b.data(), n2, c.data(), n3);
  for (int j = 0; j < n3; ++j) {
    for (int i = 0; i < n1; ++i) {
      double s = 0.0;
      for (int l = 0; l < n2; ++l) {
        s += a[i + std::size_t(n1) * l] * b[l + std::size_t(n2) * j];
      }
      ASSERT_NEAR(c[i + std::size_t(n1) * j], s, 1e-12 * std::max(1.0, std::abs(s)))
          << n1 << "x" << n2 << "x" << n3;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MxmFuzz, ::testing::Range(0, 16));

// --- gradient linearity property -------------------------------------------------

TEST(GradProperty, LinearityInTheField) {
  // grad(a*u + b*v) == a*grad(u) + b*grad(v) for every variant/direction.
  SplitMix64 rng(77);
  const int n = 7, nel = 2;
  const std::size_t pts = std::size_t(n) * n * n * nel;
  std::vector<double> d(std::size_t(n) * n), u(pts), v(pts), w(pts);
  for (double& x : d) x = rng.uniform(-1, 1);
  for (double& x : u) x = rng.uniform(-1, 1);
  for (double& x : v) x = rng.uniform(-1, 1);
  const double a = 2.5, b = -0.75;
  for (std::size_t i = 0; i < pts; ++i) w[i] = a * u[i] + b * v[i];

  std::vector<double> gu(pts), gv(pts), gw(pts);
  for (auto variant : cmtbone::kernels::all_variants()) {
    cmtbone::kernels::grad_s(variant, d.data(), u.data(), gu.data(), n, nel);
    cmtbone::kernels::grad_s(variant, d.data(), v.data(), gv.data(), n, nel);
    cmtbone::kernels::grad_s(variant, d.data(), w.data(), gw.data(), n, nel);
    for (std::size_t i = 0; i < pts; ++i) {
      ASSERT_NEAR(gw[i], a * gu[i] + b * gv[i], 1e-11);
    }
  }
}

// --- random partitions tile exactly ----------------------------------------------

class PartitionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PartitionFuzz, RandomSpecsTileWithoutGapsOrOverlap) {
  SplitMix64 rng(12000 + GetParam());
  cmtbone::mesh::BoxSpec spec;
  spec.n = 2 + int(rng.below(6));
  spec.px = 1 + int(rng.below(4));
  spec.py = 1 + int(rng.below(3));
  spec.pz = 1 + int(rng.below(3));
  spec.ex = spec.px + int(rng.below(8));
  spec.ey = spec.py + int(rng.below(8));
  spec.ez = spec.pz + int(rng.below(8));
  spec.periodic = rng.below(2) == 0;
  spec.validate();

  std::set<std::tuple<int, int, int>> covered;
  cmtbone::mesh::Partition oracle(spec, 0);
  for (int r = 0; r < spec.nranks(); ++r) {
    cmtbone::mesh::Partition part(spec, r);
    for (int e = 0; e < part.nel(); ++e) {
      auto g = part.global_coords(e);
      EXPECT_TRUE(covered.insert({g[0], g[1], g[2]}).second);
      EXPECT_EQ(oracle.owner_of(g[0], g[1], g[2]), r);
    }
  }
  EXPECT_EQ(covered.size(), std::size_t(spec.total_elements()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzz, ::testing::Range(0, 12));

// --- face exchange under random geometries ----------------------------------------

class FaceExchangeFuzz : public ::testing::TestWithParam<int> {};

cmtbone::mesh::BoxSpec random_face_spec(int param) {
  SplitMix64 rng(15000 + param);
  cmtbone::mesh::BoxSpec spec;
  spec.n = 2 + int(rng.below(3));
  spec.px = 1 + int(rng.below(3));
  spec.py = 1 + int(rng.below(2));
  spec.pz = 1 + int(rng.below(2));
  spec.ex = spec.px * (1 + int(rng.below(3)));
  spec.ey = spec.py * (1 + int(rng.below(3)));
  spec.ez = spec.pz * (1 + int(rng.below(3)));
  spec.periodic = rng.below(2) == 0;
  spec.validate();
  return spec;
}

void check_face_exchange(const cmtbone::mesh::BoxSpec& spec,
                         const cmtbone::comm::RunOptions& options) {
  // Every received face value must encode the geometric neighbor's
  // (element, opposite face, a, b).
  auto marker = [](int gx, int gy, int gz, int face, int a, int b) {
    return gx * 1.0e6 + gy * 1.0e4 + gz * 1.0e2 + face * 10.0 + a + 0.01 * b;
  };

  cmtbone::comm::run(spec.nranks(), [&](Comm& world) {
    cmtbone::mesh::Partition part(spec, world.rank());
    cmtbone::mesh::FaceExchange ex(world, part);
    const int n = spec.n;
    const int nel = part.nel();
    const std::size_t fsz = cmtbone::mesh::face_array_size(n, nel);
    std::vector<double> mine(fsz), nbr(fsz, -1);
    for (int e = 0; e < nel; ++e) {
      auto g = part.global_coords(e);
      for (int f = 0; f < 6; ++f) {
        for (int b = 0; b < n; ++b) {
          for (int a = 0; a < n; ++a) {
            mine[cmtbone::mesh::face_offset(f, e, n) + a + std::size_t(n) * b] =
                marker(g[0], g[1], g[2], f, a, b);
          }
        }
      }
    }
    ex.exchange(mine.data(), nbr.data(), 1);

    const std::array<int, 3> extent = {spec.ex, spec.ey, spec.ez};
    for (int e = 0; e < nel; ++e) {
      auto g = part.global_coords(e);
      for (int f = 0; f < 6; ++f) {
        int axis = cmtbone::mesh::face_axis(f);
        int dir = cmtbone::mesh::face_side(f) == 0 ? -1 : 1;
        std::array<int, 3> ng = {g[0], g[1], g[2]};
        ng[axis] += dir;
        bool physical = false;
        for (int ax = 0; ax < 3; ++ax) {
          if (ng[ax] < 0 || ng[ax] >= extent[ax]) {
            if (spec.periodic) {
              ng[ax] = (ng[ax] + extent[ax]) % extent[ax];
            } else {
              physical = true;
            }
          }
        }
        for (int b = 0; b < n; ++b) {
          for (int a = 0; a < n; ++a) {
            double got = nbr[cmtbone::mesh::face_offset(f, e, n) + a +
                             std::size_t(n) * b];
            double want =
                physical ? marker(g[0], g[1], g[2], f, a, b)
                         : marker(ng[0], ng[1], ng[2],
                                  cmtbone::mesh::opposite_face(f), a, b);
            ASSERT_DOUBLE_EQ(got, want)
                << "spec " << spec.ex << "x" << spec.ey << "x" << spec.ez
                << " procs " << spec.px << "x" << spec.py << "x" << spec.pz
                << (spec.periodic ? " periodic" : " open");
          }
        }
      }
    }
  }, options);
}

TEST_P(FaceExchangeFuzz, RandomSpecsExchangeConsistently) {
  check_face_exchange(random_face_spec(GetParam()), {});
}

TEST_P(FaceExchangeFuzz, RandomSpecsExchangeConsistentlyUnderChaos) {
  // Same property while a seeded ChaosEngine delays, holds, and reorders
  // the DG halo messages: the nearest-neighbor isend/irecv/waitall pattern
  // must be schedule-independent.
  cmtbone::mesh::BoxSpec spec = random_face_spec(GetParam());
  cmtbone::chaos::ChaosEngine engine(
      cmtbone::chaos::ChaosPolicy::for_seed(100 + GetParam(), spec.nranks()),
      spec.nranks());
  cmtbone::comm::RunOptions options;
  options.chaos = &engine;
  check_face_exchange(spec, options);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaceExchangeFuzz, ::testing::Range(0, 10));

// --- comm stress: many interleaved messages --------------------------------------

TEST(CommStress, ManyTagsManyPartnersNoCrosstalk) {
  const int p = 6;
  const int kMsgs = 20;
  cmtbone::comm::run(p, [&](Comm& world) {
    const int me = world.rank();
    // Everyone sends kMsgs tagged messages to everyone (incl. self).
    for (int d = 0; d < p; ++d) {
      for (int m = 0; m < kMsgs; ++m) {
        long long v = me * 10000 + d * 100 + m;
        world.send(std::span<const long long>(&v, 1), d, m);
      }
    }
    // Receive in a scrambled but deterministic order.
    for (int m = kMsgs - 1; m >= 0; --m) {
      for (int s = p - 1; s >= 0; --s) {
        long long v = -1;
        world.recv(std::span<long long>(&v, 1), s, m);
        ASSERT_EQ(v, s * 10000 + me * 100 + m);
      }
    }
  });
}

TEST(CommStress, LargeMessageSurvivesRoundTrip) {
  cmtbone::comm::run(2, [](Comm& world) {
    const std::size_t kBig = 1 << 20;  // 8 MiB payload
    if (world.rank() == 0) {
      std::vector<double> data(kBig);
      SplitMix64 rng(5);
      for (double& x : data) x = rng.uniform(-1, 1);
      world.send(std::span<const double>(data), 1, 3);
      std::vector<double> echo(kBig);
      world.recv(std::span<double>(echo), 1, 4);
      SplitMix64 check(5);
      for (std::size_t i = 0; i < kBig; i += 4099) {
        (void)check;  // spot-check against regenerated stream
      }
      ASSERT_EQ(echo, data);
    } else {
      std::vector<double> data(kBig);
      world.recv(std::span<double>(data), 0, 3);
      world.send(std::span<const double>(data), 0, 4);
    }
  });
}

// --- randomized gs under chaos perturbation ----------------------------------

class GsChaosFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GsChaosFuzz, RandomIdSetsMatchOracleUnderChaosForAllMethods) {
  // The GsFuzz property, re-run while a seeded ChaosEngine injects delays,
  // message holds, and a straggler rank: perturbing the schedule must not
  // change any gs_op result for any of the three exchange algorithms.
  SplitMix64 rng(7000 + GetParam());
  const int p = 2 + int(rng.below(6));          // 2..7 ranks
  const int universe = 5 + int(rng.below(30));
  const std::uint64_t chaos_seed = 1 + (rng.next() & 0xffff);

  std::vector<std::vector<long long>> ids(p);
  std::vector<std::vector<double>> vals(p);
  for (int r = 0; r < p; ++r) {
    const int slots = 1 + int(rng.below(20));
    for (int s = 0; s < slots; ++s) {
      ids[r].push_back(static_cast<long long>(rng.below(universe)));
      vals[r].push_back(rng.uniform(-5.0, 5.0));
    }
  }
  std::map<long long, double> oracle;
  for (int r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < ids[r].size(); ++s) {
      auto [it, fresh] = oracle.try_emplace(ids[r][s], vals[r][s]);
      if (!fresh) it->second += vals[r][s];
    }
  }

  for (Method m : {Method::kPairwise, Method::kCrystalRouter,
                   Method::kAllReduce}) {
    cmtbone::chaos::ChaosEngine engine(
        cmtbone::chaos::ChaosPolicy::for_seed(chaos_seed, p), p);
    cmtbone::comm::RunOptions options;
    options.chaos = &engine;
    cmtbone::comm::run(
        p,
        [&](Comm& world) {
          GatherScatter gs(world, ids[world.rank()], m);
          std::vector<double> v = vals[world.rank()];
          gs.exec(std::span<double>(v), ReduceOp::kSum);
          for (std::size_t s = 0; s < v.size(); ++s) {
            ASSERT_NEAR(v[s], oracle.at(ids[world.rank()][s]), 1e-11)
                << "method=" << cmtbone::gs::method_name(m)
                << " rank=" << world.rank() << " slot=" << s
                << " chaos_seed=" << chaos_seed;
          }
        },
        options);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GsChaosFuzz, ::testing::Range(0, 8));

}  // namespace
